//===- tools/teapot_diffscan.cpp - Cross-engine / cross-preset diff scans ---===//
//
// The differential-scanning harness over generated and registry
// workloads: every target is scanned with every execution tier
// (interp / block / jit) under every detector preset (teapot,
// teapot-nodift, specfuzz-baseline), and the tool asserts the tiers are
// bit-identical — first at the raw machine level (registers, flags, PC,
// instruction counts, output on every sample input), then at the scan
// level (gadget sets, coverage, corpus — the whole ScanResult). Preset
// gadget deltas (teapot vs each baseline) are recorded and, with
// --out-dir, each preset's scan is written as a teapot.scan.v1 artifact
// diffable with teapot_diff.
//
//   $ teapot_diffscan --seed 7 --count 25
//   $ teapot_diffscan --seed 7 --count 25 --workloads \
//         --json diffscan.json --out-dir scans/
//
// Everything the tool emits is deterministic — artifacts zero the
// wall-clock field and stdout carries no timing — so running it twice
// with the same options is byte-identical (the CI check).
//
// Exit codes: 0 = all engines identical everywhere, 1 = usage/IO errors
// or an engine divergence (a divergence is a VM bug, never a tolerable
// delta).
//
//===----------------------------------------------------------------------===//

#include "api/ScanDiff.h"
#include "api/Scanner.h"
#include "lang/ProgGen.h"
#include "support/ArtifactWriter.h"
#include "support/File.h"
#include "support/StringUtils.h"
#include "vm/Machine.h"
#include "workloads/Programs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace teapot;

namespace {

constexpr const char *Presets[] = {"teapot", "teapot-nodift",
                                   "specfuzz-baseline"};
constexpr vm::Machine::Engine Engines[] = {vm::Machine::Engine::Interpreter,
                                           vm::Machine::Engine::Block,
                                           vm::Machine::Engine::Jit};

void usage(FILE *To) {
  fprintf(To,
          "usage: teapot_diffscan [options]\n"
          "  --seed S       base ProgGen seed (default 7)\n"
          "  --count N      generated programs, seeds S..S+N-1 (default "
          "5)\n"
          "  --size Z       ProgGen size knob 1..16 (default 5)\n"
          "  --iters N      campaign executions per scan (default 300)\n"
          "  --workers N    campaign workers (default 1)\n"
          "  --workloads    also sweep every registry workload\n"
          "  --json FILE    write the summary report "
          "(teapot.diffscan.v1)\n"
          "  --out-dir DIR  write each target's per-preset scans as\n"
          "                 teapot.scan.v1 artifacts (teapot_diff input)\n"
          "  --help         this text\n"
          "exit codes: 0 = engines bit-identical everywhere, 1 = errors "
          "or divergence\n");
}

/// One target: a workload-name spelling the Scanner accepts (registry
/// name or proggen:SEED:SIZE) plus the raw material for the
/// machine-level differential.
struct Target {
  std::string Name;
  std::string Source;
  std::vector<std::vector<uint8_t>> Inputs;
};

struct EngineState {
  vm::StopState Stop;
  vm::CPU C;
  uint64_t Insts = 0;
  uint64_t Intrinsics = 0;
  std::vector<uint8_t> Output;
};

EngineState runRaw(const obj::ObjectFile &Bin, vm::Machine::Engine Eng,
                   const std::vector<uint8_t> &Input) {
  vm::Machine M;
  M.Eng = Eng;
  cantFail(M.loadObject(Bin));
  M.setInput(Input);
  EngineState S;
  S.Stop = M.run(20'000'000);
  S.C = M.C;
  S.Insts = M.executedInsts();
  S.Intrinsics = M.executedIntrinsics();
  S.Output = M.output();
  return S;
}

/// Bit-compares a compiled engine's raw run against the reference
/// interpreter: StopState, PC, FLAGS, every register, instruction and
/// intrinsic counts, output bytes. Returns a diagnostic ("" when
/// identical).
/// Target names double as artifact file stems; proggen spellings carry
/// ':' which some filesystems reject.
std::string fileStem(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out)
    if (C == ':' || C == '/')
      C = '_';
  return Out;
}

std::string diffRaw(const EngineState &E, const EngineState &R) {
  auto Mismatch = [](const char *What) { return std::string(What); };
  if (E.Stop.Kind != R.Stop.Kind)
    return Mismatch("stop kind");
  if (E.Stop.Fault != R.Stop.Fault || E.Stop.FaultAddr != R.Stop.FaultAddr)
    return Mismatch("fault state");
  if (E.Stop.ExitStatus != R.Stop.ExitStatus)
    return Mismatch("exit status");
  if (E.C.PC != R.C.PC)
    return Mismatch("pc");
  if (E.C.Flags != R.C.Flags)
    return Mismatch("flags");
  for (unsigned I = 0; I != isa::NumRegs; ++I)
    if (E.C.R[I] != R.C.R[I])
      return "r" + std::to_string(I);
  if (E.Insts != R.Insts)
    return Mismatch("instruction count");
  if (E.Intrinsics != R.Intrinsics)
    return Mismatch("intrinsic count");
  if (E.Output != R.Output)
    return Mismatch("output bytes");
  return "";
}

} // namespace

int main(int argc, char **argv) {
  support::ExitOnError Exit("teapot_diffscan: ");

  uint64_t Seed = 7;
  uint64_t Count = 5;
  unsigned Size = 5;
  uint64_t Iters = 300;
  unsigned Workers = 1;
  bool SweepWorkloads = false;
  const char *JsonPath = nullptr;
  const char *OutDir = nullptr;

  auto NextOperand = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      fprintf(stderr, "teapot_diffscan: %s requires an operand\n", argv[I]);
      exit(1);
    }
    return argv[++I];
  };
  for (int I = 1; I < argc; ++I) {
    if (!strcmp(argv[I], "--seed")) {
      Seed = Exit(support::parseUInt(NextOperand(I), "--seed",
                                     ~0ULL >> 1));
    } else if (!strcmp(argv[I], "--count")) {
      Count = Exit(support::parseUInt(NextOperand(I), "--count", 10'000));
    } else if (!strcmp(argv[I], "--size")) {
      Size = static_cast<unsigned>(
          Exit(support::parseUInt(NextOperand(I), "--size", 16)));
    } else if (!strcmp(argv[I], "--iters")) {
      Iters = Exit(support::parseUInt(NextOperand(I), "--iters",
                                      1'000'000'000ULL));
    } else if (!strcmp(argv[I], "--workers")) {
      Workers = static_cast<unsigned>(Exit(support::parseUInt(
          NextOperand(I), "--workers", ScanConfig::MaxWorkers)));
    } else if (!strcmp(argv[I], "--workloads")) {
      SweepWorkloads = true;
    } else if (!strcmp(argv[I], "--json")) {
      JsonPath = NextOperand(I);
    } else if (!strcmp(argv[I], "--out-dir")) {
      OutDir = NextOperand(I);
    } else if (!strcmp(argv[I], "--help")) {
      usage(stdout);
      return 0;
    } else {
      fprintf(stderr, "teapot_diffscan: unknown argument '%s'\n", argv[I]);
      usage(stderr);
      return 1;
    }
  }

  if (OutDir && mkdir(OutDir, 0755) != 0 && errno != EEXIST) {
    fprintf(stderr, "teapot_diffscan: cannot create --out-dir %s: %s\n",
            OutDir, strerror(errno));
    return 1;
  }

  // All artifacts flow through one writer; probe --json up front so a
  // bad destination fails before the (long) sweep, not after.
  support::ArtifactWriter Writer;
  if (JsonPath)
    Exit(Writer.probe(JsonPath));

  // Assemble the target list: generated programs first (in seed order),
  // then the registry sweep.
  std::vector<Target> Targets;
  for (uint64_t S = 0; S != Count; ++S) {
    lang::ProgGenOptions GO;
    GO.Seed = Seed + S;
    GO.Size = Size;
    Target T;
    T.Name = "proggen:" + std::to_string(GO.Seed) + ":" +
             std::to_string(GO.Size);
    T.Source = lang::generateProgram(GO);
    T.Inputs = lang::sampleInputs(GO);
    Targets.push_back(std::move(T));
  }
  if (SweepWorkloads)
    for (const workloads::Workload &W : workloads::allWorkloads()) {
      Target T;
      T.Name = W.Name;
      T.Source = W.Source;
      T.Inputs = W.Seeds();
      T.Inputs.push_back(W.LargeInput(1500));
      Targets.push_back(std::move(T));
    }

  printf("[*] diffscan: %zu target(s), %zu preset(s), %zu engine(s), "
         "%llu iters\n",
         Targets.size(), std::size(Presets), std::size(Engines),
         static_cast<unsigned long long>(Iters));

  json::Value Report = json::Value::object();
  Report.set("schema", "teapot.diffscan.v1");
  Report.set("seed", Seed);
  Report.set("count", Count);
  Report.set("size", static_cast<uint64_t>(Size));
  Report.set("iters", Iters);
  json::Value TargetsJson = json::Value::array();

  bool Diverged = false;
  auto Fail = [&](const std::string &Target, const std::string &What) {
    fprintf(stderr, "teapot_diffscan: ENGINE DIVERGENCE on %s: %s\n",
            Target.c_str(), What.c_str());
    Diverged = true;
  };

  for (const Target &T : Targets) {
    json::Value TJ = json::Value::object();
    TJ.set("target", T.Name);

    // --- Level 1: raw machine bit-identity on every sample input -----------
    auto Bin = lang::compile(T.Source.c_str());
    if (!Bin)
      Exit(makeError("compiling %s: %s", T.Name.c_str(),
                     Bin.message().c_str()));
    uint64_t RawInsts = 0;
    for (const auto &In : T.Inputs) {
      EngineState Ref =
          runRaw(*Bin, vm::Machine::Engine::Interpreter, In);
      RawInsts += Ref.Insts;
      for (vm::Machine::Engine Eng :
           {vm::Machine::Engine::Block, vm::Machine::Engine::Jit}) {
        std::string D = diffRaw(runRaw(*Bin, Eng, In), Ref);
        if (!D.empty())
          Fail(T.Name, std::string(vm::engineName(Eng)) + " vs interp: " +
                           D + " (input " + std::to_string(In.size()) +
                           "B)");
      }
    }
    TJ.set("raw_inputs", static_cast<uint64_t>(T.Inputs.size()));
    TJ.set("raw_insts", RawInsts);

    // --- Level 2: full scans, engines × presets -----------------------------
    // Per preset, every engine's ScanResult must be identical after
    // normalizing the two fields that legitimately differ between runs
    // (the recorded engine name and wall-clock time).
    json::Value PresetsJson = json::Value::object();
    std::vector<ScanResult> PresetScans; // index-matched with Presets
    for (const char *Preset : Presets) {
      std::vector<ScanResult> Runs;
      for (vm::Machine::Engine Eng : Engines) {
        ScanConfig Cfg = Exit(ScanConfig::preset(Preset));
        Cfg.Campaign.Seed = 1;
        Cfg.Campaign.TotalIterations = Iters;
        Cfg.Campaign.Workers = Workers;
        Cfg.Campaign.SyncInterval = 256;
        Cfg.Campaign.MaxInputLen = 512;
        Cfg.Engine = Eng;
        Scanner S(Cfg);
        Exit(S.loadWorkload(T.Name));
        Exit(S.rewrite());
        ScanResult R = Exit(S.run());
        // Normalize the legitimately run-varying fields — wall clock
        // (whole-run and per-pass), the recorded engine, and the
        // per-engine hot-path counters — so the comparison and the
        // emitted artifacts are both exact.
        R.normalizeRunVarying();
        Runs.push_back(std::move(R));
      }
      for (size_t E = 1; E != Runs.size(); ++E)
        if (!(Runs[E] == Runs[0]))
          Fail(T.Name, std::string(Preset) + ": " +
                           vm::engineName(Engines[E]) +
                           " scan differs from " +
                           vm::engineName(Engines[0]));

      json::Value PJ = json::Value::object();
      PJ.set("gadgets", static_cast<uint64_t>(Runs[0].Gadgets.size()));
      PJ.set("normal_edges", Runs[0].NormalEdges);
      PJ.set("spec_edges", Runs[0].SpecEdges);
      PJ.set("corpus", Runs[0].CorpusSize);
      PresetsJson.set(Preset, std::move(PJ));

      if (OutDir)
        Exit(Writer.write(std::string(OutDir) + "/" + fileStem(T.Name) +
                              "-" + Preset + ".scan.json",
                          Runs[0].toJsonString()));
      PresetScans.push_back(std::move(Runs[0]));
    }
    TJ.set("presets", std::move(PresetsJson));

    // --- Level 3: preset gadget deltas against the teapot reference ---------
    // Recorded, not gated: detector presets legitimately disagree (that
    // disagreement is the experiment); only engine divergence fails.
    json::Value Deltas = json::Value::object();
    for (size_t P = 1; P != PresetScans.size(); ++P) {
      ScanDiff D = diffScans(PresetScans[0], PresetScans[P], {});
      json::Value DJ = json::Value::object();
      DJ.set("new_gadgets", static_cast<uint64_t>(D.NewGadgets.size()));
      DJ.set("lost_gadgets", static_cast<uint64_t>(D.LostGadgets.size()));
      DJ.set("changed_gadgets",
             static_cast<uint64_t>(D.ChangedGadgets.size()));
      Deltas.set(Presets[P], std::move(DJ));
    }
    TJ.set("deltas", std::move(Deltas));

    printf("[*] %-24s ok: %zu inputs raw-identical, engines identical "
           "across %zu presets\n",
           T.Name.c_str(), T.Inputs.size(), std::size(Presets));
    TargetsJson.push(std::move(TJ));
  }

  Report.set("targets", std::move(TargetsJson));
  Report.set("engines_identical", !Diverged);

  if (JsonPath)
    Exit(Writer.write(JsonPath, Report.dump(true) + "\n"));

  if (Diverged) {
    fprintf(stderr, "teapot_diffscan: FAILED — engine divergence\n");
    return 1;
  }
  printf("[*] all engines bit-identical on %zu target(s)\n",
         Targets.size());
  return 0;
}
