//===- tools/teapot_diff.cpp - Compare two scan results ---------------------===//
//
// The regression gate: compare a current ScanResult JSON against a
// baseline and report new/lost/changed gadgets, coverage deltas, and
// throughput deltas.
//
//   $ teapot_diff [options] BASELINE.json CURRENT.json
//   $ teapot_diff --injected-only tests/golden/jsmn-injected.scan.json \
//                 scan.json
//
// Exit codes (the CI contract):
//   0  no gadget regressions
//   1  usage / IO / parse errors
//   2  regressions (lost or weakened gadgets; with --injected-only,
//      only at the baseline's injected ground-truth sites)
//
//===----------------------------------------------------------------------===//

#include "api/ScanDiff.h"
#include "support/ArtifactWriter.h"
#include "support/File.h"

#include <cstdio>
#include <cstring>

using namespace teapot;

static void usage(FILE *To) {
  fprintf(To,
          "usage: teapot_diff [options] BASELINE.json CURRENT.json\n"
          "  --injected-only   gate only on the baseline's injected\n"
          "                    ground-truth sites (the CI mode)\n"
          "  --json FILE       write the structured diff report "
          "(teapot.diff.v1)\n"
          "  --help            this text\n"
          "exit codes: 0 = no gadget regressions, 1 = errors, "
          "2 = regressions\n");
}

int main(int argc, char **argv) {
  support::ExitOnError Exit("teapot_diff: ");

  ScanDiffOptions Opts;
  const char *JsonPath = nullptr;
  const char *Paths[2] = {nullptr, nullptr};
  int NumPaths = 0;
  for (int I = 1; I < argc; ++I) {
    if (!strcmp(argv[I], "--injected-only")) {
      Opts.InjectedOnly = true;
    } else if (!strcmp(argv[I], "--json")) {
      if (I + 1 >= argc) {
        fprintf(stderr, "teapot_diff: --json requires an operand\n");
        return 1;
      }
      JsonPath = argv[++I];
    } else if (!strcmp(argv[I], "--help")) {
      usage(stdout);
      return 0;
    } else if (argv[I][0] == '-') {
      fprintf(stderr, "teapot_diff: unknown argument '%s'\n", argv[I]);
      usage(stderr);
      return 1;
    } else if (NumPaths == 2) {
      fprintf(stderr, "teapot_diff: too many operands\n");
      usage(stderr);
      return 1;
    } else {
      Paths[NumPaths++] = argv[I];
    }
  }
  if (NumPaths != 2) {
    usage(stderr);
    return 1;
  }

  // Fail fast on an unwritable --json destination before doing any work.
  support::ArtifactWriter Writer;
  if (JsonPath)
    Exit(Writer.probe(JsonPath));

  auto Load = [&](const char *Path) {
    std::string Text = Exit(support::readFile(Path));
    auto R = ScanResult::fromJsonString(Text);
    if (!R) {
      fprintf(stderr, "teapot_diff: %s: %s\n", Path, R.message().c_str());
      exit(1);
    }
    return std::move(*R);
  };
  ScanResult Before = Load(Paths[0]);
  ScanResult After = Load(Paths[1]);

  if (Opts.InjectedOnly && Before.InjectedSites.empty()) {
    // An empty gate set would make every diff pass; a misconfigured
    // baseline (e.g. regenerated without --inject) must be loud, not a
    // permanently green CI gate.
    fprintf(stderr,
            "teapot_diff: --injected-only, but the baseline carries no "
            "injection ground truth (injection.sites is empty) — the "
            "regression gate would be vacuous\n");
    return 1;
  }

  ScanDiff D = diffScans(Before, After, Opts);
  fputs(D.describe().c_str(), stdout);

  if (JsonPath)
    Exit(Writer.write(JsonPath, D.toJson().dump(true) + "\n"));

  return D.hasRegressions() ? 2 : 0;
}
