//===- tools/teapot_fleet.cpp - Scan-fleet orchestration CLI ----------------===//
//
// Drive a teapot::service::ScanService fleet from the command line: run
// many campaigns across registry workloads and proggen targets with
// cross-campaign corpus federation, checkpoint/resume the whole fleet,
// query the aggregated teapot.fleetindex.v1, and diff fleet against
// fleet.
//
//   $ teapot_fleet run --state-dir fleet/ --target jsmn@parsers
//         --target base64@parsers --target proggen:11:4 --iters 300
//   $ teapot_fleet resume --state-dir fleet/ --threads 4
//   $ teapot_fleet query --index fleet/index.json --top-gadgets 10
//   $ teapot_fleet query --index fleet/index.json --target jsmn
//   $ teapot_fleet query --index fleet/index.json
//         --weakened-since baseline.index.json
//   $ teapot_fleet diff baseline.index.json fleet/index.json
//
// Everything the tool emits is deterministic: fleet results depend only
// on the fleet options (never on --threads or timing), artifacts zero
// the wall-clock fields, and stdout carries no timing — running a fleet
// twice with the same options is byte-identical (the CI check).
//
// Exit codes (the CI contract):
//   0    ok / no regressions
//   1    usage / IO / parse errors
//   2    regressions (diff, --weakened-since)
//   130  interrupted — SIGINT stops the fleet at the next round barrier
//        after checkpointing, so `resume` continues byte-identically
//
//===----------------------------------------------------------------------===//

#include "service/ScanService.h"
#include "support/ArtifactWriter.h"
#include "support/FaultInjector.h"
#include "support/File.h"
#include "support/StringUtils.h"
#include "workloads/Programs.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace teapot;
using namespace teapot::service;

/// Set by the SIGINT handler; forwarded to the service, which honors it
/// at the next round barrier (after that round's checkpoint commits).
static volatile sig_atomic_t GotSigInt = 0;
static ScanService *ActiveService = nullptr;

static void onSigInt(int) {
  GotSigInt = 1;
  if (ActiveService)
    ActiveService->requestStop(); // atomic store: async-signal-safe
}

static void usage(FILE *To) {
  fprintf(To,
          "usage: teapot_fleet COMMAND [options]\n"
          "\n"
          "commands:\n"
          "  run     run a new fleet\n"
          "    --state-dir DIR   checkpoint directory (required)\n"
          "    --target SPEC[@FAMILY][=ITERS]   fleet member (repeatable;\n"
          "                      SPEC is a workload name or "
          "proggen:SEED[:SIZE];\n"
          "                      targets sharing FAMILY federate corpora)\n"
          "    --preset NAME     scan preset (default teapot)\n"
          "    --engine NAME     interp | block | jit (default jit)\n"
          "    --seed S          fleet seed; target i's campaign derives "
          "from it\n"
          "    --workers N       campaign workers per target (default 1)\n"
          "    --iters N         executions per target (default 20000)\n"
          "    --global-iters N  fleet-wide execution ceiling (default "
          "off)\n"
          "    --slice-epochs N  campaign epochs per scheduling slice "
          "(default 4)\n"
          "    --sync-interval N campaign epoch length (default 256)\n"
          "    --max-input-len N campaign input cap (default 512)\n"
          "    --federate-every N  federate every N rounds (0 = off, "
          "default 1)\n"
          "    --threads N       scheduler threads (throughput only — "
          "results\n"
          "                      are identical for every value)\n"
          "    --max-rounds N    stop after N rounds (resume later; "
          "default off)\n"
          "    --inject          splice Table 3 gadgets into every "
          "target\n"
          "    --fault-plan P    deterministic fault plan "
          "(docs/ROBUSTNESS.md)\n"
          "  resume  continue a checkpointed fleet\n"
          "    --state-dir DIR   the run's checkpoint directory "
          "(required)\n"
          "    --threads N / --max-rounds N   session knobs, as above\n"
          "  query   read a teapot.fleetindex.v1 document\n"
          "    --index FILE      the index (required)\n"
          "    --top-gadgets N   rank gadget identities by reporting "
          "targets\n"
          "    --target SPEC     print one target's full record\n"
          "    --weakened-since BASELINE   print lost/weakened gadgets vs "
          "a\n"
          "                      baseline index; exit 2 if any\n"
          "  diff    BASELINE.index.json CURRENT.index.json\n"
          "    --injected-only   gate regressions on injected ground-truth "
          "sites\n"
          "                      (targets without ground truth keep full "
          "gating)\n"
          "    --json FILE       write the teapot.fleetdiff.v1 report\n"
          "\n"
          "exit codes: 0 = ok, 1 = errors, 2 = regressions, 130 = "
          "interrupted\n");
}

namespace {

Expected<FleetTarget> parseTargetSpec(const std::string &Arg) {
  FleetTarget T;
  std::string Spec = Arg;
  if (size_t Eq = Spec.find('='); Eq != std::string::npos) {
    auto N = support::parseUInt(Spec.substr(Eq + 1), "--target ITERS",
                                1'000'000'000ULL);
    if (!N)
      return N.takeError();
    T.Iterations = *N;
    Spec.resize(Eq);
  }
  if (size_t At = Spec.find('@'); At != std::string::npos) {
    T.Family = Spec.substr(At + 1);
    Spec.resize(At);
    if (T.Family.empty())
      return makeError("--target: empty family in \"%s\"", Arg.c_str());
  }
  if (Spec.empty())
    return makeError("--target: empty spec in \"%s\"", Arg.c_str());
  T.Spec = std::move(Spec);
  return T;
}

Expected<FleetIndex> loadIndex(const char *Path) {
  auto Text = support::readFile(Path);
  if (!Text)
    return Text.takeError();
  auto Idx = FleetIndex::fromJsonString(*Text);
  if (!Idx)
    return makeError("%s: %s", Path, Idx.message().c_str());
  return Idx;
}

/// Deterministic post-run report (counters only, no timing).
void printSummary(const ScanService &Svc) {
  FleetIndex Idx = Svc.index();
  printf("[*] fleet: round %llu, %s, %llu total executions\n",
         static_cast<unsigned long long>(Svc.round()),
         Svc.finished() ? "finished" : "in progress",
         static_cast<unsigned long long>(Svc.totalExecutions()));
  for (const FleetRecord &R : Idx.Records)
    printf("    %-20s %s  execs %llu/%llu  corpus %llu  cov %llu+%llu  "
           "fed in/out %llu/%llu  gadgets %zu\n",
           R.Spec.c_str(), R.Done ? "done   " : "running",
           static_cast<unsigned long long>(R.Executions),
           static_cast<unsigned long long>(R.Iterations),
           static_cast<unsigned long long>(R.CorpusSize),
           static_cast<unsigned long long>(R.NormalEdges),
           static_cast<unsigned long long>(R.SpecEdges),
           static_cast<unsigned long long>(R.FederatedIn),
           static_cast<unsigned long long>(R.FederatedOut),
           R.Gadgets.size());
}

int runFleet(ScanService &Svc) {
  Svc.artifacts().OnWrite = [](const std::string &Path, size_t Bytes) {
    printf("[*] wrote %s (%zu bytes)\n", Path.c_str(), Bytes);
  };
  ActiveService = &Svc;
  signal(SIGINT, onSigInt);
  if (GotSigInt) // delivered between setup and here
    Svc.requestStop();
  support::ExitOnError Exit("teapot_fleet: ");
  Exit(Svc.run());
  ActiveService = nullptr;
  if (GotSigInt)
    printf("[*] interrupted: fleet stopped at round %llu (checkpoint "
           "committed; `teapot_fleet resume` continues byte-identically)\n",
           static_cast<unsigned long long>(Svc.round()));
  printSummary(Svc);
  return GotSigInt ? 130 : 0;
}

} // namespace

static int cmdRun(int argc, char **argv) {
  support::ExitOnError Exit("teapot_fleet: ");
  FleetOptions FO;
  FO.Base = Exit(ScanConfig::preset("teapot"));
  FO.Base.Campaign.Seed = 1;
  FO.Base.Campaign.SyncInterval = 256;
  FO.Base.Campaign.MaxInputLen = 512;
  std::vector<FleetTarget> Targets;
  std::string Preset = "teapot";
  std::string FaultPlan;

  auto NextOperand = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      fprintf(stderr, "teapot_fleet: %s requires an operand\n", argv[I]);
      exit(1);
    }
    return argv[++I];
  };
  for (int I = 0; I < argc; ++I) {
    if (!strcmp(argv[I], "--state-dir")) {
      FO.StateDir = NextOperand(I);
    } else if (!strcmp(argv[I], "--target")) {
      Targets.push_back(Exit(parseTargetSpec(NextOperand(I))));
    } else if (!strcmp(argv[I], "--preset")) {
      Preset = NextOperand(I);
    } else if (!strcmp(argv[I], "--engine")) {
      const char *Name = NextOperand(I);
      if (!vm::parseEngineName(Name, FO.Base.Engine)) {
        fprintf(stderr,
                "teapot_fleet: --engine expects interp, block, or jit "
                "(got '%s')\n",
                Name);
        return 1;
      }
    } else if (!strcmp(argv[I], "--seed")) {
      FO.Base.Campaign.Seed =
          Exit(support::parseUInt(NextOperand(I), "--seed", ~0ULL >> 1));
    } else if (!strcmp(argv[I], "--workers")) {
      FO.Base.Campaign.Workers = static_cast<unsigned>(Exit(
          support::parseUInt(NextOperand(I), "--workers",
                             ScanConfig::MaxWorkers)));
    } else if (!strcmp(argv[I], "--iters")) {
      FO.IterationsPerTarget = Exit(
          support::parseUInt(NextOperand(I), "--iters", 1'000'000'000ULL));
    } else if (!strcmp(argv[I], "--global-iters")) {
      FO.GlobalIterations = Exit(support::parseUInt(
          NextOperand(I), "--global-iters", ~0ULL >> 1));
    } else if (!strcmp(argv[I], "--slice-epochs")) {
      FO.SliceEpochs = Exit(support::parseUInt(
          NextOperand(I), "--slice-epochs", 1'000'000'000ULL));
    } else if (!strcmp(argv[I], "--sync-interval")) {
      FO.Base.Campaign.SyncInterval = Exit(support::parseUInt(
          NextOperand(I), "--sync-interval", 1'000'000'000ULL));
    } else if (!strcmp(argv[I], "--max-input-len")) {
      FO.Base.Campaign.MaxInputLen = Exit(support::parseUInt(
          NextOperand(I), "--max-input-len", 1 << 20));
    } else if (!strcmp(argv[I], "--federate-every")) {
      FO.FederateEvery = static_cast<unsigned>(Exit(support::parseUInt(
          NextOperand(I), "--federate-every", 1'000'000'000ULL)));
    } else if (!strcmp(argv[I], "--threads")) {
      FO.Threads = static_cast<unsigned>(
          Exit(support::parseUInt(NextOperand(I), "--threads", 256)));
    } else if (!strcmp(argv[I], "--max-rounds")) {
      FO.MaxRounds = Exit(support::parseUInt(
          NextOperand(I), "--max-rounds", 1'000'000'000ULL));
    } else if (!strcmp(argv[I], "--inject")) {
      FO.Base.InjectGadgets = true;
    } else if (!strcmp(argv[I], "--fault-plan")) {
      FaultPlan = NextOperand(I);
    } else if (!strcmp(argv[I], "--help")) {
      usage(stdout);
      return 0;
    } else {
      fprintf(stderr, "teapot_fleet: unknown argument '%s'\n", argv[I]);
      usage(stderr);
      return 1;
    }
  }
  if (FO.StateDir.empty()) {
    fprintf(stderr, "teapot_fleet: run requires --state-dir\n");
    return 1;
  }
  if (Targets.empty()) {
    fprintf(stderr, "teapot_fleet: run requires at least one --target\n");
    return 1;
  }
  // Re-derive the base config from the requested preset, then re-apply
  // the flag overrides that landed in FO.Base before the preset was
  // known.
  if (Preset != "teapot") {
    ScanConfig Fresh = Exit(ScanConfig::preset(Preset));
    Fresh.Campaign = FO.Base.Campaign;
    Fresh.Engine = FO.Base.Engine;
    Fresh.InjectGadgets = FO.Base.InjectGadgets;
    FO.Base = std::move(Fresh);
  }
  FO.Base.FaultPlan = FaultPlan;

  ScanService Svc(FO);
  // file.* clauses of --fault-plan drive the checkpoint writes (one
  // injector per owner; campaign-level sites drive the per-worker
  // target injectors).
  support::FaultInjector FileFaults(
      Exit(support::FaultPlan::parse(FaultPlan)));
  Svc.artifacts().setFaults(&FileFaults);
  for (FleetTarget &T : Targets)
    Exit(Svc.addTarget(std::move(T)));
  printf("[*] fleet: %zu target(s), seed %llu, %llu iters/target, "
         "slice %llu epoch(s), federate every %u round(s)\n",
         Svc.targets().size(),
         static_cast<unsigned long long>(FO.Base.Campaign.Seed),
         static_cast<unsigned long long>(FO.IterationsPerTarget),
         static_cast<unsigned long long>(FO.SliceEpochs),
         FO.FederateEvery);
  return runFleet(Svc);
}

static int cmdResume(int argc, char **argv) {
  support::ExitOnError Exit("teapot_fleet: ");
  std::string Dir;
  unsigned Threads = 0;
  uint64_t MaxRounds = 0;
  bool HaveMaxRounds = false;
  auto NextOperand = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      fprintf(stderr, "teapot_fleet: %s requires an operand\n", argv[I]);
      exit(1);
    }
    return argv[++I];
  };
  for (int I = 0; I < argc; ++I) {
    if (!strcmp(argv[I], "--state-dir")) {
      Dir = NextOperand(I);
    } else if (!strcmp(argv[I], "--threads")) {
      Threads = static_cast<unsigned>(
          Exit(support::parseUInt(NextOperand(I), "--threads", 256)));
    } else if (!strcmp(argv[I], "--max-rounds")) {
      MaxRounds = Exit(support::parseUInt(
          NextOperand(I), "--max-rounds", 1'000'000'000ULL));
      HaveMaxRounds = true;
    } else if (!strcmp(argv[I], "--help")) {
      usage(stdout);
      return 0;
    } else {
      fprintf(stderr, "teapot_fleet: unknown argument '%s'\n", argv[I]);
      usage(stderr);
      return 1;
    }
  }
  if (Dir.empty()) {
    fprintf(stderr, "teapot_fleet: resume requires --state-dir\n");
    return 1;
  }
  std::unique_ptr<ScanService> Svc = Exit(ScanService::openStateDir(Dir));
  if (Threads)
    Svc->options().Threads = Threads;
  if (HaveMaxRounds)
    Svc->options().MaxRounds = MaxRounds;
  printf("[*] fleet: resuming %zu target(s) from %s at round %llu\n",
         Svc->targets().size(), Dir.c_str(),
         static_cast<unsigned long long>(Svc->round()));
  return runFleet(*Svc);
}

static int cmdQuery(int argc, char **argv) {
  support::ExitOnError Exit("teapot_fleet: ");
  const char *IndexPath = nullptr;
  const char *TargetSpec = nullptr;
  const char *BaselinePath = nullptr;
  uint64_t TopN = 0;
  bool HaveTop = false;
  auto NextOperand = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      fprintf(stderr, "teapot_fleet: %s requires an operand\n", argv[I]);
      exit(1);
    }
    return argv[++I];
  };
  for (int I = 0; I < argc; ++I) {
    if (!strcmp(argv[I], "--index")) {
      IndexPath = NextOperand(I);
    } else if (!strcmp(argv[I], "--top-gadgets")) {
      TopN = Exit(support::parseUInt(NextOperand(I), "--top-gadgets",
                                     1'000'000ULL));
      HaveTop = true;
    } else if (!strcmp(argv[I], "--target")) {
      TargetSpec = NextOperand(I);
    } else if (!strcmp(argv[I], "--weakened-since")) {
      BaselinePath = NextOperand(I);
    } else if (!strcmp(argv[I], "--help")) {
      usage(stdout);
      return 0;
    } else {
      fprintf(stderr, "teapot_fleet: unknown argument '%s'\n", argv[I]);
      usage(stderr);
      return 1;
    }
  }
  if (!IndexPath) {
    fprintf(stderr, "teapot_fleet: query requires --index\n");
    return 1;
  }
  if (!!HaveTop + !!TargetSpec + !!BaselinePath != 1) {
    fprintf(stderr, "teapot_fleet: query needs exactly one of "
                    "--top-gadgets, --target, --weakened-since\n");
    return 1;
  }
  FleetIndex Idx = Exit(loadIndex(IndexPath));

  if (TargetSpec) {
    const FleetRecord *R = Idx.findTarget(TargetSpec);
    if (!R) {
      fprintf(stderr, "teapot_fleet: no target \"%s\" in %s\n", TargetSpec,
              IndexPath);
      return 1;
    }
    fputs(R->describe().c_str(), stdout);
    return 0;
  }

  if (HaveTop) {
    auto Top = Idx.topGadgets(TopN);
    printf("top gadget identities across %zu target(s):\n",
           Idx.Records.size());
    for (const GadgetTally &T : Top) {
      printf("  %zu target(s): %s\n", T.Targets.size(),
             T.Gadget.describe().c_str());
      for (const std::string &S : T.Targets)
        printf("      %s\n", S.c_str());
    }
    return 0;
  }

  // --weakened-since: the fleet-level "what regressed" question —
  // everything the baseline fleet detected that this index lost or
  // downgraded.
  FleetIndex Base = Exit(loadIndex(BaselinePath));
  FleetDiff D = diffFleets(Base, Idx, {});
  bool Any = false;
  for (const std::string &S : D.RemovedWithGadgets) {
    printf("%s: target removed (baseline had gadgets)\n", S.c_str());
    Any = true;
  }
  for (const FleetTargetDiff &T : D.Targets) {
    for (const runtime::GadgetReport &G : T.Diff.LostGadgets) {
      printf("%s: lost %s\n", T.Spec.c_str(), G.describe().c_str());
      Any = true;
    }
    for (const GadgetDelta &G : T.Diff.ChangedGadgets)
      if (G.Weakened) {
        printf("%s: weakened %s -> %s\n", T.Spec.c_str(),
               G.Before.describe().c_str(), G.After.describe().c_str());
        Any = true;
      }
  }
  if (!Any) {
    printf("no gadgets lost or weakened since %s\n", BaselinePath);
    return 0;
  }
  return 2;
}

static int cmdDiff(int argc, char **argv) {
  support::ExitOnError Exit("teapot_fleet: ");
  FleetDiffOptions Opts;
  const char *JsonPath = nullptr;
  const char *Paths[2] = {nullptr, nullptr};
  int NumPaths = 0;
  for (int I = 0; I < argc; ++I) {
    if (!strcmp(argv[I], "--injected-only")) {
      Opts.InjectedOnly = true;
    } else if (!strcmp(argv[I], "--json")) {
      if (I + 1 >= argc) {
        fprintf(stderr, "teapot_fleet: --json requires an operand\n");
        return 1;
      }
      JsonPath = argv[++I];
    } else if (!strcmp(argv[I], "--help")) {
      usage(stdout);
      return 0;
    } else if (argv[I][0] == '-') {
      fprintf(stderr, "teapot_fleet: unknown argument '%s'\n", argv[I]);
      usage(stderr);
      return 1;
    } else if (NumPaths == 2) {
      fprintf(stderr, "teapot_fleet: too many operands\n");
      usage(stderr);
      return 1;
    } else {
      Paths[NumPaths++] = argv[I];
    }
  }
  if (NumPaths != 2) {
    fprintf(stderr,
            "usage: teapot_fleet diff BASELINE.index.json "
            "CURRENT.index.json\n");
    return 1;
  }
  FleetIndex Before = Exit(loadIndex(Paths[0]));
  FleetIndex After = Exit(loadIndex(Paths[1]));
  FleetDiff D = diffFleets(Before, After, Opts);
  fputs(D.describe().c_str(), stdout);
  if (JsonPath) {
    support::ArtifactWriter Writer;
    Exit(Writer.write(JsonPath, D.toJson().dump(true) + "\n"));
  }
  return D.hasRegressions() ? 2 : 0;
}

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(stderr);
    return 1;
  }
  const char *Cmd = argv[1];
  if (!strcmp(Cmd, "--help") || !strcmp(Cmd, "help")) {
    usage(stdout);
    return 0;
  }
  if (!strcmp(Cmd, "run"))
    return cmdRun(argc - 2, argv + 2);
  if (!strcmp(Cmd, "resume"))
    return cmdResume(argc - 2, argv + 2);
  if (!strcmp(Cmd, "query"))
    return cmdQuery(argc - 2, argv + 2);
  if (!strcmp(Cmd, "diff"))
    return cmdDiff(argc - 2, argv + 2);
  fprintf(stderr, "teapot_fleet: unknown command '%s'\n", Cmd);
  usage(stderr);
  return 1;
}
