//===- workloads/Injector.cpp ----------------------------------------------===//

#include "workloads/Injector.h"

#include "support/RNG.h"
#include "vm/Machine.h"

#include <algorithm>

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::isa;
using namespace teapot::workloads;

namespace {

/// Builds one V1 sample gadget as a fresh function:
///
///   push r2..r5
///   ld8 r2, [inj_input]        ; attacker-controlled index
///   ld8 r3, [probe_buf_slot]   ; 64-byte heap object
///   cmp r2, 64
///   j.ae skip                  ; bounds check (the mispredicted branch)
///   [nested: cmp r2, 64; j.ae skip]   ; second misprediction required
///   ld1 r4, [r3 + r2]          ; L1: speculative OOB load of the secret
///   shl r4, 6
///   and r4, 4032
///   ld1 r5, [r3 + r4]          ; L2: transmit via a dependent access
///   skip: pop r5..r2; ret
///
/// Every instruction carries the synthetic site marker as OrigAddr.
uint32_t buildGadgetFunction(Module &M, uint64_t Marker, uint64_t InjAddr,
                             uint64_t BufSlotAddr, bool Nested,
                             unsigned Index) {
  auto FuncIdx = static_cast<uint32_t>(M.Funcs.size());
  Function Fn;
  Fn.Name = "inj_gadget_" + std::to_string(Index);
  M.Funcs.push_back(std::move(Fn));

  BlockRef Entry = M.addBlock(FuncIdx);
  BlockRef Check2 = Nested ? M.addBlock(FuncIdx) : BlockRef();
  BlockRef Body = M.addBlock(FuncIdx);
  BlockRef Skip = M.addBlock(FuncIdx);

  auto Tag = [&](Instruction I) {
    Inst In(std::move(I));
    In.OrigAddr = Marker;
    return In;
  };

  {
    BasicBlock &B = M.block(Entry);
    for (Reg R : {R2, R3, R4, R5}) {
      Instruction P(Opcode::PUSH);
      P.A = Operand::reg(R);
      B.Insts.push_back(Tag(P));
    }
    B.Insts.push_back(Tag(Instruction::load(
        R2, MemRef{NoReg, NoReg, 1, static_cast<int64_t>(InjAddr)}, 8)));
    B.Insts.push_back(Tag(Instruction::load(
        R3, MemRef{NoReg, NoReg, 1, static_cast<int64_t>(BufSlotAddr)}, 8)));
    B.Insts.push_back(Tag(Instruction::cmp(R2, Operand::imm(64))));
    Inst Guard(Instruction::jcc(CondCode::AE, 0));
    Guard.OrigAddr = Marker;
    Guard.Target = Skip;
    B.Insts.push_back(std::move(Guard));
    B.TakenSucc = Skip;
    B.FallSucc = Nested ? Check2 : Body;
  }
  if (Nested) {
    BasicBlock &B = M.block(Check2);
    B.Insts.push_back(Tag(Instruction::cmp(R2, Operand::imm(64))));
    Inst Guard(Instruction::jcc(CondCode::AE, 0));
    Guard.OrigAddr = Marker;
    Guard.Target = Skip;
    B.Insts.push_back(std::move(Guard));
    B.TakenSucc = Skip;
    B.FallSucc = Body;
  }
  {
    // The sample gadget's speculative load aims at offsets 64..95: the
    // probe object's tail redzone plus its successor's head redzone, so
    // the out-of-bounds access is deterministically ASan-visible (an
    // unconstrained 64-bit offset would usually land inside some other
    // live allocation and leak nothing detectable).
    BasicBlock &B = M.block(Body);
    B.Insts.push_back(Tag(Instruction::mov(R4, Operand::reg(R2))));
    B.Insts.push_back(
        Tag(Instruction::alu(Opcode::AND, R4, Operand::imm(31))));
    B.Insts.push_back(
        Tag(Instruction::alu(Opcode::ADD, R4, Operand::imm(64))));
    B.Insts.push_back(
        Tag(Instruction::load(R4, MemRef{R3, R4, 1, 0}, 1))); // L1: secret
    B.Insts.push_back(
        Tag(Instruction::alu(Opcode::SHL, R4, Operand::imm(1))));
    B.Insts.push_back(
        Tag(Instruction::alu(Opcode::AND, R4, Operand::imm(63))));
    B.Insts.push_back(
        Tag(Instruction::load(R5, MemRef{R3, R4, 1, 0}, 1))); // L2: transmit
    B.FallSucc = Skip;
  }
  {
    BasicBlock &B = M.block(Skip);
    for (Reg R : {R5, R4, R3, R2}) {
      Instruction P(Opcode::POP);
      P.A = Operand::reg(R);
      B.Insts.push_back(Tag(P));
    }
    B.Insts.push_back(Tag(Instruction::ret()));
  }
  return FuncIdx;
}

} // namespace

Expected<InjectionResult> workloads::injectGadgets(
    Module &M, const InjectorOptions &Opts) {
  InjectionResult Res;
  RNG Rand(Opts.Seed);

  // Reserve two fresh .bss slots: the injected "user input" variable and
  // the probe-buffer pointer.
  obj::Section *Bss = M.Source.findSection(".bss");
  if (!Bss)
    return makeError("input binary has no .bss section");
  uint64_t SlotBase = Bss->Addr + ((Bss->BssSize + 7) & ~7ULL);
  Res.InjInputAddr = SlotBase;
  uint64_t BufSlotAddr = SlotBase + 8;
  Bss->BssSize = SlotBase + 16 - Bss->Addr;

  // Program startup allocates the 64-byte heap probe object the gadgets
  // read out of bounds (heap objects carry ASan redzones; globals do
  // not — Section 6.2.1).
  if (M.EntryFunc == NoIdx || M.Funcs[M.EntryFunc].Blocks.empty())
    return makeError("module has no entry function");
  {
    BasicBlock &Entry = M.Funcs[M.EntryFunc].Blocks[0];
    std::vector<Inst> Setup;
    Setup.emplace_back(Instruction::movImm(R0, 64));
    Setup.emplace_back(Instruction::ext(vm::ExtMalloc));
    Setup.emplace_back(Instruction::store(
        MemRef{NoReg, NoReg, 1, static_cast<int64_t>(BufSlotAddr)},
        Operand::reg(R0), 8));
    Entry.Insts.insert(Entry.Insts.begin(),
                       std::make_move_iterator(Setup.begin()),
                       std::make_move_iterator(Setup.end()));
  }

  // Pick injection points. Unreachable functions get their quota first;
  // the rest lands at block starts of randomly chosen functions.
  std::vector<std::pair<uint32_t, uint32_t>> Unreachable;
  for (const std::string &Name : Opts.UnreachableFuncs) {
    bool Found = false;
    for (uint32_t F = 0; F != M.Funcs.size(); ++F)
      if (M.Funcs[F].Name == Name && !M.Funcs[F].Blocks.empty()) {
        Unreachable.push_back({F, 0});
        Found = true;
      }
    if (!Found)
      return makeError("unreachable function '%s' not found in the binary",
                       Name.c_str());
  }
  if (Unreachable.size() > Opts.Count)
    return makeError("more unreachable points than gadgets requested");

  std::vector<std::pair<uint32_t, uint32_t>> Candidates;
  for (uint32_t F = 0; F != M.Funcs.size(); ++F) {
    if (F == M.EntryFunc)
      continue;
    bool IsUnreachable = false;
    for (const std::string &Name : Opts.UnreachableFuncs)
      if (M.Funcs[F].Name == Name)
        IsUnreachable = true;
    if (IsUnreachable)
      continue;
    // Bias injection toward early blocks: SpecTaint's evaluation placed
    // its attack points on paths the fuzzing drivers exercise, and deep
    // cold blocks would measure corpus reachability rather than
    // detection ability.
    uint32_t Limit = std::min<uint32_t>(
        4, static_cast<uint32_t>(M.Funcs[F].Blocks.size()));
    for (uint32_t B = 0; B != Limit; ++B)
      if (!M.Funcs[F].Blocks[B].Insts.empty())
        Candidates.push_back({F, B});
  }
  unsigned NeedReachable =
      Opts.Count - static_cast<unsigned>(Unreachable.size());
  if (Candidates.size() < NeedReachable)
    return makeError("binary too small: %zu candidate points for %u gadgets",
                     Candidates.size(), NeedReachable);
  // Deterministic shuffle, then take a prefix.
  for (size_t I = Candidates.size(); I > 1; --I)
    std::swap(Candidates[I - 1], Candidates[Rand.below(I)]);
  Candidates.resize(NeedReachable);
  Candidates.insert(Candidates.end(), Unreachable.begin(),
                    Unreachable.end());

  for (unsigned K = 0; K != Candidates.size(); ++K) {
    uint64_t Marker = InjectSiteBase + K;
    bool IsUnreachable = K >= NeedReachable;
    bool Nested = Opts.NestedEvery && !IsUnreachable &&
                  (K % Opts.NestedEvery) == Opts.NestedEvery - 1;
    uint32_t GadgetFunc = buildGadgetFunction(
        M, Marker, Res.InjInputAddr, BufSlotAddr, Nested, K);
    Res.GadgetFuncIdx.push_back(GadgetFunc);

    // Splice a call to the gadget at the chosen block start.
    BasicBlock &Blk =
        M.Funcs[Candidates[K].first].Blocks[Candidates[K].second];
    Inst CallIn(Instruction::call(0));
    CallIn.Callee = GadgetFunc;
    CallIn.OrigAddr = Marker;
    Blk.Insts.insert(Blk.Insts.begin(), std::move(CallIn));

    Res.SiteMarkers.push_back(Marker);
    if (IsUnreachable)
      Res.UnreachableMarkers.push_back(Marker);
    if (Nested)
      Res.NestedMarkers.push_back(Marker);
  }
  return Res;
}
