//===- workloads/Harness.cpp ----------------------------------------------===//

#include "workloads/Harness.h"

using namespace teapot;
using namespace teapot::workloads;

InstrumentedTarget::InstrumentedTarget(const core::RewriteResult &RW,
                                       runtime::RuntimeOptions RTOpts,
                                       uint64_t Budget)
    : RT(M, RW.Meta, RTOpts), Budget(Budget) {
  cantFail(M.loadObject(RW.Binary));
  RT.attach();
  M.captureBaseline();
}

void InstrumentedTarget::execute(const std::vector<uint8_t> &Input) {
  M.resetToBaseline();
  RT.resetRun();
  if (PokeAddr) {
    // Poke the *last* 8 input bytes: trailing bytes perturb the parsed
    // document far less than a corrupted header would, so coverage and
    // the injected-input sweep coexist in one fuzzed buffer.
    uint64_t V = 0;
    size_t Base = Input.size() > 8 ? Input.size() - 8 : 0;
    for (size_t I = 0; Base + I < Input.size() && I != 8; ++I)
      V |= static_cast<uint64_t>(Input[Base + I]) << (I * 8);
    M.Mem.writeUnsigned(*PokeAddr, V, 8);
  }
  M.setInput(Input);
  LastStop = M.run(Budget);
  TotalInsts += M.executedInsts();
}

json::Value InstrumentedTarget::saveState() const {
  json::Value V = json::Value::object();
  V.set("kind", "instrumented");
  V.set("runtime", RT.saveState());
  return V;
}

Error InstrumentedTarget::loadState(const json::Value &V) {
  if (!V.isObject())
    return makeError("target state: expected an object for the "
                     "instrumented target");
  const json::Value *Kind = V.find("kind");
  if (!Kind || !Kind->isString() || Kind->asString() != "instrumented")
    return makeError("target state: snapshot is for target kind '%s', "
                     "this campaign builds instrumented targets",
                     Kind && Kind->isString() ? Kind->asString().c_str()
                                              : "?");
  const json::Value *R = V.find("runtime");
  if (!R)
    return makeError("target state: missing runtime state");
  return RT.loadState(*R);
}

NativeTarget::NativeTarget(const obj::ObjectFile &Bin, uint64_t Budget)
    : Budget(Budget) {
  cantFail(M.loadObject(Bin));
  M.captureBaseline();
}

void NativeTarget::execute(const std::vector<uint8_t> &Input) {
  M.resetToBaseline();
  if (PokeAddr) {
    // Poke the *last* 8 input bytes: trailing bytes perturb the parsed
    // document far less than a corrupted header would, so coverage and
    // the injected-input sweep coexist in one fuzzed buffer.
    uint64_t V = 0;
    size_t Base = Input.size() > 8 ? Input.size() - 8 : 0;
    for (size_t I = 0; Base + I < Input.size() && I != 8; ++I)
      V |= static_cast<uint64_t>(Input[Base + I]) << (I * 8);
    M.Mem.writeUnsigned(*PokeAddr, V, 8);
  }
  M.setInput(Input);
  LastStop = M.run(Budget);
  TotalInsts += M.executedInsts();
}

EmulatorTarget::EmulatorTarget(const obj::ObjectFile &Bin,
                               baselines::SpecTaintOptions Opts,
                               uint64_t Budget)
    : E(M, Opts), Budget(Budget) {
  cantFail(M.loadObject(Bin));
  E.attach();
  M.captureBaseline();
}

void EmulatorTarget::execute(const std::vector<uint8_t> &Input) {
  M.resetToBaseline();
  E.resetRun();
  if (PokeAddr) {
    // Poke the *last* 8 input bytes: trailing bytes perturb the parsed
    // document far less than a corrupted header would, so coverage and
    // the injected-input sweep coexist in one fuzzed buffer.
    uint64_t V = 0;
    size_t Base = Input.size() > 8 ? Input.size() - 8 : 0;
    for (size_t I = 0; Base + I < Input.size() && I != 8; ++I)
      V |= static_cast<uint64_t>(Input[Base + I]) << (I * 8);
    M.Mem.writeUnsigned(*PokeAddr, V, 8);
  }
  M.setInput(Input);
  LastStop = E.run(Budget);
  TotalInsts += M.executedInsts();
}

json::Value EmulatorTarget::saveState() const {
  json::Value V = json::Value::object();
  V.set("kind", "emulator");
  V.set("emulator", E.saveState());
  return V;
}

Error EmulatorTarget::loadState(const json::Value &V) {
  if (!V.isObject())
    return makeError("target state: expected an object for the emulator "
                     "target");
  const json::Value *Kind = V.find("kind");
  if (!Kind || !Kind->isString() || Kind->asString() != "emulator")
    return makeError("target state: snapshot is for target kind '%s', "
                     "this campaign builds emulator targets",
                     Kind && Kind->isString() ? Kind->asString().c_str()
                                              : "?");
  const json::Value *S = V.find("emulator");
  if (!S)
    return makeError("target state: missing emulator state");
  return E.loadState(*S);
}

/// Wraps a target-building callable as a TargetFactory, applying the
/// optional input poke to every instance.
template <typename MakeFn>
static fuzz::TargetFactory withPoke(std::optional<uint64_t> PokeAddr,
                                    MakeFn Make) {
  return [PokeAddr, Make] {
    auto T = Make();
    if (PokeAddr)
      T->pokeInputTo(*PokeAddr);
    return std::unique_ptr<fuzz::FuzzTarget>(std::move(T));
  };
}

fuzz::TargetFactory
workloads::instrumentedTargetFactory(const core::RewriteResult &RW,
                                     runtime::RuntimeOptions RTOpts,
                                     uint64_t Budget,
                                     std::optional<uint64_t> PokeAddr) {
  return withPoke(PokeAddr, [RWp = &RW, RTOpts, Budget] {
    return std::make_unique<InstrumentedTarget>(*RWp, RTOpts, Budget);
  });
}

fuzz::TargetFactory
workloads::nativeTargetFactory(const obj::ObjectFile &Bin, uint64_t Budget,
                               std::optional<uint64_t> PokeAddr) {
  return withPoke(PokeAddr, [Binp = &Bin, Budget] {
    return std::make_unique<NativeTarget>(*Binp, Budget);
  });
}

fuzz::TargetFactory
workloads::emulatorTargetFactory(const obj::ObjectFile &Bin,
                                 baselines::SpecTaintOptions Opts,
                                 uint64_t Budget,
                                 std::optional<uint64_t> PokeAddr) {
  return withPoke(PokeAddr, [Binp = &Bin, Opts, Budget] {
    return std::make_unique<EmulatorTarget>(*Binp, Opts, Budget);
  });
}
