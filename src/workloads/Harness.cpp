//===- workloads/Harness.cpp ----------------------------------------------===//

#include "workloads/Harness.h"

using namespace teapot;
using namespace teapot::workloads;

// --- Fault-injection plumbing (shared by every target kind) ----------------

/// One counted hit of the worker.execute site; a scheduled hit escapes
/// execute() as a TeapotError the campaign quarantines. Called before
/// any per-run state changes so the target stays reusable.
static void checkExecuteFault(support::FaultInjector &Faults) {
  if (Faults.shouldFail("worker.execute"))
    throw TeapotError("worker.execute", "injected worker.execute fault");
}

/// Wires \p Faults into the machine's instrumented failure points
/// (guest page materialization, JIT arena emit/seal).
static void wireFaults(vm::Machine &M, support::FaultInjector &Faults) {
  M.Faults = &Faults;
  M.Mem.Faults = &Faults;
}

/// Appends the optional "robustness" section to a target snapshot —
/// only when there is state to carry, so plain campaigns' snapshots
/// stay byte-identical to pre-fault-injection builds.
static void saveRobustness(json::Value &V,
                           const support::FaultInjector &Faults,
                           uint64_t Degrades) {
  if (Faults.idle() && Degrades == 0)
    return;
  json::Value R = json::Value::object();
  R.set("degrades", Degrades);
  R.set("faults", Faults.countersToJson());
  V.set("robustness", std::move(R));
}

/// Restores a saveRobustness() section (absent is the idle default).
static Error loadRobustness(const json::Value &V,
                            support::FaultInjector &Faults,
                            uint64_t &DegradeBase) {
  const json::Value *R = V.find("robustness");
  if (!R)
    return Error::success();
  if (!R->isObject())
    return makeError("target state: robustness is not an object");
  const json::Value *D = R->find("degrades");
  if (!D || !D->isUInt())
    return makeError("target state: robustness.degrades missing or not "
                     "an unsigned integer");
  const json::Value *F = R->find("faults");
  if (!F)
    return makeError("target state: robustness.faults missing");
  if (Error E = Faults.countersFromJson(*F))
    return E;
  DegradeBase = D->asUInt();
  return Error::success();
}

InstrumentedTarget::InstrumentedTarget(const core::RewriteResult &RW,
                                       runtime::RuntimeOptions RTOpts,
                                       uint64_t Budget)
    : RT(M, RW.Meta, RTOpts), Budget(Budget) {
  cantFail(M.loadObject(RW.Binary));
  RT.attach();
  M.captureBaseline();
}

void InstrumentedTarget::armFaults(support::FaultPlan Plan) {
  Faults.setPlan(std::move(Plan));
  wireFaults(M, Faults);
}

void InstrumentedTarget::execute(const std::vector<uint8_t> &Input) {
  checkExecuteFault(Faults);
  M.resetToBaseline();
  RT.resetRun();
  if (PokeAddr) {
    // Poke the *last* 8 input bytes: trailing bytes perturb the parsed
    // document far less than a corrupted header would, so coverage and
    // the injected-input sweep coexist in one fuzzed buffer.
    uint64_t V = 0;
    size_t Base = Input.size() > 8 ? Input.size() - 8 : 0;
    for (size_t I = 0; Base + I < Input.size() && I != 8; ++I)
      V |= static_cast<uint64_t>(Input[Base + I]) << (I * 8);
    M.Mem.writeUnsigned(*PokeAddr, V, 8);
  }
  M.setInput(Input);
  LastStop = M.run(Budget);
  TotalInsts += M.executedInsts();
  RT.accumulateHotPathStats();
}

json::Value InstrumentedTarget::saveState() const {
  json::Value V = json::Value::object();
  V.set("kind", "instrumented");
  V.set("runtime", RT.saveState());
  saveRobustness(V, Faults, M.jitDegrades() + DegradeBase);
  return V;
}

Error InstrumentedTarget::loadState(const json::Value &V) {
  if (!V.isObject())
    return makeError("target state: expected an object for the "
                     "instrumented target");
  const json::Value *Kind = V.find("kind");
  if (!Kind || !Kind->isString() || Kind->asString() != "instrumented")
    return makeError("target state: snapshot is for target kind '%s', "
                     "this campaign builds instrumented targets",
                     Kind && Kind->isString() ? Kind->asString().c_str()
                                              : "?");
  const json::Value *R = V.find("runtime");
  if (!R)
    return makeError("target state: missing runtime state");
  if (Error E = loadRobustness(V, Faults, DegradeBase))
    return E;
  return RT.loadState(*R);
}

NativeTarget::NativeTarget(const obj::ObjectFile &Bin, uint64_t Budget)
    : Budget(Budget) {
  cantFail(M.loadObject(Bin));
  M.captureBaseline();
}

void NativeTarget::armFaults(support::FaultPlan Plan) {
  Faults.setPlan(std::move(Plan));
  wireFaults(M, Faults);
}

void NativeTarget::execute(const std::vector<uint8_t> &Input) {
  checkExecuteFault(Faults);
  M.resetToBaseline();
  if (PokeAddr) {
    // Poke the *last* 8 input bytes: trailing bytes perturb the parsed
    // document far less than a corrupted header would, so coverage and
    // the injected-input sweep coexist in one fuzzed buffer.
    uint64_t V = 0;
    size_t Base = Input.size() > 8 ? Input.size() - 8 : 0;
    for (size_t I = 0; Base + I < Input.size() && I != 8; ++I)
      V |= static_cast<uint64_t>(Input[Base + I]) << (I * 8);
    M.Mem.writeUnsigned(*PokeAddr, V, 8);
  }
  M.setInput(Input);
  LastStop = M.run(Budget);
  TotalInsts += M.executedInsts();
}

json::Value NativeTarget::saveState() const {
  json::Value V = json::Value();
  uint64_t Degrades = M.jitDegrades() + DegradeBase;
  if (Faults.idle() && Degrades == 0)
    return V; // stateless, as before fault injection existed
  V = json::Value::object();
  V.set("kind", "native");
  saveRobustness(V, Faults, Degrades);
  return V;
}

Error NativeTarget::loadState(const json::Value &V) {
  if (V.isNull())
    return Error::success(); // a plain native target's save
  if (!V.isObject())
    return makeError("target state: expected null or an object for the "
                     "native target");
  const json::Value *Kind = V.find("kind");
  if (!Kind || !Kind->isString() || Kind->asString() != "native")
    return makeError("target state: snapshot is for target kind '%s', "
                     "this campaign builds native targets",
                     Kind && Kind->isString() ? Kind->asString().c_str()
                                              : "?");
  return loadRobustness(V, Faults, DegradeBase);
}

EmulatorTarget::EmulatorTarget(const obj::ObjectFile &Bin,
                               baselines::SpecTaintOptions Opts,
                               uint64_t Budget)
    : E(M, Opts), Budget(Budget) {
  cantFail(M.loadObject(Bin));
  E.attach();
  M.captureBaseline();
}

void EmulatorTarget::armFaults(support::FaultPlan Plan) {
  Faults.setPlan(std::move(Plan));
  wireFaults(M, Faults);
}

void EmulatorTarget::execute(const std::vector<uint8_t> &Input) {
  checkExecuteFault(Faults);
  M.resetToBaseline();
  E.resetRun();
  if (PokeAddr) {
    // Poke the *last* 8 input bytes: trailing bytes perturb the parsed
    // document far less than a corrupted header would, so coverage and
    // the injected-input sweep coexist in one fuzzed buffer.
    uint64_t V = 0;
    size_t Base = Input.size() > 8 ? Input.size() - 8 : 0;
    for (size_t I = 0; Base + I < Input.size() && I != 8; ++I)
      V |= static_cast<uint64_t>(Input[Base + I]) << (I * 8);
    M.Mem.writeUnsigned(*PokeAddr, V, 8);
  }
  M.setInput(Input);
  LastStop = E.run(Budget);
  TotalInsts += M.executedInsts();
}

json::Value EmulatorTarget::saveState() const {
  json::Value V = json::Value::object();
  V.set("kind", "emulator");
  V.set("emulator", E.saveState());
  saveRobustness(V, Faults, M.jitDegrades() + DegradeBase);
  return V;
}

Error EmulatorTarget::loadState(const json::Value &V) {
  if (!V.isObject())
    return makeError("target state: expected an object for the emulator "
                     "target");
  const json::Value *Kind = V.find("kind");
  if (!Kind || !Kind->isString() || Kind->asString() != "emulator")
    return makeError("target state: snapshot is for target kind '%s', "
                     "this campaign builds emulator targets",
                     Kind && Kind->isString() ? Kind->asString().c_str()
                                              : "?");
  const json::Value *S = V.find("emulator");
  if (!S)
    return makeError("target state: missing emulator state");
  if (Error E2 = loadRobustness(V, Faults, DegradeBase))
    return E2;
  return E.loadState(*S);
}

/// Wraps a target-building callable as a TargetFactory, applying the
/// optional input poke to every instance.
template <typename MakeFn>
static fuzz::TargetFactory withPoke(std::optional<uint64_t> PokeAddr,
                                    MakeFn Make) {
  return [PokeAddr, Make] {
    auto T = Make();
    if (PokeAddr)
      T->pokeInputTo(*PokeAddr);
    return std::unique_ptr<fuzz::FuzzTarget>(std::move(T));
  };
}

fuzz::TargetFactory
workloads::instrumentedTargetFactory(const core::RewriteResult &RW,
                                     runtime::RuntimeOptions RTOpts,
                                     uint64_t Budget,
                                     std::optional<uint64_t> PokeAddr) {
  return withPoke(PokeAddr, [RWp = &RW, RTOpts, Budget] {
    return std::make_unique<InstrumentedTarget>(*RWp, RTOpts, Budget);
  });
}

fuzz::TargetFactory
workloads::nativeTargetFactory(const obj::ObjectFile &Bin, uint64_t Budget,
                               std::optional<uint64_t> PokeAddr) {
  return withPoke(PokeAddr, [Binp = &Bin, Budget] {
    return std::make_unique<NativeTarget>(*Binp, Budget);
  });
}

fuzz::TargetFactory
workloads::emulatorTargetFactory(const obj::ObjectFile &Bin,
                                 baselines::SpecTaintOptions Opts,
                                 uint64_t Budget,
                                 std::optional<uint64_t> PokeAddr) {
  return withPoke(PokeAddr, [Binp = &Bin, Opts, Budget] {
    return std::make_unique<EmulatorTarget>(*Binp, Opts, Budget);
  });
}
