//===- workloads/Programs.h - Evaluation workloads ----------------*- C++ -*-===//
///
/// \file
/// The five evaluation programs, standing in for the paper's test set
/// (jsmn, libyaml, libhtp, brotli, openssl — Section 7). Each is a real
/// input-driven parser/decoder written in MiniCC with the code shapes the
/// evaluation depends on: bounds-checked table lookups, heap buffers,
/// nested validation branches, and state machines.
///
///   jsmn_t   JSON tokenizer             (jsmn analogue)
///   yaml_t   indentation-based document parser, with an unreachable
///            emitter module (hosts Table 3's two unreachable injection
///            points)                     (libyaml analogue)
///   htp_t    HTTP/1.x request parser    (libhtp analogue)
///   brotli_t LZ-style decompressor with deeply nested match validation
///                                       (brotli analogue)
///   ssl_t    TLS-record / handshake parser (openssl server analogue)
///
/// Plus the scenario-diversity additions (ROADMAP item 3), which slot
/// into the same registry so Table 3 injection, presets, and the golden
/// scan-regress machinery pick them up for free:
///
///   base64_t  RFC 4648 decoder: table-driven sextet decoding, padding
///             and whitespace handling
///   url_t     URL splitter: scheme/host/port/path/query with
///             percent-decoding and query-parameter hashing
///   smtp_t    SMTP command state machine: strict HELO → MAIL → RCPT →
///             DATA ordering, dot-stuffed body, with an unreachable
///             reply-renderer module (unreachable injection points)
///   varint_t  varint/length-prefixed TLV decoder (protobuf wire-format
///             analogue): tag/wire-type dispatch, bounds-checked skips
///
/// See docs/WORKLOADS.md for the registry contract and how to add one.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_WORKLOADS_PROGRAMS_H
#define TEAPOT_WORKLOADS_PROGRAMS_H

#include <cstdint>
#include <string>
#include <vector>

namespace teapot {
namespace workloads {

struct Workload {
  const char *Name;
  /// One-line human description (shown by `scan_cots_binary
  /// --list-workloads` and docs/WORKLOADS.md).
  const char *Desc;
  const char *Source; // MiniCC
  /// Seed corpus for fuzzing.
  std::vector<std::vector<uint8_t>> (*Seeds)();
  /// Deterministic "large crafted input" for the run-time experiments
  /// (Figures 1 and 7).
  std::vector<uint8_t> (*LargeInput)(size_t ApproxBytes);
  /// Functions Table 3 treats as unreachable from the fuzzing driver.
  std::vector<std::string> UnreachableFuncs;
  /// Ground-truth gadget count injected for Table 3.
  unsigned InjectCount;
};

/// The workload registry: the paper's five first (in its order), then
/// the scenario-diversity additions.
const std::vector<Workload> &allWorkloads();

/// Lookup by name (ASCII case-insensitive, so CLI spellings like
/// "Brotli" resolve); null if unknown — never aborts.
const Workload *findWorkload(const std::string &Name);

} // namespace workloads
} // namespace teapot

#endif // TEAPOT_WORKLOADS_PROGRAMS_H
