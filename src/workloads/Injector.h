//===- workloads/Injector.h - Artificial Spectre gadget injection -*- C++ -*-===//
///
/// \file
/// The Table 3 methodology (adopted from SpecTaint): splice sample
/// Spectre-V1 gadgets from the Kocher examples into a lifted binary at
/// recorded positions, making the program vulnerable at known points —
/// a solid ground truth for measuring TP/FP/FN of the detectors.
///
/// As in Section 7.2, the injected gadgets read their "user input" from a
/// dedicated variable (a fresh .bss slot the harness pokes with fuzz
/// input and the runtime tags attacker-direct); real taint sources and
/// the Massage policy are disabled for this experiment.
///
/// Every instruction of gadget k carries the synthetic site marker
/// 0x10000000 + k as its OrigAddr, so a runtime report is a true positive
/// iff its Site is one of the returned markers.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_WORKLOADS_INJECTOR_H
#define TEAPOT_WORKLOADS_INJECTOR_H

#include "ir/IR.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace teapot {
namespace workloads {

inline constexpr uint64_t InjectSiteBase = 0x10000000;

struct InjectionResult {
  /// Synthetic site markers, one per injected gadget (gadget k's marker
  /// is InjectSiteBase + k).
  std::vector<uint64_t> SiteMarkers;
  /// Markers of gadgets placed in never-executed functions (expected
  /// false negatives for every tool; libyaml's two in Table 3).
  std::vector<uint64_t> UnreachableMarkers;
  /// Address of the injected-input slot (tag this attacker-direct and
  /// poke it with fuzz input before every run).
  uint64_t InjInputAddr = 0;
  /// Markers of gadgets that need a nested (double) misprediction.
  std::vector<uint64_t> NestedMarkers;
  /// Function index of each gadget (aligned with SiteMarkers); the
  /// emulator baselines map report PCs back to gadgets through the
  /// laid-out ranges of these functions.
  std::vector<uint32_t> GadgetFuncIdx;
};

struct InjectorOptions {
  unsigned Count = 5;
  uint64_t Seed = 7;
  /// Functions to force gadgets into even though the fuzzing driver
  /// never reaches them (by name; requires an unstripped input).
  std::vector<std::string> UnreachableFuncs;
  /// Every Nth gadget is guarded by a second misprediction (exercises
  /// the nested-speculation heuristics). 0 disables.
  unsigned NestedEvery = 4;
};

/// Injects gadgets into \p M (a lifted, uninstrumented module). The
/// module can then be laid out directly (for the emulator baselines) or
/// passed to a rewriter.
Expected<InjectionResult> injectGadgets(ir::Module &M,
                                        const InjectorOptions &Opts);

} // namespace workloads
} // namespace teapot

#endif // TEAPOT_WORKLOADS_INJECTOR_H
