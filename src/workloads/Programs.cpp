//===- workloads/Programs.cpp - The MiniCC evaluation programs -------------===//

#include "workloads/Programs.h"

#include "support/RNG.h"

#include <cstring>

using namespace teapot;
using namespace teapot::workloads;

//===----------------------------------------------------------------------===//
// jsmn_t: JSON tokenizer (jsmn analogue). Token storage on the heap,
// bounds-checked appends, string/primitive scanning.
//===----------------------------------------------------------------------===//

static const char *JsmnSource = R"(
int g_ntok;
int g_err;

int is_ws(int c) {
  if (c == 32 || c == 9 || c == 10 || c == 13) { return 1; }
  return 0;
}

int add_token(int *toks, int kind, int start, int end) {
  if (g_ntok >= 96) { g_err = 1; return -1; }
  toks[g_ntok * 3] = kind;
  toks[g_ntok * 3 + 1] = start;
  toks[g_ntok * 3 + 2] = end;
  g_ntok = g_ntok + 1;
  return 0;
}

int scan_string(char *js, int len, int at) {
  int i;
  for (i = at + 1; i < len; i = i + 1) {
    int c = js[i];
    if (c == '"') { return i; }
    if (c == 92) {            // backslash escape
      i = i + 1;
      if (i >= len) { return -1; }
      int e = js[i];
      if (e == 'u') {
        int k;
        for (k = 0; k < 4; k = k + 1) {
          i = i + 1;
          if (i >= len) { return -1; }
          int h = js[i];
          int ok = 0;
          if (h >= '0' && h <= '9') { ok = 1; }
          if (h >= 'a' && h <= 'f') { ok = 1; }
          if (h >= 'A' && h <= 'F') { ok = 1; }
          if (ok == 0) { return -1; }
        }
      }
    }
  }
  return -1;
}

int scan_primitive(char *js, int len, int at) {
  int i;
  for (i = at; i < len; i = i + 1) {
    int c = js[i];
    if (is_ws(c) || c == ',' || c == ']' || c == '}' || c == ':') {
      return i - 1;
    }
    if (c < 32 || c >= 127) { return -1; }
  }
  return len - 1;
}

int parse(char *js, int len, int *toks) {
  int i;
  int depth = 0;
  g_ntok = 0;
  g_err = 0;
  for (i = 0; i < len; i = i + 1) {
    int c = js[i];
    if (c == '{' || c == '[') {
      depth = depth + 1;
      if (depth > 32) { return -3; }
      add_token(toks, 1, i, i);
    } else if (c == '}' || c == ']') {
      if (depth < 1) { return -2; }
      depth = depth - 1;
      add_token(toks, 2, i, i);
    } else if (c == '"') {
      int e = scan_string(js, len, i);
      if (e < 0) { return -4; }
      add_token(toks, 3, i + 1, e);
      i = e;
    } else if (is_ws(c) || c == ',' || c == ':') {
    } else {
      int e = scan_primitive(js, len, i);
      if (e < 0) { return -5; }
      add_token(toks, 4, i, e);
      i = e;
    }
    if (g_err) { return -6; }
  }
  if (depth != 0) { return -7; }
  return g_ntok;
}

int main() {
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  int *toks = malloc(96 * 24);
  int r = parse(buf, n, toks);
  char out[8];
  out[0] = r & 255;
  write_out(out, 1);
  free(toks);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> jsmnSeeds() {
  auto S = [](const char *T) {
    return std::vector<uint8_t>(T, T + strlen(T));
  };
  return {S("{\"a\": 1, \"b\": [true, null, 2.5]}"),
          S("[1,2,3,{\"k\":\"v\"},\"s\\u00ff\"]"), S("{}"), S("[\"\\n\"]")};
}

static std::vector<uint8_t> jsmnLarge(size_t N) {
  std::string S = "[";
  RNG R(42);
  while (S.size() + 16 < N) {
    S += "{\"k";
    S += std::to_string(R.below(100));
    S += "\":";
    S += std::to_string(R.below(100000));
    S += "},";
  }
  S += "0]";
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// yaml_t: indentation-based document parser (libyaml analogue). Includes
// an emitter module that the driver never calls — the home of Table 3's
// two unreachable injection points.
//===----------------------------------------------------------------------===//

static const char *YamlSource = R"(
int g_nkeys;
int g_depth;

int key_hash(char *s, int len) {
  int h = 5381;
  int i;
  for (i = 0; i < len; i = i + 1) {
    h = h * 33 + s[i];
    h = h & 1048575;
  }
  return h;
}

int count_indent(char *line, int len) {
  int i = 0;
  while (i < len && line[i] == ' ') { i = i + 1; }
  return i;
}

int parse_scalar(char *s, int len, int at) {
  int i;
  for (i = at; i < len; i = i + 1) {
    int c = s[i];
    if (c == 10 || c == '#') { return i; }
  }
  return len;
}

int handle_line(char *s, int len, int start, int end, int *levels,
                int *keys) {
  int indent = count_indent(s + start, end - start);
  int level = indent / 2;
  if (level > 15) { return -1; }
  if (level > g_depth + 1) { return -2; }
  g_depth = level;
  int i = start + indent;
  if (i >= end) { return 0; }
  int c = s[i];
  if (c == '-') {
    levels[level] = levels[level] + 1;
    return 0;
  }
  if (c == '#') { return 0; }
  int ks = i;
  while (i < end && s[i] != ':' && s[i] != 10) { i = i + 1; }
  if (i >= end || s[i] != ':') { return -3; }
  int h = key_hash(s + ks, i - ks);
  if (g_nkeys < 64) {
    keys[g_nkeys] = h;
    g_nkeys = g_nkeys + 1;
  }
  parse_scalar(s, end, i + 1);
  return 0;
}

int parse_doc(char *s, int len, int *levels, int *keys) {
  int pos = 0;
  g_nkeys = 0;
  g_depth = 0;
  int rc = 0;
  while (pos < len) {
    int e = pos;
    while (e < len && s[e] != 10) { e = e + 1; }
    rc = handle_line(s, len, pos, e, levels, keys);
    if (rc < 0) { return rc; }
    pos = e + 1;
  }
  return g_nkeys;
}

/* Emitter module: linked into the binary but never called by the fuzzing
   driver (the two unreachable Table 3 injection points live here). */
int yaml_emit_scalar(char *out, int cap, int *keys, int idx) {
  if (idx < 0 || idx >= 64) { return -1; }
  int v = keys[idx];
  int n = 0;
  while (v > 0 && n < cap) {
    out[n] = '0' + v % 10;
    v = v / 10;
    n = n + 1;
  }
  return n;
}

int yaml_emit_doc(char *out, int cap, int *keys, int nkeys) {
  int i;
  int pos = 0;
  for (i = 0; i < nkeys; i = i + 1) {
    int n = yaml_emit_scalar(out + pos, cap - pos, keys, i);
    if (n < 0) { return -1; }
    pos = pos + n;
    if (pos >= cap) { return -2; }
    out[pos] = 10;
    pos = pos + 1;
  }
  return pos;
}

int main() {
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  int *levels = malloc(16 * 8);
  int *keys = malloc(64 * 8);
  int i;
  for (i = 0; i < 16; i = i + 1) { levels[i] = 0; }
  int r = parse_doc(buf, n, levels, keys);
  char out[8];
  out[0] = r & 255;
  write_out(out, 1);
  free(keys);
  free(levels);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> yamlSeeds() {
  auto S = [](const char *T) {
    return std::vector<uint8_t>(T, T + strlen(T));
  };
  return {S("top: 1\nlist:\n  - a\n  - b\nmap:\n  k: v\n"),
          S("a: b\n# comment\nc: d\n"), S("- x\n- y\n")};
}

static std::vector<uint8_t> yamlLarge(size_t N) {
  std::string S;
  RNG R(43);
  unsigned Indent = 0;
  while (S.size() + 32 < N) {
    S.append(Indent * 2, ' ');
    S += "key" + std::to_string(R.below(50)) + ": v" +
         std::to_string(R.below(1000)) + "\n";
    if (R.chance(1, 4) && Indent < 6)
      ++Indent;
    else if (R.chance(1, 4) && Indent > 0)
      --Indent;
  }
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// htp_t: HTTP/1.x request parser (libhtp analogue). Method table,
// percent-decoding with a hex lookup table, header-name hashing.
//===----------------------------------------------------------------------===//

static const char *HtpSource = R"(
char g_hexval[256] = "";
int g_nheaders;

int hex_init() {
  int i;
  for (i = 0; i < 256; i = i + 1) { g_hexval[i] = 255; }
  for (i = 0; i < 10; i = i + 1) { g_hexval['0' + i] = i; }
  for (i = 0; i < 6; i = i + 1) {
    g_hexval['a' + i] = 10 + i;
    g_hexval['A' + i] = 10 + i;
  }
  return 0;
}

int match_method(char *s, int len) {
  if (len >= 3 && s[0] == 'G' && s[1] == 'E' && s[2] == 'T') { return 1; }
  if (len >= 4 && s[0] == 'P' && s[1] == 'O' && s[2] == 'S' &&
      s[3] == 'T') { return 2; }
  if (len >= 4 && s[0] == 'H' && s[1] == 'E' && s[2] == 'A' &&
      s[3] == 'D') { return 3; }
  if (len >= 3 && s[0] == 'P' && s[1] == 'U' && s[2] == 'T') { return 4; }
  return 0;
}

int decode_path(char *s, int len, char *out, int cap) {
  int i = 0;
  int o = 0;
  while (i < len) {
    int c = s[i];
    if (c == ' ') { return o; }
    if (c == '%') {
      if (i + 2 >= len) { return -1; }
      int hi = g_hexval[s[i + 1]];
      int lo = g_hexval[s[i + 2]];
      if (hi == 255 || lo == 255) { return -2; }
      c = hi * 16 + lo;
      i = i + 3;
    } else {
      i = i + 1;
    }
    if (o >= cap) { return -3; }
    out[o] = c;
    o = o + 1;
  }
  return o;
}

int parse_header(char *s, int len, int start, int end, int *hashes) {
  int i = start;
  int h = 0;
  while (i < end && s[i] != ':') {
    int c = s[i];
    if (c >= 'A' && c <= 'Z') { c = c + 32; }
    if (c < 33 || c > 126) { return -1; }
    h = h * 31 + c;
    h = h & 65535;
    i = i + 1;
  }
  if (i >= end) { return -2; }
  if (g_nheaders >= 32) { return -3; }
  hashes[g_nheaders] = h;
  g_nheaders = g_nheaders + 1;
  return 0;
}

int parse_request(char *s, int len, char *path, int *hashes) {
  g_nheaders = 0;
  int i = 0;
  while (i < len && s[i] != ' ') { i = i + 1; }
  int method = match_method(s, i);
  if (method == 0) { return -1; }
  if (i + 1 >= len) { return -2; }
  int plen = decode_path(s + i + 1, len - i - 1, path, 256);
  if (plen < 0) { return -3; }
  while (i < len && s[i] != 10) { i = i + 1; }
  i = i + 1;
  while (i < len) {
    int e = i;
    while (e < len && s[e] != 10) { e = e + 1; }
    if (e == i || (e == i + 1 && s[i] == 13)) { break; }
    int rc = parse_header(s, len, i, e, hashes);
    if (rc < 0) { return rc; }
    i = e + 1;
  }
  return method * 100 + g_nheaders;
}

int main() {
  hex_init();
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  char *path = malloc(256);
  int *hashes = malloc(32 * 8);
  int r = parse_request(buf, n, path, hashes);
  char out[8];
  out[0] = r & 255;
  write_out(out, 1);
  free(hashes);
  free(path);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> htpSeeds() {
  auto S = [](const char *T) {
    return std::vector<uint8_t>(T, T + strlen(T));
  };
  return {S("GET /index.html HTTP/1.1\nHost: example.com\nAccept: */*\n\n"),
          S("POST /a%20b HTTP/1.0\nContent-Length: 0\n\n"),
          S("HEAD / HTTP/1.1\n\n")};
}

static std::vector<uint8_t> htpLarge(size_t N) {
  std::string S = "GET /";
  RNG R(44);
  for (unsigned I = 0; I != 40; ++I)
    S += "%2" + std::string(1, "0123456789abcdef"[R.below(16)]);
  S += " HTTP/1.1\n";
  while (S.size() + 40 < N) {
    S += "X-Header-" + std::to_string(R.below(1000)) + ": value" +
         std::to_string(R.below(1000)) + "\n";
  }
  S += "\n";
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// brotli_t: LZ-style decompressor (brotli analogue). Command stream of
// literal runs and back-references with distance/length validation —
// deeply nested branch structure, matching the paper's observation that
// brotli's gadgets hide behind multiple levels of nested branches.
//===----------------------------------------------------------------------===//

static const char *BrotliSource = R"(
int g_written;

int read_varint(char *in, int len, int *pos) {
  int v = 0;
  int shift = 0;
  while (*pos < len && shift < 28) {
    int b = in[*pos];
    *pos = *pos + 1;
    v = v | ((b & 127) << shift);
    if ((b & 128) == 0) { return v; }
    shift = shift + 7;
  }
  return -1;
}

int copy_literals(char *in, int len, int *pos, char *win, int wcap,
                  int count) {
  int i;
  if (count < 0 || count > 512) { return -1; }
  for (i = 0; i < count; i = i + 1) {
    if (*pos >= len) { return -2; }
    if (g_written >= wcap) { return -3; }
    win[g_written] = in[*pos];
    *pos = *pos + 1;
    g_written = g_written + 1;
  }
  return 0;
}

int copy_match(char *win, int wcap, int dist, int mlen) {
  if (mlen < 1 || mlen > 1024) { return -1; }
  if (dist < 1) { return -2; }
  if (dist > g_written) { return -3; }
  int i;
  for (i = 0; i < mlen; i = i + 1) {
    if (g_written >= wcap) { return -4; }
    win[g_written] = win[g_written - dist];
    g_written = g_written + 1;
  }
  return 0;
}

int check_crc(char *win, int n, int expect) {
  int h = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    h = h * 131 + win[i];
    h = h & 16777215;
  }
  if (h == expect) { return 1; }
  return 0;
}

int decompress(char *in, int len, char *win, int wcap) {
  int pos = 0;
  g_written = 0;
  while (pos < len) {
    int op = in[pos];
    pos = pos + 1;
    if (op == 0) {
      break;
    } else if (op == 1) {
      int count = read_varint(in, len, &pos);
      int rc = copy_literals(in, len, &pos, win, wcap, count);
      if (rc < 0) { return rc * 10; }
    } else if (op == 2) {
      int dist = read_varint(in, len, &pos);
      int mlen = read_varint(in, len, &pos);
      int rc = copy_match(win, wcap, dist, mlen);
      if (rc < 0) { return rc * 10 - 1; }
    } else if (op == 3) {
      int expect = read_varint(in, len, &pos);
      if (check_crc(win, g_written, expect)) {
        return g_written;
      }
    } else {
      return -90;
    }
  }
  return g_written;
}

int main() {
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  char *win = malloc(2048);
  int r = decompress(buf, n, win, 2048);
  char out[8];
  out[0] = r & 255;
  write_out(out, 1);
  free(win);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> brotliSeeds() {
  // op 1 <varint count> <bytes>: literals; op 2 <dist> <len>: match.
  std::vector<uint8_t> A = {1, 5, 'h', 'e', 'l', 'l', 'o', 2, 5, 5, 0};
  std::vector<uint8_t> B = {1, 3, 'a', 'b', 'c', 2, 3, 9, 3, 42, 0};
  return {A, B};
}

static std::vector<uint8_t> brotliLarge(size_t N) {
  std::vector<uint8_t> Out;
  RNG R(45);
  while (Out.size() + 24 < N && Out.size() < 3500) {
    unsigned Lit = 4 + static_cast<unsigned>(R.below(12));
    Out.push_back(1);
    Out.push_back(static_cast<uint8_t>(Lit));
    for (unsigned I = 0; I != Lit; ++I)
      Out.push_back(static_cast<uint8_t>('a' + R.below(26)));
    Out.push_back(2);
    Out.push_back(static_cast<uint8_t>(1 + R.below(Lit)));
    Out.push_back(static_cast<uint8_t>(2 + R.below(8)));
  }
  Out.push_back(0);
  return Out;
}

//===----------------------------------------------------------------------===//
// ssl_t: TLS-record + handshake parser (openssl server-driver analogue).
// Record layer framing, handshake state machine via switch, cipher-suite
// table lookup.
//===----------------------------------------------------------------------===//

static const char *SslSource = R"(
int g_suites[16] = {47, 53, 156, 157, 4865, 4866, 4867, 49195, 49196,
                    49199, 49200, 52392, 52393, 255, 10, 22};
int g_state;

int suite_supported(int s) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    if (g_suites[i] == s) { return i; }
  }
  return -1;
}

int rd16(char *p) { return p[0] * 256 + p[1]; }
int rd24(char *p) { return (p[0] << 16) + (p[1] << 8) + p[2]; }

int parse_client_hello(char *b, int len, int *chosen) {
  if (len < 40) { return -1; }
  int ver = rd16(b);
  if (ver < 768 || ver > 772) { return -2; }
  int sidlen = b[34];
  if (sidlen > 32) { return -3; }
  int at = 35 + sidlen;
  if (at + 2 > len) { return -4; }
  int nsuites = rd16(b + at) / 2;
  at = at + 2;
  int i;
  int best = -1;
  for (i = 0; i < nsuites; i = i + 1) {
    if (at + 2 > len) { return -5; }
    int s = rd16(b + at);
    at = at + 2;
    int idx = suite_supported(s);
    if (idx >= 0 && (best < 0 || idx < best)) { best = idx; }
  }
  if (best < 0) { return -6; }
  *chosen = g_suites[best];
  return 0;
}

int parse_handshake(char *b, int len, int *chosen) {
  if (len < 4) { return -10; }
  int mtype = b[0];
  int mlen = rd24(b + 1);
  if (mlen + 4 > len) { return -11; }
  switch (mtype) {
    case 1: {
      int rc = parse_client_hello(b + 4, mlen, chosen);
      if (rc < 0) { return rc; }
      g_state = 2;
      return 1;
    }
    case 11: {
      if (g_state < 2) { return -12; }
      g_state = 3;
      return 11;
    }
    case 16: {
      if (g_state < 3) { return -13; }
      g_state = 4;
      return 16;
    }
    case 20: {
      if (g_state < 4) { return -14; }
      g_state = 5;
      return 20;
    }
    default: { return -15; }
  }
  return 0;
}

int parse_records(char *b, int len, int *chosen) {
  int at = 0;
  g_state = 1;
  int count = 0;
  while (at + 5 <= len) {
    int rtype = b[at];
    int rlen = rd16(b + at + 3);
    if (rlen > 2048) { return -20; }
    if (at + 5 + rlen > len) { return -21; }
    if (rtype == 22) {
      int rc = parse_handshake(b + at + 5, rlen, chosen);
      if (rc < 0) { return rc; }
      count = count + 1;
    } else if (rtype == 20 || rtype == 21 || rtype == 23) {
      count = count + 1;
    } else {
      return -22;
    }
    at = at + 5 + rlen;
  }
  return count;
}

int main() {
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  int *chosen = malloc(8);
  *chosen = 0;
  int r = parse_records(buf, n, chosen);
  char out[8];
  out[0] = r & 255;
  out[1] = *chosen & 255;
  write_out(out, 2);
  free(chosen);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> sslSeeds() {
  // Minimal ClientHello record: type 22, ver 0x0303, handshake type 1.
  std::vector<uint8_t> Hello = {22, 3, 3, 0, 49, /*hs*/ 1, 0, 0, 45,
                                /*ver*/ 3, 3};
  Hello.resize(5 + 4 + 2 + 32, 0);       // version + random
  Hello.push_back(0);                    // session id len
  Hello.push_back(0);
  Hello.push_back(4); // cipher suites length = 4
  Hello.push_back(0);
  Hello.push_back(47);
  Hello.push_back(0);
  Hello.push_back(53);
  // Fix record/handshake lengths.
  size_t HsLen = Hello.size() - 9;
  Hello[3] = static_cast<uint8_t>((HsLen + 4) >> 8);
  Hello[4] = static_cast<uint8_t>((HsLen + 4) & 0xff);
  Hello[6] = 0;
  Hello[7] = static_cast<uint8_t>(HsLen >> 8);
  Hello[8] = static_cast<uint8_t>(HsLen & 0xff);
  return {Hello, {20, 3, 3, 0, 1, 1}, {23, 3, 3, 0, 2, 7, 7}};
}

static std::vector<uint8_t> sslLarge(size_t N) {
  std::vector<uint8_t> Out;
  RNG R(46);
  auto Hello = sslSeeds()[0];
  while (Out.size() + Hello.size() + 16 < N) {
    Out.insert(Out.end(), Hello.begin(), Hello.end());
    // A few application-data records.
    unsigned L = 8 + static_cast<unsigned>(R.below(24));
    Out.push_back(23);
    Out.push_back(3);
    Out.push_back(3);
    Out.push_back(0);
    Out.push_back(static_cast<uint8_t>(L));
    for (unsigned I = 0; I != L; ++I)
      Out.push_back(static_cast<uint8_t>(R.next()));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// base64_t: RFC 4648 decoder. Table-driven sextet decoding, '=' padding
// validation, whitespace tolerance — the classic "input byte indexes a
// 256-entry table" shape on every byte.
//===----------------------------------------------------------------------===//

static const char *Base64Source = R"(
char g_b64[256] = "";
int g_nout;

int b64_init() {
  int i;
  for (i = 0; i < 256; i = i + 1) { g_b64[i] = 255; }
  for (i = 0; i < 26; i = i + 1) { g_b64['A' + i] = i; }
  for (i = 0; i < 26; i = i + 1) { g_b64['a' + i] = 26 + i; }
  for (i = 0; i < 10; i = i + 1) { g_b64['0' + i] = 52 + i; }
  g_b64['+'] = 62;
  g_b64['/'] = 63;
  return 0;
}

int b64_decode(char *in, int len, char *out, int cap) {
  int q0;
  int q1;
  int q2;
  int q3;
  int nq = 0;
  int pad = 0;
  int i;
  g_nout = 0;
  for (i = 0; i < len; i = i + 1) {
    int c = in[i];
    if (c == 10 || c == 13 || c == 32 || c == 9) { continue; }
    if (c == '=') {
      pad = pad + 1;
      if (pad > 2) { return -1; }
      continue;
    }
    if (pad > 0) { return -2; }
    int v = g_b64[c];
    if (v == 255) { return -3; }
    if (nq == 0) { q0 = v; }
    else if (nq == 1) { q1 = v; }
    else if (nq == 2) { q2 = v; }
    else { q3 = v; }
    nq = nq + 1;
    if (nq == 4) {
      if (g_nout + 3 > cap) { return -4; }
      out[g_nout] = (q0 << 2) | (q1 >> 4);
      out[g_nout + 1] = ((q1 & 15) << 4) | (q2 >> 2);
      out[g_nout + 2] = ((q2 & 3) << 6) | q3;
      g_nout = g_nout + 3;
      nq = 0;
    }
  }
  if (nq == 2) {
    if (pad != 2) { return -5; }
    if (g_nout + 1 > cap) { return -4; }
    out[g_nout] = (q0 << 2) | (q1 >> 4);
    g_nout = g_nout + 1;
  } else if (nq == 3) {
    if (pad != 1) { return -6; }
    if (g_nout + 2 > cap) { return -4; }
    out[g_nout] = (q0 << 2) | (q1 >> 4);
    out[g_nout + 1] = ((q1 & 15) << 4) | (q2 >> 2);
    g_nout = g_nout + 2;
  } else if (nq != 0) {
    return -7;
  }
  return g_nout;
}

int main() {
  b64_init();
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  char *out = malloc(3072 + 4);
  int r = b64_decode(buf, n, out, 3072);
  int h = 0;
  if (r > 0) {
    int i;
    for (i = 0; i < r; i = i + 1) { h = (h * 131 + out[i]) & 16777215; }
  }
  char res[8];
  res[0] = r & 255;
  res[1] = h & 255;
  res[2] = (h >> 8) & 255;
  write_out(res, 3);
  free(out);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> base64Seeds() {
  auto S = [](const char *T) {
    return std::vector<uint8_t>(T, T + strlen(T));
  };
  return {S("aGVsbG8gd29ybGQ="), S("Zm9vYmFy"), S("TQ=="),
          S("QUJD\nREVG\n"), S("")};
}

static std::vector<uint8_t> base64Large(size_t N) {
  // Valid base64 of deterministic bytes, wrapped at 64 columns.
  static const char *Alpha =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  RNG R(47);
  std::string S;
  unsigned Col = 0;
  while (S.size() + 8 < N) {
    uint32_t Word = static_cast<uint32_t>(R.next());
    for (int K = 0; K != 4; ++K) {
      S += Alpha[(Word >> (K * 6)) & 63];
      if (++Col == 64) {
        S += '\n';
        Col = 0;
      }
    }
  }
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// url_t: URL splitter. scheme://host:port/path?query#fragment with
// percent-decoding ('+' as space) and query-parameter key hashing —
// validation branches over several delimiter classes.
//===----------------------------------------------------------------------===//

static const char *UrlSource = R"(
char g_hx[256] = "";
int g_nq;

int url_init() {
  int i;
  for (i = 0; i < 256; i = i + 1) { g_hx[i] = 255; }
  for (i = 0; i < 10; i = i + 1) { g_hx['0' + i] = i; }
  for (i = 0; i < 6; i = i + 1) {
    g_hx['a' + i] = 10 + i;
    g_hx['A' + i] = 10 + i;
  }
  return 0;
}

int is_alpha(int c) {
  if (c >= 'a' && c <= 'z') { return 1; }
  if (c >= 'A' && c <= 'Z') { return 1; }
  return 0;
}

int is_digit(int c) {
  if (c >= '0' && c <= '9') { return 1; }
  return 0;
}

int pct_decode(char *s, int start, int end, char *out, int cap) {
  int i = start;
  int o = 0;
  while (i < end) {
    int c = s[i];
    if (c == '%') {
      if (i + 2 >= end) { return -1; }
      int hi = g_hx[s[i + 1]];
      int lo = g_hx[s[i + 2]];
      if (hi == 255 || lo == 255) { return -2; }
      c = hi * 16 + lo;
      i = i + 3;
    } else if (c == '+') {
      c = 32;
      i = i + 1;
    } else {
      i = i + 1;
    }
    if (o >= cap) { return -3; }
    out[o] = c;
    o = o + 1;
  }
  return o;
}

int parse_query(char *s, int start, int end, int *hashes) {
  g_nq = 0;
  int i = start;
  while (i < end) {
    int ks = i;
    while (i < end && s[i] != '=' && s[i] != '&') { i = i + 1; }
    int h = 0;
    int k;
    for (k = ks; k < i; k = k + 1) { h = (h * 33 + s[k]) & 65535; }
    if (i < end && s[i] == '=') {
      i = i + 1;
      while (i < end && s[i] != '&') { i = i + 1; }
    }
    if (i < end && s[i] == '&') { i = i + 1; }
    if (g_nq >= 16) { return -1; }
    hashes[g_nq] = h;
    g_nq = g_nq + 1;
  }
  return g_nq;
}

int parse_url(char *u, int len, char *path, int *hashes) {
  int i = 0;
  if (i >= len || is_alpha(u[i]) == 0) { return -1; }
  while (i < len && (is_alpha(u[i]) || is_digit(u[i]) || u[i] == '+')) {
    i = i + 1;
  }
  if (i + 2 >= len || u[i] != ':' || u[i + 1] != '/' || u[i + 2] != '/') {
    return -2;
  }
  i = i + 3;
  int hs = i;
  while (i < len && u[i] != ':' && u[i] != '/' && u[i] != '?') {
    i = i + 1;
  }
  if (i == hs) { return -3; }
  int port = 0;
  if (i < len && u[i] == ':') {
    i = i + 1;
    int ds = i;
    while (i < len && is_digit(u[i])) {
      port = port * 10 + (u[i] - '0');
      if (port > 65535) { return -4; }
      i = i + 1;
    }
    if (i == ds) { return -5; }
  }
  int ps = i;
  while (i < len && u[i] != '?' && u[i] != '#') { i = i + 1; }
  int plen = pct_decode(u, ps, i, path, 256);
  if (plen < 0) { return -6; }
  int nq = 0;
  if (i < len && u[i] == '?') {
    int qs = i + 1;
    int qe = qs;
    while (qe < len && u[qe] != '#') { qe = qe + 1; }
    nq = parse_query(u, qs, qe, hashes);
    if (nq < 0) { return -7; }
  }
  return plen * 1000000 + nq * 100000 + port;
}

int main() {
  url_init();
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  char *path = malloc(256);
  int *hashes = malloc(16 * 8);
  int r = parse_url(buf, n, path, hashes);
  char res[8];
  res[0] = r & 255;
  res[1] = (r >> 8) & 255;
  res[2] = g_nq & 255;
  write_out(res, 3);
  free(hashes);
  free(path);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> urlSeeds() {
  auto S = [](const char *T) {
    return std::vector<uint8_t>(T, T + strlen(T));
  };
  return {S("https://example.com:8443/a%20b/c?x=1&y=two#frag"),
          S("http://host/path+with+plus?q=%41%42"), S("ftp://h/"),
          S("gopher://hole:70/x")};
}

static std::vector<uint8_t> urlLarge(size_t N) {
  std::string S = "https://bench.example.com:8080/";
  RNG R(48);
  for (unsigned I = 0; I != 30; ++I)
    S += "seg%2" + std::string(1, "0123456789abcdef"[R.below(16)]) + "/";
  S += "leaf?";
  while (S.size() + 24 < N) {
    S += "k" + std::to_string(R.below(1000)) + "=v%4" +
         std::string(1, "0123456789abcdef"[R.below(16)]) + "&";
  }
  S += "end=1";
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// smtp_t: SMTP command state machine. Strict HELO -> MAIL -> RCPT ->
// DATA ordering, dot-stuffed body mode, RSET/NOOP/QUIT — a line-based
// protocol automaton (vs libhtp's single-request parse). The reply
// renderer is linked but never called by the driver: it hosts this
// workload's unreachable Table 3 injection points.
//===----------------------------------------------------------------------===//

static const char *SmtpSource = R"(
int g_state;
int g_nrcpt;
int g_nlines;
int g_bodyhash;

int up(int c) {
  if (c >= 'a' && c <= 'z') { return c - 32; }
  return c;
}

int match4(char *s, int len, int a, int b, int c, int d) {
  if (len < 4) { return 0; }
  if (up(s[0]) == a && up(s[1]) == b && up(s[2]) == c && up(s[3]) == d) {
    return 1;
  }
  return 0;
}

int handle_cmd(char *s, int start, int end) {
  int len = end - start;
  if (match4(s + start, len, 'H', 'E', 'L', 'O')) {
    if (g_state != 0) { return -1; }
    if (len < 6) { return -2; }
    g_state = 1;
    return 1;
  }
  if (match4(s + start, len, 'M', 'A', 'I', 'L')) {
    if (g_state != 1) { return -3; }
    g_state = 2;
    return 2;
  }
  if (match4(s + start, len, 'R', 'C', 'P', 'T')) {
    if (g_state != 2 && g_state != 3) { return -4; }
    if (g_nrcpt >= 8) { return -5; }
    g_nrcpt = g_nrcpt + 1;
    g_state = 3;
    return 3;
  }
  if (match4(s + start, len, 'D', 'A', 'T', 'A')) {
    if (g_state != 3) { return -6; }
    if (g_nrcpt < 1) { return -7; }
    g_state = 4;
    return 4;
  }
  if (match4(s + start, len, 'Q', 'U', 'I', 'T')) {
    g_state = 5;
    return 5;
  }
  if (match4(s + start, len, 'N', 'O', 'O', 'P')) { return 6; }
  if (match4(s + start, len, 'R', 'S', 'E', 'T')) {
    if (g_state > 1) { g_state = 1; }
    g_nrcpt = 0;
    return 7;
  }
  return -8;
}

int handle_body_line(char *s, int start, int end) {
  if (end - start == 1 && s[start] == '.') {
    g_state = 1;
    g_nrcpt = 0;
    return 10;
  }
  int i = start;
  if (i < end && s[i] == '.') { i = i + 1; }
  while (i < end) {
    g_bodyhash = (g_bodyhash * 31 + s[i]) & 16777215;
    i = i + 1;
  }
  g_nlines = g_nlines + 1;
  if (g_nlines > 64) { return -9; }
  return 9;
}

int session(char *s, int len) {
  int pos = 0;
  g_state = 0;
  g_nrcpt = 0;
  g_nlines = 0;
  g_bodyhash = 0;
  int cmds = 0;
  while (pos < len) {
    int e = pos;
    while (e < len && s[e] != 10) { e = e + 1; }
    int end = e;
    if (end > pos && s[end - 1] == 13) { end = end - 1; }
    int rc;
    if (g_state == 4) { rc = handle_body_line(s, pos, end); }
    else { rc = handle_cmd(s, pos, end); }
    if (rc < 0) { return rc; }
    cmds = cmds + 1;
    if (g_state == 5) { break; }
    pos = e + 1;
  }
  return cmds * 100 + g_state;
}

/* Reply renderer: linked into the binary but never called by the
   fuzzing driver (the unreachable Table 3 injection points live here,
   like libyaml's emitter module). */
int smtp_fmt_code(char *out, int cap, int code) {
  if (cap < 4) { return -1; }
  out[0] = '0' + (code / 100) % 10;
  out[1] = '0' + (code / 10) % 10;
  out[2] = '0' + code % 10;
  out[3] = 32;
  return 4;
}

int smtp_render_reply(char *out, int cap, int code, char *msg, int mlen) {
  int n = smtp_fmt_code(out, cap, code);
  if (n < 0) { return -1; }
  int i;
  for (i = 0; i < mlen; i = i + 1) {
    if (n >= cap) { return -2; }
    out[n] = msg[i];
    n = n + 1;
  }
  return n;
}

int main() {
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  int r = session(buf, n);
  char res[8];
  res[0] = r & 255;
  res[1] = g_bodyhash & 255;
  res[2] = (g_bodyhash >> 8) & 255;
  res[3] = g_nrcpt & 255;
  write_out(res, 4);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> smtpSeeds() {
  auto S = [](const char *T) {
    return std::vector<uint8_t>(T, T + strlen(T));
  };
  return {S("HELO mx.example\nMAIL FROM:<a@b>\nRCPT TO:<c@d>\nDATA\n"
            "Subject: hi\n\nbody text\n.\nQUIT\n"),
          S("helo relay.test\r\nmail from:<x@y>\r\nrcpt to:<z@w>\r\n"
            "rcpt to:<q@w>\r\ndata\r\n..dot stuffed\r\n.\r\nquit\r\n"),
          S("HELO h.example\nNOOP\nRSET\nMAIL FROM:<a@b>\n")};
}

static std::vector<uint8_t> smtpLarge(size_t N) {
  std::string S = "HELO bulk.example\nMAIL FROM:<gen@example>\n"
                  "RCPT TO:<inbox@example>\nDATA\n";
  RNG R(49);
  // Stay under the 64-body-line cap; pack long lines instead.
  for (unsigned Line = 0; Line != 60 && S.size() + 80 < N; ++Line) {
    S += "X-Line-" + std::to_string(Line) + ": ";
    unsigned Len = 40 + static_cast<unsigned>(R.below(30));
    for (unsigned I = 0; I != Len; ++I)
      S += static_cast<char>('a' + R.below(26));
    S += "\n";
  }
  S += ".\nQUIT\n";
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// varint_t: varint/length-prefixed TLV decoder (protobuf wire-format
// analogue). Tag -> (field, wire-type) dispatch, bounds-checked
// length-delimited skips, per-field counting table.
//===----------------------------------------------------------------------===//

static const char *VarintSource = R"(
int g_counts[16];
int g_nrec;

int vint_read(char *in, int len, int *pos) {
  int v = 0;
  int shift = 0;
  while (*pos < len) {
    int b = in[*pos];
    *pos = *pos + 1;
    v = v | ((b & 127) << shift);
    if ((b & 128) == 0) { return v; }
    shift = shift + 7;
    if (shift > 28) { return -1; }
  }
  return -2;
}

int decode_msg(char *in, int len) {
  int pos = 0;
  int acc = 0;
  int i;
  g_nrec = 0;
  for (i = 0; i < 16; i = i + 1) { g_counts[i] = 0; }
  while (pos < len) {
    int tag = vint_read(in, len, &pos);
    if (tag < 0) { return -10; }
    if (tag == 0) { break; }
    int field = (tag >> 3) & 15;
    int wire = tag & 7;
    if (wire == 0) {
      int v = vint_read(in, len, &pos);
      if (v < 0) { return -11; }
      acc = (acc + v) & 16777215;
    } else if (wire == 2) {
      int l = vint_read(in, len, &pos);
      if (l < 0) { return -12; }
      if (l > len - pos) { return -13; }
      int k;
      for (k = 0; k < l; k = k + 1) {
        acc = (acc * 17 + in[pos + k]) & 16777215;
      }
      pos = pos + l;
    } else if (wire == 5) {
      if (pos + 4 > len) { return -14; }
      acc = (acc + in[pos] + in[pos + 1] * 256) & 16777215;
      pos = pos + 4;
    } else {
      return -15;
    }
    g_counts[field] = g_counts[field] + 1;
    g_nrec = g_nrec + 1;
    if (g_nrec > 256) { return -16; }
  }
  return acc;
}

int main() {
  int n = input_size();
  if (n > 4096) { n = 4096; }
  char *buf = malloc(n + 1);
  read_input(buf, n);
  int r = decode_msg(buf, n);
  char res[8];
  res[0] = r & 255;
  res[1] = (r >> 8) & 255;
  res[2] = g_nrec & 255;
  res[3] = g_counts[1] & 255;
  write_out(res, 4);
  free(buf);
  return 0;
}
)";

static std::vector<std::vector<uint8_t>> varintSeeds() {
  // 0x08: field 1 wire 0 (varint); 0x12: field 2 wire 2 (bytes);
  // 0x1d: field 3 wire 5 (fixed32); 0x00: end marker.
  std::vector<uint8_t> A = {0x08, 5, 0x12, 3, 'a', 'b', 'c',
                            0x1d, 1, 2, 3, 4, 0x00};
  std::vector<uint8_t> B = {0x08, 0x96, 0x01, 0x12, 0x00, 0x00};
  std::vector<uint8_t> C = {0x12, 6, 'v', 'a', 'r', 'i', 'n', 't', 0x00};
  return {A, B, C};
}

static std::vector<uint8_t> varintLarge(size_t N) {
  std::vector<uint8_t> Out;
  RNG R(50);
  while (Out.size() + 24 < N && Out.size() < 3500) {
    unsigned Field = 1 + static_cast<unsigned>(R.below(7));
    if (R.chance(1, 2)) {
      Out.push_back(static_cast<uint8_t>(Field << 3)); // wire 0
      uint32_t V = static_cast<uint32_t>(R.below(1 << 20));
      while (V >= 128) {
        Out.push_back(static_cast<uint8_t>((V & 127) | 128));
        V >>= 7;
      }
      Out.push_back(static_cast<uint8_t>(V));
    } else {
      Out.push_back(static_cast<uint8_t>((Field << 3) | 2)); // wire 2
      unsigned L = 4 + static_cast<unsigned>(R.below(12));
      Out.push_back(static_cast<uint8_t>(L));
      for (unsigned I = 0; I != L; ++I)
        Out.push_back(static_cast<uint8_t>(R.next()));
    }
  }
  Out.push_back(0x00);
  return Out;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

const std::vector<Workload> &workloads::allWorkloads() {
  static const std::vector<Workload> All = {
      {"jsmn", "JSON tokenizer (jsmn analogue)", JsmnSource, jsmnSeeds,
       jsmnLarge, {}, 3},
      {"libyaml",
       "indentation-based document parser with unreachable emitter module "
       "(libyaml analogue)",
       YamlSource,
       yamlSeeds,
       yamlLarge,
       {"yaml_emit_scalar", "yaml_emit_doc"},
       10},
      {"libhtp", "HTTP/1.x request parser (libhtp analogue)", HtpSource,
       htpSeeds, htpLarge, {}, 7},
      {"brotli", "LZ-style decompressor with nested match validation "
                 "(brotli analogue)",
       BrotliSource, brotliSeeds, brotliLarge, {}, 13},
      // openssl is excluded from the Table 3 injection experiment
      // (SpecTaint never published its injection points), hence count 0.
      {"openssl", "TLS-record / handshake parser (openssl server analogue)",
       SslSource, sslSeeds, sslLarge, {}, 0},
      {"base64", "RFC 4648 base64 decoder: table-driven sextets, padding "
                 "and whitespace handling",
       Base64Source, base64Seeds, base64Large, {}, 5},
      {"urlparse", "URL splitter: scheme/host/port/path/query with "
                   "percent-decoding and query hashing",
       UrlSource, urlSeeds, urlLarge, {}, 6},
      {"smtp",
       "SMTP command state machine with dot-stuffed body and unreachable "
       "reply renderer",
       SmtpSource,
       smtpSeeds,
       smtpLarge,
       {"smtp_fmt_code", "smtp_render_reply"},
       6},
      {"varint", "varint/length-prefixed TLV decoder (protobuf wire-format "
                 "analogue)",
       VarintSource, varintSeeds, varintLarge, {}, 9},
  };
  return All;
}

const Workload *workloads::findWorkload(const std::string &Name) {
  auto Lower = [](unsigned char C) {
    return static_cast<char>(C >= 'A' && C <= 'Z' ? C - 'A' + 'a' : C);
  };
  for (const Workload &W : allWorkloads()) {
    const char *P = W.Name;
    size_t I = 0;
    for (; *P && I != Name.size(); ++P, ++I)
      if (Lower(static_cast<unsigned char>(*P)) !=
          Lower(static_cast<unsigned char>(Name[I])))
        break;
    if (!*P && I == Name.size())
      return &W;
  }
  return nullptr;
}
