//===- workloads/Harness.h - VM / runtime / fuzzer glue -----------*- C++ -*-===//
///
/// \file
/// Ready-made fuzz targets wiring a binary into a Machine with the right
/// detector attached:
///
///   InstrumentedTarget  Teapot- or SpecFuzz-instrumented binary + the
///                       SpecRuntime (the normal evaluation path)
///   NativeTarget        uninstrumented binary, no detector (the
///                       normalization baseline of Figures 1 and 7)
///   EmulatorTarget      uninstrumented binary under the SpecTaint-style
///                       emulator
///
/// All targets support "poking" the first 8 input bytes into a chosen
/// guest address before each run — how the Table 3 experiment feeds the
/// injected gadgets' designated user-input variable.
///
/// The *TargetFactory helpers wrap each kind as a fuzz::TargetFactory so
/// a Campaign can construct one isolated instance per worker over the
/// same (shared, read-only) rewrite result or binary.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_WORKLOADS_HARNESS_H
#define TEAPOT_WORKLOADS_HARNESS_H

#include "baselines/SpecTaint.h"
#include "core/TeapotRewriter.h"
#include "fuzz/Fuzzer.h"
#include "runtime/SpecRuntime.h"
#include "support/FaultInjector.h"
#include "vm/Machine.h"

#include <optional>

namespace teapot {
namespace workloads {

/// Default per-run instruction budget. Simulation multiplies executed
/// instructions, so instrumented runs need generous budgets.
inline constexpr uint64_t DefaultRunBudget = 80'000'000;

class InstrumentedTarget : public fuzz::FuzzTarget {
public:
  InstrumentedTarget(const core::RewriteResult &RW,
                     runtime::RuntimeOptions RTOpts,
                     uint64_t Budget = DefaultRunBudget);

  void execute(const std::vector<uint8_t> &Input) override;
  const std::vector<uint8_t> &normalCoverage() const override {
    return RT.Cov.normalMap();
  }
  const std::vector<uint8_t> &specCoverage() const override {
    return RT.Cov.specMap();
  }
  const runtime::ReportSink *reports() const override { return &RT.Reports; }
  uint64_t executedInsts() const override { return TotalInsts; }

  /// Persists the SpecRuntime's cross-run state (heuristic counters,
  /// accumulated coverage, report sink) so a resumed campaign's fresh
  /// target continues byte-identically; see FuzzTarget::saveState.
  json::Value saveState() const override;
  Error loadState(const json::Value &V) override;

  void pokeInputTo(uint64_t Addr) { PokeAddr = Addr; }

  /// Arms deterministic fault injection: the plan drives this target's
  /// private injector, which is wired into the machine's memory and JIT
  /// arena (docs/ROBUSTNESS.md). The `worker.execute` site throws a
  /// TeapotError at the top of execute() — the campaign contains it in
  /// quarantine.
  void armFaults(support::FaultPlan Plan);

  fuzz::FuzzTarget::RobustnessStats robustnessStats() const override {
    return {M.jitDegrades() + DegradeBase, RT.Stats.WatchdogTrips,
            Faults.injectedCount()};
  }

  /// The runtime accumulates the VM's per-run counters once per
  /// execution; its stats (and thus these) survive save/resume.
  fuzz::FuzzTarget::HotPathStats hotPathStats() const override {
    return {RT.Stats.TlbGuestHits, RT.Stats.TlbRuntimeHits,
            RT.Stats.TlbSlowPathCalls, RT.Stats.IntrinsicFastPathHits};
  }

  vm::Machine M;
  runtime::SpecRuntime RT;
  vm::StopState LastStop;
  support::FaultInjector Faults;

private:
  uint64_t Budget;
  uint64_t TotalInsts = 0;
  /// Degradations carried over from a resumed campaign's snapshot (the
  /// machine's own counter restarts at 0 in a fresh target).
  uint64_t DegradeBase = 0;
  std::optional<uint64_t> PokeAddr;
};

class NativeTarget : public fuzz::FuzzTarget {
public:
  NativeTarget(const obj::ObjectFile &Bin,
               uint64_t Budget = DefaultRunBudget);

  void execute(const std::vector<uint8_t> &Input) override;
  const std::vector<uint8_t> &normalCoverage() const override {
    return Empty;
  }
  const std::vector<uint8_t> &specCoverage() const override { return Empty; }
  /// No detector attached: honestly reports "no gadget accounting"
  /// rather than a silent zero count.
  const runtime::ReportSink *reports() const override { return nullptr; }
  uint64_t executedInsts() const override { return TotalInsts; }

  void pokeInputTo(uint64_t Addr) { PokeAddr = Addr; }

  /// See InstrumentedTarget::armFaults.
  void armFaults(support::FaultPlan Plan);

  fuzz::FuzzTarget::RobustnessStats robustnessStats() const override {
    return {M.jitDegrades() + DegradeBase, 0, Faults.injectedCount()};
  }

  /// A plain native target is stateless; once faults are armed (or a
  /// degradation happened) the injector's stream position must survive
  /// save/resume, so saveState() grows a robustness section.
  json::Value saveState() const override;
  Error loadState(const json::Value &V) override;

  vm::Machine M;
  vm::StopState LastStop;
  support::FaultInjector Faults;

private:
  uint64_t Budget;
  uint64_t TotalInsts = 0;
  uint64_t DegradeBase = 0;
  std::optional<uint64_t> PokeAddr;
  std::vector<uint8_t> Empty;
};

class EmulatorTarget : public fuzz::FuzzTarget {
public:
  EmulatorTarget(const obj::ObjectFile &Bin,
                 baselines::SpecTaintOptions Opts,
                 uint64_t Budget = DefaultRunBudget);

  void execute(const std::vector<uint8_t> &Input) override;
  const std::vector<uint8_t> &normalCoverage() const override {
    return Empty;
  }
  const std::vector<uint8_t> &specCoverage() const override { return Empty; }
  const runtime::ReportSink *reports() const override { return &E.Reports; }
  uint64_t executedInsts() const override { return TotalInsts; }

  /// Persists the emulator's cross-run state (branch try counters,
  /// report sink); see FuzzTarget::saveState.
  json::Value saveState() const override;
  Error loadState(const json::Value &V) override;

  void pokeInputTo(uint64_t Addr) { PokeAddr = Addr; }

  /// See InstrumentedTarget::armFaults.
  void armFaults(support::FaultPlan Plan);

  fuzz::FuzzTarget::RobustnessStats robustnessStats() const override {
    return {M.jitDegrades() + DegradeBase, 0, Faults.injectedCount()};
  }

  vm::Machine M;
  baselines::SpecTaintEmulator E;
  vm::StopState LastStop;
  support::FaultInjector Faults;

private:
  uint64_t Budget;
  uint64_t TotalInsts = 0;
  uint64_t DegradeBase = 0;
  std::optional<uint64_t> PokeAddr;
  std::vector<uint8_t> Empty;
};

// --- Campaign target factories --------------------------------------------
//
// Each returned factory builds a fresh, isolated target per call. The
// referenced rewrite result / binary is captured by pointer and must
// outlive the campaign; it is only ever read (Machine::loadObject copies
// it into guest memory), so any number of workers can share it.

fuzz::TargetFactory
instrumentedTargetFactory(const core::RewriteResult &RW,
                          runtime::RuntimeOptions RTOpts,
                          uint64_t Budget = DefaultRunBudget,
                          std::optional<uint64_t> PokeAddr = std::nullopt);

fuzz::TargetFactory
nativeTargetFactory(const obj::ObjectFile &Bin,
                    uint64_t Budget = DefaultRunBudget,
                    std::optional<uint64_t> PokeAddr = std::nullopt);

fuzz::TargetFactory
emulatorTargetFactory(const obj::ObjectFile &Bin,
                      baselines::SpecTaintOptions Opts,
                      uint64_t Budget = DefaultRunBudget,
                      std::optional<uint64_t> PokeAddr = std::nullopt);

} // namespace workloads
} // namespace teapot

#endif // TEAPOT_WORKLOADS_HARNESS_H
