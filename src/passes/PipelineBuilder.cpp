//===- passes/PipelineBuilder.cpp -----------------------------------------===//

#include "passes/PipelineBuilder.h"

#include "disasm/Disassembler.h"
#include "passes/BaselineInstrumentPass.h"
#include "passes/CloneShadowFunctionsPass.h"
#include "passes/LayoutAndMetaPass.h"
#include "passes/MarkerPlacementPass.h"
#include "passes/RealCopyInstrumentPass.h"
#include "passes/ShadowCopyInstrumentPass.h"
#include "passes/TrampolinePass.h"

using namespace teapot;
using namespace teapot::core;
using namespace teapot::passes;

PassManager PipelineBuilder::build() && {
  PassManager PM;
  for (std::unique_ptr<ModulePass> &P : Passes)
    PM.add(std::move(P));
  Passes.clear();
  return PM;
}

std::vector<std::string> PipelineBuilder::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const std::unique_ptr<ModulePass> &P : Passes)
    Names.push_back(P->name());
  return Names;
}

PipelineBuilder PipelineBuilder::teapot(const RewriterOptions &Opts) {
  PipelineBuilder B;
  B.addPass<CloneShadowFunctionsPass>();
  B.addPass<TrampolinePass>();
  B.addPass<MarkerPlacementPass>();
  B.addPass<RealCopyInstrumentPass>(RealCopyInstrumentPass::Config{
      Opts.EnableDift, Opts.EnableCoverage});
  B.addPass<ShadowCopyInstrumentPass>(ShadowCopyInstrumentPass::Config{
      Opts.EnableDift, Opts.EnableCoverage, Opts.RestoreInterval});
  B.addPass<LayoutAndMetaPass>();
  return B;
}

PipelineBuilder
PipelineBuilder::specFuzzBaseline(const RewriterOptions &Opts) {
  PipelineBuilder B;
  B.addPass<TrampolinePass>();
  B.addPass<BaselineInstrumentPass>(BaselineInstrumentPass::Config{
      Opts.EnableCoverage, Opts.RestoreInterval});
  B.addPass<LayoutAndMetaPass>();
  return B;
}

PipelineBuilder PipelineBuilder::forOptions(const RewriterOptions &Opts) {
  switch (Opts.Mode) {
  case RewriteMode::Teapot:
    return teapot(Opts);
  case RewriteMode::SpecFuzzBaseline:
    return specFuzzBaseline(Opts);
  }
  reportFatalError("unknown RewriteMode");
}

Expected<RewriteResult> passes::runPipeline(ir::Module M,
                                            PipelineBuilder Pipeline) {
  if (M.Funcs.empty())
    return makeError("module has no functions to rewrite");
  RewriteContext Ctx(M);
  PassManager PM = std::move(Pipeline).build();
  if (Error Err = PM.run(Ctx))
    return Err;
  RewriteResult Res;
  Res.Binary = std::move(Ctx.Binary);
  Res.Meta = std::move(Ctx.Meta);
  Res.Stats = PM.stats();
  return Res;
}

Expected<RewriteResult> passes::runPipeline(const obj::ObjectFile &In,
                                            PipelineBuilder Pipeline) {
  auto ModOrErr = disasm::disassemble(In);
  if (!ModOrErr)
    return ModOrErr.takeError();
  return runPipeline(std::move(*ModOrErr), std::move(Pipeline));
}
