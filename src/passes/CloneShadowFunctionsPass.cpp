//===- passes/CloneShadowFunctionsPass.cpp --------------------------------===//

#include "passes/CloneShadowFunctionsPass.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::passes;

Error CloneShadowFunctionsPass::run(RewriteContext &Ctx) {
  Module &M = Ctx.M;
  const uint32_t NumReal = Ctx.NumReal;
  if (M.Funcs.size() != NumReal)
    return makeError("clone-shadow-functions must run first (module "
                     "already grew from %u to %zu functions)",
                     NumReal, M.Funcs.size());
  if (!Ctx.TrampolineRefs.empty() || !Ctx.BranchIdOfBlock.empty())
    return makeError("clone-shadow-functions must run before "
                     "create-trampolines: single-copy trampolines would be "
                     "cloned and StartSim would simulate in the Real Copy");

  M.Funcs.reserve(NumReal * 2);
  for (uint32_t F = 0; F != NumReal; ++F) {
    Function Clone = M.Funcs[F]; // byte-for-byte copy
    Clone.Name += "$spec";
    Clone.IsShadow = true;
    Clone.ShadowOf = F;
    Clone.ShadowIdx = NoIdx;
    M.Funcs[F].ShadowIdx = NumReal + F;

    auto Remap = [&](BlockRef &R) {
      assert(R.Func < NumReal && "clone input already references a shadow");
      R.Func += NumReal;
    };
    for (BasicBlock &B : Clone.Blocks) {
      if (B.TakenSucc)
        Remap(*B.TakenSucc);
      if (B.FallSucc)
        Remap(*B.FallSucc);
      for (BlockRef &R : B.IndirectSuccs)
        Remap(R);
      for (Inst &In : B.Insts) {
        if (In.Target)
          Remap(*In.Target);
        if (In.Callee != NoIdx)
          In.Callee += NumReal;
        // FuncImm deliberately left pointing at the Real Copy.
      }
    }
    M.Funcs.push_back(std::move(Clone));
  }
  Ctx.count("functions.cloned", NumReal);
  return Error::success();
}
