//===- passes/Pass.h - Rewriting pass interface -------------------*- C++ -*-===//
///
/// \file
/// The instrumentation-pass layer: a pipeline of ModulePasses transforms
/// a lifted ir::Module into an instrumented binary plus its runtime side
/// tables. Each pipeline stage of the paper (shadow cloning, trampoline
/// creation, marker placement, Real/Shadow-Copy instrumentation, layout +
/// metadata) is one pass; a shared RewriteContext carries the module, the
/// MetaTable under construction, and the cross-pass indices the stages
/// hand to each other.
///
/// Passes only ever *append* functions/blocks/instructions (the IR's
/// index-stability contract), so a BlockRef recorded by an early pass
/// stays valid for every later one.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_PASS_H
#define TEAPOT_PASSES_PASS_H

#include "ir/IR.h"
#include "passes/Statistics.h"
#include "runtime/MetaTable.h"
#include "support/Error.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

namespace teapot {
namespace passes {

/// State shared by the passes of one pipeline run. Early passes fill the
/// cross-pass indices; the instrumentation passes consume them; the
/// layout pass produces the outputs.
class RewriteContext {
public:
  explicit RewriteContext(ir::Module &M)
      : M(M), NumReal(static_cast<uint32_t>(M.Funcs.size())) {}

  RewriteContext(const RewriteContext &) = delete;
  RewriteContext &operator=(const RewriteContext &) = delete;

  ir::Module &M;
  /// Function count before any pass ran: functions [0, NumReal) are the
  /// Real Copy, anything appended later is Shadow Copy.
  const uint32_t NumReal;

  /// --- Branch-site bookkeeping (TrampolinePass -> instrumentation). ---
  /// Branch site id -> trampoline block.
  std::vector<ir::BlockRef> TrampolineRefs;
  /// Real-copy (func, block) of a conditional branch -> branch site id.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> BranchIdOfBlock;
  /// Blocks that are trampoline glue, not program code; instrumentation
  /// passes must leave them untouched.
  std::set<std::pair<uint32_t, uint32_t>> TrampolineBlocks;

  /// --- Marker bookkeeping (MarkerPlacementPass -> RealCopy/Layout). ---
  /// Real-copy (func, block) needing a marker -> marker id.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> MarkerIdOfBlock;
  /// Marker id -> real block carrying the marker NOP.
  std::vector<ir::BlockRef> MarkerBlockRefs;
  /// Marker id -> Shadow-Copy resume block.
  std::vector<ir::BlockRef> MarkerResumeRefs;

  /// --- Coverage guard id allocation (instrumentation -> Layout). ---
  uint32_t NumNormalGuards = 0;
  uint32_t NumSpecGuards = 0;

  /// --- Outputs (LayoutAndMetaPass). ---
  obj::ObjectFile Binary;
  runtime::MetaTable Meta;

  /// True once CloneShadowFunctionsPass has run.
  bool hasShadows() const { return M.Funcs.size() > NumReal; }

  /// Shadow counterpart of a Real-Copy block.
  ir::BlockRef shadowBlock(ir::BlockRef Real) const {
    uint32_t SIdx = M.Funcs[Real.Func].ShadowIdx;
    assert(SIdx != ir::NoIdx && "function has no shadow copy");
    return {SIdx, Real.Block};
  }

  bool isTrampoline(uint32_t F, uint32_t B) const {
    return TrampolineBlocks.count({F, B}) != 0;
  }

  /// Bumps a named counter on the currently running pass's statistics
  /// (no-op when run outside a PassManager).
  void count(const std::string &Counter, uint64_t N = 1) {
    if (ActiveStat)
      ActiveStat->Counters[Counter] += N;
  }

  /// Set by PassManager around each pass's run().
  PassStat *ActiveStat = nullptr;
};

/// One stage of the rewriting pipeline.
class ModulePass {
public:
  virtual ~ModulePass() = default;

  /// Stable kebab-case stage name (statistics, diagnostics, tests).
  virtual const char *name() const = 0;

  /// Transforms the module / context. Returning a failure aborts the
  /// pipeline. Passes validate their own ordering preconditions here
  /// (e.g. the shadow passes require CloneShadowFunctionsPass first).
  virtual Error run(RewriteContext &Ctx) = 0;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_PASS_H
