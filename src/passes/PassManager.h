//===- passes/PassManager.h - Pipeline execution ------------------*- C++ -*-===//
///
/// \file
/// Runs a sequence of ModulePasses over one RewriteContext, recording
/// per-pass wall time and module-growth statistics. Construction is the
/// PipelineBuilder's job; the manager only executes.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_PASSMANAGER_H
#define TEAPOT_PASSES_PASSMANAGER_H

#include "passes/Pass.h"

#include <memory>
#include <string>
#include <vector>

namespace teapot {
namespace passes {

class PassManager {
public:
  PassManager() = default;
  PassManager(PassManager &&) = default;
  PassManager &operator=(PassManager &&) = default;

  /// Appends \p P to the pipeline.
  void add(std::unique_ptr<ModulePass> P) { Passes.push_back(std::move(P)); }

  /// Runs every pass in order. Stops at (and returns) the first failure.
  /// Statistics are reset at the start of each run().
  Error run(RewriteContext &Ctx);

  /// Per-pass measurements of the last run().
  const PassStatistics &stats() const { return Stats; }

  /// Stage names in execution order.
  std::vector<std::string> passNames() const;

  size_t size() const { return Passes.size(); }

private:
  std::vector<std::unique_ptr<ModulePass>> Passes;
  PassStatistics Stats;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_PASSMANAGER_H
