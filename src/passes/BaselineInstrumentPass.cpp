//===- passes/BaselineInstrumentPass.cpp ----------------------------------===//

#include "passes/BaselineInstrumentPass.h"

#include "passes/InstrumentCommon.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::isa;
using namespace teapot::passes;

void BaselineInstrumentPass::instrumentBlock(RewriteContext &Ctx, uint32_t F,
                                             uint32_t B) {
  if (Ctx.isTrampoline(F, B))
    return;
  BasicBlock &Blk = Ctx.M.Funcs[F].Blocks[B];
  std::vector<Inst> Out;
  Out.reserve(Blk.Insts.size() * 3);
  auto Emit = [&](Instruction I) { Out.emplace_back(std::move(I)); };

  if (Cfg.EnableCoverage)
    Emit(Instruction::intrinsic(IntrinsicID::CovSpecGuard,
                                Ctx.NumSpecGuards++));
  if (B == 0)
    Emit(Instruction::intrinsic(IntrinsicID::RAPoison));

  unsigned SinceRestore = 0;
  auto FlushRestore = [&] {
    if (SinceRestore == 0)
      return;
    Emit(Instruction::intrinsic(IntrinsicID::RestoreCond, SinceRestore));
    SinceRestore = 0;
  };
  MemRef StackSlot{SP, NoReg, 1, -8};
  auto BranchIt = Ctx.BranchIdOfBlock.find({F, B});

  for (size_t Idx = 0; Idx != Blk.Insts.size(); ++Idx) {
    Inst &In = Blk.Insts[Idx];
    bool IsLast = Idx + 1 == Blk.Insts.size();
    switch (In.I.Op) {
    case Opcode::LOAD:
    case Opcode::LOADS:
      if (!isAllowlistedAccess(In.I.B.M))
        Emit(Instruction::intrinsicMem(
            IntrinsicID::AsanCheck, In.I.B.M,
            sitePayload(In.OrigAddr, In.I.Size, false)));
      break;
    case Opcode::STORE:
      if (!isAllowlistedAccess(In.I.A.M))
        Emit(Instruction::intrinsicMem(
            IntrinsicID::AsanCheck, In.I.A.M,
            sitePayload(In.OrigAddr, In.I.Size, true)));
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, In.I.A.M,
                                     In.I.Size));
      break;
    case Opcode::PUSH:
    case Opcode::CALL:
    case Opcode::CALLI:
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, StackSlot, 8));
      break;
    case Opcode::RET:
      FlushRestore();
      Emit(Instruction::intrinsic(IntrinsicID::RAUnpoison));
      break;
    case Opcode::EXT:
    case Opcode::HALT:
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::ExternalCall)));
      break;
    case Opcode::FENCE:
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::Serializing)));
      break;
    case Opcode::JCC:
      if (IsLast && BranchIt != Ctx.BranchIdOfBlock.end()) {
        FlushRestore();
        if (Cfg.EnableCoverage)
          Emit(Instruction::intrinsic(IntrinsicID::CovGuard,
                                      Ctx.NumNormalGuards++));
        Emit(Instruction::intrinsic(IntrinsicID::StartSim,
                                    BranchIt->second));
      }
      break;
    default:
      break;
    }
    if (IsLast && (In.I.isTerminator() || In.I.info().IsCall))
      FlushRestore();
    Out.push_back(std::move(In));
    ++SinceRestore;
    if (SinceRestore >= Cfg.RestoreInterval)
      FlushRestore();
  }
  FlushRestore();
  Blk.Insts = std::move(Out);
}

Error BaselineInstrumentPass::run(RewriteContext &Ctx) {
  if (Ctx.hasShadows())
    return makeError("instrument-baseline is a single-copy pass; it cannot "
                     "follow clone-shadow-functions");
  for (uint32_t F = 0; F != Ctx.NumReal; ++F) {
    Function &Fn = Ctx.M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      if (Ctx.isTrampoline(F, B))
        continue;
      instrumentBlock(Ctx, F, B);
    }
  }
  return Error::success();
}
