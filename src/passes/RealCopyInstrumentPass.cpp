//===- passes/RealCopyInstrumentPass.cpp ----------------------------------===//

#include "passes/RealCopyInstrumentPass.h"

#include "core/TagProgramBuilder.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::isa;
using namespace teapot::passes;

namespace {

/// Instructions the synchronous fallback must propagate tags for.
bool hasTagEffect(const Instruction &I) {
  switch (I.Op) {
  case Opcode::MOV:
  case Opcode::LOAD:
  case Opcode::LOADS:
  case Opcode::STORE:
  case Opcode::LEA:
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::MUL:
  case Opcode::UDIV:
  case Opcode::UREM:
  case Opcode::NEG:
  case Opcode::CMP:
  case Opcode::TEST:
  case Opcode::SET:
  case Opcode::CMOV:
  case Opcode::CALL:
  case Opcode::CALLI:
  case Opcode::EXT:
    return true;
  default:
    return false;
  }
}

} // namespace

void RealCopyInstrumentPass::instrumentBlock(RewriteContext &Ctx, uint32_t F,
                                             uint32_t B) {
  Module &M = Ctx.M;
  BasicBlock &Blk = M.Funcs[F].Blocks[B];

  // The asynchronous DIFT snippet is computed from the original
  // instructions before we rewrite the block. Blocks whose accesses
  // cannot be re-expressed at the block end (heap-pointer indirection)
  // degrade to synchronous per-instruction propagation — taint must not
  // silently vanish from the Real Copy.
  uint32_t TagProgIdx = NoIdx;
  bool SyncDift = false;
  if (Cfg.EnableDift) {
    core::BlockTagPlan Plan = core::buildBlockTagProgram(Blk);
    if (Plan.NeedsSync) {
      SyncDift = true;
      Ctx.count("tag.sync.blocks");
    } else if (!Plan.Program.empty()) {
      TagProgIdx = static_cast<uint32_t>(M.TagPrograms.size());
      M.TagPrograms.push_back(std::move(Plan.Program));
      Ctx.count("tag.programs");
    }
  }

  std::vector<Inst> Out;
  Out.reserve(Blk.Insts.size() + 6);

  // Markers must be the very first thing control reaches: an indirect
  // transfer landing here during simulation must bounce back into the
  // Shadow Copy before any Real-Copy effect happens.
  auto MarkerIt = Ctx.MarkerIdOfBlock.find({F, B});
  if (MarkerIt != Ctx.MarkerIdOfBlock.end()) {
    Out.emplace_back(Instruction::markerNop());
    Out.emplace_back(
        Instruction::intrinsic(IntrinsicID::MarkerCheck, MarkerIt->second));
  }
  if (B == 0)
    Out.emplace_back(Instruction::intrinsic(IntrinsicID::RAPoison));

  auto BranchIt = Ctx.BranchIdOfBlock.find({F, B});
  for (size_t Idx = 0; Idx != Blk.Insts.size(); ++Idx) {
    Inst &In = Blk.Insts[Idx];
    bool IsLast = Idx + 1 == Blk.Insts.size();
    // The snippet goes before the terminator — and before a CALL too:
    // nothing may follow a CALL, or the pushed return address would not
    // land on the continuation block's marker.
    if (IsLast && TagProgIdx != NoIdx &&
        (In.I.isTerminator() || In.I.info().IsCall)) {
      Out.emplace_back(
          Instruction::intrinsic(IntrinsicID::TagBlock, TagProgIdx));
      TagProgIdx = NoIdx;
    }
    if (SyncDift && hasTagEffect(In.I))
      Out.emplace_back(Instruction::intrinsic(IntrinsicID::TagProp));
    if (In.I.Op == Opcode::RET)
      Out.emplace_back(Instruction::intrinsic(IntrinsicID::RAUnpoison));
    if (IsLast && In.I.Op == Opcode::JCC &&
        BranchIt != Ctx.BranchIdOfBlock.end()) {
      if (Cfg.EnableCoverage)
        Out.emplace_back(Instruction::intrinsic(IntrinsicID::CovGuard,
                                                Ctx.NumNormalGuards++));
      Out.emplace_back(Instruction::intrinsic(IntrinsicID::StartSim,
                                              BranchIt->second));
    }
    Out.push_back(std::move(In));
  }
  if (TagProgIdx != NoIdx) // fallthrough block without terminator
    Out.emplace_back(
        Instruction::intrinsic(IntrinsicID::TagBlock, TagProgIdx));
  Blk.Insts = std::move(Out);
}

Error RealCopyInstrumentPass::run(RewriteContext &Ctx) {
  if (!Ctx.hasShadows())
    return makeError("instrument-real-copy requires clone-shadow-functions "
                     "(single-copy pipelines use instrument-baseline)");
  for (uint32_t F = 0; F != Ctx.NumReal; ++F) {
    Function &Fn = Ctx.M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      if (Ctx.isTrampoline(F, B))
        continue;
      instrumentBlock(Ctx, F, B);
    }
  }
  return Error::success();
}
