//===- passes/LayoutAndMetaPass.h - Reassembly + side tables ------*- C++ -*-===//
///
/// \file
/// The terminal pass of every pipeline: lays the module out into a
/// runnable TBF object (ir::layOut), resolves every BlockRef the earlier
/// passes recorded to final addresses, and publishes the ".teapot.meta"
/// side tables (text ranges, trampoline table, real->shadow function
/// map, marker sites/resumes, tag programs, guard counts) into
/// RewriteContext::Binary / Meta.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_LAYOUTANDMETAPASS_H
#define TEAPOT_PASSES_LAYOUTANDMETAPASS_H

#include "passes/Pass.h"

namespace teapot {
namespace passes {

class LayoutAndMetaPass : public ModulePass {
public:
  const char *name() const override { return "layout-and-meta"; }
  Error run(RewriteContext &Ctx) override;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_LAYOUTANDMETAPASS_H
