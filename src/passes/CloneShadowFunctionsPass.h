//===- passes/CloneShadowFunctionsPass.h - Shadow-copy cloning ----*- C++ -*-===//
///
/// \file
/// The structural half of Speculation Shadows (Section 5.2): clone every
/// function byte-for-byte into a Shadow Copy named "<name>$spec", then
/// update all control-flow transitions known at rewrite time (direct
/// branches and calls) inside the clones to refer to their Shadow-Copy
/// counterparts, so control flow never escapes into code of the wrong
/// execution mode by a direct edge.
///
/// Function-pointer immediates (FuncImm) intentionally keep pointing at
/// Real-Copy entries: that reproduces Figure 5(b), where a Real-Copy code
/// pointer flows into the Shadow Copy and must be caught at run time by
/// the escape checks.
///
/// Must be the first pass of a shadowing pipeline: clone of function i
/// gets index NumReal + i, and IsShadow/ShadowOf/ShadowIdx are linked up.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_CLONESHADOWFUNCTIONSPASS_H
#define TEAPOT_PASSES_CLONESHADOWFUNCTIONSPASS_H

#include "passes/Pass.h"

namespace teapot {
namespace passes {

class CloneShadowFunctionsPass : public ModulePass {
public:
  const char *name() const override { return "clone-shadow-functions"; }
  Error run(RewriteContext &Ctx) override;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_CLONESHADOWFUNCTIONSPASS_H
