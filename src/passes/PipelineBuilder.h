//===- passes/PipelineBuilder.h - Declarative pipeline assembly ---*- C++ -*-===//
///
/// \file
/// Composes rewriting pipelines from passes. The two architectures the
/// paper compares — Speculation Shadows and the guarded single copy —
/// plus every ablation variant are *pass compositions* built here, not
/// flag-checks inside instrumentation code:
///
///   teapot():           clone-shadow-functions, create-trampolines,
///                       place-markers, instrument-real-copy,
///                       instrument-shadow-copy, layout-and-meta
///   specFuzzBaseline(): create-trampolines, instrument-baseline,
///                       layout-and-meta
///
/// New instrumentation passes slot in with add()/addPass() — see
/// ARCHITECTURE.md for the recipe.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_PIPELINEBUILDER_H
#define TEAPOT_PASSES_PIPELINEBUILDER_H

#include "core/TeapotRewriter.h"
#include "passes/PassManager.h"

#include <memory>
#include <utility>

namespace teapot {
namespace passes {

class PipelineBuilder {
public:
  /// Appends \p P to the pipeline under construction.
  PipelineBuilder &add(std::unique_ptr<ModulePass> P) {
    Passes.push_back(std::move(P));
    return *this;
  }

  /// Constructs a PassT in place: addPass<TrampolinePass>().
  template <typename PassT, typename... ArgTs>
  PipelineBuilder &addPass(ArgTs &&...Args) {
    return add(std::make_unique<PassT>(std::forward<ArgTs>(Args)...));
  }

  /// Moves the accumulated passes into a runnable PassManager.
  PassManager build() &&;

  /// Stage names in order (introspection/tests without building).
  std::vector<std::string> passNames() const;

  size_t size() const { return Passes.size(); }

  /// --- Named configurations. ---

  /// The Speculation Shadows pipeline (RewriteMode::Teapot).
  static PipelineBuilder teapot(const core::RewriterOptions &Opts = {});

  /// The guarded single-copy baseline (RewriteMode::SpecFuzzBaseline).
  /// Ignores Opts.EnableDift: the baseline is always ASan-only.
  static PipelineBuilder
  specFuzzBaseline(const core::RewriterOptions &Opts = {});

  /// Dispatches on Opts.Mode — the RewriterOptions-driven entry the
  /// core::rewriteBinary/rewriteModule drivers use.
  static PipelineBuilder forOptions(const core::RewriterOptions &Opts);

private:
  std::vector<std::unique_ptr<ModulePass>> Passes;
};

/// Runs \p Pipeline over \p M and packages the context's outputs (plus
/// per-pass statistics) as a core::RewriteResult.
Expected<core::RewriteResult> runPipeline(ir::Module M,
                                          PipelineBuilder Pipeline);

/// Disassembles \p In first, then runs \p Pipeline.
Expected<core::RewriteResult> runPipeline(const obj::ObjectFile &In,
                                          PipelineBuilder Pipeline);

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_PIPELINEBUILDER_H
