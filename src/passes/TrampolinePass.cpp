//===- passes/TrampolinePass.cpp ------------------------------------------===//

#include "passes/TrampolinePass.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::isa;
using namespace teapot::passes;

Error TrampolinePass::run(RewriteContext &Ctx) {
  Module &M = Ctx.M;
  const bool Shadows = Ctx.hasShadows();
  for (uint32_t F = 0; F != Ctx.NumReal; ++F) {
    Function &Fn = M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      BasicBlock &Blk = Fn.Blocks[B];
      const Inst *Term = Blk.terminator();
      if (!Term || Term->I.Op != Opcode::JCC)
        continue;
      assert(Blk.TakenSucc && Blk.FallSucc && "JCC without successors");

      auto BranchId = static_cast<uint32_t>(Ctx.TrampolineRefs.size());
      Ctx.BranchIdOfBlock[{F, B}] = BranchId;

      BlockRef WrongTaken, WrongFall;
      uint32_t HostFunc;
      if (Shadows) {
        HostFunc = Fn.ShadowIdx;
        WrongTaken = Ctx.shadowBlock(*Blk.FallSucc);
        WrongFall = Ctx.shadowBlock(*Blk.TakenSucc);
      } else {
        HostFunc = F;
        WrongTaken = *Blk.FallSucc;
        WrongFall = *Blk.TakenSucc;
      }
      BlockRef TrampRef = M.addBlock(HostFunc);
      BasicBlock &Tramp = M.block(TrampRef);
      Inst CondJump(Instruction::jcc(Term->I.CC, 0));
      CondJump.Target = WrongTaken;
      Inst Fallback(Instruction::jmp(0));
      Fallback.Target = WrongFall;
      Tramp.Insts.push_back(std::move(CondJump));
      Tramp.Insts.push_back(std::move(Fallback));
      Ctx.TrampolineRefs.push_back(TrampRef);
      Ctx.TrampolineBlocks.insert({TrampRef.Func, TrampRef.Block});
    }
  }
  Ctx.count("trampolines.created", Ctx.TrampolineRefs.size());
  return Error::success();
}
