//===- passes/Statistics.h - Per-pass timing and counters ---------*- C++ -*-===//
///
/// \file
/// Statistics the PassManager records while a pipeline runs: wall time
/// and IR growth per pass (measured automatically), plus named counters
/// passes bump themselves (trampolines created, tag programs compiled,
/// ...). Carried on core::RewriteResult so tools can print a
/// `--stats`-style dump after rewriting.
///
/// This header is dependency-free so core/TeapotRewriter.h can embed the
/// statistics in its result type without pulling in the pass machinery.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_STATISTICS_H
#define TEAPOT_PASSES_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace teapot {
namespace passes {

/// One pipeline stage's measurements.
struct PassStat {
  std::string Name;
  /// Wall-clock seconds spent in the pass.
  double Seconds = 0;
  /// Module growth while the pass ran (passes only append).
  uint64_t InstsAdded = 0;
  uint64_t BlocksAdded = 0;
  uint64_t FuncsAdded = 0;
  /// Pass-specific named counters.
  std::map<std::string, uint64_t> Counters;
};

/// The ordered per-pass statistics of one pipeline run.
struct PassStatistics {
  std::vector<PassStat> Passes;

  /// Renders an aligned human-readable table (the `--stats` dump).
  std::string format() const;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_STATISTICS_H
