//===- passes/TrampolinePass.h - Branch-site trampolines ----------*- C++ -*-===//
///
/// \file
/// Creates one trampoline block per conditional branch (Section 5.2) and
/// assigns the branch-site ids the runtime's StartSim uses. The
/// trampoline's first jump keeps the original condition but targets the
/// *opposite* destination, so whichever way the branch would really go,
/// control enters the wrong path — in the Shadow Copy when one exists
/// (CloneShadowFunctionsPass ran), in the same copy under the
/// single-copy baseline.
///
/// Fills RewriteContext::TrampolineRefs / BranchIdOfBlock /
/// TrampolineBlocks for the instrumentation and layout passes.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_TRAMPOLINEPASS_H
#define TEAPOT_PASSES_TRAMPOLINEPASS_H

#include "passes/Pass.h"

namespace teapot {
namespace passes {

class TrampolinePass : public ModulePass {
public:
  const char *name() const override { return "create-trampolines"; }
  Error run(RewriteContext &Ctx) override;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_TRAMPOLINEPASS_H
