//===- passes/LayoutAndMetaPass.cpp ---------------------------------------===//

#include "passes/LayoutAndMetaPass.h"

#include "ir/Layout.h"
#include "obj/Layout.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::passes;

Error LayoutAndMetaPass::run(RewriteContext &Ctx) {
  Module &M = Ctx.M;
  auto LayoutOrErr = layOut(M, Ctx.Binary);
  if (!LayoutOrErr)
    return LayoutOrErr.takeError();
  const LayoutResult &L = *LayoutOrErr;

  runtime::MetaTable &Meta = Ctx.Meta;
  Meta.RealTextStart = L.TextStart;
  Meta.RealTextEnd = L.ShadowStart;
  Meta.ShadowTextStart = L.ShadowStart;
  Meta.ShadowTextEnd = L.TextEnd;
  Meta.SimFlagAddr = obj::SimFlagAddr;
  for (const BlockRef &R : Ctx.TrampolineRefs)
    Meta.Trampolines.push_back(L.blockAddr(R));
  if (Ctx.hasShadows())
    for (uint32_t F = 0; F != Ctx.NumReal; ++F)
      Meta.FuncMap[L.FuncStart[F]] = L.FuncStart[M.Funcs[F].ShadowIdx];
  for (size_t I = 0; I != Ctx.MarkerBlockRefs.size(); ++I) {
    Meta.MarkerSites.insert(L.blockAddr(Ctx.MarkerBlockRefs[I]));
    Meta.MarkerResume.push_back(L.blockAddr(Ctx.MarkerResumeRefs[I]));
  }
  Meta.TagPrograms = M.TagPrograms;
  Meta.NumNormalGuards = Ctx.NumNormalGuards;
  Meta.NumSpecGuards = Ctx.NumSpecGuards;

  Ctx.Binary.Metadata[runtime::MetaSectionName] = Meta.serialize();
  return Error::success();
}
