//===- passes/MarkerPlacementPass.cpp -------------------------------------===//

#include "passes/MarkerPlacementPass.h"

#include <set>

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::isa;
using namespace teapot::passes;

Error MarkerPlacementPass::run(RewriteContext &Ctx) {
  if (!Ctx.hasShadows())
    return makeError("place-markers requires clone-shadow-functions to "
                     "run first (resume points live in the Shadow Copy)");

  Module &M = Ctx.M;
  std::set<std::pair<uint32_t, uint32_t>> Needed;
  for (uint32_t F = 0; F != Ctx.NumReal; ++F) {
    Function &Fn = M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      const BasicBlock &Blk = Fn.Blocks[B];
      const Inst *Term = Blk.terminator();
      if (Term && Term->I.info().IsCall && Blk.FallSucc)
        Needed.insert({Blk.FallSucc->Func, Blk.FallSucc->Block});
      for (const BlockRef &R : Blk.IndirectSuccs)
        Needed.insert({R.Func, R.Block});
    }
  }

  // Assign ids in (func, block) order — the order the instrumentation
  // pass encounters the blocks, so ids equal the legacy rewriter's.
  for (uint32_t F = 0; F != Ctx.NumReal; ++F) {
    for (uint32_t B = 0; B != M.Funcs[F].Blocks.size(); ++B) {
      if (!Needed.count({F, B}))
        continue;
      auto MarkerId = static_cast<uint32_t>(Ctx.MarkerBlockRefs.size());
      Ctx.MarkerIdOfBlock[{F, B}] = MarkerId;
      Ctx.MarkerBlockRefs.push_back({F, B});
      Ctx.MarkerResumeRefs.push_back(Ctx.shadowBlock({F, B}));
    }
  }
  Ctx.count("marker.sites", Ctx.MarkerBlockRefs.size());
  return Error::success();
}
