//===- passes/RealCopyInstrumentPass.h - Real-Copy instrumentation -*- C++ -*-===//
///
/// \file
/// Instruments the Real Copy — and *only* with what normal execution
/// needs (the Speculation Shadows claim): RA poison/unpoison, per-block
/// asynchronous DIFT snippets (TagProgramBuilder), marker NOP +
/// MarkerCheck at marker sites, and the coverage guard + StartSim pair
/// before conditional branches. No ASan checks, no memory logging, no
/// per-site guards — those live exclusively in the Shadow Copy.
///
/// Blocks whose accesses cannot be re-expressed at the block end degrade
/// to synchronous per-instruction tag propagation (taint must not
/// silently vanish from the Real Copy).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_REALCOPYINSTRUMENTPASS_H
#define TEAPOT_PASSES_REALCOPYINSTRUMENTPASS_H

#include "passes/Pass.h"

namespace teapot {
namespace passes {

class RealCopyInstrumentPass : public ModulePass {
public:
  struct Config {
    /// Compile per-block tag transfer programs (Kasper DIFT). When
    /// false, the Real Copy carries no taint tracking at all.
    bool EnableDift = true;
    /// Emit normal-execution coverage guards before StartSim.
    bool EnableCoverage = true;
  };

  RealCopyInstrumentPass() = default;
  explicit RealCopyInstrumentPass(Config Cfg) : Cfg(Cfg) {}

  const char *name() const override { return "instrument-real-copy"; }
  Error run(RewriteContext &Ctx) override;

private:
  void instrumentBlock(RewriteContext &Ctx, uint32_t F, uint32_t B);

  Config Cfg;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_REALCOPYINSTRUMENTPASS_H
