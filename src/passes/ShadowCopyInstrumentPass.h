//===- passes/ShadowCopyInstrumentPass.h - Shadow-Copy passes -----*- C++ -*-===//
///
/// \file
/// Instruments the Shadow Copy, where everything speculation-simulation
/// needs lives *unguarded* (it only ever executes during simulation):
/// ASan/Kasper sinks, memory logging for rollback, synchronous DIFT,
/// conditional + unconditional restore points, escape checks on indirect
/// transfers, nested StartSim before conditional branches, and lazy
/// speculative coverage.
///
/// Requires CloneShadowFunctionsPass (there must be a Shadow Copy) and
/// TrampolinePass (nested StartSim needs branch-site ids).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_SHADOWCOPYINSTRUMENTPASS_H
#define TEAPOT_PASSES_SHADOWCOPYINSTRUMENTPASS_H

#include "passes/Pass.h"

namespace teapot {
namespace passes {

class ShadowCopyInstrumentPass : public ModulePass {
public:
  struct Config {
    /// Emit Kasper DIFT sinks (TaintSink/TagProp/TaintBranch). When
    /// false, plain ASan checks are emitted instead (the SpecFuzz
    /// detection policy).
    bool EnableDift = true;
    /// Emit speculative coverage guards.
    bool EnableCoverage = true;
    /// Conditional restore point spacing, in original instructions
    /// ("between every 50 instructions", Section 6.1).
    unsigned RestoreInterval = 50;
  };

  ShadowCopyInstrumentPass() = default;
  explicit ShadowCopyInstrumentPass(Config Cfg) : Cfg(Cfg) {}

  const char *name() const override { return "instrument-shadow-copy"; }
  Error run(RewriteContext &Ctx) override;

private:
  void instrumentBlock(RewriteContext &Ctx, uint32_t F, uint32_t B);

  Config Cfg;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_SHADOWCOPYINSTRUMENTPASS_H
