//===- passes/ShadowCopyInstrumentPass.cpp --------------------------------===//

#include "passes/ShadowCopyInstrumentPass.h"

#include "passes/InstrumentCommon.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::isa;
using namespace teapot::passes;

void ShadowCopyInstrumentPass::instrumentBlock(RewriteContext &Ctx,
                                               uint32_t F, uint32_t B) {
  if (Ctx.isTrampoline(F, B))
    return; // trampolines are glue, not program code
  Function &Fn = Ctx.M.Funcs[F];
  BasicBlock &Blk = Fn.Blocks[B];
  std::vector<Inst> Out;
  Out.reserve(Blk.Insts.size() * 3);

  auto Emit = [&](Instruction I) { Out.emplace_back(std::move(I)); };

  if (Cfg.EnableCoverage)
    Emit(Instruction::intrinsic(IntrinsicID::CovSpecGuard,
                                Ctx.NumSpecGuards++));
  if (B == 0)
    Emit(Instruction::intrinsic(IntrinsicID::RAPoison));

  unsigned SinceRestore = 0;
  auto FlushRestore = [&] {
    if (SinceRestore == 0)
      return;
    Emit(Instruction::intrinsic(IntrinsicID::RestoreCond, SinceRestore));
    SinceRestore = 0;
  };
  auto TagProp = [&] {
    if (Cfg.EnableDift)
      Emit(Instruction::intrinsic(IntrinsicID::TagProp));
  };
  auto MemCheck = [&](const Inst &In, const MemRef &Mem, bool IsWrite) {
    if (isAllowlistedAccess(Mem))
      return;
    int64_t Payload = sitePayload(In.OrigAddr, In.I.Size, IsWrite);
    Emit(Instruction::intrinsicMem(Cfg.EnableDift ? IntrinsicID::TaintSink
                                                  : IntrinsicID::AsanCheck,
                                   Mem, Payload));
  };
  MemRef StackSlot{SP, NoReg, 1, -8};

  auto BranchIt = Fn.ShadowOf != NoIdx
                      ? Ctx.BranchIdOfBlock.find({Fn.ShadowOf, B})
                      : Ctx.BranchIdOfBlock.end();

  for (size_t Idx = 0; Idx != Blk.Insts.size(); ++Idx) {
    Inst &In = Blk.Insts[Idx];
    bool IsLast = Idx + 1 == Blk.Insts.size();
    switch (In.I.Op) {
    case Opcode::LOAD:
    case Opcode::LOADS:
      MemCheck(In, In.I.B.M, /*IsWrite=*/false);
      TagProp();
      break;
    case Opcode::STORE:
      MemCheck(In, In.I.A.M, /*IsWrite=*/true);
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, In.I.A.M,
                                     In.I.Size));
      TagProp();
      break;
    case Opcode::PUSH:
    case Opcode::CALL:
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, StackSlot, 8));
      TagProp();
      break;
    case Opcode::CALLI:
      Emit(Instruction::intrinsicReg(IntrinsicID::EscapeCheckTgt, In.I.A.R));
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, StackSlot, 8));
      TagProp();
      break;
    case Opcode::JMPI:
      FlushRestore();
      Emit(Instruction::intrinsicReg(IntrinsicID::EscapeCheckTgt, In.I.A.R));
      break;
    case Opcode::RET:
      FlushRestore();
      Emit(Instruction::intrinsic(IntrinsicID::RAUnpoison));
      Emit(Instruction::intrinsic(IntrinsicID::EscapeCheckRet));
      break;
    case Opcode::EXT:
    case Opcode::HALT:
      // External calls to uninstrumented libraries (and program exit)
      // cannot be recovered from: unconditional restore point.
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::ExternalCall)));
      break;
    case Opcode::FENCE:
      // Serializing instructions terminate speculative execution.
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::Serializing)));
      break;
    case Opcode::JCC:
      if (IsLast && BranchIt != Ctx.BranchIdOfBlock.end()) {
        FlushRestore();
        if (Cfg.EnableDift)
          Emit(Instruction::intrinsic(IntrinsicID::TaintBranch,
                                      sitePayload(In.OrigAddr, 0, false)));
        Emit(Instruction::intrinsic(IntrinsicID::StartSimNested,
                                    BranchIt->second));
      }
      break;
    case Opcode::MOV:
    case Opcode::LEA:
    case Opcode::POP:
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::MUL:
    case Opcode::UDIV:
    case Opcode::UREM:
    case Opcode::NEG:
    case Opcode::CMP:
    case Opcode::TEST:
    case Opcode::SET:
    case Opcode::CMOV:
      TagProp();
      break;
    default:
      break;
    }
    if (IsLast && (In.I.isTerminator() || In.I.info().IsCall))
      FlushRestore();
    Out.push_back(std::move(In));
    ++SinceRestore;
    if (SinceRestore >= Cfg.RestoreInterval)
      FlushRestore();
  }
  FlushRestore();
  Blk.Insts = std::move(Out);
}

Error ShadowCopyInstrumentPass::run(RewriteContext &Ctx) {
  if (!Ctx.hasShadows())
    return makeError("instrument-shadow-copy requires "
                     "clone-shadow-functions to run first");
  for (uint32_t F = Ctx.NumReal; F != Ctx.M.Funcs.size(); ++F)
    for (uint32_t B = 0; B != Ctx.M.Funcs[F].Blocks.size(); ++B)
      instrumentBlock(Ctx, F, B);
  return Error::success();
}
