//===- passes/PassManager.cpp ---------------------------------------------===//

#include "passes/PassManager.h"

#include <chrono>
#include <cstdio>

using namespace teapot;
using namespace teapot::passes;

namespace {

struct ModuleSize {
  uint64_t Funcs = 0;
  uint64_t Blocks = 0;
  uint64_t Insts = 0;
};

ModuleSize measure(const ir::Module &M) {
  ModuleSize S;
  S.Funcs = M.Funcs.size();
  for (const ir::Function &F : M.Funcs) {
    S.Blocks += F.Blocks.size();
    for (const ir::BasicBlock &B : F.Blocks)
      S.Insts += B.Insts.size();
  }
  return S;
}

} // namespace

Error PassManager::run(RewriteContext &Ctx) {
  Stats.Passes.clear();
  for (std::unique_ptr<ModulePass> &P : Passes) {
    PassStat Stat;
    Stat.Name = P->name();
    ModuleSize Before = measure(Ctx.M);
    auto Start = std::chrono::steady_clock::now();

    Ctx.ActiveStat = &Stat;
    Error Err = P->run(Ctx);
    Ctx.ActiveStat = nullptr;

    auto End = std::chrono::steady_clock::now();
    ModuleSize After = measure(Ctx.M);
    Stat.Seconds = std::chrono::duration<double>(End - Start).count();
    Stat.InstsAdded = After.Insts - Before.Insts;
    Stat.BlocksAdded = After.Blocks - Before.Blocks;
    Stat.FuncsAdded = After.Funcs - Before.Funcs;
    Stats.Passes.push_back(std::move(Stat));

    if (Err)
      return makeError("pass '%s' failed: %s", P->name(),
                       Err.message().c_str());
  }
  return Error::success();
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const std::unique_ptr<ModulePass> &P : Passes)
    Names.push_back(P->name());
  return Names;
}

std::string PassStatistics::format() const {
  std::string Out;
  char Line[256];
  snprintf(Line, sizeof(Line), "  %-24s %10s %8s %8s\n", "pass", "time(us)",
           "+insts", "+blocks");
  Out += Line;
  double TotalUs = 0;
  uint64_t TotalInsts = 0;
  for (const PassStat &S : Passes) {
    snprintf(Line, sizeof(Line), "  %-24s %10.1f %8llu %8llu\n",
             S.Name.c_str(), S.Seconds * 1e6,
             static_cast<unsigned long long>(S.InstsAdded),
             static_cast<unsigned long long>(S.BlocksAdded));
    Out += Line;
    for (const auto &[Name, Value] : S.Counters) {
      snprintf(Line, sizeof(Line), "      %-28s %llu\n", Name.c_str(),
               static_cast<unsigned long long>(Value));
      Out += Line;
    }
    TotalUs += S.Seconds * 1e6;
    TotalInsts += S.InstsAdded;
  }
  snprintf(Line, sizeof(Line), "  %-24s %10.1f %8llu\n", "total", TotalUs,
           static_cast<unsigned long long>(TotalInsts));
  Out += Line;
  return Out;
}
