//===- passes/InstrumentCommon.h - Shared instrumentation helpers -*- C++ -*-===//
///
/// \file
/// Small helpers shared by the Real-Copy, Shadow-Copy, and baseline
/// instrumentation passes. Internal to src/passes/.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_INSTRUMENTCOMMON_H
#define TEAPOT_PASSES_INSTRUMENTCOMMON_H

#include "isa/Instruction.h"

namespace teapot {
namespace passes {

/// Packs the (size, is-write, site) report payload shared with the
/// runtime (see SpecRuntime.cpp).
inline int64_t sitePayload(uint64_t OrigAddr, unsigned Size, bool IsWrite) {
  return static_cast<int64_t>((OrigAddr << 16) |
                              (static_cast<uint64_t>(IsWrite) << 8) | Size);
}

/// Accesses based off rsp/rbp with a constant offset are allowlisted
/// (Section 6.2.1) so __builtin_return_address-style reads keep working
/// and frame traffic stays cheap.
inline bool isAllowlistedAccess(const isa::MemRef &M) {
  return (M.Base == isa::SP || M.Base == isa::FP) && M.Index == isa::NoReg;
}

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_INSTRUMENTCOMMON_H
