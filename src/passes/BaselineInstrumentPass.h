//===- passes/BaselineInstrumentPass.h - Guarded single copy ------*- C++ -*-===//
///
/// \file
/// The Listing 3 architecture the paper argues against: normal execution
/// and speculation simulation share one copy, so every instrumentation
/// site below executes during normal runs too, paying the per-site guard
/// (the runtime's in-simulation check) that Speculation Shadows
/// eliminates. Detection is ASan-only (the SpecFuzz policy).
///
/// Composes with TrampolinePass only — never with the clone/marker/
/// shadow passes (a single-copy pipeline has no Shadow Copy).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_BASELINEINSTRUMENTPASS_H
#define TEAPOT_PASSES_BASELINEINSTRUMENTPASS_H

#include "passes/Pass.h"

namespace teapot {
namespace passes {

class BaselineInstrumentPass : public ModulePass {
public:
  struct Config {
    /// Emit normal + speculative coverage guards.
    bool EnableCoverage = true;
    /// Conditional restore point spacing, in original instructions.
    unsigned RestoreInterval = 50;
  };

  BaselineInstrumentPass() = default;
  explicit BaselineInstrumentPass(Config Cfg) : Cfg(Cfg) {}

  const char *name() const override { return "instrument-baseline"; }
  Error run(RewriteContext &Ctx) override;

private:
  void instrumentBlock(RewriteContext &Ctx, uint32_t F, uint32_t B);

  Config Cfg;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_BASELINEINSTRUMENTPASS_H
