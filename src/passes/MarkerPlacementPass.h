//===- passes/MarkerPlacementPass.h - Marker-site selection -------*- C++ -*-===//
///
/// \file
/// Selects the Real-Copy blocks that may be targets of indirect
/// control-flow transfers (returns from calls, jump-table targets) and
/// assigns their marker ids (Listing 4). Marker ids are assigned in
/// (function, block) order; RealCopyInstrumentPass inserts the actual
/// MARKERNOP + MarkerCheck sequence and LayoutAndMetaPass publishes the
/// marker-site / resume-address tables.
///
/// Requires CloneShadowFunctionsPass: every marker's resume point is the
/// block's Shadow-Copy counterpart.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_PASSES_MARKERPLACEMENTPASS_H
#define TEAPOT_PASSES_MARKERPLACEMENTPASS_H

#include "passes/Pass.h"

namespace teapot {
namespace passes {

class MarkerPlacementPass : public ModulePass {
public:
  const char *name() const override { return "place-markers"; }
  Error run(RewriteContext &Ctx) override;
};

} // namespace passes
} // namespace teapot

#endif // TEAPOT_PASSES_MARKERPLACEMENTPASS_H
