//===- disasm/Disassembler.cpp --------------------------------------------===//

#include "disasm/Disassembler.h"

#include "isa/Encoding.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace teapot;
using namespace teapot::disasm;
using namespace teapot::isa;

namespace {

struct JumpTable {
  uint64_t JmpiAddr = 0;
  uint64_t TableAddr = 0;
  std::vector<uint64_t> Targets;
};

/// Everything discovered about one function before IR construction.
struct FuncInfo {
  uint64_t Entry = 0;
  std::map<uint64_t, Decoded> Insts;
  std::set<uint64_t> Leaders;
  std::vector<JumpTable> Tables;
  bool Valid = true;
};

class Disassembler {
public:
  Disassembler(const obj::ObjectFile &Obj, const Options &Opts)
      : Obj(Obj), Opts(Opts) {}

  Expected<ir::Module> run();

private:
  const obj::ObjectFile &Obj;
  const Options &Opts;
  const obj::Section *Text = nullptr;

  std::map<uint64_t, FuncInfo> Funcs; // keyed by entry address
  std::vector<uint64_t> Worklist;

  bool inText(uint64_t Addr) const {
    return Text->contains(Addr);
  }

  Expected<Decoded> decodeAt(uint64_t Addr) const {
    return decode(Text->Bytes.data(), Text->Bytes.size(),
                  Addr - Text->Addr);
  }

  void addFunction(uint64_t Entry) {
    if (!inText(Entry) || Funcs.count(Entry))
      return;
    Funcs.emplace(Entry, FuncInfo());
    Worklist.push_back(Entry);
  }

  Error exploreFunction(uint64_t Entry, bool Speculative);
  void recoverJumpTable(FuncInfo &F, uint64_t JmpiAddr, Reg Target);
  uint64_t readU64At(uint64_t Addr, const obj::Section *&SecOut) const;
  void scanDataForCode();
  void sweepGaps();
  Expected<ir::Module> buildModule();
};

} // namespace

uint64_t Disassembler::readU64At(uint64_t Addr,
                                 const obj::Section *&SecOut) const {
  SecOut = nullptr;
  for (const obj::Section &S : Obj.Sections) {
    if (S.Kind == obj::SectionKind::Bss || S.Kind == obj::SectionKind::Code)
      continue;
    if (Addr >= S.Addr && Addr + 8 <= S.Addr + S.Bytes.size()) {
      uint64_t V = 0;
      uint64_t Off = Addr - S.Addr;
      for (unsigned I = 0; I != 8; ++I)
        V |= static_cast<uint64_t>(S.Bytes[Off + I]) << (I * 8);
      SecOut = &S;
      return V;
    }
  }
  return 0;
}

/// Recovers a jump table feeding `jmpi Target` at \p JmpiAddr. Pattern:
/// an earlier `ld8 Target, [idx*8 + TableBase]` in the same function,
/// with TableBase pointing into a data section. Entries are read while
/// they look like code addresses inside the text section.
void Disassembler::recoverJumpTable(FuncInfo &F, uint64_t JmpiAddr,
                                    Reg Target) {
  // Scan backwards over already-decoded instructions for the defining
  // load. A bounded scan is enough for compiler-generated patterns.
  auto It = F.Insts.find(JmpiAddr);
  if (It == F.Insts.end())
    return;
  unsigned Budget = 8;
  uint64_t TableAddr = 0;
  while (It != F.Insts.begin() && Budget--) {
    --It;
    const Instruction &I = It->second.I;
    if (I.Op == Opcode::LOAD && I.Size == 8 && I.A.isReg() &&
        I.A.R == Target && I.B.isMem() && I.B.M.Base == NoReg &&
        I.B.M.Scale == 8 && I.B.M.Disp != 0) {
      TableAddr = static_cast<uint64_t>(I.B.M.Disp);
      break;
    }
    // Any other write to Target kills the pattern.
    if (I.A.isReg() && I.A.R == Target)
      return;
  }
  if (!TableAddr)
    return;

  JumpTable T;
  T.JmpiAddr = JmpiAddr;
  T.TableAddr = TableAddr;
  for (unsigned Idx = 0; Idx != Opts.MaxJumpTableEntries; ++Idx) {
    const obj::Section *Sec;
    uint64_t V = readU64At(TableAddr + Idx * 8, Sec);
    if (!Sec || !inText(V))
      break;
    // Entries must decode; this is the stop condition for running off
    // the end of the table into unrelated data.
    if (!decodeAt(V))
      break;
    T.Targets.push_back(V);
  }
  if (!T.Targets.empty())
    F.Tables.push_back(std::move(T));
}

Error Disassembler::exploreFunction(uint64_t Entry, bool Speculative) {
  FuncInfo &F = Funcs[Entry];
  F.Entry = Entry;
  F.Leaders.insert(Entry);

  std::vector<uint64_t> Stack{Entry};
  std::set<uint64_t> Visited;
  auto Fail = [&](Error E) {
    if (Speculative) {
      F.Valid = false;
      return Error::success();
    }
    return E;
  };

  while (!Stack.empty()) {
    uint64_t Addr = Stack.back();
    Stack.pop_back();
    if (Visited.count(Addr))
      continue;
    // Straight-line decode until a terminator.
    while (true) {
      if (Visited.count(Addr))
        break;
      Visited.insert(Addr);
      auto D = decodeAt(Addr);
      if (!D)
        return Fail(makeError("undecodable code at %s in function %s: %s",
                              toHex(Addr).c_str(), toHex(Entry).c_str(),
                              D.message().c_str()));
      if (D->I.Op == Opcode::INTR)
        return Fail(
            makeError("binary already instrumented (INTR at %s)",
                      toHex(Addr).c_str()));
      F.Insts[Addr] = *D;
      uint64_t Next = Addr + D->Length;
      const OpcodeInfo &Info = D->I.info();

      if (D->I.Op == Opcode::JMP || D->I.Op == Opcode::JCC) {
        uint64_t Target = Next + static_cast<uint64_t>(D->I.A.Imm);
        if (!inText(Target))
          return Fail(makeError("branch at %s leaves the text section",
                                toHex(Addr).c_str()));
        // Compiler-generated functions never branch before their entry;
        // a gap-sweep candidate that does is misdecoded data.
        if (Target < F.Entry)
          return Fail(makeError("branch at %s precedes the function entry",
                                toHex(Addr).c_str()));
        F.Leaders.insert(Target);
        Stack.push_back(Target);
        if (D->I.Op == Opcode::JMP)
          break;
        F.Leaders.insert(Next);
        Addr = Next;
        continue;
      }
      if (D->I.Op == Opcode::CALL) {
        uint64_t Target = Next + static_cast<uint64_t>(D->I.A.Imm);
        addFunction(Target);
        F.Leaders.insert(Next); // call terminates the block
        Addr = Next;
        continue;
      }
      if (D->I.Op == Opcode::CALLI) {
        F.Leaders.insert(Next);
        Addr = Next;
        continue;
      }
      if (D->I.Op == Opcode::JMPI) {
        recoverJumpTable(F, Addr, D->I.A.R);
        if (!F.Tables.empty() && F.Tables.back().JmpiAddr == Addr) {
          for (uint64_t T : F.Tables.back().Targets) {
            F.Leaders.insert(T);
            Stack.push_back(T);
          }
        }
        break;
      }
      if (Info.IsRet || D->I.Op == Opcode::HALT)
        break;
      Addr = Next;
    }
  }
  return Error::success();
}

void Disassembler::scanDataForCode() {
  // 8-byte-aligned words in data sections whose value is a decodable text
  // address are candidate address-taken function entries — except slots
  // already claimed by a recovered jump table, whose entries are block
  // (not function) pointers. Running the table heuristic first resolves
  // this classic disassembly ambiguity the way Datalog Disassembly does.
  std::set<uint64_t> TableSlots;
  for (const auto &[Entry, F] : Funcs)
    for (const JumpTable &T : F.Tables)
      for (size_t I = 0; I != T.Targets.size(); ++I)
        TableSlots.insert(T.TableAddr + I * 8);

  for (const obj::Section &S : Obj.Sections) {
    if (S.Kind == obj::SectionKind::Bss || S.Kind == obj::SectionKind::Code)
      continue;
    for (uint64_t Off = 0; Off + 8 <= S.Bytes.size(); Off += 8) {
      if (TableSlots.count(S.Addr + Off))
        continue;
      uint64_t V = 0;
      for (unsigned I = 0; I != 8; ++I)
        V |= static_cast<uint64_t>(S.Bytes[Off + I]) << (I * 8);
      if (inText(V) && decodeAt(V))
        addFunction(V);
    }
  }
}

void Disassembler::sweepGaps() {
  // Claimed byte ranges, from every valid function's decoded code.
  std::vector<std::pair<uint64_t, uint64_t>> Claimed;
  for (const auto &[Entry, F] : Funcs) {
    if (!F.Valid)
      continue;
    for (const auto &[Addr, D] : F.Insts)
      Claimed.push_back({Addr, Addr + D.Length});
  }
  std::sort(Claimed.begin(), Claimed.end());
  uint64_t Pos = Text->Addr;
  uint64_t End = Text->Addr + Text->Bytes.size();
  std::vector<uint64_t> GapStarts;
  for (const auto &[S, E] : Claimed) {
    if (S > Pos)
      GapStarts.push_back(Pos);
    Pos = std::max(Pos, E);
  }
  if (Pos < End)
    GapStarts.push_back(Pos);
  for (uint64_t G : GapStarts)
    addFunction(G);
}

Expected<ir::Module> Disassembler::buildModule() {
  ir::Module M;
  M.Source = Obj;

  // Assign function indices in address order for deterministic output.
  std::vector<uint64_t> Entries;
  for (const auto &[Entry, F] : Funcs)
    if (F.Valid && !F.Insts.empty())
      Entries.push_back(Entry);
  std::sort(Entries.begin(), Entries.end());

  std::map<uint64_t, uint32_t> FuncIdx;
  for (uint64_t E : Entries) {
    FuncIdx[E] = static_cast<uint32_t>(M.Funcs.size());
    ir::Function Fn;
    Fn.OrigAddr = E;
    Fn.Name = formatString("fn_%llx", static_cast<unsigned long long>(E));
    if (Opts.UseSymbols) {
      // Prefer a Function-kind symbol; fall back to any label there.
      const obj::Symbol *Best = nullptr;
      for (const obj::Symbol &S : Obj.Symbols)
        if (S.Addr == E &&
            (!Best || S.Kind == obj::SymbolKind::Function))
          Best = &S;
      if (Best)
        Fn.Name = Best->Name;
    }
    M.Funcs.push_back(std::move(Fn));
  }

  // Build blocks per function; record addr -> BlockRef for target fixes.
  std::map<uint64_t, std::map<uint64_t, ir::BlockRef>> BlockAt;
  for (uint64_t E : Entries) {
    FuncInfo &F = Funcs[E];
    uint32_t FI = FuncIdx[E];
    ir::Function &Fn = M.Funcs[FI];

    // A leader at L owns instructions [L, next leader or gap).
    std::vector<uint64_t> Leaders(F.Leaders.begin(), F.Leaders.end());
    std::sort(Leaders.begin(), Leaders.end());
    for (uint64_t L : Leaders) {
      if (!F.Insts.count(L))
        continue; // leader outside this function's decoded set
      ir::BlockRef R{FI, static_cast<uint32_t>(Fn.Blocks.size())};
      Fn.Blocks.emplace_back();
      Fn.Blocks.back().OrigAddr = L;
      BlockAt[E][L] = R;
    }
    // The entry block must be Blocks[0].
    if (Fn.Blocks.empty() || Fn.Blocks[0].OrigAddr != E)
      return makeError("function %s has no entry block",
                       toHex(E).c_str());

    // Fill instructions.
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      ir::BasicBlock &Blk = Fn.Blocks[B];
      uint64_t Addr = Blk.OrigAddr;
      while (true) {
        auto It = F.Insts.find(Addr);
        if (It == F.Insts.end())
          break;
        if (Addr != Blk.OrigAddr && F.Leaders.count(Addr))
          break; // start of the next block
        ir::Inst In(It->second.I);
        In.OrigAddr = Addr;
        Blk.Insts.push_back(std::move(In));
        uint64_t Next = Addr + It->second.Length;
        if (It->second.I.isTerminator() || It->second.I.info().IsCall) {
          Addr = Next;
          break;
        }
        Addr = Next;
      }
    }
  }

  // Resolve successors and symbolic operands.
  for (uint64_t E : Entries) {
    FuncInfo &F = Funcs[E];
    uint32_t FI = FuncIdx[E];
    ir::Function &Fn = M.Funcs[FI];
    auto &AddrMap = BlockAt[E];

    auto BlockFor = [&](uint64_t Addr) -> ir::BlockRef {
      auto It = AddrMap.find(Addr);
      return It == AddrMap.end() ? ir::BlockRef() : It->second;
    };

    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      ir::BasicBlock &Blk = Fn.Blocks[B];
      if (Blk.Insts.empty())
        continue;
      ir::Inst &Last = Blk.Insts.back();
      uint64_t LastAddr = Last.OrigAddr;
      uint64_t NextAddr = LastAddr + encodedLength(Last.I);
      switch (Last.I.Op) {
      case Opcode::JMP:
      case Opcode::JCC: {
        uint64_t Target = NextAddr + static_cast<uint64_t>(Last.I.A.Imm);
        ir::BlockRef TR = BlockFor(Target);
        if (!TR.valid())
          return makeError("branch target %s not lifted in %s",
                           toHex(Target).c_str(), Fn.Name.c_str());
        Last.Target = TR;
        Blk.TakenSucc = TR;
        if (Last.I.Op == Opcode::JCC) {
          ir::BlockRef FR = BlockFor(NextAddr);
          if (!FR.valid())
            return makeError("fallthrough %s not lifted in %s",
                             toHex(NextAddr).c_str(), Fn.Name.c_str());
          Blk.FallSucc = FR;
        }
        break;
      }
      case Opcode::CALL: {
        uint64_t Target = NextAddr + static_cast<uint64_t>(Last.I.A.Imm);
        auto CIt = FuncIdx.find(Target);
        if (CIt == FuncIdx.end())
          return makeError("call target %s not lifted", toHex(Target).c_str());
        Last.Callee = CIt->second;
        ir::BlockRef FR = BlockFor(NextAddr);
        if (FR.valid())
          Blk.FallSucc = FR;
        break;
      }
      case Opcode::CALLI: {
        ir::BlockRef FR = BlockFor(NextAddr);
        if (FR.valid())
          Blk.FallSucc = FR;
        break;
      }
      case Opcode::JMPI: {
        for (const JumpTable &T : F.Tables)
          if (T.JmpiAddr == LastAddr)
            for (uint64_t Tgt : T.Targets)
              if (ir::BlockRef R = BlockFor(Tgt); R.valid())
                Blk.IndirectSuccs.push_back(R);
        break;
      }
      default:
        if (!Last.I.isTerminator()) {
          // Plain fallthrough into the lexically next block.
          ir::BlockRef FR = BlockFor(NextAddr);
          if (FR.valid())
            Blk.FallSucc = FR;
        }
        break;
      }
    }

    // FuncImm symbolization: immediates equal to function entries.
    for (ir::BasicBlock &Blk : Fn.Blocks) {
      for (ir::Inst &In : Blk.Insts) {
        if (In.I.Op != Opcode::MOV && In.I.Op != Opcode::PUSH &&
            In.I.Op != Opcode::LEA)
          continue;
        auto TrySym = [&](int64_t V, bool FromLea) -> bool {
          auto It = FuncIdx.find(static_cast<uint64_t>(V));
          if (It == FuncIdx.end())
            return false;
          (void)FromLea;
          In.FuncImm = It->second;
          return true;
        };
        if (In.I.Op == Opcode::PUSH && In.I.A.isImm())
          TrySym(In.I.A.Imm, false);
        else if (In.I.Op == Opcode::MOV && In.I.B.isImm())
          TrySym(In.I.B.Imm, false);
        else if (In.I.Op == Opcode::LEA && In.I.B.isMem() &&
                 In.I.B.M.Base == NoReg && In.I.B.M.Index == NoReg)
          TrySym(In.I.B.M.Disp, true);
      }
    }

    // Jump-table entries become code-pointer slots.
    for (const JumpTable &T : F.Tables) {
      for (unsigned Idx = 0; Idx != T.Targets.size(); ++Idx) {
        ir::BlockRef R = BlockFor(T.Targets[Idx]);
        if (!R.valid())
          continue;
        ir::CodePointerSlot Slot;
        Slot.SlotAddr = T.TableAddr + Idx * 8;
        Slot.Block = R;
        M.CodeSlots.push_back(Slot);
      }
    }
  }

  // Data words holding function entry addresses become function slots
  // (unless already claimed as a jump-table entry).
  if (Opts.ScanDataForCode) {
    std::set<uint64_t> Taken;
    for (const ir::CodePointerSlot &S : M.CodeSlots)
      Taken.insert(S.SlotAddr);
    for (const obj::Section &S : Obj.Sections) {
      if (S.Kind == obj::SectionKind::Bss ||
          S.Kind == obj::SectionKind::Code)
        continue;
      for (uint64_t Off = 0; Off + 8 <= S.Bytes.size(); Off += 8) {
        uint64_t SlotAddr = S.Addr + Off;
        if (Taken.count(SlotAddr))
          continue;
        uint64_t V = 0;
        for (unsigned I = 0; I != 8; ++I)
          V |= static_cast<uint64_t>(S.Bytes[Off + I]) << (I * 8);
        auto It = FuncIdx.find(V);
        if (It == FuncIdx.end())
          continue;
        ir::CodePointerSlot Slot;
        Slot.SlotAddr = SlotAddr;
        Slot.Func = It->second;
        M.CodeSlots.push_back(Slot);
      }
    }
  }

  auto EIt = FuncIdx.find(Obj.Entry);
  if (EIt == FuncIdx.end())
    return makeError("entry point %s was not lifted",
                     toHex(Obj.Entry).c_str());
  M.EntryFunc = EIt->second;
  return M;
}

Expected<ir::Module> Disassembler::run() {
  Text = Obj.findSection(".text");
  if (!Text || Text->Bytes.empty())
    return makeError("binary has no .text section");

  // Fixpoint over the worklist: exploring can discover new call targets.
  auto Drain = [&](bool Speculative) -> Error {
    while (!Worklist.empty()) {
      uint64_t Entry = Worklist.back();
      Worklist.pop_back();
      if (Error E = exploreFunction(Entry, Speculative))
        return E;
    }
    return Error::success();
  };

  // Code reachable from the program entry must decode; heuristic seeds
  // (symbols, data-scan candidates, gap sweeps) are explored permissively
  // and dropped when they turn out not to be code.
  addFunction(Obj.Entry);
  if (Error E = Drain(/*Speculative=*/false))
    return E;

  if (Opts.UseSymbols) {
    for (const obj::Symbol &S : Obj.Symbols)
      if (S.Kind == obj::SymbolKind::Function)
        addFunction(S.Addr);
    if (Error E = Drain(/*Speculative=*/true))
      return E;
  }
  if (Opts.ScanDataForCode) {
    scanDataForCode();
    if (Error E = Drain(/*Speculative=*/true))
      return E;
  }

  if (Opts.SweepGaps) {
    sweepGaps();
    // Gap code may be data or padding; tolerate failures.
    if (Error E = Drain(/*Speculative=*/true))
      return E;
  }

  return buildModule();
}

Expected<ir::Module> disasm::disassemble(const obj::ObjectFile &Obj,
                                         const Options &Opts) {
  Disassembler D(Obj, Opts);
  return D.run();
}
