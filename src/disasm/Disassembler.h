//===- disasm/Disassembler.h - Reassembleable disassembly ---------*- C++ -*-===//
///
/// \file
/// Lifts a (possibly stripped) TBF binary into the rewritable IR — our
/// analogue of Datalog Disassembly producing GTIRB. The pipeline:
///
///   1. Code discovery: recursive traversal from the entry point, CALL
///      targets, optional function symbols, and data-section scanning for
///      address-taken functions (so unreferenced functions are still
///      lifted), plus a gap sweep for unreachable code.
///   2. Function/CFG recovery: intraprocedural edges split code into
///      basic blocks; CALL terminates a block with a fallthrough
///      continuation.
///   3. Jump-table recovery: a JMPI fed by an 8-byte indexed load from a
///      read-only table yields the table's entries as indirect successors.
///   4. Symbolization: branch/call targets become block/function refs;
///      immediates equal to function entries become FuncImm refs; data
///      words holding code addresses become CodePointerSlots.
///
/// Like every static disassembler this is heuristic where the binary
/// withholds information (Section 8 of the paper); options control how
/// aggressive the heuristics are.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_DISASM_DISASSEMBLER_H
#define TEAPOT_DISASM_DISASSEMBLER_H

#include "ir/IR.h"
#include "obj/ObjectFile.h"
#include "support/Error.h"

namespace teapot {
namespace disasm {

struct Options {
  /// Use Function symbols as discovery seeds when present.
  bool UseSymbols = true;
  /// Scan data sections for code pointers (address-taken functions).
  bool ScanDataForCode = true;
  /// Sweep unclaimed text gaps for unreachable functions.
  bool SweepGaps = true;
  /// Maximum entries considered per jump table.
  unsigned MaxJumpTableEntries = 64;
};

/// Disassembles \p Obj into a Module. Fails on undecodable reachable
/// code or if the binary was already instrumented (contains INTR).
Expected<ir::Module> disassemble(const obj::ObjectFile &Obj,
                                 const Options &Opts = Options());

} // namespace disasm
} // namespace teapot

#endif // TEAPOT_DISASM_DISASSEMBLER_H
