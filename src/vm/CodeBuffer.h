//===- vm/CodeBuffer.h - W^X executable code arena ----------------*- C++ -*-===//
///
/// \file
/// The executable memory arena backing the JIT tier (vm/Jit.h). One
/// contiguous mmap reservation, bump-allocated, with a strict W^X
/// lifecycle: the buffer is writable *or* executable, never both.
/// Compilation happens inside a beginWrite()/endWrite() bracket
/// (mprotect to RW, emit + patch, mprotect back to RX); execution only
/// ever sees RX pages.
///
/// The reservation is deliberately a single mapping: every intra-arena
/// branch (block chaining, stub jumps) is a rel32, which is only
/// guaranteed to reach when all code shares one contiguous range. The
/// virtual reservation is cheap — pages materialize on first touch — so
/// the arena is sized generously and *flushed wholesale* (bump pointer
/// reset) when it fills or when compiled code is invalidated, QEMU
/// translation-cache style, rather than tracking per-block lifetimes.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_CODEBUFFER_H
#define TEAPOT_VM_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <memory>

namespace teapot {
namespace vm {

class CodeBuffer {
public:
  /// Maps a \p Capacity-byte RX arena. Returns null when the host
  /// refuses executable mappings (hardened kernels, unsupported
  /// platforms) — the caller falls back to a non-JIT tier.
  static std::unique_ptr<CodeBuffer> create(size_t Capacity);
  ~CodeBuffer();

  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// Flips the arena writable (and non-executable) for emission.
  void beginWrite();
  /// Flips the arena back to executable (and non-writable).
  void endWrite();
  bool writable() const { return Writable; }

  /// Bump-allocates \p N bytes, or null when the arena is full (the
  /// caller flushes and recompiles). Only valid while writable.
  uint8_t *alloc(size_t N) {
    if (Used + N > Cap)
      return nullptr;
    uint8_t *P = Base + Used;
    Used += N;
    return P;
  }
  /// Rewinds the bump pointer to \p Mark (undo of a partial emission).
  void rewind(size_t Mark) { Used = Mark; }

  /// Wholesale flush: every compiled byte is discarded.
  void reset() { Used = 0; }

  uint8_t *base() const { return Base; }
  size_t used() const { return Used; }
  size_t capacity() const { return Cap; }

private:
  CodeBuffer(uint8_t *Base, size_t Cap) : Base(Base), Cap(Cap) {}

  uint8_t *Base = nullptr;
  size_t Cap = 0;
  size_t Used = 0;
  bool Writable = false;
};

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_CODEBUFFER_H
