//===- vm/CodeBuffer.h - W^X executable code arena ----------------*- C++ -*-===//
///
/// \file
/// The executable memory arena backing the JIT tier (vm/Jit.h). One
/// contiguous mmap reservation, bump-allocated, with a strict W^X
/// lifecycle: the buffer is writable *or* executable, never both.
/// Compilation happens inside a beginWrite()/endWrite() bracket
/// (mprotect to RW, emit + patch, mprotect back to RX); execution only
/// ever sees RX pages.
///
/// The reservation is deliberately a single mapping: every intra-arena
/// branch (block chaining, stub jumps) is a rel32, which is only
/// guaranteed to reach when all code shares one contiguous range. The
/// virtual reservation is cheap — pages materialize on first touch — so
/// the arena is sized generously and *flushed wholesale* (bump pointer
/// reset) when it fills or when compiled code is invalidated, QEMU
/// translation-cache style, rather than tracking per-block lifetimes.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_CODEBUFFER_H
#define TEAPOT_VM_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <memory>

namespace teapot {
namespace support {
class FaultInjector;
} // namespace support
namespace vm {

class CodeBuffer {
public:
  /// Maps a \p Capacity-byte RX arena. Returns null when the host
  /// refuses executable mappings (hardened kernels, unsupported
  /// platforms) — the caller falls back to a non-JIT tier.
  static std::unique_ptr<CodeBuffer> create(size_t Capacity);
  ~CodeBuffer();

  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// Flips the arena writable (and non-executable) for emission.
  void beginWrite();
  /// Flips the arena back to executable (and non-writable). Returns
  /// false when the re-protect fails (or an injected `jit.arena_seal`
  /// fault fires): RW code must never be executed, so the caller treats
  /// the arena as broken and falls back to a non-JIT tier.
  bool endWrite();
  bool writable() const { return Writable; }

  /// Optional deterministic fault injection (sites `jit.arena_alloc`
  /// and `jit.arena_seal`, support/FaultInjector.h). Not owned.
  support::FaultInjector *Faults = nullptr;

  /// Bump-allocates \p N bytes, or null when the arena is full (the
  /// caller flushes and recompiles) or an injected `jit.arena_alloc`
  /// fault fires. Only valid while writable.
  uint8_t *alloc(size_t N) {
    if (Faults && allocFaultFires())
      return nullptr;
    if (Used + N > Cap)
      return nullptr;
    uint8_t *P = Base + Used;
    Used += N;
    return P;
  }
  /// Rewinds the bump pointer to \p Mark (undo of a partial emission).
  void rewind(size_t Mark) { Used = Mark; }

  /// Wholesale flush: every compiled byte is discarded.
  void reset() { Used = 0; }

  uint8_t *base() const { return Base; }
  size_t used() const { return Used; }
  size_t capacity() const { return Cap; }

private:
  CodeBuffer(uint8_t *Base, size_t Cap) : Base(Base), Cap(Cap) {}

  /// Out-of-line injector query so the alloc fast path stays a single
  /// null test when no injector is armed.
  bool allocFaultFires();

  uint8_t *Base = nullptr;
  size_t Cap = 0;
  size_t Used = 0;
  bool Writable = false;
};

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_CODEBUFFER_H
