//===- vm/BlockCache.cpp - Block-compiled instruction cache ---------------===//

#include "vm/BlockCache.h"

#include "vm/Memory.h"

using namespace teapot;
using namespace teapot::isa;
using namespace teapot::vm;

void BlockCache::setCodeRegion(uint64_t Base, uint64_t Size) {
  clear();
  if (Size > MaxIndexedCodeSize)
    Size = 0; // pathological image: run everything through the step path
  CodeBase = Base;
  CodeSize = Size;
  Index.assign(static_cast<size_t>(Size), nullptr);
}

void BlockCache::clear() {
  std::fill(Index.begin(), Index.end(), nullptr);
  Blocks.clear();
}

/// True if \p Op always transfers control away from the fall-through
/// path, making further decode-ahead pointless (the bytes after it may
/// be data or another function's prologue).
static bool alwaysDiverts(Opcode Op) {
  switch (Op) {
  case Opcode::JMP:
  case Opcode::JMPI:
  case Opcode::CALL:
  case Opcode::CALLI:
  case Opcode::RET:
  case Opcode::HALT:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Flags liveness
//===----------------------------------------------------------------------===//

/// True if \p Op evaluates a condition code.
static bool readsFlags(Opcode Op) {
  return Op == Opcode::JCC || Op == Opcode::SET || Op == Opcode::CMOV;
}

/// True if \p Op unconditionally rewrites all four flag bits, killing
/// the previous FLAGS value.
static bool writesAllFlags(Opcode Op) {
  switch (Op) {
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::MUL:
  case Opcode::NEG:
  case Opcode::CMP:
  case Opcode::TEST:
    return true;
  default:
    return false;
  }
}

/// True if executing \p Op can make the current FLAGS architecturally
/// observable outside straight-line dataflow: faulting memory accesses
/// and division (fault hook / StopState), intrinsics and externals
/// (handlers copy CPU state, e.g. for checkpoints), and every control
/// transfer that can leave the block (the successor's liveness is
/// unknown). A flag value live across any of these must be computed.
static bool observesFlags(Opcode Op) {
  switch (Op) {
  case Opcode::LOAD:
  case Opcode::LOADS:
  case Opcode::STORE:
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::UDIV:
  case Opcode::UREM:
  case Opcode::EXT:
  case Opcode::INTR:
  case Opcode::HALT:
  case Opcode::JMP:
  case Opcode::JCC:
  case Opcode::JMPI:
  case Opcode::CALL:
  case Opcode::CALLI:
  case Opcode::RET:
    return true;
  default:
    return false;
  }
}

/// Backward pass over the block: FlagsNeeded[i] tells whether the FLAGS
/// value instruction i writes can ever be read. Conservative at the
/// block exit (a chained successor may branch on our flags).
static void computeFlagsNeeded(const std::vector<BlockInst> &Insts,
                               std::vector<bool> &FlagsNeeded) {
  FlagsNeeded.assign(Insts.size(), true);
  bool Live = true;
  for (size_t I = Insts.size(); I-- > 0;) {
    Opcode Op = Insts[I].D.I.Op;
    FlagsNeeded[I] = Live;
    if (readsFlags(Op) || observesFlags(Op))
      Live = true;
    else if (writesAllFlags(Op))
      Live = false;
  }
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

static uint8_t log2u8(uint8_t V) {
  uint8_t L = 0;
  while ((1u << L) < V)
    ++L;
  return L;
}

/// Splits a two-operand ALU form into its RR/RI uop kind. \p RR must be
/// followed by RI in UopKind declaration order.
static UopKind aluKind(UopKind RR, const Instruction &I) {
  return I.B.isReg() ? RR
                     : static_cast<UopKind>(static_cast<uint8_t>(RR) + 1);
}

static void setMemFields(Uop &U, const MemRef &M) {
  U.B = M.Base;
  U.X = M.Index;
  U.ScaleLog = log2u8(M.Scale);
  U.Imm = M.Disp;
}

/// Lowers one decoded instruction to its micro-op.
static Uop lower(const Decoded &D, bool FlagsNeeded) {
  const Instruction &I = D.I;
  Uop U;
  U.Len = static_cast<uint8_t>(D.Length);
  U.A = I.A.R;
  if (I.B.isReg())
    U.B = I.B.R;
  else
    U.Imm = I.B.Imm;

  switch (I.Op) {
  case Opcode::NOP:
  case Opcode::MARKERNOP:
  case Opcode::FENCE:
    U.Kind = UopKind::Nop;
    break;
  case Opcode::MOV:
    U.Kind = aluKind(UopKind::MovRR, I);
    break;
  case Opcode::ADD:
    U.Kind = FlagsNeeded ? aluKind(UopKind::AddRR, I)
                         : aluKind(UopKind::AddRR_NF, I);
    break;
  case Opcode::SUB:
    U.Kind = FlagsNeeded ? aluKind(UopKind::SubRR, I)
                         : aluKind(UopKind::SubRR_NF, I);
    break;
  case Opcode::CMP:
    U.Kind = FlagsNeeded ? aluKind(UopKind::CmpRR, I) : UopKind::Nop;
    break;
  case Opcode::TEST:
    U.Kind = FlagsNeeded ? aluKind(UopKind::TestRR, I) : UopKind::Nop;
    break;
  case Opcode::AND:
    U.Kind = aluKind(UopKind::AndRR, I);
    break;
  case Opcode::OR:
    U.Kind = aluKind(UopKind::OrRR, I);
    break;
  case Opcode::XOR:
    U.Kind = aluKind(UopKind::XorRR, I);
    break;
  case Opcode::SHL:
    U.Kind = aluKind(UopKind::ShlRR, I);
    break;
  case Opcode::SHR:
    U.Kind = aluKind(UopKind::ShrRR, I);
    break;
  case Opcode::SAR:
    U.Kind = aluKind(UopKind::SarRR, I);
    break;
  case Opcode::MUL:
    U.Kind = aluKind(UopKind::MulRR, I);
    break;
  case Opcode::NOT:
    U.Kind = UopKind::NotR;
    break;
  case Opcode::NEG:
    U.Kind = UopKind::NegR;
    break;
  case Opcode::SET:
    U.Kind = UopKind::SetCC;
    U.X = static_cast<uint8_t>(I.CC);
    break;
  case Opcode::CMOV:
    U.Kind = aluKind(UopKind::CmovRR, I);
    U.X = static_cast<uint8_t>(I.CC);
    break;
  case Opcode::LEA:
    U.Kind = UopKind::Lea;
    setMemFields(U, I.B.M);
    break;
  case Opcode::LOAD:
  case Opcode::LOADS:
    U.Kind = I.Op == Opcode::LOAD ? UopKind::Load : UopKind::LoadS;
    setMemFields(U, I.B.M);
    U.SizeLog = log2u8(I.Size);
    break;
  case Opcode::STORE:
    if (!I.B.isReg()) {
      U.Kind = UopKind::Fallback; // needs disp + imm: two 64-bit payloads
      break;
    }
    U.Kind = UopKind::StoreR;
    U.A = I.B.R; // source register
    setMemFields(U, I.A.M);
    U.SizeLog = log2u8(I.Size);
    break;
  case Opcode::PUSH:
    if (I.A.isReg()) {
      U.Kind = UopKind::PushR;
    } else {
      U.Kind = UopKind::PushI;
      U.Imm = I.A.Imm;
    }
    break;
  case Opcode::POP:
    U.Kind = UopKind::PopR;
    break;
  case Opcode::JMP:
    U.Kind = UopKind::Jmp;
    U.Imm = I.A.Imm;
    break;
  case Opcode::JCC:
    U.Kind = UopKind::Jcc;
    U.X = static_cast<uint8_t>(I.CC);
    U.Imm = I.A.Imm;
    break;
  case Opcode::INTR:
    U.Kind = UopKind::Intr;
    U.X = static_cast<uint8_t>(I.Intr);
    U.Imm = I.IntrPayload;
    break;
  default:
    U.Kind = UopKind::Fallback; // JMPI/CALL/CALLI/RET/HALT/EXT/div
    break;
  }
  return U;
}

DecodedBlock *BlockCache::build(uint64_t PC, const Memory &Mem) {
  auto Owner = std::make_unique<DecodedBlock>();
  DecodedBlock *B = Owner.get();
  B->Entry = PC;
  uint64_t A = PC;
  while (B->Insts.size() < MaxBlockInsts) {
    if (A - CodeBase >= CodeSize)
      break; // ran off the code region; the step path faults exactly here
    uint8_t Buf[40];
    Mem.readCode(A, Buf, sizeof(Buf));
    auto D = decode(Buf, sizeof(Buf), 0);
    if (!D)
      break; // undecodable tail: the block ends one instruction early
    A += D->Length;
    B->Insts.push_back({*D, A});
    if (alwaysDiverts(D->I.Op))
      break;
  }
  if (B->Insts.empty())
    return nullptr; // entry itself undecodable: step path raises BadFetch

  std::vector<bool> FlagsNeeded;
  computeFlagsNeeded(B->Insts, FlagsNeeded);
  B->Uops.reserve(B->Insts.size());
  for (size_t I = 0; I != B->Insts.size(); ++I)
    B->Uops.push_back(lower(B->Insts[I].D, FlagsNeeded[I]));

  // Resolve each INTR's "next real instruction" (the TagProp transfer
  // target) against the block's own decode: a backward sweep finds the
  // first non-INTR instruction after each intrinsic. Intrinsics whose
  // run reaches the block end stay null — the architectural decode walk
  // would continue past the block, so handlers fall back to walking.
  // Insts is final here; the pointers stay valid for the block's life.
  const Instruction *NextReal = nullptr;
  for (size_t I = B->Insts.size(); I-- > 0;) {
    if (B->Insts[I].D.I.Op == Opcode::INTR)
      B->Insts[I].ResolvedNext = NextReal;
    else
      NextReal = &B->Insts[I].D.I;
  }

  Index[PC - CodeBase] = B;
  Blocks.push_back(std::move(Owner));
  return B;
}
