//===- vm/BlockCache.h - Block-compiled instruction cache ---------*- C++ -*-===//
///
/// \file
/// The block-compilation front-end of the Machine's execution engine.
/// Straight-line runs of instructions are decoded once into dense
/// DecodedBlock buffers; the executor then iterates a block's array
/// between budget checks instead of paying a per-instruction hash-map
/// probe in the decode cache.
///
/// Blocks are keyed by their entry PC through a *flat* direct-mapped
/// index over the loaded code region (one slot per code byte), so a
/// dispatch is a subtract, a bounds check, and an array load. PCs
/// outside the region (the halt sentinel, wild fetches) simply have no
/// block and fall back to the single-step path.
///
/// Blocks additionally carry a two-entry branch-target chain (exit PC ->
/// successor block) so hot loops and call/return pairs never touch the
/// flat index at all after the first iteration.
///
/// Invalidation rules (see docs/VM.md):
///   - Machine::loadObject clears the cache and re-registers the code
///     region; that is the only event that changes code bytes, so blocks
///     never go stale while a program runs (exactly the contract the
///     per-instruction decode cache had).
///   - Blocks hold decoded instructions only, never execution state, so
///     runtime hooks that redirect the PC (fault hook, intrinsic
///     handler) need no cache interaction: the executor detects the
///     redirect by comparing the PC against the instruction's
///     fall-through address and exits the block.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_BLOCKCACHE_H
#define TEAPOT_VM_BLOCKCACHE_H

#include "isa/Encoding.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace teapot {
namespace vm {

class Memory;

/// One pre-decoded instruction inside a block. NextPC is the PC value
/// the Machine exposes while executing it (the fall-through address):
/// branches are end-relative and CALL pushes this value, and the
/// executor detects control transfers by the PC diverging from it.
struct BlockInst {
  isa::Decoded D;
  uint64_t NextPC = 0;
  /// For INTR instructions: the next *real* (non-INTR) instruction in
  /// this block — the target a TagProp transfer resolves to, precomputed
  /// at block build so the per-execution decode walk disappears. Points
  /// into this block's own Insts (stable for the block's lifetime, like
  /// the Decoded pointers the JIT embeds). Null when the block ends in
  /// intrinsics (the walk must continue past the block) or for non-INTR
  /// instructions.
  const isa::Instruction *ResolvedNext = nullptr;
};

/// Micro-op kinds. Block compilation lowers each decoded instruction to
/// exactly one Uop: common forms get a specialized kind with operands
/// pre-resolved (register-register vs register-immediate split at
/// translation time, so the executor never probes Operand kinds), and
/// everything else lowers to Fallback, which runs the untouched
/// reference semantics (Machine::exec) on the original Decoded.
///
/// _NF ("no flags") variants are emitted when the backward
/// flags-liveness pass proves the instruction's FLAGS result is
/// overwritten before anything can read or architecturally observe it;
/// flag-dead CMP/TEST lower all the way to Nop.
enum class UopKind : uint8_t {
  Nop, // NOP, MARKERNOP, FENCE, and flag-dead CMP/TEST
  MovRR,
  MovRI,
  AddRR,
  AddRI,
  AddRR_NF,
  AddRI_NF,
  SubRR,
  SubRI,
  SubRR_NF,
  SubRI_NF,
  CmpRR,
  CmpRI,
  TestRR,
  TestRI,
  AndRR,
  AndRI,
  OrRR,
  OrRI,
  XorRR,
  XorRI,
  ShlRR,
  ShlRI,
  ShrRR,
  ShrRI,
  SarRR,
  SarRI,
  MulRR,
  MulRI,
  NotR,
  NegR,
  SetCC,
  CmovRR,
  CmovRI,
  Lea,    // full base + index*scale + disp (either reg may be NoReg)
  Load,   // zero-extending load, full addressing
  LoadS,  // sign-extending load
  StoreR, // store of a register source (store-immediate -> Fallback:
          // it would need two 64-bit payloads)
  PushR,
  PushI,
  PopR,
  Jmp,
  Jcc,
  Fallback, // JMPI/CALL/CALLI/RET/HALT/EXT/UDIV/UREM/store-imm/...
  Intr,     // INTR: X = IntrinsicID, Imm = payload. Carries the inline
            // no-op fast path (Machine::FastPath); the slow path runs
            // the handler with the block's ResolvedNext hint.
};

/// One 16-byte micro-op. Uops[i] corresponds 1:1 to Insts[i]; the
/// executor tracks the PC locally by accumulating Len and only writes
/// it to the CPU before operations that can fault, stop, or be
/// observed by a hook.
struct Uop {
  UopKind Kind = UopKind::Fallback;
  uint8_t Len = 0;      // encoded length: the PC advance
  uint8_t A = 0;        // dst / src register
  uint8_t B = 0;        // second register / base register (NoReg: absent)
  uint8_t X = 0;        // index register (NoReg: absent), CondCode, or
                        // IntrinsicID (Intr)
  uint8_t ScaleLog = 0; // log2 of the index scale
  uint8_t SizeLog = 0;  // log2 of the access size
  uint8_t Pad = 0;
  int64_t Imm = 0; // immediate / displacement / branch offset
};
static_assert(sizeof(Uop) == 16, "keep the uop stream dense");

/// A decoded straight-line run starting at Entry. Ends at the first
/// unconditionally-diverting instruction (JMP/JMPI/CALL/CALLI/RET/HALT),
/// at an undecodable byte, at the code-region edge, or at the length
/// cap. Conditional branches, intrinsics, and external calls sit in the
/// middle of blocks; the executor exits early when they divert.
struct DecodedBlock {
  uint64_t Entry = 0;
  std::vector<BlockInst> Insts;
  /// The compiled form: Uops[i] executes Insts[i].
  std::vector<Uop> Uops;

  /// Host machine code for this block (vm/Jit.h), compiled on first JIT
  /// execution. Owned by the Jit's code arena; Jit::flush() nulls it on
  /// every invalidation (and must run before BlockCache::clear()).
  const void *JitCode = nullptr;

  /// Branch-target chain: the last two distinct exit PCs and their
  /// successor blocks. Successors live in the same cache, so the
  /// pointers stay valid until clear() destroys both sides.
  struct Link {
    uint64_t PC = ~0ULL;
    DecodedBlock *B = nullptr;
  };
  Link Links[2];
  uint8_t NextLink = 0;
};

class BlockCache {
public:
  /// Length cap per block: bounds decode-ahead waste when entry points
  /// land just before long straight-line runs that later entries cover.
  static constexpr size_t MaxBlockInsts = 128;
  /// Safety cap on the flat index (8 bytes per code byte). Code regions
  /// beyond this simply are not block-compiled; execution still works
  /// through the single-step path.
  static constexpr uint64_t MaxIndexedCodeSize = 64ULL << 20;

  /// Registers the loaded code region [Base, Base+Size) and drops every
  /// block. Call on every Machine::loadObject.
  void setCodeRegion(uint64_t Base, uint64_t Size);

  /// Drops all blocks (and with them all chain links).
  void clear();

  /// The block starting at \p PC, building it on first use. Null when
  /// PC is outside the code region or starts with an undecodable byte.
  DecodedBlock *lookup(uint64_t PC, const Memory &Mem) {
    uint64_t Off = PC - CodeBase;
    if (Off >= CodeSize)
      return nullptr;
    if (DecodedBlock *B = Index[Off])
      return B;
    return build(PC, Mem);
  }

  /// Successor lookup from \p From exiting to \p PC: consults the
  /// chain first, falling back to (and then updating) the flat index.
  DecodedBlock *next(DecodedBlock *From, uint64_t PC, const Memory &Mem) {
    if (From->Links[0].PC == PC)
      return From->Links[0].B;
    if (From->Links[1].PC == PC)
      return From->Links[1].B;
    DecodedBlock *N = lookup(PC, Mem);
    if (N) {
      From->Links[From->NextLink & 1] = {PC, N};
      ++From->NextLink;
    }
    return N;
  }

  size_t blockCount() const { return Blocks.size(); }
  uint64_t codeBase() const { return CodeBase; }
  uint64_t codeSize() const { return CodeSize; }

private:
  DecodedBlock *build(uint64_t PC, const Memory &Mem);

  uint64_t CodeBase = 0;
  uint64_t CodeSize = 0;
  std::vector<DecodedBlock *> Index; // one slot per code byte
  std::vector<std::unique_ptr<DecodedBlock>> Blocks;
};

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_BLOCKCACHE_H
