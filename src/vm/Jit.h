//===- vm/Jit.h - Per-block x86-64 JIT tier -----------------------*- C++ -*-===//
///
/// \file
/// The third execution tier of the Machine (docs/VM.md): each
/// DecodedBlock is compiled once into a straight host x86-64 code
/// sequence, eliminating the per-uop dispatch and operand-decode tax
/// the block engine still pays. The compiled code is *semantically the
/// uop stream*: it reuses the block compiler's operand resolution and
/// `_NF` flags-liveness results (flag-dead ops emit no FLAGS code at
/// all), keeps the architectural FLAGS byte current at every
/// flag-writing uop, and routes every rare or hook-observable operation
/// (Fallback uops — EXT/INTR/CALL/RET/DIV/... — and memory slow paths)
/// back into the interpreter's own helpers, so there is exactly one
/// source of truth for guest semantics.
///
/// Execution model (mirrors Machine::runBlocks exactly — the
/// differential suite in tests/vm_block_test.cpp pins it):
///
///   - Guest registers live in memory (CPU::R), addressed off a pinned
///     host register; hot scratch values use a fixed caller-saved set.
///   - Every block entry begins with a budget check: a block whose uop
///     count exceeds the remaining budget bails out, and the driver
///     finishes the run through step() — so run(K) is bit-exact for
///     every K, exactly the PR-3 contract.
///   - Loads/stores/push/pop inline the Memory TLB fast path (hit +
///     in-page + unwatched + dirty-tracked); anything else calls a C++
///     helper that performs the full reference semantics including
///     fault hooks and squash-on-resume.
///   - Blocks chain directly: block-ending jumps are emitted as a jump
///     to a resolver stub and patched to the successor's entry once
///     both sides are compiled (the code-cache analogue of the block
///     engine's 2-entry Links).
///   - Computed control flow (CALL/CALLI/RET/JMPI, and helper exits
///     that merely moved the PC) re-enters compiled code through a
///     shared dispatch stub: a direct-mapped guest-PC -> host-entry
///     cache probed without leaving the arena. Misses exit to the
///     driver, whose dispatch loop refills the cache — so the steady
///     state of call-heavy (instrumented) code never round-trips
///     through C++ per call or return.
///   - Invalidation is wholesale, through the same watch-epoch
///     mechanism as the block cache: any event that clears decoded
///     blocks (loadObject, a guest store into the code region, a
///     baseline reset restoring code pages) also drops every compiled
///     block and chain patch.
///
/// The backend only exists on x86-64 hosts (`#ifdef __x86_64__`);
/// elsewhere — or when the host refuses executable mappings —
/// available() is false and the Machine silently runs the block engine
/// instead.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_JIT_H
#define TEAPOT_VM_JIT_H

#include "vm/BlockCache.h"
#include "vm/CodeBuffer.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace teapot {
namespace vm {

class Machine;

class Jit {
public:
  /// Default arena size. Virtual reservation only — pages materialize
  /// on first touch, and one contiguous mapping keeps every chain
  /// patch within rel32 range.
  static constexpr size_t DefaultArenaBytes = 32u << 20;

  /// True when this host can run JIT-compiled code (x86-64 and the
  /// kernel accepts executable anonymous mappings). The probe runs
  /// once; the result is cached.
  static bool available();

  /// Builds a JIT tier bound to \p M. The compiled code embeds
  /// absolute addresses of M's state (registers, TLB, counters), so
  /// the tier must be destroyed with the Machine and M must never
  /// move. Returns null when !available().
  static std::unique_ptr<Jit> create(Machine &M);
  ~Jit();

  Jit(const Jit &) = delete;
  Jit &operator=(const Jit &) = delete;

  /// The compiled entry point for \p B, compiling it on first use
  /// (flushing the arena and retrying once if it is full). Null when a
  /// single block cannot fit in an empty arena, when an injected
  /// `jit.arena_alloc` fault refuses the emission, or when the arena is
  /// broken (see broken()).
  const void *entry(DecodedBlock &B);

  /// True when the last W^X re-seal failed (mprotect failure or an
  /// injected `jit.arena_seal` fault): the arena is writable and
  /// nothing in it may be executed. A later flush() can recover; until
  /// then the driver finishes runs through the block engine.
  bool broken() const { return Broken; }

  /// Drops every compiled block, chain patch, and pending resolver.
  /// Must be called *before* the corresponding BlockCache::clear() (it
  /// unlinks the DecodedBlocks' JitCode pointers).
  void flush();

  /// How compiled code leaves the arena, and what the driver does next.
  enum ExitStatus : uint64_t {
    /// Control transfer out of compiled code (unchained branch, helper
    /// divert, hook redirect, code-region patch). C.PC is correct;
    /// counters are settled; the driver re-dispatches.
    ExitDivert = 1,
    /// A helper stopped the machine; the StopState is in
    /// Machine::JitStop. Counters are settled.
    ExitStopped = 2,
    /// A block entry's budget check failed: fewer instructions remain
    /// than the block holds. C.PC is the block entry; the driver
    /// finishes the run bit-exactly through step().
    ExitBudget = 3,
    /// Internal to generated code — never reaches the driver. A helper
    /// moved the PC while every compiled block stayed valid (a taken
    /// CALL/RET/JMPI, or a hook redirect without a code patch): the
    /// fallback stub settles counters and re-enters through the
    /// dispatch stub; a dispatch miss demotes the status to ExitDivert.
    ExitChain = 4,
  };

  struct ExitState {
    uint64_t Status;
    uint64_t Remaining;
  };

  /// Runs compiled code starting at \p Entry with \p Remaining budget.
  ExitState run(uint64_t Remaining, const void *Entry) const;

  /// Records \p Entry (a compiled entry for guest \p PC) in the
  /// in-code dispatch cache. The driver calls this on every dispatch,
  /// so exactly the targets the run actually reaches become reachable
  /// without exiting the arena. Entries never outlive the arena
  /// generation: flush() clears the cache.
  void noteDispatch(uint64_t PC, const void *Entry);

  // --- Introspection (tests, benchmarks) ---------------------------------
  size_t compiledBlocks() const { return Compiled.size(); }
  size_t codeBytes() const { return Arena ? Arena->used() : 0; }
  uint64_t flushCount() const { return Flushes; }
  /// Block-to-block jumps patched to a compiled successor so far.
  uint64_t chainPatchCount() const { return ChainPatches; }

private:
  explicit Jit(Machine &M, std::unique_ptr<CodeBuffer> Arena);

  /// Compiles \p B at the arena bump pointer. Returns null when the
  /// arena is full (caller flushes and retries).
  const void *compile(DecodedBlock &B);
  void emitRuntimeStubs();

  // Out-of-line slow paths called from generated code. Each performs
  // the reference semantics (region check, fault hook, squash on
  // resume) and returns 0 = continue in-block, ExitDivert, or
  // ExitStopped (with Machine::JitStop filled in); fallbackSlow also
  // returns ExitChain for in-arena re-dispatch (see ExitStatus).
  static uint64_t loadSlow(Machine *M, uint64_t Addr, uint64_t NextPC,
                           uint64_t Packed);
  static uint64_t storeSlow(Machine *M, uint64_t Addr, uint64_t NextPC,
                            uint64_t Value, uint64_t SizeLog);
  static uint64_t pushSlow(Machine *M, uint64_t Value, uint64_t NextPC);
  static uint64_t popSlow(Machine *M, uint64_t Reg, uint64_t NextPC);
  static uint64_t fallbackSlow(Machine *M, const BlockInst *BI);
  /// Runs \p N consecutive INTR uops as one call — intrinsics are the
  /// bulk of an instrumented instruction stream (they outnumber real
  /// instructions), and they arrive in adjacent runs, so one call per
  /// run replaces one generated-code round trip per intrinsic. Returns
  /// status | (consumed << 3); consumed counts the uop that produced a
  /// nonzero status, matching the per-uop settle convention.
  static uint64_t intrRunSlow(Machine *M, const BlockInst *BI, uint64_t N);

  Machine &M;
  std::unique_ptr<CodeBuffer> Arena;

  /// Entry thunk (saves host state, pins the register map, jumps into a
  /// block) and shared exit epilogue, emitted once per arena lifetime.
  const void *EnterThunk = nullptr;
  const uint8_t *Epilogue = nullptr;
  /// Shared in-code re-dispatch: probes the Dispatch cache for C.PC and
  /// jumps straight to the compiled entry; misses exit with ExitDivert.
  const uint8_t *DispatchStub = nullptr;

  /// Direct-mapped guest-PC -> compiled-entry cache probed by the
  /// dispatch stub. Sized once in the constructor (the stub embeds
  /// data()); slots hold an impossible PC until filled.
  struct DispatchEntry {
    uint64_t PC = ~0ULL;
    const void *Entry = nullptr;
  };
  static constexpr size_t DispatchSlots = 512;
  static size_t dispatchSlot(uint64_t PC) {
    // Must match the hash the dispatch stub computes.
    return ((PC >> 2) ^ PC) & (DispatchSlots - 1);
  }
  std::vector<DispatchEntry> Dispatch;

  /// Blocks holding a JitCode pointer into the current arena
  /// generation; flush() unlinks exactly these.
  std::vector<DecodedBlock *> Compiled;
  /// Compiled entry by guest PC, for chain resolution.
  std::unordered_map<uint64_t, const uint8_t *> EntryByPC;
  /// Unresolved chain sites: guest target PC -> arena offset of the
  /// jump's rel32 field. Patched when the target compiles.
  std::unordered_multimap<uint64_t, uint32_t> PendingChains;

  uint64_t Flushes = 0;
  uint64_t ChainPatches = 0;
  bool Broken = false;
};

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_JIT_H
