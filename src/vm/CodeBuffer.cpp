//===- vm/CodeBuffer.cpp --------------------------------------------------===//

#include "vm/CodeBuffer.h"

#include "support/FaultInjector.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define TEAPOT_HAVE_MMAP 1
#endif

using namespace teapot;
using namespace teapot::vm;

std::unique_ptr<CodeBuffer> CodeBuffer::create(size_t Capacity) {
#if TEAPOT_HAVE_MMAP
  // Map RX up front: this doubles as the capability probe — a kernel
  // that refuses executable anonymous mappings fails here, once, and
  // the Machine falls back to the block engine.
  void *P = mmap(nullptr, Capacity, PROT_READ | PROT_EXEC,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return nullptr;
  return std::unique_ptr<CodeBuffer>(
      new CodeBuffer(static_cast<uint8_t *>(P), Capacity));
#else
  (void)Capacity;
  return nullptr;
#endif
}

CodeBuffer::~CodeBuffer() {
#if TEAPOT_HAVE_MMAP
  if (Base)
    munmap(Base, Cap);
#endif
}

void CodeBuffer::beginWrite() {
#if TEAPOT_HAVE_MMAP
  if (Writable)
    return;
  mprotect(Base, Cap, PROT_READ | PROT_WRITE);
  Writable = true;
#endif
}

bool CodeBuffer::endWrite() {
#if TEAPOT_HAVE_MMAP
  if (!Writable)
    return true;
  bool Fail = Faults && Faults->shouldFail("jit.arena_seal");
  if (!Fail && mprotect(Base, Cap, PROT_READ | PROT_EXEC) != 0)
    Fail = true;
  if (Fail)
    return false; // arena stays RW: caller must not execute from it
  Writable = false;
  return true;
#else
  return true;
#endif
}

bool CodeBuffer::allocFaultFires() {
  return Faults->shouldFail("jit.arena_alloc");
}
