//===- vm/Machine.h - TISA interpreter ----------------------------*- C++ -*-===//
///
/// \file
/// The execution platform that stands in for a real x86-64 CPU + OS
/// process. It executes TISA binaries through a block-compiled engine
/// (straight-line runs decoded once into micro-op buffers, vm/BlockCache.h,
/// with a single-step reference interpreter kept for differential
/// testing — see docs/VM.md) and exposes exactly the hooks Teapot's
/// runtime library needs:
///
///   - an IntrinsicHandler receiving every INTR instruction,
///   - a fault hook (the "custom signal handler" of Section 6.1),
///   - an external-call table (the uninstrumented libc analogue),
///   - allocator hooks so the runtime can substitute the ASan allocator,
///   - an input hook so the DIFT runtime can tag user input (fread/fgets
///     wrappers of Section 6.2.2).
///
/// The Machine knows nothing about speculation: the rewritten program
/// simulates misprediction architecturally, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_MACHINE_H
#define TEAPOT_VM_MACHINE_H

#include "isa/Encoding.h"
#include "isa/Instruction.h"
#include "obj/ObjectFile.h"
#include "support/Error.h"
#include "vm/BlockCache.h"
#include "vm/Memory.h"

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace teapot {
namespace vm {

class Jit;

/// Architectural register state.
struct CPU {
  uint64_t R[isa::NumRegs] = {};
  uint8_t Flags = 0;
  uint64_t PC = 0;
};

enum class StopKind : uint8_t {
  Halted,    // HALT or clean return from the entry function
  Fault,     // unhandled guest fault
  OutOfGas,  // instruction budget exhausted
  ExtError,  // an external function signalled failure
};

enum class FaultKind : uint8_t {
  BadMemory,  // access outside the user-accessible regions
  BadFetch,   // PC undecodable or outside code
  BadExt,     // unknown external index
  DivByZero,
  OutOfMemory, // guest page materialization refused (Memory::MaxPages
               // ceiling or an injected mem.page_alloc fault) — a
               // per-execution stop, never a host OOM
};

struct StopState {
  StopKind Kind = StopKind::Halted;
  FaultKind Fault = FaultKind::BadMemory;
  uint64_t FaultAddr = 0;
  uint64_t ExitStatus = 0;
};

class Machine;

/// A handler-published view that lets the compiled engines retire
/// common no-op intrinsics without leaving generated (or threaded)
/// code. The handler remains the single source of truth: it publishes
/// which IntrinsicIDs are architectural no-ops in each mode, and the
/// engines consult the view *per execution* — a stale or absent view
/// (Enabled == 0) just routes every INTR through the slow path, which
/// is always correct.
///
/// Layout is codegen ABI: the JIT embeds &Machine::FastPath and reads
/// the fields at fixed offsets (static_asserts in vm/Jit.cpp), so the
/// struct must stay standard-layout and the offsets stable.
struct IntrinsicFastPath {
  /// Nonzero once a handler has published valid masks.
  uint32_t Enabled = 0;
  /// Nonzero while the handler is simulating misprediction (depth > 0);
  /// selects which mask applies.
  uint32_t InSim = 0;
  /// Bit I set: IntrinsicID I is a complete no-op when InSim == 0.
  uint32_t NoOpNormalMask = 0;
  /// Bit I set: IntrinsicID I is a complete no-op when InSim != 0.
  uint32_t NoOpInSimMask = 0;
  uint32_t Pad = 0;
  /// CovGuard's saturation fast path (normal mode only): the guard is a
  /// no-op iff Id >= NormalCovSize || NormalCov[Id] == 0xff. Must be
  /// republished whenever the underlying coverage vector can move.
  const uint8_t *NormalCov = nullptr;
  uint64_t NormalCovSize = 0;
};

/// Receives INTR instructions. Returning false requests a machine stop
/// (treated as ExtError).
class IntrinsicHandler {
public:
  virtual ~IntrinsicHandler() = default;
  virtual bool onIntrinsic(Machine &M, const isa::Instruction &I) = 0;
  /// INTR delivery from the block-compiled tiers, carrying the decoded
  /// block's precomputed "next real (non-INTR) instruction" — the
  /// target a TagProp transfer walks to. \p NextReal is null when the
  /// block could not resolve it (block-cut tails); handlers must then
  /// fall back to their own walk. Default: ignore the hint.
  virtual bool onIntrinsicResolved(Machine &M, const isa::Instruction &I,
                                   const isa::Instruction *NextReal) {
    (void)NextReal;
    return onIntrinsic(M, I);
  }
};

/// Standard external-function indices (the workload "libc").
enum ExtIndex : uint8_t {
  ExtExit = 0,      // exit(r0)
  ExtReadInput = 1, // r0 = read(buf=r0, len=r1) from the fuzz input
  ExtInputSize = 2, // r0 = total input size
  ExtWriteOut = 3,  // write(buf=r0, len=r1) to the output sink
  ExtMalloc = 4,    // r0 = malloc(r0)
  ExtFree = 5,      // free(r0)
  ExtAbort = 6,
  NumExtIndices,
};

class Machine {
public:
  Machine();
  ~Machine();

  /// Non-copyable: the JIT tier (and the UseBlockEngine shim) embed
  /// absolute addresses of this object's state.
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  CPU C;
  Memory Mem;

  /// Loads \p Obj into memory, points PC at the entry, sets up the stack
  /// (with a return-to-sentinel so a stray RET from the entry halts
  /// cleanly), resets counters, and invalidates the decode cache.
  Error loadObject(const obj::ObjectFile &Obj);

  /// Captures the post-load state as the fuzzing baseline.
  void captureBaseline();

  /// Restores memory, registers, PC, and host state to the baseline —
  /// the start of a fresh run on the same binary.
  void resetToBaseline();

  /// Executes up to \p MaxInsts instructions through the selected
  /// execution tier (all tiers are exactly equivalent, including budget
  /// accounting — see docs/VM.md and tests/vm_block_test.cpp).
  StopState run(uint64_t MaxInsts);

  /// Executes one instruction; returns false if the machine stopped
  /// (details in \p StopOut). This is the reference interpreter path;
  /// run() composes whole decoded blocks out of the same semantics.
  bool step(StopState &StopOut);

  /// The execution tiers, in increasing throughput order. All three are
  /// bit-exact against each other for every budget cutoff; they differ
  /// only in speed (docs/VM.md).
  enum class Engine : uint8_t {
    Interpreter, ///< reference single-step loop (runReference)
    Block,       ///< block-compiled threaded interpreter (runBlocks)
    Jit,         ///< per-block host x86-64 codegen (vm/Jit.h)
  };

  /// Engine selector. Jit silently resolves to Block on hosts without a
  /// JIT backend (non-x86-64, or executable mappings refused) — see
  /// resolvedEngine().
  Engine Eng = Engine::Jit;

  /// The engine run() will actually use: Eng, downgraded to Block when
  /// the JIT backend is unavailable on this host.
  Engine resolvedEngine() const;

  /// Back-compat shim for the old two-tier bool knob: assigning `true`
  /// selects the Block engine, `false` the reference interpreter;
  /// reading answers "is a compiled engine on?". New code should set
  /// Eng directly.
  struct EngineBoolShim {
    Engine &E;
    EngineBoolShim &operator=(bool B) {
      E = B ? Engine::Block : Engine::Interpreter;
      return *this;
    }
    operator bool() const { return E != Engine::Interpreter; }
  };
  EngineBoolShim UseBlockEngine{Eng};

  /// Cap on the *accumulated* output() size across ExtWriteOut calls
  /// (each call is additionally capped at 1 MiB). Long campaigns on
  /// write-happy programs would otherwise grow the vector without
  /// bound; once full, further output bytes are dropped (the guest
  /// still sees success, as a full pipe is not its bug).
  uint64_t MaxOutputBytes = DefaultMaxOutputBytes;
  static constexpr uint64_t DefaultMaxOutputBytes = 16ULL << 20;

  /// JIT code-arena size in bytes; 0 selects Jit::DefaultArenaBytes.
  /// Must be set before the first run() on the Jit engine (the tier is
  /// created lazily and sizes its arena once). Tests use tiny arenas to
  /// exercise the flush/degrade paths cheaply.
  uint64_t JitArenaBytes = 0;

  /// Optional deterministic fault injection for the JIT arena (sites
  /// `jit.arena_alloc`/`jit.arena_seal`); wired into the CodeBuffer
  /// when the tier is created. Guest-memory faults are armed separately
  /// via Mem.Faults. Not owned; set before the first run().
  support::FaultInjector *Faults = nullptr;

  // --- Hooks -------------------------------------------------------------
  IntrinsicHandler *Intrinsics = nullptr;
  /// Intrinsic no-op fast-path view, published by the handler (see
  /// IntrinsicFastPath). Public so the handler can keep InSim and the
  /// coverage view current; the engines only read it.
  IntrinsicFastPath FastPath;
  /// Return true to resume (after redirecting PC); false to stop.
  std::function<bool(Machine &, FaultKind, uint64_t)> FaultHook;
  /// Replaceable allocator (the runtime installs the ASan allocator).
  std::function<uint64_t(Machine &, uint64_t)> MallocFn;
  std::function<void(Machine &, uint64_t)> FreeFn;
  /// Called after read_input copies bytes into guest memory (taint
  /// source hook): (addr, len, input offset).
  std::function<void(uint64_t, uint64_t, uint64_t)> InputReadHook;

  // --- Host environment ---------------------------------------------------
  void setInput(std::vector<uint8_t> Input) {
    this->Input = std::move(Input);
    InputCursor = 0;
  }
  const std::vector<uint8_t> &output() const { return Output; }

  // --- Introspection ------------------------------------------------------
  uint64_t executedInsts() const { return ExecutedInsts; }
  uint64_t executedIntrinsics() const { return ExecutedIntrinsics; }
  /// Intrinsics retired through the compiled tiers' inline no-op fast
  /// path (never delivered to the handler). Always 0 on the reference
  /// interpreter — a per-engine diagnostic, not architectural state.
  uint64_t intrinsicFastPathHits() const { return IntrFastHits; }
  /// Times runJit gave up on the JIT tier mid-run (broken arena or
  /// flush thrashing) and finished through the block engine. Purely
  /// informational: all tiers are bit-exact, so degrading never changes
  /// guest-visible results.
  uint64_t jitDegrades() const { return JitDegrades; }
  /// The block-compilation front-end (compiled-block count, code region).
  const BlockCache &blockCache() const { return Blocks; }
  /// The JIT tier, or null while nothing has been JIT-executed yet
  /// (created lazily on the first runJit dispatch).
  const Jit *jit() const { return JitTier.get(); }

  /// Decodes (with caching) the instruction at \p Addr. Returns null on
  /// failure. The runtime uses this to inspect covered instructions.
  const isa::Decoded *decodeAt(uint64_t Addr);

  /// Effective address of a memory operand under the current registers.
  uint64_t effectiveAddr(const isa::MemRef &M) const {
    uint64_t A = static_cast<uint64_t>(M.Disp);
    if (M.Base != isa::NoReg)
      A += C.R[M.Base];
    if (M.Index != isa::NoReg)
      A += C.R[M.Index] * M.Scale;
    return A;
  }

  /// The sentinel return address installed below the entry frame.
  static constexpr uint64_t HaltSentinel = 0x7fff'dead'0000ULL;

private:
  /// The JIT tier's generated code and slow-path helpers operate on the
  /// same private state as the in-class engines (guestRead/guestWrite,
  /// exec, the epoch bookkeeping) — one source of truth for semantics.
  friend class Jit;

  /// Outcome of a guest memory access. When the fault hook resumes the
  /// machine (Resumed), the faulting instruction is *squashed*: it
  /// retires no architectural side effects (no destination write, no SP
  /// adjustment, no branch) beyond whatever the hook itself did — the
  /// deterministic analogue of a signal handler skipping the
  /// instruction. (Previously the instruction continued with an
  /// uninitialized loaded value, which corrupted hook-restored state.)
  enum class Access : uint8_t { Ok, Resumed, Stopped };

  StopState runBlocks(uint64_t MaxInsts);
  StopState runReference(uint64_t MaxInsts);
  StopState runJit(uint64_t MaxInsts);
  bool exec(const isa::Decoded &D, StopState &StopOut);
  bool execExt(uint64_t Index, StopState &StopOut);
  Access guestRead(uint64_t Addr, uint64_t &Out, unsigned Size, bool Signed,
                   StopState &StopOut);
  Access guestWrite(uint64_t Addr, uint64_t V, unsigned Size,
                    StopState &StopOut);
  bool raiseFault(FaultKind K, uint64_t Addr, StopState &StopOut);

  std::unordered_map<uint64_t, isa::Decoded> ICache;
  BlockCache Blocks;
  /// Code-write coherence: Memory bumps watchEpoch() on any write into
  /// the code region; each decoded-instruction cache tracks the epoch
  /// it last synced with and drops its entries when it changes, so
  /// both engines stay coherent under guest stores into code.
  uint64_t ICacheEpoch = 0;
  uint64_t BlocksEpoch = 0;
  std::vector<uint8_t> Input;
  uint64_t InputCursor = 0;
  std::vector<uint8_t> Output;
  uint64_t HeapBump = 0;
  // ExecutedInsts / ExecutedIntrinsics / IntrFastHits are codegen ABI:
  // the JIT addresses all three relative to its pinned &ExecutedInsts
  // (r14), so they must stay adjacent and in this order (checked at
  // codegen in vm/Jit.cpp).
  uint64_t ExecutedInsts = 0;
  uint64_t ExecutedIntrinsics = 0;
  uint64_t IntrFastHits = 0;
  uint64_t JitDegrades = 0;

  /// The JIT tier (lazily created by runJit) and the StopState its
  /// slow-path helpers fill in when they stop the machine. Reset at the
  /// top of every runJit call: StopState writes are one-shot within a
  /// run, exactly like the engines' local Stop.
  std::unique_ptr<Jit> JitTier;
  StopState JitStop;

  // Baseline for resets.
  CPU BaselineCPU;
  uint64_t BaselineHeapBump = 0;
};

/// Stable lower-case engine name ("interp", "block", "jit") for CLI
/// flags, JSON scan results, and benchmark rows.
const char *engineName(Machine::Engine E);

/// \p E with the host capability applied: Jit downgrades to Block when
/// no JIT backend exists on this host. What Machine::resolvedEngine()
/// reports, without needing a Machine — lets tools record the engine a
/// config will actually run on.
Machine::Engine resolveEngine(Machine::Engine E);

/// Parses an engine name as accepted by `--engine`; returns false (and
/// leaves \p Out untouched) on anything unrecognized.
bool parseEngineName(std::string_view Name, Machine::Engine &Out);

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_MACHINE_H
