//===- vm/Jit.cpp - Per-block x86-64 JIT tier -----------------------------===//
//
// Codegen notes (see Jit.h for the execution model):
//
// Host register map (fixed; pinned in the enter thunk):
//   rbx = &C.R[0]            guest register file base (guest reg g lives
//                            at [rbx + 8g]; FLAGS / PC at fixed offsets)
//   r12 = &Mem.TLB[0]        TLB table base
//   r13 = &Machine           first argument of every slow-path helper
//   r14 = &ExecutedInsts     settled batch-wise at block exits
//   r15 = remaining budget   settled batch-wise at block exits
//   rax rcx rdx rsi rdi r8   scratch (caller-saved; helpers may clobber)
//
// FLAGS strategy: the architectural FLAGS byte (at [rbx + FlagsDisp]) is
// kept current at every flag-writing uop, exactly like the block
// engine's handlers — the `_NF` liveness results already removed the
// dead ones at lowering time, so "lazy materialization" is a lowering
// fact, not a codegen fact. Guest ADD/SUB/CMP/TEST/AND/OR/XOR map to
// the identical host operation whose flags match guest semantics
// bit-for-bit (CF = carry/borrow, OF = signed overflow, ZF/SF direct;
// logic ops clear CF/OF on both sides); shifts/MUL/NEG re-`test` the
// result because the guest defines them as SetZS+ClearCO. After any
// such op the *host* flags mirror the guest flags, so a following
// Jcc/SET/CMOV uses the native condition directly; when the mirror has
// been clobbered (memory op, helper call, `_NF` arithmetic), conditions
// evaluate by indexing a 16-entry truth mask with the FLAGS byte.
//
//===----------------------------------------------------------------------===//

#include "vm/Jit.h"

#include "isa/CondCode.h"
#include "obj/Layout.h"
#include "vm/Machine.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <deque>

using namespace teapot;
using namespace teapot::vm;
// Pulled in by name: `using namespace isa` would make R8/R12/R13
// ambiguous against the host-register enum below.
using isa::CondCode;
using isa::evalCond;
using isa::NoReg;
using isa::SP;

bool Jit::available() {
#ifdef __x86_64__
  // One-time probe: a hardened kernel may refuse anonymous RX mappings.
  static const bool Avail = [] {
    auto CB = CodeBuffer::create(4096);
    return CB != nullptr;
  }();
  return Avail;
#else
  return false;
#endif
}

std::unique_ptr<Jit> Jit::create(Machine &M) {
  if (!available())
    return nullptr;
  size_t Bytes = M.JitArenaBytes ? M.JitArenaBytes : DefaultArenaBytes;
  auto Arena = CodeBuffer::create(Bytes);
  if (!Arena)
    return nullptr;
  Arena->Faults = M.Faults;
  return std::unique_ptr<Jit>(new Jit(M, std::move(Arena)));
}

Jit::Jit(Machine &M, std::unique_ptr<CodeBuffer> A)
    : M(M), Arena(std::move(A)), Dispatch(DispatchSlots) {
  // Dispatch is sized before the stubs are emitted: the dispatch stub
  // embeds Dispatch.data(), and the vector is never resized after.
  Arena->beginWrite();
  emitRuntimeStubs();
  Broken = !Arena->endWrite();
}

Jit::~Jit() = default;

void Jit::flush() {
  for (DecodedBlock *B : Compiled)
    B->JitCode = nullptr;
  Compiled.clear();
  EntryByPC.clear();
  PendingChains.clear();
  // Every cached entry points into the generation being dropped.
  std::fill(Dispatch.begin(), Dispatch.end(), DispatchEntry{});
  Arena->beginWrite();
  Arena->reset();
  emitRuntimeStubs();
  // A failed re-seal (mprotect failure or injected jit.arena_seal
  // fault) marks the arena broken until a later flush recovers it; the
  // driver degrades to the block engine meanwhile.
  Broken = !Arena->endWrite();
  ++Flushes;
}

const void *Jit::entry(DecodedBlock &B) {
  if (Broken)
    return nullptr; // RW arena: nothing in it may be executed
  if (B.JitCode)
    return B.JitCode;
  Arena->beginWrite();
  const void *P = compile(B);
  if (!Arena->endWrite()) {
    Broken = true;
    return nullptr;
  }
  if (!P) {
    // Arena full: wholesale flush (QEMU translation-cache style) and
    // retry once. Hot blocks recompile on demand.
    flush();
    if (Broken)
      return nullptr;
    Arena->beginWrite();
    P = compile(B);
    if (!Arena->endWrite()) {
      Broken = true;
      return nullptr;
    }
  }
  return P;
}

void Jit::noteDispatch(uint64_t PC, const void *Entry) {
  DispatchEntry &D = Dispatch[dispatchSlot(PC)];
  D.PC = PC;
  D.Entry = Entry;
}

// --- Slow-path helpers (reference semantics, one source of truth) ---------
//
// Every helper writes C.PC first (the PC is architecturally "at the next
// instruction" while executing, and the fault hook / StopState observe
// it), then performs the exact Machine::exec semantics including the
// squash-on-resume contract. Return: 0 = continue in-block, ExitDivert
// = exit the block (counters settled by the per-uop exit stub),
// ExitStopped = machine stopped (StopState in M->JitStop).

uint64_t Jit::loadSlow(Machine *M, uint64_t Addr, uint64_t NextPC,
                       uint64_t Packed) {
  M->C.PC = NextPC;
  uint64_t V;
  switch (M->guestRead(Addr, V, 1u << ((Packed >> 8) & 0xff),
                       (Packed >> 16) & 1, M->JitStop)) {
  case Machine::Access::Stopped:
    return ExitStopped;
  case Machine::Access::Resumed:
    return ExitDivert; // squashed; the hook may have redirected us
  case Machine::Access::Ok:
    break;
  }
  M->C.R[Packed & 0xff] = V;
  return 0;
}

uint64_t Jit::storeSlow(Machine *M, uint64_t Addr, uint64_t NextPC,
                        uint64_t Value, uint64_t SizeLog) {
  M->C.PC = NextPC;
  switch (M->guestWrite(Addr, Value, 1u << SizeLog, M->JitStop)) {
  case Machine::Access::Stopped:
    return ExitStopped;
  case Machine::Access::Resumed:
    return ExitDivert;
  case Machine::Access::Ok:
    break;
  }
  if (M->BlocksEpoch != M->Mem.watchEpoch())
    return ExitDivert; // the store patched code: this block is stale
  return 0;
}

uint64_t Jit::pushSlow(Machine *M, uint64_t Value, uint64_t NextPC) {
  M->C.PC = NextPC;
  switch (M->guestWrite(M->C.R[SP] - 8, Value, 8, M->JitStop)) {
  case Machine::Access::Stopped:
    return ExitStopped;
  case Machine::Access::Resumed:
    return ExitDivert; // squashed: SP unchanged
  case Machine::Access::Ok:
    break;
  }
  M->C.R[SP] -= 8;
  if (M->BlocksEpoch != M->Mem.watchEpoch())
    return ExitDivert; // wild SP: the push patched code
  return 0;
}

uint64_t Jit::popSlow(Machine *M, uint64_t Reg, uint64_t NextPC) {
  M->C.PC = NextPC;
  uint64_t V;
  switch (M->guestRead(M->C.R[SP], V, 8, false, M->JitStop)) {
  case Machine::Access::Stopped:
    return ExitStopped;
  case Machine::Access::Resumed:
    return ExitDivert;
  case Machine::Access::Ok:
    break;
  }
  M->C.R[Reg] = V;
  M->C.R[SP] += 8;
  return 0;
}

uint64_t Jit::fallbackSlow(Machine *M, const BlockInst *BI) {
  M->C.PC = BI->NextPC;
  if (!M->exec(BI->D, M->JitStop))
    return ExitStopped;
  if (M->BlocksEpoch != M->Mem.watchEpoch())
    return ExitDivert; // code patch: compiled blocks are stale — the
                       // driver must flush before any more run
  if (M->C.PC != BI->NextPC)
    return ExitChain; // control transfer into still-valid code: the
                      // stub may re-enter through the dispatch cache
  return 0;
}

uint64_t Jit::intrRunSlow(Machine *M, const BlockInst *BI, uint64_t N) {
  // Per-uop semantics are exactly N fallbackSlow calls — PC write,
  // stop, epoch, and redirect checked after every intrinsic (a
  // rollback can restore code pages and redirect the PC mid-run) —
  // minus the exec() opcode dispatch and (N-1) trips through
  // generated code.
  for (uint64_t K = 0; K != N; ++K) {
    const BlockInst &B = BI[K];
    M->C.PC = B.NextPC;
    ++M->ExecutedIntrinsics;
    if (M->Intrinsics &&
        !M->Intrinsics->onIntrinsicResolved(*M, B.D.I, B.ResolvedNext)) {
      M->JitStop.Kind = StopKind::ExtError;
      return ExitStopped | ((K + 1) << 3);
    }
    // Mirror of exec()'s post-intrinsic out-of-memory check: a refused
    // page behind the handler's host-side writes stops (or squashes)
    // here, at the same uop on every engine.
    if (__builtin_expect(M->Mem.oomPending(), 0)) {
      M->Mem.clearOomPending();
      if (!M->raiseFault(FaultKind::OutOfMemory, B.NextPC, M->JitStop))
        return ExitStopped | ((K + 1) << 3);
    }
    if (M->BlocksEpoch != M->Mem.watchEpoch())
      return ExitDivert | ((K + 1) << 3);
    if (M->C.PC != B.NextPC)
      return ExitChain | ((K + 1) << 3);
  }
  return 0;
}

#ifdef __x86_64__

namespace {

// Host register numbers (x86-64 encoding).
enum HostReg {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

constexpr int32_t FlagsDisp =
    int32_t(offsetof(CPU, Flags) - offsetof(CPU, R));
constexpr int32_t PCDisp = int32_t(offsetof(CPU, PC) - offsetof(CPU, R));

inline bool isInt8(int64_t V) { return V >= -128 && V <= 127; }
inline bool isInt32(int64_t V) {
  return V >= INT32_MIN && V <= INT32_MAX;
}

/// x86 condition nibble per guest CondCode, valid when host flags hold
/// the guest-semantic result (the "mirror" state).
constexpr uint8_t HostCC[] = {
    0x4, // EQ -> e
    0x5, // NE -> ne
    0xC, // LT -> l    (SF != OF)
    0xE, // LE -> le
    0xF, // GT -> g
    0xD, // GE -> ge
    0x2, // B  -> b    (CF)
    0x6, // BE -> be
    0x7, // A  -> a
    0x3, // AE -> ae
    0x8, // S  -> s
    0x9, // NS -> ns
};
static_assert(sizeof(HostCC) == size_t(CondCode::NumCondCodes),
              "one host condition per guest CondCode");

/// 16-bit truth mask per CondCode: bit f = evalCond(CC, f). Used when
/// the host-flags mirror is invalid: index the mask with the FLAGS byte
/// and branch on the extracted bit (bt leaves it in CF).
uint16_t condMask(CondCode CC) {
  uint16_t Mask = 0;
  for (unsigned F = 0; F != 16; ++F)
    if (evalCond(CC, uint8_t(F)))
      Mask |= uint16_t(1u << F);
  return Mask;
}

/// Forward-reference label: rel32 holes collected until bound.
struct Label {
  int64_t Pos = -1;
  std::vector<uint32_t> Refs;
};

/// Minimal x86-64 instruction emitter over the arena bump pointer.
struct Emitter {
  CodeBuffer &CB;
  bool OOM = false;

  explicit Emitter(CodeBuffer &CB) : CB(CB) {}

  size_t pos() const { return CB.used(); }
  const uint8_t *addr() const { return CB.base() + CB.used(); }

  void b(uint8_t V) {
    if (uint8_t *P = CB.alloc(1))
      *P = V;
    else
      OOM = true;
  }
  void w32(uint32_t V) {
    if (uint8_t *P = CB.alloc(4))
      memcpy(P, &V, 4);
    else
      OOM = true;
  }
  void w64(uint64_t V) {
    if (uint8_t *P = CB.alloc(8))
      memcpy(P, &V, 8);
    else
      OOM = true;
  }
  void patch32(uint32_t At, int32_t V) {
    // Refs recorded just before an alloc failure can sit at the arena
    // edge; the whole emission is rewound on OOM, so just skip them.
    if (At + 4 <= CB.capacity())
      memcpy(CB.base() + At, &V, 4);
  }

  void rex(bool W, int R, int X, int B) {
    uint8_t V = 0x40 | (W << 3) | ((R >= 8) << 2) | ((X >= 8) << 1) |
                (B >= 8);
    if (V != 0x40 || W)
      b(V);
  }

  /// ModRM (+SIB for rsp/r12 bases) for [Base + Disp].
  void modMem(int Reg, int Base, int32_t Disp) {
    int R = Reg & 7, B = Base & 7;
    bool SIB = B == 4; // rsp/r12 encodings require a SIB byte
    uint8_t RM = SIB ? 4 : B;
    if (Disp == 0 && B != 5) {
      b((R << 3) | RM);
      if (SIB)
        b(0x24);
    } else if (isInt8(Disp)) {
      b(0x40 | (R << 3) | RM);
      if (SIB)
        b(0x24);
      b(uint8_t(Disp));
    } else {
      b(0x80 | (R << 3) | RM);
      if (SIB)
        b(0x24);
      w32(uint32_t(Disp));
    }
  }

  /// ModRM+SIB for [Base + Index << ScaleLog] (mod 00; Base != rbp/r13).
  void modMemIdx(int Reg, int Base, int Index, int ScaleLog) {
    b(((Reg & 7) << 3) | 4);
    b((ScaleLog << 6) | ((Index & 7) << 3) | (Base & 7));
  }

  void modReg(int Reg, int RM) { b(0xC0 | ((Reg & 7) << 3) | (RM & 7)); }

  // --- Labels ------------------------------------------------------------
  void rel(Label &L) {
    if (L.Pos >= 0) {
      w32(uint32_t(L.Pos - int64_t(pos() + 4)));
    } else {
      L.Refs.push_back(uint32_t(pos()));
      w32(0);
    }
  }
  void bind(Label &L) {
    L.Pos = int64_t(pos());
    for (uint32_t R : L.Refs)
      patch32(R, int32_t(L.Pos - int64_t(R + 4)));
    L.Refs.clear();
  }
  void jmp(Label &L) {
    b(0xE9);
    rel(L);
  }
  void jcc(uint8_t CC, Label &L) {
    b(0x0F);
    b(0x80 | CC);
    rel(L);
  }
  /// Direct jump to an absolute in-arena address (always rel32-reachable:
  /// the arena is one contiguous mapping).
  void jmpAbs(const uint8_t *Target) {
    b(0xE9);
    int64_t Rel = Target - (CB.base() + pos() + 4);
    w32(uint32_t(int32_t(Rel)));
  }

  // --- Moves -------------------------------------------------------------
  /// mov Reg, imm64 — narrowest flag-preserving encoding.
  void movRI(int Reg, uint64_t V) {
    if (V <= 0xffffffffull) {
      rex(0, 0, 0, Reg);
      b(0xB8 | (Reg & 7));
      w32(uint32_t(V));
    } else if (isInt32(int64_t(V))) {
      rex(1, 0, 0, Reg);
      b(0xC7);
      modReg(0, Reg);
      w32(uint32_t(V));
    } else {
      rex(1, 0, 0, Reg);
      b(0xB8 | (Reg & 7));
      w64(V);
    }
  }
  /// mov Dst, Src (64-bit, reg-reg).
  void movRR(int Dst, int Src) {
    rex(1, Src, 0, Dst);
    b(0x89);
    modReg(Src, Dst);
  }
  /// mov Dst32, Src32 (zero-extends).
  void movRR32(int Dst, int Src) {
    rex(0, Src, 0, Dst);
    b(0x89);
    modReg(Src, Dst);
  }
  /// mov Reg, [Base + Disp] (64-bit).
  void loadMem(int Reg, int Base, int32_t Disp) {
    rex(1, Reg, 0, Base);
    b(0x8B);
    modMem(Reg, Base, Disp);
  }
  /// mov [Base + Disp], Reg (64-bit).
  void storeMem(int Base, int32_t Disp, int Reg) {
    rex(1, Reg, 0, Base);
    b(0x89);
    modMem(Reg, Base, Disp);
  }
  /// Guest register file accessors: guest reg g is [rbx + 8g].
  void loadGuest(int Host, unsigned G) { loadMem(Host, RBX, int32_t(8 * G)); }
  void storeGuest(unsigned G, int Host) {
    storeMem(RBX, int32_t(8 * G), Host);
  }
  /// mov qword [rbx + 8G], imm32 (sign-extended).
  void storeGuestImm32(unsigned G, int32_t V) {
    rex(1, 0, 0, RBX);
    b(0xC7);
    modMem(0, RBX, int32_t(8 * G));
    w32(uint32_t(V));
  }

  // --- ALU ---------------------------------------------------------------
  /// <op> qword [rbx + 8G], Src — Op is the r/m,reg opcode (0x01 add,
  /// 0x29 sub, 0x21 and, 0x09 or, 0x31 xor, 0x39 cmp, 0x85 test).
  void aluMemReg(uint8_t Op, unsigned G, int Src) {
    rex(1, Src, 0, RBX);
    b(Op);
    modMem(Src, RBX, int32_t(8 * G));
  }
  /// <op> qword [rbx + 8G], imm — Ext is the /digit (0 add, 5 sub,
  /// 4 and, 1 or, 6 xor, 7 cmp). Imm must be int32.
  void aluMemImm(uint8_t Ext, unsigned G, int64_t Imm) {
    rex(1, 0, 0, RBX);
    if (isInt8(Imm)) {
      b(0x83);
      modMem(Ext, RBX, int32_t(8 * G));
      b(uint8_t(Imm));
    } else {
      b(0x81);
      modMem(Ext, RBX, int32_t(8 * G));
      w32(uint32_t(Imm));
    }
  }
  /// test qword [rbx + 8G], imm32.
  void testMemImm(unsigned G, int32_t Imm) {
    rex(1, 0, 0, RBX);
    b(0xF7);
    modMem(0, RBX, int32_t(8 * G));
    w32(uint32_t(Imm));
  }
  /// <op> Dst, Src (64-bit reg-reg; same opcode family as aluMemReg).
  void aluRR(uint8_t Op, int Dst, int Src) {
    rex(1, Src, 0, Dst);
    b(Op);
    modReg(Src, Dst);
  }
  /// add Dst, [Base + Disp].
  void addRegMem(int Dst, int Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    b(0x03);
    modMem(Dst, Base, Disp);
  }
  /// cmp Reg, imm32 (64-bit).
  void cmpRegImm(int Reg, int64_t Imm) {
    rex(1, 0, 0, Reg);
    if (isInt8(Imm)) {
      b(0x83);
      modReg(7, Reg);
      b(uint8_t(Imm));
    } else {
      b(0x81);
      modReg(7, Reg);
      w32(uint32_t(Imm));
    }
  }
  /// and Reg32, imm32.
  void andR32Imm(int Reg, uint32_t Imm) {
    rex(0, 0, 0, Reg);
    b(0x81);
    modReg(4, Reg);
    w32(Imm);
  }
  /// cmp Reg32, imm32.
  void cmpR32Imm(int Reg, uint32_t Imm) {
    rex(0, 0, 0, Reg);
    b(0x81);
    modReg(7, Reg);
    w32(Imm);
  }
  /// shl/shr/sar qword [rbx + 8G], cl — Ext 4/5/7.
  void shiftMemCl(uint8_t Ext, unsigned G) {
    rex(1, 0, 0, RBX);
    b(0xD3);
    modMem(Ext, RBX, int32_t(8 * G));
  }
  /// shl/shr/sar qword [rbx + 8G], imm8.
  void shiftMemImm(uint8_t Ext, unsigned G, uint8_t Imm) {
    rex(1, 0, 0, RBX);
    b(0xC1);
    modMem(Ext, RBX, int32_t(8 * G));
    b(Imm);
  }
  /// shl/shr Reg, imm8 (64-bit; Ext 4/5).
  void shiftRegImm(uint8_t Ext, int Reg, uint8_t Imm) {
    rex(1, 0, 0, Reg);
    b(0xC1);
    modReg(Ext, Reg);
    b(Imm);
  }
  /// shl Reg32, imm8.
  void shlR32Imm(int Reg, uint8_t Imm) {
    rex(0, 0, 0, Reg);
    b(0xC1);
    modReg(4, Reg);
    b(Imm);
  }
  /// shr Reg32, imm8.
  void shrR32Imm(int Reg, uint8_t Imm) {
    rex(0, 0, 0, Reg);
    b(0xC1);
    modReg(5, Reg);
    b(Imm);
  }
  /// imul Dst, [rbx + 8G] (64-bit).
  void imulRegGuest(int Dst, unsigned G) {
    rex(1, Dst, 0, RBX);
    b(0x0F);
    b(0xAF);
    modMem(Dst, RBX, int32_t(8 * G));
  }
  /// imul Dst, Src (64-bit).
  void imulRR(int Dst, int Src) {
    rex(1, Dst, 0, Src);
    b(0x0F);
    b(0xAF);
    modReg(Dst, Src);
  }
  /// not/neg qword [rbx + 8G] — Ext 2/3.
  void unaryMem(uint8_t Ext, unsigned G) {
    rex(1, 0, 0, RBX);
    b(0xF7);
    modMem(Ext, RBX, int32_t(8 * G));
  }
  /// test Reg, Reg (64-bit).
  void testRR(int Reg) {
    rex(1, Reg, 0, Reg);
    b(0x85);
    modReg(Reg, Reg);
  }
  /// test eax, eax (helper-status check).
  void testEax() {
    b(0x85);
    b(0xC0);
  }
  /// cmovcc Dst, Src (64-bit).
  void cmovRR(uint8_t CC, int Dst, int Src) {
    rex(1, Dst, 0, Src);
    b(0x0F);
    b(0x40 | CC);
    modReg(Dst, Src);
  }
  /// lea Dst, [Base + Disp] (64-bit).
  void leaRegMem(int Dst, int Base, int32_t Disp) {
    rex(1, Dst, 0, Base);
    b(0x8D);
    modMem(Dst, Base, Disp);
  }
  /// cmp byte [Base + Disp], imm8.
  void cmpMem8Imm(int Base, int32_t Disp, uint8_t Imm) {
    rex(0, 0, 0, Base);
    b(0x80);
    modMem(7, Base, Disp);
    b(Imm);
  }
  /// cmp qword [Base + Disp], Reg.
  void cmpMemReg(int Base, int32_t Disp, int Reg) {
    rex(1, Reg, 0, Base);
    b(0x39);
    modMem(Reg, Base, Disp);
  }
  /// mov Dst32, dword [Base + Disp] (zero-extends into Dst).
  void loadMem32(int Dst, int Base, int32_t Disp) {
    rex(0, Dst, 0, Base);
    b(0x8B);
    modMem(Dst, Base, Disp);
  }
  /// bt Reg32, imm8 — bit into the carry flag.
  void btR32Imm(int Reg, uint8_t Bit) {
    rex(0, 0, 0, Reg);
    b(0x0F);
    b(0xBA);
    modReg(4, Reg);
    b(Bit);
  }
  /// inc qword [Base + Disp].
  void incMem(int Base, int32_t Disp) {
    rex(1, 0, 0, Base);
    b(0xFF);
    modMem(0, Base, Disp);
  }
  /// cmp qword [Base + Disp], imm32 (sign-extended).
  void cmpMemImm32(int Base, int32_t Disp, int32_t Imm) {
    rex(1, 0, 0, Base);
    b(0x81);
    modMem(7, Base, Disp);
    w32(uint32_t(Imm));
  }

  // --- Misc --------------------------------------------------------------
  void endbr64() {
    b(0xF3);
    b(0x0F);
    b(0x1E);
    b(0xFA);
  }
  /// movabs rax, Fn; call rax.
  void callAbs(const void *Fn) {
    movRI(RAX, reinterpret_cast<uint64_t>(Fn));
    b(0xFF);
    b(0xD0);
  }

  /// Materializes the guest FLAGS byte from the current host flags
  /// (Z=1, S=2, C=4, O=8). Clobbers rax/rcx/rdx/r8; preserves host
  /// flags (setcc/movzx/lea/mov modify none), so the mirror survives.
  void matFlags() {
    b(0x0F); b(0x94); b(0xC0);                   // setz  al
    b(0x0F); b(0x98); b(0xC1);                   // sets  cl
    b(0x0F); b(0x92); b(0xC2);                   // setc  dl
    b(0x41); b(0x0F); b(0x90); b(0xC0);          // seto  r8b
    b(0x0F); b(0xB6); b(0xC0);                   // movzx eax, al
    b(0x0F); b(0xB6); b(0xC9);                   // movzx ecx, cl
    b(0x0F); b(0xB6); b(0xD2);                   // movzx edx, dl
    b(0x45); b(0x0F); b(0xB6); b(0xC0);          // movzx r8d, r8b
    b(0x8D); b(0x04); b(0x48);                   // lea eax, [rax+rcx*2]
    b(0x42); b(0x8D); b(0x0C); b(0x42);          // lea ecx, [rdx+r8*2]
    b(0x8D); b(0x04); b(0x88);                   // lea eax, [rax+rcx*4]
    b(0x88);                                     // mov [rbx+FlagsDisp], al
    modMem(RAX, RBX, FlagsDisp);
  }

  /// Evaluates guest condition CC into the host carry flag via the
  /// truth-mask table (mirror-invalid path). Clobbers rax/rcx.
  void condToCarry(CondCode CC) {
    b(0x0F); b(0xB6);                            // movzx eax, byte [rbx+..]
    modMem(RAX, RBX, FlagsDisp);
    movRI(RCX, condMask(CC));                    // mov ecx, mask
    b(0x0F); b(0xA3); b(0xC1);                   // bt ecx, eax
  }

  /// setcc into a guest register (zero-extended). Uses cl.
  void setCCGuest(uint8_t CC, unsigned G) {
    b(0x0F); b(0x90 | CC); b(0xC1);              // setcc cl
    b(0x0F); b(0xB6); b(0xC9);                   // movzx ecx, cl
    storeGuest(G, RCX);
  }

  /// add qword [r14], N (ExecutedInsts settle).
  void settleInsts(uint64_t N) {
    rex(1, 0, 0, R14);
    if (isInt8(int64_t(N))) {
      b(0x83);
      modMem(0, R14, 0);
      b(uint8_t(N));
    } else {
      b(0x81);
      modMem(0, R14, 0);
      w32(uint32_t(N));
    }
  }
  /// sub r15, N (budget settle).
  void settleBudget(uint64_t N) {
    rex(1, 0, 0, R15);
    if (isInt8(int64_t(N))) {
      b(0x83);
      modReg(5, R15);
      b(uint8_t(N));
    } else {
      b(0x81);
      modReg(5, R15);
      w32(uint32_t(N));
    }
  }
  /// Dynamic settle for intrinsic runs: add [r14], Reg; sub r15, Reg.
  void settleByReg(int Reg) {
    rex(1, Reg, 0, R14);
    b(0x01);
    modMem(Reg, R14, 0);
    rex(1, Reg, 0, R15);
    b(0x29);
    modReg(Reg, R15);
  }
};

} // namespace

void Jit::emitRuntimeStubs() {
  static_assert(sizeof(Memory::TLBEntry) == 16,
                "TLB probe codegen assumes 16-byte entries");
  static_assert(Memory::TLBSlots == 256,
                "TLB probe codegen assumes a 255 slot mask");

  Emitter E(*Arena);

  // Enter thunk: ExitState enter(uint64_t remaining /*rdi*/,
  //                              const void *entry /*rsi*/).
  // Saves callee-saved registers, pins the register map, aligns the
  // stack so in-block helper calls see a standard ABI frame, and jumps
  // into the block.
  EnterThunk = E.addr();
  E.endbr64();
  E.b(0x53);                                     // push rbx
  E.b(0x55);                                     // push rbp
  E.b(0x41); E.b(0x54);                          // push r12
  E.b(0x41); E.b(0x55);                          // push r13
  E.b(0x41); E.b(0x56);                          // push r14
  E.b(0x41); E.b(0x57);                          // push r15
  E.b(0x48); E.b(0x83); E.b(0xEC); E.b(0x08);    // sub rsp, 8
  E.b(0x49); E.b(0x89); E.b(0xFF);               // mov r15, rdi
  E.movRI(RBX, reinterpret_cast<uint64_t>(&M.C.R[0]));
  E.movRI(R12, reinterpret_cast<uint64_t>(M.Mem.TLB.data()));
  E.movRI(R13, reinterpret_cast<uint64_t>(&M));
  E.movRI(R14, reinterpret_cast<uint64_t>(&M.ExecutedInsts));
  E.b(0xFF); E.b(0xE6);                          // jmp rsi

  // Shared epilogue: rax = status (set by the exiting stub),
  // rdx = remaining budget.
  Epilogue = E.addr();
  E.b(0x4C); E.b(0x89); E.b(0xFA);               // mov rdx, r15
  E.b(0x48); E.b(0x83); E.b(0xC4); E.b(0x08);    // add rsp, 8
  E.b(0x41); E.b(0x5F);                          // pop r15
  E.b(0x41); E.b(0x5E);                          // pop r14
  E.b(0x41); E.b(0x5D);                          // pop r13
  E.b(0x41); E.b(0x5C);                          // pop r12
  E.b(0x5D);                                     // pop rbp
  E.b(0x5B);                                     // pop rbx
  E.b(0xC3);                                     // ret

  // Dispatch stub: computed control flow lands here with C.PC current
  // and counters settled. Probe the direct-mapped PC cache; a hit jumps
  // straight to the compiled entry (whose own budget check guards the
  // tail), a miss exits to the driver's dispatch loop, which compiles /
  // looks up the target and refills the cache via noteDispatch.
  static_assert(sizeof(DispatchEntry) == 16 &&
                    offsetof(DispatchEntry, Entry) == 8,
                "dispatch probe codegen assumes 16-byte {PC, Entry}");
  DispatchStub = E.addr();
  Label Miss;
  E.loadMem(RAX, RBX, PCDisp);                   // rax = C.PC
  E.movRR(RCX, RAX);
  E.shiftRegImm(5, RCX, 2);                      // shr rcx, 2
  E.aluRR(0x31, RCX, RAX);                       // xor rcx, rax
  E.andR32Imm(RCX, uint32_t(DispatchSlots - 1)); // dispatchSlot(PC)
  E.shlR32Imm(RCX, 4);                           // * sizeof(DispatchEntry)
  E.movRI(RDX, reinterpret_cast<uint64_t>(Dispatch.data()));
  E.aluRR(0x01, RDX, RCX);                       // add rdx, rcx
  E.cmpMemReg(RDX, 0, RAX);                      // slot.PC == C.PC?
  E.jcc(0x5, Miss);                              // jne
  E.loadMem(RDX, RDX, 8);                        // slot.Entry
  E.b(0xFF); E.b(0xE2);                          // jmp rdx
  E.bind(Miss);
  E.movRI(RAX, ExitDivert);
  E.jmpAbs(Epilogue);
}

Jit::ExitState Jit::run(uint64_t Remaining, const void *Entry) const {
  using Fn = ExitState (*)(uint64_t, const void *);
  return reinterpret_cast<Fn>(
      reinterpret_cast<uintptr_t>(EnterThunk))(Remaining, Entry);
}

const void *Jit::compile(DecodedBlock &B) {
  const size_t Mark = Arena->used();
  Emitter E(*Arena);
  const uint8_t *EntryPtr = E.addr();
  const uint32_t EntryOff = uint32_t(E.pos());
  const uint64_t NumUops = B.Uops.size();
  if (!NumUops)
    return nullptr;

  // Stable-addressed stub lists (deques: labels referenced across the
  // whole emission).
  std::deque<std::pair<uint64_t, Label>> ExitStubs;  // (uop idx, label)
  auto exitLabel = [&](uint64_t Idx) -> Label & {
    ExitStubs.emplace_back(Idx, Label{});
    return ExitStubs.back().second;
  };
  // Like ExitStubs, but for fallbackSlow sites: an ExitChain status
  // re-enters compiled code through the dispatch stub instead of
  // exiting. Memory-helper sites never chain — their diverts can carry
  // an epoch bump (fault hook patched code), which must reach the
  // driver's flush check.
  std::deque<std::pair<uint64_t, Label>> ChainStubs;
  auto chainLabel = [&](uint64_t Idx) -> Label & {
    ChainStubs.emplace_back(Idx, Label{});
    return ChainStubs.back().second;
  };
  // Intrinsic-run stubs: like ChainStubs, but the consumed-uop count is
  // dynamic (packed into the helper's return value), so the settle is
  // register-based. The pair holds the run's first uop index.
  std::deque<std::pair<uint64_t, Label>> RunStubs;
  auto runLabel = [&](uint64_t Idx) -> Label & {
    RunStubs.emplace_back(Idx, Label{});
    return RunStubs.back().second;
  };
  struct TakenStub {
    uint64_t Idx;
    uint64_t Target;
    Label L;
  };
  std::deque<TakenStub> TakenStubs;
  // Chain sites emitted for this block; merged into PendingChains only
  // on success (an OOM rewind must not leave dangling patch offsets).
  std::vector<std::pair<uint64_t, uint32_t>> NewPending;
  uint64_t NewPatches = 0;

  /// Block-to-block chain: direct jump when the target is already
  /// compiled; otherwise a patchable jump that (for now) falls through
  /// to a resolver stub which exits to the driver with C.PC = Target.
  auto chainJump = [&](uint64_t Target) {
    auto It = EntryByPC.find(Target);
    if (It != EntryByPC.end()) {
      E.jmpAbs(It->second);
      ++NewPatches;
      return;
    }
    E.b(0xE9);
    NewPending.emplace_back(Target, uint32_t(E.pos()));
    E.w32(0); // rel 0: falls through to the resolver below until patched
    E.movRI(RAX, Target);
    E.storeMem(RBX, PCDisp, RAX);
    E.movRI(RAX, ExitDivert);
    E.jmpAbs(Epilogue);
  };

  /// Effective address of a memory uop into rsi (Imm + R[B] + R[X] <<
  /// ScaleLog). Clobbers rax when an index register is present.
  auto emitEA = [&](const Uop &U) {
    E.movRI(RSI, uint64_t(U.Imm));
    if (U.B != NoReg)
      E.addRegMem(RSI, RBX, int32_t(8 * U.B));
    if (U.X != NoReg) {
      E.loadGuest(RAX, U.X);
      if (U.ScaleLog)
        E.shiftRegImm(4, RAX, U.ScaleLog);
      E.aluRR(0x01, RSI, RAX); // add rsi, rax
    }
  };

  /// Guest user-region check on the address in rsi for an access of
  /// \p Size bytes; branches to \p Slow when any byte falls outside
  /// LowMem/HighMem (the helper then raises the fault with reference
  /// semantics). Clobbers rax/rcx.
  auto emitRegionCheck = [&](unsigned Size, Label &Slow) {
    Label Ok;
    E.movRR(RAX, RSI);
    E.movRI(RCX, obj::HighMemStart);
    E.aluRR(0x29, RAX, RCX); // sub rax, rcx
    E.movRI(RCX, (obj::HighMemEnd - obj::HighMemStart) - (Size - 1));
    E.aluRR(0x39, RAX, RCX); // cmp rax, rcx
    E.jcc(0x6, Ok);          // jbe: inside HighMem
    E.cmpRegImm(RSI, int64_t(obj::LowMemEnd - (Size - 1)));
    E.jcc(0x7, Slow); // ja: outside LowMem too
    E.bind(Ok);
  };

  /// TLB probe for the page of the address in rsi: on hit, rax = the
  /// TLB slot address (entry Idx confirmed) and rcx = the page index.
  /// Misses branch to \p Slow. Clobbers rax/rcx.
  auto emitTLBProbe = [&](Label &Slow) {
    E.movRR(RCX, RSI);
    E.shiftRegImm(5, RCX, uint8_t(Memory::PageShift)); // shr rcx, 12
    E.movRR32(RAX, RCX);
    E.andR32Imm(RAX, uint32_t(Memory::TLBSlots - 1));
    E.shlR32Imm(RAX, 4); // * sizeof(TLBEntry)
    E.aluRR(0x01, RAX, R12);
    E.cmpMemReg(RAX, 0, RCX);
    E.jcc(0x5, Slow); // jne: TLB miss
  };

  const int32_t CellOff = int32_t(offsetof(Memory::TLBEntry, Cell));
  const int32_t DirtyOff = int32_t(offsetof(Memory::PageCell, Dirty));
  // r14 pins &M.ExecutedInsts; the other two hot counters are declared
  // adjacent to it (Machine.h keeps them so as codegen ABI).
  const int32_t IntrsCtrDisp =
      int32_t(reinterpret_cast<const char *>(&M.ExecutedIntrinsics) -
              reinterpret_cast<const char *>(&M.ExecutedInsts));
  const int32_t FastHitsCtrDisp =
      int32_t(reinterpret_cast<const char *>(&M.IntrFastHits) -
              reinterpret_cast<const char *>(&M.ExecutedInsts));

  // --- Block entry: budget check ----------------------------------------
  // (An indirect-branch target: the enter thunk arrives via `jmp rsi`.)
  Label BudgetBail;
  E.endbr64();
  E.cmpRegImm(R15, int64_t(NumUops));
  E.jcc(0x2, BudgetBail); // jb: fewer insts remain than the block holds

  // Host-flags mirror: true while the host FLAGS hold exactly the
  // guest-semantic result of the last guest flag write.
  bool Mirror = false;

  for (uint64_t I = 0; I != NumUops; ++I) {
    const Uop &U = B.Uops[I];
    const uint64_t NextPC = B.Insts[I].NextPC;

    switch (U.Kind) {
    case UopKind::Nop:
      break;

    case UopKind::MovRR:
      E.loadGuest(RAX, U.B);
      E.storeGuest(U.A, RAX);
      break;
    case UopKind::MovRI:
      if (isInt32(U.Imm)) {
        E.storeGuestImm32(U.A, int32_t(U.Imm));
      } else {
        E.movRI(RAX, uint64_t(U.Imm));
        E.storeGuest(U.A, RAX);
      }
      break;

    case UopKind::AddRR:
    case UopKind::AddRR_NF:
    case UopKind::SubRR:
    case UopKind::SubRR_NF: {
      bool IsAdd = U.Kind == UopKind::AddRR || U.Kind == UopKind::AddRR_NF;
      bool NF = U.Kind == UopKind::AddRR_NF || U.Kind == UopKind::SubRR_NF;
      E.loadGuest(RAX, U.B);
      E.aluMemReg(IsAdd ? 0x01 : 0x29, U.A, RAX);
      if (!NF) {
        E.matFlags();
        Mirror = true;
      } else {
        Mirror = false;
      }
      break;
    }
    case UopKind::AddRI:
    case UopKind::AddRI_NF:
    case UopKind::SubRI:
    case UopKind::SubRI_NF: {
      bool IsAdd = U.Kind == UopKind::AddRI || U.Kind == UopKind::AddRI_NF;
      bool NF = U.Kind == UopKind::AddRI_NF || U.Kind == UopKind::SubRI_NF;
      if (isInt32(U.Imm)) {
        E.aluMemImm(IsAdd ? 0 : 5, U.A, U.Imm);
      } else {
        E.movRI(RAX, uint64_t(U.Imm));
        E.aluMemReg(IsAdd ? 0x01 : 0x29, U.A, RAX);
      }
      if (!NF) {
        E.matFlags();
        Mirror = true;
      } else {
        Mirror = false;
      }
      break;
    }

    case UopKind::CmpRR:
      E.loadGuest(RAX, U.B);
      E.aluMemReg(0x39, U.A, RAX);
      E.matFlags();
      Mirror = true;
      break;
    case UopKind::CmpRI:
      if (isInt32(U.Imm)) {
        E.aluMemImm(7, U.A, U.Imm);
      } else {
        E.movRI(RAX, uint64_t(U.Imm));
        E.aluMemReg(0x39, U.A, RAX);
      }
      E.matFlags();
      Mirror = true;
      break;
    case UopKind::TestRR:
      E.loadGuest(RAX, U.B);
      E.aluMemReg(0x85, U.A, RAX);
      E.matFlags();
      Mirror = true;
      break;
    case UopKind::TestRI:
      if (isInt32(U.Imm)) {
        E.testMemImm(U.A, int32_t(U.Imm));
      } else {
        E.movRI(RAX, uint64_t(U.Imm));
        E.aluMemReg(0x85, U.A, RAX);
      }
      E.matFlags();
      Mirror = true;
      break;

    case UopKind::AndRR:
    case UopKind::OrRR:
    case UopKind::XorRR: {
      uint8_t Op = U.Kind == UopKind::AndRR  ? 0x21
                   : U.Kind == UopKind::OrRR ? 0x09
                                             : 0x31;
      E.loadGuest(RAX, U.B);
      E.aluMemReg(Op, U.A, RAX);
      E.matFlags();
      Mirror = true;
      break;
    }
    case UopKind::AndRI:
    case UopKind::OrRI:
    case UopKind::XorRI: {
      uint8_t Ext = U.Kind == UopKind::AndRI  ? 4
                    : U.Kind == UopKind::OrRI ? 1
                                              : 6;
      uint8_t Op = U.Kind == UopKind::AndRI  ? 0x21
                   : U.Kind == UopKind::OrRI ? 0x09
                                             : 0x31;
      if (isInt32(U.Imm)) {
        E.aluMemImm(Ext, U.A, U.Imm);
      } else {
        E.movRI(RAX, uint64_t(U.Imm));
        E.aluMemReg(Op, U.A, RAX);
      }
      E.matFlags();
      Mirror = true;
      break;
    }

    case UopKind::ShlRR:
    case UopKind::ShrRR:
    case UopKind::SarRR: {
      uint8_t Ext = U.Kind == UopKind::ShlRR   ? 4
                    : U.Kind == UopKind::ShrRR ? 5
                                               : 7;
      E.loadGuest(RCX, U.B); // hardware masks the count to 63, as the
      E.shiftMemCl(Ext, U.A); // guest semantics do
      // Guest shifts are SetZS+ClearCO regardless of count; host flags
      // are unchanged for count 0, so re-test the result.
      E.loadGuest(RAX, U.A);
      E.testRR(RAX);
      E.matFlags();
      Mirror = true;
      break;
    }
    case UopKind::ShlRI:
    case UopKind::ShrRI:
    case UopKind::SarRI: {
      uint8_t Ext = U.Kind == UopKind::ShlRI   ? 4
                    : U.Kind == UopKind::ShrRI ? 5
                                               : 7;
      E.shiftMemImm(Ext, U.A, uint8_t(U.Imm & 63));
      E.loadGuest(RAX, U.A);
      E.testRR(RAX);
      E.matFlags();
      Mirror = true;
      break;
    }

    case UopKind::MulRR:
      E.loadGuest(RAX, U.A);
      E.imulRegGuest(RAX, U.B);
      E.storeGuest(U.A, RAX);
      E.testRR(RAX); // guest MUL is SetZS+ClearCO; imul's flags differ
      E.matFlags();
      Mirror = true;
      break;
    case UopKind::MulRI:
      E.loadGuest(RAX, U.A);
      E.movRI(RCX, uint64_t(U.Imm));
      E.imulRR(RAX, RCX);
      E.storeGuest(U.A, RAX);
      E.testRR(RAX);
      E.matFlags();
      Mirror = true;
      break;

    case UopKind::NotR:
      E.unaryMem(2, U.A); // no flags on either side
      break;
    case UopKind::NegR:
      E.unaryMem(3, U.A);
      E.loadGuest(RAX, U.A);
      E.testRR(RAX);
      E.matFlags();
      Mirror = true;
      break;

    case UopKind::SetCC: {
      CondCode CC = CondCode(U.X);
      if (Mirror) {
        E.setCCGuest(HostCC[U.X], U.A);
      } else {
        E.condToCarry(CC);
        E.setCCGuest(0x2, U.A); // setc: condToCarry left it in CF
      }
      break;
    }
    case UopKind::CmovRR:
    case UopKind::CmovRI: {
      uint8_t CC = Mirror ? HostCC[U.X] : 0x2;
      if (!Mirror)
        E.condToCarry(CondCode(U.X)); // before the operand loads (rax!)
      E.loadGuest(RCX, U.A);
      if (U.Kind == UopKind::CmovRR)
        E.loadGuest(RAX, U.B);
      else
        E.movRI(RAX, uint64_t(U.Imm));
      E.cmovRR(CC, RCX, RAX);
      E.storeGuest(U.A, RCX);
      break;
    }

    case UopKind::Lea:
      emitEA(U);
      E.storeGuest(U.A, RSI);
      Mirror = false;
      break;

    case UopKind::Load:
    case UopKind::LoadS: {
      const unsigned Size = 1u << U.SizeLog;
      const bool Sgn = U.Kind == UopKind::LoadS;
      Label Slow, Done, Zero;
      emitEA(U);
      emitRegionCheck(Size, Slow);
      emitTLBProbe(Slow);
      // rdx = in-page offset; reject page-straddling accesses.
      E.movRR32(RDX, RSI);
      E.andR32Imm(RDX, uint32_t(Memory::PageSize - 1));
      if (Size > 1) {
        E.cmpR32Imm(RDX, uint32_t(Memory::PageSize - Size));
        E.jcc(0x7, Slow); // ja
      }
      E.loadMem(RAX, RAX, CellOff);
      E.testRR(RAX);
      E.jcc(0x4, Zero); // jz: cached negative entry — unmapped reads 0
      switch (Size) {
      case 1:
        if (Sgn) {
          E.rex(1, RCX, RDX, RAX);
          E.b(0x0F); E.b(0xBE); // movsx rcx, byte [rax+rdx]
        } else {
          E.rex(0, RCX, RDX, RAX);
          E.b(0x0F); E.b(0xB6); // movzx ecx, byte [rax+rdx]
        }
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      case 2:
        E.rex(Sgn, RCX, RDX, RAX);
        E.b(0x0F); E.b(Sgn ? 0xBF : 0xB7); // movsx/movzx, word
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      case 4:
        E.rex(Sgn, RCX, RDX, RAX);
        E.b(Sgn ? 0x63 : 0x8B); // movsxd rcx / mov ecx
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      default:
        E.rex(1, RCX, RDX, RAX);
        E.b(0x8B); // mov rcx, [rax+rdx]
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      }
      E.storeGuest(U.A, RCX);
      E.jmp(Done);
      E.bind(Zero);
      E.storeGuestImm32(U.A, 0);
      E.jmp(Done);
      E.bind(Slow);
      E.movRR(RDI, R13); // rsi = addr, still live
      E.movRI(RDX, NextPC);
      E.movRI(RCX, uint64_t(U.A) | (uint64_t(U.SizeLog) << 8) |
                       (Sgn ? 1ull << 16 : 0));
      E.callAbs(reinterpret_cast<const void *>(&Jit::loadSlow));
      E.testEax();
      E.jcc(0x5, exitLabel(I)); // jne: divert or stop
      E.bind(Done);
      Mirror = false;
      break;
    }

    case UopKind::StoreR:
    case UopKind::PushR:
    case UopKind::PushI: {
      const bool IsPush = U.Kind != UopKind::StoreR;
      const unsigned Size = IsPush ? 8 : 1u << U.SizeLog;
      Label Slow, Done, DirtyOk;
      if (IsPush) {
        E.loadGuest(RSI, SP);
        E.leaRegMem(RSI, RSI, -8);
      } else {
        emitEA(U);
      }
      emitRegionCheck(Size, Slow);
      // Watch-range exclusion: stores into the watched (code) pages
      // always take the helper, which performs the epoch bump and
      // reports the divert — so a chained jump can never run stale
      // code. The bounds are compile-time constants: the only event
      // that moves the watch range (loadObject) also flushes the JIT.
      E.movRR(RCX, RSI);
      E.shiftRegImm(5, RCX, uint8_t(Memory::PageShift));
      E.movRI(RAX, M.Mem.WatchLoPage);
      E.movRR(RDX, RCX);
      E.aluRR(0x29, RDX, RAX); // sub rdx, rax
      E.cmpRegImm(RDX, int64_t(M.Mem.WatchPageSpan));
      E.jcc(0x6, Slow); // jbe: inside the watched range
      // TLB probe (rcx already holds the page index, but the probe
      // recomputes it — keep it simple).
      emitTLBProbe(Slow);
      E.loadMem(RAX, RAX, CellOff);
      E.testRR(RAX);
      E.jcc(0x4, Slow); // jz: unmapped page — helper materializes it
      // Dirty-tracking fast path: a write needs bookkeeping unless the
      // page is already dirty or tracking is off.
      E.cmpMem8Imm(RAX, DirtyOff, 0);
      E.jcc(0x5, DirtyOk); // jne: already dirty
      E.movRI(RCX, reinterpret_cast<uint64_t>(&M.Mem.TrackDirty));
      E.cmpMem8Imm(RCX, 0, 0);
      E.jcc(0x5, Slow); // jne: tracking on, first write — helper logs it
      E.bind(DirtyOk);
      E.movRR32(RDX, RSI);
      E.andR32Imm(RDX, uint32_t(Memory::PageSize - 1));
      if (Size > 1) {
        E.cmpR32Imm(RDX, uint32_t(Memory::PageSize - Size));
        E.jcc(0x7, Slow);
      }
      if (U.Kind == UopKind::PushI)
        E.movRI(RCX, uint64_t(U.Imm));
      else
        E.loadGuest(RCX, U.A);
      switch (Size) {
      case 1:
        E.b(0x88); // mov [rax+rdx], cl
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      case 2:
        E.b(0x66);
        E.b(0x89);
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      case 4:
        E.b(0x89);
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      default:
        E.rex(1, RCX, RDX, RAX);
        E.b(0x89);
        E.modMemIdx(RCX, RAX, RDX, 0);
        break;
      }
      if (IsPush)
        E.storeGuest(SP, RSI); // rsi still = old SP - 8
      E.jmp(Done);
      E.bind(Slow);
      E.movRR(RDI, R13);
      if (IsPush) {
        if (U.Kind == UopKind::PushI)
          E.movRI(RSI, uint64_t(U.Imm));
        else
          E.loadGuest(RSI, U.A);
        E.movRI(RDX, NextPC);
        E.callAbs(reinterpret_cast<const void *>(&Jit::pushSlow));
      } else {
        // rsi = addr, still live
        E.movRI(RDX, NextPC);
        E.loadGuest(RCX, U.A);
        E.movRI(R8, U.SizeLog);
        E.callAbs(reinterpret_cast<const void *>(&Jit::storeSlow));
      }
      E.testEax();
      E.jcc(0x5, exitLabel(I));
      E.bind(Done);
      Mirror = false;
      break;
    }

    case UopKind::PopR: {
      Label Slow, Done, Zero;
      E.loadGuest(RSI, SP);
      emitRegionCheck(8, Slow);
      emitTLBProbe(Slow);
      E.movRR32(RDX, RSI);
      E.andR32Imm(RDX, uint32_t(Memory::PageSize - 1));
      E.cmpR32Imm(RDX, uint32_t(Memory::PageSize - 8));
      E.jcc(0x7, Slow);
      E.loadMem(RAX, RAX, CellOff);
      E.testRR(RAX);
      E.jcc(0x4, Zero);
      E.rex(1, RCX, RDX, RAX);
      E.b(0x8B); // mov rcx, [rax+rdx]
      E.modMemIdx(RCX, RAX, RDX, 0);
      Label Store;
      E.jmp(Store);
      E.bind(Zero);
      E.movRI(RCX, 0);
      E.bind(Store);
      // Same order as the reference: R[A] = V, then SP += 8 (POP SP
      // must end with V + 8).
      E.storeGuest(U.A, RCX);
      E.aluMemImm(0, SP, 8);
      E.jmp(Done);
      E.bind(Slow);
      E.movRR(RDI, R13);
      E.movRI(RSI, U.A);
      E.movRI(RDX, NextPC);
      E.callAbs(reinterpret_cast<const void *>(&Jit::popSlow));
      E.testEax();
      E.jcc(0x5, exitLabel(I));
      E.bind(Done);
      Mirror = false;
      break;
    }

    case UopKind::Jmp:
      // Unconditional: always the block's last uop. Settle and chain.
      E.settleInsts(I + 1);
      E.settleBudget(I + 1);
      chainJump(NextPC + uint64_t(U.Imm));
      break;

    case UopKind::Jcc: {
      TakenStubs.push_back({I, NextPC + uint64_t(U.Imm), Label{}});
      Label &Taken = TakenStubs.back().L;
      if (Mirror) {
        E.jcc(HostCC[U.X], Taken);
      } else {
        E.condToCarry(CondCode(U.X));
        E.jcc(0x2, Taken); // jc
      }
      // Fall-through continues in-block; jcc preserves host flags, so
      // the mirror state carries over unchanged.
      break;
    }

    case UopKind::Intr: {
      // A run of consecutive intrinsics [I, I+N). Instrumented code is
      // intrinsic-dense (coverage guards, restore markers, and taint
      // plumbing between real instructions), so this is the most
      // frequent uop kind by dynamic count in rewritten binaries.
      uint64_t N = 1;
      while (I + N != NumUops && B.Uops[I + N].Kind == UopKind::Intr)
        ++N;

      static_assert(offsetof(IntrinsicFastPath, Enabled) == 0 &&
                        offsetof(IntrinsicFastPath, InSim) == 4 &&
                        offsetof(IntrinsicFastPath, NoOpNormalMask) == 8 &&
                        offsetof(IntrinsicFastPath, NoOpInSimMask) == 12,
                    "intrinsic fast-path codegen reads fixed offsets");
      const int32_t InSimOff = int32_t(offsetof(IntrinsicFastPath, InSim));
      const int32_t NormalMaskOff =
          int32_t(offsetof(IntrinsicFastPath, NoOpNormalMask));
      const int32_t InSimMaskOff =
          int32_t(offsetof(IntrinsicFastPath, NoOpInSimMask));
      const int32_t CovPtrOff =
          int32_t(offsetof(IntrinsicFastPath, NormalCov));
      const int32_t CovSizeOff =
          int32_t(offsetof(IntrinsicFastPath, NormalCovSize));

      // Statically always-slow IDs get no inline check: TagProp/TagBlock
      // do real work whenever DIFT is on, StartSim* whenever speculation
      // is simulated, and the RA poisons always. Grouping them into
      // unconditional helper segments keeps the common configuration
      // from failing a mask test per execution. Everything else consults
      // the handler's published view (Machine::FastPath) at run time and
      // retires masked no-ops as two counter increments without leaving
      // generated code — an absent view (Enabled == 0) or a mask miss
      // takes the helper, which is the unchanged reference path.
      const auto eligible = [&](uint64_t K) {
        const Uop &UK = B.Uops[K];
        switch (static_cast<isa::IntrinsicID>(UK.X)) {
        case isa::IntrinsicID::StartSim:
        case isa::IntrinsicID::StartSimNested:
        case isa::IntrinsicID::TagProp:
        case isa::IntrinsicID::TagBlock:
        case isa::IntrinsicID::RAPoison:
        case isa::IntrinsicID::RAUnpoison:
          return false;
        case isa::IntrinsicID::CovGuard:
          // The saturation probe embeds the guard id as imm32/disp32.
          return uint64_t(UK.Imm) <= uint64_t(INT32_MAX);
        default:
          return UK.X < uint8_t(isa::IntrinsicID::NumIntrinsics);
        }
      };
      // One intrRunSlow covering [K, K+Len). Nonzero statuses unpack in
      // the run stub (dynamic consumed count); on status 0 control
      // continues at the next emitted site, so a segment that does not
      // reach the run's end falls through to the following uop's check.
      const auto slowSeg = [&](uint64_t K, uint64_t Len) {
        E.movRR(RDI, R13);
        E.movRI(RSI, reinterpret_cast<uint64_t>(&B.Insts[K]));
        E.movRI(RDX, Len);
        E.callAbs(reinterpret_cast<const void *>(&Jit::intrRunSlow));
        E.testEax();
        E.jcc(0x5, runLabel(K)); // jne: an intrinsic didn't fall through
      };

      Label BatchEnd;
      uint64_t K = I;
      while (K != I + N) {
        if (!eligible(K)) {
          uint64_t End = K + 1;
          while (End != I + N && !eligible(End))
            ++End;
          slowSeg(K, End - K);
          K = End;
          continue;
        }
        const auto ID = static_cast<isa::IntrinsicID>(B.Uops[K].X);
        Label SlowK, EndK;
        E.movRI(RAX, reinterpret_cast<uint64_t>(&M.FastPath));
        E.loadMem32(RCX, RAX, 0); // Enabled
        E.testRR(RCX);
        E.jcc(0x4, SlowK); // jz: no published view
        E.loadMem32(RCX, RAX, NormalMaskOff);
        E.loadMem32(RDX, RAX, InSimOff);
        E.testRR(RDX);
        Label Sel;
        E.jcc(0x4, Sel); // jz: normal mode — mask already in ecx
        E.loadMem32(RCX, RAX, InSimMaskOff);
        E.bind(Sel);
        E.btR32Imm(RCX, uint8_t(ID));
        if (ID == isa::IntrinsicID::CovGuard) {
          // No carry implies normal mode (the in-sim mask always holds
          // the CovGuard bit): the guard is then a no-op iff its counter
          // is saturated or the id is out of the map's range — the exact
          // Coverage::hitNormal early-out.
          Label FastK;
          E.jcc(0x2, FastK); // jc: masked (in-sim)
          E.cmpMemImm32(RAX, CovSizeOff, int32_t(uint32_t(B.Uops[K].Imm)));
          E.jcc(0x6, FastK); // jbe: NormalCovSize <= id — out of range
          E.loadMem(RCX, RAX, CovPtrOff);
          E.cmpMem8Imm(RCX, int32_t(uint32_t(B.Uops[K].Imm)), 0xFF);
          E.jcc(0x5, SlowK); // jne: unsaturated — the handler counts it
          E.bind(FastK);
        } else {
          E.jcc(0x3, SlowK); // jnc: not a no-op in the current mode
        }
        // Fast retire: the no-op consumes budget at the block-end settle
        // like every straight-line uop; only the intrinsic counters
        // advance here. r14 pins &ExecutedInsts; ExecutedIntrinsics and
        // IntrFastHits sit at fixed displacements behind it.
        E.incMem(R14, IntrsCtrDisp);
        E.incMem(R14, FastHitsCtrDisp);
        E.jmp(EndK);
        E.bind(SlowK);
        slowSeg(K, I + N - K);
        E.jmp(BatchEnd); // status 0: the helper ran the rest of the run
        E.bind(EndK);
        ++K;
      }
      E.bind(BatchEnd);
      I += N - 1; // the loop's ++I steps past the run
      Mirror = false;
      break;
    }

    case UopKind::Fallback: {
      const isa::Instruction &Inst = B.Insts[I].D.I;
      // The diverting terminators get native fast paths: instrumented
      // code is trampoline-call-heavy, and one helper round-trip per
      // CALL/RET costs more than the whole block body. Every fast path
      // ends in the dispatch stub (or a direct chain for CALL), so the
      // steady state never leaves the arena; every slow path is the
      // reference helper, exactly as before.
      const auto callFallback = [&] {
        E.movRR(RDI, R13);
        E.movRI(RSI, reinterpret_cast<uint64_t>(&B.Insts[I]));
        E.callAbs(reinterpret_cast<const void *>(&Jit::fallbackSlow));
        E.testEax();
        E.jcc(0x5, chainLabel(I)); // jne: chain, divert, or stop
        // Status 0 — a squashed terminator whose PC fell through —
        // continues to the block-end fall-through below.
      };

      if (Inst.Op == isa::Opcode::JMPI) {
        // JMPI: C.PC = R[A]. Nothing can fault or stop.
        E.loadGuest(RAX, Inst.A.R);
        E.storeMem(RBX, PCDisp, RAX);
        E.settleInsts(I + 1);
        E.settleBudget(I + 1);
        E.jmpAbs(DispatchStub);
        Mirror = false;
        break;
      }

      if (Inst.Op == isa::Opcode::RET) {
        // RET: pop the return address into the PC — the PopR fast path
        // with the dispatch stub as its continuation. An unmapped pop
        // reads 0 (reference semantics); the resulting wild PC misses
        // the cache and the driver's step() raises the fetch fault.
        Label Slow, Zero, Got;
        E.loadGuest(RSI, SP);
        emitRegionCheck(8, Slow);
        emitTLBProbe(Slow);
        E.movRR32(RDX, RSI);
        E.andR32Imm(RDX, uint32_t(Memory::PageSize - 1));
        E.cmpR32Imm(RDX, uint32_t(Memory::PageSize - 8));
        E.jcc(0x7, Slow);
        E.loadMem(RAX, RAX, CellOff);
        E.testRR(RAX);
        E.jcc(0x4, Zero);
        E.rex(1, RCX, RDX, RAX);
        E.b(0x8B); // mov rcx, [rax+rdx]
        E.modMemIdx(RCX, RAX, RDX, 0);
        E.jmp(Got);
        E.bind(Zero);
        E.movRI(RCX, 0);
        E.bind(Got);
        E.storeMem(RBX, PCDisp, RCX);
        E.aluMemImm(0, SP, 8); // SP += 8
        E.settleInsts(I + 1);
        E.settleBudget(I + 1);
        E.jmpAbs(DispatchStub);
        E.bind(Slow);
        callFallback();
        Mirror = false;
        break;
      }

      if (Inst.Op == isa::Opcode::CALL || Inst.Op == isa::Opcode::CALLI) {
        // CALL/CALLI: push the constant return address (the PushI fast
        // path, including the watch exclusion — a push into the code
        // region must take the helper and report the epoch bump), then
        // branch: a compile-time chain for CALL, the dispatch stub for
        // the register-indirect CALLI.
        const bool Direct = Inst.Op == isa::Opcode::CALL;
        Label Slow, DirtyOk;
        E.loadGuest(RSI, SP);
        E.leaRegMem(RSI, RSI, -8);
        emitRegionCheck(8, Slow);
        E.movRR(RCX, RSI);
        E.shiftRegImm(5, RCX, uint8_t(Memory::PageShift));
        E.movRI(RAX, M.Mem.WatchLoPage);
        E.movRR(RDX, RCX);
        E.aluRR(0x29, RDX, RAX); // sub rdx, rax
        E.cmpRegImm(RDX, int64_t(M.Mem.WatchPageSpan));
        E.jcc(0x6, Slow); // jbe: inside the watched range
        emitTLBProbe(Slow);
        E.loadMem(RAX, RAX, CellOff);
        E.testRR(RAX);
        E.jcc(0x4, Slow); // jz: unmapped — helper materializes it
        E.cmpMem8Imm(RAX, DirtyOff, 0);
        E.jcc(0x5, DirtyOk);
        E.movRI(RCX, reinterpret_cast<uint64_t>(&M.Mem.TrackDirty));
        E.cmpMem8Imm(RCX, 0, 0);
        E.jcc(0x5, Slow);
        E.bind(DirtyOk);
        E.movRR32(RDX, RSI);
        E.andR32Imm(RDX, uint32_t(Memory::PageSize - 1));
        E.cmpR32Imm(RDX, uint32_t(Memory::PageSize - 8));
        E.jcc(0x7, Slow);
        E.movRI(RCX, NextPC); // the return address
        E.rex(1, RCX, RDX, RAX);
        E.b(0x89); // mov [rax+rdx], rcx
        E.modMemIdx(RCX, RAX, RDX, 0);
        if (!Direct)
          E.loadGuest(RDX, Inst.A.R); // target: R[A] before SP moves,
                                      // so CALLI through SP reads the
                                      // pre-push value (reference order)
        E.storeGuest(SP, RSI);        // SP -= 8 (rsi = old SP - 8)
        E.settleInsts(I + 1);
        E.settleBudget(I + 1);
        if (Direct) {
          chainJump(NextPC + uint64_t(Inst.A.Imm));
        } else {
          E.storeMem(RBX, PCDisp, RDX);
          E.jmpAbs(DispatchStub);
        }
        E.bind(Slow);
        callFallback();
        Mirror = false;
        break;
      }

      callFallback();
      Mirror = false;
      break;
    }
    }
  }

  // Fall-through off the block's end — the path for non-terminator
  // final uops and for squashed terminators whose slow path returned 0.
  // An unconditional Jmp never falls through, and neither does native
  // JMPI (no slow path, no squash).
  if (B.Uops.back().Kind != UopKind::Jmp &&
      !(B.Uops.back().Kind == UopKind::Fallback &&
        B.Insts.back().D.I.Op == isa::Opcode::JMPI)) {
    E.settleInsts(NumUops);
    E.settleBudget(NumUops);
    chainJump(B.Insts.back().NextPC);
  }

  // --- Stubs -------------------------------------------------------------
  // Taken-branch stubs: settle the partial block, then chain.
  for (TakenStub &S : TakenStubs) {
    E.bind(S.L);
    E.settleInsts(S.Idx + 1);
    E.settleBudget(S.Idx + 1);
    chainJump(S.Target);
  }
  // Helper-exit stubs: rax already holds ExitDivert/ExitStopped.
  for (auto &[Idx, L] : ExitStubs) {
    E.bind(L);
    E.settleInsts(Idx + 1);
    E.settleBudget(Idx + 1);
    E.jmpAbs(Epilogue);
  }
  // Fallback-status stubs: settle the partial block, then sort the
  // helper's verdict — ExitChain re-enters compiled code through the
  // dispatch stub; real diverts and stops exit with rax's status.
  for (auto &[Idx, L] : ChainStubs) {
    E.bind(L);
    E.settleInsts(Idx + 1);
    E.settleBudget(Idx + 1);
    E.cmpR32Imm(RAX, uint32_t(ExitChain));
    Label NotChain;
    E.jcc(0x5, NotChain); // jne
    E.jmpAbs(DispatchStub);
    E.bind(NotChain);
    E.jmpAbs(Epilogue);
  }
  // Intrinsic-run stubs: unpack status | consumed<<3, settle the run's
  // prefix plus the dynamic consumed count, then sort as above.
  for (auto &[Idx, L] : RunStubs) {
    E.bind(L);
    E.movRR32(RCX, RAX);
    E.shrR32Imm(RCX, 3);            // rcx = consumed (1..N)
    E.andR32Imm(RAX, 7);            // rax = status
    if (Idx)
      E.leaRegMem(RCX, RCX, int32_t(Idx));
    E.settleByReg(RCX);
    E.cmpR32Imm(RAX, uint32_t(ExitChain));
    Label NotChain;
    E.jcc(0x5, NotChain); // jne
    E.jmpAbs(DispatchStub);
    E.bind(NotChain);
    E.jmpAbs(Epilogue);
  }
  // Budget bail: zero uops executed; C.PC = entry for the step() tail.
  E.bind(BudgetBail);
  E.movRI(RAX, B.Entry);
  E.storeMem(RBX, PCDisp, RAX);
  E.movRI(RAX, ExitBudget);
  E.jmpAbs(Epilogue);

  if (E.OOM) {
    Arena->rewind(Mark);
    return nullptr;
  }

  // Commit: register the entry, resolve every pending chain to it —
  // sites in previously compiled blocks, and this block's own sites
  // whose target is already compiled (including self-loops, whose
  // target is this very block).
  EntryByPC.emplace(B.Entry, EntryPtr);
  auto Range = PendingChains.equal_range(B.Entry);
  for (auto It = Range.first; It != Range.second; ++It) {
    E.patch32(It->second, int32_t(int64_t(EntryOff) - int64_t(It->second + 4)));
    ++ChainPatches;
  }
  PendingChains.erase(Range.first, Range.second);
  for (auto &[Target, Off] : NewPending) {
    auto TIt = EntryByPC.find(Target);
    if (TIt != EntryByPC.end()) {
      E.patch32(Off, int32_t((TIt->second - Arena->base()) - int64_t(Off + 4)));
      ++ChainPatches;
    } else {
      PendingChains.emplace(Target, Off);
    }
  }
  ChainPatches += NewPatches;
  B.JitCode = EntryPtr;
  Compiled.push_back(&B);
  return EntryPtr;
}

#else // !__x86_64__

// Non-x86-64 hosts: the backend does not exist. available() is false,
// create() returns null, and the Machine runs the block engine instead;
// these definitions only satisfy the linker.
void Jit::emitRuntimeStubs() {}
const void *Jit::compile(DecodedBlock &) { return nullptr; }
Jit::ExitState Jit::run(uint64_t Remaining, const void *) const {
  return {ExitDivert, Remaining};
}

#endif // __x86_64__
