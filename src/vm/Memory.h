//===- vm/Memory.h - Sparse 64-bit guest memory -------------------*- C++ -*-===//
///
/// \file
/// Sparse, page-granular guest memory covering the full 64-bit address
/// space. Pages materialize zero-filled on first write, so the huge ASan
/// shadow and DIFT tag-shadow regions (runtime/ShadowLayout.h) cost only
/// what is actually touched.
///
/// Guest-visible accesses are region-checked by the Machine; this class
/// itself is policy-free and also serves the runtime's host-side accesses
/// to shadow regions.
///
/// Hot-path structure (one Memory is owned by one Machine and never
/// shared between threads):
///
///   - a small direct-mapped TLB of (page index -> PageCell*) entries is
///     consulted before the `Pages` hash map on every access; misses are
///     filled from the map, and unmapped pages are cached as negative
///     entries (a later write refills the slot via pageForWrite). The
///     TLB is flushed whenever pages can be unmapped: captureBaseline
///     (zero-page reclaim) and resetToBaseline (post-capture unmap).
///   - each live page carries an inline dirty bit; the first tracked
///     write after a capture appends the page to `DirtyList` instead of
///     inserting into a hash set, so steady-state tracked writes are a
///     flag test.
///   - accesses of <= 8 bytes that stay within one page (all aligned
///     power-of-two accesses do) are served by a single fixed-width
///     load/store on the page buffer instead of the cross-page memcpy
///     chunk loop.
///
/// A baseline snapshot supports O(dirty pages) resets between fuzzing
/// runs — the per-execution restore a fuzzing campaign leans on.
/// Snapshots are sparse: pages that are all-zero at capture time are
/// reclaimed (unmapped) instead of copied, since an unmapped page
/// already reads as zero; the mostly-zero shadow regions therefore cost
/// nothing to snapshot, and a reset un-maps them again rather than
/// keeping stale zero copies alive.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_MEMORY_H
#define TEAPOT_VM_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace teapot {
namespace support {
class FaultInjector;
} // namespace support
namespace vm {

class Jit;

class Memory {
public:
  static constexpr uint64_t PageSize = 4096;
  static constexpr uint64_t PageShift = 12;
  using Page = std::array<uint8_t, PageSize>;

  /// A live page: its contents plus the inline dirty bit consulted by
  /// the tracked-write fast path.
  struct PageCell {
    Page Data;
    bool Dirty = false;
  };

  Memory() { flushTLB(); }

  /// Page-materialization ceiling, in pages; 0 means unlimited. Only
  /// enforced while dirty tracking is active (i.e. after
  /// captureBaseline), so object loading and runtime attach can never
  /// trip it. A refused materialization sets oomPending() and the write
  /// lands in a scratch page that is never mapped — readers keep seeing
  /// zero, identically on every execution engine.
  uint64_t MaxPages = 0;

  /// Optional deterministic fault injection (site `mem.page_alloc`,
  /// support/FaultInjector.h); consulted on every tracked
  /// page-materialization attempt. Not owned.
  support::FaultInjector *Faults = nullptr;

  /// True when a page materialization was refused (ceiling or injected
  /// fault) since the last clearOomPending(). The Machine polls this at
  /// its guest-write boundaries and turns it into a per-execution
  /// out-of-memory StopState.
  bool oomPending() const { return OomPending; }
  void clearOomPending() { OomPending = false; }

  /// Reads \p N bytes at \p Addr; unmapped bytes read as zero.
  void read(uint64_t Addr, void *Out, size_t N) const;

  /// Writes \p N bytes at \p Addr, materializing pages as needed.
  void write(uint64_t Addr, const void *In, size_t N);

  uint8_t readU8(uint64_t Addr) const {
    const PageCell *Cell = tlbLookup(Addr >> PageShift);
    return Cell ? Cell->Data[Addr & (PageSize - 1)] : 0;
  }
  /// Little-endian load of \p Size in {1,2,4,8} bytes (other sizes and
  /// page-straddling accesses fall back to the chunked read()).
  uint64_t readUnsigned(uint64_t Addr, unsigned Size) const {
    uint64_t Off = Addr & (PageSize - 1);
    if (Off + Size <= PageSize) {
      const PageCell *Cell = tlbLookup(Addr >> PageShift);
      if (!Cell)
        return 0;
      const uint8_t *P = Cell->Data.data() + Off;
      uint64_t V;
      switch (Size) {
      case 1:
        return *P;
      case 2: {
        uint16_t W;
        memcpy(&W, P, 2);
        return W;
      }
      case 4: {
        uint32_t W;
        memcpy(&W, P, 4);
        return W;
      }
      case 8:
        memcpy(&V, P, 8);
        return V;
      default:
        break;
      }
    }
    uint64_t V = 0;
    read(Addr, &V, Size);
    return V;
  }
  void writeU8(uint64_t Addr, uint8_t V) {
    PageCell *Cell = tlbLookupWrite(Addr >> PageShift);
    Cell->Data[Addr & (PageSize - 1)] = V;
  }
  void writeUnsigned(uint64_t Addr, uint64_t V, unsigned Size) {
    uint64_t Off = Addr & (PageSize - 1);
    if (Off + Size <= PageSize) {
      PageCell *Cell = tlbLookupWrite(Addr >> PageShift);
      uint8_t *P = Cell->Data.data() + Off;
      switch (Size) {
      case 1:
        *P = static_cast<uint8_t>(V);
        return;
      case 2: {
        uint16_t W = static_cast<uint16_t>(V);
        memcpy(P, &W, 2);
        return;
      }
      case 4: {
        uint32_t W = static_cast<uint32_t>(V);
        memcpy(P, &W, 4);
        return;
      }
      case 8:
        memcpy(P, &V, 8);
        return;
      default:
        break;
      }
    }
    write(Addr, &V, Size);
  }

  /// Registers a page-granular watch range (the Machine's code region).
  /// Any write that touches a watched page bumps watchEpoch(); the
  /// execution engines use this to invalidate decoded-instruction
  /// caches, so guest stores into code stay coherent on both engines.
  void watchRange(uint64_t Base, uint64_t Size) {
    if (Size == 0) {
      WatchLoPage = ~0ULL;
      WatchPageSpan = 0;
      return;
    }
    WatchLoPage = Base >> PageShift;
    WatchPageSpan = ((Base + Size - 1) >> PageShift) - WatchLoPage;
  }
  uint64_t watchEpoch() const { return WatchEpoch; }

  /// Captures the current contents as the reset baseline. All-zero
  /// pages are reclaimed (unmapped, not snapshotted): they are
  /// indistinguishable from unmapped pages to readers and would only
  /// bloat the snapshot.
  void captureBaseline();

  /// Restores every page written since captureBaseline() to its baseline
  /// contents (or unmaps it if it was not mapped then). Returns the
  /// number of pages restored — O(dirty pages), independent of the
  /// total mapped footprint.
  size_t resetToBaseline();

  size_t mappedPageCount() const { return Pages.size(); }
  size_t dirtyPageCount() const { return DirtyList.size(); }
  /// Pages held by the baseline snapshot (excludes reclaimed zero pages).
  size_t baselinePageCount() const { return Baseline.size(); }

private:
  /// The JIT tier emits the TLB probe, dirty-bit test, and watch-range
  /// exclusion inline in generated code, reading the same structures the
  /// accessors above use (docs/VM.md).
  friend class Jit;

  // Direct-mapped TLB. Index ~0 is an impossible page index (addresses
  // are 64-bit, so real indices fit in 52 bits) and marks an empty slot.
  // Cell == nullptr with a matching Idx is a cached negative entry
  // ("known unmapped"); pageForWrite overwrites the slot when the page
  // materializes. Mutable: lookups on const Memory still fill slots.
  struct TLBEntry {
    uint64_t Idx;
    PageCell *Cell;
  };
  static constexpr size_t TLBSlots = 256; // 1 MiB of reach, 4 KiB of table

  void flushTLB() {
    for (TLBEntry &E : TLB) {
      E.Idx = ~0ULL;
      E.Cell = nullptr;
    }
  }

  /// Read path: cached cell, or null for an unmapped page.
  const PageCell *tlbLookup(uint64_t Idx) const {
    const TLBEntry &E = TLB[Idx & (TLBSlots - 1)];
    if (E.Idx == Idx)
      return E.Cell;
    return tlbFill(Idx);
  }

  /// Write path: cached cell with the dirty bit maintained, or the
  /// materializing slow path.
  PageCell *tlbLookupWrite(uint64_t Idx) {
    if (Idx - WatchLoPage <= WatchPageSpan)
      ++WatchEpoch; // write into the watched (code) range
    TLBEntry &E = TLB[Idx & (TLBSlots - 1)];
    if (E.Idx == Idx && E.Cell) {
      markDirty(Idx, *E.Cell);
      return E.Cell;
    }
    return pageForWrite(Idx);
  }

  void markDirty(uint64_t Idx, PageCell &Cell) {
    if (TrackDirty && !Cell.Dirty) {
      Cell.Dirty = true;
      DirtyList.push_back(Idx);
    }
  }

  const PageCell *tlbFill(uint64_t Idx) const;
  PageCell *pageForWrite(uint64_t Idx);

  std::unordered_map<uint64_t, std::unique_ptr<PageCell>> Pages;
  std::unordered_map<uint64_t, std::unique_ptr<Page>> Baseline;
  /// Pages whose dirty bit was set since the last capture; each page
  /// appears at most once (the bit dedupes).
  std::vector<uint64_t> DirtyList;
  mutable std::array<TLBEntry, TLBSlots> TLB;
  /// Scratch landing pad for writes whose page materialization was
  /// refused. Never entered into Pages or the TLB, so no read path can
  /// observe bytes written through it.
  PageCell Scratch;
  bool OomPending = false;
  bool TrackDirty = false;
  // Code-region write watch: [WatchLoPage, WatchLoPage+WatchPageSpan].
  // The default never matches any page index (indices fit in 52 bits).
  uint64_t WatchLoPage = ~0ULL;
  uint64_t WatchPageSpan = 0;
  uint64_t WatchEpoch = 0;
};

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_MEMORY_H
