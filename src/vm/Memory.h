//===- vm/Memory.h - Sparse 64-bit guest memory -------------------*- C++ -*-===//
///
/// \file
/// Sparse, page-granular guest memory covering the full 64-bit address
/// space. Pages materialize zero-filled on first write, so the huge ASan
/// shadow and DIFT tag-shadow regions (runtime/ShadowLayout.h) cost only
/// what is actually touched.
///
/// Guest-visible accesses are region-checked by the Machine; this class
/// itself is policy-free and also serves the runtime's host-side accesses
/// to shadow regions.
///
/// Hot-path structure (one Memory is owned by one Machine and never
/// shared between threads):
///
///   - two small direct-mapped TLBs of (page index -> PageCell*) entries
///     are consulted before the `Pages` hash map on every access: one
///     dedicated to guest/user pages (obj::isUserAddress regions — the
///     bank the JIT probes inline) and one to everything else (ASan and
///     DIFT tag shadow, runtime globals). Splitting the banks keeps the
///     runtime's shadow traffic, which runs between every pair of guest
///     accesses in an instrumented binary, from evicting hot guest stack
///     entries. Misses are filled from the map, and unmapped pages are
///     cached as negative entries (a later write refills the slot via
///     pageForWrite). Both banks are flushed whenever pages can be
///     unmapped: captureBaseline (zero-page reclaim) and resetToBaseline
///     (post-capture unmap).
///   - hit/miss accounting: tlbGuestHits/tlbRuntimeHits count bank hits,
///     tlbSlowPathCalls counts fills through the hash map. flushTLB
///     leaves the counters alone; resetHotPathCounters() zeroes them —
///     the Machine calls it per run alongside its own instruction
///     counters, and the runtime accumulates the per-run values into
///     campaign totals (RuntimeStats).
///   - each live page carries an inline dirty bit; the first tracked
///     write after a capture appends the page to `DirtyList` instead of
///     inserting into a hash set, so steady-state tracked writes are a
///     flag test.
///   - accesses of <= 8 bytes that stay within one page (all aligned
///     power-of-two accesses do) are served by a single fixed-width
///     load/store on the page buffer instead of the cross-page memcpy
///     chunk loop.
///
/// A baseline snapshot supports O(dirty pages) resets between fuzzing
/// runs — the per-execution restore a fuzzing campaign leans on.
/// Snapshots are sparse: pages that are all-zero at capture time are
/// reclaimed (unmapped) instead of copied, since an unmapped page
/// already reads as zero; the mostly-zero shadow regions therefore cost
/// nothing to snapshot, and a reset un-maps them again rather than
/// keeping stale zero copies alive.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_MEMORY_H
#define TEAPOT_VM_MEMORY_H

#include "obj/Layout.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace teapot {
namespace support {
class FaultInjector;
} // namespace support
namespace vm {

class Jit;

class Memory {
public:
  static constexpr uint64_t PageSize = 4096;
  static constexpr uint64_t PageShift = 12;
  using Page = std::array<uint8_t, PageSize>;

  /// A live page: its contents plus the inline dirty bit consulted by
  /// the tracked-write fast path.
  struct PageCell {
    Page Data;
    bool Dirty = false;
  };

  Memory() { flushTLB(); }

  /// Page-materialization ceiling, in pages; 0 means unlimited. Only
  /// enforced while dirty tracking is active (i.e. after
  /// captureBaseline), so object loading and runtime attach can never
  /// trip it. A refused materialization sets oomPending() and the write
  /// lands in a scratch page that is never mapped — readers keep seeing
  /// zero, identically on every execution engine.
  uint64_t MaxPages = 0;

  /// Optional deterministic fault injection (site `mem.page_alloc`,
  /// support/FaultInjector.h); consulted on every tracked
  /// page-materialization attempt. Not owned.
  support::FaultInjector *Faults = nullptr;

  /// True when a page materialization was refused (ceiling or injected
  /// fault) since the last clearOomPending(). The Machine polls this at
  /// its guest-write boundaries and turns it into a per-execution
  /// out-of-memory StopState.
  bool oomPending() const { return OomPending; }
  void clearOomPending() { OomPending = false; }

  /// Reads \p N bytes at \p Addr; unmapped bytes read as zero.
  void read(uint64_t Addr, void *Out, size_t N) const;

  /// Instruction-fetch read: same bytes as read(), but exempt from the
  /// hot-path accounting. Decode and block-build fetches depend on which
  /// instruction caches are warm — a resumed campaign rebuilds caches an
  /// uninterrupted one still holds — so counting them would break the
  /// "resume is byte-identical" stats guarantee. Data traffic only.
  void readCode(uint64_t Addr, void *Out, size_t N) const;

  /// Writes \p N bytes at \p Addr, materializing pages as needed.
  void write(uint64_t Addr, const void *In, size_t N);

  uint8_t readU8(uint64_t Addr) const {
    const PageCell *Cell = tlbLookup(Addr >> PageShift);
    return Cell ? Cell->Data[Addr & (PageSize - 1)] : 0;
  }
  /// Little-endian load of \p Size in {1,2,4,8} bytes (other sizes and
  /// page-straddling accesses fall back to the chunked read()).
  uint64_t readUnsigned(uint64_t Addr, unsigned Size) const {
    uint64_t Off = Addr & (PageSize - 1);
    if (Off + Size <= PageSize) {
      const PageCell *Cell = tlbLookup(Addr >> PageShift);
      if (!Cell)
        return 0;
      const uint8_t *P = Cell->Data.data() + Off;
      uint64_t V;
      switch (Size) {
      case 1:
        return *P;
      case 2: {
        uint16_t W;
        memcpy(&W, P, 2);
        return W;
      }
      case 4: {
        uint32_t W;
        memcpy(&W, P, 4);
        return W;
      }
      case 8:
        memcpy(&V, P, 8);
        return V;
      default:
        break;
      }
    }
    uint64_t V = 0;
    read(Addr, &V, Size);
    return V;
  }
  void writeU8(uint64_t Addr, uint8_t V) {
    PageCell *Cell = tlbLookupWrite(Addr >> PageShift);
    Cell->Data[Addr & (PageSize - 1)] = V;
  }
  void writeUnsigned(uint64_t Addr, uint64_t V, unsigned Size) {
    uint64_t Off = Addr & (PageSize - 1);
    if (Off + Size <= PageSize) {
      PageCell *Cell = tlbLookupWrite(Addr >> PageShift);
      uint8_t *P = Cell->Data.data() + Off;
      switch (Size) {
      case 1:
        *P = static_cast<uint8_t>(V);
        return;
      case 2: {
        uint16_t W = static_cast<uint16_t>(V);
        memcpy(P, &W, 2);
        return;
      }
      case 4: {
        uint32_t W = static_cast<uint32_t>(V);
        memcpy(P, &W, 4);
        return;
      }
      case 8:
        memcpy(P, &V, 8);
        return;
      default:
        break;
      }
    }
    write(Addr, &V, Size);
  }

  /// Single-lookup span accessors for accesses the caller knows stay
  /// within one page ((Addr & (PageSize-1)) + N <= PageSize). The tag
  /// shadow's per-byte loops (runtime/Dift.h) use these to replace N
  /// TLB lookups with one. spanForRead returns the N mapped bytes, or
  /// nullptr when the page is unmapped (the bytes read as zero).
  const uint8_t *spanForRead(uint64_t Addr, size_t N) const {
    assert((Addr & (PageSize - 1)) + N <= PageSize && "span crosses page");
    (void)N;
    const PageCell *Cell = tlbLookup(Addr >> PageShift);
    return Cell ? Cell->Data.data() + (Addr & (PageSize - 1)) : nullptr;
  }
  /// Writable span: materializes the page, maintains the dirty bit and
  /// the code-watch epoch exactly like write() (a refused
  /// materialization lands the span in the unobservable scratch page).
  uint8_t *spanForWrite(uint64_t Addr, size_t N) {
    assert((Addr & (PageSize - 1)) + N <= PageSize && "span crosses page");
    (void)N;
    PageCell *Cell = tlbLookupWrite(Addr >> PageShift);
    return Cell->Data.data() + (Addr & (PageSize - 1));
  }

  /// Registers a page-granular watch range (the Machine's code region).
  /// Any write that touches a watched page bumps watchEpoch(); the
  /// execution engines use this to invalidate decoded-instruction
  /// caches, so guest stores into code stay coherent on both engines.
  void watchRange(uint64_t Base, uint64_t Size) {
    if (Size == 0) {
      WatchLoPage = ~0ULL;
      WatchPageSpan = 0;
      return;
    }
    WatchLoPage = Base >> PageShift;
    WatchPageSpan = ((Base + Size - 1) >> PageShift) - WatchLoPage;
  }
  uint64_t watchEpoch() const { return WatchEpoch; }

  /// Captures the current contents as the reset baseline. All-zero
  /// pages are reclaimed (unmapped, not snapshotted): they are
  /// indistinguishable from unmapped pages to readers and would only
  /// bloat the snapshot.
  void captureBaseline();

  /// Restores every page written since captureBaseline() to its baseline
  /// contents (or unmaps it if it was not mapped then). Returns the
  /// number of pages restored — O(dirty pages), independent of the
  /// total mapped footprint.
  size_t resetToBaseline();

  size_t mappedPageCount() const { return Pages.size(); }
  size_t dirtyPageCount() const { return DirtyList.size(); }
  /// Pages held by the baseline snapshot (excludes reclaimed zero pages).
  size_t baselinePageCount() const { return Baseline.size(); }

  /// Hot-path accounting (see the header comment): hits in the guest
  /// bank, hits in the runtime/shadow bank, and fills that had to
  /// consult the Pages hash map. JIT-inline guest probes that hit in
  /// generated code never reach C++ and are not counted here; the
  /// counters are per-engine diagnostics, not architectural state.
  uint64_t tlbGuestHits() const { return GuestHits; }
  uint64_t tlbRuntimeHits() const { return RuntimeHits; }
  uint64_t tlbSlowPathCalls() const { return SlowPathCalls; }
  void resetHotPathCounters() { GuestHits = RuntimeHits = SlowPathCalls = 0; }

private:
  /// The JIT tier emits the TLB probe, dirty-bit test, and watch-range
  /// exclusion inline in generated code, reading the same structures the
  /// accessors above use (docs/VM.md).
  friend class Jit;

  // Direct-mapped TLB banks. Index ~0 is an impossible page index
  // (addresses are 64-bit, so real indices fit in 52 bits) and marks an
  // empty slot. Cell == nullptr with a matching Idx is a cached negative
  // entry ("known unmapped"); pageForWrite overwrites the slot when the
  // page materializes. Mutable: lookups on const Memory still fill slots.
  struct TLBEntry {
    uint64_t Idx;
    PageCell *Cell;
  };
  static constexpr size_t TLBSlots = 256; // 1 MiB of reach, 4 KiB of table

  // Guest-bank classification, in page indices. A page belongs to the
  // guest bank iff its address is user-visible (obj::isUserAddress):
  // LowMem [0, LowMemEnd] or HighMem [HighMemStart, HighMemEnd]. The
  // shadow regions (ASan at (A>>3)+0x7fff8000 for HighMem addresses,
  // DIFT tags at A^1<<45) and anything else land in the runtime bank.
  static constexpr uint64_t GuestLowPageEnd = obj::LowMemEnd >> PageShift;
  static constexpr uint64_t GuestHighPageLo = obj::HighMemStart >> PageShift;
  static constexpr uint64_t GuestHighPageSpan =
      (obj::HighMemEnd >> PageShift) - (obj::HighMemStart >> PageShift);
  static bool isGuestPage(uint64_t Idx) {
    return Idx <= GuestLowPageEnd ||
           Idx - GuestHighPageLo <= GuestHighPageSpan;
  }

  /// The bank slot a page index maps to.
  TLBEntry &tlbSlot(uint64_t Idx) const {
    auto &Bank = isGuestPage(Idx) ? TLB : RtTLB;
    return Bank[Idx & (TLBSlots - 1)];
  }

  void flushTLB() {
    for (TLBEntry &E : TLB) {
      E.Idx = ~0ULL;
      E.Cell = nullptr;
    }
    for (TLBEntry &E : RtTLB) {
      E.Idx = ~0ULL;
      E.Cell = nullptr;
    }
  }

  /// Read path: cached cell, or null for an unmapped page.
  const PageCell *tlbLookup(uint64_t Idx) const {
    if (isGuestPage(Idx)) {
      const TLBEntry &E = TLB[Idx & (TLBSlots - 1)];
      if (E.Idx == Idx) {
        ++GuestHits;
        return E.Cell;
      }
    } else {
      const TLBEntry &E = RtTLB[Idx & (TLBSlots - 1)];
      if (E.Idx == Idx) {
        ++RuntimeHits;
        return E.Cell;
      }
    }
    return tlbFill(Idx);
  }

  /// Write path: cached cell with the dirty bit maintained, or the
  /// materializing slow path.
  PageCell *tlbLookupWrite(uint64_t Idx) {
    if (Idx - WatchLoPage <= WatchPageSpan)
      ++WatchEpoch; // write into the watched (code) range
    const bool Guest = isGuestPage(Idx);
    TLBEntry &E = (Guest ? TLB : RtTLB)[Idx & (TLBSlots - 1)];
    if (E.Idx == Idx && E.Cell) {
      ++(Guest ? GuestHits : RuntimeHits);
      markDirty(Idx, *E.Cell);
      return E.Cell;
    }
    return pageForWrite(Idx);
  }

  void markDirty(uint64_t Idx, PageCell &Cell) {
    if (TrackDirty && !Cell.Dirty) {
      Cell.Dirty = true;
      DirtyList.push_back(Idx);
    }
  }

  const PageCell *tlbFill(uint64_t Idx) const;
  PageCell *pageForWrite(uint64_t Idx);

  std::unordered_map<uint64_t, std::unique_ptr<PageCell>> Pages;
  std::unordered_map<uint64_t, std::unique_ptr<Page>> Baseline;
  /// Pages whose dirty bit was set since the last capture; each page
  /// appears at most once (the bit dedupes).
  std::vector<uint64_t> DirtyList;
  /// Guest bank (the one the JIT's inline probe reads through its pinned
  /// r12 = &TLB[0] — generated code only probes region-checked guest
  /// addresses, so the runtime bank is invisible to it) and the
  /// runtime/shadow bank.
  mutable std::array<TLBEntry, TLBSlots> TLB;
  mutable std::array<TLBEntry, TLBSlots> RtTLB;
  // Hot-path accounting; mutable because read-path hits count on const
  // lookups. One Memory is single-threaded (owned by one Machine).
  mutable uint64_t GuestHits = 0;
  mutable uint64_t RuntimeHits = 0;
  mutable uint64_t SlowPathCalls = 0;
  /// Scratch landing pad for writes whose page materialization was
  /// refused. Never entered into Pages or the TLB, so no read path can
  /// observe bytes written through it.
  PageCell Scratch;
  bool OomPending = false;
  bool TrackDirty = false;
  // Code-region write watch: [WatchLoPage, WatchLoPage+WatchPageSpan].
  // The default never matches any page index (indices fit in 52 bits).
  uint64_t WatchLoPage = ~0ULL;
  uint64_t WatchPageSpan = 0;
  uint64_t WatchEpoch = 0;
};

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_MEMORY_H
