//===- vm/Memory.h - Sparse 64-bit guest memory -------------------*- C++ -*-===//
///
/// \file
/// Sparse, page-granular guest memory covering the full 64-bit address
/// space. Pages materialize zero-filled on first write, so the huge ASan
/// shadow and DIFT tag-shadow regions (runtime/ShadowLayout.h) cost only
/// what is actually touched.
///
/// Guest-visible accesses are region-checked by the Machine; this class
/// itself is policy-free and also serves the runtime's host-side accesses
/// to shadow regions.
///
/// A baseline snapshot supports O(dirty pages) resets between fuzzing
/// runs — the per-execution restore a fuzzing campaign leans on.
/// Snapshots are sparse: pages that are all-zero at capture time are
/// reclaimed (unmapped) instead of copied, since an unmapped page
/// already reads as zero; the mostly-zero shadow regions therefore cost
/// nothing to snapshot, and a reset un-maps them again rather than
/// keeping stale zero copies alive.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_VM_MEMORY_H
#define TEAPOT_VM_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace teapot {
namespace vm {

class Memory {
public:
  static constexpr uint64_t PageSize = 4096;
  using Page = std::array<uint8_t, PageSize>;

  /// Reads \p N bytes at \p Addr; unmapped bytes read as zero.
  void read(uint64_t Addr, void *Out, size_t N) const;

  /// Writes \p N bytes at \p Addr, materializing pages as needed.
  void write(uint64_t Addr, const void *In, size_t N);

  uint8_t readU8(uint64_t Addr) const {
    uint8_t V;
    read(Addr, &V, 1);
    return V;
  }
  uint64_t readUnsigned(uint64_t Addr, unsigned Size) const {
    uint64_t V = 0;
    read(Addr, &V, Size);
    return V;
  }
  void writeU8(uint64_t Addr, uint8_t V) { write(Addr, &V, 1); }
  void writeUnsigned(uint64_t Addr, uint64_t V, unsigned Size) {
    write(Addr, &V, Size);
  }

  /// Captures the current contents as the reset baseline. All-zero
  /// pages are reclaimed (unmapped, not snapshotted): they are
  /// indistinguishable from unmapped pages to readers and would only
  /// bloat the snapshot.
  void captureBaseline();

  /// Restores every page written since captureBaseline() to its baseline
  /// contents (or unmaps it if it was not mapped then). Returns the
  /// number of pages restored — O(dirty pages), independent of the
  /// total mapped footprint.
  size_t resetToBaseline();

  size_t mappedPageCount() const { return Pages.size(); }
  size_t dirtyPageCount() const { return Dirty.size(); }
  /// Pages held by the baseline snapshot (excludes reclaimed zero pages).
  size_t baselinePageCount() const { return Baseline.size(); }

private:
  Page *pageForWrite(uint64_t PageIdx);

  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
  std::unordered_map<uint64_t, std::unique_ptr<Page>> Baseline;
  std::unordered_set<uint64_t> Dirty;
  bool TrackDirty = false;
};

} // namespace vm
} // namespace teapot

#endif // TEAPOT_VM_MEMORY_H
