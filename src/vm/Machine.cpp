//===- vm/Machine.cpp - TISA interpreter ----------------------------------===//

#include "vm/Machine.h"

#include "obj/Layout.h"
#include "vm/Jit.h"

#include <algorithm>

using namespace teapot;
using namespace teapot::isa;
using namespace teapot::vm;

// Out of line: ~Jit must be visible to delete JitTier.
Machine::~Machine() = default;

Machine::Machine() {
  MallocFn = [](Machine &M, uint64_t Size) {
    // Default bump allocator, 16-byte aligned, with a guard gap so that
    // adjacent allocations are distinguishable for debugging.
    uint64_t P = (M.HeapBump + 15) & ~15ULL;
    M.HeapBump = P + ((Size + 15) & ~15ULL) + 16;
    return P;
  };
  FreeFn = [](Machine &, uint64_t) {};
}

Error Machine::loadObject(const obj::ObjectFile &Obj) {
  ICache.clear();
  // Drop JIT code before the decoded blocks it hangs off (flush unlinks
  // the DecodedBlocks' JitCode pointers); setCodeRegion below clears
  // the blocks themselves.
  if (JitTier)
    JitTier->flush();
  uint64_t CodeLo = ~0ULL, CodeHi = 0;
  for (const obj::Section &S : Obj.Sections) {
    if (S.Kind == obj::SectionKind::Code && S.size()) {
      CodeLo = std::min(CodeLo, S.Addr);
      CodeHi = std::max(CodeHi, S.Addr + S.size());
    }
    if (S.Kind == obj::SectionKind::Bss)
      continue; // sparse memory reads as zero
    if (!S.Bytes.empty())
      Mem.write(S.Addr, S.Bytes.data(), S.Bytes.size());
  }
  // (Re-)registering the code region is also the block-cache
  // invalidation point: the new image's bytes are in memory, every old
  // block is dropped. The write watch keeps both decode caches
  // coherent if the guest later stores into this region.
  uint64_t CodeSize = CodeLo < CodeHi ? CodeHi - CodeLo : 0;
  Blocks.setCodeRegion(CodeLo < CodeHi ? CodeLo : 0, CodeSize);
  Mem.watchRange(CodeLo < CodeHi ? CodeLo : 0, CodeSize);
  ICacheEpoch = BlocksEpoch = Mem.watchEpoch();
  C = CPU();
  C.PC = Obj.Entry;
  C.R[SP] = obj::StackTop - 16;
  uint64_t Sentinel = HaltSentinel;
  Mem.write(C.R[SP], &Sentinel, 8);
  HeapBump = obj::HeapBase;
  ExecutedInsts = ExecutedIntrinsics = IntrFastHits = 0;
  Mem.resetHotPathCounters();
  Output.clear();
  InputCursor = 0;
  return Error::success();
}

void Machine::captureBaseline() {
  Mem.captureBaseline();
  BaselineCPU = C;
  BaselineHeapBump = HeapBump;
}

void Machine::resetToBaseline() {
  Mem.resetToBaseline();
  C = BaselineCPU;
  HeapBump = BaselineHeapBump;
  Output.clear();
  InputCursor = 0;
  ExecutedInsts = ExecutedIntrinsics = IntrFastHits = 0;
  Mem.resetHotPathCounters();
}

const Decoded *Machine::decodeAt(uint64_t Addr) {
  if (ICacheEpoch != Mem.watchEpoch()) {
    ICache.clear(); // code bytes changed under us: re-decode
    ICacheEpoch = Mem.watchEpoch();
  }
  auto It = ICache.find(Addr);
  if (It != ICache.end())
    return &It->second;
  uint8_t Buf[40];
  Mem.readCode(Addr, Buf, sizeof(Buf));
  auto D = decode(Buf, sizeof(Buf), 0);
  if (!D)
    return nullptr;
  return &ICache.emplace(Addr, *D).first->second;
}

bool Machine::raiseFault(FaultKind K, uint64_t Addr, StopState &StopOut) {
  if (FaultHook && FaultHook(*this, K, Addr))
    return true;
  StopOut.Kind = StopKind::Fault;
  StopOut.Fault = K;
  StopOut.FaultAddr = Addr;
  return false;
}

Machine::Access Machine::guestRead(uint64_t Addr, uint64_t &Out,
                                   unsigned Size, bool Signed,
                                   StopState &StopOut) {
  if (!obj::isUserAddress(Addr) || !obj::isUserAddress(Addr + Size - 1))
    return raiseFault(FaultKind::BadMemory, Addr, StopOut) ? Access::Resumed
                                                           : Access::Stopped;
  uint64_t V = Mem.readUnsigned(Addr, Size);
  if (Signed && Size < 8) {
    uint64_t SignBit = 1ULL << (Size * 8 - 1);
    if (V & SignBit)
      V |= ~((SignBit << 1) - 1);
  }
  Out = V;
  return Access::Ok;
}

Machine::Access Machine::guestWrite(uint64_t Addr, uint64_t V, unsigned Size,
                                    StopState &StopOut) {
  if (!obj::isUserAddress(Addr) || !obj::isUserAddress(Addr + Size - 1))
    return raiseFault(FaultKind::BadMemory, Addr, StopOut) ? Access::Resumed
                                                           : Access::Stopped;
  Mem.writeUnsigned(Addr, V, Size);
  if (__builtin_expect(Mem.oomPending(), 0)) {
    // Page materialization was refused (ceiling or injected fault). The
    // write landed in the scratch page — architecturally it never
    // happened — and the instruction stops or squashes like any fault.
    Mem.clearOomPending();
    return raiseFault(FaultKind::OutOfMemory, Addr, StopOut)
               ? Access::Resumed
               : Access::Stopped;
  }
  return Access::Ok;
}

bool Machine::execExt(uint64_t Index, StopState &StopOut) {
  switch (Index) {
  case ExtExit:
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = C.R[R0];
    return false;
  case ExtReadInput: {
    uint64_t Buf = C.R[R0], Len = C.R[R1];
    uint64_t Avail = Input.size() - InputCursor;
    uint64_t N = std::min(Len, Avail);
    if (N) {
      if (!obj::isUserAddress(Buf) || !obj::isUserAddress(Buf + N - 1))
        return raiseFault(FaultKind::BadMemory, Buf, StopOut);
      Mem.write(Buf, Input.data() + InputCursor, N);
      if (InputReadHook)
        InputReadHook(Buf, N, InputCursor);
      InputCursor += N;
      if (__builtin_expect(Mem.oomPending(), 0)) {
        Mem.clearOomPending();
        return raiseFault(FaultKind::OutOfMemory, Buf, StopOut);
      }
    }
    C.R[R0] = N;
    return true;
  }
  case ExtInputSize:
    C.R[R0] = Input.size();
    return true;
  case ExtWriteOut: {
    uint64_t Buf = C.R[R0], Len = std::min<uint64_t>(C.R[R1], 1 << 20);
    if (Len) {
      if (!obj::isUserAddress(Buf) || !obj::isUserAddress(Buf + Len - 1))
        return raiseFault(FaultKind::BadMemory, Buf, StopOut);
      // Accumulated-output cap (MaxOutputBytes): faulting behaves as if
      // uncapped (checked above), but bytes past the cap are dropped.
      uint64_t Room = MaxOutputBytes > Output.size()
                          ? MaxOutputBytes - Output.size()
                          : 0;
      uint64_t N = std::min(Len, Room);
      if (N) {
        size_t Old = Output.size();
        Output.resize(Old + N);
        Mem.read(Buf, Output.data() + Old, N);
      }
    }
    return true;
  }
  case ExtMalloc: {
    uint64_t Addr = MallocFn(*this, C.R[R0]);
    C.R[R0] = Addr;
    // The runtime's allocator writes redzone shadow through Mem; a
    // refused page behind those writes surfaces here.
    if (__builtin_expect(Mem.oomPending(), 0)) {
      Mem.clearOomPending();
      return raiseFault(FaultKind::OutOfMemory, Addr, StopOut);
    }
    return true;
  }
  case ExtFree:
    FreeFn(*this, C.R[R0]);
    if (__builtin_expect(Mem.oomPending(), 0)) {
      Mem.clearOomPending();
      return raiseFault(FaultKind::OutOfMemory, C.R[R0], StopOut);
    }
    return true;
  case ExtAbort:
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = 134; // 128 + SIGABRT, as a shell would report
    return false;
  default:
    return raiseFault(FaultKind::BadExt, Index, StopOut);
  }
}

// Flag semantics, shared verbatim between the reference interpreter
// (exec) and the specialized micro-op handlers in runBlocks — one
// source of truth for how each operation sets FLAGS.
namespace {
inline void flagsZS(CPU &C, uint64_t V) {
  C.Flags &= ~(FlagZ | FlagS);
  if (V == 0)
    C.Flags |= FlagZ;
  if (V >> 63)
    C.Flags |= FlagS;
}
inline void flagsLogic(CPU &C, uint64_t V) {
  flagsZS(C, V);
  C.Flags &= ~(FlagC | FlagO);
}
inline void flagsAdd(CPU &C, uint64_t A, uint64_t B, uint64_t Res) {
  flagsLogic(C, Res);
  if (Res < A)
    C.Flags |= FlagC;
  if ((~(A ^ B) & (A ^ Res)) >> 63)
    C.Flags |= FlagO;
}
inline void flagsSub(CPU &C, uint64_t A, uint64_t B, uint64_t Res) {
  flagsLogic(C, Res);
  if (A < B)
    C.Flags |= FlagC;
  if (((A ^ B) & (A ^ Res)) >> 63)
    C.Flags |= FlagO;
}
} // namespace

bool Machine::exec(const Decoded &D, StopState &StopOut) {
  const Instruction &I = D.I;
  auto SetZS = [&](uint64_t V) { flagsZS(C, V); };
  auto ClearCO = [&] { C.Flags &= ~(FlagC | FlagO); };
  auto SrcValue = [&](const Operand &O) -> uint64_t {
    return O.isReg() ? C.R[O.R] : static_cast<uint64_t>(O.Imm);
  };
  auto DoAddFlags = [&](uint64_t A, uint64_t B, uint64_t Res) {
    flagsAdd(C, A, B, Res);
  };
  auto DoSubFlags = [&](uint64_t A, uint64_t B, uint64_t Res) {
    flagsSub(C, A, B, Res);
  };

  switch (I.Op) {
  case Opcode::MOV:
    C.R[I.A.R] = SrcValue(I.B);
    return true;
  case Opcode::LOAD:
  case Opcode::LOADS: {
    uint64_t V;
    switch (guestRead(effectiveAddr(I.B.M), V, I.Size,
                      I.Op == Opcode::LOADS, StopOut)) {
    case Access::Stopped:
      return false;
    case Access::Resumed:
      return true; // squashed
    case Access::Ok:
      break;
    }
    C.R[I.A.R] = V;
    return true;
  }
  case Opcode::STORE:
    return guestWrite(effectiveAddr(I.A.M), SrcValue(I.B), I.Size,
                      StopOut) != Access::Stopped;
  case Opcode::LEA:
    C.R[I.A.R] = effectiveAddr(I.B.M);
    return true;
  case Opcode::PUSH: {
    switch (guestWrite(C.R[SP] - 8, SrcValue(I.A), 8, StopOut)) {
    case Access::Stopped:
      return false;
    case Access::Resumed:
      return true; // squashed: SP unchanged
    case Access::Ok:
      break;
    }
    C.R[SP] -= 8;
    return true;
  }
  case Opcode::POP: {
    uint64_t V;
    switch (guestRead(C.R[SP], V, 8, false, StopOut)) {
    case Access::Stopped:
      return false;
    case Access::Resumed:
      return true; // squashed
    case Access::Ok:
      break;
    }
    C.R[I.A.R] = V;
    C.R[SP] += 8;
    return true;
  }
  case Opcode::ADD: {
    uint64_t A = C.R[I.A.R], B = SrcValue(I.B), Res = A + B;
    C.R[I.A.R] = Res;
    DoAddFlags(A, B, Res);
    return true;
  }
  case Opcode::SUB: {
    uint64_t A = C.R[I.A.R], B = SrcValue(I.B), Res = A - B;
    C.R[I.A.R] = Res;
    DoSubFlags(A, B, Res);
    return true;
  }
  case Opcode::AND:
    C.R[I.A.R] &= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::OR:
    C.R[I.A.R] |= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::XOR:
    C.R[I.A.R] ^= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::SHL:
    C.R[I.A.R] <<= (SrcValue(I.B) & 63);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::SHR:
    C.R[I.A.R] >>= (SrcValue(I.B) & 63);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::SAR: {
    int64_t V = static_cast<int64_t>(C.R[I.A.R]);
    C.R[I.A.R] = static_cast<uint64_t>(V >> (SrcValue(I.B) & 63));
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  }
  case Opcode::MUL:
    C.R[I.A.R] *= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::UDIV:
  case Opcode::UREM: {
    uint64_t B = SrcValue(I.B);
    if (B == 0)
      return raiseFault(FaultKind::DivByZero, C.PC, StopOut);
    uint64_t A = C.R[I.A.R];
    C.R[I.A.R] = I.Op == Opcode::UDIV ? A / B : A % B;
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  }
  case Opcode::NOT:
    C.R[I.A.R] = ~C.R[I.A.R];
    return true;
  case Opcode::NEG:
    C.R[I.A.R] = 0 - C.R[I.A.R];
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::CMP: {
    uint64_t A = C.R[I.A.R], B = SrcValue(I.B);
    DoSubFlags(A, B, A - B);
    return true;
  }
  case Opcode::TEST: {
    SetZS(C.R[I.A.R] & SrcValue(I.B));
    ClearCO();
    return true;
  }
  case Opcode::SET:
    C.R[I.A.R] = evalCond(I.CC, C.Flags) ? 1 : 0;
    return true;
  case Opcode::CMOV:
    if (evalCond(I.CC, C.Flags))
      C.R[I.A.R] = SrcValue(I.B);
    return true;
  case Opcode::JMP:
    C.PC += static_cast<uint64_t>(I.A.Imm);
    return true;
  case Opcode::JCC:
    if (evalCond(I.CC, C.Flags))
      C.PC += static_cast<uint64_t>(I.A.Imm);
    return true;
  case Opcode::JMPI:
    C.PC = C.R[I.A.R];
    return true;
  case Opcode::CALL:
  case Opcode::CALLI: {
    uint64_t Target = I.Op == Opcode::CALL
                          ? C.PC + static_cast<uint64_t>(I.A.Imm)
                          : C.R[I.A.R];
    switch (guestWrite(C.R[SP] - 8, C.PC, 8, StopOut)) {
    case Access::Stopped:
      return false;
    case Access::Resumed:
      return true; // squashed: no push, no branch
    case Access::Ok:
      break;
    }
    C.R[SP] -= 8;
    C.PC = Target;
    return true;
  }
  case Opcode::RET: {
    uint64_t V;
    switch (guestRead(C.R[SP], V, 8, false, StopOut)) {
    case Access::Stopped:
      return false;
    case Access::Resumed:
      return true; // squashed: the hook's PC (or fall-through) stands
    case Access::Ok:
      break;
    }
    C.R[SP] += 8;
    C.PC = V;
    return true;
  }
  case Opcode::NOP:
  case Opcode::MARKERNOP:
  case Opcode::FENCE:
    return true;
  case Opcode::EXT:
    return execExt(static_cast<uint64_t>(I.A.Imm), StopOut);
  case Opcode::HALT:
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = C.R[R0];
    return false;
  case Opcode::INTR:
    ++ExecutedIntrinsics;
    if (Intrinsics && !Intrinsics->onIntrinsic(*this, I)) {
      StopOut.Kind = StopKind::ExtError;
      return false;
    }
    // Intrinsic handlers write coverage/shadow state host-side through
    // Mem; a refused page behind those writes surfaces here, after the
    // handler, identically on every engine (the JIT's intrinsic run
    // helper performs the same check per uop).
    if (__builtin_expect(Mem.oomPending(), 0)) {
      Mem.clearOomPending();
      return raiseFault(FaultKind::OutOfMemory, C.PC, StopOut);
    }
    return true;
  case Opcode::NumOpcodes:
    break;
  }
  return raiseFault(FaultKind::BadFetch, C.PC, StopOut);
}

bool Machine::step(StopState &StopOut) {
  if (C.PC == HaltSentinel) {
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = C.R[R0];
    return false;
  }
  const Decoded *D = decodeAt(C.PC);
  if (!D) {
    if (!raiseFault(FaultKind::BadFetch, C.PC, StopOut))
      return false;
    return true; // fault hook redirected us
  }
  // PC points at the next instruction during execution, so CALL pushes
  // the right return address and branches are end-relative.
  C.PC += D->Length;
  ++ExecutedInsts;
  return exec(*D, StopOut);
}

Machine::Engine Machine::resolvedEngine() const {
  return resolveEngine(Eng);
}

Machine::Engine teapot::vm::resolveEngine(Machine::Engine E) {
  if (E == Machine::Engine::Jit && !Jit::available())
    return Machine::Engine::Block; // non-x86-64, or executable maps refused
  return E;
}

StopState Machine::run(uint64_t MaxInsts) {
  switch (resolvedEngine()) {
  case Engine::Interpreter:
    return runReference(MaxInsts);
  case Engine::Block:
    return runBlocks(MaxInsts);
  case Engine::Jit:
    return runJit(MaxInsts);
  }
  return runBlocks(MaxInsts);
}

/// The JIT driver: dispatches compiled blocks, falling back to step()
/// for PCs without a block (halt sentinel, wild fetches) and for the
/// budget tail — the same structure as runBlocks' dispatch loop, with
/// the uop loop replaced by a call into generated code. Counters and
/// the PC are settled by the generated code on every exit path, so the
/// accounting is identical to both other engines.
StopState Machine::runJit(uint64_t MaxInsts) {
  if (!JitTier) {
    JitTier = Jit::create(*this);
    if (!JitTier)
      return runBlocks(MaxInsts); // capability probe failed at runtime
  }
  if (JitTier->broken())
    JitTier->flush(); // re-seal attempt: the seal fault may be transient
  if (JitTier->broken()) {
    // W^X seal keeps failing: never execute writable code. The block
    // engine is bit-exact, so degrading is invisible to the guest.
    ++JitDegrades;
    return runBlocks(MaxInsts);
  }
  // Flush-thrash watchdog: injected arena faults (or pathological
  // code-region stores) can force a wholesale flush on every dispatch;
  // past this many flushes in one run the block engine takes over.
  constexpr uint64_t MaxJitFlushesPerRun = 8;
  const uint64_t FlushLimit = JitTier->flushCount() + MaxJitFlushesPerRun;
  StopState Stop;
  // StopState writes are one-shot within a run; clear the helpers'
  // sink so nothing stale leaks across runs.
  JitStop = StopState{};
  uint64_t Remaining = MaxInsts;
  for (;;) {
    if (__builtin_expect(BlocksEpoch != Mem.watchEpoch(), 0)) {
      // A store hit the code region: every block — and every compiled
      // chain — is stale. Flush the JIT first; it unlinks the JitCode
      // pointers of exactly the blocks clear() is about to destroy.
      JitTier->flush();
      Blocks.clear();
      BlocksEpoch = Mem.watchEpoch();
    }
    if (!Remaining) {
      Stop.Kind = StopKind::OutOfGas;
      return Stop;
    }
    DecodedBlock *B = Blocks.lookup(C.PC, Mem);
    const void *Entry = B ? JitTier->entry(*B) : nullptr;
    if (__builtin_expect(
            JitTier->broken() || JitTier->flushCount() > FlushLimit, 0)) {
      ++JitDegrades;
      return runBlocks(Remaining);
    }
    if (!Entry) {
      // No block here (sentinel, undecodable, outside code) or a block
      // too large for an empty arena: exact single-step semantics, one
      // budget unit per step() as in the reference loop.
      if (!step(Stop))
        return Stop;
      --Remaining;
      continue;
    }
    // Refill the in-code dispatch cache: the next computed branch
    // (CALL/RET/JMPI) to this PC re-enters compiled code directly,
    // without this loop.
    JitTier->noteDispatch(B->Entry, Entry);
    Jit::ExitState E = JitTier->run(Remaining, Entry);
    Remaining = E.Remaining;
    switch (E.Status) {
    case Jit::ExitDivert:
      continue; // control left compiled code; C.PC is correct
    case Jit::ExitStopped:
      return JitStop;
    case Jit::ExitBudget:
      // The budget expires inside the block at C.PC. Blocks elide dead
      // flag updates and defer PC writes, so the tail executes through
      // the reference step() path, which stops bit-exactly — the same
      // rule as runBlocks' enter_block check.
      while (Remaining) {
        if (!step(Stop))
          return Stop;
        --Remaining;
      }
      Stop.Kind = StopKind::OutOfGas;
      return Stop;
    }
  }
}

const char *teapot::vm::engineName(Machine::Engine E) {
  switch (E) {
  case Machine::Engine::Interpreter:
    return "interp";
  case Machine::Engine::Block:
    return "block";
  case Machine::Engine::Jit:
    return "jit";
  }
  return "?";
}

bool teapot::vm::parseEngineName(std::string_view Name,
                                 Machine::Engine &Out) {
  if (Name == "interp")
    Out = Machine::Engine::Interpreter;
  else if (Name == "block")
    Out = Machine::Engine::Block;
  else if (Name == "jit")
    Out = Machine::Engine::Jit;
  else
    return false;
  return true;
}

/// The reference interpreter: the original per-instruction loop. Every
/// step() call — including a fault-hook redirect that executes nothing —
/// consumes one budget unit; runBlocks replicates that accounting
/// exactly so the two engines stop at identical points.
StopState Machine::runReference(uint64_t MaxInsts) {
  StopState Stop;
  for (uint64_t N = 0; N != MaxInsts; ++N)
    if (!step(Stop))
      return Stop;
  Stop.Kind = StopKind::OutOfGas;
  return Stop;
}

StopState Machine::runBlocks(uint64_t MaxInsts) {
  StopState Stop;
  uint64_t Remaining = MaxInsts;
  DecodedBlock *B = nullptr;

  // Per-block execution state. Instruction-count bookkeeping is batched
  // per block and settled on every exit path, so final counts are
  // identical to the reference loop. The PC is likewise tracked locally
  // (accumulating encoded lengths) and written to the CPU only before
  // operations that can fault, stop, or be observed by a hook — so C.PC
  // and ExecutedInsts are stale *between* such points but exact at
  // every point anything can look (docs/VM.md).
  const Uop *UBase = nullptr;
  const Uop *U = nullptr;
  const Uop *UE = nullptr;
  uint64_t PC = 0;
  bool Diverted = false;

  // Effective address of a uop's pre-resolved memory operand.
  auto EA = [&](const Uop &Op) {
    uint64_t A = static_cast<uint64_t>(Op.Imm);
    if (Op.B != NoReg)
      A += C.R[Op.B];
    if (Op.X != NoReg)
      A += C.R[Op.X] << Op.ScaleLog;
    return A;
  };

  // Threaded dispatch: one handler label per UopKind, in exact enum
  // declaration order. Each handler ends in its own indirect jump,
  // which branch predictors track far better than one shared switch
  // jump — the classic token-threading layout.
  static const void *const Handlers[] = {
      &&H_Nop,      &&H_MovRR,    &&H_MovRI,    &&H_AddRR,    &&H_AddRI,
      &&H_AddRR_NF, &&H_AddRI_NF, &&H_SubRR,    &&H_SubRI,    &&H_SubRR_NF,
      &&H_SubRI_NF, &&H_CmpRR,    &&H_CmpRI,    &&H_TestRR,   &&H_TestRI,
      &&H_AndRR,    &&H_AndRI,    &&H_OrRR,     &&H_OrRI,     &&H_XorRR,
      &&H_XorRI,    &&H_ShlRR,    &&H_ShlRI,    &&H_ShrRR,    &&H_ShrRI,
      &&H_SarRR,    &&H_SarRI,    &&H_MulRR,    &&H_MulRI,    &&H_NotR,
      &&H_NegR,     &&H_SetCC,    &&H_CmovRR,   &&H_CmovRI,   &&H_Lea,
      &&H_Load,     &&H_LoadS,    &&H_StoreR,   &&H_PushR,    &&H_PushI,
      &&H_PopR,     &&H_Jmp,      &&H_Jcc,      &&H_Fallback, &&H_Intr,
  };
  static_assert(sizeof(Handlers) / sizeof(Handlers[0]) ==
                    static_cast<size_t>(UopKind::Intr) + 1,
                "handler table must cover every UopKind, in order");

// Advance to the next uop of the current block, or fall off its end.
#define TEAPOT_DISPATCH()                                                      \
  do {                                                                         \
    if (++U == UE)                                                             \
      goto block_exit;                                                         \
    PC += U->Len;                                                              \
    goto *Handlers[static_cast<uint8_t>(U->Kind)];                             \
  } while (0)

dispatch:
  if (__builtin_expect(BlocksEpoch != Mem.watchEpoch(), 0)) {
    // A store hit the code region: every block is stale.
    Blocks.clear();
    BlocksEpoch = Mem.watchEpoch();
    B = nullptr;
  }
  if (!B) {
    if (!Remaining)
      goto out_of_gas;
    B = Blocks.lookup(C.PC, Mem);
    if (!B) {
      // No block here: the halt sentinel, a PC outside the code region,
      // or an undecodable entry byte. Fall back to exact single-step
      // semantics (sentinel halt, BadFetch + fault-hook redirect); a
      // redirect consumes one budget unit, as in the reference loop.
      if (!step(Stop))
        return Stop;
      --Remaining;
      goto dispatch;
    }
  }
// Entered from `dispatch` above and directly from the taken-branch fast
// path (which has already verified the epoch and settled the finished
// block's counters).
enter_block:
  if (__builtin_expect(Remaining < B->Uops.size(), 0)) {
    // The budget expires inside this block. Blocks elide dead flag
    // updates and defer PC writes, both of which would become
    // observable at an arbitrary cutoff — so the final < MaxBlockInsts
    // instructions of a budgeted run execute through the reference
    // step() path instead, which stops bit-exactly.
    while (Remaining) {
      if (!step(Stop))
        return Stop;
      --Remaining;
    }
    goto out_of_gas;
  }
  UBase = B->Uops.data();
  U = UBase;
  UE = UBase + B->Uops.size();
  PC = B->Entry + U->Len;
  Diverted = false;
  goto *Handlers[static_cast<uint8_t>(U->Kind)];

H_Nop:
  TEAPOT_DISPATCH();
H_MovRR:
  C.R[U->A] = C.R[U->B];
  TEAPOT_DISPATCH();
H_MovRI:
  C.R[U->A] = static_cast<uint64_t>(U->Imm);
  TEAPOT_DISPATCH();
H_AddRR: {
  uint64_t A = C.R[U->A], S = C.R[U->B], Res = A + S;
  C.R[U->A] = Res;
  flagsAdd(C, A, S, Res);
  TEAPOT_DISPATCH();
}
H_AddRI: {
  uint64_t A = C.R[U->A], S = static_cast<uint64_t>(U->Imm), Res = A + S;
  C.R[U->A] = Res;
  flagsAdd(C, A, S, Res);
  TEAPOT_DISPATCH();
}
H_AddRR_NF:
  C.R[U->A] += C.R[U->B];
  TEAPOT_DISPATCH();
H_AddRI_NF:
  C.R[U->A] += static_cast<uint64_t>(U->Imm);
  TEAPOT_DISPATCH();
H_SubRR: {
  uint64_t A = C.R[U->A], S = C.R[U->B], Res = A - S;
  C.R[U->A] = Res;
  flagsSub(C, A, S, Res);
  TEAPOT_DISPATCH();
}
H_SubRI: {
  uint64_t A = C.R[U->A], S = static_cast<uint64_t>(U->Imm), Res = A - S;
  C.R[U->A] = Res;
  flagsSub(C, A, S, Res);
  TEAPOT_DISPATCH();
}
H_SubRR_NF:
  C.R[U->A] -= C.R[U->B];
  TEAPOT_DISPATCH();
H_SubRI_NF:
  C.R[U->A] -= static_cast<uint64_t>(U->Imm);
  TEAPOT_DISPATCH();
H_CmpRR: {
  uint64_t A = C.R[U->A], S = C.R[U->B];
  flagsSub(C, A, S, A - S);
  TEAPOT_DISPATCH();
}
H_CmpRI: {
  uint64_t A = C.R[U->A], S = static_cast<uint64_t>(U->Imm);
  flagsSub(C, A, S, A - S);
  TEAPOT_DISPATCH();
}
H_TestRR:
  flagsLogic(C, C.R[U->A] & C.R[U->B]);
  TEAPOT_DISPATCH();
H_TestRI:
  flagsLogic(C, C.R[U->A] & static_cast<uint64_t>(U->Imm));
  TEAPOT_DISPATCH();
H_AndRR:
  flagsLogic(C, C.R[U->A] &= C.R[U->B]);
  TEAPOT_DISPATCH();
H_AndRI:
  flagsLogic(C, C.R[U->A] &= static_cast<uint64_t>(U->Imm));
  TEAPOT_DISPATCH();
H_OrRR:
  flagsLogic(C, C.R[U->A] |= C.R[U->B]);
  TEAPOT_DISPATCH();
H_OrRI:
  flagsLogic(C, C.R[U->A] |= static_cast<uint64_t>(U->Imm));
  TEAPOT_DISPATCH();
H_XorRR:
  flagsLogic(C, C.R[U->A] ^= C.R[U->B]);
  TEAPOT_DISPATCH();
H_XorRI:
  flagsLogic(C, C.R[U->A] ^= static_cast<uint64_t>(U->Imm));
  TEAPOT_DISPATCH();
H_ShlRR:
  flagsLogic(C, C.R[U->A] <<= (C.R[U->B] & 63));
  TEAPOT_DISPATCH();
H_ShlRI:
  flagsLogic(C, C.R[U->A] <<= (U->Imm & 63));
  TEAPOT_DISPATCH();
H_ShrRR:
  flagsLogic(C, C.R[U->A] >>= (C.R[U->B] & 63));
  TEAPOT_DISPATCH();
H_ShrRI:
  flagsLogic(C, C.R[U->A] >>= (U->Imm & 63));
  TEAPOT_DISPATCH();
H_SarRR:
  C.R[U->A] = static_cast<uint64_t>(static_cast<int64_t>(C.R[U->A]) >>
                                    (C.R[U->B] & 63));
  flagsLogic(C, C.R[U->A]);
  TEAPOT_DISPATCH();
H_SarRI:
  C.R[U->A] = static_cast<uint64_t>(static_cast<int64_t>(C.R[U->A]) >>
                                    (U->Imm & 63));
  flagsLogic(C, C.R[U->A]);
  TEAPOT_DISPATCH();
H_MulRR:
  flagsLogic(C, C.R[U->A] *= C.R[U->B]);
  TEAPOT_DISPATCH();
H_MulRI:
  flagsLogic(C, C.R[U->A] *= static_cast<uint64_t>(U->Imm));
  TEAPOT_DISPATCH();
H_NotR:
  C.R[U->A] = ~C.R[U->A];
  TEAPOT_DISPATCH();
H_NegR:
  C.R[U->A] = 0 - C.R[U->A];
  flagsLogic(C, C.R[U->A]);
  TEAPOT_DISPATCH();
H_SetCC:
  C.R[U->A] = evalCond(static_cast<CondCode>(U->X), C.Flags) ? 1 : 0;
  TEAPOT_DISPATCH();
H_CmovRR:
  if (evalCond(static_cast<CondCode>(U->X), C.Flags))
    C.R[U->A] = C.R[U->B];
  TEAPOT_DISPATCH();
H_CmovRI:
  if (evalCond(static_cast<CondCode>(U->X), C.Flags))
    C.R[U->A] = static_cast<uint64_t>(U->Imm);
  TEAPOT_DISPATCH();
H_Lea:
  C.R[U->A] = EA(*U);
  TEAPOT_DISPATCH();
H_Load:
H_LoadS: {
  C.PC = PC; // a fault (hook, StopState) observes the PC
  uint64_t V;
  switch (guestRead(EA(*U), V, 1u << U->SizeLog, U->Kind == UopKind::LoadS,
                    Stop)) {
  case Access::Stopped:
    ExecutedInsts += static_cast<uint64_t>(U - UBase) + 1;
    return Stop;
  case Access::Resumed:
    ++U;
    Diverted = true;
    goto block_exit; // squashed; the hook may have redirected us
  case Access::Ok:
    break;
  }
  C.R[U->A] = V;
  TEAPOT_DISPATCH();
}
H_StoreR: {
  C.PC = PC;
  switch (guestWrite(EA(*U), C.R[U->A], 1u << U->SizeLog, Stop)) {
  case Access::Stopped:
    ExecutedInsts += static_cast<uint64_t>(U - UBase) + 1;
    return Stop;
  case Access::Resumed:
    ++U;
    Diverted = true;
    goto block_exit;
  case Access::Ok:
    break;
  }
  if (__builtin_expect(BlocksEpoch != Mem.watchEpoch(), 0)) {
    ++U;
    Diverted = true;
    goto block_exit; // the store patched code: this block is stale
  }
  TEAPOT_DISPATCH();
}
H_PushR:
H_PushI: {
  C.PC = PC;
  uint64_t V =
      U->Kind == UopKind::PushR ? C.R[U->A] : static_cast<uint64_t>(U->Imm);
  switch (guestWrite(C.R[SP] - 8, V, 8, Stop)) {
  case Access::Stopped:
    ExecutedInsts += static_cast<uint64_t>(U - UBase) + 1;
    return Stop;
  case Access::Resumed:
    ++U;
    Diverted = true;
    goto block_exit; // squashed: SP unchanged
  case Access::Ok:
    break;
  }
  C.R[SP] -= 8;
  if (__builtin_expect(BlocksEpoch != Mem.watchEpoch(), 0)) {
    ++U;
    Diverted = true;
    goto block_exit; // wild SP: the push patched code
  }
  TEAPOT_DISPATCH();
}
H_PopR: {
  C.PC = PC;
  uint64_t V;
  switch (guestRead(C.R[SP], V, 8, false, Stop)) {
  case Access::Stopped:
    ExecutedInsts += static_cast<uint64_t>(U - UBase) + 1;
    return Stop;
  case Access::Resumed:
    ++U;
    Diverted = true;
    goto block_exit; // squashed
  case Access::Ok:
    break;
  }
  C.R[U->A] = V;
  C.R[SP] += 8;
  TEAPOT_DISPATCH();
}
H_Jcc:
  if (!evalCond(static_cast<CondCode>(U->X), C.Flags))
    TEAPOT_DISPATCH();
  goto H_Jmp;
H_Jmp: {
  uint64_t T = PC + static_cast<uint64_t>(U->Imm);
  // This block is done: settle its counters here, once.
  uint64_t Done = static_cast<uint64_t>(U - UBase) + 1;
  ExecutedInsts += Done;
  Remaining -= Done;
  C.PC = T;
  // Taken-branch fast path: a chained successor re-enters the uop loop
  // directly, skipping the dispatch epilogue — this is what keeps hot
  // loop back-edges off the front-end entirely.
  DecodedBlock *N = B->Links[0].PC == T   ? B->Links[0].B
                    : B->Links[1].PC == T ? B->Links[1].B
                                          : nullptr;
  if (N && __builtin_expect(BlocksEpoch == Mem.watchEpoch(), 1)) {
    B = N;
    goto enter_block;
  }
  Diverted = true;
  goto block_exit_settled; // chain miss: let next() record the link
}
H_Fallback: {
  // Reference semantics on the original decoded instruction:
  // intrinsics, externals, calls/returns, division, HALT.
  C.PC = PC;
  if (!exec(B->Insts[U - UBase].D, Stop)) {
    ExecutedInsts += static_cast<uint64_t>(U - UBase) + 1;
    return Stop;
  }
  if (C.PC != PC || BlocksEpoch != Mem.watchEpoch()) {
    // Control transfer — a taken branch, a call/return, or a
    // hook/intrinsic redirect (rollback, trampoline, marker bounce) —
    // or a write that patched the code region. Exit the block; the
    // chain resolves hot successors without touching the index.
    ++U;
    Diverted = true;
    goto block_exit;
  }
  TEAPOT_DISPATCH();
}
H_Intr: {
  // Inline no-op fast path: when the handler-published view proves this
  // IntrinsicID is an architectural no-op in the current mode, retire it
  // without leaving the uop loop — no C.PC write, no handler call. The
  // lazy PC and batched budget stay exact: a no-op cannot observe them.
  if (__builtin_expect(FastPath.Enabled, 1)) {
    uint32_t Mask =
        FastPath.InSim ? FastPath.NoOpInSimMask : FastPath.NoOpNormalMask;
    bool Skip = (Mask >> U->X) & 1u;
    if (!Skip && !FastPath.InSim &&
        static_cast<isa::IntrinsicID>(U->X) == isa::IntrinsicID::CovGuard) {
      // Saturated (or out-of-range) coverage guards stop counting:
      // hitNormal would be a no-op.
      uint64_t Id = static_cast<uint32_t>(U->Imm);
      Skip = Id >= FastPath.NormalCovSize || FastPath.NormalCov[Id] == 0xff;
    }
    if (Skip) {
      ++ExecutedIntrinsics;
      ++IntrFastHits;
      TEAPOT_DISPATCH();
    }
  }
  // Slow path: exec()'s INTR semantics (Machine.cpp, `case Opcode::INTR`)
  // with the block's resolved TagProp target passed through. Any change
  // here must be mirrored there and in Jit::intrRunSlow.
  C.PC = PC;
  const BlockInst &BI = B->Insts[U - UBase];
  ++ExecutedIntrinsics;
  if (Intrinsics && !Intrinsics->onIntrinsicResolved(*this, BI.D.I,
                                                     BI.ResolvedNext)) {
    Stop.Kind = StopKind::ExtError;
    ExecutedInsts += static_cast<uint64_t>(U - UBase) + 1;
    return Stop;
  }
  if (__builtin_expect(Mem.oomPending(), 0)) {
    Mem.clearOomPending();
    if (!raiseFault(FaultKind::OutOfMemory, C.PC, Stop)) {
      ExecutedInsts += static_cast<uint64_t>(U - UBase) + 1;
      return Stop;
    }
  }
  if (C.PC != PC || BlocksEpoch != Mem.watchEpoch()) {
    // Handler redirect (rollback, trampoline) or a code-region write.
    ++U;
    Diverted = true;
    goto block_exit;
  }
  TEAPOT_DISPATCH();
}

#undef TEAPOT_DISPATCH

block_exit: {
  uint64_t Done = static_cast<uint64_t>(U - UBase);
  ExecutedInsts += Done;
  Remaining -= Done;
}
block_exit_settled:
  if (!Diverted)
    C.PC = PC; // settle the lazy PC at the block boundary
  B = Blocks.next(B, C.PC, Mem);
  goto dispatch;

out_of_gas:
  Stop.Kind = StopKind::OutOfGas;
  return Stop;
}
