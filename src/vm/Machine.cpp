//===- vm/Machine.cpp - TISA interpreter ----------------------------------===//

#include "vm/Machine.h"

#include "obj/Layout.h"

#include <algorithm>

using namespace teapot;
using namespace teapot::isa;
using namespace teapot::vm;

Machine::Machine() {
  MallocFn = [](Machine &M, uint64_t Size) {
    // Default bump allocator, 16-byte aligned, with a guard gap so that
    // adjacent allocations are distinguishable for debugging.
    uint64_t P = (M.HeapBump + 15) & ~15ULL;
    M.HeapBump = P + ((Size + 15) & ~15ULL) + 16;
    return P;
  };
  FreeFn = [](Machine &, uint64_t) {};
}

Error Machine::loadObject(const obj::ObjectFile &Obj) {
  ICache.clear();
  for (const obj::Section &S : Obj.Sections) {
    if (S.Kind == obj::SectionKind::Bss)
      continue; // sparse memory reads as zero
    if (!S.Bytes.empty())
      Mem.write(S.Addr, S.Bytes.data(), S.Bytes.size());
  }
  C = CPU();
  C.PC = Obj.Entry;
  C.R[SP] = obj::StackTop - 16;
  uint64_t Sentinel = HaltSentinel;
  Mem.write(C.R[SP], &Sentinel, 8);
  HeapBump = obj::HeapBase;
  ExecutedInsts = ExecutedIntrinsics = 0;
  Output.clear();
  InputCursor = 0;
  return Error::success();
}

void Machine::captureBaseline() {
  Mem.captureBaseline();
  BaselineCPU = C;
  BaselineHeapBump = HeapBump;
}

void Machine::resetToBaseline() {
  Mem.resetToBaseline();
  C = BaselineCPU;
  HeapBump = BaselineHeapBump;
  Output.clear();
  InputCursor = 0;
  ExecutedInsts = ExecutedIntrinsics = 0;
}

const Decoded *Machine::decodeAt(uint64_t Addr) {
  auto It = ICache.find(Addr);
  if (It != ICache.end())
    return &It->second;
  uint8_t Buf[40];
  Mem.read(Addr, Buf, sizeof(Buf));
  auto D = decode(Buf, sizeof(Buf), 0);
  if (!D)
    return nullptr;
  return &ICache.emplace(Addr, *D).first->second;
}

bool Machine::raiseFault(FaultKind K, uint64_t Addr, StopState &StopOut) {
  if (FaultHook && FaultHook(*this, K, Addr))
    return true;
  StopOut.Kind = StopKind::Fault;
  StopOut.Fault = K;
  StopOut.FaultAddr = Addr;
  return false;
}

bool Machine::guestRead(uint64_t Addr, uint64_t &Out, unsigned Size,
                        bool Signed, StopState &StopOut) {
  if (!obj::isUserAddress(Addr) || !obj::isUserAddress(Addr + Size - 1))
    return raiseFault(FaultKind::BadMemory, Addr, StopOut);
  uint64_t V = Mem.readUnsigned(Addr, Size);
  if (Signed && Size < 8) {
    uint64_t SignBit = 1ULL << (Size * 8 - 1);
    if (V & SignBit)
      V |= ~((SignBit << 1) - 1);
  }
  Out = V;
  return true;
}

bool Machine::guestWrite(uint64_t Addr, uint64_t V, unsigned Size,
                         StopState &StopOut) {
  if (!obj::isUserAddress(Addr) || !obj::isUserAddress(Addr + Size - 1))
    return raiseFault(FaultKind::BadMemory, Addr, StopOut);
  Mem.writeUnsigned(Addr, V, Size);
  return true;
}

bool Machine::execExt(uint64_t Index, StopState &StopOut) {
  switch (Index) {
  case ExtExit:
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = C.R[R0];
    return false;
  case ExtReadInput: {
    uint64_t Buf = C.R[R0], Len = C.R[R1];
    uint64_t Avail = Input.size() - InputCursor;
    uint64_t N = std::min(Len, Avail);
    if (N) {
      if (!obj::isUserAddress(Buf) || !obj::isUserAddress(Buf + N - 1))
        return raiseFault(FaultKind::BadMemory, Buf, StopOut);
      Mem.write(Buf, Input.data() + InputCursor, N);
      if (InputReadHook)
        InputReadHook(Buf, N, InputCursor);
      InputCursor += N;
    }
    C.R[R0] = N;
    return true;
  }
  case ExtInputSize:
    C.R[R0] = Input.size();
    return true;
  case ExtWriteOut: {
    uint64_t Buf = C.R[R0], Len = std::min<uint64_t>(C.R[R1], 1 << 20);
    if (Len) {
      if (!obj::isUserAddress(Buf) || !obj::isUserAddress(Buf + Len - 1))
        return raiseFault(FaultKind::BadMemory, Buf, StopOut);
      size_t Old = Output.size();
      Output.resize(Old + Len);
      Mem.read(Buf, Output.data() + Old, Len);
    }
    return true;
  }
  case ExtMalloc:
    C.R[R0] = MallocFn(*this, C.R[R0]);
    return true;
  case ExtFree:
    FreeFn(*this, C.R[R0]);
    return true;
  case ExtAbort:
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = 134; // 128 + SIGABRT, as a shell would report
    return false;
  default:
    return raiseFault(FaultKind::BadExt, Index, StopOut);
  }
}

bool Machine::exec(const Decoded &D, StopState &StopOut) {
  const Instruction &I = D.I;
  auto SetZS = [&](uint64_t V) {
    C.Flags &= ~(FlagZ | FlagS);
    if (V == 0)
      C.Flags |= FlagZ;
    if (V >> 63)
      C.Flags |= FlagS;
  };
  auto ClearCO = [&] { C.Flags &= ~(FlagC | FlagO); };
  auto SrcValue = [&](const Operand &O) -> uint64_t {
    return O.isReg() ? C.R[O.R] : static_cast<uint64_t>(O.Imm);
  };
  auto DoAddFlags = [&](uint64_t A, uint64_t B, uint64_t Res) {
    SetZS(Res);
    ClearCO();
    if (Res < A)
      C.Flags |= FlagC;
    if ((~(A ^ B) & (A ^ Res)) >> 63)
      C.Flags |= FlagO;
  };
  auto DoSubFlags = [&](uint64_t A, uint64_t B, uint64_t Res) {
    SetZS(Res);
    ClearCO();
    if (A < B)
      C.Flags |= FlagC;
    if (((A ^ B) & (A ^ Res)) >> 63)
      C.Flags |= FlagO;
  };

  switch (I.Op) {
  case Opcode::MOV:
    C.R[I.A.R] = SrcValue(I.B);
    return true;
  case Opcode::LOAD:
  case Opcode::LOADS: {
    uint64_t V;
    if (!guestRead(effectiveAddr(I.B.M), V, I.Size, I.Op == Opcode::LOADS,
                   StopOut))
      return false;
    C.R[I.A.R] = V;
    return true;
  }
  case Opcode::STORE:
    return guestWrite(effectiveAddr(I.A.M), SrcValue(I.B), I.Size, StopOut);
  case Opcode::LEA:
    C.R[I.A.R] = effectiveAddr(I.B.M);
    return true;
  case Opcode::PUSH: {
    C.R[SP] -= 8;
    return guestWrite(C.R[SP], SrcValue(I.A), 8, StopOut);
  }
  case Opcode::POP: {
    uint64_t V;
    if (!guestRead(C.R[SP], V, 8, false, StopOut))
      return false;
    C.R[I.A.R] = V;
    C.R[SP] += 8;
    return true;
  }
  case Opcode::ADD: {
    uint64_t A = C.R[I.A.R], B = SrcValue(I.B), Res = A + B;
    C.R[I.A.R] = Res;
    DoAddFlags(A, B, Res);
    return true;
  }
  case Opcode::SUB: {
    uint64_t A = C.R[I.A.R], B = SrcValue(I.B), Res = A - B;
    C.R[I.A.R] = Res;
    DoSubFlags(A, B, Res);
    return true;
  }
  case Opcode::AND:
    C.R[I.A.R] &= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::OR:
    C.R[I.A.R] |= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::XOR:
    C.R[I.A.R] ^= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::SHL:
    C.R[I.A.R] <<= (SrcValue(I.B) & 63);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::SHR:
    C.R[I.A.R] >>= (SrcValue(I.B) & 63);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::SAR: {
    int64_t V = static_cast<int64_t>(C.R[I.A.R]);
    C.R[I.A.R] = static_cast<uint64_t>(V >> (SrcValue(I.B) & 63));
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  }
  case Opcode::MUL:
    C.R[I.A.R] *= SrcValue(I.B);
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::UDIV:
  case Opcode::UREM: {
    uint64_t B = SrcValue(I.B);
    if (B == 0)
      return raiseFault(FaultKind::DivByZero, C.PC, StopOut);
    uint64_t A = C.R[I.A.R];
    C.R[I.A.R] = I.Op == Opcode::UDIV ? A / B : A % B;
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  }
  case Opcode::NOT:
    C.R[I.A.R] = ~C.R[I.A.R];
    return true;
  case Opcode::NEG:
    C.R[I.A.R] = 0 - C.R[I.A.R];
    SetZS(C.R[I.A.R]);
    ClearCO();
    return true;
  case Opcode::CMP: {
    uint64_t A = C.R[I.A.R], B = SrcValue(I.B);
    DoSubFlags(A, B, A - B);
    return true;
  }
  case Opcode::TEST: {
    SetZS(C.R[I.A.R] & SrcValue(I.B));
    ClearCO();
    return true;
  }
  case Opcode::SET:
    C.R[I.A.R] = evalCond(I.CC, C.Flags) ? 1 : 0;
    return true;
  case Opcode::CMOV:
    if (evalCond(I.CC, C.Flags))
      C.R[I.A.R] = SrcValue(I.B);
    return true;
  case Opcode::JMP:
    C.PC += static_cast<uint64_t>(I.A.Imm);
    return true;
  case Opcode::JCC:
    if (evalCond(I.CC, C.Flags))
      C.PC += static_cast<uint64_t>(I.A.Imm);
    return true;
  case Opcode::JMPI:
    C.PC = C.R[I.A.R];
    return true;
  case Opcode::CALL: {
    C.R[SP] -= 8;
    if (!guestWrite(C.R[SP], C.PC, 8, StopOut))
      return false;
    C.PC += static_cast<uint64_t>(I.A.Imm);
    return true;
  }
  case Opcode::CALLI: {
    uint64_t Target = C.R[I.A.R];
    C.R[SP] -= 8;
    if (!guestWrite(C.R[SP], C.PC, 8, StopOut))
      return false;
    C.PC = Target;
    return true;
  }
  case Opcode::RET: {
    uint64_t V;
    if (!guestRead(C.R[SP], V, 8, false, StopOut))
      return false;
    C.R[SP] += 8;
    C.PC = V;
    return true;
  }
  case Opcode::NOP:
  case Opcode::MARKERNOP:
  case Opcode::FENCE:
    return true;
  case Opcode::EXT:
    return execExt(static_cast<uint64_t>(I.A.Imm), StopOut);
  case Opcode::HALT:
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = C.R[R0];
    return false;
  case Opcode::INTR:
    ++ExecutedIntrinsics;
    if (Intrinsics && !Intrinsics->onIntrinsic(*this, I)) {
      StopOut.Kind = StopKind::ExtError;
      return false;
    }
    return true;
  case Opcode::NumOpcodes:
    break;
  }
  return raiseFault(FaultKind::BadFetch, C.PC, StopOut);
}

bool Machine::step(StopState &StopOut) {
  if (C.PC == HaltSentinel) {
    StopOut.Kind = StopKind::Halted;
    StopOut.ExitStatus = C.R[R0];
    return false;
  }
  const Decoded *D = decodeAt(C.PC);
  if (!D) {
    if (!raiseFault(FaultKind::BadFetch, C.PC, StopOut))
      return false;
    return true; // fault hook redirected us
  }
  // PC points at the next instruction during execution, so CALL pushes
  // the right return address and branches are end-relative.
  C.PC += D->Length;
  ++ExecutedInsts;
  return exec(*D, StopOut);
}

StopState Machine::run(uint64_t MaxInsts) {
  StopState Stop;
  for (uint64_t N = 0; N != MaxInsts; ++N)
    if (!step(Stop))
      return Stop;
  Stop.Kind = StopKind::OutOfGas;
  return Stop;
}
