//===- vm/Memory.cpp ------------------------------------------------------===//

#include "vm/Memory.h"

#include "support/FaultInjector.h"

using namespace teapot;
using namespace teapot::vm;

const Memory::PageCell *Memory::tlbFill(uint64_t Idx) const {
  ++SlowPathCalls;
  auto It = Pages.find(Idx);
  PageCell *Cell = It == Pages.end() ? nullptr : It->second.get();
  tlbSlot(Idx) = {Idx, Cell};
  return Cell;
}

Memory::PageCell *Memory::pageForWrite(uint64_t Idx) {
  ++SlowPathCalls;
  auto It = Pages.find(Idx);
  if (It == Pages.end()) {
    // Materialization attempt. Refusals (injected fault, or the MaxPages
    // ceiling) are a pure function of the guest write sequence: the JIT
    // inline store fast path only hits already-dirty cached pages, so
    // every engine reaches this point for exactly the same writes.
    if (TrackDirty) {
      bool Refuse = Faults && Faults->shouldFail("mem.page_alloc");
      if (MaxPages && Pages.size() >= MaxPages)
        Refuse = true;
      if (Refuse) {
        OomPending = true;
        Scratch.Data.fill(0);
        return &Scratch;
      }
    }
    auto P = std::make_unique<PageCell>();
    P->Data.fill(0);
    It = Pages.emplace(Idx, std::move(P)).first;
  }
  PageCell *Cell = It->second.get();
  tlbSlot(Idx) = {Idx, Cell};
  markDirty(Idx, *Cell);
  return Cell;
}

void Memory::read(uint64_t Addr, void *Out, size_t N) const {
  auto *Dst = static_cast<uint8_t *>(Out);
  while (N) {
    uint64_t Off = Addr & (PageSize - 1);
    size_t Chunk = static_cast<size_t>(
        std::min<uint64_t>(N, PageSize - Off));
    const PageCell *Cell = tlbLookup(Addr >> PageShift);
    if (!Cell)
      memset(Dst, 0, Chunk);
    else
      memcpy(Dst, Cell->Data.data() + Off, Chunk);
    Dst += Chunk;
    Addr += Chunk;
    N -= Chunk;
  }
}

void Memory::readCode(uint64_t Addr, void *Out, size_t N) const {
  // Same path as read(), with the counter deltas discarded: the TLB
  // still warms (fetches should stay fast), only the accounting is
  // suppressed.
  uint64_t G = GuestHits, R = RuntimeHits, S = SlowPathCalls;
  read(Addr, Out, N);
  GuestHits = G;
  RuntimeHits = R;
  SlowPathCalls = S;
}

void Memory::write(uint64_t Addr, const void *In, size_t N) {
  auto *Src = static_cast<const uint8_t *>(In);
  while (N) {
    uint64_t Off = Addr & (PageSize - 1);
    size_t Chunk = static_cast<size_t>(
        std::min<uint64_t>(N, PageSize - Off));
    memcpy(tlbLookupWrite(Addr >> PageShift)->Data.data() + Off, Src, Chunk);
    Src += Chunk;
    Addr += Chunk;
    N -= Chunk;
  }
}

static bool isZeroPage(const Memory::Page &P) {
  // Word-wise scan (the compiler vectorizes the 8-byte loop); this runs
  // over every mapped page on each captureBaseline, so the old per-byte
  // loop was a measurable slice of campaign startup.
  uint64_t Acc = 0;
  const uint8_t *D = P.data();
  for (size_t I = 0; I != Memory::PageSize; I += 8) {
    uint64_t W;
    memcpy(&W, D + I, 8);
    Acc |= W;
  }
  return Acc == 0;
}

void Memory::captureBaseline() {
  Baseline.clear();
  for (auto It = Pages.begin(); It != Pages.end();) {
    if (isZeroPage(It->second->Data)) {
      // Reclaim: an unmapped page reads as zero, so this page needs
      // neither a live mapping nor a snapshot copy.
      It = Pages.erase(It);
      continue;
    }
    It->second->Dirty = false;
    Baseline.emplace(It->first, std::make_unique<Page>(It->second->Data));
    ++It;
  }
  DirtyList.clear();
  TrackDirty = true;
  flushTLB(); // reclaimed pages may be cached
  // Accounting starts fresh at the baseline: the load/attach traffic
  // above is not part of any execution.
  resetHotPathCounters();
}

size_t Memory::resetToBaseline() {
  size_t Restored = 0;
  for (uint64_t Idx : DirtyList) {
    auto PIt = Pages.find(Idx);
    if (PIt == Pages.end())
      continue; // unreachable: a dirty page is by construction mapped
    if (Idx - WatchLoPage <= WatchPageSpan)
      ++WatchEpoch; // restoring (or unmapping) a code page changes it
    auto BIt = Baseline.find(Idx);
    if (BIt == Baseline.end()) {
      Pages.erase(PIt); // materialized after capture (or zero at capture)
    } else {
      PIt->second->Data = *BIt->second;
      PIt->second->Dirty = false;
    }
    ++Restored;
  }
  DirtyList.clear();
  OomPending = false; // per-execution condition
  flushTLB(); // unmapped pages may be cached
  return Restored;
}
