//===- vm/Memory.cpp ------------------------------------------------------===//

#include "vm/Memory.h"

using namespace teapot;
using namespace teapot::vm;

void Memory::read(uint64_t Addr, void *Out, size_t N) const {
  auto *Dst = static_cast<uint8_t *>(Out);
  while (N) {
    uint64_t PageIdx = Addr / PageSize;
    uint64_t Off = Addr % PageSize;
    size_t Chunk = static_cast<size_t>(
        std::min<uint64_t>(N, PageSize - Off));
    auto It = Pages.find(PageIdx);
    if (It == Pages.end())
      memset(Dst, 0, Chunk);
    else
      memcpy(Dst, It->second->data() + Off, Chunk);
    Dst += Chunk;
    Addr += Chunk;
    N -= Chunk;
  }
}

Memory::Page *Memory::pageForWrite(uint64_t PageIdx) {
  auto It = Pages.find(PageIdx);
  if (It == Pages.end()) {
    auto P = std::make_unique<Page>();
    P->fill(0);
    It = Pages.emplace(PageIdx, std::move(P)).first;
  }
  if (TrackDirty)
    Dirty.insert(PageIdx);
  return It->second.get();
}

void Memory::write(uint64_t Addr, const void *In, size_t N) {
  auto *Src = static_cast<const uint8_t *>(In);
  while (N) {
    uint64_t PageIdx = Addr / PageSize;
    uint64_t Off = Addr % PageSize;
    size_t Chunk = static_cast<size_t>(
        std::min<uint64_t>(N, PageSize - Off));
    memcpy(pageForWrite(PageIdx)->data() + Off, Src, Chunk);
    Src += Chunk;
    Addr += Chunk;
    N -= Chunk;
  }
}

static bool isZeroPage(const Memory::Page &P) {
  for (uint8_t B : P)
    if (B != 0)
      return false;
  return true;
}

void Memory::captureBaseline() {
  Baseline.clear();
  for (auto It = Pages.begin(); It != Pages.end();) {
    if (isZeroPage(*It->second)) {
      // Reclaim: an unmapped page reads as zero, so this page needs
      // neither a live mapping nor a snapshot copy.
      It = Pages.erase(It);
      continue;
    }
    Baseline.emplace(It->first, std::make_unique<Page>(*It->second));
    ++It;
  }
  Dirty.clear();
  TrackDirty = true;
}

size_t Memory::resetToBaseline() {
  size_t Restored = 0;
  for (uint64_t Idx : Dirty) {
    auto BIt = Baseline.find(Idx);
    if (BIt == Baseline.end())
      Pages.erase(Idx); // materialized after capture (or zero at capture)
    else
      *Pages[Idx] = *BIt->second;
    ++Restored;
  }
  Dirty.clear();
  return Restored;
}
