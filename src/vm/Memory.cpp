//===- vm/Memory.cpp ------------------------------------------------------===//

#include "vm/Memory.h"

using namespace teapot;
using namespace teapot::vm;

void Memory::read(uint64_t Addr, void *Out, size_t N) const {
  auto *Dst = static_cast<uint8_t *>(Out);
  while (N) {
    uint64_t PageIdx = Addr / PageSize;
    uint64_t Off = Addr % PageSize;
    size_t Chunk = static_cast<size_t>(
        std::min<uint64_t>(N, PageSize - Off));
    auto It = Pages.find(PageIdx);
    if (It == Pages.end())
      memset(Dst, 0, Chunk);
    else
      memcpy(Dst, It->second->data() + Off, Chunk);
    Dst += Chunk;
    Addr += Chunk;
    N -= Chunk;
  }
}

Memory::Page *Memory::pageForWrite(uint64_t PageIdx) {
  auto It = Pages.find(PageIdx);
  if (It == Pages.end()) {
    auto P = std::make_unique<Page>();
    P->fill(0);
    It = Pages.emplace(PageIdx, std::move(P)).first;
  }
  if (TrackDirty)
    Dirty.insert(PageIdx);
  return It->second.get();
}

void Memory::write(uint64_t Addr, const void *In, size_t N) {
  auto *Src = static_cast<const uint8_t *>(In);
  while (N) {
    uint64_t PageIdx = Addr / PageSize;
    uint64_t Off = Addr % PageSize;
    size_t Chunk = static_cast<size_t>(
        std::min<uint64_t>(N, PageSize - Off));
    memcpy(pageForWrite(PageIdx)->data() + Off, Src, Chunk);
    Src += Chunk;
    Addr += Chunk;
    N -= Chunk;
  }
}

void Memory::captureBaseline() {
  Baseline.clear();
  for (const auto &[Idx, P] : Pages)
    Baseline.emplace(Idx, std::make_unique<Page>(*P));
  Dirty.clear();
  TrackDirty = true;
}

void Memory::resetToBaseline() {
  for (uint64_t Idx : Dirty) {
    auto BIt = Baseline.find(Idx);
    if (BIt == Baseline.end())
      Pages.erase(Idx);
    else
      *Pages[Idx] = *BIt->second;
  }
  Dirty.clear();
}
