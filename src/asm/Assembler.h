//===- asm/Assembler.h - Two-pass TISA assembler ------------------*- C++ -*-===//
///
/// \file
/// Assembles TISA assembly text into a fully linked TBF object with
/// sections placed at the fixed obj::Layout addresses. All symbols must
/// resolve within the module (there is no separate linker; the five
/// workload programs are each one module, like the statically linked
/// binaries the paper evaluates).
///
/// Syntax overview (see tests/asm_test.cpp for a tour):
///
///   ; comment                 # comment
///   .text / .data / .rodata / .bss      section switch
///   .global name / .func name / .entry name
///   label:
///   .byte 1, 2   .word 3   .dword 4   .quad sym+8   .zero 16  .space 16
///   .ascii "s"   .asciz "s"   .align 8
///   mov r0, 42            mov r1, r0          mov r2, sym
///   ld8 r0, [r1 + r2*8 + 16]                  st1 [buf + r0], 7
///   lea r0, [table]       add r0, 1           cmp r0, r1
///   j.lt target           jmp target          call fn
///   jmpi r0               calli r1            ret
///   push r0               pop r1              set.eq r0
///   cmov.ne r0, r1        fence               ext 3
///   halt                  nop                 markernop
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_ASM_ASSEMBLER_H
#define TEAPOT_ASM_ASSEMBLER_H

#include "obj/ObjectFile.h"
#include "support/Error.h"

#include <string_view>

namespace teapot {
namespace assembler {

/// Assembles \p Source into a linked object. On failure the error message
/// includes the 1-based source line number.
Expected<obj::ObjectFile> assemble(std::string_view Source);

} // namespace assembler
} // namespace teapot

#endif // TEAPOT_ASM_ASSEMBLER_H
