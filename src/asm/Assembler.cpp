//===- asm/Assembler.cpp - Two-pass TISA assembler -------------------------===//

#include "asm/Assembler.h"

#include "isa/Encoding.h"
#include "isa/Instruction.h"
#include "obj/Layout.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>

using namespace teapot;
using namespace teapot::assembler;
using namespace teapot::isa;
using namespace teapot::obj;

namespace {

/// How a fixup patches its field once the symbol resolves.
enum class FixupKind : uint8_t {
  Abs64,  // 8-byte absolute address (imm operands, .quad, mem disp)
  RelEnd, // 8-byte branch offset relative to the end of the instruction
};

struct Fixup {
  FixupKind Kind;
  unsigned SectionIdx;
  uint64_t FieldOffset;  // where the 8 bytes live, within the section
  uint64_t InstEnd;      // section offset just past the instruction
  std::string Symbol;
  int64_t Addend;
  unsigned Line;
};

/// A symbolic expression of the form `symbol + constant` (either part may
/// be absent).
struct SymExpr {
  std::string Symbol; // empty if pure constant
  int64_t Constant = 0;
};

class Assembler {
public:
  Expected<ObjectFile> run(std::string_view Source);

private:
  ObjectFile Obj;
  std::vector<Fixup> Fixups;
  std::map<std::string, unsigned> SymbolIdx; // name -> index in Obj.Symbols
  std::vector<std::string> Globals;
  std::vector<std::string> Funcs;
  std::string EntryName = "main";
  unsigned CurSection = 0; // index into Obj.Sections
  unsigned Line = 0;
  std::string ErrMsg;

  Section &cur() { return Obj.Sections[CurSection]; }

  bool fail(const std::string &Msg) {
    ErrMsg = formatString("line %u: %s", Line, Msg.c_str());
    return false;
  }

  bool defineSymbol(const std::string &Name, SymbolKind Kind);
  bool handleDirective(std::string_view Dir, std::string_view Rest);
  bool handleInstruction(std::string_view Mnemonic, std::string_view Rest);
  bool emitData(unsigned Width, std::string_view Rest);

  bool parseSymExpr(std::string_view S, SymExpr &Out);
  bool parseOperandToken(std::string_view Tok, Operand &Out,
                         std::optional<SymExpr> &Sym);
  bool parseMemRef(std::string_view Body, MemRef &Out,
                   std::optional<SymExpr> &DispSym);
  bool applyFixups();
};

} // namespace

bool Assembler::defineSymbol(const std::string &Name, SymbolKind Kind) {
  if (SymbolIdx.count(Name))
    return fail(formatString("duplicate symbol '%s'", Name.c_str()));
  Symbol S;
  S.Name = Name;
  S.Kind = Kind;
  // Address = section base + current offset; section bases are assigned
  // up front, so this is final.
  S.Addr = cur().Addr + cur().size();
  SymbolIdx[Name] = static_cast<unsigned>(Obj.Symbols.size());
  Obj.Symbols.push_back(std::move(S));
  return true;
}

bool Assembler::parseSymExpr(std::string_view S, SymExpr &Out) {
  S = trim(S);
  if (S.empty())
    return fail("empty expression");
  Out = SymExpr();
  // Split an optional trailing +const / -const off a leading symbol.
  // Pure integers are handled first.
  if (parseInt(S, Out.Constant))
    return true;
  size_t Split = S.size();
  for (size_t I = 1; I < S.size(); ++I) {
    if (S[I] == '+' || S[I] == '-') {
      Split = I;
      break;
    }
  }
  std::string_view Name = trim(S.substr(0, Split));
  if (Name.empty() ||
      !(isalpha(static_cast<unsigned char>(Name[0])) || Name[0] == '_' ||
        Name[0] == '.' || Name[0] == '$'))
    return fail(formatString("malformed expression '%.*s'",
                             static_cast<int>(S.size()), S.data()));
  Out.Symbol = std::string(Name);
  if (Split < S.size()) {
    int64_t C;
    std::string_view Tail = S.substr(Split);
    // Keep the sign: "+8" / "-8".
    if (!parseInt(Tail, C))
      return fail(formatString("malformed offset '%.*s'",
                               static_cast<int>(Tail.size()), Tail.data()));
    Out.Constant = C;
  }
  return true;
}

bool Assembler::parseMemRef(std::string_view Body, MemRef &Out,
                            std::optional<SymExpr> &DispSym) {
  Out = MemRef();
  DispSym.reset();
  int64_t Disp = 0;
  // Split on top-level + and - (memrefs contain no parentheses).
  size_t Start = 0;
  bool Negative = false;
  for (size_t I = 0; I <= Body.size(); ++I) {
    if (I != Body.size() && Body[I] != '+' && Body[I] != '-')
      continue;
    // Don't split a leading sign of a term.
    if (I != Body.size() && trim(Body.substr(Start, I - Start)).empty())
      continue;
    std::string_view Term = trim(Body.substr(Start, I - Start));
    if (Term.empty())
      return fail("malformed memory operand");
    // Term forms: reg | reg*scale | integer | symbol.
    size_t Star = Term.find('*');
    if (Star != std::string_view::npos) {
      std::string_view RegStr = trim(Term.substr(0, Star));
      std::string_view ScaleStr = trim(Term.substr(Star + 1));
      Reg R = parseRegName(RegStr.data(), static_cast<unsigned>(RegStr.size()));
      int64_t Scale;
      if (R == NoReg || !parseInt(ScaleStr, Scale) ||
          (Scale != 1 && Scale != 2 && Scale != 4 && Scale != 8) || Negative)
        return fail("malformed scaled-index term");
      if (Out.Index != NoReg)
        return fail("multiple index registers");
      Out.Index = R;
      Out.Scale = static_cast<uint8_t>(Scale);
    } else if (Reg R = parseRegName(Term.data(),
                                    static_cast<unsigned>(Term.size()));
               R != NoReg) {
      if (Negative)
        return fail("cannot negate a register in a memory operand");
      if (Out.Base == NoReg)
        Out.Base = R;
      else if (Out.Index == NoReg)
        Out.Index = R;
      else
        return fail("too many registers in memory operand");
    } else if (int64_t V; parseInt(Term, V)) {
      Disp += Negative ? -V : V;
    } else {
      SymExpr E;
      if (!parseSymExpr(Term, E))
        return false;
      if (DispSym || Negative)
        return fail("unsupported symbolic displacement");
      DispSym = E;
    }
    if (I != Body.size())
      Negative = Body[I] == '-';
    Start = I + 1;
  }
  Out.Disp = Disp + (DispSym ? DispSym->Constant : 0);
  if (DispSym)
    DispSym->Constant = Out.Disp; // full addend carried by the fixup
  return true;
}

bool Assembler::parseOperandToken(std::string_view Tok, Operand &Out,
                                  std::optional<SymExpr> &Sym) {
  Sym.reset();
  Tok = trim(Tok);
  if (Tok.empty())
    return fail("empty operand");
  if (Tok.front() == '[') {
    if (Tok.back() != ']')
      return fail("unterminated memory operand");
    MemRef M;
    std::optional<SymExpr> DispSym;
    if (!parseMemRef(Tok.substr(1, Tok.size() - 2), M, DispSym))
      return false;
    Out = Operand::mem(M);
    if (DispSym && !DispSym->Symbol.empty())
      Sym = DispSym;
    return true;
  }
  if (Reg R = parseRegName(Tok.data(), static_cast<unsigned>(Tok.size()));
      R != NoReg) {
    Out = Operand::reg(R);
    return true;
  }
  SymExpr E;
  if (!parseSymExpr(Tok, E))
    return false;
  Out = Operand::imm(E.Constant);
  if (!E.Symbol.empty())
    Sym = E;
  return true;
}

bool Assembler::emitData(unsigned Width, std::string_view Rest) {
  if (cur().Kind == SectionKind::Bss)
    return fail("data in .bss section");
  for (std::string_view Field : split(Rest, ',')) {
    SymExpr E;
    if (!parseSymExpr(Field, E))
      return false;
    if (!E.Symbol.empty()) {
      if (Width != 8)
        return fail("symbolic data requires .quad");
      Fixups.push_back({FixupKind::Abs64, CurSection, cur().Bytes.size(), 0,
                        E.Symbol, E.Constant, Line});
      Reloc R;
      R.Kind = RelocKind::Abs64;
      R.SectionIndex = CurSection;
      R.Offset = cur().Bytes.size();
      R.SymbolName = E.Symbol;
      R.Addend = E.Constant;
      Obj.Relocs.push_back(std::move(R));
      E.Constant = 0;
    }
    for (unsigned I = 0; I != Width; ++I)
      cur().Bytes.push_back(
          static_cast<uint8_t>(static_cast<uint64_t>(E.Constant) >> (I * 8)));
  }
  return true;
}

bool Assembler::handleDirective(std::string_view Dir, std::string_view Rest) {
  auto SectionIndexByName = [&](const char *Name) -> unsigned {
    for (unsigned I = 0; I != Obj.Sections.size(); ++I)
      if (Obj.Sections[I].Name == Name)
        return I;
    assert(false && "section not pre-created");
    return 0;
  };
  if (Dir == ".text" || Dir == ".data" || Dir == ".rodata" || Dir == ".bss") {
    CurSection = SectionIndexByName(std::string(Dir).c_str());
    return true;
  }
  if (Dir == ".global" || Dir == ".func" || Dir == ".entry") {
    std::string Name(trim(Rest));
    if (Name.empty())
      return fail("missing symbol name");
    if (Dir == ".global")
      Globals.push_back(Name);
    else if (Dir == ".func")
      Funcs.push_back(Name);
    else
      EntryName = Name;
    return true;
  }
  if (Dir == ".byte")
    return emitData(1, Rest);
  if (Dir == ".word")
    return emitData(2, Rest);
  if (Dir == ".dword")
    return emitData(4, Rest);
  if (Dir == ".quad")
    return emitData(8, Rest);
  if (Dir == ".zero" || Dir == ".space") {
    int64_t N;
    if (!parseInt(Rest, N) || N < 0)
      return fail("malformed size");
    if (cur().Kind == SectionKind::Bss)
      cur().BssSize += static_cast<uint64_t>(N);
    else
      cur().Bytes.insert(cur().Bytes.end(), static_cast<size_t>(N), 0);
    return true;
  }
  if (Dir == ".ascii" || Dir == ".asciz") {
    std::string_view S = trim(Rest);
    if (S.size() < 2 || S.front() != '"' || S.back() != '"')
      return fail("malformed string literal");
    S = S.substr(1, S.size() - 2);
    for (size_t I = 0; I < S.size(); ++I) {
      char C = S[I];
      if (C == '\\' && I + 1 < S.size()) {
        ++I;
        switch (S[I]) {
        case 'n':
          C = '\n';
          break;
        case 't':
          C = '\t';
          break;
        case '0':
          C = '\0';
          break;
        case '\\':
          C = '\\';
          break;
        case '"':
          C = '"';
          break;
        default:
          return fail("unknown escape sequence");
        }
      }
      cur().Bytes.push_back(static_cast<uint8_t>(C));
    }
    if (Dir == ".asciz")
      cur().Bytes.push_back(0);
    return true;
  }
  if (Dir == ".align") {
    int64_t N;
    if (!parseInt(Rest, N) || N <= 0 || (N & (N - 1)))
      return fail("alignment must be a power of two");
    uint64_t Size = cur().size();
    uint64_t Pad = (static_cast<uint64_t>(N) - (Size % N)) % N;
    if (cur().Kind == SectionKind::Bss)
      cur().BssSize += Pad;
    else
      cur().Bytes.insert(cur().Bytes.end(), static_cast<size_t>(Pad), 0);
    return true;
  }
  return fail(formatString("unknown directive '%.*s'",
                           static_cast<int>(Dir.size()), Dir.data()));
}

bool Assembler::handleInstruction(std::string_view Mnemonic,
                                  std::string_view Rest) {
  if (cur().Kind != SectionKind::Code)
    return fail("instruction outside .text");

  Instruction I;
  // Resolve the mnemonic: fixed names first, then size/cond suffixes.
  std::string M(Mnemonic);
  auto StartsWith = [&](const char *P) {
    return M.rfind(P, 0) == 0;
  };
  bool Known = false;
  for (unsigned Op = 0; Op != static_cast<unsigned>(Opcode::NumOpcodes);
       ++Op) {
    auto OpC = static_cast<Opcode>(Op);
    if (OpC == Opcode::LOAD || OpC == Opcode::LOADS || OpC == Opcode::STORE ||
        OpC == Opcode::JCC || OpC == Opcode::SET || OpC == Opcode::CMOV ||
        OpC == Opcode::INTR)
      continue; // suffixed / not assemblable directly
    if (M == opcodeName(OpC)) {
      I.Op = OpC;
      Known = true;
      break;
    }
  }
  if (!Known) {
    auto ParseSized = [&](const char *Prefix, Opcode Op) {
      size_t N = strlen(Prefix);
      if (M.size() != N + 1 || M.compare(0, N, Prefix) != 0)
        return false;
      char C = M[N];
      if (C != '1' && C != '2' && C != '4' && C != '8')
        return false;
      I.Op = Op;
      I.Size = static_cast<uint8_t>(C - '0');
      return true;
    };
    auto ParseCond = [&](const char *Prefix, Opcode Op) {
      size_t N = strlen(Prefix);
      if (M.size() <= N + 1 || M.compare(0, N, Prefix) != 0 || M[N] != '.')
        return false;
      CondCode CC;
      if (!parseCondName(M.data() + N + 1,
                         static_cast<unsigned>(M.size() - N - 1), CC))
        return false;
      I.Op = Op;
      I.CC = CC;
      return true;
    };
    // Note: "lds" must be tried before "ld" (shared prefix).
    Known = ParseSized("lds", Opcode::LOADS) || ParseSized("ld", Opcode::LOAD) ||
            ParseSized("st", Opcode::STORE) || ParseCond("j", Opcode::JCC) ||
            ParseCond("set", Opcode::SET) || ParseCond("cmov", Opcode::CMOV);
    (void)StartsWith;
  }
  if (!Known)
    return fail(formatString("unknown mnemonic '%s'", M.c_str()));

  // Parse operands.
  std::vector<Operand> Ops;
  std::vector<std::optional<SymExpr>> Syms;
  Rest = trim(Rest);
  if (!Rest.empty()) {
    for (std::string_view Tok : split(Rest, ',')) {
      Operand O;
      std::optional<SymExpr> S;
      if (!parseOperandToken(Tok, O, S))
        return false;
      Ops.push_back(O);
      Syms.push_back(S);
    }
  }

  // Validate shape against the opcode form.
  const OpcodeInfo &Info = I.info();
  auto WrongOperands = [&]() {
    return fail(formatString("wrong operands for '%s'", M.c_str()));
  };
  switch (Info.Form) {
  case OpForm::None:
    if (!Ops.empty())
      return WrongOperands();
    break;
  case OpForm::R:
    if (Ops.size() != 1 || !Ops[0].isReg())
      return WrongOperands();
    I.A = Ops[0];
    break;
  case OpForm::RI:
    if (Ops.size() != 2 || !Ops[0].isReg() ||
        !(Ops[1].isReg() || Ops[1].isImm()))
      return WrongOperands();
    I.A = Ops[0];
    I.B = Ops[1];
    break;
  case OpForm::RM:
    if (Ops.size() != 2 || !Ops[0].isReg() || !Ops[1].isMem())
      return WrongOperands();
    I.A = Ops[0];
    I.B = Ops[1];
    break;
  case OpForm::MS:
    if (Ops.size() != 2 || !Ops[0].isMem() ||
        !(Ops[1].isReg() || Ops[1].isImm()))
      return WrongOperands();
    I.A = Ops[0];
    I.B = Ops[1];
    break;
  case OpForm::I:
    if (Ops.size() != 1 || !Ops[0].isImm())
      return WrongOperands();
    I.A = Ops[0];
    break;
  case OpForm::RorI:
    if (Ops.size() != 1 || !(Ops[0].isReg() || Ops[0].isImm()))
      return WrongOperands();
    I.A = Ops[0];
    break;
  case OpForm::Rel:
    if (Ops.size() != 1 || !Ops[0].isImm())
      return WrongOperands();
    I.A = Ops[0];
    break;
  case OpForm::Intrinsic:
    return fail("intrinsics cannot be written in assembly source");
  }

  // Encode, then register fixups for symbolic operands.
  uint64_t InstStart = cur().Bytes.size();
  unsigned Len = isa::encode(I, cur().Bytes);
  uint64_t InstEnd = InstStart + Len;

  // Field offsets: header is 3 bytes; operand A follows; operand B after.
  auto OperandFieldOffset = [&](unsigned Which) -> uint64_t {
    uint64_t Off = InstStart + 3;
    const Operand &A = I.A;
    if (Which == 1) {
      switch (A.Kind) {
      case OperandKind::None:
        break;
      case OperandKind::Reg:
        Off += 1;
        break;
      case OperandKind::Imm:
        Off += 8;
        break;
      case OperandKind::Mem:
        Off += 11;
        break;
      }
    }
    return Off;
  };

  for (unsigned Idx = 0; Idx != Ops.size(); ++Idx) {
    if (!Syms[Idx] || Syms[Idx]->Symbol.empty())
      continue;
    const Operand &O = (Idx == 0) ? I.A : I.B;
    uint64_t FieldOff = OperandFieldOffset(Idx);
    if (O.isMem())
      FieldOff += 3; // base, index, scale precede disp
    FixupKind Kind =
        (Info.Form == OpForm::Rel) ? FixupKind::RelEnd : FixupKind::Abs64;
    Fixups.push_back({Kind, CurSection, FieldOff, InstEnd, Syms[Idx]->Symbol,
                      Syms[Idx]->Constant, Line});
  }
  return true;
}

bool Assembler::applyFixups() {
  for (const Fixup &F : Fixups) {
    auto It = SymbolIdx.find(F.Symbol);
    if (It == SymbolIdx.end()) {
      ErrMsg = formatString("line %u: undefined symbol '%s'", F.Line,
                            F.Symbol.c_str());
      return false;
    }
    uint64_t Target = Obj.Symbols[It->second].Addr +
                      static_cast<uint64_t>(F.Addend);
    Section &S = Obj.Sections[F.SectionIdx];
    uint64_t Value;
    if (F.Kind == FixupKind::Abs64)
      Value = Target;
    else
      Value = Target - (S.Addr + F.InstEnd);
    assert(F.FieldOffset + 8 <= S.Bytes.size() && "fixup out of range");
    for (unsigned I = 0; I != 8; ++I)
      S.Bytes[F.FieldOffset + I] = static_cast<uint8_t>(Value >> (I * 8));
  }
  return true;
}

Expected<ObjectFile> Assembler::run(std::string_view Source) {
  // Pre-create the four canonical sections at their fixed bases; .bss is
  // placed after .data once .data's size is known.
  Obj.Sections.push_back({".text", SectionKind::Code, TextBase, {}, 0});
  Obj.Sections.push_back({".rodata", SectionKind::ReadOnlyData, RodataBase,
                          {}, 0});
  Obj.Sections.push_back({".data", SectionKind::Data, DataBase, {}, 0});
  Obj.Sections.push_back({".bss", SectionKind::Bss, 0, {}, 0});

  // Pass 1 must know .bss's base before defining symbols in it, but .bss
  // symbols can appear before .data is finished. We solve this the way
  // real assemblers do with section-relative symbols: run pass 1 twice —
  // first to size the sections, then to define symbols and encode.
  for (int Pass = 0; Pass != 2; ++Pass) {
    if (Pass == 1) {
      uint64_t DataEnd = DataBase + Obj.Sections[2].Bytes.size();
      Obj.Sections[3].Addr = (DataEnd + 0xfff) & ~0xfffULL;
      for (Section &S : Obj.Sections) {
        S.Bytes.clear();
        S.BssSize = 0;
      }
      Obj.Symbols.clear();
      SymbolIdx.clear();
      Fixups.clear();
      Obj.Relocs.clear();
      Globals.clear();
      Funcs.clear();
      CurSection = 0;
    }
    Line = 0;
    for (std::string_view Raw : split(Source, '\n')) {
      ++Line;
      // Strip comments.
      size_t Comment = Raw.find_first_of(";#");
      if (Comment != std::string_view::npos)
        Raw = Raw.substr(0, Comment);
      std::string_view L = trim(Raw);
      if (L.empty())
        continue;
      // Labels (possibly followed by nothing on the same line).
      if (L.back() == ':') {
        std::string Name(trim(L.substr(0, L.size() - 1)));
        if (Name.empty())
          return Error::failure(formatString("line %u: empty label", Line));
        if (Pass == 1 && !defineSymbol(Name, cur().Kind == SectionKind::Code
                                                 ? SymbolKind::Label
                                                 : SymbolKind::Object))
          return Error::failure(ErrMsg);
        if (Pass == 0) {
          // Still need section sizing, which labels don't affect.
        }
        continue;
      }
      size_t Sp = L.find_first_of(" \t");
      std::string_view Head = (Sp == std::string_view::npos) ? L
                                                             : L.substr(0, Sp);
      std::string_view Rest =
          (Sp == std::string_view::npos) ? std::string_view() : L.substr(Sp);
      bool Ok = Head.front() == '.' ? handleDirective(Head, Rest)
                                    : handleInstruction(Head, Rest);
      if (!Ok) {
        if (Pass == 0 && ErrMsg.empty())
          continue;
        return Error::failure(ErrMsg);
      }
    }
  }

  // Promote kinds and global flags.
  for (const std::string &Name : Funcs) {
    auto It = SymbolIdx.find(Name);
    if (It == SymbolIdx.end())
      return Error::failure(
          formatString(".func names undefined symbol '%s'", Name.c_str()));
    Obj.Symbols[It->second].Kind = SymbolKind::Function;
  }
  for (const std::string &Name : Globals) {
    auto It = SymbolIdx.find(Name);
    if (It == SymbolIdx.end())
      return Error::failure(
          formatString(".global names undefined symbol '%s'", Name.c_str()));
    Obj.Symbols[It->second].Global = true;
  }

  if (!applyFixups())
    return Error::failure(ErrMsg);

  auto EntryIt = SymbolIdx.find(EntryName);
  if (EntryIt == SymbolIdx.end())
    return Error::failure(
        formatString("entry symbol '%s' is undefined", EntryName.c_str()));
  Obj.Entry = Obj.Symbols[EntryIt->second].Addr;
  return std::move(Obj);
}

Expected<ObjectFile> assembler::assemble(std::string_view Source) {
  Assembler A;
  return A.run(Source);
}
