//===- ir/Layout.h - IR-to-binary reassembly ----------------------*- C++ -*-===//
///
/// \file
/// The reassembly half of "reassembleable disassembly": assigns final
/// addresses to every block of every function, encodes the instructions
/// with branch offsets recomputed from symbolic references, patches
/// code-pointer slots in the data sections, and produces a runnable TBF
/// object.
///
/// Functions are emitted in order; the Speculation Shadows transform
/// arranges for all Real-Copy functions to precede all Shadow-Copy
/// functions, so the result is two contiguous text ranges whose bounds
/// the returned LayoutResult reports (the runtime uses them for the
/// in-shadow / in-real classification of code pointers).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_IR_LAYOUT_H
#define TEAPOT_IR_LAYOUT_H

#include "ir/IR.h"
#include "support/Error.h"

namespace teapot {
namespace ir {

struct LayoutResult {
  /// BlockAddr[F][B] = final address of block B of function F.
  std::vector<std::vector<uint64_t>> BlockAddr;
  /// FuncStart/FuncEnd[F] = final [start, end) of function F.
  std::vector<uint64_t> FuncStart;
  std::vector<uint64_t> FuncEnd;
  uint64_t TextStart = 0;
  uint64_t TextEnd = 0;
  /// Bounds of the Real/Shadow halves; equal halves when no shadow
  /// functions exist (ShadowStart == TextEnd).
  uint64_t ShadowStart = 0;

  uint64_t blockAddr(BlockRef R) const { return BlockAddr[R.Func][R.Block]; }
};

/// Lays out \p M and writes the resulting object to \p Out. The returned
/// LayoutResult lets callers (the Teapot rewriter) resolve block refs to
/// final addresses for their metadata side tables.
Expected<LayoutResult> layOut(const Module &M, obj::ObjectFile &Out);

} // namespace ir
} // namespace teapot

#endif // TEAPOT_IR_LAYOUT_H
