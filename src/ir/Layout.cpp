//===- ir/Layout.cpp ------------------------------------------------------===//

#include "ir/Layout.h"

#include "isa/Encoding.h"
#include "obj/Layout.h"
#include "support/StringUtils.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::isa;

namespace {

/// Per-block layout plan: whether an explicit JMP must be appended
/// because the fallthrough successor is not laid out adjacently.
struct BlockPlan {
  bool NeedsJump = false;
  uint64_t Addr = 0;
};

constexpr unsigned JmpLength = 3 + 8; // opcode header + 8-byte immediate

bool fallsThrough(const BasicBlock &B) {
  if (!B.FallSucc)
    return false;
  const Inst *T = B.terminator();
  if (!T)
    return true; // plain fallthrough block
  const isa::OpcodeInfo &Info = T->I.info();
  // JCC falls through when not taken; CALL continues after returning.
  return Info.IsCondBranch || Info.IsCall;
}

} // namespace

Expected<LayoutResult> ir::layOut(const Module &M, obj::ObjectFile &Out) {
  LayoutResult R;
  R.TextStart = obj::TextBase;
  R.BlockAddr.resize(M.Funcs.size());
  R.FuncStart.resize(M.Funcs.size());
  R.FuncEnd.resize(M.Funcs.size());

  std::vector<std::vector<BlockPlan>> Plans(M.Funcs.size());

  // Pass 1: assign addresses. Lengths never depend on operand values, so
  // a single forward sweep suffices.
  uint64_t Addr = R.TextStart;
  R.ShadowStart = 0;
  for (uint32_t F = 0; F != M.Funcs.size(); ++F) {
    const Function &Fn = M.Funcs[F];
    if (Fn.IsShadow && R.ShadowStart == 0)
      R.ShadowStart = Addr;
    R.FuncStart[F] = Addr;
    Plans[F].resize(Fn.Blocks.size());
    R.BlockAddr[F].resize(Fn.Blocks.size());
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      const BasicBlock &Blk = Fn.Blocks[B];
      Plans[F][B].Addr = Addr;
      R.BlockAddr[F][B] = Addr;
      for (const Inst &In : Blk.Insts)
        Addr += encodedLength(In.I);
      if (fallsThrough(Blk)) {
        BlockRef Next{F, B + 1};
        if (*Blk.FallSucc != Next || B + 1 == Fn.Blocks.size()) {
          Plans[F][B].NeedsJump = true;
          Addr += JmpLength;
        }
      }
    }
    R.FuncEnd[F] = Addr;
  }
  R.TextEnd = Addr;
  if (R.ShadowStart == 0)
    R.ShadowStart = R.TextEnd;
  if (R.TextEnd >= obj::RodataBase)
    return makeError("rewritten text overflows its region: end %s",
                     toHex(R.TextEnd).c_str());

  // Pass 2: emit bytes with resolved operands.
  std::vector<uint8_t> Text;
  Text.reserve(R.TextEnd - R.TextStart);
  for (uint32_t F = 0; F != M.Funcs.size(); ++F) {
    const Function &Fn = M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      const BasicBlock &Blk = Fn.Blocks[B];
      for (const Inst &In : Blk.Insts) {
        isa::Instruction Enc = In.I;
        uint64_t InstEnd =
            R.TextStart + Text.size() + encodedLength(In.I);
        if (In.Target) {
          if (!In.Target->valid() ||
              In.Target->Func >= M.Funcs.size() ||
              In.Target->Block >= R.BlockAddr[In.Target->Func].size())
            return makeError("dangling branch target in function '%s'",
                             Fn.Name.c_str());
          Enc.A = Operand::imm(static_cast<int64_t>(
              R.blockAddr(*In.Target) - InstEnd));
        } else if (In.Callee != NoIdx) {
          if (In.Callee >= M.Funcs.size())
            return makeError("dangling call target in function '%s'",
                             Fn.Name.c_str());
          Enc.A = Operand::imm(
              static_cast<int64_t>(R.FuncStart[In.Callee] - InstEnd));
        } else if (In.FuncImm != NoIdx) {
          if (In.FuncImm >= M.Funcs.size())
            return makeError("dangling function-pointer immediate in '%s'",
                             Fn.Name.c_str());
          int64_t V = static_cast<int64_t>(R.FuncStart[In.FuncImm]);
          if (Enc.Op == Opcode::PUSH)
            Enc.A = Operand::imm(V);
          else if (Enc.Op == Opcode::LEA)
            Enc.B = Operand::mem(isa::MemRef{NoReg, NoReg, 1, V});
          else
            Enc.B = Operand::imm(V);
        }
        encode(Enc, Text);
      }
      if (Plans[F][B].NeedsJump) {
        uint64_t InstEnd = R.TextStart + Text.size() + JmpLength;
        isa::Instruction J = isa::Instruction::jmp(0);
        J.A = Operand::imm(
            static_cast<int64_t>(R.blockAddr(*Blk.FallSucc) - InstEnd));
        encode(J, Text);
      }
    }
  }
  assert(R.TextStart + Text.size() == R.TextEnd &&
         "pass 1 / pass 2 length mismatch");

  // Assemble the output object: new text + carried-over data sections.
  Out = obj::ObjectFile();
  obj::Section TextSec;
  TextSec.Name = ".text";
  TextSec.Kind = obj::SectionKind::Code;
  TextSec.Addr = R.TextStart;
  TextSec.Bytes = std::move(Text);
  Out.Sections.push_back(std::move(TextSec));
  for (const obj::Section &S : M.Source.Sections)
    if (S.Kind != obj::SectionKind::Code)
      Out.Sections.push_back(S);
  Out.Metadata = M.Source.Metadata;

  // Patch code-pointer slots in the carried-over data sections.
  for (const CodePointerSlot &Slot : M.CodeSlots) {
    uint64_t Target;
    if (Slot.Block.valid())
      Target = R.blockAddr(Slot.Block);
    else if (Slot.Func != NoIdx)
      Target = R.FuncStart[Slot.Func];
    else
      return makeError("code-pointer slot at %s has no target",
                       toHex(Slot.SlotAddr).c_str());
    obj::Section *Sec = nullptr;
    for (obj::Section &S : Out.Sections)
      if (S.Kind != obj::SectionKind::Bss && S.contains(Slot.SlotAddr))
        Sec = &S;
    if (!Sec || Slot.SlotAddr + 8 > Sec->Addr + Sec->Bytes.size())
      return makeError("code-pointer slot at %s is outside data sections",
                       toHex(Slot.SlotAddr).c_str());
    uint64_t Off = Slot.SlotAddr - Sec->Addr;
    for (unsigned I = 0; I != 8; ++I)
      Sec->Bytes[Off + I] = static_cast<uint8_t>(Target >> (I * 8));
  }

  // Function symbols (useful for debugging; strip() removes them).
  for (uint32_t F = 0; F != M.Funcs.size(); ++F) {
    obj::Symbol Sym;
    Sym.Name = M.Funcs[F].Name;
    Sym.Kind = obj::SymbolKind::Function;
    Sym.Addr = R.FuncStart[F];
    Sym.Size = R.FuncEnd[F] - R.FuncStart[F];
    Out.Symbols.push_back(std::move(Sym));
  }

  if (M.EntryFunc == NoIdx || M.EntryFunc >= M.Funcs.size())
    return makeError("module has no entry function");
  Out.Entry = R.FuncStart[M.EntryFunc];
  return R;
}
