//===- ir/IR.h - GTIRB-like binary IR -----------------------------*- C++ -*-===//
///
/// \file
/// The intermediate representation rewriting passes operate on — our
/// analogue of GTIRB. A disassembled binary becomes a Module of Functions
/// of BasicBlocks of Insts, where control-flow operands carry *symbolic*
/// references (block / function indices) instead of raw addresses, so
/// passes may insert instructions freely and the Layout engine re-derives
/// every offset when it reassembles the final bytes.
///
/// Only code moves during rewriting. Data sections keep their addresses,
/// with one exception: 8-byte data slots holding *code* pointers (jump
/// tables, function-pointer tables) are tracked as CodePointerSlots and
/// patched by Layout to the rewritten addresses.
///
/// Block/function indices are append-only stable: passes never delete or
/// reorder, so a BlockRef taken before a pass remains valid after it.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_IR_IR_H
#define TEAPOT_IR_IR_H

#include "isa/Instruction.h"
#include "obj/ObjectFile.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace teapot {
namespace ir {

inline constexpr uint32_t NoIdx = ~0u;

/// Identifies a basic block within a Module.
struct BlockRef {
  uint32_t Func = NoIdx;
  uint32_t Block = NoIdx;

  bool valid() const { return Func != NoIdx; }
  bool operator==(const BlockRef &O) const = default;
};

/// One instruction plus the symbolic references that replace any
/// code-address operands.
struct Inst {
  isa::Instruction I;
  /// JMP/JCC: branch target (overrides I.A's immediate at layout time).
  std::optional<BlockRef> Target;
  /// CALL: callee function index (entry block implied).
  uint32_t Callee = NoIdx;
  /// MOV/PUSH/LEA whose immediate/displacement is a code pointer to a
  /// function entry: Layout substitutes the function's rewritten address.
  uint32_t FuncImm = NoIdx;
  /// Original address in the input binary (0 for pass-inserted code).
  uint64_t OrigAddr = 0;

  Inst() = default;
  Inst(isa::Instruction I) : I(std::move(I)) {}
};

/// A straight-line run of instructions ending in at most one terminator.
/// CALL terminates a block (its fallthrough successor is the return
/// continuation), which gives the Speculation Shadows transform a clean
/// "point after the call" to target from marker-site guards.
struct BasicBlock {
  uint64_t OrigAddr = 0;
  std::vector<Inst> Insts;
  /// Taken successor of a JCC, or the sole successor of a JMP.
  std::optional<BlockRef> TakenSucc;
  /// Fallthrough successor (JCC not-taken, CALL continuation, or plain
  /// fallthrough into the next block).
  std::optional<BlockRef> FallSucc;
  /// Resolved targets of a terminating JMPI (from jump-table recovery);
  /// empty if unknown.
  std::vector<BlockRef> IndirectSuccs;

  /// Returns the terminator, or null if the block falls through.
  const Inst *terminator() const {
    if (Insts.empty())
      return nullptr;
    const Inst &Last = Insts.back();
    if (Last.I.isTerminator() || Last.I.info().IsCall)
      return &Last;
    return nullptr;
  }
};

struct Function {
  std::string Name; // synthesized "fn_<hexaddr>" when stripped
  uint64_t OrigAddr = 0;
  std::vector<BasicBlock> Blocks; // Blocks[0] is the entry block
  /// Set by the Speculation Shadows transform.
  bool IsShadow = false;
  uint32_t ShadowOf = NoIdx; // shadow copy -> its real function
  uint32_t ShadowIdx = NoIdx; // real function -> its shadow copy
};

/// An 8-byte slot in a data section that holds a code pointer and must be
/// re-pointed after rewriting (jump-table entries, function-pointer
/// tables).
struct CodePointerSlot {
  uint64_t SlotAddr = 0;
  /// Either a block (jump tables) or a function entry.
  BlockRef Block;       // valid() when the target is a block
  uint32_t Func = NoIdx; // != NoIdx when the target is a function entry
};

/// A per-basic-block taint transfer program for the Real Copy's
/// asynchronous DIFT update (Section 6.2.2): a compact list of micro-ops
/// the runtime evaluates once per block instead of once per instruction.
///
/// The program is in single-assignment form over immutable inputs: mask
/// bits 0..15 denote the *block-entry* register tags (latched when the
/// program starts) and bits 16..31 denote temporaries, each written by
/// exactly one LoadTmp. Memory tag reads/writes execute in program
/// order; register/flag tags are assigned only by the trailing
/// RegSetMask/FlagsMask ops, which therefore form a parallel assignment.
/// This is the compiled form of the paper's "list of IR expressions that
/// compute the tag changes for each block".
struct TagMicroOp {
  enum Kind : uint8_t {
    LoadTmp,    // Tmp[Dst] = tag of memory at Mem (Size bytes)
    StoreMask,  // memory tag at Mem (Size bytes) = union(Mask)
    RegSetMask, // regTag[Dst] = union(Mask)   (block-end flush)
    FlagsMask,  // flagsTag = union(Mask)      (block-end flush)
  };
  Kind K = LoadTmp;
  uint8_t Dst = 0;  // temp index (LoadTmp) or register (RegSetMask)
  uint8_t Size = 8; // memory ops only
  /// Bits 0..15: entry register tags; bits 16..31: temporaries.
  uint32_t Mask = 0;
  isa::MemRef Mem;
};

/// Number of LoadTmp temporaries available to one block program.
inline constexpr unsigned NumTagTemps = 16;

using TagProgram = std::vector<TagMicroOp>;

class Module {
public:
  /// The binary this module was lifted from. Its non-code sections are
  /// carried through to the rewritten output.
  obj::ObjectFile Source;
  std::vector<Function> Funcs;
  std::vector<CodePointerSlot> CodeSlots;
  uint32_t EntryFunc = NoIdx;
  /// Tag programs referenced by INTR TagBlock payloads.
  std::vector<TagProgram> TagPrograms;

  Function &func(uint32_t Idx) {
    assert(Idx < Funcs.size() && "function index out of range");
    return Funcs[Idx];
  }
  const Function &func(uint32_t Idx) const {
    assert(Idx < Funcs.size() && "function index out of range");
    return Funcs[Idx];
  }
  BasicBlock &block(BlockRef R) {
    assert(R.valid() && "invalid block ref");
    return Funcs[R.Func].Blocks[R.Block];
  }
  const BasicBlock &block(BlockRef R) const {
    assert(R.valid() && "invalid block ref");
    return Funcs[R.Func].Blocks[R.Block];
  }

  /// Appends a new empty block to \p FuncIdx and returns its ref.
  BlockRef addBlock(uint32_t FuncIdx) {
    Funcs[FuncIdx].Blocks.emplace_back();
    return {FuncIdx, static_cast<uint32_t>(Funcs[FuncIdx].Blocks.size() - 1)};
  }

  /// Returns the function whose original entry address is \p Addr, or
  /// NoIdx.
  uint32_t funcByOrigAddr(uint64_t Addr) const {
    for (uint32_t I = 0; I != Funcs.size(); ++I)
      if (Funcs[I].OrigAddr == Addr)
        return I;
    return NoIdx;
  }

  /// Total instruction count (for statistics and tests).
  size_t instCount() const {
    size_t N = 0;
    for (const Function &F : Funcs)
      for (const BasicBlock &B : F.Blocks)
        N += B.Insts.size();
    return N;
  }

  /// Renders the module as annotated assembly-like text for debugging.
  std::string print() const;
};

} // namespace ir
} // namespace teapot

#endif // TEAPOT_IR_IR_H
