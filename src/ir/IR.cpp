//===- ir/IR.cpp - IR printing --------------------------------------------===//

#include "ir/IR.h"

#include "support/StringUtils.h"

using namespace teapot;
using namespace teapot::ir;

std::string Module::print() const {
  std::string S;
  for (uint32_t F = 0; F != Funcs.size(); ++F) {
    const Function &Fn = Funcs[F];
    S += formatString("func %u %s%s (orig %s)\n", F, Fn.Name.c_str(),
                      Fn.IsShadow ? " [shadow]" : "",
                      toHex(Fn.OrigAddr).c_str());
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      const BasicBlock &Blk = Fn.Blocks[B];
      S += formatString(".bb%u:", B);
      if (Blk.TakenSucc)
        S += formatString("  ; taken -> f%u.bb%u", Blk.TakenSucc->Func,
                          Blk.TakenSucc->Block);
      if (Blk.FallSucc)
        S += formatString("  ; fall -> f%u.bb%u", Blk.FallSucc->Func,
                          Blk.FallSucc->Block);
      S += "\n";
      for (const Inst &In : Blk.Insts) {
        S += "    " + isa::printInst(In.I);
        if (In.Target)
          S += formatString("  ; -> f%u.bb%u", In.Target->Func,
                            In.Target->Block);
        if (In.Callee != NoIdx)
          S += formatString("  ; calls f%u", In.Callee);
        if (In.FuncImm != NoIdx)
          S += formatString("  ; &f%u", In.FuncImm);
        S += "\n";
      }
    }
  }
  return S;
}
