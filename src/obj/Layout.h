//===- obj/Layout.h - Guest address-space layout ------------------*- C++ -*-===//
///
/// \file
/// The fixed guest address-space map. It mirrors a Linux x86-64 process
/// closely enough that the paper's Table 1 / Table 2 region constants
/// apply verbatim:
///
///   LowMem   0x0              .. 0x7fff'7fff         (text, data, rodata)
///   HighMem  0x6000'0000'0000 .. 0x7fff'ffff'ffff    (heap, stack)
///
/// The gap between them hosts the ASan shadow ((addr >> 3) + 0x7fff8000)
/// and the DIFT tag shadow (addr XOR 1<<45); see runtime/ShadowLayout.h.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_OBJ_LAYOUT_H
#define TEAPOT_OBJ_LAYOUT_H

#include <cstdint>

namespace teapot {
namespace obj {

// Static image layout (all inside LowMem).
inline constexpr uint64_t TextBase = 0x401000;
inline constexpr uint64_t RodataBase = 0x900000;
inline constexpr uint64_t DataBase = 0xa00000;
// Reserved page of runtime-owned globals visible to rewritten guest code
// (e.g. the in-simulation flag used by real-copy marker guards).
inline constexpr uint64_t RuntimeGlobalsBase = 0x7fe000;
inline constexpr uint64_t SimFlagAddr = RuntimeGlobalsBase; // u64

// Dynamic regions (all inside HighMem).
inline constexpr uint64_t HeapBase = 0x6020'0000'0000ULL;
inline constexpr uint64_t StackTop = 0x7fff'ffff'f000ULL;
inline constexpr uint64_t StackLimit = StackTop - 0x100000; // 1 MiB stack

// User-accessible regions (paper Table 2; Table 1's larger HighMem applies
// when DIFT is disabled, but we always reserve the DIFT-safe subset).
inline constexpr uint64_t LowMemStart = 0x0;
inline constexpr uint64_t LowMemEnd = 0x7fff'7fffULL;
inline constexpr uint64_t HighMemStart = 0x6000'0000'0000ULL;
inline constexpr uint64_t HighMemEnd = 0x7fff'ffff'ffffULL;
// Table 1 (ASan only, no DIFT) HighMem start.
inline constexpr uint64_t Table1HighMemStart = 0x1000'7fff'8000ULL;

/// True if \p Addr lies in a user-accessible region (Table 2 layout).
inline bool isUserAddress(uint64_t Addr) {
  return Addr <= LowMemEnd || (Addr >= HighMemStart && Addr <= HighMemEnd);
}

} // namespace obj
} // namespace teapot

#endif // TEAPOT_OBJ_LAYOUT_H
