//===- obj/ObjectFile.h - TBF object/binary format ----------------*- C++ -*-===//
///
/// \file
/// TBF ("Teapot Binary Format") — the COTS binary container this
/// reproduction analyzes, standing in for ELF. A fully linked TBF holds
/// sections at fixed virtual addresses with relocations already applied;
/// symbols and relocation records are *optional* metadata that strip()
/// removes, because the disassembler must not depend on them.
///
/// Rewriters attach named metadata blobs (e.g. ".teapot.meta" with the
/// Speculation Shadows side tables) that the runtime parses at load time —
/// the analogue of Teapot's added ELF sections.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_OBJ_OBJECTFILE_H
#define TEAPOT_OBJ_OBJECTFILE_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace teapot {
namespace obj {

enum class SectionKind : uint8_t { Code, Data, ReadOnlyData, Bss };

struct Section {
  std::string Name;
  SectionKind Kind = SectionKind::Data;
  uint64_t Addr = 0;
  std::vector<uint8_t> Bytes; // empty for Bss
  uint64_t BssSize = 0;       // nonzero only for Bss

  uint64_t size() const {
    return Kind == SectionKind::Bss ? BssSize : Bytes.size();
  }
  bool contains(uint64_t A) const { return A >= Addr && A < Addr + size(); }
};

enum class SymbolKind : uint8_t { Function, Object, Label };

struct Symbol {
  std::string Name;
  SymbolKind Kind = SymbolKind::Label;
  uint64_t Addr = 0;
  uint64_t Size = 0;
  bool Global = false;
};

enum class RelocKind : uint8_t {
  Abs64, // 8-byte absolute: S + A
  Rel32, // 4-byte pc-relative: S + A - (P + 4)  (unused by the assembler,
         // which bakes branch offsets directly; kept for data tables)
};

struct Reloc {
  RelocKind Kind = RelocKind::Abs64;
  uint32_t SectionIndex = 0;
  uint64_t Offset = 0; // within the section
  std::string SymbolName;
  int64_t Addend = 0;
};

class ObjectFile {
public:
  uint64_t Entry = 0;
  std::vector<Section> Sections;
  std::vector<Symbol> Symbols;
  std::vector<Reloc> Relocs;
  /// Named metadata blobs (e.g. ".teapot.meta").
  std::map<std::string, std::vector<uint8_t>> Metadata;

  /// Returns the section named \p Name or null.
  const Section *findSection(const std::string &Name) const;
  Section *findSection(const std::string &Name);

  /// Returns the section containing address \p Addr or null.
  const Section *sectionContaining(uint64_t Addr) const;

  /// Returns the symbol named \p Name or null.
  const Symbol *findSymbol(const std::string &Name) const;

  /// Removes all symbols and relocation records, leaving a stripped
  /// binary (the COTS analysis target).
  void strip();

  /// Serializes to the TBF wire format.
  std::vector<uint8_t> serialize() const;

  /// Parses the TBF wire format.
  static Expected<ObjectFile> deserialize(const std::vector<uint8_t> &Bytes);
};

} // namespace obj
} // namespace teapot

#endif // TEAPOT_OBJ_OBJECTFILE_H
