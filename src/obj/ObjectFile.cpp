//===- obj/ObjectFile.cpp -------------------------------------------------===//

#include "obj/ObjectFile.h"

#include <cstring>

using namespace teapot;
using namespace teapot::obj;

const Section *ObjectFile::findSection(const std::string &Name) const {
  for (const Section &S : Sections)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

Section *ObjectFile::findSection(const std::string &Name) {
  for (Section &S : Sections)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const Section *ObjectFile::sectionContaining(uint64_t Addr) const {
  for (const Section &S : Sections)
    if (S.contains(Addr))
      return &S;
  return nullptr;
}

const Symbol *ObjectFile::findSymbol(const std::string &Name) const {
  for (const Symbol &S : Symbols)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

void ObjectFile::strip() {
  Symbols.clear();
  Relocs.clear();
}

//===----------------------------------------------------------------------===//
// Serialization. Simple length-prefixed little-endian format:
//   magic "TBF1" | entry u64
//   nsections u32 { name, kind u8, addr u64, bss u64, nbytes u64, bytes }
//   nsymbols  u32 { name, kind u8, addr u64, size u64, global u8 }
//   nrelocs   u32 { kind u8, section u32, offset u64, symname, addend i64 }
//   nmeta     u32 { name, nbytes u64, bytes }
// Strings are u32 length + raw bytes.
//===----------------------------------------------------------------------===//

namespace {

class Writer {
public:
  std::vector<uint8_t> Out;

  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void bytes(const std::vector<uint8_t> &B) {
    u64(B.size());
    Out.insert(Out.end(), B.begin(), B.end());
  }
};

class Reader {
public:
  Reader(const std::vector<uint8_t> &In) : In(In) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > In.size())
      return false;
    V = In[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > In.size())
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(In[Pos + I]) << (I * 8);
    Pos += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > In.size())
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(In[Pos + I]) << (I * 8);
    Pos += 8;
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Pos + N > In.size())
      return false;
    S.assign(reinterpret_cast<const char *>(In.data() + Pos), N);
    Pos += N;
    return true;
  }
  bool bytes(std::vector<uint8_t> &B) {
    uint64_t N;
    if (!u64(N) || Pos + N > In.size())
      return false;
    B.assign(In.begin() + Pos, In.begin() + Pos + N);
    Pos += N;
    return true;
  }

private:
  const std::vector<uint8_t> &In;
  size_t Pos = 0;
};

constexpr char Magic[4] = {'T', 'B', 'F', '1'};

} // namespace

std::vector<uint8_t> ObjectFile::serialize() const {
  Writer W;
  W.Out.insert(W.Out.end(), Magic, Magic + 4);
  W.u64(Entry);

  W.u32(static_cast<uint32_t>(Sections.size()));
  for (const Section &S : Sections) {
    W.str(S.Name);
    W.u8(static_cast<uint8_t>(S.Kind));
    W.u64(S.Addr);
    W.u64(S.BssSize);
    W.bytes(S.Bytes);
  }

  W.u32(static_cast<uint32_t>(Symbols.size()));
  for (const Symbol &S : Symbols) {
    W.str(S.Name);
    W.u8(static_cast<uint8_t>(S.Kind));
    W.u64(S.Addr);
    W.u64(S.Size);
    W.u8(S.Global ? 1 : 0);
  }

  W.u32(static_cast<uint32_t>(Relocs.size()));
  for (const Reloc &R : Relocs) {
    W.u8(static_cast<uint8_t>(R.Kind));
    W.u32(R.SectionIndex);
    W.u64(R.Offset);
    W.str(R.SymbolName);
    W.u64(static_cast<uint64_t>(R.Addend));
  }

  W.u32(static_cast<uint32_t>(Metadata.size()));
  for (const auto &[Name, Blob] : Metadata) {
    W.str(Name);
    W.bytes(Blob);
  }
  return std::move(W.Out);
}

Expected<ObjectFile> ObjectFile::deserialize(
    const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < 4 || memcmp(Bytes.data(), Magic, 4) != 0)
    return makeError("not a TBF file: bad magic");
  Reader R(Bytes);
  // Skip magic.
  uint32_t Dummy;
  if (!R.u32(Dummy))
    return makeError("truncated TBF header");

  ObjectFile O;
  if (!R.u64(O.Entry))
    return makeError("truncated TBF header");

  uint32_t N;
  if (!R.u32(N))
    return makeError("truncated section table");
  for (uint32_t I = 0; I != N; ++I) {
    Section S;
    uint8_t Kind;
    if (!R.str(S.Name) || !R.u8(Kind) || !R.u64(S.Addr) || !R.u64(S.BssSize) ||
        !R.bytes(S.Bytes))
      return makeError("truncated section %u", I);
    if (Kind > static_cast<uint8_t>(SectionKind::Bss))
      return makeError("bad section kind in section %u", I);
    S.Kind = static_cast<SectionKind>(Kind);
    O.Sections.push_back(std::move(S));
  }

  if (!R.u32(N))
    return makeError("truncated symbol table");
  for (uint32_t I = 0; I != N; ++I) {
    Symbol S;
    uint8_t Kind, Global;
    if (!R.str(S.Name) || !R.u8(Kind) || !R.u64(S.Addr) || !R.u64(S.Size) ||
        !R.u8(Global))
      return makeError("truncated symbol %u", I);
    if (Kind > static_cast<uint8_t>(SymbolKind::Label))
      return makeError("bad symbol kind in symbol %u", I);
    S.Kind = static_cast<SymbolKind>(Kind);
    S.Global = Global != 0;
    O.Symbols.push_back(std::move(S));
  }

  if (!R.u32(N))
    return makeError("truncated relocation table");
  for (uint32_t I = 0; I != N; ++I) {
    Reloc Rel;
    uint8_t Kind;
    uint64_t Addend;
    if (!R.u8(Kind) || !R.u32(Rel.SectionIndex) || !R.u64(Rel.Offset) ||
        !R.str(Rel.SymbolName) || !R.u64(Addend))
      return makeError("truncated relocation %u", I);
    if (Kind > static_cast<uint8_t>(RelocKind::Rel32))
      return makeError("bad relocation kind in relocation %u", I);
    Rel.Kind = static_cast<RelocKind>(Kind);
    Rel.Addend = static_cast<int64_t>(Addend);
    O.Relocs.push_back(std::move(Rel));
  }

  if (!R.u32(N))
    return makeError("truncated metadata table");
  for (uint32_t I = 0; I != N; ++I) {
    std::string Name;
    std::vector<uint8_t> Blob;
    if (!R.str(Name) || !R.bytes(Blob))
      return makeError("truncated metadata blob %u", I);
    O.Metadata.emplace(std::move(Name), std::move(Blob));
  }
  return O;
}
