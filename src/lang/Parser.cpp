//===- lang/Parser.cpp - MiniCC lexer + recursive-descent parser -----------===//

#include "lang/MiniCC.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace teapot;
using namespace teapot::lang;

namespace {

enum class Tok : uint8_t {
  Eof,
  Ident,
  Number,
  String,
  CharLit,
  Punct,
};

struct Token {
  Tok K = Tok::Eof;
  std::string Text;
  int64_t Val = 0;
  unsigned Line = 1;
};

class Lexer {
public:
  explicit Lexer(std::string_view S) : S(S) { next(); }

  const Token &cur() const { return Cur; }

  void next() {
    skip();
    Cur = Token();
    Cur.Line = Line;
    if (Pos >= S.size()) {
      Cur.K = Tok::Eof;
      return;
    }
    char C = S[Pos];
    if (isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t B = Pos;
      while (Pos < S.size() && (isalnum(static_cast<unsigned char>(S[Pos])) ||
                                S[Pos] == '_'))
        ++Pos;
      Cur.K = Tok::Ident;
      Cur.Text = std::string(S.substr(B, Pos - B));
      return;
    }
    if (isdigit(static_cast<unsigned char>(C))) {
      size_t B = Pos;
      while (Pos < S.size() && (isalnum(static_cast<unsigned char>(S[Pos]))))
        ++Pos;
      Cur.K = Tok::Number;
      int64_t V;
      if (!parseInt(S.substr(B, Pos - B), V)) {
        Cur.K = Tok::Eof;
        Err = formatString("line %u: malformed number", Line);
        return;
      }
      Cur.Val = V;
      return;
    }
    if (C == '"') {
      ++Pos;
      Cur.K = Tok::String;
      while (Pos < S.size() && S[Pos] != '"') {
        char D = S[Pos++];
        if (D == '\\' && Pos < S.size()) {
          char E = S[Pos++];
          D = E == 'n' ? '\n' : E == 't' ? '\t' : E == '0' ? '\0' : E;
        }
        Cur.Text.push_back(D);
      }
      if (Pos < S.size())
        ++Pos; // closing quote
      return;
    }
    if (C == '\'') {
      ++Pos;
      char D = Pos < S.size() ? S[Pos++] : 0;
      if (D == '\\' && Pos < S.size()) {
        char E = S[Pos++];
        D = E == 'n' ? '\n' : E == 't' ? '\t' : E == '0' ? '\0' : E;
      }
      if (Pos < S.size() && S[Pos] == '\'')
        ++Pos;
      Cur.K = Tok::CharLit;
      Cur.Val = static_cast<unsigned char>(D);
      return;
    }
    // Punctuation, longest-match for two-char operators.
    static const char *const Two[] = {"==", "!=", "<=", ">=", "&&",
                                      "||", "<<", ">>"};
    for (const char *T : Two) {
      if (S.substr(Pos, 2) == T) {
        Cur.K = Tok::Punct;
        Cur.Text = T;
        Pos += 2;
        return;
      }
    }
    Cur.K = Tok::Punct;
    Cur.Text = std::string(1, C);
    ++Pos;
  }

  std::string Err;

private:
  void skip() {
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < S.size() && S[Pos + 1] == '/') {
        while (Pos < S.size() && S[Pos] != '\n')
          ++Pos;
      } else if (C == '/' && Pos + 1 < S.size() && S[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < S.size() &&
               !(S[Pos] == '*' && S[Pos + 1] == '/')) {
          if (S[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        Pos += 2;
      } else {
        break;
      }
    }
  }

  std::string_view S;
  size_t Pos = 0;
  unsigned Line = 1;
  Token Cur;
};

class Parser {
public:
  explicit Parser(std::string_view S) : L(S) {}

  Expected<Program> run();

private:
  Lexer L;
  std::string ErrMsg;

  bool fail(const std::string &M) {
    if (ErrMsg.empty())
      ErrMsg = formatString("line %u: %s", L.cur().Line, M.c_str());
    return false;
  }
  bool isPunct(const char *P) const {
    return L.cur().K == Tok::Punct && L.cur().Text == P;
  }
  bool isIdent(const char *I) const {
    return L.cur().K == Tok::Ident && L.cur().Text == I;
  }
  bool eatPunct(const char *P) {
    if (!isPunct(P))
      return fail(formatString("expected '%s'", P));
    L.next();
    return true;
  }

  bool parseType(Type &T);
  bool tryParseType(Type &T);
  ExprPtr parseExpr();       // assignment level
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix(ExprPtr Base);
  ExprPtr parsePrimary();
  StmtPtr parseStmt();
  bool parseBlockInto(std::vector<StmtPtr> &Out);
};

int precedenceOf(const std::string &Op) {
  if (Op == "||")
    return 1;
  if (Op == "&&")
    return 2;
  if (Op == "|")
    return 3;
  if (Op == "^")
    return 4;
  if (Op == "&")
    return 5;
  if (Op == "==" || Op == "!=")
    return 6;
  if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=")
    return 7;
  if (Op == "<<" || Op == ">>")
    return 8;
  if (Op == "+" || Op == "-")
    return 9;
  if (Op == "*" || Op == "/" || Op == "%")
    return 10;
  return 0;
}

} // namespace

bool Parser::tryParseType(Type &T) {
  if (isIdent("int"))
    T.B = Type::Int;
  else if (isIdent("char"))
    T.B = Type::Char;
  else
    return false;
  L.next();
  T.PtrDepth = 0;
  while (isPunct("*")) {
    ++T.PtrDepth;
    L.next();
  }
  return true;
}

bool Parser::parseType(Type &T) {
  if (!tryParseType(T))
    return fail("expected a type");
  return true;
}

ExprPtr Parser::parsePrimary() {
  auto E = std::make_unique<Expr>();
  E->Line = L.cur().Line;
  switch (L.cur().K) {
  case Tok::Number:
  case Tok::CharLit:
    E->K = Expr::Num;
    E->Val = L.cur().Val;
    L.next();
    return E;
  case Tok::String:
    E->K = Expr::StrLit;
    E->Str = L.cur().Text;
    L.next();
    return E;
  case Tok::Ident: {
    E->Name = L.cur().Text;
    L.next();
    if (isPunct("(")) {
      E->K = Expr::Call;
      L.next();
      if (!isPunct(")")) {
        while (true) {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          E->Args.push_back(std::move(Arg));
          if (!isPunct(","))
            break;
          L.next();
        }
      }
      if (!eatPunct(")"))
        return nullptr;
      return E;
    }
    E->K = Expr::Var;
    return E;
  }
  case Tok::Punct:
    if (isPunct("(")) {
      L.next();
      ExprPtr Inner = parseExpr();
      if (!Inner || !eatPunct(")"))
        return nullptr;
      return Inner;
    }
    break;
  case Tok::Eof:
    break;
  }
  fail("expected an expression");
  return nullptr;
}

ExprPtr Parser::parsePostfix(ExprPtr Base) {
  while (isPunct("[")) {
    L.next();
    ExprPtr Idx = parseExpr();
    if (!Idx || !eatPunct("]"))
      return nullptr;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Index;
    E->L = std::move(Base);
    E->R = std::move(Idx);
    Base = std::move(E);
  }
  return Base;
}

ExprPtr Parser::parseUnary() {
  if (isPunct("-") || isPunct("!") || isPunct("~")) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Unary;
    E->Op = L.cur().Text;
    L.next();
    E->L = parseUnary();
    return E->L ? std::move(E) : nullptr;
  }
  if (isPunct("*")) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Deref;
    L.next();
    E->L = parseUnary();
    return E->L ? std::move(E) : nullptr;
  }
  if (isPunct("&")) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Addr;
    L.next();
    E->L = parseUnary();
    return E->L ? std::move(E) : nullptr;
  }
  ExprPtr P = parsePrimary();
  if (!P)
    return nullptr;
  return parsePostfix(std::move(P));
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (L.cur().K == Tok::Punct) {
    int Prec = precedenceOf(L.cur().Text);
    if (Prec == 0 || Prec < MinPrec)
      break;
    std::string Op = L.cur().Text;
    L.next();
    ExprPtr Rhs = parseBinary(Prec + 1);
    if (!Rhs)
      return nullptr;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Binary;
    E->Op = Op;
    E->L = std::move(Lhs);
    E->R = std::move(Rhs);
    Lhs = std::move(E);
  }
  return Lhs;
}

ExprPtr Parser::parseExpr() {
  ExprPtr Lhs = parseBinary(1);
  if (!Lhs)
    return nullptr;
  if (isPunct("=")) {
    L.next();
    ExprPtr Rhs = parseExpr(); // right associative
    if (!Rhs)
      return nullptr;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Assign;
    E->L = std::move(Lhs);
    E->R = std::move(Rhs);
    return E;
  }
  return Lhs;
}

bool Parser::parseBlockInto(std::vector<StmtPtr> &Out) {
  if (!eatPunct("{"))
    return false;
  while (!isPunct("}")) {
    if (L.cur().K == Tok::Eof)
      return fail("unterminated block");
    StmtPtr S = parseStmt();
    if (!S)
      return false;
    Out.push_back(std::move(S));
  }
  L.next();
  return true;
}

StmtPtr Parser::parseStmt() {
  auto S = std::make_unique<Stmt>();
  S->Line = L.cur().Line;

  Type T;
  if (tryParseType(T)) {
    S->K = Stmt::Decl;
    S->DeclTy = T;
    if (L.cur().K != Tok::Ident) {
      fail("expected a variable name");
      return nullptr;
    }
    S->Name = L.cur().Text;
    L.next();
    if (isPunct("[")) {
      L.next();
      if (L.cur().K != Tok::Number) {
        fail("expected an array size");
        return nullptr;
      }
      S->ArraySize = L.cur().Val;
      L.next();
      if (!eatPunct("]"))
        return nullptr;
    }
    if (isPunct("=")) {
      L.next();
      S->E = parseExpr();
      if (!S->E)
        return nullptr;
    }
    if (!eatPunct(";"))
      return nullptr;
    return S;
  }

  if (isIdent("if")) {
    L.next();
    S->K = Stmt::If;
    if (!eatPunct("("))
      return nullptr;
    S->E = parseExpr();
    if (!S->E || !eatPunct(")"))
      return nullptr;
    if (isPunct("{")) {
      if (!parseBlockInto(S->Body))
        return nullptr;
    } else {
      StmtPtr One = parseStmt();
      if (!One)
        return nullptr;
      S->Body.push_back(std::move(One));
    }
    if (isIdent("else")) {
      L.next();
      if (isPunct("{")) {
        if (!parseBlockInto(S->Else))
          return nullptr;
      } else {
        StmtPtr One = parseStmt();
        if (!One)
          return nullptr;
        S->Else.push_back(std::move(One));
      }
    }
    return S;
  }
  if (isIdent("while")) {
    L.next();
    S->K = Stmt::While;
    if (!eatPunct("("))
      return nullptr;
    S->E = parseExpr();
    if (!S->E || !eatPunct(")"))
      return nullptr;
    if (!parseBlockInto(S->Body))
      return nullptr;
    return S;
  }
  if (isIdent("for")) {
    L.next();
    S->K = Stmt::For;
    if (!eatPunct("("))
      return nullptr;
    if (!isPunct(";")) {
      S->Init = parseStmt(); // decl or expression statement (eats ';')
      if (!S->Init)
        return nullptr;
    } else {
      L.next();
    }
    if (!isPunct(";")) {
      S->E = parseExpr();
      if (!S->E)
        return nullptr;
    }
    if (!eatPunct(";"))
      return nullptr;
    if (!isPunct(")")) {
      auto Step = std::make_unique<Stmt>();
      Step->K = Stmt::ExprStmt;
      Step->E = parseExpr();
      if (!Step->E)
        return nullptr;
      S->Step = std::move(Step);
    }
    if (!eatPunct(")"))
      return nullptr;
    if (!parseBlockInto(S->Body))
      return nullptr;
    return S;
  }
  if (isIdent("switch")) {
    L.next();
    S->K = Stmt::Switch;
    if (!eatPunct("("))
      return nullptr;
    S->E = parseExpr();
    if (!S->E || !eatPunct(")") || !eatPunct("{"))
      return nullptr;
    while (!isPunct("}")) {
      SwitchCase C;
      if (isIdent("case")) {
        L.next();
        if (L.cur().K != Tok::Number && L.cur().K != Tok::CharLit) {
          fail("expected a case constant");
          return nullptr;
        }
        C.Value = L.cur().Val;
        L.next();
      } else if (isIdent("default")) {
        L.next();
        C.IsDefault = true;
      } else {
        fail("expected 'case' or 'default'");
        return nullptr;
      }
      if (!eatPunct(":"))
        return nullptr;
      while (!isPunct("}") && !isIdent("case") && !isIdent("default")) {
        StmtPtr Inner = parseStmt();
        if (!Inner)
          return nullptr;
        C.Body.push_back(std::move(Inner));
      }
      S->Cases.push_back(std::move(C));
    }
    L.next();
    return S;
  }
  if (isIdent("return")) {
    L.next();
    S->K = Stmt::Return;
    if (!isPunct(";")) {
      S->E = parseExpr();
      if (!S->E)
        return nullptr;
    }
    if (!eatPunct(";"))
      return nullptr;
    return S;
  }
  if (isIdent("break")) {
    L.next();
    S->K = Stmt::Break;
    if (!eatPunct(";"))
      return nullptr;
    return S;
  }
  if (isIdent("continue")) {
    L.next();
    S->K = Stmt::Continue;
    if (!eatPunct(";"))
      return nullptr;
    return S;
  }
  if (isPunct("{")) {
    S->K = Stmt::Block;
    if (!parseBlockInto(S->Body))
      return nullptr;
    return S;
  }

  S->K = Stmt::ExprStmt;
  S->E = parseExpr();
  if (!S->E || !eatPunct(";"))
    return nullptr;
  return S;
}

Expected<Program> Parser::run() {
  Program P;
  while (L.cur().K != Tok::Eof) {
    Type T;
    if (!parseType(T))
      return Error::failure(ErrMsg);
    if (L.cur().K != Tok::Ident)
      return Error::failure(
          formatString("line %u: expected a declaration name", L.cur().Line));
    std::string Name = L.cur().Text;
    L.next();

    if (isPunct("(")) {
      // Function definition.
      FuncDecl F;
      F.Name = std::move(Name);
      F.RetTy = T;
      L.next();
      if (!isPunct(")")) {
        while (true) {
          Type PT;
          if (!parseType(PT))
            return Error::failure(ErrMsg);
          if (L.cur().K != Tok::Ident)
            return Error::failure(formatString(
                "line %u: expected a parameter name", L.cur().Line));
          F.Params.emplace_back(PT, L.cur().Text);
          L.next();
          if (!isPunct(","))
            break;
          L.next();
        }
      }
      if (!eatPunct(")") || !parseBlockInto(F.Body))
        return Error::failure(ErrMsg);
      P.Funcs.push_back(std::move(F));
      continue;
    }

    // Global variable.
    GlobalDecl G;
    G.Ty = T;
    G.Name = std::move(Name);
    if (isPunct("[")) {
      L.next();
      if (L.cur().K != Tok::Number)
        return Error::failure(
            formatString("line %u: expected an array size", L.cur().Line));
      G.ArraySize = L.cur().Val;
      L.next();
      if (!eatPunct("]"))
        return Error::failure(ErrMsg);
    }
    if (isPunct("=")) {
      L.next();
      G.HasInit = true;
      if (L.cur().K == Tok::String) {
        G.StrInit = L.cur().Text;
        L.next();
      } else if (isPunct("{")) {
        L.next();
        while (!isPunct("}")) {
          int64_t Sign = 1;
          if (isPunct("-")) {
            Sign = -1;
            L.next();
          }
          if (L.cur().K != Tok::Number && L.cur().K != Tok::CharLit)
            return Error::failure(formatString(
                "line %u: expected a constant initializer", L.cur().Line));
          G.Init.push_back(Sign * L.cur().Val);
          L.next();
          if (isPunct(","))
            L.next();
        }
        L.next();
      } else {
        int64_t Sign = 1;
        if (isPunct("-")) {
          Sign = -1;
          L.next();
        }
        if (L.cur().K != Tok::Number && L.cur().K != Tok::CharLit)
          return Error::failure(formatString(
              "line %u: expected a constant initializer", L.cur().Line));
        G.Init.push_back(Sign * L.cur().Val);
        L.next();
      }
    }
    if (!eatPunct(";"))
      return Error::failure(ErrMsg);
    P.Globals.push_back(std::move(G));
  }
  if (!L.Err.empty())
    return Error::failure(L.Err);
  return P;
}

Expected<Program> lang::parse(std::string_view Source) {
  Parser P(Source);
  return P.run();
}
