//===- lang/ProgGen.cpp - Deterministic MiniCC program generator ------------===//
//
// Template-based generation: a program is a set of power-of-two global
// int tables, a 256-byte global input window, Size-scaled helper
// functions f0..fN-1 (each built from statement templates over a
// depth-limited expression grammar), and a fixed main() that folds every
// input byte through the helper DAG. All randomness flows through one
// SplitMix64 stream seeded from the options, consumed in a fixed order —
// that, plus string-only output, is the whole determinism story.
//
// Two invariants the emitter enforces structurally:
//   - scoping: locals declared inside a nested `{ }` are dropped from
//     the in-scope list when the block closes, so later statements never
//     reference an out-of-scope name;
//   - bounded cost: every statement carries a dynamic-cost estimate
//     (multiplied through enclosing loop trip counts), and a helper
//     stops emitting call statements once its estimate would exceed
//     CostCap — so the worst-case instruction count of one helper
//     invocation is capped, and a full 256-byte main() run stays well
//     inside every budget the harnesses use.
//
//===----------------------------------------------------------------------===//

#include "lang/ProgGen.h"

#include "support/RNG.h"

using namespace teapot;
using namespace teapot::lang;

namespace {

/// Worst-case dynamic-cost cap (rough instruction estimate) for one
/// invocation of one helper. main() calls one helper per input byte, so
/// a full 256-byte run costs at most ~256 × CostCap ≈ 5M instructions —
/// far under the 20M native test budget and the 80M instrumented one.
constexpr uint64_t CostCap = 20'000;

/// Everything one generation run needs: the RNG stream, the knobs, and
/// the names in scope while emitting a function body.
struct Gen {
  RNG R;
  unsigned Size;
  std::string Out;

  // Global tables: name -> power-of-two length (mask = len - 1).
  std::vector<std::pair<std::string, unsigned>> Tables;
  unsigned NumHelpers = 0;

  // Per-function emission state.
  std::vector<std::string> Locals; // int scalars in scope
  unsigned LoopCounter = 0; // loop induction vars get their own L<n>
                            // namespace, never entered into Locals — a
                            // random assignment to an enclosing loop's
                            // counter would break termination
  unsigned FuncIdx = 0;            // helpers may call only f0..FuncIdx-1
  unsigned Indent = 1;
  uint64_t Est = 0;  // estimated cost of the function being emitted
  uint64_t Mult = 1; // product of enclosing loop trip counts
  std::vector<uint64_t> HelperCost; // final estimate per helper

  explicit Gen(const ProgGenOptions &O)
      : R(O.Seed * 0x9e3779b97f4a7c15ULL + 0x7454806515298ULL),
        Size(O.Size < 1 ? 1 : (O.Size > 16 ? 16 : O.Size)) {}

  void line(const std::string &S) {
    Out.append(Indent * 2, ' ');
    Out += S;
    Out += "\n";
  }

  void charge(uint64_t Units) { Est += Units * Mult; }

  // --- Expression grammar --------------------------------------------------
  // Every value-producing nonterminal returns a parenthesized string, so
  // generated precedence never depends on MiniCC's parser.

  std::string leaf() {
    switch (R.below(5)) {
    case 0:
      return std::to_string(R.below(256));
    case 1:
      return "a";
    case 2:
      return "b";
    case 3:
      if (!Locals.empty())
        return Locals[R.below(Locals.size())];
      return "a";
    default:
      // Masked read of the global input window: always in bounds.
      return "(g_in[(a + " + std::to_string(R.below(64)) + ") & 255])";
    }
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.chance(1, 4))
      return leaf();
    switch (R.below(8)) {
    case 0:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case 1:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case 2:
      return "(" + expr(Depth - 1) + " * " + std::to_string(R.range(1, 9)) +
             ")";
    case 3:
      return "(" + expr(Depth - 1) + " ^ " + expr(Depth - 1) + ")";
    case 4:
      return "(" + expr(Depth - 1) + " & " + std::to_string(R.below(256)) +
             ")";
    case 5:
      // Divisor ORed with 1: never zero, so UDIV/UREM cannot fault.
      return "(" + expr(Depth - 1) + (R.chance(1, 2) ? " / (" : " % (") +
             expr(Depth - 1) + " | 1))";
    case 6: {
      // Bounds-masked table lookup on a computed index.
      const auto &T = Tables[R.below(Tables.size())];
      return "(" + T.first + "[(" + expr(Depth - 1) + ") & " +
             std::to_string(T.second - 1) + "])";
    }
    default:
      return "(" + expr(Depth - 1) +
             (R.chance(1, 2) ? " >> " : " << ") +
             std::to_string(R.below(8)) + ")";
    }
  }

  std::string cond() {
    static const char *Cmp[] = {"<", "<=", "==", "!=", ">", ">="};
    return "(" + expr(1) + " " + Cmp[R.below(6)] + " " + expr(1) + ")";
  }

  // --- Statement templates -------------------------------------------------

  std::string freshLocal() {
    std::string N = "v" + std::to_string(Locals.size());
    Locals.push_back(N);
    return N;
  }

  /// Emits a nested statement list, un-scoping any locals it declared
  /// when the block closes.
  void nested(unsigned Depth, unsigned Stmts) {
    size_t Mark = Locals.size();
    block(Depth, Stmts);
    Locals.resize(Mark);
  }

  void stmtAssign() {
    charge(10);
    if (Locals.empty() || R.chance(1, 3)) {
      std::string N = freshLocal();
      line("int " + N + " = " + expr(2) + ";");
    } else {
      const std::string &N = Locals[R.below(Locals.size())];
      line(N + " = " + expr(2) + ";");
    }
  }

  void stmtTableStore() {
    charge(12);
    const auto &T = Tables[R.below(Tables.size())];
    line(T.first + "[(" + expr(1) + ") & " + std::to_string(T.second - 1) +
         "] = " + expr(2) + ";");
  }

  /// The Spectre-V1 shape: a bounds check guarding a (masked, therefore
  /// always-safe) dependent table lookup on an input-derived index. The
  /// mask keeps the access architecturally in bounds even when the
  /// simulator runs the mispredicted path; the taint on the index is
  /// what the detectors score.
  void stmtCheckedLookup() {
    charge(15);
    const auto &T = Tables[R.below(Tables.size())];
    std::string Idx = "(a + " + std::to_string(R.below(200)) + ")";
    line("if ((" + Idx + " & 255) < " + std::to_string(T.second) + ") {");
    ++Indent;
    line("acc = acc + " + T.first + "[" + Idx + " & " +
         std::to_string(T.second - 1) + "];");
    --Indent;
    line("}");
  }

  void stmtIf(unsigned Depth) {
    charge(8);
    line("if " + cond() + " {");
    ++Indent;
    nested(Depth, R.range(1, 2));
    --Indent;
    if (R.chance(1, 2)) {
      line("} else {");
      ++Indent;
      nested(Depth, 1);
      --Indent;
    }
    line("}");
  }

  void stmtFor(unsigned Depth) {
    uint64_t Trips = R.range(2, 6);
    std::string I = "L" + std::to_string(LoopCounter++);
    line("int " + I + ";");
    line("for (" + I + " = 0; " + I + " < " + std::to_string(Trips) +
         "; " + I + " = " + I + " + 1) {");
    ++Indent;
    uint64_t OuterMult = Mult;
    Mult *= Trips;
    charge(8);
    line("acc = acc + ((" + expr(1) + ") & 255);");
    if (Depth > 0 && R.chance(1, 2))
      nested(Depth, 1);
    Mult = OuterMult;
    --Indent;
    line("}");
  }

  void stmtWhile() {
    uint64_t Trips = R.range(1, 5);
    std::string I = "L" + std::to_string(LoopCounter++);
    line("int " + I + " = " + std::to_string(Trips) + ";");
    line("while (" + I + " > 0) {");
    ++Indent;
    charge(8 * Trips);
    line("acc = acc ^ (" + expr(1) + ");");
    line(I + " = " + I + " - 1;");
    --Indent;
    line("}");
  }

  void stmtSwitch() {
    charge(12);
    line("switch ((" + expr(1) + ") & 3) {");
    ++Indent;
    for (int C = 0; C != 3; ++C) {
      line("case " + std::to_string(C) + ": {");
      ++Indent;
      line("acc = acc + " + std::to_string(R.below(100)) + ";");
      line("break;");
      --Indent;
      line("}");
    }
    line("default: {");
    ++Indent;
    line("acc = acc - " + std::to_string(R.below(100)) + ";");
    line("break;");
    --Indent;
    line("}");
    --Indent;
    line("}");
  }

  void stmtCall() {
    if (FuncIdx == 0)
      return stmtAssign();
    unsigned Callee = static_cast<unsigned>(R.below(FuncIdx));
    // Cost discipline: skip the call (cheap statement instead) if it
    // would push this helper's worst-case estimate past the cap.
    if (Est + (HelperCost[Callee] + 10) * Mult > CostCap)
      return stmtAssign();
    charge(HelperCost[Callee] + 10);
    line("acc = acc + f" + std::to_string(Callee) + "(" + expr(1) + ", " +
         expr(1) + ");");
  }

  void block(unsigned Depth, unsigned Stmts) {
    for (unsigned S = 0; S != Stmts; ++S) {
      switch (R.below(8)) {
      case 0:
        stmtAssign();
        break;
      case 1:
        stmtTableStore();
        break;
      case 2:
        stmtCheckedLookup();
        break;
      case 3:
        if (Depth > 0) {
          stmtIf(Depth - 1);
          break;
        }
        stmtAssign();
        break;
      case 4:
        if (Depth > 0) {
          stmtFor(Depth - 1);
          break;
        }
        stmtCheckedLookup();
        break;
      case 5:
        stmtWhile();
        break;
      case 6:
        stmtSwitch();
        break;
      default:
        stmtCall();
        break;
      }
    }
  }

  void emitHelper(unsigned Idx) {
    FuncIdx = Idx;
    Locals.clear();
    LoopCounter = 0;
    Indent = 1;
    Est = 10; // prologue + return
    Mult = 1;
    Out += "int f" + std::to_string(Idx) + "(int a, int b) {\n";
    line("int acc = " + std::to_string(R.below(1000)) + ";");
    block(/*Depth=*/2, /*Stmts=*/2 + Size / 2);
    line("return acc;");
    Out += "}\n\n";
    HelperCost.push_back(Est);
  }
};

} // namespace

std::string lang::generateProgram(const ProgGenOptions &Opts) {
  Gen G(Opts);

  G.Out += "/* generated: " + progGenName(Opts) + " */\n";

  // Global tables: 2-4 of them, power-of-two sizes, deterministic
  // contents.
  unsigned NumTables = 2 + static_cast<unsigned>(G.R.below(3));
  for (unsigned T = 0; T != NumTables; ++T) {
    unsigned Len = 8u << G.R.below(3); // 8, 16, or 32
    std::string Name = "g_tab" + std::to_string(T);
    G.Out += "int " + Name + "[" + std::to_string(Len) + "] = {";
    for (unsigned I = 0; I != Len; ++I)
      G.Out += (I ? ", " : "") + std::to_string(G.R.below(4096));
    G.Out += "};\n";
    G.Tables.push_back({Name, Len});
  }
  G.Out += "char g_in[256];\n";
  G.Out += "int g_len;\n\n";

  G.NumHelpers = 1 + G.Size / 2 + static_cast<unsigned>(G.R.below(2));
  for (unsigned F = 0; F != G.NumHelpers; ++F)
    G.emitHelper(F);

  // Fixed main(): copy input into the window, fold every byte through a
  // deterministic rotation of the helpers, emit an 8-byte digest.
  G.Out += "int main() {\n"
           "  int n = input_size();\n"
           "  if (n > 256) { n = 256; }\n"
           "  char *tmp = malloc(n + 1);\n"
           "  read_input(tmp, n);\n"
           "  int i;\n"
           "  for (i = 0; i < n; i = i + 1) { g_in[i] = tmp[i]; }\n"
           "  g_len = n;\n";
  G.Out += "  int acc = " + std::to_string(G.R.below(65536)) + ";\n";
  G.Out += "  for (i = 0; i < n; i = i + 1) {\n"
           "    int c = g_in[i];\n";
  // Each helper gets a slice of the byte stream (i % NumHelpers).
  for (unsigned F = 0; F != G.NumHelpers; ++F)
    G.Out += "    if (i % " + std::to_string(G.NumHelpers) +
             " == " + std::to_string(F) + ") { acc = acc + f" +
             std::to_string(F) + "(c, i); }\n";
  G.Out += "  }\n"
           "  char out[8];\n"
           "  for (i = 0; i < 8; i = i + 1) {\n"
           "    out[i] = (acc >> (i * 8)) & 255;\n"
           "  }\n"
           "  write_out(out, 8);\n"
           "  free(tmp);\n"
           "  return 0;\n"
           "}\n";
  return G.Out;
}

std::vector<std::vector<uint8_t>>
lang::sampleInputs(const ProgGenOptions &Opts) {
  // An independent stream (different offset than generateProgram, so
  // inputs do not replay the structural choices): a few random byte
  // strings of different lengths, plus a fixed ramp that sweeps the
  // masked-lookup index space.
  RNG R(Opts.Seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  std::vector<std::vector<uint8_t>> Inputs;
  for (unsigned K = 0; K != 3; ++K) {
    std::vector<uint8_t> In(8 + R.below(48));
    for (auto &B : In)
      B = static_cast<uint8_t>(R.next());
    Inputs.push_back(std::move(In));
  }
  std::vector<uint8_t> Ramp(64);
  for (unsigned I = 0; I != Ramp.size(); ++I)
    Ramp[I] = static_cast<uint8_t>(I * 7 + 3);
  Inputs.push_back(std::move(Ramp));
  return Inputs;
}

std::string lang::progGenName(const ProgGenOptions &Opts) {
  unsigned Size = Opts.Size < 1 ? 1 : (Opts.Size > 16 ? 16 : Opts.Size);
  return "proggen-s" + std::to_string(Opts.Seed) + "-z" +
         std::to_string(Size);
}
