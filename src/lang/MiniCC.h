//===- lang/MiniCC.h - MiniCC compiler driver ---------------------*- C++ -*-===//
///
/// \file
/// Public entry points of MiniCC: parse + compile MiniCC source to TISA
/// assembly text, or all the way to a linked TBF binary.
///
/// Builtins the language exposes (lowered to EXT instructions, i.e.
/// external library calls — which is what makes them speculation
/// barriers in the Shadow Copy, exactly like libc calls under Teapot):
///
///   int  read_input(char *buf, int len);
///   int  input_size();
///   void write_out(char *buf, int len);
///   char *malloc(int n);          void free(char *p);
///   void exit(int status);        void fence();   // serializing
///
/// The switch-lowering option reproduces the Figure 2 observation:
/// `Branches` compiles switch statements to compare-and-jump cascades
/// (GCC-style, each branch a potential Spectre-V1 victim), `JumpTable`
/// to a bounds-checked indirect jump through a read-only table
/// (Clang-style).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_LANG_MINICC_H
#define TEAPOT_LANG_MINICC_H

#include "lang/AST.h"
#include "obj/ObjectFile.h"
#include "support/Error.h"

#include <string>
#include <string_view>

namespace teapot {
namespace lang {

enum class SwitchLowering : uint8_t { Branches, JumpTable };

struct CompileOptions {
  SwitchLowering Switches = SwitchLowering::Branches;
};

/// Parses MiniCC source into an AST.
Expected<Program> parse(std::string_view Source);

/// Compiles an AST to TISA assembly text.
Expected<std::string> codegen(const Program &P, const CompileOptions &Opts);

/// Convenience: source -> assembly text.
Expected<std::string> compileToAsm(std::string_view Source,
                                   const CompileOptions &Opts = {});

/// Convenience: source -> linked TBF binary.
Expected<obj::ObjectFile> compile(std::string_view Source,
                                  const CompileOptions &Opts = {});

} // namespace lang
} // namespace teapot

#endif // TEAPOT_LANG_MINICC_H
