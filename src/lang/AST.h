//===- lang/AST.h - MiniCC abstract syntax ------------------------*- C++ -*-===//
///
/// \file
/// AST for MiniCC, the small C-like language the workload programs are
/// written in. MiniCC exists so the evaluation binaries are *compiled
/// from source by a compiler we control* — which is what lets the
/// Figure 2 experiment flip the switch-lowering strategy and observe the
/// gadget appear/disappear.
///
/// Types are `int` (64-bit), `char` (8-bit, unsigned), pointers to
/// either, and fixed-size arrays (which decay to pointers in
/// expressions).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_LANG_AST_H
#define TEAPOT_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace teapot {
namespace lang {

/// A MiniCC type: base type plus pointer depth.
struct Type {
  enum Base : uint8_t { Int, Char } B = Int;
  uint8_t PtrDepth = 0;

  bool isPointer() const { return PtrDepth > 0; }
  /// Size of a value of this type.
  unsigned size() const {
    if (PtrDepth > 0)
      return 8;
    return B == Char ? 1 : 8;
  }
  /// Size of the pointee (requires isPointer()).
  unsigned pointeeSize() const {
    Type T = *this;
    --T.PtrDepth;
    return T.size();
  }
  Type pointee() const {
    Type T = *this;
    --T.PtrDepth;
    return T;
  }
  Type pointerTo() const {
    Type T = *this;
    ++T.PtrDepth;
    return T;
  }
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum Kind : uint8_t {
    Num,    // Val
    StrLit, // Str
    Var,    // Name
    Unary,  // Op ("-", "!", "~"), L
    Binary, // Op, L, R
    Index,  // L[R]
    Deref,  // *L
    Addr,   // &L
    Call,   // Name(Args)
    Assign, // L = R
  } K = Num;

  int64_t Val = 0;
  std::string Str;
  std::string Name;
  std::string Op;
  ExprPtr L, R;
  std::vector<ExprPtr> Args;
  unsigned Line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct SwitchCase {
  int64_t Value = 0;
  bool IsDefault = false;
  std::vector<StmtPtr> Body;
};

struct Stmt {
  enum Kind : uint8_t {
    Block,
    If,      // E, Body, Else
    While,   // E, Body
    For,     // Init, E (cond), Step, Body
    Switch,  // E, Cases
    Return,  // E (may be null)
    Break,
    Continue,
    ExprStmt, // E
    Decl,     // DeclTy, Name, ArraySize, E (init, may be null)
  } K = Block;

  ExprPtr E;
  StmtPtr Init, Step;
  std::vector<StmtPtr> Body;
  std::vector<StmtPtr> Else;
  std::vector<SwitchCase> Cases;

  Type DeclTy;
  std::string Name;
  int64_t ArraySize = -1; // -1: scalar
  unsigned Line = 0;
};

struct FuncDecl {
  std::string Name;
  Type RetTy;
  std::vector<std::pair<Type, std::string>> Params;
  std::vector<StmtPtr> Body;
};

struct GlobalDecl {
  Type Ty;
  std::string Name;
  int64_t ArraySize = -1;
  std::vector<int64_t> Init; // numeric initializer list
  std::string StrInit;       // for char arrays
  bool HasInit = false;
};

struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
};

} // namespace lang
} // namespace teapot

#endif // TEAPOT_LANG_AST_H
