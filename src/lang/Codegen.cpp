//===- lang/Codegen.cpp - MiniCC code generation ----------------------------===//
//
// A deliberately simple one-pass code generator: expression results live
// in r0, temporaries spill to the machine stack, locals live at
// fp-relative slots. No optimization is performed — bounds checks compile
// to CMP + JCC, which is exactly the shape Spectre-V1 gadgets need (and
// what -O0-style codegen of the victim patterns looks like).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "lang/MiniCC.h"
#include "support/StringUtils.h"

#include <map>
#include <vector>

using namespace teapot;
using namespace teapot::lang;

namespace {

struct LocalSlot {
  Type Ty;
  int64_t ArraySize = -1; // -1: scalar
  int64_t Offset = 0;     // negative, fp-relative
};

class Codegen {
public:
  Codegen(const Program &P, const CompileOptions &Opts) : P(P), Opts(Opts) {}

  Expected<std::string> run();

private:
  const Program &P;
  const CompileOptions &Opts;
  std::string Text;   // .text body
  std::string Rodata; // string literals + jump tables
  std::string Data;
  std::string Bss;
  unsigned NextLabel = 0;
  unsigned NextString = 0;
  std::string ErrMsg;

  // Per-function state.
  const FuncDecl *CurFunc = nullptr;
  std::vector<std::map<std::string, LocalSlot>> Scopes;
  int64_t FrameSize = 0;
  std::string EpilogueLabel;
  std::vector<std::string> BreakLabels;
  std::vector<std::string> ContinueLabels;

  std::map<std::string, const GlobalDecl *> Globals;
  std::map<std::string, const FuncDecl *> Funcs;

  bool fail(unsigned Line, const std::string &M) {
    if (ErrMsg.empty())
      ErrMsg = formatString("line %u: %s", Line, M.c_str());
    return false;
  }
  void emit(const std::string &S) { Text += "    " + S + "\n"; }
  void emitLabel(const std::string &L) { Text += L + ":\n"; }
  std::string newLabel() { return formatString(".L%u", NextLabel++); }

  const LocalSlot *findLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  int64_t allocSlot(unsigned Bytes) {
    FrameSize += (Bytes + 7) & ~7u;
    return -FrameSize;
  }

  static int64_t frameBytes(const std::vector<StmtPtr> &Body);
  bool genFunction(const FuncDecl &F);
  bool genStmt(const Stmt &S);
  bool genStmts(const std::vector<StmtPtr> &Body);
  bool genSwitch(const Stmt &S);
  bool genExpr(const Expr &E, Type &Ty);
  bool genAddr(const Expr &E, Type &ValTy);
  bool genCondJump(const Expr &E, const std::string &TrueL,
                   const std::string &FalseL);
  bool genCall(const Expr &E, Type &Ty);
  void emitGlobals();

  static const char *ccForOp(const std::string &Op) {
    if (Op == "==")
      return "eq";
    if (Op == "!=")
      return "ne";
    if (Op == "<")
      return "lt";
    if (Op == "<=")
      return "le";
    if (Op == ">")
      return "gt";
    if (Op == ">=")
      return "ge";
    return nullptr;
  }
};

} // namespace

int64_t Codegen::frameBytes(const std::vector<StmtPtr> &Body) {
  int64_t N = 0;
  for (const StmtPtr &S : Body) {
    if (!S)
      continue;
    if (S->K == Stmt::Decl) {
      unsigned Bytes =
          S->ArraySize >= 0
              ? static_cast<unsigned>(S->ArraySize) * S->DeclTy.size()
              : 8;
      N += (Bytes + 7) & ~7u;
    }
    N += frameBytes(S->Body) + frameBytes(S->Else);
    if (S->Init) {
      std::vector<StmtPtr> Tmp;
      if (S->Init->K == Stmt::Decl)
        N += 8;
    }
    for (const SwitchCase &C : S->Cases)
      N += frameBytes(C.Body);
  }
  return N;
}

bool Codegen::genAddr(const Expr &E, Type &ValTy) {
  switch (E.K) {
  case Expr::Var: {
    if (const LocalSlot *L = findLocal(E.Name)) {
      emit(formatString("lea r0, [fp + %lld]",
                        static_cast<long long>(L->Offset)));
      ValTy = L->Ty;
      return true;
    }
    auto G = Globals.find(E.Name);
    if (G == Globals.end())
      return fail(E.Line, "undefined variable '" + E.Name + "'");
    emit("lea r0, [g_" + E.Name + "]");
    ValTy = G->second->Ty;
    return true;
  }
  case Expr::Deref: {
    Type PtrTy;
    if (!genExpr(*E.L, PtrTy))
      return false;
    if (!PtrTy.isPointer())
      return fail(E.Line, "dereference of a non-pointer");
    ValTy = PtrTy.pointee();
    return true;
  }
  case Expr::Index: {
    Type PtrTy;
    if (!genExpr(*E.L, PtrTy)) // base pointer (arrays decay)
      return false;
    if (!PtrTy.isPointer())
      return fail(E.Line, "indexing a non-pointer");
    emit("push r0");
    Type IdxTy;
    if (!genExpr(*E.R, IdxTy))
      return false;
    emit("mov r1, r0");
    emit("pop r0");
    unsigned Elem = PtrTy.pointeeSize();
    if (Elem == 8)
      emit("shl r1, 3");
    else if (Elem != 1)
      emit(formatString("mul r1, %u", Elem));
    emit("add r0, r1");
    ValTy = PtrTy.pointee();
    return true;
  }
  default:
    return fail(E.Line, "expression is not assignable");
  }
}

bool Codegen::genCall(const Expr &E, Type &Ty) {
  if (E.Name == "fence") {
    emit("fence");
    Ty = Type{Type::Int, 0};
    return true;
  }
  if (E.Args.size() > 6)
    return fail(E.Line, "too many call arguments");
  for (const ExprPtr &Arg : E.Args) {
    Type AT;
    if (!genExpr(*Arg, AT))
      return false;
    emit("push r0");
  }
  for (size_t I = E.Args.size(); I-- > 0;)
    emit(formatString("pop r%zu", I));

  static const std::map<std::string, int> Builtins = {
      {"exit", 0},   {"read_input", 1}, {"input_size", 2},
      {"write_out", 3}, {"malloc", 4},  {"free", 5},
      {"abort", 6}};
  auto B = Builtins.find(E.Name);
  if (B != Builtins.end()) {
    emit(formatString("ext %d", B->second));
    Ty = E.Name == "malloc" ? Type{Type::Char, 1} : Type{Type::Int, 0};
    return true;
  }
  auto F = Funcs.find(E.Name);
  if (F == Funcs.end())
    return fail(E.Line, "call to undefined function '" + E.Name + "'");
  if (F->second->Params.size() != E.Args.size())
    return fail(E.Line, "wrong number of arguments to '" + E.Name + "'");
  emit("call " + E.Name);
  Ty = F->second->RetTy;
  return true;
}

bool Codegen::genExpr(const Expr &E, Type &Ty) {
  switch (E.K) {
  case Expr::Num:
    emit(formatString("mov r0, %lld", static_cast<long long>(E.Val)));
    Ty = Type{Type::Int, 0};
    return true;
  case Expr::StrLit: {
    std::string Label = formatString("str_%u", NextString++);
    Rodata += Label + ":\n";
    std::string Bytes;
    for (char C : E.Str)
      Bytes += formatString("%u, ", static_cast<unsigned char>(C));
    Bytes += "0";
    Rodata += "    .byte " + Bytes + "\n";
    emit("lea r0, [" + Label + "]");
    Ty = Type{Type::Char, 1};
    return true;
  }
  case Expr::Var: {
    if (const LocalSlot *L = findLocal(E.Name)) {
      if (L->ArraySize >= 0) { // array decays to a pointer
        emit(formatString("lea r0, [fp + %lld]",
                          static_cast<long long>(L->Offset)));
        Ty = L->Ty.pointerTo();
        return true;
      }
      emit(formatString("ld%u r0, [fp + %lld]", L->Ty.size(),
                        static_cast<long long>(L->Offset)));
      Ty = L->Ty;
      return true;
    }
    auto G = Globals.find(E.Name);
    if (G == Globals.end())
      return fail(E.Line, "undefined variable '" + E.Name + "'");
    if (G->second->ArraySize >= 0) {
      emit("lea r0, [g_" + E.Name + "]");
      Ty = G->second->Ty.pointerTo();
      return true;
    }
    emit(formatString("ld%u r0, [g_%s]", G->second->Ty.size(),
                      E.Name.c_str()));
    Ty = G->second->Ty;
    return true;
  }
  case Expr::Unary: {
    if (!genExpr(*E.L, Ty))
      return false;
    if (E.Op == "-")
      emit("neg r0");
    else if (E.Op == "~")
      emit("not r0");
    else if (E.Op == "!") {
      emit("test r0, r0");
      emit("set.eq r0");
      Ty = Type{Type::Int, 0};
    }
    return true;
  }
  case Expr::Deref:
  case Expr::Index: {
    Type ValTy;
    if (!genAddr(E, ValTy))
      return false;
    emit(formatString("ld%u r0, [r0]", ValTy.size()));
    Ty = ValTy;
    return true;
  }
  case Expr::Addr: {
    Type ValTy;
    if (!genAddr(*E.L, ValTy))
      return false;
    Ty = ValTy.pointerTo();
    return true;
  }
  case Expr::Assign: {
    Type ValTy;
    if (!genAddr(*E.L, ValTy))
      return false;
    emit("push r0");
    Type RTy;
    if (!genExpr(*E.R, RTy))
      return false;
    emit("pop r1");
    emit(formatString("st%u [r1], r0", ValTy.size()));
    Ty = ValTy;
    return true;
  }
  case Expr::Call:
    return genCall(E, Ty);
  case Expr::Binary: {
    // Short-circuit logical operators.
    if (E.Op == "&&" || E.Op == "||") {
      std::string TrueL = newLabel(), FalseL = newLabel(), End = newLabel();
      if (!genCondJump(E, TrueL, FalseL))
        return false;
      emitLabel(TrueL);
      emit("mov r0, 1");
      emit("jmp " + End);
      emitLabel(FalseL);
      emit("mov r0, 0");
      emitLabel(End);
      Ty = Type{Type::Int, 0};
      return true;
    }
    Type LTy, RTy;
    if (!genExpr(*E.L, LTy))
      return false;
    emit("push r0");
    if (!genExpr(*E.R, RTy))
      return false;
    emit("mov r1, r0");
    emit("pop r0");
    if (const char *CC = ccForOp(E.Op)) {
      emit("cmp r0, r1");
      emit(formatString("set.%s r0", CC));
      Ty = Type{Type::Int, 0};
      return true;
    }
    // Pointer arithmetic scales the integer side.
    if (E.Op == "+" || E.Op == "-") {
      if (LTy.isPointer() && !RTy.isPointer() && LTy.pointeeSize() == 8)
        emit("shl r1, 3");
      else if (RTy.isPointer() && !LTy.isPointer() &&
               RTy.pointeeSize() == 8)
        emit("shl r0, 3");
    }
    if (E.Op == "+")
      emit("add r0, r1");
    else if (E.Op == "-")
      emit("sub r0, r1");
    else if (E.Op == "*")
      emit("mul r0, r1");
    else if (E.Op == "/")
      emit("udiv r0, r1");
    else if (E.Op == "%")
      emit("urem r0, r1");
    else if (E.Op == "&")
      emit("and r0, r1");
    else if (E.Op == "|")
      emit("or r0, r1");
    else if (E.Op == "^")
      emit("xor r0, r1");
    else if (E.Op == "<<")
      emit("shl r0, r1");
    else if (E.Op == ">>")
      emit("sar r0, r1");
    else
      return fail(E.Line, "unsupported operator '" + E.Op + "'");
    Ty = LTy.isPointer() ? LTy : (RTy.isPointer() ? RTy : Type{Type::Int, 0});
    return true;
  }
  }
  return fail(E.Line, "unsupported expression");
}

bool Codegen::genCondJump(const Expr &E, const std::string &TrueL,
                          const std::string &FalseL) {
  if (E.K == Expr::Binary && E.Op == "&&") {
    std::string Mid = newLabel();
    if (!genCondJump(*E.L, Mid, FalseL))
      return false;
    emitLabel(Mid);
    return genCondJump(*E.R, TrueL, FalseL);
  }
  if (E.K == Expr::Binary && E.Op == "||") {
    std::string Mid = newLabel();
    if (!genCondJump(*E.L, TrueL, Mid))
      return false;
    emitLabel(Mid);
    return genCondJump(*E.R, TrueL, FalseL);
  }
  if (E.K == Expr::Unary && E.Op == "!")
    return genCondJump(*E.L, FalseL, TrueL);
  if (E.K == Expr::Binary) {
    if (const char *CC = ccForOp(E.Op)) {
      Type LTy, RTy;
      if (!genExpr(*E.L, LTy))
        return false;
      emit("push r0");
      if (!genExpr(*E.R, RTy))
        return false;
      emit("mov r1, r0");
      emit("pop r0");
      emit("cmp r0, r1");
      emit(formatString("j.%s %s", CC, TrueL.c_str()));
      emit("jmp " + FalseL);
      return true;
    }
  }
  Type Ty;
  if (!genExpr(E, Ty))
    return false;
  emit("test r0, r0");
  emit("j.ne " + TrueL);
  emit("jmp " + FalseL);
  return true;
}

bool Codegen::genSwitch(const Stmt &S) {
  Type Ty;
  if (!genExpr(*S.E, Ty))
    return false;
  std::string End = newLabel(), Default = End;
  std::vector<std::string> CaseLabels;
  for (const SwitchCase &C : S.Cases) {
    CaseLabels.push_back(newLabel());
    if (C.IsDefault)
      Default = CaseLabels.back();
  }

  bool UseTable = Opts.Switches == SwitchLowering::JumpTable;
  int64_t MinV = 0, MaxV = 0;
  if (UseTable) {
    bool First = true;
    for (const SwitchCase &C : S.Cases) {
      if (C.IsDefault)
        continue;
      if (First || C.Value < MinV)
        MinV = C.Value;
      if (First || C.Value > MaxV)
        MaxV = C.Value;
      First = false;
    }
    if (First || MaxV - MinV > 255)
      UseTable = false; // sparse/empty: fall back to branches
  }

  if (UseTable) {
    // Clang-style bounds-checked jump table (Figure 2, right): Spectre-V1
    // safe because no per-case conditional branch exists to mistrain.
    std::string Table = formatString(".Ltab%u", NextLabel++);
    if (MinV)
      emit(formatString("sub r0, %lld", static_cast<long long>(MinV)));
    emit(formatString("cmp r0, %lld", static_cast<long long>(MaxV - MinV)));
    emit("j.a " + Default);
    emit(formatString("ld8 r1, [r0*8 + %s]", Table.c_str()));
    emit("jmpi r1");
    Rodata += "    .align 8\n" + Table + ":\n";
    for (int64_t V = MinV; V <= MaxV; ++V) {
      std::string Target = Default;
      for (size_t I = 0; I != S.Cases.size(); ++I)
        if (!S.Cases[I].IsDefault && S.Cases[I].Value == V)
          Target = CaseLabels[I];
      Rodata += "    .quad " + Target + "\n";
    }
  } else {
    // GCC-style compare-and-branch cascade (Figure 2, left): every case
    // comparison is a conditional branch and thus a potential Spectre-V1
    // victim.
    for (size_t I = 0; I != S.Cases.size(); ++I) {
      if (S.Cases[I].IsDefault)
        continue;
      emit(formatString("cmp r0, %lld",
                        static_cast<long long>(S.Cases[I].Value)));
      emit("j.eq " + CaseLabels[I]);
    }
    emit("jmp " + Default);
  }

  BreakLabels.push_back(End);
  for (size_t I = 0; I != S.Cases.size(); ++I) {
    emitLabel(CaseLabels[I]);
    Scopes.emplace_back();
    if (!genStmts(S.Cases[I].Body))
      return false;
    Scopes.pop_back();
  }
  BreakLabels.pop_back();
  emitLabel(End);
  return true;
}

bool Codegen::genStmts(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body)
    if (!genStmt(*S))
      return false;
  return true;
}

bool Codegen::genStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Block: {
    Scopes.emplace_back();
    bool Ok = genStmts(S.Body);
    Scopes.pop_back();
    return Ok;
  }
  case Stmt::Decl: {
    LocalSlot Slot;
    Slot.Ty = S.DeclTy;
    Slot.ArraySize = S.ArraySize;
    unsigned Bytes = S.ArraySize >= 0
                         ? static_cast<unsigned>(S.ArraySize) *
                               S.DeclTy.size()
                         : 8;
    Slot.Offset = allocSlot(Bytes);
    Scopes.back()[S.Name] = Slot;
    if (S.E) {
      if (S.ArraySize >= 0)
        return fail(S.Line, "local array initializers are not supported");
      Type Ty;
      if (!genExpr(*S.E, Ty))
        return false;
      emit(formatString("st%u [fp + %lld], r0", S.DeclTy.size(),
                        static_cast<long long>(Slot.Offset)));
    }
    return true;
  }
  case Stmt::If: {
    std::string TrueL = newLabel(), FalseL = newLabel(), End = newLabel();
    if (!genCondJump(*S.E, TrueL, FalseL))
      return false;
    emitLabel(TrueL);
    Scopes.emplace_back();
    bool Ok = genStmts(S.Body);
    Scopes.pop_back();
    if (!Ok)
      return false;
    emit("jmp " + End);
    emitLabel(FalseL);
    if (!S.Else.empty()) {
      Scopes.emplace_back();
      Ok = genStmts(S.Else);
      Scopes.pop_back();
      if (!Ok)
        return false;
    }
    emitLabel(End);
    return true;
  }
  case Stmt::While: {
    std::string Head = newLabel(), BodyL = newLabel(), End = newLabel();
    emitLabel(Head);
    if (!genCondJump(*S.E, BodyL, End))
      return false;
    emitLabel(BodyL);
    BreakLabels.push_back(End);
    ContinueLabels.push_back(Head);
    Scopes.emplace_back();
    bool Ok = genStmts(S.Body);
    Scopes.pop_back();
    ContinueLabels.pop_back();
    BreakLabels.pop_back();
    if (!Ok)
      return false;
    emit("jmp " + Head);
    emitLabel(End);
    return true;
  }
  case Stmt::For: {
    Scopes.emplace_back();
    if (S.Init && !genStmt(*S.Init))
      return false;
    std::string Head = newLabel(), BodyL = newLabel(), Step = newLabel(),
                End = newLabel();
    emitLabel(Head);
    if (S.E) {
      if (!genCondJump(*S.E, BodyL, End))
        return false;
    }
    emitLabel(BodyL);
    BreakLabels.push_back(End);
    ContinueLabels.push_back(Step);
    Scopes.emplace_back();
    bool Ok = genStmts(S.Body);
    Scopes.pop_back();
    ContinueLabels.pop_back();
    BreakLabels.pop_back();
    if (!Ok)
      return false;
    emitLabel(Step);
    if (S.Step && !genStmt(*S.Step))
      return false;
    emit("jmp " + Head);
    emitLabel(End);
    Scopes.pop_back();
    return true;
  }
  case Stmt::Switch:
    return genSwitch(S);
  case Stmt::Return:
    if (S.E) {
      Type Ty;
      if (!genExpr(*S.E, Ty))
        return false;
    }
    emit("jmp " + EpilogueLabel);
    return true;
  case Stmt::Break:
    if (BreakLabels.empty())
      return fail(S.Line, "'break' outside a loop or switch");
    emit("jmp " + BreakLabels.back());
    return true;
  case Stmt::Continue:
    if (ContinueLabels.empty())
      return fail(S.Line, "'continue' outside a loop");
    emit("jmp " + ContinueLabels.back());
    return true;
  case Stmt::ExprStmt: {
    Type Ty;
    return genExpr(*S.E, Ty);
  }
  }
  return fail(S.Line, "unsupported statement");
}

bool Codegen::genFunction(const FuncDecl &F) {
  CurFunc = &F;
  Scopes.clear();
  Scopes.emplace_back();
  FrameSize = 0;
  EpilogueLabel = newLabel();

  int64_t Reserve = frameBytes(F.Body) + 8 * static_cast<int64_t>(
                                                 F.Params.size());
  Text += ".func " + F.Name + "\n";
  emitLabel(F.Name);
  emit("push fp");
  emit("mov fp, sp");
  if (Reserve)
    emit(formatString("sub sp, %lld", static_cast<long long>(Reserve)));

  for (size_t I = 0; I != F.Params.size(); ++I) {
    LocalSlot Slot;
    Slot.Ty = F.Params[I].first;
    Slot.Offset = allocSlot(8);
    Scopes.back()[F.Params[I].second] = Slot;
    emit(formatString("st8 [fp + %lld], r%zu",
                      static_cast<long long>(Slot.Offset), I));
  }

  if (!genStmts(F.Body))
    return false;
  assert(FrameSize <= Reserve && "frame pre-pass undercounted");

  emitLabel(EpilogueLabel);
  emit("mov sp, fp");
  emit("pop fp");
  emit("ret");
  return true;
}

void Codegen::emitGlobals() {
  for (const GlobalDecl &G : P.Globals) {
    unsigned Elem = G.Ty.size();
    uint64_t Bytes =
        G.ArraySize >= 0 ? static_cast<uint64_t>(G.ArraySize) * Elem : Elem;
    if (!G.HasInit) {
      Bss += "    .align 8\n";
      Bss += "g_" + G.Name + ":\n";
      Bss += formatString("    .space %llu\n",
                          static_cast<unsigned long long>(Bytes));
      continue;
    }
    Data += "    .align 8\n";
    Data += "g_" + G.Name + ":\n";
    if (!G.StrInit.empty() || (G.Init.empty() && G.ArraySize >= 0 &&
                               G.Ty.B == Type::Char)) {
      std::string Bytes8;
      uint64_t N = 0;
      for (char C : G.StrInit) {
        Data += formatString("    .byte %u\n", static_cast<unsigned char>(C));
        ++N;
      }
      (void)Bytes8;
      for (; N < Bytes; ++N)
        Data += "    .byte 0\n";
      continue;
    }
    const char *Dir = Elem == 1 ? ".byte" : ".quad";
    uint64_t Count = G.ArraySize >= 0 ? static_cast<uint64_t>(G.ArraySize) : 1;
    for (uint64_t I = 0; I != Count; ++I) {
      int64_t V = I < G.Init.size() ? G.Init[I] : 0;
      Data += formatString("    %s %lld\n", Dir, static_cast<long long>(V));
    }
  }
}

Expected<std::string> Codegen::run() {
  for (const GlobalDecl &G : P.Globals)
    Globals[G.Name] = &G;
  for (const FuncDecl &F : P.Funcs)
    Funcs[F.Name] = &F;
  if (!Funcs.count("main"))
    return Error::failure("program has no 'main' function");

  Text += ".text\n";
  Text += ".entry _start\n";
  Text += ".func _start\n";
  Text += "_start:\n";
  Text += "    call main\n";
  Text += "    ext 0\n";  // exit(main())
  Text += "    halt\n";

  for (const FuncDecl &F : P.Funcs)
    if (!genFunction(F))
      return Error::failure(ErrMsg);

  emitGlobals();

  std::string Out = Text;
  if (!Rodata.empty())
    Out += "\n.rodata\n" + Rodata;
  if (!Data.empty())
    Out += "\n.data\n" + Data;
  if (!Bss.empty())
    Out += "\n.bss\n" + Bss;
  return Out;
}

Expected<std::string> lang::codegen(const Program &P,
                                    const CompileOptions &Opts) {
  Codegen CG(P, Opts);
  return CG.run();
}

Expected<std::string> lang::compileToAsm(std::string_view Source,
                                         const CompileOptions &Opts) {
  auto ProgOrErr = parse(Source);
  if (!ProgOrErr)
    return ProgOrErr.takeError();
  return codegen(*ProgOrErr, Opts);
}

Expected<obj::ObjectFile> lang::compile(std::string_view Source,
                                        const CompileOptions &Opts) {
  auto AsmOrErr = compileToAsm(Source, Opts);
  if (!AsmOrErr)
    return AsmOrErr.takeError();
  return assembler::assemble(*AsmOrErr);
}
