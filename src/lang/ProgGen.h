//===- lang/ProgGen.h - Deterministic MiniCC program generator ----*- C++ -*-===//
///
/// \file
/// A seeded, fully deterministic random MiniCC program generator — the
/// Csmith-style workload amplifier from ROADMAP item 3. Generated
/// programs compile through the existing MiniCC → TISA pipeline and
/// drive the cross-engine / cross-preset differential scanning harness
/// (tests/diffscan_test.cpp, tools/teapot_diffscan).
///
/// Determinism contract:
///   - generateProgram(O) is a pure function of O: the same
///     ProgGenOptions yield the byte-identical MiniCC source string on
///     every run, every platform, every build. Compiling that source
///     yields a byte-identical TISA object (lang::compile is itself
///     deterministic). Locked by tests/proggen_test.cpp.
///   - sampleInputs(O) is likewise pure: the seed corpus for a generated
///     program depends only on the options.
///
/// No-UB-by-construction: generated programs never fault and never hang.
///   - every array access is masked to the array's power-of-two bounds
///     (`tab[(e) & 31]`), for globals and the 256-byte input window;
///   - every division / modulus guards the divisor with `| 1`
///     (TISA UDIV/UREM fault on zero);
///   - shift amounts are architecturally masked (& 63) by the VM;
///   - every loop is bounded by a compile-time constant trip count, and
///     the helper call graph is a DAG (calls go strictly to
///     lower-numbered helpers), so there is no recursion;
///   - `int` is 64-bit with wraparound semantics in the VM — overflow is
///     defined.
/// A generated program therefore always Halts with exit status 0 within
/// a budget proportional to Size × input length, and writes at least 8
/// output bytes (an accumulator digest) for differential comparison.
///
/// The programs are not arbitrary: the statement templates are biased
/// toward the code shapes the detectors care about — bounds-checked
/// table lookups on input-derived indices (Spectre-V1 shape), nested
/// validation branches, switches (both lowerings apply), and state
/// accumulated across helper calls — so cross-preset scans see real
/// gadget-set deltas, not empty reports.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_LANG_PROGGEN_H
#define TEAPOT_LANG_PROGGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace teapot {
namespace lang {

struct ProgGenOptions {
  /// Master seed; every structural choice flows from it.
  uint64_t Seed = 1;
  /// Size knob: scales helper-function count, statements per function,
  /// and expression depth. 1 is a handful of statements; 8 is a few
  /// hundred lines. Values are clamped to [1, 16].
  unsigned Size = 4;
};

/// Generates a complete MiniCC program (globals + helpers + main).
/// main() reads up to 256 input bytes into a global window, folds every
/// byte through the helper DAG, and writes an 8-byte accumulator digest.
std::string generateProgram(const ProgGenOptions &Opts);

/// A small deterministic seed corpus matched to the generated program
/// (same Seed ⇒ same inputs): a few structured byte strings that reach
/// the input-dependent branches.
std::vector<std::vector<uint8_t>> sampleInputs(const ProgGenOptions &Opts);

/// Canonical workload-style name for a generated program
/// ("proggen-s<seed>-z<size>") — what Scanner records as the workload.
std::string progGenName(const ProgGenOptions &Opts);

} // namespace lang
} // namespace teapot

#endif // TEAPOT_LANG_PROGGEN_H
