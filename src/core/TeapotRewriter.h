//===- core/TeapotRewriter.h - The Teapot static rewriter ---------*- C++ -*-===//
///
/// \file
/// The static-rewriting half of Teapot (Sections 5 and 6): takes a COTS
/// TBF binary, lifts it (disasm), applies the Speculation Shadows
/// transform plus the instrumentation passes, reassembles, and attaches
/// the ".teapot.meta" side tables the runtime needs.
///
/// Pass pipeline (Teapot mode):
///
///   1. cloneShadowFunctions     Real/Shadow copies, direct edges redirected
///   2. trampoline creation      per conditional branch (Section 5.2)
///   3. marker placement         indirect-transfer targets in the Real Copy
///                               get MARKERNOP + MarkerCheck (Listing 4)
///   4. Real-Copy instrumentation   RA poison/unpoison, per-block async
///                               DIFT updates, coverage guard + StartSim
///                               before conditional branches — and nothing
///                               else: no ASan checks, no memory logging,
///                               no guards (the Speculation Shadows claim)
///   5. Shadow-Copy instrumentation  unguarded ASan/Kasper sinks, memory
///                               logging, synchronous DIFT, conditional +
///                               unconditional restore points, escape
///                               checks, nested StartSim, lazy coverage
///   6. layout + metadata
///
/// SpecFuzzBaseline mode reproduces the prior-work architecture the paper
/// argues against (Listing 3): a single copy where every instrumentation
/// site executes in both modes and the runtime's in-simulation check
/// plays the role of the per-site `if (in_simulation)` guard.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_CORE_TEAPOTREWRITER_H
#define TEAPOT_CORE_TEAPOTREWRITER_H

#include "ir/IR.h"
#include "obj/ObjectFile.h"
#include "runtime/MetaTable.h"
#include "support/Error.h"

namespace teapot {
namespace core {

enum class RewriteMode : uint8_t {
  Teapot,           // Speculation Shadows (this paper)
  SpecFuzzBaseline, // guarded single-copy instrumentation (prior work)
};

struct RewriterOptions {
  RewriteMode Mode = RewriteMode::Teapot;
  /// Emit the Kasper DIFT instrumentation (TaintSink/TagProp/TagBlock).
  /// When false, plain ASan checks are emitted instead (the SpecFuzz
  /// detection policy). The baseline mode ignores this and always uses
  /// ASan-only.
  bool EnableDift = true;
  /// Emit normal + speculative coverage guards.
  bool EnableCoverage = true;
  /// Conditional restore point spacing, in original instructions
  /// ("between every 50 instructions", Section 6.1).
  unsigned RestoreInterval = 50;
};

struct RewriteResult {
  obj::ObjectFile Binary;
  runtime::MetaTable Meta;
};

/// Disassembles and rewrites \p In.
Expected<RewriteResult> rewriteBinary(const obj::ObjectFile &In,
                                      const RewriterOptions &Opts);

/// Rewrites an already-lifted module (used by the artificial-gadget
/// injection experiment, which splices gadgets into the IR first).
Expected<RewriteResult> rewriteModule(ir::Module M,
                                      const RewriterOptions &Opts);

} // namespace core
} // namespace teapot

#endif // TEAPOT_CORE_TEAPOTREWRITER_H
