//===- core/TeapotRewriter.h - The Teapot static rewriter ---------*- C++ -*-===//
///
/// \file
/// The static-rewriting half of Teapot (Sections 5 and 6): takes a COTS
/// TBF binary, lifts it (disasm), applies the Speculation Shadows
/// transform plus the instrumentation passes, reassembles, and attaches
/// the ".teapot.meta" side tables the runtime needs.
///
/// The transform itself lives in src/passes/ as a pipeline of ModulePass
/// stages composed by passes::PipelineBuilder (see ARCHITECTURE.md).
/// RewriteMode::Teapot maps to
///
///   clone-shadow-functions   Real/Shadow copies, direct edges redirected
///   create-trampolines       per conditional branch (Section 5.2)
///   place-markers            indirect-transfer targets in the Real Copy
///   instrument-real-copy     RA poison/unpoison, per-block async DIFT,
///                            marker NOP + MarkerCheck, coverage guard +
///                            StartSim — and nothing else: no ASan checks,
///                            no memory logging, no guards (the
///                            Speculation Shadows claim)
///   instrument-shadow-copy   unguarded ASan/Kasper sinks, memory logging,
///                            synchronous DIFT, restore points, escape
///                            checks, nested StartSim, lazy coverage
///   layout-and-meta          reassembly + ".teapot.meta" side tables
///
/// RewriteMode::SpecFuzzBaseline reproduces the prior-work architecture
/// the paper argues against (Listing 3) as
///
///   create-trampolines, instrument-baseline, layout-and-meta
///
/// — a single copy where every instrumentation site executes in both
/// modes and the runtime's in-simulation check plays the role of the
/// per-site `if (in_simulation)` guard.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_CORE_TEAPOTREWRITER_H
#define TEAPOT_CORE_TEAPOTREWRITER_H

#include "ir/IR.h"
#include "obj/ObjectFile.h"
#include "passes/Statistics.h"
#include "runtime/MetaTable.h"
#include "support/Error.h"

namespace teapot {
namespace core {

enum class RewriteMode : uint8_t {
  Teapot,           // Speculation Shadows (this paper)
  SpecFuzzBaseline, // guarded single-copy instrumentation (prior work)
};

struct RewriterOptions {
  RewriteMode Mode = RewriteMode::Teapot;
  /// Emit the Kasper DIFT instrumentation (TaintSink/TagProp/TagBlock).
  /// When false, plain ASan checks are emitted instead (the SpecFuzz
  /// detection policy). The baseline mode ignores this and always uses
  /// ASan-only.
  bool EnableDift = true;
  /// Emit normal + speculative coverage guards.
  bool EnableCoverage = true;
  /// Conditional restore point spacing, in original instructions
  /// ("between every 50 instructions", Section 6.1).
  unsigned RestoreInterval = 50;
};

struct RewriteResult {
  obj::ObjectFile Binary;
  runtime::MetaTable Meta;
  /// Per-pass wall time, IR growth, and counters of the pipeline run
  /// that produced this result (the `--stats` dump).
  passes::PassStatistics Stats;
};

/// Disassembles and rewrites \p In.
Expected<RewriteResult> rewriteBinary(const obj::ObjectFile &In,
                                      const RewriterOptions &Opts);

/// Rewrites an already-lifted module (used by the artificial-gadget
/// injection experiment, which splices gadgets into the IR first).
Expected<RewriteResult> rewriteModule(ir::Module M,
                                      const RewriterOptions &Opts);

} // namespace core
} // namespace teapot

#endif // TEAPOT_CORE_TEAPOTREWRITER_H
