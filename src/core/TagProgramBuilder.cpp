//===- core/TagProgramBuilder.cpp ------------------------------------------===//
//
// Compiles a basic block's taint semantics into a single-assignment
// micro-op program over immutable inputs (block-entry register tags +
// load temporaries). Because nothing mutable is read after it is
// written, the deferred block-end evaluation is order-hazard free; the
// only approximations are (a) effective addresses that cannot be
// re-expressed over block-end fp/sp/constants fall back to clearing the
// destination tag, and (b) at most NumTagTemps loads per block are
// tracked. Both degrade toward *losing* taint in the asynchronous
// Real-Copy update only — the Shadow Copy's synchronous DIFT stays exact.
//
//===----------------------------------------------------------------------===//

#include "core/TagProgramBuilder.h"

#include "isa/Instruction.h"

#include <map>

using namespace teapot;
using namespace teapot::core;
using namespace teapot::isa;

namespace {

/// Symbolic register *value* (not tag): enough arithmetic to re-express
/// load/store effective addresses in terms of values still available at
/// the block end.
struct SymVal {
  enum Kind : uint8_t {
    Unknown,
    Const,   // Off
    FPEntry, // fp-at-entry + Off
    SPEntry, // sp-at-entry + Off
  } K = Unknown;
  int64_t Off = 0;

  static SymVal unknown() { return SymVal(); }
  static SymVal constant(int64_t C) { return {Const, C}; }
};

struct SymState {
  /// Pending[r]: mask over entry-register tags (bits 0..15) and load
  /// temporaries (bits 16..31) that compose r's tag right now.
  uint32_t Pending[NumRegs];
  SymVal Val[NumRegs];
  int64_t SPDelta = 0;
  bool SPKnown = true;
  bool FPStable = true;
  /// Tags/values of stack slots pushed within this block, keyed by the
  /// slot's SPDelta.
  std::map<int64_t, uint32_t> StackTags;
  std::map<int64_t, SymVal> StackVals;

  SymState() {
    for (unsigned R = 0; R != NumRegs; ++R) {
      Pending[R] = 1u << R;
      Val[R] = SymVal::unknown();
    }
    Val[FP] = {SymVal::FPEntry, 0};
    Val[SP] = {SymVal::SPEntry, 0};
  }
};

} // namespace

BlockTagPlan core::buildBlockTagProgram(const ir::BasicBlock &B) {
  BlockTagPlan Plan;
  ir::TagProgram &P = Plan.Program;
  SymState S;
  uint32_t FlagsMask = 0;
  bool FlagsTouched = false;
  unsigned NextTemp = 0;

  // Pass 1: total SP delta and fp stability (the snippet evaluates at
  // the block end; sp-relative addresses need compensation).
  int64_t FinalDelta = 0;
  {
    int64_t D = 0;
    for (const ir::Inst &In : B.Insts) {
      const Instruction &I = In.I;
      if (I.Op == Opcode::PUSH)
        D -= 8;
      else if (I.Op == Opcode::POP)
        D += 8;
      else if ((I.Op == Opcode::ADD || I.Op == Opcode::SUB) && I.A.isReg() &&
               I.A.R == SP && I.B.isImm())
        D += I.Op == Opcode::ADD ? I.B.Imm : -I.B.Imm;
      else if (I.A.isReg() && I.A.R == SP && I.Op != Opcode::CMP &&
               I.Op != Opcode::TEST && I.Op != Opcode::PUSH &&
               !I.info().IsBranch)
        S.SPKnown = false; // e.g. mov sp, fp
      if (I.A.isReg() && I.A.R == FP && I.Op != Opcode::CMP &&
          I.Op != Opcode::TEST && I.Op != Opcode::PUSH &&
          !I.info().IsBranch)
        S.FPStable = false;
    }
    FinalDelta = D;
  }

  auto Resolve = [&](const MemRef &M, SymVal &Out) -> bool {
    SymVal Base = M.Base == NoReg ? SymVal::constant(0) : S.Val[M.Base];
    if (Base.K == SymVal::Unknown)
      return false;
    int64_t IndexPart = 0;
    if (M.Index != NoReg) {
      if (S.Val[M.Index].K != SymVal::Const)
        return false;
      IndexPart = S.Val[M.Index].Off * M.Scale;
    }
    Out = Base;
    Out.Off += IndexPart + M.Disp;
    return true;
  };
  /// Re-expresses a resolved address as a MemRef evaluable at block end.
  auto Emittable = [&](const SymVal &V, MemRef &Out) -> bool {
    switch (V.K) {
    case SymVal::Const:
      Out = MemRef{NoReg, NoReg, 1, V.Off};
      return true;
    case SymVal::FPEntry:
      if (!S.FPStable)
        return false;
      Out = MemRef{FP, NoReg, 1, V.Off};
      return true;
    case SymVal::SPEntry:
      if (!S.SPKnown)
        return false;
      Out = MemRef{SP, NoReg, 1, V.Off - FinalDelta};
      return true;
    case SymVal::Unknown:
      return false;
    }
    return false;
  };

  /// Loads memory tags into a fresh temporary; returns the temp's mask
  /// bit, or 0 (untainted fallback) when untrackable.
  auto EmitLoadTmp = [&](const MemRef &M, uint8_t Size) -> uint32_t {
    SymVal EA;
    MemRef Out;
    if (!Resolve(M, EA) || !Emittable(EA, Out) ||
        NextTemp >= ir::NumTagTemps) {
      Plan.NeedsSync = true;
      return 0;
    }
    ir::TagMicroOp Op;
    Op.K = ir::TagMicroOp::LoadTmp;
    Op.Dst = static_cast<uint8_t>(NextTemp);
    Op.Size = Size;
    Op.Mem = Out;
    P.push_back(Op);
    return 1u << (16 + NextTemp++);
  };
  auto EmitStoreMask = [&](const MemRef &M, uint32_t Mask, uint8_t Size) {
    SymVal EA;
    MemRef Out;
    if (!Resolve(M, EA) || !Emittable(EA, Out)) {
      // A store through an unreconstructible pointer: its target's tags
      // cannot be updated asynchronously.
      Plan.NeedsSync = true;
      return;
    }
    ir::TagMicroOp Op;
    Op.K = ir::TagMicroOp::StoreMask;
    Op.Size = Size;
    Op.Mask = Mask;
    Op.Mem = Out;
    P.push_back(Op);
  };
  auto SrcMask = [&](const Operand &O) -> uint32_t {
    return O.isReg() ? S.Pending[O.R] : 0;
  };

  for (const ir::Inst &In : B.Insts) {
    const Instruction &I = In.I;
    switch (I.Op) {
    case Opcode::MOV:
      S.Pending[I.A.R] = SrcMask(I.B);
      S.Val[I.A.R] =
          I.B.isReg() ? S.Val[I.B.R] : SymVal::constant(I.B.Imm);
      break;
    case Opcode::LEA: {
      uint32_t Mask = 0;
      if (I.B.M.Base != NoReg)
        Mask |= S.Pending[I.B.M.Base];
      if (I.B.M.Index != NoReg)
        Mask |= S.Pending[I.B.M.Index];
      S.Pending[I.A.R] = Mask;
      SymVal EA;
      S.Val[I.A.R] = Resolve(I.B.M, EA) ? EA : SymVal::unknown();
      break;
    }
    case Opcode::LOAD:
    case Opcode::LOADS:
      S.Pending[I.A.R] = EmitLoadTmp(I.B.M, I.Size);
      S.Val[I.A.R] = SymVal::unknown();
      break;
    case Opcode::STORE:
      EmitStoreMask(I.A.M, SrcMask(I.B), I.Size);
      break;
    case Opcode::PUSH: {
      MemRef Slot{SP, NoReg, 1, -8};
      uint32_t Mask = SrcMask(I.A);
      EmitStoreMask(Slot, Mask, 8);
      S.SPDelta -= 8;
      S.Val[SP].Off -= 8;
      S.StackTags[S.SPDelta] = Mask;
      S.StackVals[S.SPDelta] =
          I.A.isReg() ? S.Val[I.A.R] : SymVal::constant(I.A.Imm);
      break;
    }
    case Opcode::POP: {
      // Prefer the symbolic record of an in-block push (both its tag
      // mask and its value survive exactly); fall back to a memory read.
      auto TagIt = S.StackTags.find(S.SPDelta);
      if (TagIt != S.StackTags.end()) {
        S.Pending[I.A.R] = TagIt->second;
        auto ValIt = S.StackVals.find(S.SPDelta);
        S.Val[I.A.R] =
            ValIt != S.StackVals.end() ? ValIt->second : SymVal::unknown();
      } else {
        MemRef Slot{SP, NoReg, 1, 0};
        S.Pending[I.A.R] = EmitLoadTmp(Slot, 8);
        S.Val[I.A.R] = SymVal::unknown();
      }
      S.SPDelta += 8;
      S.Val[SP].Off += 8;
      break;
    }
    case Opcode::ADD:
    case Opcode::SUB: {
      if (I.B.isReg() && I.B.R == I.A.R && I.Op == Opcode::SUB)
        S.Pending[I.A.R] = 0; // idiomatic zeroing
      else
        S.Pending[I.A.R] |= SrcMask(I.B);
      FlagsMask = S.Pending[I.A.R];
      FlagsTouched = true;
      int64_t Sign = I.Op == Opcode::ADD ? 1 : -1;
      if (I.B.isImm()) {
        if (S.Val[I.A.R].K != SymVal::Unknown)
          S.Val[I.A.R].Off += Sign * I.B.Imm;
        if (I.A.R == SP)
          S.SPDelta += Sign * I.B.Imm;
      } else {
        SymVal &A = S.Val[I.A.R];
        const SymVal &Bv = S.Val[I.B.R];
        if (Bv.K == SymVal::Const && A.K != SymVal::Unknown)
          A.Off += Sign * Bv.Off;
        else if (I.Op == Opcode::ADD && A.K == SymVal::Const &&
                 Bv.K != SymVal::Unknown) {
          int64_t C = A.Off;
          A = Bv;
          A.Off += C;
        } else {
          A = SymVal::unknown();
        }
      }
      break;
    }
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::MUL:
    case Opcode::UDIV:
    case Opcode::UREM: {
      if (I.Op == Opcode::XOR && I.B.isReg() && I.B.R == I.A.R)
        S.Pending[I.A.R] = 0;
      else
        S.Pending[I.A.R] |= SrcMask(I.B);
      FlagsMask = S.Pending[I.A.R];
      FlagsTouched = true;
      // Constant folding keeps scaled-index address chains resolvable.
      SymVal &A = S.Val[I.A.R];
      bool BIsConst =
          I.B.isImm() || (I.B.isReg() && S.Val[I.B.R].K == SymVal::Const);
      int64_t Bc = I.B.isImm() ? I.B.Imm
                               : (BIsConst ? S.Val[I.B.R].Off : 0);
      if (A.K == SymVal::Const && BIsConst) {
        switch (I.Op) {
        case Opcode::AND:
          A.Off &= Bc;
          break;
        case Opcode::OR:
          A.Off |= Bc;
          break;
        case Opcode::XOR:
          A.Off ^= Bc;
          break;
        case Opcode::SHL:
          A.Off = static_cast<int64_t>(static_cast<uint64_t>(A.Off)
                                       << (Bc & 63));
          break;
        case Opcode::SHR:
          A.Off = static_cast<int64_t>(static_cast<uint64_t>(A.Off) >>
                                       (Bc & 63));
          break;
        case Opcode::SAR:
          A.Off >>= (Bc & 63);
          break;
        case Opcode::MUL:
          A.Off *= Bc;
          break;
        default:
          A = SymVal::unknown();
          break;
        }
      } else {
        A = SymVal::unknown();
      }
      if (I.A.R == SP)
        S.SPKnown = false;
      break;
    }
    case Opcode::NEG:
      FlagsMask = S.Pending[I.A.R];
      FlagsTouched = true;
      if (S.Val[I.A.R].K == SymVal::Const)
        S.Val[I.A.R].Off = -S.Val[I.A.R].Off;
      else
        S.Val[I.A.R] = SymVal::unknown();
      break;
    case Opcode::NOT:
      S.Val[I.A.R] = SymVal::unknown();
      break;
    case Opcode::CMP:
    case Opcode::TEST:
      FlagsMask = S.Pending[I.A.R] | SrcMask(I.B);
      FlagsTouched = true;
      break;
    case Opcode::SET:
      S.Pending[I.A.R] = FlagsTouched ? FlagsMask : 0;
      S.Val[I.A.R] = SymVal::unknown();
      break;
    case Opcode::CMOV:
      S.Pending[I.A.R] |= SrcMask(I.B);
      if (FlagsTouched)
        S.Pending[I.A.R] |= FlagsMask;
      S.Val[I.A.R] = SymVal::unknown();
      break;
    case Opcode::EXT:
      // External functions return untainted data; input tainting happens
      // via the runtime's read hook.
      S.Pending[R0] = 0;
      S.Val[R0] = SymVal::unknown();
      break;
    case Opcode::CALL:
    case Opcode::CALLI:
      // The block snippet runs *before* a block-terminating call, so
      // argument-register tags must survive it (the callee's own block
      // programs account for everything the callee does). Only the
      // symbolic *values* die: after the call returns, caller-saved
      // registers hold callee-determined values.
      for (unsigned R = R0; R <= R7; ++R)
        S.Val[R] = SymVal::unknown();
      break;
    case Opcode::JMP:
    case Opcode::JCC:
    case Opcode::JMPI:
    case Opcode::RET:
    case Opcode::NOP:
    case Opcode::MARKERNOP:
    case Opcode::FENCE:
    case Opcode::HALT:
    case Opcode::INTR:
    case Opcode::NumOpcodes:
      break;
    }
  }

  // Block-end flush: a parallel assignment by construction, since every
  // mask reads only entry tags and single-assignment temporaries.
  for (unsigned R = 0; R != NumRegs; ++R) {
    if (S.Pending[R] == (1u << R))
      continue;
    ir::TagMicroOp Op;
    Op.K = ir::TagMicroOp::RegSetMask;
    Op.Dst = static_cast<uint8_t>(R);
    Op.Mask = S.Pending[R];
    P.push_back(Op);
  }
  if (FlagsTouched) {
    ir::TagMicroOp Op;
    Op.K = ir::TagMicroOp::FlagsMask;
    Op.Mask = FlagsMask;
    P.push_back(Op);
  }
  return Plan;
}
