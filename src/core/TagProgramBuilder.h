//===- core/TagProgramBuilder.h - Real-Copy block DIFT programs ---*- C++ -*-===//
///
/// \file
/// Builds the per-basic-block tag transfer programs that implement the
/// Real Copy's *asynchronous* DIFT update (Section 6.2.2): the paper
/// generates a list of IR expressions computing the block's tag changes,
/// optimizes it, and inserts one compiled snippet per block. We reproduce
/// that as a micro-op program the runtime evaluates once per block:
///
///   - pure register-to-register chains are composed symbolically and
///     collapsed into single RegSet micro-ops (the "optimization"),
///   - loads/stores emit LoadTag/StoreTag ops whose stack-relative
///     addresses are *delta-compensated* for the SP movement between the
///     instruction's position and the block end (pushes in a prologue
///     still tag the right slots even though the snippet runs at the
///     block end),
///   - known approximations of the asynchronous scheme (overwritten
///     address registers, end-of-block flag tags) are inherited from the
///     paper's design and documented in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_CORE_TAGPROGRAMBUILDER_H
#define TEAPOT_CORE_TAGPROGRAMBUILDER_H

#include "ir/IR.h"

namespace teapot {
namespace core {

struct BlockTagPlan {
  ir::TagProgram Program;
  /// True when some access's effective address could not be re-expressed
  /// over block-end values (heap-pointer indirection through scratch
  /// registers, or temp exhaustion). Such blocks cannot use the
  /// asynchronous once-per-block update without losing taint; the
  /// rewriter falls back to synchronous per-instruction propagation for
  /// them — the "optimal insertion position" degenerating to inline.
  bool NeedsSync = false;
};

/// Computes the tag transfer plan for \p B's instructions. The program
/// is empty when the block has no tag effects.
BlockTagPlan buildBlockTagProgram(const ir::BasicBlock &B);

} // namespace core
} // namespace teapot

#endif // TEAPOT_CORE_TAGPROGRAMBUILDER_H
