//===- core/TeapotRewriter.cpp - Speculation Shadows rewriter --------------===//
//
// Thin driver over the src/passes/ pipeline: RewriterOptions pick a
// declarative pass composition via passes::PipelineBuilder, and
// passes::runPipeline executes it. All rewriting logic lives in the
// individual passes.
//
//===----------------------------------------------------------------------===//

#include "core/TeapotRewriter.h"

#include "passes/PipelineBuilder.h"

using namespace teapot;
using namespace teapot::core;

Expected<RewriteResult> core::rewriteModule(ir::Module M,
                                            const RewriterOptions &Opts) {
  return passes::runPipeline(std::move(M),
                             passes::PipelineBuilder::forOptions(Opts));
}

Expected<RewriteResult> core::rewriteBinary(const obj::ObjectFile &In,
                                            const RewriterOptions &Opts) {
  return passes::runPipeline(In, passes::PipelineBuilder::forOptions(Opts));
}
