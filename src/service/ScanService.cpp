//===- service/ScanService.cpp --------------------------------------------===//

#include "service/ScanService.h"

#include "fuzz/CorpusShard.h"
#include "support/File.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <sys/stat.h>
#include <thread>

using namespace teapot;
using namespace teapot::service;

//===----------------------------------------------------------------------===//
// FleetOptions
//===----------------------------------------------------------------------===//

Error FleetOptions::validate() const {
  if (Threads == 0)
    return makeError("fleet options: Threads must be at least 1");
  if (IterationsPerTarget == 0)
    return makeError("fleet options: IterationsPerTarget must be positive "
                     "(it is the default per-target budget)");
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Per-target state
//===----------------------------------------------------------------------===//

/// Everything the scheduler tracks about one fleet member. A slice
/// touches only its own TargetState, which is what lets the thread pool
/// run a round's slices in any order with identical results.
struct ScanService::TargetState {
  FleetTarget T;
  std::string Family; // resolved (empty spelling -> Spec)
  uint64_t Seed = 0;  // per-target campaign seed (workerSeed derived)
  uint64_t Budget = 0;

  std::unique_ptr<Scanner> S; // null until materialized

  /// Last slice's cumulative result, wall-clock zeroed (determinism:
  /// the same counters persist to disk and aggregate into the index).
  ScanResult Last;
  bool HasLast = false;
  std::optional<json::Value> Snapshot;      // teapot.corpus.v1
  std::optional<json::Value> QuarantineDoc; // teapot.quarantine.v1
  /// Merged corpus mirror (from the snapshot on load, from the scanner
  /// after each slice) — what federation windows read, valid even for
  /// done targets that never materialize a scanner this session.
  std::vector<std::vector<uint8_t>> Corpus;

  uint64_t Rounds = 0;
  bool Done = false;

  // --- Federation bookkeeping ---------------------------------------------
  /// First corpus entry not yet offered to siblings.
  uint64_t FedCursor = 0;
  /// Every hash this target ever accepted from siblings (insertion
  /// order in ImportedOrder — the manifest's serialization).
  std::unordered_set<uint64_t> ImportedHashes;
  std::vector<uint64_t> ImportedOrder;
  uint64_t FederatedIn = 0;
  uint64_t FederatedOut = 0;

  /// Imports restored from a manifest, queued into the scanner at
  /// materialization (after which Scanner::importedSeeds() is the live
  /// pending set).
  std::vector<std::vector<uint8_t>> PendingImports;
};

//===----------------------------------------------------------------------===//
// Construction / registration
//===----------------------------------------------------------------------===//

ScanService::ScanService(FleetOptions O) : Opts(std::move(O)) {}
ScanService::~ScanService() = default;

Error ScanService::addTarget(FleetTarget T) {
  if (T.Spec.empty())
    return makeError("fleet target: empty spec");
  for (const FleetTarget &R : Registered)
    if (R.Spec == T.Spec)
      return makeError("fleet target: duplicate spec \"%s\" (the spec is "
                       "the target's identity in the index and manifest)",
                       T.Spec.c_str());
  auto St = std::make_unique<TargetState>();
  St->T = T;
  St->Family = T.Family.empty() ? T.Spec : T.Family;
  St->Seed = fuzz::Campaign::workerSeed(
      Opts.Base.Campaign.Seed, static_cast<unsigned>(Registered.size()));
  St->Budget = T.Iterations ? T.Iterations : Opts.IterationsPerTarget;
  Registered.push_back(std::move(T));
  States.push_back(std::move(St));
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Aggregates
//===----------------------------------------------------------------------===//

bool ScanService::finished() const {
  if (States.empty())
    return false;
  if (Opts.GlobalIterations &&
      totalExecutions() >= Opts.GlobalIterations)
    return true;
  for (const auto &St : States)
    if (!St->Done)
      return false;
  return true;
}

uint64_t ScanService::totalExecutions() const {
  uint64_t N = 0;
  for (const auto &St : States)
    if (St->HasLast)
      N += St->Last.Executions;
  return N;
}

FleetIndex ScanService::index() const {
  FleetIndex Idx;
  for (const auto &St : States)
    if (St->HasLast)
      Idx.Records.push_back(FleetRecord::fromScan(
          St->T.Spec, St->Family, St->Rounds, St->Done, St->FederatedIn,
          St->FederatedOut, St->Last));
  return Idx;
}

//===----------------------------------------------------------------------===//
// Slices
//===----------------------------------------------------------------------===//

Error ScanService::materialize(TargetState &T, size_t Index) {
  if (T.S)
    return Error::success();
  ScanConfig C = Opts.Base;
  C.Campaign.Seed = T.Seed;
  C.Campaign.TotalIterations = T.Budget;
  C.Campaign.MaxEpochs = 0; // set per slice
  (void)Index;
  T.S = std::make_unique<Scanner>(std::move(C));
  if (Error E = T.S->loadWorkload(T.T.Spec))
    return E;
  if (Error E = T.S->rewrite())
    return E;
  if (!T.PendingImports.empty()) {
    std::vector<std::vector<uint8_t>> Pending = std::move(T.PendingImports);
    T.PendingImports.clear();
    // FederatedIn was already counted when these were first queued.
    uint64_t SavedIn = T.FederatedIn;
    if (Error E = queueImports(T, Pending))
      return E;
    T.FederatedIn = SavedIn;
  }
  return Error::success();
}

Error ScanService::runSlice(TargetState &T) {
  Scanner &S = *T.S;
  uint64_t BaseEpoch = 0;
  if (T.Snapshot) {
    // Each slice resumes the previous one's snapshot — the same
    // stop-at-barrier/resume cycle persist_test locks byte-identical.
    if (const json::Value *E = T.Snapshot->find("epoch"); E && E->isUInt())
      BaseEpoch = E->asUInt();
    if (Error E = S.resume(json::Value(*T.Snapshot)))
      return E;
  }
  S.config().Campaign.MaxEpochs =
      Opts.SliceEpochs ? BaseEpoch + Opts.SliceEpochs : 0;
  auto Res = S.run();
  if (!Res)
    return Res.takeError();
  T.Last = std::move(*Res);
  // Wall-clock is the one nondeterministic field; the fleet's artifacts
  // and index are timing-free by construction.
  T.Last.WallSeconds = 0;
  for (ScanPassStats &P : T.Last.Passes)
    P.Seconds = 0;
  T.HasLast = true;
  T.Corpus = S.corpus();
  auto Snap = S.saveState();
  if (!Snap)
    return Snap.takeError();
  T.Snapshot = std::move(*Snap);
  auto Q = S.quarantineJson();
  if (!Q)
    return Q.takeError();
  T.QuarantineDoc = std::move(*Q);
  ++T.Rounds;
  T.Done = T.Last.Executions >= T.Budget;
  return Error::success();
}

Error ScanService::runRound() {
  std::vector<size_t> Active;
  for (size_t I = 0; I < States.size(); ++I)
    if (!States[I]->Done)
      Active.push_back(I);
  if (Active.empty()) {
    ++Round;
    return Error::success();
  }

  // Work-stealing claim over the active list. Every slice is
  // target-local, so execution order across the pool cannot affect
  // results — only the claim index and the error slots are shared.
  std::atomic<size_t> Next{0};
  std::vector<std::string> Failures(Active.size());
  auto Work = [&]() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Active.size())
        return;
      TargetState &T = *States[Active[I]];
      Error E = materialize(T, Active[I]);
      if (!E)
        E = runSlice(T);
      if (E)
        Failures[I] = formatString(
            "fleet target \"%s\": %s", T.T.Spec.c_str(),
            E.message().c_str());
    }
  };
  unsigned N = static_cast<unsigned>(
      std::min<size_t>(Opts.Threads ? Opts.Threads : 1, Active.size()));
  if (N <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Pool.emplace_back(Work);
    for (std::thread &Th : Pool)
      Th.join();
  }
  // First failure in registration order — deterministic regardless of
  // which thread hit it first.
  for (const std::string &F : Failures)
    if (!F.empty())
      return makeError("%s", F.c_str());
  ++Round;
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Federation
//===----------------------------------------------------------------------===//

std::vector<std::vector<uint8_t>> ScanService::filterNovel(
    const std::vector<std::vector<uint8_t>> &Window,
    const std::unordered_set<uint64_t> &Known,
    std::unordered_set<uint64_t> &Imported,
    std::vector<uint64_t> &ImportedOrder) {
  std::vector<std::vector<uint8_t>> Out;
  for (const std::vector<uint8_t> &E : Window) {
    uint64_t H = fuzz::hashInput(E);
    if (Known.count(H) || Imported.count(H))
      continue;
    Imported.insert(H);
    ImportedOrder.push_back(H);
    Out.push_back(E);
  }
  return Out;
}

Error ScanService::queueImports(
    TargetState &T, const std::vector<std::vector<uint8_t>> &Batch) {
  if (Batch.empty())
    return Error::success();
  if (!T.S) {
    // Not materialized yet (restored fleet): park until materialize().
    T.PendingImports.insert(T.PendingImports.end(), Batch.begin(),
                            Batch.end());
    T.FederatedIn += Batch.size();
    return Error::success();
  }
  // A synthetic teapot.corpus.v1 payload shaped to the receiver's own
  // geometry, so the importCorpus compatibility gate accepts it.
  const fuzz::CampaignOptions &CO = T.S->config().Campaign;
  json::Value Payload = json::Value::object();
  Payload.set("schema", fuzz::Campaign::SnapshotSchemaName);
  json::Value O = json::Value::object();
  O.set("seed", CO.Seed);
  O.set("total_iterations", CO.TotalIterations);
  O.set("workers", CO.Workers);
  O.set("sync_interval", CO.SyncInterval);
  O.set("max_input_len", CO.MaxInputLen);
  O.set("max_stacked_mutations", CO.MaxStackedMutations);
  Payload.set("options", std::move(O));
  json::Value C = json::Value::array();
  for (const std::vector<uint8_t> &E : Batch)
    C.push(json::Value(hexEncode(E)));
  Payload.set("corpus", std::move(C));
  auto N = T.S->importCorpus(Payload);
  if (!N)
    return N.takeError();
  T.FederatedIn += *N;
  return Error::success();
}

Error ScanService::federate() {
  // Families in first-appearance order over the registration list.
  std::vector<std::string> Order;
  std::map<std::string, std::vector<size_t>> Members;
  for (size_t I = 0; I < States.size(); ++I) {
    auto [It, New] = Members.try_emplace(States[I]->Family);
    if (New)
      Order.push_back(States[I]->Family);
    It->second.push_back(I);
  }
  for (const std::string &F : Order) {
    const std::vector<size_t> &M = Members[F];
    if (M.size() < 2)
      continue; // a family of one has nobody to talk to
    for (size_t RI : M) {
      TargetState &R = *States[RI];
      if (R.Done)
        continue; // no budget left to execute imports
      std::unordered_set<uint64_t> Known;
      for (const std::vector<uint8_t> &E : R.Corpus)
        Known.insert(fuzz::hashInput(E));
      std::vector<std::vector<uint8_t>> Batch;
      for (size_t SI : M) {
        if (SI == RI)
          continue;
        TargetState &Sd = *States[SI];
        std::vector<std::vector<uint8_t>> Window(
            Sd.Corpus.begin() +
                static_cast<ptrdiff_t>(
                    std::min<uint64_t>(Sd.FedCursor, Sd.Corpus.size())),
            Sd.Corpus.end());
        std::vector<std::vector<uint8_t>> Accepted = filterNovel(
            Window, Known, R.ImportedHashes, R.ImportedOrder);
        Sd.FederatedOut += Accepted.size();
        for (std::vector<uint8_t> &E : Accepted)
          Batch.push_back(std::move(E));
      }
      if (Error E = queueImports(R, Batch))
        return E;
    }
    // Cursors advance only after every receiver saw this barrier's
    // windows — all exchanges at one barrier read the same snapshot of
    // each sender's corpus.
    for (size_t SI : M)
      States[SI]->FedCursor = States[SI]->Corpus.size();
  }
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

std::string ScanService::fileStem(const std::string &Spec) {
  std::string S = Spec;
  for (char &C : S)
    if (C == ':' || C == '/')
      C = '_';
  return S;
}

std::string ScanService::artifactPath(size_t Index, const char *Kind) const {
  return Opts.StateDir + "/" +
         formatString("t%02zu-%s.%s.json", Index,
                               fileStem(States[Index]->T.Spec).c_str(),
                               Kind);
}

json::Value ScanService::optionsJson() const {
  // Every result-relevant knob, in one comparable object. Threads and
  // MaxRounds are deliberately absent: they never change what the fleet
  // computes, only how fast / how far one run() call takes it.
  json::Value V = json::Value::object();
  V.set("preset", Opts.Base.Preset);
  V.set("engine", vm::engineName(Opts.Base.Engine));
  V.set("seed", Opts.Base.Campaign.Seed);
  V.set("workers", Opts.Base.Campaign.Workers);
  V.set("sync_interval", Opts.Base.Campaign.SyncInterval);
  V.set("max_input_len", Opts.Base.Campaign.MaxInputLen);
  V.set("max_stacked_mutations", Opts.Base.Campaign.MaxStackedMutations);
  V.set("run_budget", Opts.Base.RunBudget);
  V.set("fault_plan", Opts.Base.FaultPlan);
  V.set("inject", Opts.Base.InjectGadgets);
  V.set("iterations_per_target", Opts.IterationsPerTarget);
  V.set("global_iterations", Opts.GlobalIterations);
  V.set("slice_epochs", Opts.SliceEpochs);
  V.set("federate_every", Opts.FederateEvery);
  return V;
}

json::Value ScanService::manifestJson() const {
  json::Value V = json::Value::object();
  V.set("schema", ManifestSchemaName);
  V.set("options", optionsJson());
  json::Value Ts = json::Value::array();
  for (const FleetTarget &T : Registered) {
    json::Value TV = json::Value::object();
    TV.set("spec", T.Spec);
    TV.set("family", T.Family);
    TV.set("iterations", T.Iterations);
    Ts.push(std::move(TV));
  }
  V.set("targets", std::move(Ts));
  V.set("round", Round);
  V.set("finished", finished());
  json::Value Per = json::Value::array();
  for (size_t I = 0; I < States.size(); ++I) {
    const TargetState &T = *States[I];
    json::Value TV = json::Value::object();
    TV.set("spec", T.T.Spec);
    TV.set("seed", T.Seed);
    TV.set("budget", T.Budget);
    TV.set("rounds", T.Rounds);
    TV.set("done", T.Done);
    TV.set("executions", T.HasLast ? T.Last.Executions : 0);
    TV.set("federated_in", T.FederatedIn);
    TV.set("federated_out", T.FederatedOut);
    TV.set("fed_cursor", T.FedCursor);
    json::Value Hashes = json::Value::array();
    for (uint64_t H : T.ImportedOrder)
      Hashes.push(json::Value(H));
    TV.set("imported_hashes", std::move(Hashes));
    // Federated entries queued but not yet consumed by a slice — they
    // are not in the corpus snapshot, so they ride the manifest.
    json::Value Pending = json::Value::array();
    if (T.S)
      for (const std::vector<uint8_t> &E : T.S->importedSeeds())
        Pending.push(json::Value(hexEncode(E)));
    else
      for (const std::vector<uint8_t> &E : T.PendingImports)
        Pending.push(json::Value(hexEncode(E)));
    TV.set("pending_imports", std::move(Pending));
    TV.set("ran", T.HasLast);
    json::Value Art = json::Value::object();
    Art.set("scan", artifactPath(I, "scan").substr(Opts.StateDir.size() + 1));
    Art.set("corpus",
            artifactPath(I, "corpus").substr(Opts.StateDir.size() + 1));
    Art.set("quarantine",
            artifactPath(I, "quarantine").substr(Opts.StateDir.size() + 1));
    TV.set("artifacts", std::move(Art));
    Per.push(std::move(TV));
  }
  V.set("per_target", std::move(Per));
  return V;
}

Error ScanService::checkpoint() {
  if (Opts.StateDir.empty())
    return Error::success();
  if (mkdir(Opts.StateDir.c_str(), 0755) != 0 && errno != EEXIST)
    return makeError("fleet checkpoint: cannot create %s: %s",
                     Opts.StateDir.c_str(), strerror(errno));
  // Per-target artifacts first, the index next, the manifest last: the
  // manifest is the commit point, so a checkpoint cut anywhere leaves
  // either the previous consistent state (old manifest) or the new one.
  for (size_t I = 0; I < States.size(); ++I) {
    const TargetState &T = *States[I];
    if (!T.HasLast)
      continue;
    if (Error E = Writer.write(artifactPath(I, "scan"),
                               T.Last.toJsonString()))
      return E;
    if (Error E = Writer.write(artifactPath(I, "corpus"),
                               T.Snapshot->dump(true) + "\n"))
      return E;
    if (Error E = Writer.write(artifactPath(I, "quarantine"),
                               T.QuarantineDoc->dump(true) + "\n"))
      return E;
  }
  if (Error E = Writer.write(Opts.StateDir + "/index.json",
                             index().toJsonString()))
    return E;
  return Writer.write(Opts.StateDir + "/manifest.json",
                      manifestJson().dump(true) + "\n");
}

Error ScanService::applyManifest(const json::Value &Manifest,
                                 const std::string &Dir) {
  if (!Manifest.isObject())
    return makeError("fleet manifest: document is not an object");
  const json::Value *Schema = Manifest.find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != ManifestSchemaName)
    return makeError("fleet manifest: missing or unsupported schema "
                     "(expected \"%s\")",
                     ManifestSchemaName);
  const json::Value *MOpts = Manifest.find("options");
  if (!MOpts || !MOpts->isObject())
    return makeError("fleet manifest: missing options object");
  if (MOpts->dump() != optionsJson().dump())
    return makeError(
        "fleet manifest: options mismatch — the checkpoint was written "
        "under %s but this service is configured with %s (the fleet "
        "contract: identical FleetOptions or identical results cannot be "
        "promised)",
        MOpts->dump().c_str(), optionsJson().dump().c_str());
  const json::Value *Ts = Manifest.find("targets");
  if (!Ts || !Ts->isArray())
    return makeError("fleet manifest: targets missing or not an array");
  std::vector<FleetTarget> FromManifest;
  for (const json::Value &T : Ts->items()) {
    if (!T.isObject())
      return makeError("fleet manifest: target entry is not an object");
    FleetTarget FT;
    const json::Value *Spec = T.find("spec");
    const json::Value *Family = T.find("family");
    const json::Value *Iters = T.find("iterations");
    if (!Spec || !Spec->isString() || !Family || !Family->isString() ||
        !Iters || !Iters->isUInt())
      return makeError("fleet manifest: malformed target entry");
    FT.Spec = Spec->asString();
    FT.Family = Family->asString();
    FT.Iterations = Iters->asUInt();
    FromManifest.push_back(std::move(FT));
  }
  if (Registered.empty()) {
    for (FleetTarget &T : FromManifest)
      if (Error E = addTarget(std::move(T)))
        return E;
  } else {
    if (Registered.size() != FromManifest.size())
      return makeError("fleet manifest: target count mismatch (checkpoint "
                       "has %zu, service has %zu)",
                       FromManifest.size(), Registered.size());
    for (size_t I = 0; I < Registered.size(); ++I)
      if (Registered[I].Spec != FromManifest[I].Spec ||
          Registered[I].Family != FromManifest[I].Family ||
          Registered[I].Iterations != FromManifest[I].Iterations)
        return makeError("fleet manifest: target %zu mismatch (checkpoint "
                         "\"%s\", service \"%s\")",
                         I, FromManifest[I].Spec.c_str(),
                         Registered[I].Spec.c_str());
  }
  const json::Value *RoundV = Manifest.find("round");
  if (!RoundV || !RoundV->isUInt())
    return makeError("fleet manifest: round missing or not an integer");
  const json::Value *Per = Manifest.find("per_target");
  if (!Per || !Per->isArray() || Per->size() != States.size())
    return makeError("fleet manifest: per_target missing or wrong length");
  size_t I = 0;
  for (const json::Value &TV : Per->items()) {
    TargetState &T = *States[I];
    ++I;
    if (!TV.isObject())
      return makeError("fleet manifest: per_target entry is not an object");
    auto U64 = [&](const char *Key) -> Expected<uint64_t> {
      const json::Value *M = TV.find(Key);
      if (!M || !M->isUInt())
        return makeError("fleet manifest: per_target.%s missing or not an "
                         "integer",
                         Key);
      return M->asUInt();
    };
    auto Seed = U64("seed");
    if (!Seed)
      return Seed.takeError();
    if (*Seed != T.Seed)
      return makeError("fleet manifest: target \"%s\" records campaign "
                       "seed %llu but this fleet derives %llu — the "
                       "checkpoint belongs to a different fleet seed or "
                       "target order",
                       T.T.Spec.c_str(),
                       static_cast<unsigned long long>(*Seed),
                       static_cast<unsigned long long>(T.Seed));
    auto Budget = U64("budget");
    if (!Budget)
      return Budget.takeError();
    if (*Budget != T.Budget)
      return makeError("fleet manifest: target \"%s\" budget mismatch",
                       T.T.Spec.c_str());
    auto Rounds = U64("rounds");
    if (!Rounds)
      return Rounds.takeError();
    T.Rounds = *Rounds;
    const json::Value *DoneV = TV.find("done");
    if (!DoneV || !DoneV->isBool())
      return makeError("fleet manifest: per_target.done missing");
    T.Done = DoneV->asBool();
    auto FedIn = U64("federated_in");
    if (!FedIn)
      return FedIn.takeError();
    T.FederatedIn = *FedIn;
    auto FedOut = U64("federated_out");
    if (!FedOut)
      return FedOut.takeError();
    T.FederatedOut = *FedOut;
    auto Cursor = U64("fed_cursor");
    if (!Cursor)
      return Cursor.takeError();
    T.FedCursor = *Cursor;
    const json::Value *Hashes = TV.find("imported_hashes");
    if (!Hashes || !Hashes->isArray())
      return makeError("fleet manifest: per_target.imported_hashes missing");
    T.ImportedHashes.clear();
    T.ImportedOrder.clear();
    for (const json::Value &H : Hashes->items()) {
      if (!H.isUInt())
        return makeError("fleet manifest: imported_hashes entry is not an "
                         "integer");
      T.ImportedHashes.insert(H.asUInt());
      T.ImportedOrder.push_back(H.asUInt());
    }
    const json::Value *Pending = TV.find("pending_imports");
    if (!Pending || !Pending->isArray())
      return makeError("fleet manifest: per_target.pending_imports missing");
    T.PendingImports.clear();
    for (const json::Value &P : Pending->items()) {
      if (!P.isString())
        return makeError("fleet manifest: pending_imports entry is not a "
                         "hex string");
      auto Bytes = hexDecode(P.asString());
      if (!Bytes)
        return Bytes.takeError();
      T.PendingImports.push_back(std::move(*Bytes));
    }
    const json::Value *Ran = TV.find("ran");
    if (!Ran || !Ran->isBool())
      return makeError("fleet manifest: per_target.ran missing");
    if (!Ran->asBool())
      continue;
    // Restore the three artifacts the manifest references.
    auto ReadDoc = [&](const char *Kind) -> Expected<json::Value> {
      auto Text = support::readFile(artifactPath(I - 1, Kind));
      if (!Text)
        return Text.takeError();
      return json::parse(*Text);
    };
    auto ScanDoc = ReadDoc("scan");
    if (!ScanDoc)
      return ScanDoc.takeError();
    auto Res = ScanResult::fromJson(*ScanDoc);
    if (!Res)
      return Res.takeError();
    T.Last = std::move(*Res);
    T.HasLast = true;
    auto CorpusDoc = ReadDoc("corpus");
    if (!CorpusDoc)
      return CorpusDoc.takeError();
    T.Snapshot = std::move(*CorpusDoc);
    auto QuarDoc = ReadDoc("quarantine");
    if (!QuarDoc)
      return QuarDoc.takeError();
    T.QuarantineDoc = std::move(*QuarDoc);
    // Mirror the snapshot corpus so federation windows and dedup work
    // before (or without) this target running again.
    T.Corpus.clear();
    const json::Value *Corpus = T.Snapshot->find("corpus");
    if (!Corpus || !Corpus->isArray())
      return makeError("fleet resume: %s has no corpus array",
                       artifactPath(I - 1, "corpus").c_str());
    for (const json::Value &E : Corpus->items()) {
      if (!E.isString())
        return makeError("fleet resume: corpus entry is not a hex string");
      auto Bytes = hexDecode(E.asString());
      if (!Bytes)
        return Bytes.takeError();
      T.Corpus.push_back(std::move(*Bytes));
    }
  }
  Round = RoundV->asUInt();
  (void)Dir;
  return Error::success();
}

Error ScanService::loadState(const std::string &Dir) {
  std::string SavedDir = Opts.StateDir;
  Opts.StateDir = Dir; // artifactPath resolves against the checkpoint
  auto Text = support::readFile(Dir + "/manifest.json");
  if (!Text) {
    Opts.StateDir = SavedDir;
    return Text.takeError();
  }
  auto Doc = json::parse(*Text);
  if (!Doc) {
    Opts.StateDir = SavedDir;
    return Doc.takeError();
  }
  Error E = applyManifest(*Doc, Dir);
  if (E) {
    Opts.StateDir = SavedDir;
    return E;
  }
  // Future checkpoints continue into the restored directory.
  return Error::success();
}

Expected<std::unique_ptr<ScanService>>
ScanService::openStateDir(const std::string &Dir) {
  auto Text = support::readFile(Dir + "/manifest.json");
  if (!Text)
    return Text.takeError();
  auto Doc = json::parse(*Text);
  if (!Doc)
    return Doc.takeError();
  const json::Value *MOpts = Doc->find("options");
  if (!MOpts || !MOpts->isObject())
    return makeError("fleet manifest: missing options object");
  auto Str = [&](const char *Key) -> Expected<std::string> {
    const json::Value *M = MOpts->find(Key);
    if (!M || !M->isString())
      return makeError("fleet manifest: options.%s missing or not a string",
                       Key);
    return M->asString();
  };
  auto U64 = [&](const char *Key) -> Expected<uint64_t> {
    const json::Value *M = MOpts->find(Key);
    if (!M || !M->isUInt())
      return makeError("fleet manifest: options.%s missing or not an "
                       "integer",
                       Key);
    return M->asUInt();
  };
  auto Preset = Str("preset");
  if (!Preset)
    return Preset.takeError();
  auto Base = ScanConfig::preset(*Preset);
  if (!Base)
    return Base.takeError();
  FleetOptions FO;
  FO.Base = std::move(*Base);
  auto Engine = Str("engine");
  if (!Engine)
    return Engine.takeError();
  if (!vm::parseEngineName(*Engine, FO.Base.Engine))
    return makeError("fleet manifest: unknown engine \"%s\"",
                     Engine->c_str());
  auto Seed = U64("seed");
  if (!Seed)
    return Seed.takeError();
  FO.Base.Campaign.Seed = *Seed;
  auto Workers = U64("workers");
  if (!Workers)
    return Workers.takeError();
  FO.Base.Campaign.Workers = static_cast<unsigned>(*Workers);
  auto Sync = U64("sync_interval");
  if (!Sync)
    return Sync.takeError();
  FO.Base.Campaign.SyncInterval = *Sync;
  auto MaxLen = U64("max_input_len");
  if (!MaxLen)
    return MaxLen.takeError();
  FO.Base.Campaign.MaxInputLen = *MaxLen;
  auto MaxStacked = U64("max_stacked_mutations");
  if (!MaxStacked)
    return MaxStacked.takeError();
  FO.Base.Campaign.MaxStackedMutations =
      static_cast<unsigned>(*MaxStacked);
  auto Budget = U64("run_budget");
  if (!Budget)
    return Budget.takeError();
  FO.Base.RunBudget = *Budget;
  auto Plan = Str("fault_plan");
  if (!Plan)
    return Plan.takeError();
  FO.Base.FaultPlan = *Plan;
  const json::Value *Inject = MOpts->find("inject");
  if (!Inject || !Inject->isBool())
    return makeError("fleet manifest: options.inject missing");
  FO.Base.InjectGadgets = Inject->asBool();
  auto IPT = U64("iterations_per_target");
  if (!IPT)
    return IPT.takeError();
  FO.IterationsPerTarget = *IPT;
  auto Global = U64("global_iterations");
  if (!Global)
    return Global.takeError();
  FO.GlobalIterations = *Global;
  auto Slice = U64("slice_epochs");
  if (!Slice)
    return Slice.takeError();
  FO.SliceEpochs = *Slice;
  auto FedEvery = U64("federate_every");
  if (!FedEvery)
    return FedEvery.takeError();
  FO.FederateEvery = static_cast<unsigned>(*FedEvery);
  FO.StateDir = Dir;
  auto Svc = std::make_unique<ScanService>(std::move(FO));
  if (Error E = Svc->loadState(Dir))
    return E;
  return Svc;
}

//===----------------------------------------------------------------------===//
// The round loop
//===----------------------------------------------------------------------===//

Error ScanService::run() {
  if (Error E = Opts.validate())
    return E;
  if (Registered.empty())
    return makeError("fleet: no targets registered");
  StopFlag.store(false, std::memory_order_relaxed);
  bool Checkpointed = false;
  while (!finished() &&
         (Opts.MaxRounds == 0 || Round < Opts.MaxRounds)) {
    if (StopFlag.load(std::memory_order_relaxed))
      break;
    if (Error E = runRound())
      return E;
    if (Opts.FederateEvery && Round % Opts.FederateEvery == 0)
      if (Error E = federate())
        return E;
    if (Error E = checkpoint())
      return E;
    Checkpointed = true;
  }
  // A fleet that was already finished (or stopped before its first
  // round) still commits a checkpoint: resuming a finished fleet is an
  // identity operation over its artifacts.
  if (!Checkpointed)
    if (Error E = checkpoint())
      return E;
  return Error::success();
}
