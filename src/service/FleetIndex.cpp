//===- service/FleetIndex.cpp ---------------------------------------------===//

#include "service/FleetIndex.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace teapot;
using namespace teapot::service;

//===----------------------------------------------------------------------===//
// FleetRecord
//===----------------------------------------------------------------------===//

FleetRecord FleetRecord::fromScan(std::string Spec, std::string Family,
                                  uint64_t Rounds, bool Done,
                                  uint64_t FederatedIn,
                                  uint64_t FederatedOut,
                                  const ScanResult &R) {
  FleetRecord Rec;
  Rec.Spec = std::move(Spec);
  Rec.Family = std::move(Family);
  Rec.Workload = R.Workload;
  Rec.Preset = R.Preset;
  Rec.Engine = R.Engine;
  Rec.Seed = R.Seed;
  Rec.Workers = R.Workers;
  Rec.Iterations = R.Iterations;
  Rec.Rounds = Rounds;
  Rec.Done = Done;
  Rec.Executions = R.Executions;
  Rec.CorpusSize = R.CorpusSize;
  Rec.CorpusAdds = R.CorpusAdds;
  Rec.Imports = R.Imports;
  Rec.GuestInsts = R.GuestInsts;
  Rec.NormalEdges = R.NormalEdges;
  Rec.SpecEdges = R.SpecEdges;
  Rec.FederatedIn = FederatedIn;
  Rec.FederatedOut = FederatedOut;
  Rec.FaultPlan = R.FaultPlan;
  Rec.Quarantined = R.Quarantined;
  Rec.Degradations = R.Degradations;
  Rec.WatchdogTrips = R.WatchdogTrips;
  Rec.FaultsInjected = R.FaultsInjected;
  Rec.HostConcurrency = R.HostConcurrency;
  Rec.HostJitBackend = R.HostJitBackend;
  Rec.InjectedSites = R.InjectedSites;
  Rec.Gadgets = R.Gadgets;
  return Rec;
}

ScanResult FleetRecord::toScan() const {
  ScanResult R;
  R.Workload = Workload;
  R.Preset = Preset;
  R.Engine = Engine;
  R.Seed = Seed;
  R.Workers = Workers;
  R.Iterations = Iterations;
  R.Executions = Executions;
  R.CorpusSize = CorpusSize;
  R.CorpusAdds = CorpusAdds;
  R.Imports = Imports;
  R.GuestInsts = GuestInsts;
  R.NormalEdges = NormalEdges;
  R.SpecEdges = SpecEdges;
  R.FaultPlan = FaultPlan;
  R.Quarantined = Quarantined;
  R.Degradations = Degradations;
  R.WatchdogTrips = WatchdogTrips;
  R.FaultsInjected = FaultsInjected;
  R.HostConcurrency = HostConcurrency;
  R.HostJitBackend = HostJitBackend;
  R.InjectedSites = InjectedSites;
  R.Gadgets = Gadgets;
  return R;
}

json::Value FleetRecord::toJson() const {
  json::Value V = json::Value::object();
  V.set("spec", Spec);
  V.set("family", Family);
  V.set("workload", Workload);
  V.set("preset", Preset);
  V.set("engine", Engine);
  V.set("seed", Seed);
  V.set("workers", Workers);
  V.set("iterations", Iterations);
  V.set("rounds", Rounds);
  V.set("done", Done);
  V.set("executions", Executions);
  V.set("corpus_size", CorpusSize);
  V.set("corpus_adds", CorpusAdds);
  V.set("imports", Imports);
  V.set("guest_insts", GuestInsts);
  V.set("normal_edges", NormalEdges);
  V.set("spec_edges", SpecEdges);
  V.set("federated_in", FederatedIn);
  V.set("federated_out", FederatedOut);
  V.set("fault_plan", FaultPlan);
  V.set("quarantined", Quarantined);
  V.set("degradations", Degradations);
  V.set("watchdog_trips", WatchdogTrips);
  V.set("faults_injected", FaultsInjected);
  json::Value Host = json::Value::object();
  Host.set("hardware_concurrency", HostConcurrency);
  Host.set("jit_backend", HostJitBackend);
  V.set("host", std::move(Host));
  json::Value Sites = json::Value::array();
  for (uint64_t S : InjectedSites)
    Sites.push(json::Value(S));
  V.set("injected_sites", std::move(Sites));
  json::Value Gs = json::Value::array();
  for (const runtime::GadgetReport &G : Gadgets)
    Gs.push(runtime::gadgetToJson(G));
  V.set("gadgets", std::move(Gs));
  return V;
}

namespace {

/// Field accessors with "fleet index: <path>.<key> ..." diagnostics —
/// the ScanResult reader idiom.
struct Reader {
  const json::Value &V;
  const char *Path;

  Error getU64(const char *Key, uint64_t &Out) const {
    const json::Value *M = V.find(Key);
    if (!M || !M->isUInt())
      return makeError("fleet index: %s.%s missing or not a non-negative "
                       "integer",
                       Path, Key);
    Out = M->asUInt();
    return Error::success();
  }

  template <typename T> Error getUInt(const char *Key, T &Out) const {
    uint64_t U = 0;
    if (Error E = getU64(Key, U))
      return E;
    Out = static_cast<T>(U);
    if (static_cast<uint64_t>(Out) != U)
      return makeError("fleet index: %s.%s value out of range", Path, Key);
    return Error::success();
  }

  Error getBool(const char *Key, bool &Out) const {
    const json::Value *M = V.find(Key);
    if (!M || !M->isBool())
      return makeError("fleet index: %s.%s missing or not a boolean", Path,
                       Key);
    Out = M->asBool();
    return Error::success();
  }

  Error getString(const char *Key, std::string &Out) const {
    const json::Value *M = V.find(Key);
    if (!M || !M->isString())
      return makeError("fleet index: %s.%s missing or not a string", Path,
                       Key);
    Out = M->asString();
    return Error::success();
  }

  Expected<const json::Value *> getArray(const char *Key) const {
    const json::Value *M = V.find(Key);
    if (!M || !M->isArray())
      return makeError("fleet index: %s.%s missing or not an array", Path,
                       Key);
    return M;
  }
};

} // namespace

Expected<FleetRecord> FleetRecord::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError("fleet index: target record is not an object");
  FleetRecord R;
  Reader Rd{V, "targets[]"};
  if (Error E = Rd.getString("spec", R.Spec))
    return E;
  if (Error E = Rd.getString("family", R.Family))
    return E;
  if (Error E = Rd.getString("workload", R.Workload))
    return E;
  if (Error E = Rd.getString("preset", R.Preset))
    return E;
  if (Error E = Rd.getString("engine", R.Engine))
    return E;
  if (Error E = Rd.getU64("seed", R.Seed))
    return E;
  if (Error E = Rd.getUInt("workers", R.Workers))
    return E;
  if (Error E = Rd.getU64("iterations", R.Iterations))
    return E;
  if (Error E = Rd.getU64("rounds", R.Rounds))
    return E;
  if (Error E = Rd.getBool("done", R.Done))
    return E;
  if (Error E = Rd.getU64("executions", R.Executions))
    return E;
  if (Error E = Rd.getU64("corpus_size", R.CorpusSize))
    return E;
  if (Error E = Rd.getU64("corpus_adds", R.CorpusAdds))
    return E;
  if (Error E = Rd.getU64("imports", R.Imports))
    return E;
  if (Error E = Rd.getU64("guest_insts", R.GuestInsts))
    return E;
  if (Error E = Rd.getU64("normal_edges", R.NormalEdges))
    return E;
  if (Error E = Rd.getU64("spec_edges", R.SpecEdges))
    return E;
  if (Error E = Rd.getU64("federated_in", R.FederatedIn))
    return E;
  if (Error E = Rd.getU64("federated_out", R.FederatedOut))
    return E;
  if (Error E = Rd.getString("fault_plan", R.FaultPlan))
    return E;
  if (Error E = Rd.getU64("quarantined", R.Quarantined))
    return E;
  if (Error E = Rd.getU64("degradations", R.Degradations))
    return E;
  if (Error E = Rd.getU64("watchdog_trips", R.WatchdogTrips))
    return E;
  if (Error E = Rd.getU64("faults_injected", R.FaultsInjected))
    return E;
  const json::Value *HostV = V.find("host");
  if (!HostV || !HostV->isObject())
    return makeError("fleet index: targets[].host missing or not an object");
  Reader Host{*HostV, "targets[].host"};
  if (Error E = Host.getUInt("hardware_concurrency", R.HostConcurrency))
    return E;
  if (Error E = Host.getBool("jit_backend", R.HostJitBackend))
    return E;
  auto Sites = Rd.getArray("injected_sites");
  if (!Sites)
    return Sites.takeError();
  for (const json::Value &S : (*Sites)->items()) {
    if (!S.isUInt())
      return makeError("fleet index: targets[].injected_sites entry is not "
                       "a non-negative integer");
    R.InjectedSites.push_back(S.asUInt());
  }
  auto Gs = Rd.getArray("gadgets");
  if (!Gs)
    return Gs.takeError();
  for (const json::Value &G : (*Gs)->items()) {
    auto Rep = runtime::gadgetFromJson(G);
    if (!Rep)
      return Rep.takeError();
    R.Gadgets.push_back(*Rep);
  }
  return R;
}

std::string FleetRecord::describe() const {
  std::string S;
  S += formatString("target %s (family %s)\n", Spec.c_str(),
                             Family.c_str());
  S += formatString(
      "  workload %s  preset %s  engine %s  seed %llu  workers %u\n",
      Workload.c_str(), Preset.c_str(), Engine.c_str(),
      static_cast<unsigned long long>(Seed), Workers);
  S += formatString(
      "  rounds %llu  %s  executions %llu/%llu\n",
      static_cast<unsigned long long>(Rounds), Done ? "done" : "in progress",
      static_cast<unsigned long long>(Executions),
      static_cast<unsigned long long>(Iterations));
  S += formatString(
      "  corpus %llu (+%llu adds, %llu imports)  edges %llu normal / %llu "
      "spec\n",
      static_cast<unsigned long long>(CorpusSize),
      static_cast<unsigned long long>(CorpusAdds),
      static_cast<unsigned long long>(Imports),
      static_cast<unsigned long long>(NormalEdges),
      static_cast<unsigned long long>(SpecEdges));
  S += formatString(
      "  federation in %llu / out %llu  quarantined %llu\n",
      static_cast<unsigned long long>(FederatedIn),
      static_cast<unsigned long long>(FederatedOut),
      static_cast<unsigned long long>(Quarantined));
  S += formatString("  gadgets %zu:\n", Gadgets.size());
  for (const runtime::GadgetReport &G : Gadgets)
    S += "    " + G.describe() + "\n";
  return S;
}

//===----------------------------------------------------------------------===//
// FleetIndex
//===----------------------------------------------------------------------===//

const FleetRecord *FleetIndex::findTarget(std::string_view Spec) const {
  for (const FleetRecord &R : Records)
    if (R.Spec == Spec)
      return &R;
  return nullptr;
}

std::vector<GadgetTally> FleetIndex::topGadgets(size_t N) const {
  // Key-ordered map: ties in reporter count resolve by ascending gadget
  // key, so the ranking is deterministic.
  std::map<runtime::ReportSink::Key, GadgetTally> ByKey;
  for (const FleetRecord &R : Records)
    for (const runtime::GadgetReport &G : R.Gadgets) {
      auto [It, New] =
          ByKey.try_emplace(runtime::ReportSink::keyOf(G), GadgetTally{});
      if (New)
        It->second.Gadget = G;
      It->second.Targets.push_back(R.Spec);
    }
  std::vector<GadgetTally> Out;
  Out.reserve(ByKey.size());
  for (auto &[K, T] : ByKey)
    Out.push_back(std::move(T));
  std::stable_sort(Out.begin(), Out.end(),
                   [](const GadgetTally &A, const GadgetTally &B) {
                     return A.Targets.size() > B.Targets.size();
                   });
  if (N && Out.size() > N)
    Out.resize(N);
  return Out;
}

json::Value FleetIndex::toJson() const {
  json::Value V = json::Value::object();
  V.set("schema", SchemaName);
  json::Value Ts = json::Value::array();
  for (const FleetRecord &R : Records)
    Ts.push(R.toJson());
  V.set("targets", std::move(Ts));

  // Family rollups, derived on every dump: member specs in registration
  // order, gadget union deduped under the GadgetSink identity.
  std::vector<std::string> FamilyOrder;
  std::map<std::string, std::vector<const FleetRecord *>> ByFamily;
  for (const FleetRecord &R : Records) {
    auto [It, New] = ByFamily.try_emplace(R.Family);
    if (New)
      FamilyOrder.push_back(R.Family);
    It->second.push_back(&R);
  }
  json::Value Fams = json::Value::array();
  for (const std::string &F : FamilyOrder) {
    json::Value FV = json::Value::object();
    FV.set("family", F);
    json::Value Members = json::Value::array();
    runtime::ReportSink Union;
    for (const FleetRecord *R : ByFamily[F]) {
      Members.push(json::Value(R->Spec));
      for (const runtime::GadgetReport &G : R->Gadgets)
        Union.report(G);
    }
    FV.set("targets", std::move(Members));
    json::Value Gs = json::Value::array();
    for (const runtime::GadgetReport &G : Union.unique())
      Gs.push(runtime::gadgetToJson(G));
    FV.set("gadgets", std::move(Gs));
    Fams.push(std::move(FV));
  }
  V.set("families", std::move(Fams));
  return V;
}

Expected<FleetIndex> FleetIndex::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError("fleet index: document is not an object");
  const json::Value *Schema = V.find("schema");
  if (!Schema || !Schema->isString() || Schema->asString() != SchemaName)
    return makeError("fleet index: missing or unsupported schema (expected "
                     "\"%s\")",
                     SchemaName);
  const json::Value *Ts = V.find("targets");
  if (!Ts || !Ts->isArray())
    return makeError("fleet index: targets missing or not an array");
  FleetIndex Idx;
  for (const json::Value &T : Ts->items()) {
    auto R = FleetRecord::fromJson(T);
    if (!R)
      return R.takeError();
    Idx.Records.push_back(std::move(*R));
  }
  // "families" is a derived view; ignored on read, recomputed on dump.
  return Idx;
}

Expected<FleetIndex> FleetIndex::fromJsonString(std::string_view Text) {
  auto V = json::parse(Text);
  if (!V)
    return V.takeError();
  return fromJson(*V);
}

//===----------------------------------------------------------------------===//
// FleetDiff
//===----------------------------------------------------------------------===//

FleetDiff teapot::service::diffFleets(const FleetIndex &Before,
                                      const FleetIndex &After,
                                      const FleetDiffOptions &Opts) {
  FleetDiff D;
  D.InjectedOnly = Opts.InjectedOnly;
  for (const FleetRecord &B : Before.Records) {
    const FleetRecord *A = After.findTarget(B.Spec);
    if (!A || A->Seed != B.Seed) {
      D.RemovedTargets.push_back(B.Spec);
      if (!B.Gadgets.empty())
        D.RemovedWithGadgets.push_back(B.Spec);
      continue;
    }
    ScanDiffOptions SO;
    // Per-target: an injected-only gate is only meaningful where the
    // baseline recorded ground-truth sites (see FleetDiffOptions).
    SO.InjectedOnly = Opts.InjectedOnly && !B.InjectedSites.empty();
    D.Targets.push_back(
        FleetTargetDiff{B.Spec, B.Seed,
                        diffScans(B.toScan(), A->toScan(), SO)});
  }
  for (const FleetRecord &A : After.Records) {
    const FleetRecord *B = Before.findTarget(A.Spec);
    if (!B || B->Seed != A.Seed)
      D.AddedTargets.push_back(A.Spec);
  }
  return D;
}

json::Value FleetDiff::toJson() const {
  json::Value V = json::Value::object();
  V.set("schema", SchemaName);
  V.set("injected_only", InjectedOnly);
  V.set("regressions", hasRegressions());
  json::Value Ts = json::Value::array();
  for (const FleetTargetDiff &T : Targets) {
    json::Value TV = json::Value::object();
    TV.set("spec", T.Spec);
    TV.set("seed", T.Seed);
    TV.set("diff", T.Diff.toJson());
    Ts.push(std::move(TV));
  }
  V.set("targets", std::move(Ts));
  json::Value Added = json::Value::array();
  for (const std::string &S : AddedTargets)
    Added.push(json::Value(S));
  V.set("added_targets", std::move(Added));
  json::Value Removed = json::Value::array();
  for (const std::string &S : RemovedTargets)
    Removed.push(json::Value(S));
  V.set("removed_targets", std::move(Removed));
  json::Value RemovedG = json::Value::array();
  for (const std::string &S : RemovedWithGadgets)
    RemovedG.push(json::Value(S));
  V.set("removed_with_gadgets", std::move(RemovedG));
  return V;
}

std::string FleetDiff::describe() const {
  std::string S = formatString(
      "fleet diff: %zu common target(s), %zu added, %zu removed%s\n",
      Targets.size(), AddedTargets.size(), RemovedTargets.size(),
      InjectedOnly ? " (injected-only gate)" : "");
  for (const std::string &T : AddedTargets)
    S += formatString("  added:   %s\n", T.c_str());
  for (const std::string &T : RemovedTargets)
    S += formatString(
        "  removed: %s%s\n", T.c_str(),
        std::find(RemovedWithGadgets.begin(), RemovedWithGadgets.end(), T) !=
                RemovedWithGadgets.end()
            ? "  ** had gadgets: REGRESSION **"
            : "");
  for (const FleetTargetDiff &T : Targets) {
    if (T.Diff.NewGadgets.empty() && T.Diff.LostGadgets.empty() &&
        T.Diff.ChangedGadgets.empty()) {
      S += formatString("  %s: unchanged (%llu gadget(s))\n",
                                 T.Spec.c_str(),
                                 static_cast<unsigned long long>(
                                     T.Diff.GadgetsAfter));
      continue;
    }
    S += formatString("  %s:%s\n", T.Spec.c_str(),
                               T.Diff.hasRegressions() ? " ** REGRESSION **"
                                                       : "");
    std::string Body = T.Diff.describe();
    // Indent the scan-level report under its target header.
    size_t Pos = 0;
    while (Pos < Body.size()) {
      size_t End = Body.find('\n', Pos);
      if (End == std::string::npos)
        End = Body.size();
      S += "    " + Body.substr(Pos, End - Pos) + "\n";
      Pos = End + 1;
    }
  }
  if (hasRegressions())
    S += "fleet diff: REGRESSIONS detected\n";
  else
    S += "fleet diff: no regressions\n";
  return S;
}
