//===- service/ScanService.h - Scan-fleet orchestration -----------*- C++ -*-===//
///
/// \file
/// The fleet layer above api::Scanner: one ScanService owns many
/// FleetTargets (registry workloads, "proggen:SEED[:SIZE]" generated
/// programs — anything Scanner::loadWorkload accepts), schedules them
/// in epoch-bounded slices across a bounded worker-thread pool, and
/// periodically federates corpora between campaigns scanning the same
/// target *family* through Scanner::importCorpus.
///
/// Scheduling model — deterministic round-robin:
///
///   round := one slice (FleetOptions::SliceEpochs campaign epochs) for
///            every unfinished target, claimed work-stealing style by
///            the pool
///   barrier: federate (every FederateEvery rounds) -> checkpoint
///
/// Each slice is an isolated Scanner resume/run/save cycle touching
/// only its own target's state, so the pool may execute a round's
/// slices in any order on any number of threads and the fleet still
/// produces byte-identical results: per-target campaigns are
/// deterministic (the Campaign contract), and every cross-target
/// operation — federation, budget accounting, checkpointing — happens
/// sequentially on the scheduling thread at round barriers in target
/// registration order. FleetOptions::Threads is a throughput knob with
/// zero result effect, exactly like CampaignOptions::Workers inside one
/// campaign (locked by tests/fleet_test.cpp and the run-twice CI gate).
///
/// Federation protocol (per family, at barriers): each receiver is
/// offered every sibling's corpus growth since the previous exchange
/// (the sender's FedCursor window), service-side filtered against the
/// receiver's corpus hashes and everything it ever imported
/// (fuzz::hashInput identity), then queued through importCorpus. The
/// receiving campaign executes the batch under its own coverage maps —
/// only coverage-novel entries are adopted (worker Imports counters),
/// and byte-duplicates that slip through are skipped for free by the
/// shard hash set. Gadget identity ((site, channel, controllability),
/// the GadgetSink key) deduplicates the family rollups in the index.
///
/// Persistence: every barrier checkpoints the whole fleet into
/// FleetOptions::StateDir — per-target teapot.scan.v1 /
/// teapot.corpus.v1 / teapot.quarantine.v1 artifacts, the
/// teapot.fleetindex.v1 index, and last (the commit point) a
/// "teapot.fleet.v1" manifest tying them together. requestStop() (the
/// fleet tool's SIGINT path) is honored at barriers only — a mid-slice
/// cut would change the corpus visible to that barrier's federation and
/// diverge from the uninterrupted run — so a stopped fleet resumes
/// (loadState/openStateDir) byte-identically to one that never stopped.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SERVICE_SCANSERVICE_H
#define TEAPOT_SERVICE_SCANSERVICE_H

#include "api/Scanner.h"
#include "service/FleetIndex.h"
#include "support/ArtifactWriter.h"

#include <atomic>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace teapot {
namespace service {

/// One member of the fleet.
struct FleetTarget {
  /// Anything Scanner::loadWorkload accepts: a registry workload name
  /// or a "proggen:SEED[:SIZE]" generated-program spec.
  std::string Spec;
  /// Federation family: campaigns sharing a family exchange corpora at
  /// round barriers. Empty = the spec itself (standalone — a family of
  /// one never federates).
  std::string Family;
  /// Per-target execution budget override (0 = the fleet's
  /// IterationsPerTarget).
  uint64_t Iterations = 0;
};

/// Everything that shapes a fleet run. Every field except Threads is
/// result-relevant and recorded in the teapot.fleet.v1 manifest.
struct FleetOptions {
  /// Per-target scan configuration template. Campaign.Seed is the
  /// *fleet* seed: target i's campaign runs under
  /// fuzz::Campaign::workerSeed(Seed, i), so sibling campaigns explore
  /// decorrelated trajectories. Campaign.TotalIterations and
  /// Campaign.MaxEpochs are managed by the scheduler (per-target
  /// budgets / slice bounds) and ignored here.
  ScanConfig Base;

  /// Execution budget per target (overridable per FleetTarget).
  uint64_t IterationsPerTarget = 20000;
  /// Fleet-wide execution ceiling, checked at round barriers (0 = off).
  /// The fleet finishes when every target is done *or* the global
  /// budget is exhausted.
  uint64_t GlobalIterations = 0;
  /// Campaign epochs per slice. 0 = each target runs to completion in
  /// its first slice (no interleaving, federation only at the end).
  uint64_t SliceEpochs = 4;
  /// Scheduler thread-pool size. Throughput only — never affects
  /// results (see file comment). Not recorded in the manifest.
  unsigned Threads = 1;
  /// Federate at every barrier where Round % FederateEvery == 0
  /// (0 = federation off).
  unsigned FederateEvery = 1;
  /// Total-round ceiling across run() calls (0 = until finished) — the
  /// "run k rounds, checkpoint, resume later" workflow. Not recorded in
  /// the manifest.
  uint64_t MaxRounds = 0;
  /// Checkpoint directory ("" = no persistence).
  std::string StateDir;

  Error validate() const;
};

/// The fleet orchestrator. Register targets, run(); the index() is the
/// queryable aggregate. See the file comment for the scheduling,
/// federation, and persistence contracts.
class ScanService {
public:
  explicit ScanService(FleetOptions Opts);
  ~ScanService();

  ScanService(const ScanService &) = delete;
  ScanService &operator=(const ScanService &) = delete;

  /// Registers a fleet member. Registration order is the scheduling,
  /// federation, and index order. Duplicate specs are diagnosed errors
  /// (the spec is the target's identity everywhere downstream).
  Error addTarget(FleetTarget T);
  const std::vector<FleetTarget> &targets() const { return Registered; }

  FleetOptions &options() { return Opts; }
  const FleetOptions &options() const { return Opts; }

  /// Runs rounds until the fleet is finished, MaxRounds is reached, or
  /// requestStop() was seen at a barrier. Materializes scanners lazily
  /// (loadWorkload + rewrite on first slice need), checkpoints at every
  /// barrier when StateDir is set, and writes a final checkpoint before
  /// returning — including on the all-finished fast path, so resuming a
  /// finished fleet is an identity operation over its artifacts.
  Error run();

  /// Restores a checkpoint written by a fleet with the same
  /// FleetOptions (result-relevant fields are compared against the
  /// manifest and mismatches diagnosed) into this service. With no
  /// targets registered yet, the manifest's target list is adopted;
  /// otherwise it must match. The next run() continues at the recorded
  /// round.
  Error loadState(const std::string &Dir);

  /// One-call resume: reads Dir's manifest, reconstructs the
  /// FleetOptions it records (preset + recorded overrides; Threads and
  /// MaxRounds are session knobs and reset to defaults), registers its
  /// targets, and loads the checkpoint.
  static Expected<std::unique_ptr<ScanService>>
  openStateDir(const std::string &Dir);

  /// All per-target budgets exhausted, or the global budget is.
  bool finished() const;
  /// Completed round barriers (across run() calls and resume).
  uint64_t round() const { return Round; }
  /// Fleet-wide executions so far.
  uint64_t totalExecutions() const;

  /// Asks run() to stop at the next round barrier (after that round's
  /// federation + checkpoint). Safe from signal handlers' helper
  /// threads — it only sets an atomic flag.
  void requestStop() { StopFlag.store(true, std::memory_order_relaxed); }

  /// The current fleet index, aggregated from every target that has run
  /// (or was restored) so far.
  FleetIndex index() const;

  /// The writer all checkpoint artifacts flow through — hook OnWrite
  /// for progress lines, setFaults for robustness drills.
  support::ArtifactWriter &artifacts() { return Writer; }

  /// The service-side federation filter, exposed for tests: returns the
  /// subset of \p Window whose fuzz::hashInput is in neither \p Known
  /// (the receiver's current corpus) nor \p Imported (everything it
  /// ever accepted), recording accepted hashes into \p Imported and
  /// \p ImportedOrder.
  static std::vector<std::vector<uint8_t>>
  filterNovel(const std::vector<std::vector<uint8_t>> &Window,
              const std::unordered_set<uint64_t> &Known,
              std::unordered_set<uint64_t> &Imported,
              std::vector<uint64_t> &ImportedOrder);

  static constexpr const char *ManifestSchemaName = "teapot.fleet.v1";

private:
  struct TargetState;

  Error materialize(TargetState &T, size_t Index);
  Error runSlice(TargetState &T);
  Error runRound();
  Error federate();
  Error checkpoint();
  Error queueImports(TargetState &T,
                     const std::vector<std::vector<uint8_t>> &Batch);
  json::Value optionsJson() const;
  json::Value manifestJson() const;
  Error applyManifest(const json::Value &Manifest, const std::string &Dir);
  static std::string fileStem(const std::string &Spec);
  std::string artifactPath(size_t Index, const char *Kind) const;

  FleetOptions Opts;
  std::vector<FleetTarget> Registered;
  std::vector<std::unique_ptr<TargetState>> States;
  uint64_t Round = 0;
  std::atomic<bool> StopFlag{false};
  support::ArtifactWriter Writer;
};

} // namespace service
} // namespace teapot

#endif // TEAPOT_SERVICE_SCANSERVICE_H
