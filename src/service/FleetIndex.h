//===- service/FleetIndex.h - Queryable fleet result index --------*- C++ -*-===//
///
/// \file
/// The batch-aggregation layer of the scan-fleet subsystem: many
/// per-target teapot.scan.v1 results collapse into one queryable
/// "teapot.fleetindex.v1" document. Each FleetRecord carries a target's
/// gadget set under the GadgetSink identity (site, channel,
/// controllability), its coverage/throughput/robustness counters, its
/// federation traffic, and host provenance — enough to answer the fleet
/// CLI's queries (--top-gadgets, --target, --weakened-since) and to
/// re-synthesize a ScanResult so fleet-vs-fleet diffing
/// ("teapot.fleetdiff.v1") rides the existing diffScans machinery
/// instead of reimplementing gadget matching.
///
/// Determinism contract (same as ScanResult): records serialize in
/// registration order, gadget lists in GadgetSink key order, family
/// rollups in first-appearance order with key-ordered deduped gadget
/// unions — two fleets run from identical FleetOptions dump
/// byte-identical index documents.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SERVICE_FLEETINDEX_H
#define TEAPOT_SERVICE_FLEETINDEX_H

#include "api/ScanDiff.h"
#include "api/ScanResult.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace teapot {
namespace service {

/// One target's slot in the fleet index: provenance + aggregate
/// counters + the deduplicated gadget set, flattened from the target's
/// final ScanResult and the service's federation bookkeeping.
struct FleetRecord {
  // --- Identity ------------------------------------------------------------
  std::string Spec;   // target spec as registered ("jsmn", "proggen:11:4")
  std::string Family; // federation family (equals Spec when standalone)

  // --- Scan provenance (from the target's ScanResult) ----------------------
  std::string Workload;
  std::string Preset;
  std::string Engine;
  uint64_t Seed = 0; // per-target campaign seed (derived, not the fleet seed)
  unsigned Workers = 0;
  uint64_t Iterations = 0; // per-target execution budget

  // --- Scheduling ----------------------------------------------------------
  uint64_t Rounds = 0; // scheduler rounds this target received a slice in
  bool Done = false;   // budget exhausted

  // --- Campaign aggregates -------------------------------------------------
  uint64_t Executions = 0;
  uint64_t CorpusSize = 0;
  uint64_t CorpusAdds = 0;
  uint64_t Imports = 0; // coverage-novel adoptions (cross-worker + federated)
  uint64_t GuestInsts = 0;
  uint64_t NormalEdges = 0;
  uint64_t SpecEdges = 0;

  // --- Federation traffic (service bookkeeping) ----------------------------
  uint64_t FederatedIn = 0;  // entries queued into this target's campaign
  uint64_t FederatedOut = 0; // entries this target donated to siblings

  // --- Robustness ----------------------------------------------------------
  std::string FaultPlan;
  uint64_t Quarantined = 0;
  uint64_t Degradations = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t FaultsInjected = 0;

  // --- Host provenance -----------------------------------------------------
  uint32_t HostConcurrency = 0;
  bool HostJitBackend = false;

  // --- Ground truth + gadgets ----------------------------------------------
  std::vector<uint64_t> InjectedSites;
  /// Unique gadget records in GadgetSink (site, channel,
  /// controllability) key order.
  std::vector<runtime::GadgetReport> Gadgets;

  /// Flattens a target's final ScanResult plus service bookkeeping into
  /// a record.
  static FleetRecord fromScan(std::string Spec, std::string Family,
                              uint64_t Rounds, bool Done,
                              uint64_t FederatedIn, uint64_t FederatedOut,
                              const ScanResult &R);

  /// Re-synthesizes a ScanResult carrying everything diffScans consumes
  /// (gadgets, injected sites, coverage/corpus/execution counters;
  /// wall-clock stays zero). FleetDiff is built on this.
  ScanResult toScan() const;

  json::Value toJson() const;
  static Expected<FleetRecord> fromJson(const json::Value &V);

  /// Human-readable summary block (the fleet CLI's --target output).
  std::string describe() const;

  bool operator==(const FleetRecord &O) const = default;
};

/// One gadget identity's fleet-wide tally (the --top-gadgets query).
struct GadgetTally {
  runtime::GadgetReport Gadget; // representative record (first reporter's)
  std::vector<std::string> Targets; // specs reporting it, index order

  bool operator==(const GadgetTally &O) const = default;
};

/// The queryable fleet index. JSON schema "teapot.fleetindex.v1".
struct FleetIndex {
  static constexpr const char *SchemaName = "teapot.fleetindex.v1";

  /// Per-target records in fleet registration order.
  std::vector<FleetRecord> Records;

  const FleetRecord *findTarget(std::string_view Spec) const;

  /// Gadget identities ranked by how many targets report them (ties
  /// broken by ascending gadget key), truncated to \p N (0 = all).
  std::vector<GadgetTally> topGadgets(size_t N = 0) const;

  /// Serializes records plus derived family rollups ("families": family,
  /// member specs, GadgetSink-deduped gadget union in key order). The
  /// rollups are recomputed from Records on every dump — they are a
  /// view, not state — so fromJson ignores them and dump/parse/dump is
  /// still byte-stable.
  json::Value toJson() const;
  static Expected<FleetIndex> fromJson(const json::Value &V);

  std::string toJsonString() const { return toJson().dump(true) + "\n"; }
  static Expected<FleetIndex> fromJsonString(std::string_view Text);

  bool operator==(const FleetIndex &O) const = default;
};

struct FleetDiffOptions {
  /// Restrict regression accounting to baseline injected ground-truth
  /// sites for targets that have them; targets without injected sites
  /// keep full accounting (a vacuous per-target gate would let real
  /// losses through).
  bool InjectedOnly = false;
};

/// One common target's scan-level diff inside a fleet diff.
struct FleetTargetDiff {
  std::string Spec;
  uint64_t Seed = 0;
  ScanDiff Diff;
};

/// Fleet-vs-fleet comparison. JSON schema "teapot.fleetdiff.v1".
/// Targets are matched by (spec, seed) — a reseeded target is a
/// remove+add, not a comparable pair. Removing a target that had
/// gadgets is a regression: detection signal disappeared from the
/// fleet.
struct FleetDiff {
  static constexpr const char *SchemaName = "teapot.fleetdiff.v1";

  bool InjectedOnly = false;
  /// Per-common-target diffs, in baseline record order.
  std::vector<FleetTargetDiff> Targets;
  std::vector<std::string> AddedTargets;
  std::vector<std::string> RemovedTargets;
  /// Subset of RemovedTargets whose baseline record had gadgets.
  std::vector<std::string> RemovedWithGadgets;

  bool hasRegressions() const {
    if (!RemovedWithGadgets.empty())
      return true;
    for (const FleetTargetDiff &T : Targets)
      if (T.Diff.hasRegressions())
        return true;
    return false;
  }

  json::Value toJson() const;
  std::string describe() const;
};

FleetDiff diffFleets(const FleetIndex &Before, const FleetIndex &After,
                     const FleetDiffOptions &Opts = {});

} // namespace service
} // namespace teapot

#endif // TEAPOT_SERVICE_FLEETINDEX_H
