//===- baselines/SpecTaint.h - SpecTaint-style emulator -----------*- C++ -*-===//
///
/// \file
/// The SpecTaint baseline (Qi et al., NDSS '21): a *whole-system-emulator*
/// style detector (DECAF/QEMU in the paper), reproduced as an emulation
/// loop over the original, uninstrumented binary. Its defining properties
/// — the ones the paper measures against — all emerge mechanically:
///
///   - every guest instruction pays emulator work: a fresh decode (the
///     translation layer) plus DIFT callbacks in normal *and* speculative
///     mode, which is where the >20x slowdown vs Teapot comes from;
///   - no program-level information: it cannot tell out-of-bounds from
///     legal accesses, so every tainted memory access is assumed to load
///     a secret (false positives), and there is no heap/stack redzone
///     knowledge;
///   - the nesting heuristic enters speculation at most `Tries` (5) times
///     per branch, which misses deeply nested gadgets (false negatives in
///     Tables 3 and 4).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_BASELINES_SPECTAINT_H
#define TEAPOT_BASELINES_SPECTAINT_H

#include "runtime/Dift.h"
#include "runtime/Report.h"
#include "vm/Machine.h"

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

namespace teapot {
namespace baselines {

struct SpecTaintOptions {
  unsigned SpecWindow = 250;
  unsigned MaxDepth = 6;
  /// Each branch enters speculation simulation at most this many times.
  unsigned Tries = 5;
  bool TaintInput = true;
  uint64_t ExtraTaintAddr = 0;
  uint64_t ExtraTaintLen = 0;
  /// Disable speculation entirely (pure-emulation timing runs).
  bool SimulateSpeculation = true;
};

struct SpecTaintStats {
  uint64_t EmulatedInsts = 0;
  uint64_t Simulations = 0;
  uint64_t Rollbacks = 0;
};

class SpecTaintEmulator {
public:
  SpecTaintEmulator(vm::Machine &M, SpecTaintOptions Opts);

  /// Installs the input-taint hook; call after loadObject.
  void attach();

  /// Per-run reset (taint state, branch try counters persist).
  void resetRun();

  /// Serializes/restores the cross-run state — the per-branch try
  /// counters (which steer later simulations), the report sink, and the
  /// stats — so a resumed campaign's fresh emulator target continues
  /// byte-identically (the campaign snapshot path; see
  /// fuzz::FuzzTarget::saveState). The translation cache is excluded:
  /// it is a pure cache with no behavioral effect.
  json::Value saveState() const;
  Error loadState(const json::Value &V);

  /// Emulates until the program stops or \p MaxInsts guest instructions
  /// ran.
  vm::StopState run(uint64_t MaxInsts);

  runtime::ReportSink Reports;
  SpecTaintStats Stats;

private:
  struct Checkpoint {
    vm::CPU CPU;
    size_t MemLogMark;
    size_t TagLogMark;
    uint8_t RegTags[isa::NumRegs];
    uint8_t FlagsTag;
  };
  struct MemUndo {
    uint64_t Addr;
    uint8_t Size;
    uint64_t OldBytes;
  };

  vm::Machine &M;
  SpecTaintOptions Opts;
  runtime::TagEngine Tags;

  std::vector<Checkpoint> Checkpoints;
  std::vector<MemUndo> MemLog;
  uint64_t SpecInsts = 0;
  bool SkipNextSim = false;
  std::map<uint64_t, uint32_t> BranchTries; // keyed by branch PC
  /// Emulator mechanics: the translation-block cache a TCG-style
  /// emulator consults on every fetch, and the softmmu page-table base
  /// its guest memory accesses walk through. Both model *measured* work
  /// the full-system design pays that Teapot's native execution does
  /// not.
  std::unordered_map<uint64_t, uint64_t> TransCache;
  void softmmuTranslate(uint64_t Addr);
  /// Per-TCG-micro-op plugin callback (function-pointer dispatch, as in
  /// DECAF's instrumentation interface).
  std::function<void(const isa::Instruction &)> PerOpCallback;
  volatile uint8_t LiveTaint = 0;

  bool inSim() const { return !Checkpoints.empty(); }
  void rollback();
  /// Returns true when a new simulation started (caller flips the
  /// branch).
  bool maybeStartSim(uint64_t BranchPC);
  void preStepTaint(const isa::Instruction &I, uint64_t Site);
  void logWritesOf(const isa::Instruction &I);
};

} // namespace baselines
} // namespace teapot

#endif // TEAPOT_BASELINES_SPECTAINT_H
