//===- baselines/SpecTaint.cpp --------------------------------------------===//

#include "baselines/SpecTaint.h"

#include "isa/Encoding.h"
#include "runtime/ShadowLayout.h"
#include "support/StringUtils.h"

#include <cstring>

using namespace teapot;
using namespace teapot::baselines;
using namespace teapot::isa;
using namespace teapot::runtime;

SpecTaintEmulator::SpecTaintEmulator(vm::Machine &M, SpecTaintOptions Opts)
    : M(M), Opts(Opts), Tags(M) {
  PerOpCallback = [this](const Instruction &I) {
    // The plugin's per-micro-op work: poll the shadow register state for
    // live taint the way DECAF's tainting plugin inspects its shadow
    // CPU on every lifted op.
    uint8_t T = 0;
    for (unsigned R = 0; R != isa::NumRegs; ++R)
      T |= Tags.RegTags[R];
    LiveTaint = T | static_cast<uint8_t>(I.Size & 0);
  };
}

void SpecTaintEmulator::attach() {
  M.FaultHook = [this](vm::Machine &, vm::FaultKind, uint64_t) {
    if (!inSim())
      return false;
    rollback();
    return true;
  };
  M.InputReadHook = [this](uint64_t Addr, uint64_t Len, uint64_t) {
    if (Opts.TaintInput)
      Tags.setMemTag(Addr, static_cast<unsigned>(Len), TagUser);
  };
}

void SpecTaintEmulator::resetRun() {
  Checkpoints.clear();
  MemLog.clear();
  SpecInsts = 0;
  SkipNextSim = false;
  Tags.reset();
  if (Opts.ExtraTaintLen)
    Tags.setMemTag(Opts.ExtraTaintAddr,
                   static_cast<unsigned>(Opts.ExtraTaintLen), TagUser);
}

json::Value SpecTaintEmulator::saveState() const {
  assert(Checkpoints.empty() && "saveState mid-simulation");
  json::Value V = json::Value::object();
  json::Value Tries = json::Value::object();
  for (const auto &[PC, N] : BranchTries)
    Tries.set(toHex(PC), N); // std::map: key-ordered, stable text
  V.set("branch_tries", std::move(Tries));
  json::Value Rep = json::Value::object();
  Rep.set("total_hits", Reports.totalHits());
  json::Value Uniq = json::Value::array();
  for (const GadgetReport &R : Reports.unique())
    Uniq.push(gadgetToJson(R));
  Rep.set("unique", std::move(Uniq));
  V.set("reports", std::move(Rep));
  json::Value St = json::Value::object();
  St.set("emulated_insts", Stats.EmulatedInsts);
  St.set("simulations", Stats.Simulations);
  St.set("rollbacks", Stats.Rollbacks);
  V.set("stats", std::move(St));
  return V;
}

Error SpecTaintEmulator::loadState(const json::Value &V) {
  if (!V.isObject())
    return makeError("emulator state: not an object");
  const json::Value *Tries = V.find("branch_tries");
  if (!Tries || !Tries->isObject())
    return makeError("emulator state: missing branch_tries object");
  std::map<uint64_t, uint32_t> NewTries;
  for (const auto &[Key, N] : Tries->members()) {
    int64_t PC = 0;
    if (!parseInt(Key, PC) || PC < 0 || !N.isUInt() ||
        N.asUInt() > UINT32_MAX)
      return makeError("emulator state: bad branch_tries entry '%s'",
                       Key.c_str());
    NewTries[static_cast<uint64_t>(PC)] = static_cast<uint32_t>(N.asUInt());
  }
  const json::Value *Rep = V.find("reports");
  if (!Rep || !Rep->isObject())
    return makeError("emulator state: missing reports object");
  const json::Value *Total = Rep->find("total_hits");
  const json::Value *Uniq = Rep->find("unique");
  if (!Total || !Total->isUInt() || !Uniq || !Uniq->isArray())
    return makeError("emulator state: reports needs total_hits + unique[]");
  std::vector<GadgetReport> Gadgets;
  for (const json::Value &GV : Uniq->items()) {
    auto G = gadgetFromJson(GV);
    if (!G)
      return G.takeError();
    Gadgets.push_back(*G);
  }
  const json::Value *St = V.find("stats");
  if (!St || !St->isObject())
    return makeError("emulator state: missing stats object");
  SpecTaintStats NewStats;
  auto GetStat = [&](const char *Key, uint64_t &Out) -> Error {
    const json::Value *M = St->find(Key);
    if (!M || !M->isUInt())
      return makeError("emulator state: stats.%s is not an unsigned "
                       "integer",
                       Key);
    Out = M->asUInt();
    return Error::success();
  };
  if (Error E = GetStat("emulated_insts", NewStats.EmulatedInsts))
    return E;
  if (Error E = GetStat("simulations", NewStats.Simulations))
    return E;
  if (Error E = GetStat("rollbacks", NewStats.Rollbacks))
    return E;
  if (Error E = Reports.restore(std::move(Gadgets), Total->asUInt()))
    return E;
  BranchTries = std::move(NewTries);
  Stats = NewStats;
  return Error::success();
}

void SpecTaintEmulator::rollback() {
  assert(!Checkpoints.empty());
  ++Stats.Rollbacks;
  Checkpoint &CP = Checkpoints.back();
  while (MemLog.size() > CP.MemLogMark) {
    const MemUndo &E = MemLog.back();
    M.Mem.writeUnsigned(E.Addr, E.OldBytes, E.Size);
    MemLog.pop_back();
  }
  Tags.undoTo(CP.TagLogMark);
  M.C = CP.CPU;
  memcpy(Tags.RegTags, CP.RegTags, sizeof(CP.RegTags));
  Tags.FlagsTag = CP.FlagsTag;
  Checkpoints.pop_back();
  if (Checkpoints.empty()) {
    Tags.Logging = false;
    SpecInsts = 0;
  }
  // Resume re-fetches the branch; don't immediately re-enter simulation.
  SkipNextSim = true;
}

bool SpecTaintEmulator::maybeStartSim(uint64_t BranchPC) {
  if (SkipNextSim) {
    SkipNextSim = false;
    return false;
  }
  if (!Opts.SimulateSpeculation)
    return false;
  if (Checkpoints.size() >= Opts.MaxDepth)
    return false;
  uint32_t &Tries = BranchTries[BranchPC];
  if (Tries >= Opts.Tries)
    return false;
  ++Tries;
  Checkpoint CP;
  CP.CPU = M.C; // PC = the branch instruction (resume point)
  CP.MemLogMark = MemLog.size();
  CP.TagLogMark = Tags.Log.size();
  memcpy(CP.RegTags, Tags.RegTags, sizeof(CP.RegTags));
  CP.FlagsTag = Tags.FlagsTag;
  Checkpoints.push_back(std::move(CP));
  Tags.Logging = true;
  ++Stats.Simulations;
  return true;
}

void SpecTaintEmulator::softmmuTranslate(uint64_t Addr) {
  // A softmmu-style two-level table walk per guest access, the way a
  // full-system emulator translates every load/store (the tables live in
  // an otherwise-unused guest region; their contents are irrelevant, the
  // walk's memory traffic is the modelled cost).
  constexpr uint64_t PTBase = 0x3000'0000'0000ULL; // inside the shadow gap
  uint64_t L1 = M.Mem.readUnsigned(PTBase + ((Addr >> 30) & 0x1ff) * 8, 8);
  uint64_t L2 = M.Mem.readUnsigned(
      PTBase + 0x200000 + (((Addr >> 21) & 0x1ff) ^ L1) % 0x1000 * 8, 8);
  (void)L2;
}

void SpecTaintEmulator::preStepTaint(const Instruction &I, uint64_t Site) {
  // DECAF's DIFT plugin hooks the *lifted* code: one callback per TCG
  // micro-op, through a function pointer, with a shadow-state check in
  // each — the defining per-instruction cost of the full-system design
  // (Section 3.1). A guest instruction lifts to roughly 6 micro-ops,
  // plus ~5 more for the softmmu slow path of a memory access.
  unsigned MicroOps = 6 + (I.hasMemOperand() ? 5 : 0);
  for (unsigned K = 0; K != MicroOps; ++K)
    PerOpCallback(I);
  // Every guest memory access goes through the emulator's software MMU.
  if (I.hasMemOperand())
    softmmuTranslate(M.effectiveAddr(I.memRef()));
  switch (I.Op) {
  case Opcode::PUSH:
  case Opcode::POP:
  case Opcode::CALL:
  case Opcode::CALLI:
  case Opcode::RET:
    softmmuTranslate(M.C.R[SP]);
    break;
  default:
    break;
  }
  // SpecTaint policy: it cannot distinguish out-of-bounds from legal
  // accesses, so during speculation *any* access through user-tainted
  // pointers is assumed to load a secret; a secret-tainted pointer later
  // dereferenced is a transmitting gadget.
  if (inSim() && I.hasMemOperand()) {
    const MemRef &Mem = I.memRef();
    uint8_t AddrT = Tags.addrTag(Mem);
    if ((I.Op == Opcode::LOAD || I.Op == Opcode::LOADS) &&
        (AddrT & TagUser))
      Tags.PendingLoadExtra |= TagSecretUser;
    if (AddrT & TagSecretUser) {
      GadgetReport R;
      R.Site = Site;
      R.Chan = Channel::Cache;
      R.Ctrl = Controllability::User;
      R.Depth = static_cast<uint8_t>(Checkpoints.size());
      Reports.report(R);
    }
  }
  // The per-instruction DIFT plugin runs in both modes — a defining cost
  // of the emulator-based design.
  Tags.transfer(I);
}

void SpecTaintEmulator::logWritesOf(const Instruction &I) {
  auto Log = [&](uint64_t Addr, unsigned Size) {
    MemLog.push_back(
        {Addr, static_cast<uint8_t>(Size), M.Mem.readUnsigned(Addr, Size)});
  };
  switch (I.Op) {
  case Opcode::STORE:
    Log(M.effectiveAddr(I.A.M), I.Size);
    break;
  case Opcode::PUSH:
  case Opcode::CALL:
  case Opcode::CALLI:
    Log(M.C.R[SP] - 8, 8);
    break;
  default:
    break;
  }
}

vm::StopState SpecTaintEmulator::run(uint64_t MaxInsts) {
  vm::StopState Stop;
  for (uint64_t N = 0; N != MaxInsts; ++N) {
    uint64_t PC = M.C.PC;
    if (PC == vm::Machine::HaltSentinel) {
      if (inSim()) {
        rollback();
        continue;
      }
      Stop.Kind = vm::StopKind::Halted;
      Stop.ExitStatus = M.C.R[R0];
      return Stop;
    }

    // The emulator's translation layer: a translation-cache probe on
    // every fetch plus a fresh lift of the instruction for the DIFT
    // plugin (DECAF instruments at translation time, so the plugin's
    // view is re-derived rather than shared with the executor).
    uint64_t &TbEntry = TransCache[PC];
    uint8_t Buf[40];
    M.Mem.readCode(PC, Buf, sizeof(Buf));
    auto D = decode(Buf, sizeof(Buf), 0);
    TbEntry = D ? D->Length : ~0ull;
    if (!D) {
      if (inSim()) {
        rollback();
        continue;
      }
      Stop.Kind = vm::StopKind::Fault;
      Stop.Fault = vm::FaultKind::BadFetch;
      Stop.FaultAddr = PC;
      return Stop;
    }
    const Instruction &I = D->I;
    ++Stats.EmulatedInsts;

    if (inSim()) {
      // Termination conditions: budget, serializing instructions,
      // external calls, program exit.
      if (++SpecInsts > Opts.SpecWindow || I.Op == Opcode::EXT ||
          I.Op == Opcode::HALT || I.Op == Opcode::FENCE) {
        rollback();
        continue;
      }
    }

    if (I.Op == Opcode::JCC && maybeStartSim(PC)) {
      // Force the reverted branch direction (the emulator flips the
      // branch instead of using trampolines).
      bool Taken = evalCond(I.CC, M.C.Flags);
      uint64_t Next = PC + D->Length;
      M.C.PC = Taken ? Next : Next + static_cast<uint64_t>(I.A.Imm);
      continue;
    }

    preStepTaint(I, PC);
    if (inSim())
      logWritesOf(I);

    if (!M.step(Stop))
      return Stop;
  }
  Stop.Kind = vm::StopKind::OutOfGas;
  return Stop;
}
