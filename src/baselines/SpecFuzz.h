//===- baselines/SpecFuzz.h - SpecFuzz-style baseline -------------*- C++ -*-===//
///
/// \file
/// The SpecFuzz baseline (Oleksenko et al., USENIX Security '20) as the
/// paper compares against it: single-copy instrumentation where every
/// instrumentation site is guarded by an in-simulation check executed in
/// both modes (Listing 3), and the detection policy flags *every*
/// speculative out-of-bounds access as a gadget (no DIFT, hence the false
/// positives in Tables 3 and 4).
///
/// It shares the IR pipeline and runtime with Teapot — only the rewrite
/// mode and runtime policy differ — which mirrors how the paper's
/// comparison isolates the Speculation Shadows design from everything
/// else.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_BASELINES_SPECFUZZ_H
#define TEAPOT_BASELINES_SPECFUZZ_H

#include "core/TeapotRewriter.h"
#include "passes/PipelineBuilder.h"
#include "runtime/SpecRuntime.h"

namespace teapot {
namespace baselines {

/// Rewrites \p In with the guarded single-copy architecture — the
/// passes::PipelineBuilder::specFuzzBaseline() pass composition.
inline Expected<core::RewriteResult>
specFuzzRewriteBinary(const obj::ObjectFile &In) {
  return passes::runPipeline(In, passes::PipelineBuilder::specFuzzBaseline());
}

inline Expected<core::RewriteResult>
specFuzzRewriteModule(ir::Module M) {
  return passes::runPipeline(std::move(M),
                             passes::PipelineBuilder::specFuzzBaseline());
}

/// Runtime options matching the SpecFuzz policy: ASan-only detection,
/// SpecFuzz nesting heuristic.
inline runtime::RuntimeOptions specFuzzRuntimeOptions() {
  runtime::RuntimeOptions O;
  O.EnableDift = false;
  O.MassagePolicy = false;
  O.Nesting = runtime::NestingPolicy::SpecFuzz;
  return O;
}

} // namespace baselines
} // namespace teapot

#endif // TEAPOT_BASELINES_SPECFUZZ_H
