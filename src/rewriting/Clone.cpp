//===- rewriting/Clone.cpp ------------------------------------------------===//

#include "rewriting/Clone.h"

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::rewriting;

void rewriting::cloneShadowFunctions(Module &M) {
  const uint32_t NumReal = static_cast<uint32_t>(M.Funcs.size());
  M.Funcs.reserve(NumReal * 2);

  for (uint32_t F = 0; F != NumReal; ++F) {
    Function Clone = M.Funcs[F]; // byte-for-byte copy
    Clone.Name += "$spec";
    Clone.IsShadow = true;
    Clone.ShadowOf = F;
    Clone.ShadowIdx = NoIdx;
    M.Funcs[F].ShadowIdx = NumReal + F;

    auto Remap = [&](BlockRef &R) {
      assert(R.Func < NumReal && "clone input already references a shadow");
      R.Func += NumReal;
    };
    for (BasicBlock &B : Clone.Blocks) {
      if (B.TakenSucc)
        Remap(*B.TakenSucc);
      if (B.FallSucc)
        Remap(*B.FallSucc);
      for (BlockRef &R : B.IndirectSuccs)
        Remap(R);
      for (Inst &In : B.Insts) {
        if (In.Target)
          Remap(*In.Target);
        if (In.Callee != NoIdx)
          In.Callee += NumReal;
        // FuncImm deliberately left pointing at the Real Copy.
      }
    }
    M.Funcs.push_back(std::move(Clone));
  }
}
