//===- rewriting/Clone.h - Shadow-copy function cloning -----------*- C++ -*-===//
///
/// \file
/// The structural half of Speculation Shadows (Section 5.2): clone every
/// function byte-for-byte into a Shadow Copy named "<name>$spec", then
/// update all control-flow transitions known at rewrite time (direct
/// branches and calls) inside the clones to refer to their Shadow-Copy
/// counterparts, so control flow never escapes into code of the wrong
/// execution mode by a direct edge.
///
/// Function-pointer immediates (FuncImm) intentionally keep pointing at
/// Real-Copy entries: that reproduces Figure 5(b), where a Real-Copy code
/// pointer flows into the Shadow Copy and must be caught at run time by
/// the escape checks.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_REWRITING_CLONE_H
#define TEAPOT_REWRITING_CLONE_H

#include "ir/IR.h"

namespace teapot {
namespace rewriting {

/// Clones all functions of \p M. Clone of function i gets index
/// NumOriginal + i; IsShadow/ShadowOf/ShadowIdx are linked up. Must run
/// before any instrumentation pass.
void cloneShadowFunctions(ir::Module &M);

/// Returns the shadow counterpart of a real-copy block.
inline ir::BlockRef shadowBlock(const ir::Module &M, ir::BlockRef Real) {
  uint32_t SIdx = M.Funcs[Real.Func].ShadowIdx;
  assert(SIdx != ir::NoIdx && "function has no shadow copy");
  return {SIdx, Real.Block};
}

} // namespace rewriting
} // namespace teapot

#endif // TEAPOT_REWRITING_CLONE_H
