//===- isa/Registers.h - Register file definition ----------------*- C++ -*-===//
///
/// \file
/// The TISA (Teapot ISA) register file: sixteen 64-bit general purpose
/// registers. R14 and R15 double as the frame and stack pointer (mirroring
/// rbp/rsp), which matters to the binary-ASan allowlisting rule from the
/// paper (accesses based off rsp/rbp with constant offsets are allowed).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_ISA_REGISTERS_H
#define TEAPOT_ISA_REGISTERS_H

#include <cassert>
#include <cstdint>

namespace teapot {
namespace isa {

enum Reg : uint8_t {
  R0 = 0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  R8,
  R9,
  R10,
  R11,
  R12,
  R13,
  FP, // frame pointer (rbp analogue)
  SP, // stack pointer (rsp analogue)
  NumRegs,
  NoReg = 0xff,
};

/// Calling convention:
///  - arguments in R0..R5, return value in R0
///  - R0..R7 caller-saved; R8..R13, FP callee-saved
///  - CALL pushes the return address; RET pops it
inline constexpr Reg ArgRegs[6] = {R0, R1, R2, R3, R4, R5};
inline constexpr Reg RetReg = R0;

/// Returns the assembler name of \p R ("r0".."r13", "fp", "sp").
const char *regName(Reg R);

/// Parses a register name; returns NoReg if unrecognized.
Reg parseRegName(const char *Name, unsigned Len);

} // namespace isa
} // namespace teapot

#endif // TEAPOT_ISA_REGISTERS_H
