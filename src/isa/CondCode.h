//===- isa/CondCode.h - Condition codes ---------------------------*- C++ -*-===//
///
/// \file
/// Condition codes evaluated against the FLAGS register (ZF/SF/CF/OF).
/// The trampoline transform in Speculation Shadows relies on negate():
/// the first trampoline jump keeps the original condition but targets the
/// *opposite* destination in the Shadow Copy.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_ISA_CONDCODE_H
#define TEAPOT_ISA_CONDCODE_H

#include <cstdint>

namespace teapot {
namespace isa {

/// FLAGS register bits.
enum FlagBits : uint8_t {
  FlagZ = 1 << 0, // zero
  FlagS = 1 << 1, // sign
  FlagC = 1 << 2, // carry (unsigned borrow)
  FlagO = 1 << 3, // overflow
};

enum class CondCode : uint8_t {
  EQ, // ZF
  NE, // !ZF
  LT, // signed: SF != OF
  LE, // signed: ZF || SF != OF
  GT, // signed: !ZF && SF == OF
  GE, // signed: SF == OF
  B,  // unsigned below: CF
  BE, // unsigned below-or-equal: CF || ZF
  A,  // unsigned above: !CF && !ZF
  AE, // unsigned above-or-equal: !CF
  S,  // negative: SF
  NS, // non-negative: !SF
  NumCondCodes,
};

/// Evaluates \p CC against \p Flags. Inline: this sits on the
/// interpreter's conditional-branch hot path.
inline bool evalCond(CondCode CC, uint8_t F) {
  bool Z = F & FlagZ, S = F & FlagS, C = F & FlagC, O = F & FlagO;
  switch (CC) {
  case CondCode::EQ:
    return Z;
  case CondCode::NE:
    return !Z;
  case CondCode::LT:
    return S != O;
  case CondCode::LE:
    return Z || S != O;
  case CondCode::GT:
    return !Z && S == O;
  case CondCode::GE:
    return S == O;
  case CondCode::B:
    return C;
  case CondCode::BE:
    return C || Z;
  case CondCode::A:
    return !C && !Z;
  case CondCode::AE:
    return !C;
  case CondCode::S:
    return S;
  case CondCode::NS:
    return !S;
  case CondCode::NumCondCodes:
    break;
  }
  return false;
}

/// Returns the logical negation (EQ <-> NE, LT <-> GE, ...).
CondCode negateCond(CondCode CC);

/// Returns the assembler suffix ("eq", "ne", "lt", ...).
const char *condName(CondCode CC);

/// Parses a condition suffix; returns false if unknown.
bool parseCondName(const char *Name, unsigned Len, CondCode &Out);

} // namespace isa
} // namespace teapot

#endif // TEAPOT_ISA_CONDCODE_H
