//===- isa/Opcode.cpp - Opcode metadata table -----------------------------===//

#include "isa/Opcode.h"

#include <cassert>
#include <cstddef>

using namespace teapot;
using namespace teapot::isa;

namespace {

// Field order: Name, Form, MayLoad, MayStore, IsBranch, IsCondBranch,
// IsCall, IsRet, IsIndirect, IsTerminator, SetsFlags, ReadsFlags,
// IsSerializing.
constexpr OpcodeInfo Table[] = {
    /* MOV   */ {"mov", OpForm::RI, false, false, false, false, false, false,
                 false, false, false, false, false},
    /* LOAD  */ {"ld", OpForm::RM, true, false, false, false, false, false,
                 false, false, false, false, false},
    /* LOADS */ {"lds", OpForm::RM, true, false, false, false, false, false,
                 false, false, false, false, false},
    /* STORE */ {"st", OpForm::MS, false, true, false, false, false, false,
                 false, false, false, false, false},
    /* LEA   */ {"lea", OpForm::RM, false, false, false, false, false, false,
                 false, false, false, false, false},
    /* PUSH  */ {"push", OpForm::RorI, false, true, false, false, false, false,
                 false, false, false, false, false},
    /* POP   */ {"pop", OpForm::R, true, false, false, false, false, false,
                 false, false, false, false, false},
    /* ADD   */ {"add", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* SUB   */ {"sub", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* AND   */ {"and", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* OR    */ {"or", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* XOR   */ {"xor", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* SHL   */ {"shl", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* SHR   */ {"shr", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* SAR   */ {"sar", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* MUL   */ {"mul", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* UDIV  */ {"udiv", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* UREM  */ {"urem", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* NOT   */ {"not", OpForm::R, false, false, false, false, false, false,
                 false, false, false, false, false},
    /* NEG   */ {"neg", OpForm::R, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* CMP   */ {"cmp", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* TEST  */ {"test", OpForm::RI, false, false, false, false, false, false,
                 false, false, true, false, false},
    /* SET   */ {"set", OpForm::R, false, false, false, false, false, false,
                 false, false, false, true, false},
    /* CMOV  */ {"cmov", OpForm::RI, false, false, false, false, false, false,
                 false, false, false, true, false},
    /* JMP   */ {"jmp", OpForm::Rel, false, false, true, false, false, false,
                 false, true, false, false, false},
    /* JCC   */ {"j", OpForm::Rel, false, false, true, true, false, false,
                 false, true, false, true, false},
    /* JMPI  */ {"jmpi", OpForm::R, false, false, true, false, false, false,
                 true, true, false, false, false},
    /* CALL  */ {"call", OpForm::Rel, false, true, true, false, true, false,
                 false, false, false, false, false},
    /* CALLI */ {"calli", OpForm::R, false, true, true, false, true, false,
                 true, false, false, false, false},
    /* RET   */ {"ret", OpForm::None, true, false, true, false, false, true,
                 true, true, false, false, false},
    /* NOP   */ {"nop", OpForm::None, false, false, false, false, false, false,
                 false, false, false, false, false},
    /* MARKERNOP */ {"markernop", OpForm::None, false, false, false, false,
                     false, false, false, false, false, false, false},
    /* FENCE */ {"fence", OpForm::None, false, false, false, false, false,
                 false, false, false, false, false, true},
    /* EXT   */ {"ext", OpForm::I, false, false, false, false, false, false,
                 false, false, false, false, false},
    /* HALT  */ {"halt", OpForm::None, false, false, false, false, false,
                 false, false, true, false, false, false},
    /* INTR  */ {"intr", OpForm::Intrinsic, false, false, false, false, false,
                 false, false, false, false, false, false},
};

static_assert(sizeof(Table) / sizeof(Table[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opcode table out of sync with the Opcode enum");

} // namespace

const OpcodeInfo &isa::opcodeInfo(Opcode Op) {
  assert(Op < Opcode::NumOpcodes && "invalid opcode");
  return Table[static_cast<uint8_t>(Op)];
}
