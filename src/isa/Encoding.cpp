//===- isa/Encoding.cpp ---------------------------------------------------===//

#include "isa/Encoding.h"

using namespace teapot;
using namespace teapot::isa;

static unsigned operandLength(const Operand &O) {
  switch (O.Kind) {
  case OperandKind::None:
    return 0;
  case OperandKind::Reg:
    return 1;
  case OperandKind::Imm:
    return 8;
  case OperandKind::Mem:
    return 3 + 8;
  }
  return 0;
}

static void emitLE64(uint64_t V, std::vector<uint8_t> &Out) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (I * 8)));
}

static void emitOperand(const Operand &O, std::vector<uint8_t> &Out) {
  switch (O.Kind) {
  case OperandKind::None:
    break;
  case OperandKind::Reg:
    Out.push_back(O.R);
    break;
  case OperandKind::Imm:
    emitLE64(static_cast<uint64_t>(O.Imm), Out);
    break;
  case OperandKind::Mem:
    Out.push_back(O.M.Base);
    Out.push_back(O.M.Index);
    Out.push_back(O.M.Scale);
    emitLE64(static_cast<uint64_t>(O.M.Disp), Out);
    break;
  }
}

static uint8_t sizeLog2(uint8_t Size) {
  switch (Size) {
  case 1:
    return 0;
  case 2:
    return 1;
  case 4:
    return 2;
  case 8:
    return 3;
  }
  assert(false && "invalid access size");
  return 3;
}

unsigned isa::encodedLength(const Instruction &I) {
  unsigned Len = 3 + operandLength(I.A) + operandLength(I.B);
  if (I.Op == Opcode::INTR)
    Len += 8;
  return Len;
}

unsigned isa::encode(const Instruction &I, std::vector<uint8_t> &Out) {
  size_t Start = Out.size();
  Out.push_back(static_cast<uint8_t>(I.Op));
  if (I.Op == Opcode::INTR)
    Out.push_back(static_cast<uint8_t>(I.Intr));
  else
    Out.push_back(static_cast<uint8_t>(sizeLog2(I.Size) |
                                       (static_cast<uint8_t>(I.CC) << 2)));
  Out.push_back(static_cast<uint8_t>(static_cast<uint8_t>(I.A.Kind) |
                                     (static_cast<uint8_t>(I.B.Kind) << 2)));
  emitOperand(I.A, Out);
  emitOperand(I.B, Out);
  if (I.Op == Opcode::INTR)
    emitLE64(static_cast<uint64_t>(I.IntrPayload), Out);
  unsigned Len = static_cast<unsigned>(Out.size() - Start);
  assert(Len == encodedLength(I) && "length computation out of sync");
  return Len;
}

namespace {

/// Bounds-checked little-endian cursor over the input bytes.
class Cursor {
public:
  Cursor(const uint8_t *Bytes, size_t Size, size_t Offset)
      : Bytes(Bytes), Size(Size), Pos(Offset) {}

  bool take(uint8_t &Out) {
    if (Pos >= Size)
      return false;
    Out = Bytes[Pos++];
    return true;
  }

  bool takeLE64(uint64_t &Out) {
    if (Pos + 8 > Size)
      return false;
    Out = 0;
    for (unsigned I = 0; I != 8; ++I)
      Out |= static_cast<uint64_t>(Bytes[Pos + I]) << (I * 8);
    Pos += 8;
    return true;
  }

  size_t position() const { return Pos; }

private:
  const uint8_t *Bytes;
  size_t Size;
  size_t Pos;
};

} // namespace

static bool decodeOperand(Cursor &C, OperandKind Kind, Operand &Out) {
  Out = Operand();
  Out.Kind = Kind;
  switch (Kind) {
  case OperandKind::None:
    return true;
  case OperandKind::Reg: {
    uint8_t R;
    if (!C.take(R) || R >= NumRegs)
      return false;
    Out.R = static_cast<Reg>(R);
    return true;
  }
  case OperandKind::Imm: {
    uint64_t V;
    if (!C.takeLE64(V))
      return false;
    Out.Imm = static_cast<int64_t>(V);
    return true;
  }
  case OperandKind::Mem: {
    uint8_t Base, Index, Scale;
    uint64_t Disp;
    if (!C.take(Base) || !C.take(Index) || !C.take(Scale) ||
        !C.takeLE64(Disp))
      return false;
    if (Base != NoReg && Base >= NumRegs)
      return false;
    if (Index != NoReg && Index >= NumRegs)
      return false;
    if (Scale != 1 && Scale != 2 && Scale != 4 && Scale != 8)
      return false;
    Out.M.Base = static_cast<Reg>(Base);
    Out.M.Index = static_cast<Reg>(Index);
    Out.M.Scale = Scale;
    Out.M.Disp = static_cast<int64_t>(Disp);
    return true;
  }
  }
  return false;
}

Expected<Decoded> isa::decode(const uint8_t *Bytes, size_t Size,
                              size_t Offset) {
  Cursor C(Bytes, Size, Offset);
  uint8_t OpByte, MetaByte, KindsByte;
  if (!C.take(OpByte) || !C.take(MetaByte) || !C.take(KindsByte))
    return makeError("truncated instruction at offset %zu", Offset);
  if (OpByte >= static_cast<uint8_t>(Opcode::NumOpcodes))
    return makeError("unknown opcode byte 0x%02x at offset %zu", OpByte,
                     Offset);

  Decoded D;
  D.I.Op = static_cast<Opcode>(OpByte);
  if (D.I.Op == Opcode::INTR) {
    if (MetaByte >= static_cast<uint8_t>(IntrinsicID::NumIntrinsics))
      return makeError("unknown intrinsic id 0x%02x at offset %zu", MetaByte,
                       Offset);
    D.I.Intr = static_cast<IntrinsicID>(MetaByte);
  } else {
    uint8_t CCBits = MetaByte >> 2;
    if ((MetaByte & 0x3) > 3 ||
        CCBits >= static_cast<uint8_t>(CondCode::NumCondCodes))
      return makeError("malformed meta byte 0x%02x at offset %zu", MetaByte,
                       Offset);
    D.I.Size = static_cast<uint8_t>(1u << (MetaByte & 0x3));
    D.I.CC = static_cast<CondCode>(CCBits);
  }

  auto KindA = static_cast<OperandKind>(KindsByte & 0x3);
  auto KindB = static_cast<OperandKind>((KindsByte >> 2) & 0x3);
  if (KindsByte >> 4)
    return makeError("malformed operand-kind byte at offset %zu", Offset);
  if (!decodeOperand(C, KindA, D.I.A) || !decodeOperand(C, KindB, D.I.B))
    return makeError("malformed operand at offset %zu", Offset);

  if (D.I.Op == Opcode::INTR) {
    uint64_t Payload;
    if (!C.takeLE64(Payload))
      return makeError("truncated intrinsic payload at offset %zu", Offset);
    D.I.IntrPayload = static_cast<int64_t>(Payload);
  }

  D.Length = static_cast<unsigned>(C.position() - Offset);
  return D;
}
