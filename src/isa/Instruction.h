//===- isa/Instruction.h - Decoded instruction model --------------*- C++ -*-===//
///
/// \file
/// The decoded (in-memory) form of a TISA instruction: opcode plus up to
/// two operands, an access size, a condition code, and — for the INTR
/// opcode — an intrinsic id with an immediate payload.
///
/// Memory operands use x86-style base + index*scale + displacement
/// addressing. PC-relative branch targets are stored as signed offsets
/// relative to the *end* of the instruction (as on x86).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_ISA_INSTRUCTION_H
#define TEAPOT_ISA_INSTRUCTION_H

#include "isa/CondCode.h"
#include "isa/Opcode.h"
#include "isa/Registers.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace teapot {
namespace isa {

/// A base + index*scale + displacement memory reference. Base and Index
/// may each be NoReg.
struct MemRef {
  Reg Base = NoReg;
  Reg Index = NoReg;
  uint8_t Scale = 1; // 1, 2, 4, or 8
  int64_t Disp = 0;

  bool operator==(const MemRef &O) const = default;
};

enum class OperandKind : uint8_t { None, Reg, Imm, Mem };

/// One instruction operand.
struct Operand {
  OperandKind Kind = OperandKind::None;
  Reg R = NoReg;
  int64_t Imm = 0;
  MemRef M;

  static Operand none() { return Operand(); }
  static Operand reg(Reg R) {
    Operand O;
    O.Kind = OperandKind::Reg;
    O.R = R;
    return O;
  }
  static Operand imm(int64_t V) {
    Operand O;
    O.Kind = OperandKind::Imm;
    O.Imm = V;
    return O;
  }
  static Operand mem(MemRef M) {
    Operand O;
    O.Kind = OperandKind::Mem;
    O.M = M;
    return O;
  }
  static Operand mem(Reg Base, int64_t Disp) {
    return mem(MemRef{Base, NoReg, 1, Disp});
  }

  bool isReg() const { return Kind == OperandKind::Reg; }
  bool isImm() const { return Kind == OperandKind::Imm; }
  bool isMem() const { return Kind == OperandKind::Mem; }
  bool isNone() const { return Kind == OperandKind::None; }

  bool operator==(const Operand &O) const = default;
};

/// Intrinsic identifiers for the INTR opcode. These are the entry points
/// into the Teapot runtime library; rewriting passes insert them, the VM
/// dispatches them to a registered IntrinsicHandler.
enum class IntrinsicID : uint8_t {
  None = 0,
  StartSim,        // payload: branch site id. Real Copy, before cond branch.
  StartSimNested,  // payload: branch site id. Shadow Copy, before cond branch.
  RestoreCond,     // payload: #insts executed since previous restore point.
  RestoreUncond,   // payload: reason (RollbackReason).
  AsanCheck,       // mem operand + payload: access size | (isWrite << 8).
  MemLog,          // mem operand + payload: access size.
  TagProp,         // propagate tags for the next non-INTR instruction.
  TagBlock,        // payload: index into the module's tag-program table.
  TaintSink,       // mem operand + payload: size | (isWrite<<8). Kasper sinks.
  TaintBranch,     // Kasper port-contention sink: FLAGS tag before a branch.
  CovGuard,        // payload: guard id. Normal-execution coverage.
  CovSpecGuard,    // payload: guard id. Speculative coverage (lazy buffer).
  EscapeCheckRet,  // Shadow Copy, before RET.
  EscapeCheckTgt,  // reg operand: Shadow Copy, before CALLI/JMPI.
  MarkerCheck,     // Real Copy, after a marker NOP: payload = marker id;
                   // redirects into the Shadow Copy when simulating.
  RAPoison,        // function entry: poison the return address shadow.
  RAUnpoison,      // before RET: unpoison the return address shadow.
  SpecFuzzGuarded, // baseline: payload = packed guarded-op descriptor.
  NumIntrinsics,
};

/// Reasons carried by RestoreUncond.
enum class RollbackReason : uint8_t {
  InstBudget,      // reorder buffer full (conditional restore fired)
  ExternalCall,    // call to an uninstrumented external library
  Serializing,     // FENCE (lfence/cpuid analogue)
  EscapedControl,  // unresolvable indirect target (control flow integrity)
  GuestFault,      // signal handler fired during simulation
  NumReasons,
};

/// Stable lower_snake spelling for stats dumps and JSON scan results.
inline const char *rollbackReasonName(RollbackReason R) {
  switch (R) {
  case RollbackReason::InstBudget:
    return "inst_budget";
  case RollbackReason::ExternalCall:
    return "external_call";
  case RollbackReason::Serializing:
    return "serializing";
  case RollbackReason::EscapedControl:
    return "escaped_control";
  case RollbackReason::GuestFault:
    return "guest_fault";
  case RollbackReason::NumReasons:
    break;
  }
  return "?";
}

/// A fully decoded instruction.
struct Instruction {
  Opcode Op = Opcode::NOP;
  Operand A; // dst / first
  Operand B; // src / second
  uint8_t Size = 8;               // access size for LOAD/LOADS/STORE
  CondCode CC = CondCode::EQ;     // for JCC/SET/CMOV
  IntrinsicID Intr = IntrinsicID::None;
  int64_t IntrPayload = 0;

  Instruction() = default;
  explicit Instruction(Opcode Op) : Op(Op) {}

  const OpcodeInfo &info() const { return opcodeInfo(Op); }

  bool isCondBranch() const { return Op == Opcode::JCC; }
  bool isTerminator() const { return info().IsTerminator; }
  /// True if this instruction reads or writes program memory through an
  /// explicit memory operand (PUSH/POP/CALL/RET touch the stack but have
  /// no memory operand and are handled separately by the passes).
  bool hasMemOperand() const { return A.isMem() || B.isMem(); }
  const MemRef &memRef() const {
    assert(hasMemOperand() && "no memory operand");
    return A.isMem() ? A.M : B.M;
  }

  // --- Convenience constructors used throughout the rewriter. ---
  static Instruction mov(Reg D, Operand S) {
    Instruction I(Opcode::MOV);
    I.A = Operand::reg(D);
    I.B = S;
    return I;
  }
  static Instruction movImm(Reg D, int64_t V) {
    return mov(D, Operand::imm(V));
  }
  static Instruction load(Reg D, MemRef M, uint8_t Size = 8) {
    Instruction I(Opcode::LOAD);
    I.A = Operand::reg(D);
    I.B = Operand::mem(M);
    I.Size = Size;
    return I;
  }
  static Instruction store(MemRef M, Operand S, uint8_t Size = 8) {
    Instruction I(Opcode::STORE);
    I.A = Operand::mem(M);
    I.B = S;
    I.Size = Size;
    return I;
  }
  static Instruction alu(Opcode Op, Reg D, Operand S) {
    Instruction I(Op);
    I.A = Operand::reg(D);
    I.B = S;
    return I;
  }
  static Instruction cmp(Reg A, Operand B) {
    Instruction I(Opcode::CMP);
    I.A = Operand::reg(A);
    I.B = B;
    return I;
  }
  static Instruction jmp(int32_t Rel) {
    Instruction I(Opcode::JMP);
    I.A = Operand::imm(Rel);
    return I;
  }
  static Instruction jcc(CondCode CC, int32_t Rel) {
    Instruction I(Opcode::JCC);
    I.CC = CC;
    I.A = Operand::imm(Rel);
    return I;
  }
  static Instruction call(int32_t Rel) {
    Instruction I(Opcode::CALL);
    I.A = Operand::imm(Rel);
    return I;
  }
  static Instruction ret() { return Instruction(Opcode::RET); }
  static Instruction nop() { return Instruction(Opcode::NOP); }
  static Instruction markerNop() { return Instruction(Opcode::MARKERNOP); }
  static Instruction fence() { return Instruction(Opcode::FENCE); }
  static Instruction halt() { return Instruction(Opcode::HALT); }
  static Instruction ext(int64_t Index) {
    Instruction I(Opcode::EXT);
    I.A = Operand::imm(Index);
    return I;
  }
  static Instruction intrinsic(IntrinsicID ID, int64_t Payload = 0) {
    Instruction I(Opcode::INTR);
    I.Intr = ID;
    I.IntrPayload = Payload;
    return I;
  }
  static Instruction intrinsicMem(IntrinsicID ID, MemRef M,
                                  int64_t Payload = 0) {
    Instruction I = intrinsic(ID, Payload);
    I.A = Operand::mem(M);
    return I;
  }
  static Instruction intrinsicReg(IntrinsicID ID, Reg R,
                                  int64_t Payload = 0) {
    Instruction I = intrinsic(ID, Payload);
    I.A = Operand::reg(R);
    return I;
  }
};

/// Renders \p I as assembler text (without a trailing newline). Branch
/// offsets are printed numerically; the IR-level printer substitutes
/// symbolic labels.
std::string printInst(const Instruction &I);

/// Human-readable intrinsic name for diagnostics.
const char *intrinsicName(IntrinsicID ID);

} // namespace isa
} // namespace teapot

#endif // TEAPOT_ISA_INSTRUCTION_H
