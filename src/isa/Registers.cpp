//===- isa/Registers.cpp --------------------------------------------------===//

#include "isa/Registers.h"

#include <cstring>

using namespace teapot;
using namespace teapot::isa;

static const char *const Names[NumRegs] = {
    "r0", "r1", "r2",  "r3",  "r4",  "r5",  "r6", "r7",
    "r8", "r9", "r10", "r11", "r12", "r13", "fp", "sp"};

const char *isa::regName(Reg R) {
  assert(R < NumRegs && "invalid register");
  return Names[R];
}

Reg isa::parseRegName(const char *Name, unsigned Len) {
  for (unsigned I = 0; I != NumRegs; ++I)
    if (strlen(Names[I]) == Len && memcmp(Names[I], Name, Len) == 0)
      return static_cast<Reg>(I);
  return NoReg;
}
