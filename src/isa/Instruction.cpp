//===- isa/Instruction.cpp - Textual instruction printer ------------------===//

#include "isa/Instruction.h"

#include "support/StringUtils.h"

using namespace teapot;
using namespace teapot::isa;

static std::string printMemRef(const MemRef &M) {
  std::string S = "[";
  bool First = true;
  if (M.Base != NoReg) {
    S += regName(M.Base);
    First = false;
  }
  if (M.Index != NoReg) {
    if (!First)
      S += "+";
    S += regName(M.Index);
    if (M.Scale != 1)
      S += formatString("*%u", M.Scale);
    First = false;
  }
  if (M.Disp != 0 || First) {
    if (!First && M.Disp >= 0)
      S += "+";
    S += formatString("%lld", static_cast<long long>(M.Disp));
  }
  S += "]";
  return S;
}

static std::string printOperand(const Operand &O) {
  switch (O.Kind) {
  case OperandKind::None:
    return "";
  case OperandKind::Reg:
    return regName(O.R);
  case OperandKind::Imm:
    return formatString("%lld", static_cast<long long>(O.Imm));
  case OperandKind::Mem:
    return printMemRef(O.M);
  }
  return "";
}

static const char *const IntrinsicNames[] = {
    "none",          "start_sim",       "start_sim_nested",
    "restore_cond",  "restore_uncond",  "asan_check",
    "memlog",        "tagprop",         "tagblock",
    "taint_sink",    "taint_branch",    "cov_guard",
    "cov_spec",      "escape_ret",      "escape_tgt",
    "marker_check",  "ra_poison",       "ra_unpoison",
    "specfuzz_guarded"};

static_assert(sizeof(IntrinsicNames) / sizeof(IntrinsicNames[0]) ==
                  static_cast<size_t>(IntrinsicID::NumIntrinsics),
              "intrinsic name table out of sync");

const char *isa::intrinsicName(IntrinsicID ID) {
  assert(ID < IntrinsicID::NumIntrinsics && "invalid intrinsic id");
  return IntrinsicNames[static_cast<uint8_t>(ID)];
}

std::string isa::printInst(const Instruction &I) {
  const OpcodeInfo &Info = I.info();
  std::string Mnemonic = Info.Name;

  // Size-suffixed memory ops: ld1/ld2/ld4/ld8, same for lds/st.
  if (I.Op == Opcode::LOAD || I.Op == Opcode::LOADS || I.Op == Opcode::STORE)
    Mnemonic += formatString("%u", I.Size);
  // Condition-suffixed ops: j.eq, set.lt, cmov.ne.
  if (Info.ReadsFlags && I.Op != Opcode::JCC)
    Mnemonic += std::string(".") + condName(I.CC);
  if (I.Op == Opcode::JCC)
    Mnemonic = std::string("j.") + condName(I.CC);

  if (I.Op == Opcode::INTR) {
    std::string S = formatString("intr %s", intrinsicName(I.Intr));
    if (!I.A.isNone())
      S += " " + printOperand(I.A);
    S += formatString(", %lld", static_cast<long long>(I.IntrPayload));
    return S;
  }

  std::string OpA = printOperand(I.A);
  std::string OpB = printOperand(I.B);
  if (OpA.empty())
    return Mnemonic;
  if (OpB.empty())
    return Mnemonic + " " + OpA;
  return Mnemonic + " " + OpA + ", " + OpB;
}
