//===- isa/Opcode.h - TISA opcodes and metadata -------------------*- C++ -*-===//
///
/// \file
/// Opcode enumeration and the static metadata table the disassembler,
/// rewriter, and VM all consult (operand arity, memory behaviour, control
/// flow class, flag effects).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_ISA_OPCODE_H
#define TEAPOT_ISA_OPCODE_H

#include <cstdint>

namespace teapot {
namespace isa {

enum class Opcode : uint8_t {
  // Data movement.
  MOV,    // mov  rd, rs|imm
  LOAD,   // ld{1,2,4,8}  rd, [mem]   (zero-extends)
  LOADS,  // lds{1,2,4,8} rd, [mem]   (sign-extends)
  STORE,  // st{1,2,4,8}  [mem], rs|imm
  LEA,    // lea rd, [mem]
  PUSH,   // push rs|imm
  POP,    // pop rd
  // ALU (rd op= rs|imm). All set ZF/SF; ADD/SUB also set CF/OF.
  ADD,
  SUB,
  AND,
  OR,
  XOR,
  SHL,
  SHR, // logical
  SAR, // arithmetic
  MUL, // low 64 bits
  UDIV,
  UREM,
  NOT, // rd = ~rd
  NEG, // rd = -rd
  // Compare / conditional data movement.
  CMP,  // flags = a - b
  TEST, // flags = a & b
  SET,  // set.cc rd          (rd = cc ? 1 : 0)
  CMOV, // cmov.cc rd, rs     (not speculated by hardware -> V1-safe)
  // Control flow.
  JMP,   // jmp label          (rel32)
  JCC,   // j.cc label         (rel32)
  JMPI,  // jmpi rs            (indirect jump)
  CALL,  // call label         (rel32)
  CALLI, // calli rs           (indirect call)
  RET,
  // Misc.
  NOP,
  MARKERNOP, // the special marker nop compilers never generate (Listing 4)
  FENCE,     // serializing (lfence/cpuid analogue): ends speculation
  EXT,       // ext imm: call external library function by index
  HALT,      // terminate the program; r0 = exit status
  INTR,      // instrumentation intrinsic (added by rewriters only)
  NumOpcodes,
};

/// Coarse operand-list shapes used by the encoder and assembler.
enum class OpForm : uint8_t {
  None,      // ret, nop, fence, halt, markernop
  R,         // pop, not, neg, jmpi, calli, set
  RI,        // mov/alu/cmov/cmp/test: reg, reg|imm
  RM,        // load/loads/lea: reg, mem
  MS,        // store: mem, reg|imm
  I,         // push imm / ext imm / halt? (push also allows R)
  RorI,      // push: reg or imm
  Rel,       // jmp/jcc/call: pc-relative target
  Intrinsic, // INTR: id + optional imm payload + optional mem
};

struct OpcodeInfo {
  const char *Name;
  OpForm Form;
  bool MayLoad;
  bool MayStore;
  bool IsBranch;      // any control transfer (incl. call/ret)
  bool IsCondBranch;  // JCC only
  bool IsCall;        // CALL/CALLI
  bool IsRet;
  bool IsIndirect;    // JMPI/CALLI/RET: target not known statically
  bool IsTerminator;  // ends a basic block
  bool SetsFlags;
  bool ReadsFlags;    // JCC/SET/CMOV
  bool IsSerializing; // FENCE
};

/// Returns the metadata row for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Returns the mnemonic for \p Op.
inline const char *opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

} // namespace isa
} // namespace teapot

#endif // TEAPOT_ISA_OPCODE_H
