//===- isa/Encoding.h - Binary encoding of TISA instructions ------*- C++ -*-===//
///
/// \file
/// Variable-length binary encoding. Layout:
///
///   byte 0      opcode
///   byte 1      meta: size-log2 (bits 0-1) | cond-code << 2
///               (for INTR this byte holds the intrinsic id instead)
///   byte 2      operand kinds: A (bits 0-1) | B << 2
///   operand A   Reg: 1 byte / Imm: 8 bytes LE / Mem: base, index, scale,
///               disp (8 bytes LE)
///   operand B   same
///   payload     INTR only: 8 bytes LE
///
/// Instructions are 3..33 bytes, so the stream is genuinely variable
/// length — a disassembler that starts mid-instruction desynchronizes,
/// which is exactly the property that makes binary-level code discovery a
/// real problem (Section 8 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_ISA_ENCODING_H
#define TEAPOT_ISA_ENCODING_H

#include "isa/Instruction.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace teapot {
namespace isa {

/// Appends the encoding of \p I to \p Out. Returns the encoded length.
unsigned encode(const Instruction &I, std::vector<uint8_t> &Out);

/// Returns the encoded length of \p I without materializing bytes.
unsigned encodedLength(const Instruction &I);

/// Result of decoding one instruction.
struct Decoded {
  Instruction I;
  unsigned Length = 0;
};

/// Decodes one instruction from Bytes[Offset...]. Fails on truncated or
/// malformed input (unknown opcode, bad operand kind, bad register).
Expected<Decoded> decode(const uint8_t *Bytes, size_t Size, size_t Offset);

} // namespace isa
} // namespace teapot

#endif // TEAPOT_ISA_ENCODING_H
