//===- isa/CondCode.cpp ---------------------------------------------------===//

#include "isa/CondCode.h"

#include <cassert>
#include <cstring>

using namespace teapot;
using namespace teapot::isa;

CondCode isa::negateCond(CondCode CC) {
  switch (CC) {
  case CondCode::EQ:
    return CondCode::NE;
  case CondCode::NE:
    return CondCode::EQ;
  case CondCode::LT:
    return CondCode::GE;
  case CondCode::LE:
    return CondCode::GT;
  case CondCode::GT:
    return CondCode::LE;
  case CondCode::GE:
    return CondCode::LT;
  case CondCode::B:
    return CondCode::AE;
  case CondCode::BE:
    return CondCode::A;
  case CondCode::A:
    return CondCode::BE;
  case CondCode::AE:
    return CondCode::B;
  case CondCode::S:
    return CondCode::NS;
  case CondCode::NS:
    return CondCode::S;
  case CondCode::NumCondCodes:
    break;
  }
  assert(false && "invalid condition code");
  return CondCode::EQ;
}

static const char *const CondNames[] = {"eq", "ne", "lt", "le", "gt", "ge",
                                        "b",  "be", "a",  "ae", "s",  "ns"};

const char *isa::condName(CondCode CC) {
  assert(CC < CondCode::NumCondCodes && "invalid condition code");
  return CondNames[static_cast<uint8_t>(CC)];
}

bool isa::parseCondName(const char *Name, unsigned Len, CondCode &Out) {
  for (unsigned I = 0;
       I != static_cast<unsigned>(CondCode::NumCondCodes); ++I) {
    if (strlen(CondNames[I]) == Len && memcmp(CondNames[I], Name, Len) == 0) {
      Out = static_cast<CondCode>(I);
      return true;
    }
  }
  return false;
}
