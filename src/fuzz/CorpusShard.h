//===- fuzz/CorpusShard.h - Per-worker corpus + coverage state ----*- C++ -*-===//
///
/// \file
/// The state one fuzzing worker owns privately: its corpus entries, the
/// bucketized coverage high-water maps that decide novelty, and the
/// havoc mutation engine. Extracted from the original single-threaded
/// `Fuzzer` so that a campaign worker and the plain `Fuzzer` execute the
/// *same* algorithm — every RNG draw in the same order — which is what
/// makes a one-worker campaign byte-identical to the classic fuzzer
/// (see docs/FUZZING.md).
///
/// A shard is deliberately lock-free: workers never touch each other's
/// shards. Cross-worker exchange goes through the campaign's epoch sync
/// (Campaign.h), never through this class.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_FUZZ_CORPUSSHARD_H
#define TEAPOT_FUZZ_CORPUSSHARD_H

#include "support/RNG.h"

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace teapot {
namespace fuzz {

/// AFL-style count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+.
uint8_t bucketize(uint8_t Count);

/// FNV-1a content hash, used to skip re-importing inputs a shard already
/// holds. Never used for novelty (coverage decides that).
uint64_t hashInput(const std::vector<uint8_t> &Input);

/// Knobs the mutation engine reads. A subset of FuzzerOptions /
/// CampaignOptions, so both can hand their settings down.
struct MutationOptions {
  size_t MaxInputLen = 4096;
  /// Mutations applied per picked parent (havoc stacking).
  unsigned MaxStackedMutations = 8;
};

/// One stacked-havoc mutation round: bit flips, arithmetic, interesting
/// values, insert/erase/duplicate, and splices against \p Corpus.
/// Consumes RNG draws in a fixed order — the determinism contract both
/// Fuzzer and Campaign rely on.
std::vector<uint8_t> mutateInput(RNG &Rand,
                                 const std::vector<uint8_t> &Parent,
                                 const std::vector<std::vector<uint8_t>> &Corpus,
                                 const MutationOptions &Opts);

class CorpusShard {
public:
  /// Appends an entry. Duplicate contents are allowed — a re-executed
  /// input can be coverage-novel again when the target's persistent
  /// heuristic state shifted in between.
  void add(std::vector<uint8_t> Entry) {
    Hashes.insert(hashInput(Entry));
    Entries.push_back(std::move(Entry));
  }

  /// True if an identical byte string is already in the shard. Campaign
  /// import filter only; the single-worker path never calls this.
  bool containsHash(uint64_t H) const { return Hashes.count(H) != 0; }

  const std::vector<std::vector<uint8_t>> &entries() const {
    return Entries;
  }
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// Folds one run's guard hit-count maps into the bucketized high-water
  /// maps; returns true if either map shows a new bucket (the input is
  /// coverage-novel for this shard). Normal is merged before spec, and
  /// the edge counters count guards going 0 -> covered — exactly the
  /// original Fuzzer::mergeCoverage.
  bool mergeCoverage(const std::vector<uint8_t> &NormalRun,
                     const std::vector<uint8_t> &SpecRun);

  /// Bucketized high-water maps (index = guard id).
  const std::vector<uint8_t> &normalMap() const { return GlobalNormal; }
  const std::vector<uint8_t> &specMap() const { return GlobalSpec; }

  /// Restores the high-water maps and edge counters from a snapshot
  /// (the campaign resume path; entries are restored through add(),
  /// which rebuilds the hash index as a side effect).
  void restoreCoverage(std::vector<uint8_t> NormalMap,
                       std::vector<uint8_t> SpecMap, size_t NormalEdgeCount,
                       size_t SpecEdgeCount) {
    GlobalNormal = std::move(NormalMap);
    GlobalSpec = std::move(SpecMap);
    NormalEdges = NormalEdgeCount;
    SpecEdges = SpecEdgeCount;
  }

  /// Guards seen covered at least once (0 -> nonzero transitions).
  size_t NormalEdges = 0;
  size_t SpecEdges = 0;

private:
  std::vector<std::vector<uint8_t>> Entries;
  std::unordered_set<uint64_t> Hashes;
  std::vector<uint8_t> GlobalNormal;
  std::vector<uint8_t> GlobalSpec;
};

} // namespace fuzz
} // namespace teapot

#endif // TEAPOT_FUZZ_CORPUSSHARD_H
