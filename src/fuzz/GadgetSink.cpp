//===- fuzz/GadgetSink.cpp ------------------------------------------------===//

#include "fuzz/GadgetSink.h"

using namespace teapot;
using namespace teapot::fuzz;

bool GadgetSink::report(const runtime::GadgetReport &R) {
  bool New;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    New = Seen.emplace(Key(R.Site, R.Chan, R.Ctrl), R).second;
  }
  if (New && OnNewGadget)
    OnNewGadget(R);
  return New;
}

size_t GadgetSink::merge(const runtime::ReportSink &Sink) {
  std::vector<runtime::GadgetReport> Fresh;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const runtime::GadgetReport &R : Sink.unique())
      if (Seen.emplace(Key(R.Site, R.Chan, R.Ctrl), R).second)
        Fresh.push_back(R);
  }
  if (OnNewGadget)
    for (const runtime::GadgetReport &R : Fresh)
      OnNewGadget(R);
  return Fresh.size();
}

std::vector<runtime::GadgetReport> GadgetSink::unique() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<runtime::GadgetReport> Out;
  Out.reserve(Seen.size());
  for (const auto &[K, R] : Seen)
    Out.push_back(R);
  return Out;
}

size_t GadgetSink::uniqueCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Seen.size();
}

void GadgetSink::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Seen.clear();
}

void GadgetSink::restore(const std::vector<runtime::GadgetReport> &Reports) {
  std::lock_guard<std::mutex> Lock(Mu);
  Seen.clear();
  for (const runtime::GadgetReport &R : Reports)
    Seen.emplace(Key(R.Site, R.Chan, R.Ctrl), R);
}

size_t GadgetSink::count(runtime::Controllability Ctrl,
                         runtime::Channel Chan) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &[K, R] : Seen)
    if (R.Ctrl == Ctrl && R.Chan == Chan)
      ++N;
  return N;
}
