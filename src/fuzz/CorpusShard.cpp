//===- fuzz/CorpusShard.cpp -----------------------------------------------===//

#include "fuzz/CorpusShard.h"

#include <algorithm>

using namespace teapot;
using namespace teapot::fuzz;

uint8_t fuzz::bucketize(uint8_t Count) {
  if (Count == 0)
    return 0;
  if (Count <= 3)
    return Count;
  if (Count <= 7)
    return 4;
  if (Count <= 15)
    return 5;
  if (Count <= 31)
    return 6;
  if (Count <= 127)
    return 7;
  return 8;
}

uint64_t fuzz::hashInput(const std::vector<uint8_t> &Input) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (uint8_t B : Input) {
    H ^= B;
    H *= 0x100000001b3ULL;
  }
  // Fold in the length so {0} and {0,0} differ even though FNV folds
  // zero bytes weakly.
  H ^= Input.size();
  return H;
}

bool CorpusShard::mergeCoverage(const std::vector<uint8_t> &NormalRun,
                                const std::vector<uint8_t> &SpecRun) {
  auto Merge = [](std::vector<uint8_t> &Global,
                  const std::vector<uint8_t> &Run, size_t &EdgeStat) {
    if (Global.size() < Run.size())
      Global.resize(Run.size(), 0);
    bool New = false;
    for (size_t I = 0; I != Run.size(); ++I) {
      uint8_t B = bucketize(Run[I]);
      if (B > Global[I]) {
        if (Global[I] == 0)
          ++EdgeStat;
        Global[I] = B;
        New = true;
      }
    }
    return New;
  };
  bool NewNormal = Merge(GlobalNormal, NormalRun, NormalEdges);
  bool NewSpec = Merge(GlobalSpec, SpecRun, SpecEdges);
  return NewNormal || NewSpec;
}

std::vector<uint8_t>
fuzz::mutateInput(RNG &Rand, const std::vector<uint8_t> &Parent,
                  const std::vector<std::vector<uint8_t>> &Corpus,
                  const MutationOptions &Opts) {
  std::vector<uint8_t> Input = Parent;
  unsigned Stack = 1 + static_cast<unsigned>(
                           Rand.below(Opts.MaxStackedMutations));
  static const uint64_t Interesting[] = {
      0,    1,   2,        7,         8,          9,    10,  15,
      16,   31,  32,       63,        64,         100,  127, 128,
      255,  256, 1023,     1024,      4096,       65535,
      0x7fffffffffffffffULL, 0xffffffffffffffffULL};
  for (unsigned S = 0; S != Stack; ++S) {
    if (Input.empty()) {
      Input.push_back(static_cast<uint8_t>(Rand.next()));
      continue;
    }
    switch (Rand.below(8)) {
    case 0: { // bit flip
      size_t Bit = Rand.below(Input.size() * 8);
      Input[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
      break;
    }
    case 1: // random byte
      Input[Rand.below(Input.size())] = static_cast<uint8_t>(Rand.next());
      break;
    case 2: { // arithmetic +-1..35 on a byte
      size_t I = Rand.below(Input.size());
      int Delta = static_cast<int>(Rand.range(1, 35));
      Input[I] = static_cast<uint8_t>(Input[I] +
                                      (Rand.chance(1, 2) ? Delta : -Delta));
      break;
    }
    case 3: { // interesting value, 1/2/4/8 bytes
      unsigned Width = 1u << Rand.below(4);
      if (Input.size() < Width)
        break;
      size_t Off = Rand.below(Input.size() - Width + 1);
      uint64_t V = Interesting[Rand.below(std::size(Interesting))];
      for (unsigned I = 0; I != Width; ++I)
        Input[Off + I] = static_cast<uint8_t>(V >> (I * 8));
      break;
    }
    case 4: { // insert a random byte
      if (Input.size() >= Opts.MaxInputLen)
        break;
      Input.insert(Input.begin() +
                       static_cast<long>(Rand.below(Input.size() + 1)),
                   static_cast<uint8_t>(Rand.next()));
      break;
    }
    case 5: { // erase a span
      if (Input.size() < 2)
        break;
      size_t At = Rand.below(Input.size());
      size_t Len = 1 + Rand.below(std::min<size_t>(8, Input.size() - At));
      Input.erase(Input.begin() + static_cast<long>(At),
                  Input.begin() + static_cast<long>(At + Len));
      break;
    }
    case 6: { // duplicate a span (helps grow structured inputs)
      if (Input.empty() || Input.size() >= Opts.MaxInputLen)
        break;
      size_t At = Rand.below(Input.size());
      size_t Len = 1 + Rand.below(std::min<size_t>(16, Input.size() - At));
      std::vector<uint8_t> Span(Input.begin() + static_cast<long>(At),
                                Input.begin() + static_cast<long>(At + Len));
      Input.insert(Input.begin() + static_cast<long>(At), Span.begin(),
                   Span.end());
      break;
    }
    case 7: { // splice with another corpus entry
      if (Corpus.size() < 2)
        break;
      const auto &Other = Corpus[Rand.below(Corpus.size())];
      if (Other.empty())
        break;
      size_t Cut = Rand.below(Input.size());
      size_t OtherCut = Rand.below(Other.size());
      Input.resize(Cut);
      Input.insert(Input.end(), Other.begin() + static_cast<long>(OtherCut),
                   Other.end());
      break;
    }
    }
    if (Input.size() > Opts.MaxInputLen)
      Input.resize(Opts.MaxInputLen);
  }
  return Input;
}
