//===- fuzz/Fuzzer.h - Coverage-guided mutational fuzzer ----------*- C++ -*-===//
///
/// \file
/// The dynamic-fuzzing half of the Teapot workflow (Figure 3) — a
/// honggfuzz-style coverage-guided mutational fuzzer. Instrumented
/// binaries expose SanitizerCoverage-style guard maps for *two* coverage
/// modes (normal execution and speculation simulation, Section 6.3); the
/// fuzzer treats a new bucketized count in either map as progress.
///
/// Everything is deterministic under a seed, and campaigns are budgeted
/// in executions rather than wall time so experiments reproduce exactly.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_FUZZ_FUZZER_H
#define TEAPOT_FUZZ_FUZZER_H

#include "support/RNG.h"

#include <cstdint>
#include <string>
#include <vector>

namespace teapot {
namespace fuzz {

/// What the fuzzer drives. One target wraps one instrumented binary in a
/// VM with its runtime attached (see workloads/Harness.h).
class FuzzTarget {
public:
  virtual ~FuzzTarget() = default;

  /// Runs the program on \p Input from a clean state.
  virtual void execute(const std::vector<uint8_t> &Input) = 0;

  /// Guard hit-count maps, valid after execute(). Either may be empty.
  virtual const std::vector<uint8_t> &normalCoverage() const = 0;
  virtual const std::vector<uint8_t> &specCoverage() const = 0;

  /// Unique gadgets discovered so far (for progress reporting).
  virtual size_t uniqueGadgets() const { return 0; }
};

struct FuzzerOptions {
  uint64_t Seed = 1;
  uint64_t MaxIterations = 20000;
  size_t MaxInputLen = 4096;
  /// Mutations applied per picked parent (havoc stacking).
  unsigned MaxStackedMutations = 8;
};

struct FuzzerStats {
  uint64_t Executions = 0;
  uint64_t CorpusAdds = 0;
  size_t NormalEdges = 0; // bucketized-new normal guards seen
  size_t SpecEdges = 0;
};

/// AFL-style count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+.
uint8_t bucketize(uint8_t Count);

class Fuzzer {
public:
  Fuzzer(FuzzTarget &Target, FuzzerOptions Opts);

  /// Adds an initial seed input.
  void addSeed(std::vector<uint8_t> Seed);

  /// Runs the campaign for Opts.MaxIterations executions.
  FuzzerStats run();

  const std::vector<std::vector<uint8_t>> &corpus() const { return Corpus; }

private:
  bool mergeCoverage(); // true if either map shows new buckets
  std::vector<uint8_t> mutate(const std::vector<uint8_t> &Parent);

  FuzzTarget &Target;
  FuzzerOptions Opts;
  RNG Rand;
  std::vector<std::vector<uint8_t>> Corpus;
  std::vector<uint8_t> GlobalNormal; // bucketized high-water marks
  std::vector<uint8_t> GlobalSpec;
  FuzzerStats Stats;
};

} // namespace fuzz
} // namespace teapot

#endif // TEAPOT_FUZZ_FUZZER_H
