//===- fuzz/Fuzzer.h - Coverage-guided mutational fuzzer ----------*- C++ -*-===//
///
/// \file
/// The dynamic-fuzzing half of the Teapot workflow (Figure 3) — a
/// honggfuzz-style coverage-guided mutational fuzzer. Instrumented
/// binaries expose SanitizerCoverage-style guard maps for *two* coverage
/// modes (normal execution and speculation simulation, Section 6.3); the
/// fuzzer treats a new bucketized count in either map as progress.
///
/// Everything is deterministic under a seed, and campaigns are budgeted
/// in executions rather than wall time so experiments reproduce exactly.
///
/// This class drives exactly one target on one thread; its corpus and
/// mutation machinery live in CorpusShard.h so the multi-worker
/// Campaign (Campaign.h) runs the identical algorithm per worker.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_FUZZ_FUZZER_H
#define TEAPOT_FUZZ_FUZZER_H

#include "fuzz/CorpusShard.h"
#include "runtime/Report.h"
#include "support/Json.h"
#include "support/RNG.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace teapot {
namespace fuzz {

/// What the fuzzer drives. One target wraps one instrumented binary in a
/// VM with its runtime attached (see workloads/Harness.h).
class FuzzTarget {
public:
  virtual ~FuzzTarget() = default;

  /// Runs the program on \p Input from a clean state.
  virtual void execute(const std::vector<uint8_t> &Input) = 0;

  /// Guard hit-count maps, valid after execute(). Either may be empty.
  virtual const std::vector<uint8_t> &normalCoverage() const = 0;
  virtual const std::vector<uint8_t> &specCoverage() const = 0;

  /// The target's deduplicating gadget collector, or null for targets
  /// without a detector (e.g. the native-execution baseline). Pure
  /// virtual on purpose: every target must *declare* its gadget
  /// accounting — the old `uniqueGadgets() { return 0; }` default let a
  /// detector-bearing target silently under-report by forgetting the
  /// override. Campaigns also merge these sinks into the campaign-wide
  /// GadgetSink.
  virtual const runtime::ReportSink *reports() const = 0;

  /// Unique gadgets discovered so far (for progress reporting). Derived
  /// from reports(), not overridable.
  size_t uniqueGadgets() const {
    const runtime::ReportSink *S = reports();
    return S ? S->unique().size() : 0;
  }

  /// Total guest instructions executed across every execute() call, for
  /// throughput reporting (the per-run VM counter resets per execution;
  /// targets accumulate it). Targets without a VM may report 0.
  virtual uint64_t executedInsts() const { return 0; }

  /// Robustness counters accumulated across executions (and across
  /// save/resume — targets persist the bases). All deterministic under
  /// the same options + fault plan, so they participate in the campaign
  /// byte-identity guarantee like any other stat.
  struct RobustnessStats {
    /// Times the VM abandoned the JIT tier mid-run (broken or
    /// thrashing arena) and finished through the block engine.
    uint64_t Degradations = 0;
    /// Executions the runaway-rollback watchdog cut short.
    uint64_t WatchdogTrips = 0;
    /// Faults the target's injector fired, across all sites.
    uint64_t FaultsInjected = 0;
    bool operator==(const RobustnessStats &O) const = default;
  };
  virtual RobustnessStats robustnessStats() const { return {}; }

  /// Hot-path accounting accumulated across executions (and across
  /// save/resume): where the VM's memory system and intrinsic dispatch
  /// spent their time. Purely diagnostic — the totals legitimately
  /// differ between execution engines (the interpreter never takes an
  /// inline fast path) — but each is deterministic for a fixed engine,
  /// so campaigns may still compare them run-to-run.
  struct HotPathStats {
    /// Split-TLB hits against the guest/user bank.
    uint64_t TlbGuestHits = 0;
    /// Split-TLB hits against the runtime/shadow bank.
    uint64_t TlbRuntimeHits = 0;
    /// Page-table walks (TLB misses and write materializations).
    uint64_t TlbSlowPathCalls = 0;
    /// Intrinsics retired inline by the block/JIT no-op fast path.
    uint64_t IntrinsicFastPathHits = 0;
    bool operator==(const HotPathStats &O) const = default;
  };
  virtual HotPathStats hotPathStats() const { return {}; }

  /// Serializes whatever state the target carries *across* executions
  /// that influences later executions or reporting — for the
  /// instrumented target: the runtime's nesting-heuristic counters,
  /// accumulated coverage maps, and report sink. The campaign snapshot
  /// (teapot.corpus.v1) embeds this per worker so a resumed campaign's
  /// freshly built targets behave byte-identically to the originals.
  /// Targets with no such state return null (the default).
  virtual json::Value saveState() const { return json::Value(); }

  /// Restores a saveState() value into a freshly built target. The
  /// default accepts only null (a stateless target's save).
  virtual Error loadState(const json::Value &V) {
    if (!V.isNull())
      return makeError("fuzz target: this target kind is stateless but "
                       "the snapshot carries target state");
    return Error::success();
  }
};

/// Builds one isolated target per call. A Campaign calls it once per
/// worker; each target must be independently executable (own VM/runtime
/// state) so workers never share mutable state. workloads/Harness.h
/// provides factories for the standard target kinds.
using TargetFactory = std::function<std::unique_ptr<FuzzTarget>()>;

struct FuzzerOptions {
  uint64_t Seed = 1;
  uint64_t MaxIterations = 20000;
  size_t MaxInputLen = 4096;
  /// Mutations applied per picked parent (havoc stacking).
  unsigned MaxStackedMutations = 8;
};

struct FuzzerStats {
  uint64_t Executions = 0;
  uint64_t CorpusAdds = 0;
  size_t NormalEdges = 0; // bucketized-new normal guards seen
  size_t SpecEdges = 0;
  /// Guest instructions executed (FuzzTarget::executedInsts at the end
  /// of the run) — execs/sec times this/Executions is the true
  /// interpreter throughput.
  uint64_t GuestInsts = 0;
};

class Fuzzer {
public:
  Fuzzer(FuzzTarget &Target, FuzzerOptions Opts);

  /// Adds an initial seed input.
  void addSeed(std::vector<uint8_t> Seed);

  /// Runs the campaign for Opts.MaxIterations executions.
  FuzzerStats run();

  const std::vector<std::vector<uint8_t>> &corpus() const {
    return Shard.entries();
  }

private:
  FuzzTarget &Target;
  FuzzerOptions Opts;
  RNG Rand;
  CorpusShard Shard;
  FuzzerStats Stats;
};

} // namespace fuzz
} // namespace teapot

#endif // TEAPOT_FUZZ_FUZZER_H
