//===- fuzz/Campaign.h - Parallel fuzzing campaigns ---------------*- C++ -*-===//
///
/// \file
/// The multi-worker fuzzing campaign: N worker threads, each owning an
/// isolated FuzzTarget (own VM, own runtime), a private CorpusShard, and
/// a per-worker RNG stream split deterministically from the campaign
/// seed. Workers fuzz independently and exchange coverage-novel inputs
/// through a shared corpus at *epoch barriers* — deterministic points in
/// per-worker execution counts — so the campaign's corpus and gadget set
/// depend only on (seed, budget, workers, sync interval), never on how
/// the OS scheduled the threads. See docs/FUZZING.md for the protocol
/// and its determinism proof sketch.
///
/// The scheduler divides the execution budget across workers such that
/// `Workers == 1` degenerates to exactly the single-threaded Fuzzer:
/// same RNG stream, same algorithm (CorpusShard.h), byte-identical
/// corpus and gadget set under the same seed and budget.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_FUZZ_CAMPAIGN_H
#define TEAPOT_FUZZ_CAMPAIGN_H

#include "fuzz/Fuzzer.h"
#include "fuzz/GadgetSink.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace teapot {
namespace fuzz {

struct CampaignOptions {
  uint64_t Seed = 1;
  /// Execution budget summed over all workers (imports included), the
  /// analogue of FuzzerOptions::MaxIterations.
  uint64_t TotalIterations = 20000;
  unsigned Workers = 1;
  /// Per-worker executions between corpus syncs (one epoch). Smaller
  /// values propagate discoveries faster but synchronize more often.
  uint64_t SyncInterval = 512;
  size_t MaxInputLen = 4096;
  /// Mutations applied per picked parent (havoc stacking).
  unsigned MaxStackedMutations = 8;
  /// Stop after this many campaign epochs even if budget remains (0 =
  /// run to budget exhaustion). The count is absolute — it includes
  /// epochs executed before a snapshot was taken — so "run to epoch k,
  /// save" composes with "resume, run to epoch m".
  uint64_t MaxEpochs = 0;
};

struct WorkerStats {
  uint64_t Executions = 0;
  /// Locally coverage-novel inputs this worker added (and published).
  uint64_t CorpusAdds = 0;
  /// Inputs adopted from other workers' publications.
  uint64_t Imports = 0;
  size_t ShardSize = 0;
  size_t NormalEdges = 0;
  size_t SpecEdges = 0;
  /// Guest instructions this worker's target executed in total.
  uint64_t GuestInsts = 0;
  /// Executions whose execute() threw; the inputs sit in quarantine.
  uint64_t Quarantined = 0;

  bool operator==(const WorkerStats &O) const = default;
};

/// One contained crash: everything needed to replay it. An exception
/// escaping FuzzTarget::execute no longer kills the campaign — the
/// input lands here (charged against the budget, no coverage merged)
/// and the epoch barrier converges normally. Records are deterministic
/// under the same options + fault plan and are part of the saved
/// campaign state.
struct QuarantineRecord {
  std::vector<uint8_t> Input;
  unsigned Worker = 0;
  /// Epoch the crash happened in (the barrier it was collected at is
  /// Epoch + 1).
  uint64_t Epoch = 0;
  /// The worker-local execution count after charging this execution —
  /// i.e. this was the worker's ExecIndex-th execution (1-based).
  uint64_t ExecIndex = 0;
  /// Deterministic fault signature (the exception's what()).
  std::string Signature;
  /// Fault site for injected faults (TeapotError::site()), else "".
  std::string Site;
  /// The worker's RNG stream position right after the crash.
  uint64_t RngState = 0;

  bool operator==(const QuarantineRecord &O) const = default;
};

struct CampaignStats {
  uint64_t Executions = 0;
  uint64_t CorpusAdds = 0;
  uint64_t Imports = 0;
  uint64_t Epochs = 0;
  /// Guards covered in the campaign-merged maps (union over workers).
  size_t NormalEdges = 0;
  size_t SpecEdges = 0;
  size_t UniqueGadgets = 0;
  /// Guest instructions summed over all workers — the numerator of the
  /// campaign's insts/sec throughput figure.
  uint64_t GuestInsts = 0;
  // Robustness counters, summed over workers (docs/ROBUSTNESS.md).
  uint64_t Quarantined = 0;
  uint64_t Degradations = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t FaultsInjected = 0;
  // Hot-path accounting, summed over workers (FuzzTarget::HotPathStats):
  // split-TLB traffic and inline intrinsic retires. Deterministic for a
  // fixed engine, but engines legitimately differ from one another.
  uint64_t TlbGuestHits = 0;
  uint64_t TlbRuntimeHits = 0;
  uint64_t TlbSlowPathCalls = 0;
  uint64_t IntrinsicFastPathHits = 0;
  std::vector<WorkerStats> PerWorker;

  bool operator==(const CampaignStats &O) const = default;
};

/// Epoch-granular progress snapshot handed to Campaign::OnEpoch.
struct CampaignProgress {
  uint64_t Epoch = 0;
  uint64_t Executions = 0;   // campaign-wide so far
  size_t CorpusSize = 0;     // merged corpus entries so far
  size_t NormalEdges = 0;    // union coverage so far
  size_t SpecEdges = 0;
  size_t UniqueGadgets = 0;
  size_t Quarantined = 0;    // contained crashes so far
};

class Campaign {
public:
  Campaign(TargetFactory Factory, CampaignOptions Opts);
  ~Campaign();

  /// Adds an initial seed input (given to every worker).
  void addSeed(std::vector<uint8_t> Seed);

  /// Runs the campaign. Each call normally starts afresh: new targets
  /// from the factory, empty corpus/coverage/gadget state, same seeds —
  /// so a repeated run() reproduces the first one exactly. loadState()
  /// arms exactly the *next* run() to instead *continue* the restored
  /// campaign (same workers, corpus, coverage, gadgets) until the
  /// budget/epoch limits are reached; calls after that start afresh
  /// again. The hard guarantee: a campaign saved at any epoch barrier
  /// and resumed produces corpora, coverage, gadget sets, and
  /// per-worker stats byte-identical to the uninterrupted run.
  CampaignStats run();

  /// Asks run() to return at the next epoch barrier (callable from
  /// OnEpoch or from another thread). State stays live, so saveState()
  /// can snapshot the interrupted campaign.
  void requestStop() { StopRequested.store(true, std::memory_order_relaxed); }

  /// Queues externally sourced inputs — cross-campaign federation, the
  /// ScanService corpus-exchange protocol — into every worker's import
  /// inbox. Call between runs (typically right after loadState()), from
  /// the main thread only: the next run() then treats the entries
  /// exactly like cross-worker publications — executed on the receiving
  /// worker's target (its coverage maps decide novelty), charged
  /// against its budget, adopted into its shard only when
  /// coverage-novel, and byte-duplicates skipped for free via the shard
  /// hash set. Inputs longer than MaxInputLen are clamped like
  /// addSeed(). Entries a worker never gets budget to consume persist
  /// in its snapshot inbox, so federated inputs are never silently
  /// dropped across save/resume cycles. No-op before the campaign has
  /// workers (first run() or loadState()).
  void enqueueImports(const std::vector<std::vector<uint8_t>> &Inputs);

  // --- Persistence (teapot.corpus.v1) --------------------------------------
  /// Schema tag stamped into snapshots.
  static constexpr const char *SnapshotSchemaName = "teapot.corpus.v1";

  /// Serializes the complete campaign state — options, epoch counter,
  /// merged corpus, union coverage, campaign-unique gadgets, and per
  /// worker: RNG stream position, executed/budget counters, shard
  /// (entries + high-water maps), pending inbox, per-target persistent
  /// state. Valid once run() has returned (finished or stopped); every
  /// saved quantity is epoch-barrier-consistent.
  json::Value saveState() const;

  /// Restores a saveState() snapshot into this campaign: workers are
  /// rebuilt through the target factory and their cross-run target
  /// state reloaded. The snapshot's options must match this campaign's
  /// (seed, workers, sync interval, input-length and mutation knobs);
  /// TotalIterations may be raised to extend a finished campaign.
  /// After a successful load the next run() continues the campaign.
  Error loadState(const json::Value &V);

  /// The merged campaign corpus: seeds first, then every published
  /// (coverage-novel) input in deterministic (epoch, worker, sequence)
  /// order. For Workers == 1 this is exactly Fuzzer::corpus().
  const std::vector<std::vector<uint8_t>> &corpus() const {
    return MergedCorpus;
  }

  /// Campaign-unique gadget reports (cross-worker deduped). The
  /// non-const overload lets a driver hook gadgets().OnNewGadget before
  /// run() for a live discovery feed.
  const GadgetSink &gadgets() const { return Gadgets; }
  GadgetSink &gadgets() { return Gadgets; }

  /// Every contained crash so far, in deterministic (epoch, worker,
  /// execution) order. Saved and restored with the campaign.
  const std::vector<QuarantineRecord> &quarantine() const {
    return Quarantine;
  }

  /// Invoked on the campaign thread after every epoch barrier.
  std::function<void(const CampaignProgress &)> OnEpoch;

  /// The deterministic seed split: worker 0 inherits the campaign seed
  /// itself (the Workers == 1 identity), workers I > 0 get the I-th
  /// output of a SplitMix64 stream seeded with it.
  static uint64_t workerSeed(uint64_t CampaignSeed, unsigned WorkerIndex);

private:
  struct Worker;

  void runWorkerEpoch(Worker &W);
  void syncEpoch(uint64_t Epoch);

  TargetFactory Factory;
  CampaignOptions Opts;
  std::vector<std::vector<uint8_t>> Seeds;
  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::vector<uint8_t>> MergedCorpus;
  std::vector<uint8_t> MergedNormal; // bucketized union maps
  std::vector<uint8_t> MergedSpec;
  GadgetSink Gadgets;
  std::vector<QuarantineRecord> Quarantine;
  /// Epoch barrier the campaign currently rests at (run() resumes the
  /// epoch numbering from here after loadState()).
  uint64_t CurEpoch = 0;
  /// Set by loadState(): the next run() continues instead of resetting.
  bool Resumed = false;
  std::atomic<bool> StopRequested{false};
};

} // namespace fuzz
} // namespace teapot

#endif // TEAPOT_FUZZ_CAMPAIGN_H
