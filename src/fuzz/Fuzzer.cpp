//===- fuzz/Fuzzer.cpp ----------------------------------------------------===//

#include "fuzz/Fuzzer.h"

using namespace teapot;
using namespace teapot::fuzz;

Fuzzer::Fuzzer(FuzzTarget &Target, FuzzerOptions Opts)
    : Target(Target), Opts(Opts), Rand(Opts.Seed) {}

void Fuzzer::addSeed(std::vector<uint8_t> Seed) {
  if (Seed.size() > Opts.MaxInputLen)
    Seed.resize(Opts.MaxInputLen);
  Shard.add(std::move(Seed));
}

FuzzerStats Fuzzer::run() {
  if (Shard.empty())
    Shard.add({});

  MutationOptions MO;
  MO.MaxInputLen = Opts.MaxInputLen;
  MO.MaxStackedMutations = Opts.MaxStackedMutations;

  // Warm the coverage map with the seeds.
  for (const auto &Seed : Shard.entries()) {
    Target.execute(Seed);
    ++Stats.Executions;
    Shard.mergeCoverage(Target.normalCoverage(), Target.specCoverage());
  }

  while (Stats.Executions < Opts.MaxIterations) {
    const auto &Parent = Shard.entries()[Rand.below(Shard.size())];
    std::vector<uint8_t> Input =
        mutateInput(Rand, Parent, Shard.entries(), MO);
    Target.execute(Input);
    ++Stats.Executions;
    if (Shard.mergeCoverage(Target.normalCoverage(),
                            Target.specCoverage())) {
      Shard.add(std::move(Input));
      ++Stats.CorpusAdds;
    }
  }
  Stats.NormalEdges = Shard.NormalEdges;
  Stats.SpecEdges = Shard.SpecEdges;
  Stats.GuestInsts = Target.executedInsts();
  return Stats;
}
