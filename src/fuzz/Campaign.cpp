//===- fuzz/Campaign.cpp --------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <algorithm>
#include <thread>

using namespace teapot;
using namespace teapot::fuzz;

namespace {

void mergeMax(std::vector<uint8_t> &Dst, const std::vector<uint8_t> &Src) {
  if (Dst.size() < Src.size())
    Dst.resize(Src.size(), 0);
  for (size_t I = 0; I != Src.size(); ++I)
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

size_t countCovered(const std::vector<uint8_t> &Map) {
  size_t N = 0;
  for (uint8_t B : Map)
    N += B != 0;
  return N;
}

} // namespace

/// One worker: everything here is private to its thread during an epoch;
/// the campaign thread only touches it between epochs (after join).
struct Campaign::Worker {
  unsigned Index = 0;
  RNG Rand{0};
  std::unique_ptr<FuzzTarget> Target;
  CorpusShard Shard;
  /// This worker's slice of CampaignOptions::TotalIterations.
  uint64_t Budget = 0;
  uint64_t Executed = 0;
  WorkerStats Stats;
  /// Inputs other workers published, pending adoption. A cursor instead
  /// of erase-from-front keeps publication order stable and cheap.
  std::vector<std::vector<uint8_t>> Inbox;
  size_t InboxCursor = 0;
  /// Locally-novel inputs found this epoch, collected by syncEpoch().
  std::vector<std::vector<uint8_t>> Outbox;
  bool Seeded = false;

  bool finished() const { return Seeded && Executed >= Budget; }
};

uint64_t Campaign::workerSeed(uint64_t CampaignSeed, unsigned WorkerIndex) {
  if (WorkerIndex == 0)
    return CampaignSeed; // Workers == 1 reproduces the Fuzzer stream.
  RNG Splitter(CampaignSeed);
  uint64_t S = 0;
  for (unsigned I = 0; I != WorkerIndex; ++I)
    S = Splitter.next();
  return S;
}

Campaign::Campaign(TargetFactory Factory, CampaignOptions Opts)
    : Factory(std::move(Factory)), Opts(Opts) {
  if (this->Opts.Workers == 0)
    this->Opts.Workers = 1;
  if (this->Opts.SyncInterval == 0)
    this->Opts.SyncInterval = 1;
}

Campaign::~Campaign() = default;

void Campaign::addSeed(std::vector<uint8_t> Seed) {
  if (Seed.size() > Opts.MaxInputLen)
    Seed.resize(Opts.MaxInputLen);
  Seeds.push_back(std::move(Seed));
}

void Campaign::runWorkerEpoch(Worker &W) {
  MutationOptions MO;
  MO.MaxInputLen = Opts.MaxInputLen;
  MO.MaxStackedMutations = Opts.MaxStackedMutations;

  uint64_t EpochExecs = 0;
  auto ExecAndMerge = [&](const std::vector<uint8_t> &In) {
    W.Target->execute(In);
    ++W.Executed;
    ++W.Stats.Executions;
    ++EpochExecs;
    return W.Shard.mergeCoverage(W.Target->normalCoverage(),
                                 W.Target->specCoverage());
  };

  if (!W.Seeded) {
    // Mirror Fuzzer::run: every seed executes up front, even past the
    // budget, to warm the coverage maps.
    for (const auto &Seed : W.Shard.entries())
      ExecAndMerge(Seed);
    W.Seeded = true;
  }

  // Adopt what other workers published. Imports execute on *this*
  // worker's target (its coverage maps decide novelty) and count
  // against its budget like any other execution.
  while (W.InboxCursor != W.Inbox.size() && W.Executed < W.Budget &&
         EpochExecs < Opts.SyncInterval) {
    const std::vector<uint8_t> &In = W.Inbox[W.InboxCursor];
    if (W.Shard.containsHash(hashInput(In))) {
      ++W.InboxCursor; // identical bytes already in the shard: free skip
      continue;
    }
    if (ExecAndMerge(In)) {
      W.Shard.add(In); // adopted, but not republished
      ++W.Stats.Imports;
    }
    ++W.InboxCursor;
  }

  // Fuzz the private shard — the Fuzzer::run loop, verbatim.
  while (W.Executed < W.Budget && EpochExecs < Opts.SyncInterval) {
    const auto &Parent = W.Shard.entries()[W.Rand.below(W.Shard.size())];
    std::vector<uint8_t> Input =
        mutateInput(W.Rand, Parent, W.Shard.entries(), MO);
    if (ExecAndMerge(Input)) {
      W.Outbox.push_back(Input);
      W.Shard.add(std::move(Input));
      ++W.Stats.CorpusAdds;
    }
  }
}

void Campaign::syncEpoch(uint64_t Epoch) {
  (void)Epoch;
  // Drop consumed inbox prefixes (workers are joined; main thread only).
  for (auto &WP : Workers) {
    WP->Inbox.erase(WP->Inbox.begin(),
                    WP->Inbox.begin() +
                        static_cast<long>(WP->InboxCursor));
    WP->InboxCursor = 0;
  }
  // Publish every worker's epoch discoveries in worker-index order: into
  // the merged corpus, and into every *other* still-running worker's
  // inbox (a finished worker has no budget left to execute imports, so
  // queueing for it would only pin dead copies). Main thread only —
  // this ordering is what keeps the campaign independent of thread
  // scheduling.
  for (auto &WP : Workers) {
    Worker &W = *WP;
    for (std::vector<uint8_t> &Input : W.Outbox) {
      for (auto &Other : Workers)
        if (Other->Index != W.Index && !Other->finished())
          Other->Inbox.push_back(Input);
      MergedCorpus.push_back(std::move(Input));
    }
    W.Outbox.clear();
  }
  // Fold per-worker gadget sinks into the campaign-unique set (worker
  // order, so duplicate gadgets resolve to the lowest-index reporter).
  for (auto &WP : Workers)
    if (const runtime::ReportSink *S = WP->Target->reports())
      Gadgets.merge(*S);
  // Union coverage, for progress reporting.
  for (auto &WP : Workers) {
    mergeMax(MergedNormal, WP->Shard.normalMap());
    mergeMax(MergedSpec, WP->Shard.specMap());
  }
}

CampaignStats Campaign::run() {
  if (Seeds.empty())
    Seeds.push_back({}); // like Fuzzer: start from the empty input

  // Fresh campaign state on every call, so run() is re-runnable (and
  // reproduces itself exactly — targets are rebuilt by the factory).
  MergedNormal.clear();
  MergedSpec.clear();
  Gadgets.clear();
  Workers.clear();
  for (unsigned I = 0; I != Opts.Workers; ++I) {
    auto W = std::make_unique<Worker>();
    W->Index = I;
    W->Rand = RNG(workerSeed(Opts.Seed, I));
    W->Target = Factory();
    W->Budget = Opts.TotalIterations / Opts.Workers +
                (I < Opts.TotalIterations % Opts.Workers ? 1 : 0);
    for (const auto &Seed : Seeds)
      W->Shard.add(Seed);
    Workers.push_back(std::move(W));
  }
  MergedCorpus = Seeds;

  uint64_t Epoch = 0;
  auto AnyUnfinished = [&] {
    return std::any_of(Workers.begin(), Workers.end(),
                       [](const auto &W) { return !W->finished(); });
  };
  do {
    if (Workers.size() == 1) {
      runWorkerEpoch(*Workers[0]);
    } else {
      std::vector<std::thread> Threads;
      Threads.reserve(Workers.size());
      for (auto &WP : Workers)
        if (!WP->finished())
          Threads.emplace_back([this, W = WP.get()] { runWorkerEpoch(*W); });
      for (std::thread &T : Threads)
        T.join();
    }
    syncEpoch(Epoch);
    ++Epoch;

    if (OnEpoch) {
      CampaignProgress P;
      P.Epoch = Epoch;
      for (const auto &W : Workers)
        P.Executions += W->Executed;
      P.CorpusSize = MergedCorpus.size();
      P.NormalEdges = countCovered(MergedNormal);
      P.SpecEdges = countCovered(MergedSpec);
      P.UniqueGadgets = Gadgets.uniqueCount();
      OnEpoch(P);
    }
  } while (AnyUnfinished());

  CampaignStats S;
  S.Epochs = Epoch;
  for (const auto &WP : Workers) {
    WorkerStats WS = WP->Stats;
    WS.ShardSize = WP->Shard.size();
    WS.NormalEdges = WP->Shard.NormalEdges;
    WS.SpecEdges = WP->Shard.SpecEdges;
    WS.GuestInsts = WP->Target->executedInsts();
    S.Executions += WS.Executions;
    S.CorpusAdds += WS.CorpusAdds;
    S.Imports += WS.Imports;
    S.GuestInsts += WS.GuestInsts;
    S.PerWorker.push_back(WS);
  }
  S.NormalEdges = countCovered(MergedNormal);
  S.SpecEdges = countCovered(MergedSpec);
  S.UniqueGadgets = Gadgets.uniqueCount();
  return S;
}
