//===- fuzz/Campaign.cpp --------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <thread>

using namespace teapot;
using namespace teapot::fuzz;

namespace {

void mergeMax(std::vector<uint8_t> &Dst, const std::vector<uint8_t> &Src) {
  if (Dst.size() < Src.size())
    Dst.resize(Src.size(), 0);
  for (size_t I = 0; I != Src.size(); ++I)
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

size_t countCovered(const std::vector<uint8_t> &Map) {
  size_t N = 0;
  for (uint8_t B : Map)
    N += B != 0;
  return N;
}

} // namespace

/// One worker: everything here is private to its thread during an epoch;
/// the campaign thread only touches it between epochs (after join).
struct Campaign::Worker {
  unsigned Index = 0;
  RNG Rand{0};
  std::unique_ptr<FuzzTarget> Target;
  CorpusShard Shard;
  /// This worker's slice of CampaignOptions::TotalIterations.
  uint64_t Budget = 0;
  uint64_t Executed = 0;
  /// Guest instructions executed by *previous* incarnations of this
  /// worker's target (restored from a snapshot); the live target's
  /// executedInsts() counts from zero after a resume.
  uint64_t GuestInstsBase = 0;
  WorkerStats Stats;
  /// Inputs other workers published, pending adoption. A cursor instead
  /// of erase-from-front keeps publication order stable and cheap.
  std::vector<std::vector<uint8_t>> Inbox;
  size_t InboxCursor = 0;
  /// Locally-novel inputs found this epoch, collected by syncEpoch().
  std::vector<std::vector<uint8_t>> Outbox;
  /// Crashes contained this epoch, collected by syncEpoch().
  std::vector<QuarantineRecord> Quarantine;
  bool Seeded = false;

  bool finished() const { return Seeded && Executed >= Budget; }
};

uint64_t Campaign::workerSeed(uint64_t CampaignSeed, unsigned WorkerIndex) {
  if (WorkerIndex == 0)
    return CampaignSeed; // Workers == 1 reproduces the Fuzzer stream.
  RNG Splitter(CampaignSeed);
  uint64_t S = 0;
  for (unsigned I = 0; I != WorkerIndex; ++I)
    S = Splitter.next();
  return S;
}

Campaign::Campaign(TargetFactory Factory, CampaignOptions Opts)
    : Factory(std::move(Factory)), Opts(Opts) {
  if (this->Opts.Workers == 0)
    this->Opts.Workers = 1;
  if (this->Opts.SyncInterval == 0)
    this->Opts.SyncInterval = 1;
}

Campaign::~Campaign() = default;

void Campaign::addSeed(std::vector<uint8_t> Seed) {
  if (Seed.size() > Opts.MaxInputLen)
    Seed.resize(Opts.MaxInputLen);
  Seeds.push_back(std::move(Seed));
}

void Campaign::enqueueImports(
    const std::vector<std::vector<uint8_t>> &Inputs) {
  // Deliberately unconditional on finished(): between runs the budget
  // split is stale (run() recomputes it), so filtering here would race
  // the recomputation logically, not just in time. A worker that never
  // regains budget simply keeps the entries in its snapshot inbox.
  for (auto &WP : Workers) {
    for (const std::vector<uint8_t> &In : Inputs) {
      std::vector<uint8_t> Entry = In;
      if (Entry.size() > Opts.MaxInputLen)
        Entry.resize(Opts.MaxInputLen);
      WP->Inbox.push_back(std::move(Entry));
    }
  }
}

void Campaign::runWorkerEpoch(Worker &W) {
  MutationOptions MO;
  MO.MaxInputLen = Opts.MaxInputLen;
  MO.MaxStackedMutations = Opts.MaxStackedMutations;

  uint64_t EpochExecs = 0;
  auto ExecAndMerge = [&](const std::vector<uint8_t> &In) {
    try {
      W.Target->execute(In);
    } catch (const std::exception &E) {
      // Crash containment: the input is quarantined and the execution
      // charged like any other, so the epoch barrier converges at the
      // same counts it would have — a hostile input costs one execution,
      // never the campaign. The target's coverage maps are in an
      // unknown partial state, so nothing is merged or published.
      ++W.Executed;
      ++W.Stats.Executions;
      ++W.Stats.Quarantined;
      ++EpochExecs;
      QuarantineRecord R;
      R.Input = In;
      R.Worker = W.Index;
      R.ExecIndex = W.Executed;
      R.Signature = E.what();
      if (const auto *TE = dynamic_cast<const TeapotError *>(&E))
        R.Site = TE->site();
      R.RngState = W.Rand.state();
      W.Quarantine.push_back(std::move(R));
      return false;
    }
    ++W.Executed;
    ++W.Stats.Executions;
    ++EpochExecs;
    return W.Shard.mergeCoverage(W.Target->normalCoverage(),
                                 W.Target->specCoverage());
  };

  if (!W.Seeded) {
    // Mirror Fuzzer::run: every seed executes up front, even past the
    // budget, to warm the coverage maps.
    for (const auto &Seed : W.Shard.entries())
      ExecAndMerge(Seed);
    W.Seeded = true;
  }

  // Adopt what other workers published. Imports execute on *this*
  // worker's target (its coverage maps decide novelty) and count
  // against its budget like any other execution.
  while (W.InboxCursor != W.Inbox.size() && W.Executed < W.Budget &&
         EpochExecs < Opts.SyncInterval) {
    const std::vector<uint8_t> &In = W.Inbox[W.InboxCursor];
    if (W.Shard.containsHash(hashInput(In))) {
      ++W.InboxCursor; // identical bytes already in the shard: free skip
      continue;
    }
    if (ExecAndMerge(In)) {
      W.Shard.add(In); // adopted, but not republished
      ++W.Stats.Imports;
    }
    ++W.InboxCursor;
  }

  // Fuzz the private shard — the Fuzzer::run loop, verbatim.
  while (W.Executed < W.Budget && EpochExecs < Opts.SyncInterval) {
    const auto &Parent = W.Shard.entries()[W.Rand.below(W.Shard.size())];
    std::vector<uint8_t> Input =
        mutateInput(W.Rand, Parent, W.Shard.entries(), MO);
    if (ExecAndMerge(Input)) {
      W.Outbox.push_back(Input);
      W.Shard.add(std::move(Input));
      ++W.Stats.CorpusAdds;
    }
  }
}

void Campaign::syncEpoch(uint64_t Epoch) {
  // Drop consumed inbox prefixes (workers are joined; main thread only).
  for (auto &WP : Workers) {
    WP->Inbox.erase(WP->Inbox.begin(),
                    WP->Inbox.begin() +
                        static_cast<long>(WP->InboxCursor));
    WP->InboxCursor = 0;
  }
  // Publish every worker's epoch discoveries in worker-index order: into
  // the merged corpus, and into every *other* still-running worker's
  // inbox (a finished worker has no budget left to execute imports, so
  // queueing for it would only pin dead copies). Main thread only —
  // this ordering is what keeps the campaign independent of thread
  // scheduling.
  for (auto &WP : Workers) {
    Worker &W = *WP;
    for (std::vector<uint8_t> &Input : W.Outbox) {
      for (auto &Other : Workers)
        if (Other->Index != W.Index && !Other->finished())
          Other->Inbox.push_back(Input);
      MergedCorpus.push_back(std::move(Input));
    }
    W.Outbox.clear();
  }
  // Collect contained crashes in worker-index order (same rule as
  // corpus publication: campaign order never depends on scheduling).
  for (auto &WP : Workers) {
    for (QuarantineRecord &R : WP->Quarantine) {
      R.Epoch = Epoch;
      Quarantine.push_back(std::move(R));
    }
    WP->Quarantine.clear();
  }
  // Fold per-worker gadget sinks into the campaign-unique set (worker
  // order, so duplicate gadgets resolve to the lowest-index reporter).
  for (auto &WP : Workers)
    if (const runtime::ReportSink *S = WP->Target->reports())
      Gadgets.merge(*S);
  // Union coverage, for progress reporting.
  for (auto &WP : Workers) {
    mergeMax(MergedNormal, WP->Shard.normalMap());
    mergeMax(MergedSpec, WP->Shard.specMap());
  }
}

CampaignStats Campaign::run() {
  StopRequested.store(false, std::memory_order_relaxed);

  if (!Resumed) {
    if (Seeds.empty())
      Seeds.push_back({}); // like Fuzzer: start from the empty input

    // Fresh campaign state on every call, so run() is re-runnable (and
    // reproduces itself exactly — targets are rebuilt by the factory).
    MergedNormal.clear();
    MergedSpec.clear();
    Gadgets.clear();
    Quarantine.clear();
    Workers.clear();
    CurEpoch = 0;
    for (unsigned I = 0; I != Opts.Workers; ++I) {
      auto W = std::make_unique<Worker>();
      W->Index = I;
      W->Rand = RNG(workerSeed(Opts.Seed, I));
      W->Target = Factory();
      for (const auto &Seed : Seeds)
        W->Shard.add(Seed);
      Workers.push_back(std::move(W));
    }
    MergedCorpus = Seeds;
  }
  // (Re)split the execution budget. On a resume this recomputes the
  // identical split — unless TotalIterations was raised, which extends
  // every worker proportionally (how a finished campaign is continued).
  for (unsigned I = 0; I != Workers.size(); ++I)
    Workers[I]->Budget = Opts.TotalIterations / Opts.Workers +
                         (I < Opts.TotalIterations % Opts.Workers ? 1 : 0);

  uint64_t Epoch = CurEpoch;
  auto AnyUnfinished = [&] {
    return std::any_of(Workers.begin(), Workers.end(),
                       [](const auto &W) { return !W->finished(); });
  };
  // A fresh campaign always runs at least one epoch (seeds execute even
  // on a zero budget, mirroring Fuzzer::run). A resumed one already did
  // that; if its budget is spent — or it already sits at the absolute
  // MaxEpochs barrier — it must add nothing, not even an empty epoch,
  // so "save at the final barrier, resume" is the identity and "run to
  // epoch k, save" composes with "resume to epoch k".
  bool Stop = Resumed && (!AnyUnfinished() ||
                          (Opts.MaxEpochs != 0 && Epoch >= Opts.MaxEpochs));
  while (!Stop) {
    if (Workers.size() == 1) {
      runWorkerEpoch(*Workers[0]);
    } else {
      std::vector<std::thread> Threads;
      Threads.reserve(Workers.size());
      for (auto &WP : Workers)
        if (!WP->finished())
          Threads.emplace_back([this, W = WP.get()] { runWorkerEpoch(*W); });
      for (std::thread &T : Threads)
        T.join();
    }
    syncEpoch(Epoch);
    ++Epoch;
    CurEpoch = Epoch; // every saved quantity is now barrier-consistent

    if (OnEpoch) {
      CampaignProgress P;
      P.Epoch = Epoch;
      for (const auto &W : Workers)
        P.Executions += W->Executed;
      P.CorpusSize = MergedCorpus.size();
      P.NormalEdges = countCovered(MergedNormal);
      P.SpecEdges = countCovered(MergedSpec);
      P.UniqueGadgets = Gadgets.uniqueCount();
      P.Quarantined = Quarantine.size();
      OnEpoch(P);
    }
    Stop = StopRequested.load(std::memory_order_relaxed) ||
           (Opts.MaxEpochs != 0 && Epoch >= Opts.MaxEpochs) ||
           !AnyUnfinished();
  }
  // loadState() arms exactly one continuing run(); the next call starts
  // afresh again, per the class contract ("each call normally starts
  // afresh"). The finished state stays live for saveState().
  Resumed = false;

  CampaignStats S;
  S.Epochs = Epoch;
  for (const auto &WP : Workers) {
    WorkerStats WS = WP->Stats;
    WS.ShardSize = WP->Shard.size();
    WS.NormalEdges = WP->Shard.NormalEdges;
    WS.SpecEdges = WP->Shard.SpecEdges;
    WS.GuestInsts = WP->GuestInstsBase + WP->Target->executedInsts();
    S.Executions += WS.Executions;
    S.CorpusAdds += WS.CorpusAdds;
    S.Imports += WS.Imports;
    S.GuestInsts += WS.GuestInsts;
    S.Quarantined += WS.Quarantined;
    FuzzTarget::RobustnessStats RS = WP->Target->robustnessStats();
    S.Degradations += RS.Degradations;
    S.WatchdogTrips += RS.WatchdogTrips;
    S.FaultsInjected += RS.FaultsInjected;
    FuzzTarget::HotPathStats HS = WP->Target->hotPathStats();
    S.TlbGuestHits += HS.TlbGuestHits;
    S.TlbRuntimeHits += HS.TlbRuntimeHits;
    S.TlbSlowPathCalls += HS.TlbSlowPathCalls;
    S.IntrinsicFastPathHits += HS.IntrinsicFastPathHits;
    S.PerWorker.push_back(WS);
  }
  S.NormalEdges = countCovered(MergedNormal);
  S.SpecEdges = countCovered(MergedSpec);
  S.UniqueGadgets = Gadgets.uniqueCount();
  return S;
}

//===----------------------------------------------------------------------===//
// Persistence: the teapot.corpus.v1 snapshot format
//===----------------------------------------------------------------------===//

namespace {

json::Value inputsToJson(const std::vector<std::vector<uint8_t>> &Inputs) {
  json::Value A = json::Value::array();
  for (const auto &In : Inputs)
    A.push(hexEncode(In));
  return A;
}

Expected<std::vector<std::vector<uint8_t>>>
inputsFromJson(const json::Value *A, const char *What) {
  if (!A || !A->isArray())
    return makeError("corpus snapshot: missing or non-array %s", What);
  std::vector<std::vector<uint8_t>> Out;
  Out.reserve(A->size());
  for (const json::Value &E : A->items()) {
    if (!E.isString())
      return makeError("corpus snapshot: %s entry is not a hex string",
                       What);
    auto Bytes = hexDecode(E.asString());
    if (!Bytes)
      return makeError("corpus snapshot: %s entry: %s", What,
                       Bytes.message().c_str());
    Out.push_back(std::move(*Bytes));
  }
  return Out;
}

Expected<std::vector<uint8_t>> mapFromJson(const json::Value &Obj,
                                           const char *Key,
                                           const char *What) {
  const json::Value *M = Obj.find(Key);
  if (!M || !M->isString())
    return makeError("corpus snapshot: missing or non-string %s.%s", What,
                     Key);
  auto Bytes = hexDecode(M->asString());
  if (!Bytes)
    return makeError("corpus snapshot: %s.%s: %s", What, Key,
                     Bytes.message().c_str());
  return Bytes;
}

Error getU64(const json::Value &Obj, const char *Key, const char *What,
             uint64_t &Out) {
  const json::Value *M = Obj.find(Key);
  if (!M || !M->isUInt())
    return makeError("corpus snapshot: missing or non-integer %s.%s", What,
                     Key);
  Out = M->asUInt();
  return Error::success();
}

} // namespace

json::Value Campaign::saveState() const {
  assert(!Workers.empty() &&
         "saveState before run(): nothing to snapshot yet");
  json::Value V = json::Value::object();
  V.set("schema", SnapshotSchemaName);

  json::Value O = json::Value::object();
  O.set("seed", Opts.Seed);
  O.set("total_iterations", Opts.TotalIterations);
  O.set("workers", Opts.Workers);
  O.set("sync_interval", Opts.SyncInterval);
  O.set("max_input_len", static_cast<uint64_t>(Opts.MaxInputLen));
  O.set("max_stacked_mutations", Opts.MaxStackedMutations);
  V.set("options", std::move(O));

  V.set("epoch", CurEpoch);
  V.set("corpus", inputsToJson(MergedCorpus));

  json::Value Cov = json::Value::object();
  Cov.set("normal", hexEncode(MergedNormal));
  Cov.set("spec", hexEncode(MergedSpec));
  V.set("coverage", std::move(Cov));

  json::Value GArr = json::Value::array();
  for (const runtime::GadgetReport &R : Gadgets.unique())
    GArr.push(runtime::gadgetToJson(R));
  V.set("gadgets", std::move(GArr));

  json::Value QArr = json::Value::array();
  for (const QuarantineRecord &R : Quarantine) {
    json::Value QV = json::Value::object();
    QV.set("input", hexEncode(R.Input));
    QV.set("worker", R.Worker);
    QV.set("epoch", R.Epoch);
    QV.set("exec_index", R.ExecIndex);
    QV.set("signature", R.Signature);
    QV.set("site", R.Site);
    QV.set("rng_state", R.RngState);
    QArr.push(std::move(QV));
  }
  V.set("quarantine", std::move(QArr));

  json::Value WArr = json::Value::array();
  for (const auto &WP : Workers) {
    const Worker &W = *WP;
    assert(W.Outbox.empty() && "saveState between barriers");
    json::Value WV = json::Value::object();
    WV.set("rng_state", W.Rand.state());
    WV.set("executed", W.Executed);
    WV.set("seeded", W.Seeded);
    WV.set("guest_insts",
           W.GuestInstsBase + W.Target->executedInsts());
    json::Value St = json::Value::object();
    St.set("executions", W.Stats.Executions);
    St.set("corpus_adds", W.Stats.CorpusAdds);
    St.set("imports", W.Stats.Imports);
    St.set("quarantined", W.Stats.Quarantined);
    WV.set("stats", std::move(St));
    json::Value Sh = json::Value::object();
    Sh.set("entries", inputsToJson(W.Shard.entries()));
    Sh.set("normal", hexEncode(W.Shard.normalMap()));
    Sh.set("spec", hexEncode(W.Shard.specMap()));
    Sh.set("normal_edges", static_cast<uint64_t>(W.Shard.NormalEdges));
    Sh.set("spec_edges", static_cast<uint64_t>(W.Shard.SpecEdges));
    WV.set("shard", std::move(Sh));
    // Unconsumed imports only; the cursor prefix is logically gone.
    std::vector<std::vector<uint8_t>> Pending(
        W.Inbox.begin() + static_cast<long>(W.InboxCursor), W.Inbox.end());
    WV.set("inbox", inputsToJson(Pending));
    WV.set("target", W.Target->saveState());
    WArr.push(std::move(WV));
  }
  V.set("workers", std::move(WArr));
  return V;
}

Error Campaign::loadState(const json::Value &V) {
  if (!V.isObject())
    return makeError("corpus snapshot: document is not an object");
  const json::Value *Schema = V.find("schema");
  if (!Schema || !Schema->isString())
    return makeError("corpus snapshot: missing schema tag");
  if (Schema->asString() != SnapshotSchemaName)
    return makeError("corpus snapshot: unsupported schema '%s' (want %s)",
                     Schema->asString().c_str(), SnapshotSchemaName);

  const json::Value *O = V.find("options");
  if (!O || !O->isObject())
    return makeError("corpus snapshot: missing options object");
  uint64_t Seed = 0, TotalIters = 0, NumWorkers = 0, SyncInterval = 0,
           MaxLen = 0, MaxStacked = 0;
  if (Error E = getU64(*O, "seed", "options", Seed))
    return E;
  if (Error E = getU64(*O, "total_iterations", "options", TotalIters))
    return E;
  if (Error E = getU64(*O, "workers", "options", NumWorkers))
    return E;
  if (Error E = getU64(*O, "sync_interval", "options", SyncInterval))
    return E;
  if (Error E = getU64(*O, "max_input_len", "options", MaxLen))
    return E;
  if (Error E = getU64(*O, "max_stacked_mutations", "options", MaxStacked))
    return E;
  // The determinism guarantee only holds when the resumed campaign
  // replays the same algorithm: every option that feeds the RNG stream
  // or the sync protocol must match. (TotalIterations may legitimately
  // differ — raising it is how a finished campaign is extended.)
  if (Seed != Opts.Seed)
    return makeError("corpus snapshot: seed mismatch (snapshot %llu, "
                     "campaign %llu)",
                     static_cast<unsigned long long>(Seed),
                     static_cast<unsigned long long>(Opts.Seed));
  if (NumWorkers != Opts.Workers)
    return makeError("corpus snapshot: worker-count mismatch (snapshot "
                     "%llu, campaign %u)",
                     static_cast<unsigned long long>(NumWorkers),
                     Opts.Workers);
  if (SyncInterval != Opts.SyncInterval)
    return makeError("corpus snapshot: sync-interval mismatch (snapshot "
                     "%llu, campaign %llu)",
                     static_cast<unsigned long long>(SyncInterval),
                     static_cast<unsigned long long>(Opts.SyncInterval));
  if (MaxLen != Opts.MaxInputLen || MaxStacked != Opts.MaxStackedMutations)
    return makeError("corpus snapshot: mutation-knob mismatch (max input "
                     "len / stacked mutations differ)");

  uint64_t Epoch = 0;
  if (Error E = getU64(V, "epoch", "$", Epoch))
    return E;
  auto Corpus = inputsFromJson(V.find("corpus"), "corpus");
  if (!Corpus)
    return Corpus.takeError();
  const json::Value *Cov = V.find("coverage");
  if (!Cov || !Cov->isObject())
    return makeError("corpus snapshot: missing coverage object");
  auto Normal = mapFromJson(*Cov, "normal", "coverage");
  if (!Normal)
    return Normal.takeError();
  auto Spec = mapFromJson(*Cov, "spec", "coverage");
  if (!Spec)
    return Spec.takeError();

  const json::Value *GArr = V.find("gadgets");
  if (!GArr || !GArr->isArray())
    return makeError("corpus snapshot: missing gadgets array");
  std::vector<runtime::GadgetReport> Reports;
  for (const json::Value &GV : GArr->items()) {
    auto G = runtime::gadgetFromJson(GV);
    if (!G)
      return G.takeError();
    Reports.push_back(*G);
  }

  // Optional with default: snapshots written before crash containment
  // existed carry no quarantine array and must keep loading.
  std::vector<QuarantineRecord> NewQuarantine;
  if (const json::Value *QArr = V.find("quarantine")) {
    if (!QArr->isArray())
      return makeError("corpus snapshot: quarantine is not an array");
    for (size_t I = 0; I != QArr->size(); ++I) {
      const json::Value &QV = QArr->items()[I];
      if (!QV.isObject())
        return makeError("corpus snapshot: quarantine[%zu] is not an "
                         "object",
                         I);
      QuarantineRecord R;
      const json::Value *In = QV.find("input");
      if (!In || !In->isString())
        return makeError("corpus snapshot: quarantine[%zu].input missing",
                         I);
      auto Bytes = hexDecode(In->asString());
      if (!Bytes)
        return makeError("corpus snapshot: quarantine[%zu].input: %s", I,
                         Bytes.message().c_str());
      R.Input = std::move(*Bytes);
      uint64_t WIdx = 0;
      if (Error E = getU64(QV, "worker", "quarantine[]", WIdx))
        return E;
      if (WIdx >= Opts.Workers)
        return makeError("corpus snapshot: quarantine[%zu].worker %llu out "
                         "of range for a %u-worker campaign",
                         I, static_cast<unsigned long long>(WIdx),
                         Opts.Workers);
      R.Worker = static_cast<unsigned>(WIdx);
      if (Error E = getU64(QV, "epoch", "quarantine[]", R.Epoch))
        return E;
      if (Error E = getU64(QV, "exec_index", "quarantine[]", R.ExecIndex))
        return E;
      if (Error E = getU64(QV, "rng_state", "quarantine[]", R.RngState))
        return E;
      const json::Value *Sig = QV.find("signature");
      const json::Value *Site = QV.find("site");
      if (!Sig || !Sig->isString() || !Site || !Site->isString())
        return makeError("corpus snapshot: quarantine[%zu] needs signature "
                         "+ site strings",
                         I);
      R.Signature = Sig->asString();
      R.Site = Site->asString();
      NewQuarantine.push_back(std::move(R));
    }
  }

  const json::Value *WArr = V.find("workers");
  if (!WArr || !WArr->isArray())
    return makeError("corpus snapshot: missing workers array");
  if (WArr->size() != Opts.Workers)
    return makeError("corpus snapshot: %zu worker records for a %u-worker "
                     "campaign",
                     WArr->size(), Opts.Workers);

  // Build the new worker set off to the side; only commit (and only
  // construct targets' state) once every record parsed.
  std::vector<std::unique_ptr<Worker>> NewWorkers;
  for (size_t I = 0; I != WArr->size(); ++I) {
    const json::Value &WV = WArr->items()[I];
    if (!WV.isObject())
      return makeError("corpus snapshot: workers[%zu] is not an object", I);
    auto W = std::make_unique<Worker>();
    W->Index = static_cast<unsigned>(I);
    uint64_t RngState = 0, GuestInsts = 0;
    if (Error E = getU64(WV, "rng_state", "workers[]", RngState))
      return E;
    W->Rand = RNG(RngState);
    if (Error E = getU64(WV, "executed", "workers[]", W->Executed))
      return E;
    if (Error E = getU64(WV, "guest_insts", "workers[]", GuestInsts))
      return E;
    W->GuestInstsBase = GuestInsts;
    const json::Value *Seeded = WV.find("seeded");
    if (!Seeded || !Seeded->isBool())
      return makeError("corpus snapshot: workers[%zu].seeded missing", I);
    W->Seeded = Seeded->asBool();
    const json::Value *St = WV.find("stats");
    if (!St || !St->isObject())
      return makeError("corpus snapshot: workers[%zu].stats missing", I);
    if (Error E = getU64(*St, "executions", "workers[].stats",
                         W->Stats.Executions))
      return E;
    if (Error E = getU64(*St, "corpus_adds", "workers[].stats",
                         W->Stats.CorpusAdds))
      return E;
    if (Error E =
            getU64(*St, "imports", "workers[].stats", W->Stats.Imports))
      return E;
    // Optional with default (pre-quarantine snapshots lack the key).
    if (const json::Value *Q = St->find("quarantined")) {
      if (!Q->isUInt())
        return makeError("corpus snapshot: workers[%zu].stats.quarantined "
                         "is not an unsigned integer",
                         I);
      W->Stats.Quarantined = Q->asUInt();
    }
    const json::Value *Sh = WV.find("shard");
    if (!Sh || !Sh->isObject())
      return makeError("corpus snapshot: workers[%zu].shard missing", I);
    auto Entries = inputsFromJson(Sh->find("entries"), "shard.entries");
    if (!Entries)
      return Entries.takeError();
    for (auto &E : *Entries)
      W->Shard.add(std::move(E));
    auto ShNormal = mapFromJson(*Sh, "normal", "shard");
    if (!ShNormal)
      return ShNormal.takeError();
    auto ShSpec = mapFromJson(*Sh, "spec", "shard");
    if (!ShSpec)
      return ShSpec.takeError();
    uint64_t NEdges = 0, SEdges = 0;
    if (Error E = getU64(*Sh, "normal_edges", "workers[].shard", NEdges))
      return E;
    if (Error E = getU64(*Sh, "spec_edges", "workers[].shard", SEdges))
      return E;
    // Integrity: the edge counters count 0 -> covered transitions, so
    // each must equal its map's nonzero-entry count. A truncated (but
    // valid-hex) map or a stale counter fails here instead of silently
    // skewing novelty decisions after the resume.
    auto Nonzero = [](const std::vector<uint8_t> &Map) {
      size_t N = 0;
      for (uint8_t B : Map)
        N += B != 0;
      return N;
    };
    if (Nonzero(*ShNormal) != NEdges || Nonzero(*ShSpec) != SEdges)
      return makeError("corpus snapshot: workers[%zu].shard edge counters "
                       "disagree with the coverage maps (truncated or "
                       "corrupted snapshot?)",
                       I);
    if (!NewWorkers.empty() &&
        (ShNormal->size() !=
             NewWorkers.front()->Shard.normalMap().size() ||
         ShSpec->size() != NewWorkers.front()->Shard.specMap().size()))
      return makeError("corpus snapshot: workers[%zu].shard coverage "
                       "geometry differs from worker 0's",
                       I);
    W->Shard.restoreCoverage(std::move(*ShNormal), std::move(*ShSpec),
                             static_cast<size_t>(NEdges),
                             static_cast<size_t>(SEdges));
    auto Inbox = inputsFromJson(WV.find("inbox"), "inbox");
    if (!Inbox)
      return Inbox.takeError();
    W->Inbox = std::move(*Inbox);
    W->InboxCursor = 0;
    const json::Value *TS = WV.find("target");
    if (!TS)
      return makeError("corpus snapshot: workers[%zu].target missing", I);
    W->Target = Factory();
    if (Error E = W->Target->loadState(*TS))
      return E;
    NewWorkers.push_back(std::move(W));
  }

  // The merged union maps must share the shards' geometry (mergeMax
  // only ever grows a map to the largest shard's size).
  if (!NewWorkers.empty() &&
      (Normal->size() != NewWorkers.front()->Shard.normalMap().size() ||
       Spec->size() != NewWorkers.front()->Shard.specMap().size()))
    return makeError("corpus snapshot: merged coverage geometry differs "
                     "from the worker shards'");

  Workers = std::move(NewWorkers);
  MergedCorpus = std::move(*Corpus);
  MergedNormal = std::move(*Normal);
  MergedSpec = std::move(*Spec);
  Gadgets.restore(Reports);
  Quarantine = std::move(NewQuarantine);
  CurEpoch = Epoch;
  Resumed = true;
  return Error::success();
}
