//===- fuzz/GadgetSink.h - Cross-worker gadget dedupe -------------*- C++ -*-===//
///
/// \file
/// Campaign-wide gadget accounting. Each worker's runtime deduplicates
/// its own reports in a runtime::ReportSink; the GadgetSink is the level
/// above: it folds every worker's sink into one campaign-unique set,
/// keyed like ReportSink on (site, channel, controllability) — the
/// marker/PC pair plus the Table 4 classification — so the same gadget
/// found by four workers counts once.
///
/// Thread safety: report() and merge() are serialized by a mutex, but the
/// campaign only calls merge() at epoch barriers (one lock per worker per
/// epoch — lock-light by construction). unique() returns reports in key
/// order, so the set is deterministic no matter which worker reported a
/// gadget first.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_FUZZ_GADGETSINK_H
#define TEAPOT_FUZZ_GADGETSINK_H

#include "runtime/Report.h"

#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

namespace teapot {
namespace fuzz {

class GadgetSink {
public:
  /// Uniqueness key, identical to ReportSink's.
  using Key =
      std::tuple<uint64_t, runtime::Channel, runtime::Controllability>;

  /// Adds one report; returns true if it was campaign-new. Thread-safe.
  bool report(const runtime::GadgetReport &R);

  /// Folds every unique report of \p Sink in; returns how many were
  /// campaign-new. Thread-safe; intended for epoch barriers.
  size_t merge(const runtime::ReportSink &Sink);

  /// Snapshot of the campaign-unique reports, ordered by key (site,
  /// channel, controllability) — independent of discovery interleaving.
  std::vector<runtime::GadgetReport> unique() const;

  size_t uniqueCount() const;

  /// Count of campaign-unique gadgets matching (Ctrl, Chan), mirroring
  /// ReportSink::count for Table 4-style breakdowns.
  size_t count(runtime::Controllability Ctrl, runtime::Channel Chan) const;

  /// Forgets every report; the OnNewGadget hook stays installed.
  void clear();

  /// Replaces the campaign-unique set with a unique() snapshot (the
  /// campaign resume path). OnNewGadget does not fire — these gadgets
  /// were discovered before the snapshot was taken. Main thread only
  /// (no workers running).
  void restore(const std::vector<runtime::GadgetReport> &Reports);

  /// Invoked (outside the lock, on the reporting/merging thread) for
  /// every campaign-new gadget — the campaign driver's progress feed.
  std::function<void(const runtime::GadgetReport &)> OnNewGadget;

private:
  mutable std::mutex Mu;
  std::map<Key, runtime::GadgetReport> Seen;
};

} // namespace fuzz
} // namespace teapot

#endif // TEAPOT_FUZZ_GADGETSINK_H
