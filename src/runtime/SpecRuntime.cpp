//===- runtime/SpecRuntime.cpp - Teapot runtime library --------------------===//

#include "runtime/SpecRuntime.h"

#include "obj/Layout.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace teapot;
using namespace teapot::isa;
using namespace teapot::runtime;

// Payload packing shared with the instrumentation passes: bits [0,8) are
// the access size, bit 8 the is-write flag, bits [16,64) the report site
// (original-binary address of the covered instruction).
namespace {
inline unsigned payloadSize(int64_t P) { return P & 0xff; }
inline bool payloadIsWrite(int64_t P) { return (P >> 8) & 1; }
inline uint64_t payloadSite(int64_t P) {
  return static_cast<uint64_t>(P) >> 16;
}
} // namespace

SpecRuntime::SpecRuntime(vm::Machine &M, MetaTable Meta, RuntimeOptions Opts)
    : M(M), Meta(std::move(Meta)), Opts(Opts), Tags(M) {
  BranchEncounters.assign(this->Meta.Trampolines.size(), 0);
  BranchSimulations.assign(this->Meta.Trampolines.size(), 0);
  Cov.init(this->Meta.NumNormalGuards, this->Meta.NumSpecGuards);
}

SpecRuntime::~SpecRuntime() {
  // The published view points into this runtime's coverage map; a later
  // run of the machine without a handler must take the (always correct)
  // slow path, not chase a dangling pointer.
  M.FastPath = vm::IntrinsicFastPath();
}

void SpecRuntime::publishFastPath() {
  // The masks mirror onIntrinsic() case by case: bit I is set only when
  // the handler provably returns without touching any state in that
  // mode under the attached options. onIntrinsic stays the single
  // source of truth — the engines' inline path retires exactly the
  // intrinsics for which the handler would have done nothing.
  auto Bit = [](IntrinsicID I) { return 1u << static_cast<unsigned>(I); };
  static_assert(static_cast<unsigned>(IntrinsicID::NumIntrinsics) <= 32,
                "no-op masks are uint32 bitsets");

  // Normal execution (InSim == 0).
  uint32_t Normal = Bit(IntrinsicID::None) | Bit(IntrinsicID::RestoreCond) |
                    Bit(IntrinsicID::RestoreUncond) |
                    Bit(IntrinsicID::AsanCheck) | Bit(IntrinsicID::MemLog) |
                    Bit(IntrinsicID::TaintSink) |
                    Bit(IntrinsicID::TaintBranch) |
                    Bit(IntrinsicID::CovSpecGuard) |
                    Bit(IntrinsicID::EscapeCheckRet) |
                    Bit(IntrinsicID::EscapeCheckTgt) |
                    Bit(IntrinsicID::MarkerCheck) |
                    Bit(IntrinsicID::SpecFuzzGuarded);
  // In simulation (InSim != 0). CovGuard must always be set here: the
  // JIT's saturation probe infers "normal mode" from a clear carry.
  uint32_t InSim = Bit(IntrinsicID::None) | Bit(IntrinsicID::TagBlock) |
                   Bit(IntrinsicID::CovGuard) |
                   Bit(IntrinsicID::SpecFuzzGuarded);
  if (!Opts.SimulateSpeculation) {
    Normal |= Bit(IntrinsicID::StartSim) | Bit(IntrinsicID::StartSimNested);
    InSim |= Bit(IntrinsicID::StartSim) | Bit(IntrinsicID::StartSimNested);
  }
  if (!Opts.EnableDift) {
    Normal |= Bit(IntrinsicID::TagProp) | Bit(IntrinsicID::TagBlock);
    InSim |= Bit(IntrinsicID::TagProp) | Bit(IntrinsicID::TaintSink) |
             Bit(IntrinsicID::TaintBranch);
  }

  M.FastPath.NoOpNormalMask = Normal;
  M.FastPath.NoOpInSimMask = InSim;
  M.FastPath.InSim = inSimulation() ? 1 : 0;
  M.FastPath.NormalCov = Cov.normalMap().data();
  M.FastPath.NormalCovSize = Cov.normalMap().size();
  M.FastPath.Enabled = 1;
}

void SpecRuntime::accumulateHotPathStats() {
  Stats.TlbGuestHits += M.Mem.tlbGuestHits();
  Stats.TlbRuntimeHits += M.Mem.tlbRuntimeHits();
  Stats.TlbSlowPathCalls += M.Mem.tlbSlowPathCalls();
  Stats.IntrinsicFastPathHits += M.intrinsicFastPathHits();
}

void SpecRuntime::attach() {
  M.Intrinsics = this;
  M.FaultHook = [this](vm::Machine &, vm::FaultKind, uint64_t) {
    if (!inSimulation())
      return false; // genuine crash in normal execution
    // The "custom signal handler" of Section 6.1: conservatively launch
    // a rollback when speculation faults.
    rollback(RollbackReason::GuestFault);
    return true;
  };
  M.MallocFn = [this](vm::Machine &, uint64_t Size) {
    return installedMalloc(Size);
  };
  M.FreeFn = [this](vm::Machine &, uint64_t Ptr) { installedFree(Ptr); };
  M.InputReadHook = [this](uint64_t Addr, uint64_t Len, uint64_t) {
    if (Opts.EnableDift && Opts.TaintInput)
      Tags.setMemTag(Addr, static_cast<unsigned>(Len), TagUser);
  };
  writeSimFlag(0);
  publishFastPath();
}

void SpecRuntime::resetRun() {
  Checkpoints.clear();
  MemLog.clear();
  SpecInsts = 0;
  RollbacksThisRun = 0;
  WatchdogTripped = false;
  Tags.reset();
  AllocSizes.clear();
  HeapCursor = obj::HeapBase;
  writeSimFlag(0);
  if (Opts.EnableDift && Opts.ExtraTaintLen)
    Tags.setMemTag(Opts.ExtraTaintAddr,
                   static_cast<unsigned>(Opts.ExtraTaintLen), TagUser);
}

//===----------------------------------------------------------------------===//
// Cross-run state persistence (campaign snapshot/resume)
//===----------------------------------------------------------------------===//

json::Value SpecRuntime::saveState() const {
  assert(Checkpoints.empty() && "saveState mid-simulation");
  json::Value V = json::Value::object();
  json::Value Enc = json::Value::array();
  for (uint32_t N : BranchEncounters)
    Enc.push(N);
  V.set("branch_encounters", std::move(Enc));
  json::Value Sim = json::Value::array();
  for (uint32_t N : BranchSimulations)
    Sim.push(N);
  V.set("branch_simulations", std::move(Sim));

  json::Value Cv = json::Value::object();
  Cv.set("normal", hexEncode(Cov.normalMap()));
  Cv.set("spec", hexEncode(Cov.specMap()));
  V.set("coverage", std::move(Cv));

  json::Value Rep = json::Value::object();
  Rep.set("total_hits", Reports.totalHits());
  json::Value Uniq = json::Value::array();
  for (const GadgetReport &R : Reports.unique())
    Uniq.push(gadgetToJson(R));
  Rep.set("unique", std::move(Uniq));
  V.set("reports", std::move(Rep));

  json::Value St = json::Value::object();
  St.set("simulations", Stats.Simulations);
  St.set("nested_simulations", Stats.NestedSimulations);
  json::Value RB = json::Value::object();
  for (size_t I = 0;
       I != static_cast<size_t>(isa::RollbackReason::NumReasons); ++I)
    RB.set(isa::rollbackReasonName(static_cast<isa::RollbackReason>(I)),
           Stats.Rollbacks[I]);
  St.set("rollbacks", std::move(RB));
  St.set("asan_violations", Stats.AsanViolations);
  St.set("skipped_by_heuristic", Stats.SkippedByHeuristic);
  St.set("max_depth_seen", Stats.MaxDepthSeen);
  St.set("watchdog_trips", Stats.WatchdogTrips);
  St.set("tlb_guest_hits", Stats.TlbGuestHits);
  St.set("tlb_runtime_hits", Stats.TlbRuntimeHits);
  St.set("slow_path_calls", Stats.TlbSlowPathCalls);
  St.set("intrinsic_fast_path_hits", Stats.IntrinsicFastPathHits);
  V.set("stats", std::move(St));
  return V;
}

Error SpecRuntime::loadState(const json::Value &V) {
  if (!V.isObject())
    return makeError("runtime state: not an object");
  auto LoadCounters = [&](const char *Key,
                          std::vector<uint32_t> &Out) -> Error {
    const json::Value *A = V.find(Key);
    if (!A || !A->isArray())
      return makeError("runtime state: missing or non-array %s", Key);
    if (A->size() != Meta.Trampolines.size())
      return makeError("runtime state: %s has %zu entries, binary has %zu "
                       "branch sites",
                       Key, A->size(), Meta.Trampolines.size());
    std::vector<uint32_t> New;
    New.reserve(A->size());
    for (const json::Value &E : A->items()) {
      if (!E.isUInt() || E.asUInt() > UINT32_MAX)
        return makeError("runtime state: %s entry is not a 32-bit unsigned "
                         "integer",
                         Key);
      New.push_back(static_cast<uint32_t>(E.asUInt()));
    }
    Out = std::move(New);
    return Error::success();
  };
  std::vector<uint32_t> Enc, Sim;
  if (Error E = LoadCounters("branch_encounters", Enc))
    return E;
  if (Error E = LoadCounters("branch_simulations", Sim))
    return E;

  const json::Value *Cv = V.find("coverage");
  if (!Cv || !Cv->isObject())
    return makeError("runtime state: missing coverage object");
  const json::Value *CN = Cv->find("normal");
  const json::Value *CS = Cv->find("spec");
  if (!CN || !CN->isString() || !CS || !CS->isString())
    return makeError("runtime state: coverage maps must be hex strings");
  auto Normal = hexDecode(CN->asString());
  if (!Normal)
    return Normal.takeError();
  auto Spec = hexDecode(CS->asString());
  if (!Spec)
    return Spec.takeError();

  const json::Value *Rep = V.find("reports");
  if (!Rep || !Rep->isObject())
    return makeError("runtime state: missing reports object");
  const json::Value *Total = Rep->find("total_hits");
  const json::Value *Uniq = Rep->find("unique");
  if (!Total || !Total->isUInt() || !Uniq || !Uniq->isArray())
    return makeError("runtime state: reports needs total_hits + unique[]");
  std::vector<GadgetReport> Gadgets;
  for (const json::Value &GV : Uniq->items()) {
    auto G = gadgetFromJson(GV);
    if (!G)
      return G.takeError();
    Gadgets.push_back(*G);
  }

  const json::Value *St = V.find("stats");
  if (!St || !St->isObject())
    return makeError("runtime state: missing stats object");
  RuntimeStats NewStats;
  auto GetStat = [&](const json::Value &Obj, const char *Key,
                     uint64_t &Out) -> Error {
    const json::Value *M = Obj.find(Key);
    if (!M || !M->isUInt())
      return makeError("runtime state: stats.%s is not an unsigned integer",
                       Key);
    Out = M->asUInt();
    return Error::success();
  };
  if (Error E = GetStat(*St, "simulations", NewStats.Simulations))
    return E;
  if (Error E =
          GetStat(*St, "nested_simulations", NewStats.NestedSimulations))
    return E;
  const json::Value *RB = St->find("rollbacks");
  if (!RB || !RB->isObject())
    return makeError("runtime state: missing stats.rollbacks");
  for (size_t I = 0;
       I != static_cast<size_t>(isa::RollbackReason::NumReasons); ++I)
    if (Error E = GetStat(
            *RB, isa::rollbackReasonName(static_cast<isa::RollbackReason>(I)),
            NewStats.Rollbacks[I]))
      return E;
  if (Error E = GetStat(*St, "asan_violations", NewStats.AsanViolations))
    return E;
  if (Error E =
          GetStat(*St, "skipped_by_heuristic", NewStats.SkippedByHeuristic))
    return E;
  uint64_t MaxDepth = 0;
  if (Error E = GetStat(*St, "max_depth_seen", MaxDepth))
    return E;
  if (MaxDepth > UINT32_MAX)
    return makeError("runtime state: stats.max_depth_seen out of range");
  NewStats.MaxDepthSeen = static_cast<unsigned>(MaxDepth);
  // Optional with default: snapshots written before the watchdog
  // existed lack the key and must keep loading.
  if (const json::Value *WT = St->find("watchdog_trips")) {
    if (!WT->isUInt())
      return makeError("runtime state: stats.watchdog_trips is not an "
                       "unsigned integer");
    NewStats.WatchdogTrips = WT->asUInt();
  }
  // Optional with default, like watchdog_trips: hot-path accounting
  // keys appeared after the snapshot format shipped.
  auto GetOptStat = [&](const char *Key, uint64_t &Out) -> Error {
    if (const json::Value *OV = St->find(Key)) {
      if (!OV->isUInt())
        return makeError("runtime state: stats.%s is not an unsigned integer",
                         Key);
      Out = OV->asUInt();
    }
    return Error::success();
  };
  if (Error E = GetOptStat("tlb_guest_hits", NewStats.TlbGuestHits))
    return E;
  if (Error E = GetOptStat("tlb_runtime_hits", NewStats.TlbRuntimeHits))
    return E;
  if (Error E = GetOptStat("slow_path_calls", NewStats.TlbSlowPathCalls))
    return E;
  if (Error E = GetOptStat("intrinsic_fast_path_hits",
                           NewStats.IntrinsicFastPathHits))
    return E;

  // All pieces parsed; validate the remaining failure cases up front so
  // the commit below is all-or-nothing (a half-applied snapshot would be
  // worse than a rejected one).
  for (size_t I = 1; I < Gadgets.size(); ++I)
    if (!(ReportSink::keyOf(Gadgets[I - 1]) < ReportSink::keyOf(Gadgets[I])))
      return makeError("runtime state: reports.unique is not in strictly "
                       "ascending key order");
  if (Normal->size() != Cov.normalMap().size() ||
      Spec->size() != Cov.specMap().size())
    return makeError("runtime state: coverage geometry mismatch (snapshot "
                     "from a different rewrite?)");
  Cov.restoreMaps(std::move(*Normal), std::move(*Spec));
  cantFail(Reports.restore(std::move(Gadgets), Total->asUInt()));
  BranchEncounters = std::move(Enc);
  BranchSimulations = std::move(Sim);
  Stats = NewStats;
  // restoreMaps replaced the coverage vector; the published CovGuard
  // saturation probe must chase the new storage.
  if (M.FastPath.Enabled)
    publishFastPath();
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Binary ASan (Section 6.2.1)
//===----------------------------------------------------------------------===//

bool SpecRuntime::asanPoisoned(uint64_t Addr, unsigned Size) const {
  // Heap memory past the allocator's high-water mark has never been
  // handed out: unaddressable, exactly as under the real ASan allocator
  // (whose mapped-but-unallocated heap is poisoned wholesale).
  uint64_t End = Addr + Size;
  if (End > HeapCursor && Addr < obj::StackLimit && End > obj::HeapBase)
    return true;
  // One shadow byte per 8-byte granule; 0 = addressable, 1..7 = only the
  // first k bytes addressable, >=0x80-style magics = fully poisoned.
  uint64_t First = Addr >> AsanShadowScale;
  uint64_t Last = (Addr + Size - 1) >> AsanShadowScale;
  for (uint64_t G = First; G <= Last; ++G) {
    uint8_t SV = M.Mem.readU8(G + AsanShadowOffset);
    if (SV == 0)
      continue;
    if (SV >= 8)
      return true; // fully poisoned granule
    // Partially addressable: bytes [G*8, G*8+SV) are valid.
    uint64_t GranuleBase = G << AsanShadowScale;
    uint64_t AccessEndInGranule =
        std::min<uint64_t>(Addr + Size, GranuleBase + 8) - GranuleBase;
    uint64_t AccessStartInGranule =
        Addr > GranuleBase ? Addr - GranuleBase : 0;
    if (AccessEndInGranule > SV || AccessStartInGranule >= SV)
      return true;
  }
  return false;
}

void SpecRuntime::poisonShadow(uint64_t Addr, unsigned Size, uint8_t Magic,
                               bool Log) {
  assert((Addr & 7) == 0 && "poisoning must be granule-aligned");
  for (unsigned I = 0; I < Size; I += 8) {
    uint64_t SA = asanShadowAddr(Addr + I);
    if (Log)
      logShadowByte(SA);
    M.Mem.writeU8(SA, Magic);
  }
}

uint64_t SpecRuntime::installedMalloc(uint64_t Size) {
  // ASan allocator: 16-byte redzones around every allocation, and a
  // bump-pointer heap, which gives free() quarantine semantics for free
  // (freed memory is never reused).
  uint64_t RoundedUser = (Size + 15) & ~15ULL;
  uint64_t Base = HeapCursor;
  uint64_t User = Base + 16;
  HeapCursor = User + RoundedUser + 16;
  poisonShadow(Base, 16, AsanHeapRedzone, /*Log=*/false);
  // Tail: poison from the first granule past the valid bytes.
  uint64_t ValidEnd = User + Size;
  uint64_t PoisonFrom = (ValidEnd + 7) & ~7ULL;
  uint64_t PoisonEnd = User + RoundedUser + 16;
  poisonShadow(PoisonFrom, static_cast<unsigned>(PoisonEnd - PoisonFrom),
               AsanHeapRedzone, /*Log=*/false);
  // Partial final granule.
  if (ValidEnd & 7)
    M.Mem.writeU8(asanShadowAddr(ValidEnd & ~7ULL),
                  static_cast<uint8_t>(ValidEnd & 7));
  AllocSizes[User] = Size;
  return User;
}

void SpecRuntime::installedFree(uint64_t Ptr) {
  auto It = AllocSizes.find(Ptr);
  if (It == AllocSizes.end())
    return; // tolerate foreign/double frees; not our threat model
  uint64_t Rounded = (It->second + 7) & ~7ULL;
  if (Rounded)
    poisonShadow(Ptr, static_cast<unsigned>(Rounded), AsanHeapFreed,
                 /*Log=*/false);
  AllocSizes.erase(It);
}

//===----------------------------------------------------------------------===//
// Checkpoint / rollback (Section 6.1)
//===----------------------------------------------------------------------===//

bool SpecRuntime::shouldSimulate(uint32_t BranchId, unsigned Depth) {
  if (WatchdogTripped)
    return false; // runaway run: no new simulations until the next reset
  if (BranchId >= BranchEncounters.size())
    return false;
  uint32_t Enc = ++BranchEncounters[BranchId];
  auto SpecFuzzDepth = [&]() -> unsigned {
    // SpecFuzz heuristic: the simulation depth a branch is granted grows
    // logarithmically with how often it has been encountered, up to the
    // sixth order.
    unsigned D = 1;
    while ((1u << D) <= Enc && D < Opts.MaxDepth)
      ++D;
    return D;
  };
  bool Simulate = false;
  switch (Opts.Nesting) {
  case NestingPolicy::Off:
    Simulate = Depth == 0;
    break;
  case NestingPolicy::SpecFuzz:
    Simulate = Depth < SpecFuzzDepth();
    break;
  case NestingPolicy::SpecTaint:
    Simulate = BranchSimulations[BranchId] < Opts.SpecTaintTries &&
               Depth < Opts.MaxDepth;
    break;
  case NestingPolicy::Hybrid:
    // Full depth for the first SpecTaintTries runs of a branch, then the
    // SpecFuzz schedule.
    if (BranchSimulations[BranchId] < Opts.SpecTaintTries)
      Simulate = Depth < Opts.MaxDepth;
    else
      Simulate = Depth < SpecFuzzDepth();
    break;
  }
  if (!Simulate) {
    ++Stats.SkippedByHeuristic;
    return false;
  }
  ++BranchSimulations[BranchId];
  return true;
}

void SpecRuntime::startSimulation(uint32_t BranchId) {
  Checkpoint CP;
  CP.CPU = M.C; // PC already points at the branch instruction (resume)
  CP.BranchId = BranchId;
  CP.MemLogMark = MemLog.size();
  CP.TagLogMark = Tags.Log.size();
  CP.CovMark = Cov.lazyMark();
  memcpy(CP.RegTags, Tags.RegTags, sizeof(CP.RegTags));
  CP.FlagsTag = Tags.FlagsTag;
  CP.PendingLoadExtra = Tags.PendingLoadExtra;
  // Preserve the vector state: SSE by default, full AVX when requested
  // (Section 6.1 "Checkpoint").
  CP.VecState.assign(VecRegs, VecRegs + (Opts.AvxCheckpoint ? 2048 : 512));
  Checkpoints.push_back(std::move(CP));

  ++Stats.Simulations;
  if (depth() > 1)
    ++Stats.NestedSimulations;
  Stats.MaxDepthSeen = std::max(Stats.MaxDepthSeen, depth());
  if (depth() == 1) {
    SpecInsts = 0;
    Tags.Logging = true;
    writeSimFlag(1);
  }
  M.C.PC = Meta.Trampolines[BranchId];
}

void SpecRuntime::rollback(RollbackReason Reason) {
  assert(!Checkpoints.empty() && "rollback without a checkpoint");
  ++Stats.Rollbacks[static_cast<size_t>(Reason)];
  ++RollbacksThisRun;
  if (Opts.MaxRollbacksPerRun && !WatchdogTripped &&
      RollbacksThisRun >= Opts.MaxRollbacksPerRun) {
    // Runaway execution: in-flight simulations still unwind normally,
    // but no new one starts until the next resetRun.
    WatchdogTripped = true;
    ++Stats.WatchdogTrips;
  }
  Checkpoint &CP = Checkpoints.back();

  // Unwind the memory log in reverse (Section 6.1 "Rollback").
  while (MemLog.size() > CP.MemLogMark) {
    const MemLogEntry &E = MemLog.back();
    if (E.Size == 0) // shadow-byte entry (Addr is a shadow address)
      M.Mem.writeU8(E.Addr, static_cast<uint8_t>(E.OldBytes));
    else
      M.Mem.writeUnsigned(E.Addr, E.OldBytes, E.Size);
    MemLog.pop_back();
  }
  Tags.undoTo(CP.TagLogMark);
  // Lazy speculative coverage: the visited guards become real coverage
  // now, just before the state is discarded (Section 6.3).
  Cov.flushLazyFrom(CP.CovMark);

  memcpy(VecRegs, CP.VecState.data(), CP.VecState.size());
  M.C = CP.CPU;
  memcpy(Tags.RegTags, CP.RegTags, sizeof(CP.RegTags));
  Tags.FlagsTag = CP.FlagsTag;
  Tags.PendingLoadExtra = CP.PendingLoadExtra;
  Checkpoints.pop_back();

  if (Checkpoints.empty()) {
    SpecInsts = 0;
    Tags.Logging = false;
    writeSimFlag(0);
  }
}

void SpecRuntime::logMemWrite(uint64_t Addr, unsigned Size) {
  MemLog.push_back(
      {Addr, static_cast<uint8_t>(Size), M.Mem.readUnsigned(Addr, Size)});
}

void SpecRuntime::logShadowByte(uint64_t ShadowAddr) {
  MemLog.push_back({ShadowAddr, 0, M.Mem.readU8(ShadowAddr)});
}

//===----------------------------------------------------------------------===//
// Kasper policy sinks (Section 6.2.2, Figure 6)
//===----------------------------------------------------------------------===//

void SpecRuntime::reportGadget(uint64_t Site, Channel Chan,
                               Controllability Ctrl) {
  GadgetReport R;
  R.Site = Site;
  R.Chan = Chan;
  R.Ctrl = Ctrl;
  R.BranchId = Checkpoints.empty() ? 0 : Checkpoints.back().BranchId;
  R.Depth = static_cast<uint8_t>(depth());
  Reports.report(R);
}

void SpecRuntime::handleTaintSink(uint64_t Site, const MemRef &Mem,
                                  unsigned Size, bool IsWrite) {
  uint64_t EA = M.effectiveAddr(Mem);
  uint8_t AddrT = Tags.addrTag(Mem);
  bool OOB = asanPoisoned(EA, Size);
  if (OOB)
    ++Stats.AsanViolations;
  if (OOB && getenv("TEAPOT_DEBUG_SINK"))
    fprintf(stderr, "[sink] site=%llx addrT=%x isw=%d ea=%llx\n",
            (unsigned long long)Site, AddrT, (int)IsWrite,
            (unsigned long long)EA);

  if (!IsWrite) {
    uint8_t Extra = 0;
    // Any speculative out-of-bounds result is attacker-indirectly
    // controlled (it may be a wild pointer the attacker massaged).
    if (OOB && Opts.MassagePolicy)
      Extra |= TagMassage;
    // Attacker-directly controlled OOB access loads a secret.
    if ((AddrT & TagUser) && OOB)
      Extra |= TagSecretUser;
    // Any access through an attacker-indirectly controlled pointer loads
    // a secret (wild pointers violate program invariants).
    if (AddrT & TagMassage)
      Extra |= TagSecretMassage;
    Tags.PendingLoadExtra |= Extra;

    // A loaded secret is immediately leakable via MDS.
    uint8_t Loaded = static_cast<uint8_t>(Tags.memTag(EA, Size) | Extra);
    if (Loaded & TagSecretUser)
      reportGadget(Site, Channel::MDS, Controllability::User);
    if (Loaded & TagSecretMassage)
      reportGadget(Site, Channel::MDS, Controllability::Massage);
  }

  // A secret composed into a dereferenced pointer transmits via the
  // cache side channel (loads and stores alike).
  if (AddrT & TagSecretUser)
    reportGadget(Site, Channel::Cache, Controllability::User);
  if (AddrT & TagSecretMassage)
    reportGadget(Site, Channel::Cache, Controllability::Massage);
}

//===----------------------------------------------------------------------===//
// Intrinsic dispatch
//===----------------------------------------------------------------------===//

bool SpecRuntime::onIntrinsicResolved(vm::Machine &Mach, const Instruction &I,
                                      const Instruction *NextReal) {
  // TagProp's only job is to transfer tags across the next real
  // instruction, which the handler otherwise finds by re-decoding
  // forward from the PC on every execution. The block-compiled tiers
  // resolved that walk once at block build; trust the hint and skip the
  // decode loop. A null hint (block-cut tail) falls back to the walk,
  // as does every other intrinsic.
  if (I.Intr == IntrinsicID::TagProp && NextReal) {
    assert(&Mach == &M && "runtime attached to a different machine");
    (void)Mach;
    if (Opts.EnableDift)
      Tags.transfer(*NextReal);
    return true;
  }
  return onIntrinsic(Mach, I);
}

bool SpecRuntime::onIntrinsic(vm::Machine &Mach, const Instruction &I) {
  assert(&Mach == &M && "runtime attached to a different machine");
  (void)Mach;
  switch (I.Intr) {
  case IntrinsicID::StartSim:
  case IntrinsicID::StartSimNested: {
    if (!Opts.SimulateSpeculation)
      return true;
    auto BranchId = static_cast<uint32_t>(I.IntrPayload);
    if (shouldSimulate(BranchId, depth()))
      startSimulation(BranchId);
    return true;
  }
  case IntrinsicID::RestoreCond:
    if (!inSimulation())
      return true; // baseline single-copy code runs this unguarded
    SpecInsts += static_cast<uint64_t>(I.IntrPayload);
    if (SpecInsts >= Opts.SpecWindow)
      rollback(RollbackReason::InstBudget);
    return true;
  case IntrinsicID::RestoreUncond:
    if (inSimulation())
      rollback(static_cast<RollbackReason>(I.IntrPayload));
    return true;
  case IntrinsicID::AsanCheck: {
    if (!inSimulation())
      return true;
    unsigned Size = payloadSize(I.IntrPayload);
    uint64_t EA = M.effectiveAddr(I.A.M);
    if (asanPoisoned(EA, Size)) {
      ++Stats.AsanViolations;
      // SpecFuzz policy: every speculative out-of-bounds access is a
      // gadget report.
      reportGadget(payloadSite(I.IntrPayload), Channel::Asan,
                   Controllability::Unknown);
    }
    return true;
  }
  case IntrinsicID::MemLog:
    if (inSimulation())
      logMemWrite(M.effectiveAddr(I.A.M), payloadSize(I.IntrPayload));
    return true;
  case IntrinsicID::TagProp: {
    // Synchronous propagation: every instruction in the Shadow Copy, and
    // the Real-Copy fallback blocks whose addresses the asynchronous
    // per-block snippet cannot re-express. Logging engages only while
    // simulating (Tags.Logging).
    if (!Opts.EnableDift)
      return true;
    // The covered instruction is the next non-INTR instruction.
    uint64_t A = M.C.PC;
    while (const isa::Decoded *D = M.decodeAt(A)) {
      if (D->I.Op != Opcode::INTR) {
        Tags.transfer(D->I);
        break;
      }
      A += D->Length;
    }
    return true;
  }
  case IntrinsicID::TagBlock:
    if (!inSimulation() && Opts.EnableDift &&
        static_cast<size_t>(I.IntrPayload) < Meta.TagPrograms.size())
      Tags.runProgram(Meta.TagPrograms[static_cast<size_t>(I.IntrPayload)]);
    return true;
  case IntrinsicID::TaintSink:
    if (inSimulation() && Opts.EnableDift)
      handleTaintSink(payloadSite(I.IntrPayload), I.A.M,
                      payloadSize(I.IntrPayload),
                      payloadIsWrite(I.IntrPayload));
    return true;
  case IntrinsicID::TaintBranch:
    if (!inSimulation() || !Opts.EnableDift)
      return true;
    // A secret influencing a conditional branch transmits via port
    // contention.
    if (Tags.FlagsTag & TagSecretUser)
      reportGadget(payloadSite(I.IntrPayload), Channel::Port,
                   Controllability::User);
    if (Tags.FlagsTag & TagSecretMassage)
      reportGadget(payloadSite(I.IntrPayload), Channel::Port,
                   Controllability::Massage);
    return true;
  case IntrinsicID::CovGuard:
    // Normal-execution coverage. In the single-copy baseline this site
    // also executes while simulating; only count normal-mode visits.
    if (!inSimulation())
      Cov.hitNormal(static_cast<uint32_t>(I.IntrPayload));
    return true;
  case IntrinsicID::CovSpecGuard:
    if (!inSimulation())
      return true;
    if (Opts.LazySpecCoverage) {
      Cov.noteSpecLazy(static_cast<uint32_t>(I.IntrPayload));
    } else {
      // Eager mode: update the counter immediately and pay the register
      // preservation the coverage call would cost (modelled as a spill
      // of the register file).
      uint8_t Spill[sizeof(M.C.R)];
      memcpy(Spill, M.C.R, sizeof(Spill));
      Cov.hitSpec(static_cast<uint32_t>(I.IntrPayload));
      memcpy(M.C.R, Spill, sizeof(Spill));
    }
    return true;
  case IntrinsicID::EscapeCheckRet: {
    if (!inSimulation())
      return true;
    uint64_t RetAddr = M.Mem.readUnsigned(M.C.R[SP], 8);
    if (Meta.inShadowText(RetAddr) || Meta.MarkerSites.count(RetAddr))
      return true;
    rollback(RollbackReason::EscapedControl);
    return true;
  }
  case IntrinsicID::EscapeCheckTgt: {
    if (!inSimulation())
      return true;
    uint64_t Target = M.C.R[I.A.R];
    if (Meta.inShadowText(Target) || Meta.MarkerSites.count(Target))
      return true;
    auto It = Meta.FuncMap.find(Target);
    if (It != Meta.FuncMap.end()) {
      // A Real-Copy function pointer leaked into the simulation
      // (Figure 5b); redirect the call into the Shadow Copy.
      M.C.R[I.A.R] = It->second;
      return true;
    }
    rollback(RollbackReason::EscapedControl);
    return true;
  }
  case IntrinsicID::MarkerCheck: {
    // Real-Copy side of Listing 4: if we arrived here while simulating
    // (a return or indirect jump landed on the marker), bounce back into
    // the Shadow Copy counterpart.
    if (!inSimulation())
      return true;
    auto Id = static_cast<size_t>(I.IntrPayload);
    assert(Id < Meta.MarkerResume.size() && "bad marker id");
    M.C.PC = Meta.MarkerResume[Id];
    return true;
  }
  case IntrinsicID::RAPoison: {
    // Function entry: SP points at the return address slot. Poison its
    // shadow so OOB stack reads during simulation are caught
    // (stack-frame-granularity protection, Section 6.2.1).
    uint64_t Slot = M.C.R[SP];
    uint64_t SA = asanShadowAddr(Slot);
    if (inSimulation())
      logShadowByte(SA);
    M.Mem.writeU8(SA, AsanStackRetAddr);
    return true;
  }
  case IntrinsicID::RAUnpoison: {
    uint64_t Slot = M.C.R[SP];
    uint64_t SA = asanShadowAddr(Slot);
    if (inSimulation())
      logShadowByte(SA);
    M.Mem.writeU8(SA, 0);
    return true;
  }
  case IntrinsicID::SpecFuzzGuarded:
  case IntrinsicID::None:
  case IntrinsicID::NumIntrinsics:
    return true;
  }
  return true;
}
