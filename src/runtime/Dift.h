//===- runtime/Dift.h - Dynamic information flow tracking ---------*- C++ -*-===//
///
/// \file
/// The binary DIFT engine of Section 6.2.2. Tags live in the tag shadow
/// (one byte per data byte, at Addr XOR 1<<45); registers and FLAGS carry
/// whole-value tag bytes. The engine provides:
///
///   - transfer(): the synchronous per-instruction propagation used in
///     the Shadow Copy (and by the SpecTaint-style baseline emulator),
///   - runProgram(): the asynchronous per-basic-block transfer programs
///     used in the Real Copy, where "program execution and the tag
///     propagation do not always need to be synchronized",
///   - an undo log so speculative tag changes roll back with the
///     checkpoint.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_RUNTIME_DIFT_H
#define TEAPOT_RUNTIME_DIFT_H

#include "ir/IR.h"
#include "isa/Instruction.h"
#include "runtime/ShadowLayout.h"
#include "vm/Machine.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace teapot {
namespace runtime {

struct TagLogEntry {
  uint64_t Addr; // application address (not the shadow address)
  uint8_t OldTag;
};

class TagEngine {
public:
  explicit TagEngine(vm::Machine &M) : M(M) {}

  uint8_t RegTags[isa::NumRegs] = {};
  uint8_t FlagsTag = 0;
  /// Extra tag bits OR-ed into the destination of the next load (set by
  /// the Kasper sink when a speculative OOB or massaged access is
  /// detected, consumed by transfer()).
  uint8_t PendingLoadExtra = 0;

  /// When true, memory-tag writes are recorded for rollback.
  bool Logging = false;
  std::vector<TagLogEntry> Log;

  // The XOR tag mapping preserves page offsets, so a span that stays
  // within one application page occupies one contiguous run in one
  // shadow page — the hot accessors below cover such spans with a
  // single TLB lookup instead of one per byte (that per-byte loop was
  // the dominant DIFT cost on the instrumented hot path). Spans that do
  // cross a page fall back to the byte loop.
  static bool samePage(uint64_t Addr, unsigned Size) {
    return (Addr & (vm::Memory::PageSize - 1)) + Size <=
           vm::Memory::PageSize;
  }

  /// Union of the tag bytes covering [Addr, Addr+Size).
  uint8_t memTag(uint64_t Addr, unsigned Size) const {
    if (samePage(Addr, Size)) {
      const uint8_t *P = M.Mem.spanForRead(tagShadowAddr(Addr), Size);
      if (!P)
        return 0; // unmapped shadow reads as untainted
      uint8_t T = 0;
      for (unsigned I = 0; I != Size; ++I)
        T |= P[I];
      return T;
    }
    uint8_t T = 0;
    for (unsigned I = 0; I != Size; ++I)
      T |= M.Mem.readU8(tagShadowAddr(Addr + I));
    return T;
  }

  /// Sets the tag of every byte in [Addr, Addr+Size).
  void setMemTag(uint64_t Addr, unsigned Size, uint8_t Tag) {
    if (samePage(Addr, Size)) {
      const uint8_t *P = M.Mem.spanForRead(tagShadowAddr(Addr), Size);
      if (!P) {
        if (Tag == 0)
          return; // unmapped already reads as zero: nothing to change
      } else {
        unsigned I = 0;
        while (I != Size && P[I] == Tag)
          ++I;
        if (I == Size)
          return; // no byte changes: no materialization, no dirty bit
      }
      if (Logging)
        for (unsigned I = 0; I != Size; ++I) {
          uint8_t Old = P ? P[I] : 0;
          if (Old != Tag)
            Log.push_back({Addr + I, Old});
        }
      memset(M.Mem.spanForWrite(tagShadowAddr(Addr), Size), Tag, Size);
      return;
    }
    for (unsigned I = 0; I != Size; ++I) {
      uint64_t SA = tagShadowAddr(Addr + I);
      uint8_t Old = M.Mem.readU8(SA);
      if (Old == Tag)
        continue;
      if (Logging)
        Log.push_back({Addr + I, Old});
      M.Mem.writeU8(SA, Tag);
    }
  }

  /// OR-merges \p Tag into every byte of [Addr, Addr+Size).
  void orMemTag(uint64_t Addr, unsigned Size, uint8_t Tag) {
    if (Tag == 0)
      return; // OR with zero never changes a tag byte
    if (samePage(Addr, Size)) {
      const uint8_t *P = M.Mem.spanForRead(tagShadowAddr(Addr), Size);
      if (P) {
        unsigned I = 0;
        while (I != Size && (P[I] | Tag) == P[I])
          ++I;
        if (I == Size)
          return; // every byte already carries the bits
      }
      if (Logging)
        for (unsigned I = 0; I != Size; ++I) {
          uint8_t Old = P ? P[I] : 0;
          if ((Old | Tag) != Old)
            Log.push_back({Addr + I, Old});
        }
      uint8_t *W = M.Mem.spanForWrite(tagShadowAddr(Addr), Size);
      if (P)
        for (unsigned I = 0; I != Size; ++I)
          W[I] = static_cast<uint8_t>(W[I] | Tag);
      else
        memset(W, Tag, Size); // fresh page: every byte was zero
      return;
    }
    for (unsigned I = 0; I != Size; ++I) {
      uint64_t SA = tagShadowAddr(Addr + I);
      uint8_t Old = M.Mem.readU8(SA);
      if ((Old | Tag) == Old)
        continue;
      if (Logging)
        Log.push_back({Addr + I, Old});
      M.Mem.writeU8(SA, static_cast<uint8_t>(Old | Tag));
    }
  }

  /// Tag of a reg-or-imm source operand (immediates are untainted).
  uint8_t srcTag(const isa::Operand &O) const {
    return O.isReg() ? RegTags[O.R] : 0;
  }

  /// Tag union of the registers composing a memory address — the
  /// "pointer tag" the Kasper sinks classify accesses by.
  uint8_t addrTag(const isa::MemRef &Mem) const {
    uint8_t T = 0;
    if (Mem.Base != isa::NoReg)
      T |= RegTags[Mem.Base];
    if (Mem.Index != isa::NoReg)
      T |= RegTags[Mem.Index];
    return T;
  }

  /// Applies the tag transfer of \p I. Must run *before* \p I executes
  /// (effective addresses are computed from pre-execution registers).
  void transfer(const isa::Instruction &I);

  /// Evaluates a per-block transfer program (Real Copy asynchronous
  /// update; never logged because normal execution never rolls back).
  void runProgram(const ir::TagProgram &P);

  /// Rolls memory tags back to \p Mark (register/flag tags are restored
  /// wholesale from the checkpoint by the caller).
  void undoTo(size_t Mark) {
    while (Log.size() > Mark) {
      const TagLogEntry &E = Log.back();
      M.Mem.writeU8(tagShadowAddr(E.Addr), E.OldTag);
      Log.pop_back();
    }
  }

  void reset() {
    for (uint8_t &T : RegTags)
      T = 0;
    FlagsTag = 0;
    PendingLoadExtra = 0;
    Log.clear();
    Logging = false;
  }

private:
  vm::Machine &M;
};

} // namespace runtime
} // namespace teapot

#endif // TEAPOT_RUNTIME_DIFT_H
