//===- runtime/Report.h - Gadget reports --------------------------*- C++ -*-===//
///
/// \file
/// Gadget report records and the deduplicating sink (Section 6.2.3).
/// Reports are keyed by the *original-binary* address of the transmitting
/// instruction, the leaking side channel, and the attacker-controllability
/// class — the same categorization Table 4 uses (e.g. "User-Cache",
/// "Massage-Port").
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_RUNTIME_REPORT_H
#define TEAPOT_RUNTIME_REPORT_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace teapot {
namespace runtime {

/// Leaking side channel.
enum class Channel : uint8_t {
  MDS,   // secret loaded into a register (microarchitectural data sampling)
  Cache, // secret used to compose a dereferenced pointer
  Port,  // secret influences a conditional branch (port contention)
  Asan,  // raw speculative out-of-bounds access (SpecFuzz-style policy)
};

/// Attacker controllability of the access that produced the secret.
enum class Controllability : uint8_t {
  User,    // attacker-directly controlled (tainted user input)
  Massage, // attacker-indirectly controlled (speculative OOB derived)
  Unknown, // policy without DIFT (SpecFuzz baseline)
};

const char *channelName(Channel C);
const char *controllabilityName(Controllability C);

struct GadgetReport {
  /// Original-binary address of the transmitting instruction; for
  /// artificially injected gadgets this is the injector's synthetic site
  /// marker.
  uint64_t Site = 0;
  Channel Chan = Channel::MDS;
  Controllability Ctrl = Controllability::User;
  /// Branch site id of the innermost mispredicted branch (context).
  uint32_t BranchId = 0;
  /// Speculation nesting depth at detection time.
  uint8_t Depth = 0;

  std::string describe() const;
};

/// Deduplicating report collector. Uniqueness key: (Site, Chan, Ctrl).
class ReportSink {
public:
  /// Returns true if the report was new.
  bool report(const GadgetReport &R) {
    auto Key = std::make_tuple(R.Site, R.Chan, R.Ctrl);
    auto [It, New] = Seen.emplace(Key, R);
    (void)It;
    if (New) {
      Unique.push_back(R);
      if (OnNewGadget)
        OnNewGadget(R);
    }
    ++Total;
    return New;
  }

  const std::vector<GadgetReport> &unique() const { return Unique; }
  uint64_t totalHits() const { return Total; }

  /// Count of unique gadgets matching (Ctrl, Chan).
  size_t count(Controllability Ctrl, Channel Chan) const {
    size_t N = 0;
    for (const GadgetReport &R : Unique)
      if (R.Ctrl == Ctrl && R.Chan == Chan)
        ++N;
    return N;
  }

  void clear() {
    Seen.clear();
    Unique.clear();
    Total = 0;
  }

  /// Invoked on every newly discovered unique gadget (the fuzzer's
  /// "custom signal" channel of Section 6.2.3).
  std::function<void(const GadgetReport &)> OnNewGadget;

private:
  std::map<std::tuple<uint64_t, Channel, Controllability>, GadgetReport> Seen;
  std::vector<GadgetReport> Unique;
  uint64_t Total = 0;
};

} // namespace runtime
} // namespace teapot

#endif // TEAPOT_RUNTIME_REPORT_H
