//===- runtime/Report.h - Gadget reports --------------------------*- C++ -*-===//
///
/// \file
/// Gadget report records and the deduplicating sink (Section 6.2.3).
/// Reports are keyed by the *original-binary* address of the transmitting
/// instruction, the leaking side channel, and the attacker-controllability
/// class — the same categorization Table 4 uses (e.g. "User-Cache",
/// "Massage-Port").
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_RUNTIME_REPORT_H
#define TEAPOT_RUNTIME_REPORT_H

#include "support/Error.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace teapot {
namespace runtime {

/// Leaking side channel.
enum class Channel : uint8_t {
  MDS,   // secret loaded into a register (microarchitectural data sampling)
  Cache, // secret used to compose a dereferenced pointer
  Port,  // secret influences a conditional branch (port contention)
  Asan,  // raw speculative out-of-bounds access (SpecFuzz-style policy)
};

/// Attacker controllability of the access that produced the secret.
enum class Controllability : uint8_t {
  User,    // attacker-directly controlled (tainted user input)
  Massage, // attacker-indirectly controlled (speculative OOB derived)
  Unknown, // policy without DIFT (SpecFuzz baseline)
};

const char *channelName(Channel C);
const char *controllabilityName(Controllability C);

/// Inverse of channelName / controllabilityName (exact match on the
/// printed spelling, e.g. "Cache", "ASan", "Massage") — the parsers the
/// JSON scan-result reader uses. Unknown names are diagnosed errors.
Expected<Channel> channelFromName(std::string_view Name);
Expected<Controllability> controllabilityFromName(std::string_view Name);

struct GadgetReport {
  /// Original-binary address of the transmitting instruction; for
  /// artificially injected gadgets this is the injector's synthetic site
  /// marker.
  uint64_t Site = 0;
  Channel Chan = Channel::MDS;
  Controllability Ctrl = Controllability::User;
  /// Branch site id of the innermost mispredicted branch (context).
  uint32_t BranchId = 0;
  /// Speculation nesting depth at detection time.
  uint8_t Depth = 0;

  std::string describe() const;

  bool operator==(const GadgetReport &O) const = default;
};

/// The canonical JSON form of a gadget record, shared by the
/// teapot.scan.v1 result, the teapot.corpus.v1 snapshot, and the diff
/// report: {"site", "channel", "controllability", "branch", "depth"},
/// in that key order, enums as their printed names.
json::Value gadgetToJson(const GadgetReport &R);
Expected<GadgetReport> gadgetFromJson(const json::Value &V);

/// Deduplicating report collector. Uniqueness key: (Site, Chan, Ctrl).
class ReportSink {
public:
  /// The uniqueness key and the ordering key of unique().
  using Key = std::tuple<uint64_t, Channel, Controllability>;
  static Key keyOf(const GadgetReport &R) {
    return std::make_tuple(R.Site, R.Chan, R.Ctrl);
  }

  /// Returns true if the report was new.
  bool report(const GadgetReport &R) {
    auto Pos = std::lower_bound(Unique.begin(), Unique.end(), R,
                                [](const GadgetReport &A,
                                   const GadgetReport &B) {
                                  return keyOf(A) < keyOf(B);
                                });
    bool New = Pos == Unique.end() || keyOf(*Pos) != keyOf(R);
    if (New) {
      Unique.insert(Pos, R);
      if (OnNewGadget)
        OnNewGadget(R);
    }
    ++Total;
    return New;
  }

  /// The unique reports in ascending (Site, Chan, Ctrl) key order —
  /// *not* discovery order. The ordering is part of the API contract:
  /// it makes printed reports, serialized scan results, and GadgetSink
  /// merges diff-able across runs and worker counts regardless of which
  /// execution found a gadget first. (Discovery order is still
  /// observable through the OnNewGadget hook.)
  const std::vector<GadgetReport> &unique() const {
    assert(std::is_sorted(Unique.begin(), Unique.end(),
                          [](const GadgetReport &A, const GadgetReport &B) {
                            return keyOf(A) < keyOf(B);
                          }) &&
           "unique() must stay key-ordered");
    return Unique;
  }
  uint64_t totalHits() const { return Total; }

  /// Count of unique gadgets matching (Ctrl, Chan).
  size_t count(Controllability Ctrl, Channel Chan) const {
    size_t N = 0;
    for (const GadgetReport &R : Unique)
      if (R.Ctrl == Ctrl && R.Chan == Chan)
        ++N;
    return N;
  }

  void clear() {
    Unique.clear();
    Total = 0;
  }

  /// Restores a snapshot taken from unique()/totalHits() — the campaign
  /// resume path. \p Reports must be key-ordered and key-unique (the
  /// unique() contract); violations are diagnosed errors. OnNewGadget
  /// does not fire: these gadgets were discovered before the snapshot.
  Error restore(std::vector<GadgetReport> Reports, uint64_t TotalHits) {
    for (size_t I = 1; I < Reports.size(); ++I)
      if (!(keyOf(Reports[I - 1]) < keyOf(Reports[I])))
        return makeError("report sink restore: records are not in "
                         "strictly ascending key order");
    Unique = std::move(Reports);
    Total = TotalHits;
    return Error::success();
  }

  /// Invoked on every newly discovered unique gadget (the fuzzer's
  /// "custom signal" channel of Section 6.2.3).
  std::function<void(const GadgetReport &)> OnNewGadget;

private:
  /// Maintained in key order by report() — both the dedup index (via
  /// lower_bound) and the stable unique() sequence; see unique().
  std::vector<GadgetReport> Unique;
  uint64_t Total = 0;
};

} // namespace runtime
} // namespace teapot

#endif // TEAPOT_RUNTIME_REPORT_H
