//===- runtime/Dift.cpp ---------------------------------------------------===//

#include "runtime/Dift.h"

#include <cstring>

using namespace teapot;
using namespace teapot::isa;
using namespace teapot::runtime;

void TagEngine::transfer(const Instruction &I) {
  switch (I.Op) {
  case Opcode::MOV:
    RegTags[I.A.R] = srcTag(I.B);
    return;
  case Opcode::LOAD:
  case Opcode::LOADS: {
    uint64_t EA = M.effectiveAddr(I.B.M);
    RegTags[I.A.R] =
        static_cast<uint8_t>(memTag(EA, I.Size) | PendingLoadExtra);
    PendingLoadExtra = 0;
    return;
  }
  case Opcode::STORE: {
    uint64_t EA = M.effectiveAddr(I.A.M);
    setMemTag(EA, I.Size, srcTag(I.B));
    return;
  }
  case Opcode::LEA:
    RegTags[I.A.R] = addrTag(I.B.M);
    return;
  case Opcode::PUSH: {
    uint64_t Slot = M.C.R[SP] - 8;
    setMemTag(Slot, 8, srcTag(I.A));
    return;
  }
  case Opcode::POP:
    RegTags[I.A.R] = memTag(M.C.R[SP], 8);
    return;
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::MUL:
  case Opcode::UDIV:
  case Opcode::UREM: {
    // Idiomatic zeroing (xor r, r / sub r, r) clears the taint.
    if ((I.Op == Opcode::XOR || I.Op == Opcode::SUB) && I.B.isReg() &&
        I.B.R == I.A.R)
      RegTags[I.A.R] = 0;
    else
      RegTags[I.A.R] |= srcTag(I.B);
    FlagsTag = RegTags[I.A.R];
    return;
  }
  case Opcode::NOT:
    return; // tag unchanged
  case Opcode::NEG:
    FlagsTag = RegTags[I.A.R];
    return;
  case Opcode::CMP:
  case Opcode::TEST:
    FlagsTag = static_cast<uint8_t>(RegTags[I.A.R] | srcTag(I.B));
    return;
  case Opcode::SET:
    RegTags[I.A.R] = FlagsTag;
    return;
  case Opcode::CMOV:
    RegTags[I.A.R] |= srcTag(I.B) | FlagsTag;
    return;
  case Opcode::CALL:
  case Opcode::CALLI:
    // The pushed return address is a program constant.
    setMemTag(M.C.R[SP] - 8, 8, 0);
    return;
  case Opcode::EXT:
    // External functions return untainted data in r0; input tainting is
    // handled by the read_input hook.
    RegTags[R0] = 0;
    return;
  case Opcode::JMP:
  case Opcode::JCC:
  case Opcode::JMPI:
  case Opcode::RET:
  case Opcode::NOP:
  case Opcode::MARKERNOP:
  case Opcode::FENCE:
  case Opcode::HALT:
  case Opcode::INTR:
  case Opcode::NumOpcodes:
    return;
  }
}

void TagEngine::runProgram(const ir::TagProgram &P) {
  // Inputs are immutable: entry register tags (latched here) and
  // single-assignment temporaries, so the trailing RegSetMask/FlagsMask
  // ops form a true parallel assignment.
  uint8_t Entry[isa::NumRegs];
  memcpy(Entry, RegTags, sizeof(Entry));
  uint8_t Tmp[ir::NumTagTemps] = {};

  auto UnionMask = [&](uint32_t Mask) {
    uint8_t T = 0;
    for (unsigned R = 0; R != isa::NumRegs; ++R)
      if (Mask & (1u << R))
        T |= Entry[R];
    for (unsigned I = 0; I != ir::NumTagTemps; ++I)
      if (Mask & (1u << (16 + I)))
        T |= Tmp[I];
    return T;
  };

  for (const ir::TagMicroOp &Op : P) {
    switch (Op.K) {
    case ir::TagMicroOp::LoadTmp:
      assert(Op.Dst < ir::NumTagTemps && "temp index out of range");
      Tmp[Op.Dst] = memTag(M.effectiveAddr(Op.Mem), Op.Size);
      break;
    case ir::TagMicroOp::StoreMask:
      setMemTag(M.effectiveAddr(Op.Mem), Op.Size, UnionMask(Op.Mask));
      break;
    case ir::TagMicroOp::RegSetMask:
      RegTags[Op.Dst] = UnionMask(Op.Mask);
      break;
    case ir::TagMicroOp::FlagsMask:
      FlagsTag = UnionMask(Op.Mask);
      break;
    }
  }
}
