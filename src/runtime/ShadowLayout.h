//===- runtime/ShadowLayout.h - ASan & DIFT shadow layout ---------*- C++ -*-===//
///
/// \file
/// Shadow-memory address arithmetic, reproducing Tables 1 and 2 of the
/// paper exactly.
///
/// ASan shadow (Table 1): one shadow byte per 8 application bytes at
/// (Addr >> 3) + 0x7fff8000 — the standard x86-64 ASan mapping. With it,
/// user regions are LowMem [0, 0x7fff7fff] and HighMem
/// [0x10007fff8000, 0x7fffffffffff].
///
/// DIFT tag shadow (Table 2): byte-to-byte tags at Addr XOR (1 << 45).
/// Carving the tag regions out of HighMem shrinks it to
/// [0x600000000000, 0x7fffffffffff] and maps
///   HighMem -> HighTag [0x400000000000, 0x5fffffffffff]
///   LowMem  -> LowTag  [0x200000000000, 0x20007fff7fff]
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_RUNTIME_SHADOWLAYOUT_H
#define TEAPOT_RUNTIME_SHADOWLAYOUT_H

#include "obj/Layout.h"

#include <cstdint>

namespace teapot {
namespace runtime {

// --- ASan (Table 1) -------------------------------------------------------
inline constexpr uint64_t AsanShadowOffset = 0x7fff8000ULL;
inline constexpr unsigned AsanShadowScale = 3; // 8 bytes per shadow byte

inline constexpr uint64_t asanShadowAddr(uint64_t Addr) {
  return (Addr >> AsanShadowScale) + AsanShadowOffset;
}

/// ASan shadow byte magic values (subset of LLVM's).
inline constexpr uint8_t AsanHeapRedzone = 0xfa;
inline constexpr uint8_t AsanHeapFreed = 0xfd;
inline constexpr uint8_t AsanStackRetAddr = 0xf1;

// --- DIFT tag shadow (Table 2) ---------------------------------------------
inline constexpr uint64_t TagFlipBit = 1ULL << 45;

inline constexpr uint64_t tagShadowAddr(uint64_t Addr) {
  return Addr ^ TagFlipBit;
}

inline constexpr uint64_t HighTagStart = 0x4000'0000'0000ULL;
inline constexpr uint64_t HighTagEnd = 0x5fff'ffff'ffffULL;
inline constexpr uint64_t LowTagStart = 0x2000'0000'0000ULL;
inline constexpr uint64_t LowTagEnd = 0x2000'7fff'7fffULL;

// --- Tag bits ---------------------------------------------------------------
/// One tag byte per data byte; bits follow the Kasper policy roles. The
/// two secret bits keep the provenance (which controllability class
/// produced the secret) so reports can be categorized as User-* vs
/// Massage-* the way Table 4 does.
enum TagBits : uint8_t {
  TagUser = 1 << 0,          // attacker-directly controlled
  TagMassage = 1 << 1,       // attacker-indirectly controlled (derived
                             // from speculative out-of-bounds data)
  TagSecretUser = 1 << 2,    // secret via a user-controlled OOB access
  TagSecretMassage = 1 << 3, // secret via a massaged pointer
};
inline constexpr uint8_t TagSecretMask = TagSecretUser | TagSecretMassage;

static_assert(tagShadowAddr(obj::HighMemStart) == HighTagStart,
              "Table 2: HighMem must map onto HighTag");
static_assert(tagShadowAddr(obj::LowMemStart) == LowTagStart,
              "Table 2: LowMem must map onto LowTag");
static_assert(tagShadowAddr(obj::LowMemEnd) == LowTagEnd,
              "Table 2: LowMem end must map onto LowTag end");

} // namespace runtime
} // namespace teapot

#endif // TEAPOT_RUNTIME_SHADOWLAYOUT_H
