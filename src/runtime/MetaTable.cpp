//===- runtime/MetaTable.cpp ----------------------------------------------===//

#include "runtime/MetaTable.h"

#include "support/ByteStream.h"

using namespace teapot;
using namespace teapot::runtime;

std::vector<uint8_t> MetaTable::serialize() const {
  ByteWriter W;
  W.u64(RealTextStart);
  W.u64(RealTextEnd);
  W.u64(ShadowTextStart);
  W.u64(ShadowTextEnd);
  W.u64(SimFlagAddr);

  W.u32(static_cast<uint32_t>(Trampolines.size()));
  for (uint64_t T : Trampolines)
    W.u64(T);

  W.u32(static_cast<uint32_t>(FuncMap.size()));
  for (const auto &[Real, Shadow] : FuncMap) {
    W.u64(Real);
    W.u64(Shadow);
  }

  W.u32(static_cast<uint32_t>(MarkerSites.size()));
  for (uint64_t A : MarkerSites)
    W.u64(A);

  W.u32(static_cast<uint32_t>(MarkerResume.size()));
  for (uint64_t A : MarkerResume)
    W.u64(A);

  W.u32(static_cast<uint32_t>(TagPrograms.size()));
  for (const ir::TagProgram &P : TagPrograms) {
    W.u32(static_cast<uint32_t>(P.size()));
    for (const ir::TagMicroOp &Op : P) {
      W.u8(Op.K);
      W.u8(Op.Dst);
      W.u8(Op.Size);
      W.u32(Op.Mask);
      W.u8(Op.Mem.Base);
      W.u8(Op.Mem.Index);
      W.u8(Op.Mem.Scale);
      W.u64(static_cast<uint64_t>(Op.Mem.Disp));
    }
  }

  W.u32(NumNormalGuards);
  W.u32(NumSpecGuards);
  return std::move(W.Out);
}

Expected<MetaTable> MetaTable::deserialize(
    const std::vector<uint8_t> &Bytes) {
  ByteReader R(Bytes);
  MetaTable M;
  if (!R.u64(M.RealTextStart) || !R.u64(M.RealTextEnd) ||
      !R.u64(M.ShadowTextStart) || !R.u64(M.ShadowTextEnd) ||
      !R.u64(M.SimFlagAddr))
    return makeError("truncated meta header");

  uint32_t N;
  if (!R.u32(N))
    return makeError("truncated trampoline table");
  M.Trampolines.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    if (!R.u64(M.Trampolines[I]))
      return makeError("truncated trampoline table");

  if (!R.u32(N))
    return makeError("truncated function map");
  for (uint32_t I = 0; I != N; ++I) {
    uint64_t Real, Shadow;
    if (!R.u64(Real) || !R.u64(Shadow))
      return makeError("truncated function map");
    M.FuncMap[Real] = Shadow;
  }

  if (!R.u32(N))
    return makeError("truncated marker set");
  for (uint32_t I = 0; I != N; ++I) {
    uint64_t A;
    if (!R.u64(A))
      return makeError("truncated marker set");
    M.MarkerSites.insert(A);
  }

  if (!R.u32(N))
    return makeError("truncated marker resume table");
  M.MarkerResume.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    if (!R.u64(M.MarkerResume[I]))
      return makeError("truncated marker resume table");

  if (!R.u32(N))
    return makeError("truncated tag program table");
  M.TagPrograms.resize(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t Len;
    if (!R.u32(Len))
      return makeError("truncated tag program %u", I);
    M.TagPrograms[I].resize(Len);
    for (uint32_t J = 0; J != Len; ++J) {
      ir::TagMicroOp &Op = M.TagPrograms[I][J];
      uint8_t K, Base, Index;
      uint64_t Disp;
      if (!R.u8(K) || !R.u8(Op.Dst) || !R.u8(Op.Size) || !R.u32(Op.Mask) ||
          !R.u8(Base) || !R.u8(Index) || !R.u8(Op.Mem.Scale) ||
          !R.u64(Disp))
        return makeError("truncated tag micro-op in program %u", I);
      if (K > ir::TagMicroOp::FlagsMask)
        return makeError("bad tag micro-op kind in program %u", I);
      Op.K = static_cast<ir::TagMicroOp::Kind>(K);
      Op.Mem.Base = static_cast<isa::Reg>(Base);
      Op.Mem.Index = static_cast<isa::Reg>(Index);
      Op.Mem.Disp = static_cast<int64_t>(Disp);
    }
  }

  if (!R.u32(M.NumNormalGuards) || !R.u32(M.NumSpecGuards))
    return makeError("truncated guard counts");
  return M;
}
