//===- runtime/Report.cpp -------------------------------------------------===//

#include "runtime/Report.h"

#include "support/StringUtils.h"

using namespace teapot;
using namespace teapot::runtime;

const char *runtime::channelName(Channel C) {
  switch (C) {
  case Channel::MDS:
    return "MDS";
  case Channel::Cache:
    return "Cache";
  case Channel::Port:
    return "Port";
  case Channel::Asan:
    return "ASan";
  }
  return "?";
}

const char *runtime::controllabilityName(Controllability C) {
  switch (C) {
  case Controllability::User:
    return "User";
  case Controllability::Massage:
    return "Massage";
  case Controllability::Unknown:
    return "Unknown";
  }
  return "?";
}

std::string GadgetReport::describe() const {
  return formatString("%s-%s gadget at %s (branch %u, depth %u)",
                      controllabilityName(Ctrl), channelName(Chan),
                      toHex(Site).c_str(), BranchId, Depth);
}
