//===- runtime/Report.cpp -------------------------------------------------===//

#include "runtime/Report.h"

#include "support/StringUtils.h"

using namespace teapot;
using namespace teapot::runtime;

const char *runtime::channelName(Channel C) {
  switch (C) {
  case Channel::MDS:
    return "MDS";
  case Channel::Cache:
    return "Cache";
  case Channel::Port:
    return "Port";
  case Channel::Asan:
    return "ASan";
  }
  return "?";
}

const char *runtime::controllabilityName(Controllability C) {
  switch (C) {
  case Controllability::User:
    return "User";
  case Controllability::Massage:
    return "Massage";
  case Controllability::Unknown:
    return "Unknown";
  }
  return "?";
}

Expected<Channel> runtime::channelFromName(std::string_view Name) {
  for (Channel C : {Channel::MDS, Channel::Cache, Channel::Port,
                    Channel::Asan})
    if (Name == channelName(C))
      return C;
  return makeError("unknown channel '%.*s'", static_cast<int>(Name.size()),
                   Name.data());
}

Expected<Controllability>
runtime::controllabilityFromName(std::string_view Name) {
  for (Controllability C : {Controllability::User, Controllability::Massage,
                            Controllability::Unknown})
    if (Name == controllabilityName(C))
      return C;
  return makeError("unknown controllability '%.*s'",
                   static_cast<int>(Name.size()), Name.data());
}

std::string GadgetReport::describe() const {
  return formatString("%s-%s gadget at %s (branch %u, depth %u)",
                      controllabilityName(Ctrl), channelName(Chan),
                      toHex(Site).c_str(), BranchId, Depth);
}

json::Value runtime::gadgetToJson(const GadgetReport &R) {
  json::Value G = json::Value::object();
  G.set("site", R.Site);
  G.set("channel", channelName(R.Chan));
  G.set("controllability", controllabilityName(R.Ctrl));
  G.set("branch", R.BranchId);
  G.set("depth", static_cast<unsigned>(R.Depth));
  return G;
}

Expected<GadgetReport> runtime::gadgetFromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError("gadget record is not an object");
  GadgetReport G;
  auto GetU64 = [&](const char *Key, uint64_t Max,
                    uint64_t &Out) -> Error {
    const json::Value *M = V.find(Key);
    if (!M)
      return makeError("gadget record: missing %s", Key);
    if (!M->isUInt() || M->asUInt() > Max)
      return makeError("gadget record: %s is not an unsigned integer in "
                       "range",
                       Key);
    Out = M->asUInt();
    return Error::success();
  };
  uint64_t Branch = 0, Depth = 0;
  if (Error E = GetU64("site", UINT64_MAX, G.Site))
    return E;
  if (Error E = GetU64("branch", UINT32_MAX, Branch))
    return E;
  if (Error E = GetU64("depth", UINT8_MAX, Depth))
    return E;
  G.BranchId = static_cast<uint32_t>(Branch);
  G.Depth = static_cast<uint8_t>(Depth);
  const json::Value *Chan = V.find("channel");
  const json::Value *Ctrl = V.find("controllability");
  if (!Chan || !Chan->isString())
    return makeError("gadget record: missing or non-string channel");
  if (!Ctrl || !Ctrl->isString())
    return makeError("gadget record: missing or non-string controllability");
  auto C = channelFromName(Chan->asString());
  if (!C)
    return C.takeError();
  G.Chan = *C;
  auto CT = controllabilityFromName(Ctrl->asString());
  if (!CT)
    return CT.takeError();
  G.Ctrl = *CT;
  return G;
}
