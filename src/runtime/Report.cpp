//===- runtime/Report.cpp -------------------------------------------------===//

#include "runtime/Report.h"

#include "support/StringUtils.h"

using namespace teapot;
using namespace teapot::runtime;

const char *runtime::channelName(Channel C) {
  switch (C) {
  case Channel::MDS:
    return "MDS";
  case Channel::Cache:
    return "Cache";
  case Channel::Port:
    return "Port";
  case Channel::Asan:
    return "ASan";
  }
  return "?";
}

const char *runtime::controllabilityName(Controllability C) {
  switch (C) {
  case Controllability::User:
    return "User";
  case Controllability::Massage:
    return "Massage";
  case Controllability::Unknown:
    return "Unknown";
  }
  return "?";
}

Expected<Channel> runtime::channelFromName(std::string_view Name) {
  for (Channel C : {Channel::MDS, Channel::Cache, Channel::Port,
                    Channel::Asan})
    if (Name == channelName(C))
      return C;
  return makeError("unknown channel '%.*s'", static_cast<int>(Name.size()),
                   Name.data());
}

Expected<Controllability>
runtime::controllabilityFromName(std::string_view Name) {
  for (Controllability C : {Controllability::User, Controllability::Massage,
                            Controllability::Unknown})
    if (Name == controllabilityName(C))
      return C;
  return makeError("unknown controllability '%.*s'",
                   static_cast<int>(Name.size()), Name.data());
}

std::string GadgetReport::describe() const {
  return formatString("%s-%s gadget at %s (branch %u, depth %u)",
                      controllabilityName(Ctrl), channelName(Chan),
                      toHex(Site).c_str(), BranchId, Depth);
}
