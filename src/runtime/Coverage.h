//===- runtime/Coverage.h - Two-mode coverage tracking ------------*- C++ -*-===//
///
/// \file
/// Section 6.3: Spectre gadget detection distinguishes *normal-execution*
/// coverage from *speculation-simulation* coverage, and Teapot tracks
/// them separately through a SanitizerCoverage-style guard interface.
///
/// Speculative coverage uses the paper's lazy optimization: visiting a
/// Shadow-Copy block only appends its guard id to a buffer; the real
/// counters are updated when the rollback begins, eliminating the
/// register-preservation overhead of calling the coverage function from
/// every speculative block.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_RUNTIME_COVERAGE_H
#define TEAPOT_RUNTIME_COVERAGE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace teapot {
namespace runtime {

class Coverage {
public:
  void init(uint32_t NumNormal, uint32_t NumSpec) {
    Normal.assign(NumNormal, 0);
    Spec.assign(NumSpec, 0);
    LazyBuf.clear();
  }

  void hitNormal(uint32_t Id) {
    if (Id < Normal.size() && Normal[Id] != 0xff)
      ++Normal[Id];
  }

  /// Eager speculative hit (ablation mode).
  void hitSpec(uint32_t Id) {
    if (Id < Spec.size() && Spec[Id] != 0xff)
      ++Spec[Id];
  }

  /// Lazy speculative hit: note the guard id only.
  void noteSpecLazy(uint32_t Id) { LazyBuf.push_back(Id); }

  size_t lazyMark() const { return LazyBuf.size(); }

  /// Flushes buffered guard ids recorded after \p Mark into the real
  /// counters and truncates the buffer (called as the rollback begins).
  void flushLazyFrom(size_t Mark) {
    for (size_t I = Mark; I < LazyBuf.size(); ++I)
      hitSpec(LazyBuf[I]);
    LazyBuf.resize(Mark);
  }

  /// Restores accumulated hit maps captured from normalMap()/specMap()
  /// (the campaign-resume path). Returns false when the geometry does
  /// not match the init() guard counts — the snapshot belongs to a
  /// different rewrite of the binary.
  bool restoreMaps(std::vector<uint8_t> NormalMap,
                   std::vector<uint8_t> SpecMap) {
    if (NormalMap.size() != Normal.size() || SpecMap.size() != Spec.size())
      return false;
    Normal = std::move(NormalMap);
    Spec = std::move(SpecMap);
    LazyBuf.clear();
    return true;
  }

  /// Number of guards hit at least once.
  size_t normalCovered() const { return covered(Normal); }
  size_t specCovered() const { return covered(Spec); }

  const std::vector<uint8_t> &normalMap() const { return Normal; }
  const std::vector<uint8_t> &specMap() const { return Spec; }

private:
  static size_t covered(const std::vector<uint8_t> &V) {
    size_t N = 0;
    for (uint8_t B : V)
      N += B != 0;
    return N;
  }

  std::vector<uint8_t> Normal;
  std::vector<uint8_t> Spec;
  std::vector<uint32_t> LazyBuf;
};

} // namespace runtime
} // namespace teapot

#endif // TEAPOT_RUNTIME_COVERAGE_H
