//===- runtime/MetaTable.h - Rewriter/runtime side tables ---------*- C++ -*-===//
///
/// \file
/// The ".teapot.meta" blob the static rewriter attaches to instrumented
/// binaries and the runtime parses at load time — Teapot's analogue of
/// added ELF sections. It carries:
///
///   - the Real/Shadow text ranges (code-pointer classification),
///   - the branch-site table (id -> trampoline address),
///   - the real->shadow function entry map (indirect-call redirection),
///   - the marker-site set (valid real-copy return points, Listing 4),
///   - serialized per-block tag-transfer programs (Real Copy async DIFT),
///   - coverage guard counts (normal + speculative).
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_RUNTIME_METATABLE_H
#define TEAPOT_RUNTIME_METATABLE_H

#include "ir/IR.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace teapot {
namespace runtime {

inline constexpr const char *MetaSectionName = ".teapot.meta";

struct MetaTable {
  uint64_t RealTextStart = 0;
  uint64_t RealTextEnd = 0;
  uint64_t ShadowTextStart = 0;
  uint64_t ShadowTextEnd = 0;
  uint64_t SimFlagAddr = 0;

  /// Branch site id -> trampoline address.
  std::vector<uint64_t> Trampolines;
  /// Real function entry -> shadow function entry.
  std::map<uint64_t, uint64_t> FuncMap;
  /// Real-copy addresses carrying the special marker NOP (valid targets
  /// of indirect control transfers during simulation).
  std::set<uint64_t> MarkerSites;
  /// Marker id -> Shadow-Copy resume address (the marker block's shadow
  /// counterpart), used by the MarkerCheck redirect.
  std::vector<uint64_t> MarkerResume;
  /// Per-block tag transfer programs (TagBlock payload indexes these).
  std::vector<ir::TagProgram> TagPrograms;

  uint32_t NumNormalGuards = 0;
  uint32_t NumSpecGuards = 0;

  bool inShadowText(uint64_t Addr) const {
    return Addr >= ShadowTextStart && Addr < ShadowTextEnd;
  }
  bool inRealText(uint64_t Addr) const {
    return Addr >= RealTextStart && Addr < RealTextEnd;
  }

  std::vector<uint8_t> serialize() const;
  static Expected<MetaTable> deserialize(const std::vector<uint8_t> &Bytes);
};

} // namespace runtime
} // namespace teapot

#endif // TEAPOT_RUNTIME_METATABLE_H
