//===- runtime/SpecRuntime.h - Teapot runtime library -------------*- C++ -*-===//
///
/// \file
/// The runtime half of Teapot (Sections 6.1-6.3): the library an
/// instrumented binary is linked against. It implements
///
///   - checkpoint / memory log / rollback (Section 6.1),
///   - conditional restore points (250-instruction reorder-buffer budget)
///     and unconditional restore points (external calls, serializing
///     instructions, unresolvable indirect targets, guest faults),
///   - nested speculation with the SpecFuzz / SpecTaint / hybrid
///     exploration heuristics,
///   - binary ASan (heap redzones via hooked malloc/free, return-address
///     shadow poisoning at stack-frame granularity),
///   - binary DIFT + the Kasper gadget policy (Figure 6): User / Massage
///     taints, MDS / Cache / Port reports,
///   - two-mode coverage with the lazy speculative-coverage buffer.
///
/// One instance attaches to one vm::Machine and handles all INTR
/// instructions the static rewriter inserted.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_RUNTIME_SPECRUNTIME_H
#define TEAPOT_RUNTIME_SPECRUNTIME_H

#include "runtime/Coverage.h"
#include "runtime/Dift.h"
#include "obj/Layout.h"
#include "runtime/MetaTable.h"
#include "runtime/Report.h"
#include "vm/Machine.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace teapot {
namespace runtime {

/// Nested-speculation exploration heuristic (Section 6.1).
enum class NestingPolicy : uint8_t {
  Off,      // no nested simulation (the Figure 7 performance configuration)
  SpecFuzz, // per-branch encounter counts gradually unlock deeper nesting
  SpecTaint, // depth-first, but each branch enters simulation at most
             // `SpecTaintTries` times
  Hybrid,   // Teapot: full depth for the first `SpecTaintTries` runs of a
            // branch, SpecFuzz-style afterwards
};

struct RuntimeOptions {
  /// Master switch: when false, StartSim never fires (measures the pure
  /// normal-execution instrumentation overhead).
  bool SimulateSpeculation = true;
  /// Reorder-buffer budget: simulated transient instructions per
  /// speculation (250, as in prior work).
  unsigned SpecWindow = 250;
  /// Maximum misprediction nesting (6: gadgets guarded by more branches
  /// are considered unexploitable; see the threat model).
  unsigned MaxDepth = 6;
  NestingPolicy Nesting = NestingPolicy::Hybrid;
  unsigned SpecTaintTries = 5;
  /// Kasper policy with DIFT. When false, the runtime degrades to the
  /// SpecFuzz policy: every speculative ASan violation is a gadget.
  bool EnableDift = true;
  /// Track attacker-indirect (Massage) taints. Disabled for the
  /// artificial-gadget experiment (Section 7.2).
  bool MassagePolicy = true;
  /// Tag read_input() data as attacker-directly controlled.
  bool TaintInput = true;
  /// Extra region tagged User at every run start (the artificial
  /// experiment's designated "user input" variable).
  uint64_t ExtraTaintAddr = 0;
  uint64_t ExtraTaintLen = 0;
  /// Lazy speculative coverage (Section 6.3 optimization).
  bool LazySpecCoverage = true;
  /// Preserve full AVX state in checkpoints (off: SSE only), Section 6.1.
  bool AvxCheckpoint = false;
  /// Runaway-rollback watchdog: when an execution performs this many
  /// rollbacks, simulation is disabled for the remainder of that run
  /// (Stats.WatchdogTrips counts the trips). 0 disables the watchdog.
  /// The trip is a pure function of the per-run rollback count, so it
  /// never perturbs cross-run determinism.
  uint64_t MaxRollbacksPerRun = 0;
};

struct RuntimeStats {
  uint64_t Simulations = 0;
  uint64_t NestedSimulations = 0;
  uint64_t Rollbacks[static_cast<size_t>(
      isa::RollbackReason::NumReasons)] = {};
  uint64_t AsanViolations = 0;
  uint64_t SkippedByHeuristic = 0;
  unsigned MaxDepthSeen = 0;
  /// Executions whose rollback count hit RuntimeOptions::MaxRollbacksPerRun.
  uint64_t WatchdogTrips = 0;

  // Hot-path accounting, accumulated once per execution from the VM's
  // per-run counters (accumulateHotPathStats). Diagnostic only — the
  // split-TLB and intrinsic-fast-path totals explain where executions
  // spend their time, and vary legitimately between engines.
  uint64_t TlbGuestHits = 0;
  uint64_t TlbRuntimeHits = 0;
  uint64_t TlbSlowPathCalls = 0;
  uint64_t IntrinsicFastPathHits = 0;
};

class SpecRuntime : public vm::IntrinsicHandler {
public:
  SpecRuntime(vm::Machine &M, MetaTable Meta, RuntimeOptions Opts);
  /// Withdraws the published intrinsic fast-path view (it points into
  /// this runtime's coverage map).
  ~SpecRuntime() override;

  /// Installs every hook on the machine (intrinsics, fault handler, ASan
  /// allocator, input-taint hook) and writes the in-simulation flag into
  /// guest memory. Call once after Machine::loadObject, before
  /// captureBaseline().
  void attach();

  /// Per-run state reset. Heuristic counters, coverage, and reports
  /// persist across runs (they drive the fuzzing campaign); speculation
  /// state does not.
  void resetRun();

  /// Serializes every piece of state that persists *across* runs — the
  /// per-branch nesting-heuristic counters, the accumulated two-mode
  /// coverage maps, the report sink, and the runtime statistics. A
  /// fresh SpecRuntime over the same rewrite result that loadState()s
  /// this value behaves byte-identically to the original from the next
  /// execution on: the campaign snapshot format (teapot.corpus.v1)
  /// embeds it per worker. Call between runs only (never mid-simulation).
  json::Value saveState() const;
  Error loadState(const json::Value &V);

  bool onIntrinsic(vm::Machine &M, const isa::Instruction &I) override;
  bool onIntrinsicResolved(vm::Machine &M, const isa::Instruction &I,
                           const isa::Instruction *NextReal) override;

  /// Folds the Machine's per-run hot-path counters (split-TLB hit /
  /// slow-path totals, inline intrinsic retires) into Stats. Call once
  /// per execution, after the run finishes — the Machine resets the
  /// underlying counters at every resetToBaseline.
  void accumulateHotPathStats();

  bool inSimulation() const { return !Checkpoints.empty(); }
  unsigned depth() const {
    return static_cast<unsigned>(Checkpoints.size());
  }

  ReportSink Reports;
  Coverage Cov;
  RuntimeStats Stats;
  const MetaTable &meta() const { return Meta; }
  TagEngine &tags() { return Tags; }

private:
  struct MemLogEntry {
    uint64_t Addr;
    uint8_t Size;
    uint64_t OldBytes;
  };

  struct Checkpoint {
    vm::CPU CPU; // PC = resume point (the branch instruction itself)
    uint32_t BranchId = 0;
    size_t MemLogMark = 0;
    size_t TagLogMark = 0;
    size_t CovMark = 0;
    uint8_t RegTags[isa::NumRegs] = {};
    uint8_t FlagsTag = 0;
    uint8_t PendingLoadExtra = 0;
    /// Simulated vector-state preservation (SSE 512B / AVX 2KiB); the
    /// copy cost is the point of the checkpoint-width ablation.
    std::vector<uint8_t> VecState;
  };

  vm::Machine &M;
  MetaTable Meta;
  RuntimeOptions Opts;
  TagEngine Tags;

  std::vector<Checkpoint> Checkpoints;
  std::vector<MemLogEntry> MemLog;
  uint64_t SpecInsts = 0; // transient instructions since the outermost start

  // Runaway-rollback watchdog (per-run; reset by resetRun).
  uint64_t RollbacksThisRun = 0;
  bool WatchdogTripped = false;

  // Per-branch heuristic state (persists across runs).
  std::vector<uint32_t> BranchEncounters;
  std::vector<uint32_t> BranchSimulations;

  // Dummy vector-register file backing the checkpoint copies.
  uint8_t VecRegs[2048] = {};

  // ASan allocator state (reset per run; the program re-executes its
  // startup allocations on every run).
  std::unordered_map<uint64_t, uint64_t> AllocSizes;
  uint64_t HeapCursor = obj::HeapBase;

  bool shouldSimulate(uint32_t BranchId, unsigned Depth);
  void startSimulation(uint32_t BranchId);
  void rollback(isa::RollbackReason Reason);
  void logMemWrite(uint64_t Addr, unsigned Size);
  /// Records a shadow byte in the memory log (Size==0 entries).
  void logShadowByte(uint64_t ShadowAddr);
  bool asanPoisoned(uint64_t Addr, unsigned Size) const;
  void poisonShadow(uint64_t Addr, unsigned Size, uint8_t Magic, bool Log);
  void reportGadget(uint64_t Site, Channel Chan, Controllability Ctrl);
  void handleTaintSink(uint64_t Site, const isa::MemRef &Mem, unsigned Size,
                       bool IsWrite);
  uint64_t installedMalloc(uint64_t Size);
  void installedFree(uint64_t Ptr);

  /// Publishes the intrinsic fast-path view (vm::IntrinsicFastPath):
  /// the per-mode no-op masks derived from Opts, and the normal-mode
  /// coverage map for the CovGuard saturation probe. Re-run whenever
  /// the coverage vector can have moved (attach, loadState).
  void publishFastPath();

  /// The simulation flag lives in guest memory (the rewriter's
  /// single-copy guards read it) *and* in the published fast-path view
  /// (the engines' inline mask selector); this is the single transition
  /// point that keeps both in sync.
  void writeSimFlag(uint64_t V) {
    M.Mem.writeUnsigned(Meta.SimFlagAddr, V, 8);
    M.FastPath.InSim = static_cast<uint32_t>(V);
  }
};

} // namespace runtime
} // namespace teapot

#endif // TEAPOT_RUNTIME_SPECRUNTIME_H
