//===- support/Error.h - Lightweight error handling -------------*- C++ -*-===//
//
// Part of the Teapot reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-flavoured recoverable error handling without exceptions.
///
/// Library code returns `Expected<T>` (a value or an error message) or
/// `Error` (success or an error message). Tool code may use `ExitOnError`
/// style helpers in examples; library code propagates.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_ERROR_H
#define TEAPOT_SUPPORT_ERROR_H

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace teapot {

/// A recoverable error: either success or a diagnostic message.
///
/// Unlike llvm::Error this does not enforce checking at destruction time;
/// it is a plain value type. The message style follows the LLVM guideline:
/// lowercase first letter, no trailing period.
class Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure value carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Message = std::move(Message);
    return E;
  }

  /// True if this represents a failure.
  explicit operator bool() const { return Message.has_value(); }

  /// Returns the diagnostic message; only valid on failure.
  const std::string &message() const {
    assert(Message && "message() on a success value");
    return *Message;
  }

private:
  Error() = default;
  std::optional<std::string> Message;
};

/// Builds a failure Error from a printf-style format string.
Error makeError(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// The one exception type the stack throws on purpose: a fault injected
/// at a named site (support/FaultInjector.h), or a hostile-target
/// condition that cannot be expressed as an Expected return because it
/// unwinds through code that does not propagate errors (a fuzz target's
/// execute()). The campaign layer contains it: an escaping TeapotError
/// quarantines the offending input instead of killing the campaign
/// (docs/ROBUSTNESS.md).
///
/// what() is the *fault signature* — it must be a deterministic function
/// of the fault, never of wall-clock state or hit counters, so a
/// quarantined input replays the identical signature.
class TeapotError : public std::exception {
public:
  TeapotError(std::string Site, std::string Message)
      : Site(std::move(Site)), Message(std::move(Message)) {}

  const char *what() const noexcept override { return Message.c_str(); }
  /// The fault site that raised this ("worker.execute", ...), or "" for
  /// conditions not tied to an injection site.
  const std::string &site() const { return Site; }

private:
  std::string Site;
  std::string Message;
};

/// Either a value of type T or an Error.
///
/// Boolean conversion follows llvm::Expected: true means success.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Error Err) : Err(std::move(Err)) {
    assert(this->Err && "constructing Expected from a success Error");
  }

  explicit operator bool() const { return Value.has_value(); }

  T &get() {
    assert(Value && "get() on an error value");
    return *Value;
  }
  const T &get() const {
    assert(Value && "get() on an error value");
    return *Value;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Extracts the error; only valid on failure.
  Error takeError() {
    assert(!Value && "takeError() on a success value");
    return std::move(*Err);
  }

  /// Returns the error message; only valid on failure.
  const std::string &message() const {
    assert(Err && *Err && "message() on a success value");
    return Err->message();
  }

private:
  std::optional<T> Value;
  std::optional<Error> Err;
};

/// Aborts with \p Message. Used for violated invariants that must be
/// diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Unwraps an Expected that the caller knows cannot fail.
template <typename T> T cantFail(Expected<T> ValOrErr) {
  if (!ValOrErr)
    reportFatalError("cantFail called on failure: " + ValOrErr.message());
  return std::move(ValOrErr.get());
}

/// Asserts that an Error is a success value.
inline void cantFail(Error Err) {
  if (Err)
    reportFatalError("cantFail called on failure: " + Err.message());
}

namespace support {

/// Tool-side error sink: unwraps Expected<T>/Error results, and on
/// failure prints `<banner><message>` to stderr and exits non-zero.
/// Replaces the per-tool `if (!X) { fprintf(stderr, ...); return 1; }`
/// blocks; library code keeps propagating Expected/Error as before.
///
///   support::ExitOnError Exit("scan_cots_binary: ");
///   auto Bin = Exit(lang::compile(Src));
class ExitOnError {
public:
  explicit ExitOnError(std::string Banner = "") : Banner(std::move(Banner)) {}

  template <typename T> T operator()(Expected<T> ValOrErr) const {
    if (!ValOrErr)
      die(ValOrErr.message());
    return std::move(ValOrErr.get());
  }

  void operator()(Error Err) const {
    if (Err)
      die(Err.message());
  }

private:
  [[noreturn]] void die(const std::string &Message) const {
    fprintf(stderr, "%s%s\n", Banner.c_str(), Message.c_str());
    exit(1);
  }

  std::string Banner;
};

} // namespace support
} // namespace teapot

#endif // TEAPOT_SUPPORT_ERROR_H
