//===- support/File.h - Checked file input/output ---------------*- C++ -*-===//
///
/// \file
/// Whole-file read/write with every C stdio failure surfaced as an
/// Error naming the path. Tools that emit artifacts (scan results,
/// corpus snapshots, diff reports) must go through writeFile (or check
/// fwrite/fclose themselves): an unchecked fclose is how a full disk
/// turns into a silently truncated scan.json and a green CI run.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_FILE_H
#define TEAPOT_SUPPORT_FILE_H

#include "support/Error.h"

#include <string>
#include <string_view>

namespace teapot {
namespace support {

/// Reads the whole file at \p Path. Missing/unreadable files are
/// diagnosed errors carrying the strerror text.
Expected<std::string> readFile(const std::string &Path);

/// Writes \p Contents to \p Path (truncating). Open, write, and close
/// failures are all reported — fclose is where buffered writes to a
/// full device actually fail.
Error writeFile(const std::string &Path, std::string_view Contents);

} // namespace support
} // namespace teapot

#endif // TEAPOT_SUPPORT_FILE_H
