//===- support/File.h - Checked file input/output ---------------*- C++ -*-===//
///
/// \file
/// Whole-file read/write with every C stdio failure surfaced as an
/// Error naming the path. Tools that emit artifacts (scan results,
/// corpus snapshots, diff reports) must go through writeFile (or check
/// fwrite/fclose themselves): an unchecked fclose is how a full disk
/// turns into a silently truncated scan.json and a green CI run.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_FILE_H
#define TEAPOT_SUPPORT_FILE_H

#include "support/Error.h"

#include <string>
#include <string_view>

namespace teapot {
namespace support {

class FaultInjector;

/// Reads the whole file at \p Path. Missing/unreadable files are
/// diagnosed errors carrying the strerror text. \p Faults, when set,
/// arms the `file.read` fault site (deterministic injected read
/// failures; see support/FaultInjector.h).
Expected<std::string> readFile(const std::string &Path,
                               FaultInjector *Faults = nullptr);

/// Writes \p Contents to \p Path (truncating). Open, write, and close
/// failures are all reported — fclose is where buffered writes to a
/// full device actually fail.
Error writeFile(const std::string &Path, std::string_view Contents);

/// Knobs for writeFileAtomic.
struct AtomicWriteOptions {
  /// Arms the `file.write` (body) and `file.flush` (close) fault sites.
  FaultInjector *Faults = nullptr;
  /// Total attempts on transient write/flush failures (>= 1). The
  /// backoff between attempts is a short sleep — it never influences
  /// artifact bytes, only wall time.
  unsigned MaxAttempts = 3;
};

/// Durable artifact write: writes \p Contents to `Path.tmp` and
/// rename(2)s it over \p Path, so a crash, full disk, or injected fault
/// mid-write can never leave a truncated artifact under the final name
/// — readers see the old bytes or the new bytes, nothing in between.
/// Transient failures retry up to Opts.MaxAttempts times with backoff.
///
/// When \p Path already exists and is not a regular file (/dev/null,
/// a pipe, /dev/full in the CI negative case), the write degrades to
/// the plain in-place writeFile: renaming over a device node is never
/// what the caller meant, and the device's own error semantics (ENOSPC
/// on flush) must surface unchanged.
///
/// Returns the number of retries consumed (0 = first attempt worked).
Expected<unsigned> writeFileAtomic(const std::string &Path,
                                   std::string_view Contents,
                                   const AtomicWriteOptions &Opts = {});

} // namespace support
} // namespace teapot

#endif // TEAPOT_SUPPORT_FILE_H
