//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace teapot;

std::string_view teapot::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::vector<std::string_view> teapot::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Out.push_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Out;
}

std::string teapot::toHex(uint64_t V) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "0x%llx", static_cast<unsigned long long>(V));
  return Buf;
}

std::string teapot::hexEncode(const std::vector<uint8_t> &Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (uint8_t B : Bytes) {
    Out.push_back(Digits[B >> 4]);
    Out.push_back(Digits[B & 0xf]);
  }
  return Out;
}

Expected<std::vector<uint8_t>> teapot::hexDecode(std::string_view Hex) {
  if (Hex.size() % 2 != 0)
    return makeError("hex string has odd length %zu", Hex.size());
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  std::vector<uint8_t> Out;
  Out.reserve(Hex.size() / 2);
  for (size_t I = 0; I != Hex.size(); I += 2) {
    int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return makeError("invalid hex digit '%c' at offset %zu",
                       Hi < 0 ? Hex[I] : Hex[I + 1], Hi < 0 ? I : I + 1);
    Out.push_back(static_cast<uint8_t>(Hi << 4 | Lo));
  }
  return Out;
}

bool teapot::parseInt(std::string_view S, int64_t &Out) {
  S = trim(S);
  if (S.empty())
    return false;
  bool Neg = false;
  if (S[0] == '-' || S[0] == '+') {
    Neg = S[0] == '-';
    S.remove_prefix(1);
    if (S.empty())
      return false;
  }
  int Base = 10;
  if (S.size() > 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) {
    Base = 16;
    S.remove_prefix(2);
  }
  uint64_t V = 0;
  for (char C : S) {
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (Base == 16 && C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (Base == 16 && C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return false;
    V = V * Base + Digit;
  }
  Out = Neg ? -static_cast<int64_t>(V) : static_cast<int64_t>(V);
  return true;
}

Expected<uint64_t> support::parseUInt(std::string_view S) {
  std::string_view T = trim(S);
  if (T.empty())
    return makeError("expected an unsigned integer, got empty string");
  int Base = 10;
  std::string_view Digits = T;
  if (Digits.size() > 2 && Digits[0] == '0' &&
      (Digits[1] == 'x' || Digits[1] == 'X')) {
    Base = 16;
    Digits.remove_prefix(2);
  }
  uint64_t V = 0;
  for (char C : Digits) {
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (Base == 16 && C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (Base == 16 && C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return makeError("'%.*s' is not an unsigned integer",
                       static_cast<int>(T.size()), T.data());
    uint64_t Next = V * Base + Digit;
    if (Next / Base != V || Next < static_cast<uint64_t>(Digit))
      return makeError("'%.*s' does not fit in 64 bits",
                       static_cast<int>(T.size()), T.data());
    V = Next;
  }
  return V;
}

Expected<uint64_t> support::parseUInt(std::string_view S, const char *What,
                                      uint64_t Max) {
  auto V = parseUInt(S);
  if (!V)
    return makeError("%s: %s", What, V.message().c_str());
  if (*V > Max)
    return makeError("%s: %llu exceeds the maximum %llu", What,
                     static_cast<unsigned long long>(*V),
                     static_cast<unsigned long long>(Max));
  return V;
}

std::string teapot::formatString(const char *Fmt, ...) {
  char Buf[2048];
  va_list Args;
  va_start(Args, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  return Buf;
}
