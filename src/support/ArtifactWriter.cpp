//===- support/ArtifactWriter.cpp -----------------------------------------===//

#include "support/ArtifactWriter.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace teapot;
using namespace teapot::support;

Error ArtifactWriter::probe(const std::string &Path) const {
  if (Path.empty())
    return Error::success();
  // Append mode: creates a missing file but never truncates an existing
  // artifact the campaign might still fail to replace.
  FILE *F = fopen(Path.c_str(), "ab");
  if (!F)
    return makeError("cannot open %s for writing: %s", Path.c_str(),
                     strerror(errno));
  fclose(F);
  return Error::success();
}

Error ArtifactWriter::write(const std::string &Path,
                            std::string_view Contents) {
  auto R = writeFileAtomic(Path, Contents, Opts);
  if (!R)
    return R.takeError();
  Retries += *R;
  if (OnWrite)
    OnWrite(Path, Contents.size());
  return Error::success();
}
