//===- support/ArtifactWriter.h - Tool artifact emission ----------*- C++ -*-===//
///
/// \file
/// The artifact-emission dance every tool used to hand-roll: a startup
/// probe that fails fast on unwritable destinations (before a campaign
/// burns its budget), atomic writes with fault-injection wiring and
/// retry accounting (ScanResult::IoRetries), and a per-write hook for
/// the tools' "[*] wrote ..." progress lines. One ArtifactWriter per
/// tool; scan_cots_binary, teapot_diff, teapot_diffscan, and
/// teapot_fleet all route their artifacts through it.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_ARTIFACTWRITER_H
#define TEAPOT_SUPPORT_ARTIFACTWRITER_H

#include "support/Error.h"
#include "support/File.h"

#include <functional>
#include <string>
#include <string_view>

namespace teapot {
namespace support {

class FaultInjector;

class ArtifactWriter {
public:
  ArtifactWriter() = default;

  /// Arms the file.write / file.flush fault sites of every subsequent
  /// write() (one injector per tool — the ownership discipline of
  /// support/FaultInjector.h). Null disarms.
  void setFaults(FaultInjector *F) { Opts.Faults = F; }
  /// Total attempts per write on transient failures (>= 1).
  void setMaxAttempts(unsigned N) { Opts.MaxAttempts = N; }

  /// Fail-fast destination check for a path the tool will write at
  /// exit: opens in append mode (never clobbers an existing artifact)
  /// and reports open failures — a missing directory dies at startup,
  /// not after the campaign. Empty path is a no-op success, matching
  /// the tools' optional artifact flags.
  Error probe(const std::string &Path) const;

  /// Atomic write (writeFileAtomic semantics: tmp + rename, degrading
  /// to in-place on non-regular destinations) with retry accounting and
  /// the OnWrite hook on success.
  Error write(const std::string &Path, std::string_view Contents);

  /// Atomic-write retries consumed across all write() calls — what the
  /// tools record as ScanResult::IoRetries.
  uint64_t ioRetries() const { return Retries; }

  /// Invoked after every successful write() (tools print their
  /// "[*] wrote PATH (N bytes)" line here).
  std::function<void(const std::string &Path, size_t Bytes)> OnWrite;

private:
  AtomicWriteOptions Opts;
  uint64_t Retries = 0;
};

} // namespace support
} // namespace teapot

#endif // TEAPOT_SUPPORT_ARTIFACTWRITER_H
