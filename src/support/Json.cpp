//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace teapot;
using namespace teapot::json;

void Value::set(std::string Key, Value V) {
  assert((K == Kind::Object || K == Kind::Null) && "set on non-object");
  K = Kind::Object;
  for (auto &M : Obj)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Obj.emplace_back(std::move(Key), std::move(V));
}

const Value *Value::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

std::string json::quote(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
  return Out;
}

/// Shortest of %.15g / %.17g that parses back to exactly \p D, so the
/// writer is lossless but does not pad every double to 17 digits.
static std::string formatDouble(double D) {
  if (std::isnan(D) || std::isinf(D))
    return "0"; // JSON has no NaN/Inf; scan results never produce them
  char Buf[40];
  snprintf(Buf, sizeof(Buf), "%.15g", D);
  if (strtod(Buf, nullptr) != D)
    snprintf(Buf, sizeof(Buf), "%.17g", D);
  // Ensure the text re-parses as Double, not an integer.
  if (!strpbrk(Buf, ".eE"))
    strcat(Buf, ".0");
  return Buf;
}

void Value::dumpTo(std::string &Out, bool Pretty, unsigned Depth) const {
  auto Newline = [&](unsigned D) {
    if (!Pretty)
      return;
    Out += '\n';
    Out.append(2 * D, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(I);
    break;
  case Kind::UInt:
    Out += std::to_string(U);
    break;
  case Kind::Double:
    Out += formatDouble(D);
    break;
  case Kind::String:
    Out += quote(S);
    break;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Value &V : Arr) {
      if (!First)
        Out += ',';
      First = false;
      Newline(Depth + 1);
      V.dumpTo(Out, Pretty, Depth + 1);
    }
    if (!Arr.empty())
      Newline(Depth);
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &M : Obj) {
      if (!First)
        Out += ',';
      First = false;
      Newline(Depth + 1);
      Out += quote(M.first);
      Out += Pretty ? ": " : ":";
      M.second.dumpTo(Out, Pretty, Depth + 1);
    }
    if (!Obj.empty())
      Newline(Depth);
    Out += '}';
    break;
  }
  }
}

std::string Value::dump(bool Pretty) const {
  std::string Out;
  dumpTo(Out, Pretty, 0);
  return Out;
}

// --- Parser ----------------------------------------------------------------

namespace {
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value> parseDocument() {
    Value V;
    if (Error E = parseValue(V))
      return E;
    skipWs();
    if (Pos != Text.size())
      return err("trailing characters after JSON document");
    return V;
  }

private:
  Error err(const char *Msg) {
    return makeError("json: %s at offset %zu", Msg, Pos);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(const char *W) {
    size_t N = strlen(W);
    if (Text.compare(Pos, N, W) == 0) {
      Pos += N;
      return true;
    }
    return false;
  }

  /// Containers nest by recursion; cap the depth so corrupt or hostile
  /// input (e.g. a megabyte of '[') yields a diagnosed Error rather
  /// than a stack overflow. 200 is far beyond any scan-result shape.
  static constexpr unsigned MaxDepth = 200;

  Error parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return err("unexpected end of input");
    char C = Text[Pos];
    if (C == '{' || C == '[') {
      if (Depth >= MaxDepth)
        return err("nesting too deep");
      ++Depth;
      Error E = C == '{' ? parseObject(Out) : parseArray(Out);
      --Depth;
      return E;
    }
    if (C == '"')
      return parseString(Out);
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber(Out);
    if (consumeWord("true")) {
      Out = Value(true);
      return Error::success();
    }
    if (consumeWord("false")) {
      Out = Value(false);
      return Error::success();
    }
    if (consumeWord("null")) {
      Out = Value(nullptr);
      return Error::success();
    }
    return err("unexpected character");
  }

  Error parseObject(Value &Out) {
    ++Pos; // '{'
    Out = Value::object();
    skipWs();
    if (consume('}'))
      return Error::success();
    while (true) {
      skipWs();
      Value Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return err("expected object key string");
      if (Error E = parseString(Key))
        return E;
      skipWs();
      if (!consume(':'))
        return err("expected ':' after object key");
      Value Member;
      if (Error E = parseValue(Member))
        return E;
      Out.set(Key.asString(), std::move(Member));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Error::success();
      return err("expected ',' or '}' in object");
    }
  }

  Error parseArray(Value &Out) {
    ++Pos; // '['
    Out = Value::array();
    skipWs();
    if (consume(']'))
      return Error::success();
    while (true) {
      Value Item;
      if (Error E = parseValue(Item))
        return E;
      Out.push(std::move(Item));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Error::success();
      return err("expected ',' or ']' in array");
    }
  }

  /// Reads 4 hex digits of a \u escape into \p Out.
  Error hex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return err("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char H = Text[Pos++];
      Out <<= 4;
      if (H >= '0' && H <= '9')
        Out |= H - '0';
      else if (H >= 'a' && H <= 'f')
        Out |= H - 'a' + 10;
      else if (H >= 'A' && H <= 'F')
        Out |= H - 'A' + 10;
      else
        return err("bad hex digit in \\u escape");
    }
    return Error::success();
  }

  Error parseString(Value &Out) {
    ++Pos; // opening '"'
    std::string S;
    while (true) {
      if (Pos >= Text.size())
        return err("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        break;
      if (static_cast<unsigned char>(C) < 0x20)
        return err("unescaped control character in string");
      if (C != '\\') {
        S += C;
        continue;
      }
      if (Pos >= Text.size())
        return err("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        S += '"';
        break;
      case '\\':
        S += '\\';
        break;
      case '/':
        S += '/';
        break;
      case 'n':
        S += '\n';
        break;
      case 'r':
        S += '\r';
        break;
      case 't':
        S += '\t';
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'u': {
        unsigned V = 0;
        if (Error Err = hex4(V))
          return Err;
        // Combine surrogate pairs into one code point; lone or
        // misordered surrogates would decode to invalid UTF-8, so they
        // are errors (the writer itself only emits \u00xx).
        if (V >= 0xdc00 && V <= 0xdfff)
          return err("lone low surrogate in \\u escape");
        if (V >= 0xd800 && V <= 0xdbff) {
          if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return err("high surrogate not followed by \\u escape");
          Pos += 2;
          unsigned Lo = 0;
          if (Error Err = hex4(Lo))
            return Err;
          if (Lo < 0xdc00 || Lo > 0xdfff)
            return err("high surrogate not followed by low surrogate");
          V = 0x10000 + ((V - 0xd800) << 10) + (Lo - 0xdc00);
        }
        // Encode the code point as UTF-8.
        if (V < 0x80) {
          S += static_cast<char>(V);
        } else if (V < 0x800) {
          S += static_cast<char>(0xc0 | (V >> 6));
          S += static_cast<char>(0x80 | (V & 0x3f));
        } else if (V < 0x10000) {
          S += static_cast<char>(0xe0 | (V >> 12));
          S += static_cast<char>(0x80 | ((V >> 6) & 0x3f));
          S += static_cast<char>(0x80 | (V & 0x3f));
        } else {
          S += static_cast<char>(0xf0 | (V >> 18));
          S += static_cast<char>(0x80 | ((V >> 12) & 0x3f));
          S += static_cast<char>(0x80 | ((V >> 6) & 0x3f));
          S += static_cast<char>(0x80 | (V & 0x3f));
        }
        break;
      }
      default:
        return err("unknown escape character");
      }
    }
    Out = Value(std::move(S));
    return Error::success();
  }

  Error parseNumber(Value &Out) {
    size_t Start = Pos;
    bool Neg = consume('-');
    if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
      return err("malformed number");
    size_t IntStart = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Text[IntStart] == '0' && Pos - IntStart > 1)
      return err("leading zeros are not valid JSON");
    bool Fractional = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Fractional = true;
      ++Pos;
      if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
        return err("malformed fraction");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Fractional = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
        return err("malformed exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Lit(Text.substr(Start, Pos - Start));
    errno = 0;
    if (Fractional) {
      double D = strtod(Lit.c_str(), nullptr);
      // Overflow to Inf is rejected (JSON has no Inf); underflow to 0
      // is accepted as the nearest representable value.
      if (!std::isfinite(D))
        return err("number out of range");
      Out = Value(D);
      return Error::success();
    }
    if (Neg) {
      long long V = strtoll(Lit.c_str(), nullptr, 10);
      if (errno == ERANGE)
        return err("integer out of range");
      Out = Value(static_cast<int64_t>(V));
      return Error::success();
    }
    unsigned long long V = strtoull(Lit.c_str(), nullptr, 10);
    if (errno == ERANGE)
      return err("integer out of range");
    Out = Value(static_cast<uint64_t>(V));
    return Error::success();
  }

  std::string_view Text;
  size_t Pos = 0;
  unsigned Depth = 0;
};
} // namespace

Expected<Value> json::parse(std::string_view Text) {
  return Parser(Text).parseDocument();
}
