//===- support/ByteStream.h - LE byte (de)serialization ----------*- C++ -*-===//
///
/// \file
/// Little-endian, length-prefixed byte stream reader/writer shared by the
/// metadata side-table formats.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_BYTESTREAM_H
#define TEAPOT_SUPPORT_BYTESTREAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace teapot {

class ByteWriter {
public:
  std::vector<uint8_t> Out;

  void u8(uint8_t V) { Out.push_back(V); }
  void u16(uint16_t V) {
    for (int I = 0; I != 2; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
};

class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &In) : In(In) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > In.size())
      return false;
    V = In[Pos++];
    return true;
  }
  bool u16(uint16_t &V) {
    if (Pos + 2 > In.size())
      return false;
    V = 0;
    for (int I = 0; I != 2; ++I)
      V = static_cast<uint16_t>(V | (In[Pos + I] << (I * 8)));
    Pos += 2;
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > In.size())
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(In[Pos + I]) << (I * 8);
    Pos += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > In.size())
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(In[Pos + I]) << (I * 8);
    Pos += 8;
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Pos + N > In.size())
      return false;
    S.assign(reinterpret_cast<const char *>(In.data() + Pos), N);
    Pos += N;
    return true;
  }
  bool done() const { return Pos == In.size(); }

private:
  const std::vector<uint8_t> &In;
  size_t Pos = 0;
};

} // namespace teapot

#endif // TEAPOT_SUPPORT_BYTESTREAM_H
