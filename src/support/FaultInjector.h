//===- support/FaultInjector.h - Deterministic fault injection ----*- C++ -*-===//
///
/// \file
/// Seeded, fully deterministic fault injection for hostile-target
/// hardening (docs/ROBUSTNESS.md). A FaultPlan names *fault sites* —
/// well-known strings compiled into the failure points of the stack
/// (memory page allocation, JIT arena emission, artifact I/O, worker
/// execution) — and for each site a hit-counter schedule saying which
/// occurrences fail. A FaultInjector instance pairs a plan with its own
/// per-site hit counters, so the same plan driven through the same
/// sequence of shouldFail() calls fires at exactly the same points,
/// every run: fault-injected campaigns stay byte-identical.
///
/// Plan spelling (parsed by FaultPlan::parse, semicolon-separated):
///
///   site@N[,N...]        fail exactly at the 1-based hits N, ...
///   site@every:K[:OFF]   fail every K-th hit, starting at hit OFF
///                        (default K, i.e. hits K, 2K, 3K, ...)
///
///   mem.page_alloc@3;jit.arena_alloc@every:64;worker.execute@5,12
///
/// Site names are validated against the known-site registry so a typo
/// is a parse error, not a plan that silently never fires.
///
/// Threading: one FaultInjector is owned by exactly one user (one fuzz
/// target = one campaign worker, or one tool's file layer). Counters
/// are plain integers — determinism across worker threads comes from
/// the ownership discipline, not from synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_FAULTINJECTOR_H
#define TEAPOT_SUPPORT_FAULTINJECTOR_H

#include "support/Error.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace teapot {
namespace support {

/// The fault sites compiled into the stack. Keep in sync with
/// docs/ROBUSTNESS.md's failure-mode matrix.
///
///   mem.page_alloc   vm::Memory materializing a guest page
///   jit.arena_alloc  vm::CodeBuffer bump allocation (block emission)
///   jit.arena_seal   vm::CodeBuffer endWrite (W^X re-protect)
///   file.read        support::readFile
///   file.write       support file-write body (fwrite)
///   file.flush       support file-write close/flush (fclose)
///   worker.execute   FuzzTarget::execute entry (throws TeapotError)
const std::vector<std::string> &knownFaultSites();

/// One site's schedule: explicit hits and/or a periodic rule.
struct FaultSchedule {
  /// Sorted 1-based hit counts that fail.
  std::vector<uint64_t> Hits;
  /// Periodic rule: fail when (hit - Offset) is a non-negative multiple
  /// of Every. Every == 0 disables the rule.
  uint64_t Every = 0;
  uint64_t Offset = 0;

  bool firesAt(uint64_t Hit) const;
  bool operator==(const FaultSchedule &O) const = default;
};

/// A parsed fault plan: site name -> schedule. Key-sorted (std::map) so
/// iteration and serialization are deterministic.
struct FaultPlan {
  std::map<std::string, FaultSchedule> Sites;

  bool empty() const { return Sites.empty(); }

  /// Parses the documented spelling. The empty string is the empty
  /// plan; unknown site names and malformed schedules are diagnosed
  /// errors naming the offending clause.
  static Expected<FaultPlan> parse(std::string_view Text);

  /// The canonical spelling (parse(spelling()) round-trips).
  std::string spelling() const;

  bool operator==(const FaultPlan &O) const = default;
};

/// A plan armed with live hit counters. shouldFail() is the single
/// query every instrumented failure point calls.
class FaultInjector {
public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan Plan) : Plan(std::move(Plan)) {}

  void setPlan(FaultPlan P) { Plan = std::move(P); }
  const FaultPlan &plan() const { return Plan; }

  /// True when nothing is armed and no counter has ever ticked — the
  /// state a fresh, un-fault-injected target is in (used to keep
  /// snapshots of plain campaigns byte-identical to older builds).
  bool idle() const { return Plan.empty() && Counters.empty(); }

  /// Counts one hit of \p Site and reports whether this hit fails.
  /// With an empty plan this is a counting-free no-op (false), so an
  /// un-fault-injected campaign carries no injector state and its
  /// snapshots stay byte-identical to pre-fault-injection builds.
  /// Only sites named in the plan count: hits at un-armed sites never
  /// influence firing, and some hit streams (the JIT arena's, which
  /// tracks compile activity) depend on machine lifetime rather than
  /// campaign position — counting them would break the resumed-run
  /// byte-identity that the scheduled counters exist to preserve.
  bool shouldFail(std::string_view Site);

  /// Total faults injected across all sites.
  uint64_t injectedCount() const { return Injected; }
  /// Hits observed at \p Site so far.
  uint64_t hitCount(std::string_view Site) const;

  // --- Persistence ---------------------------------------------------------
  // Counter state only (the plan is configuration, carried by the
  // ScanConfig / tool flags, and must match on resume like every other
  // campaign option). Embedded in fuzz-target snapshots so a resumed
  // campaign's injector continues at the exact stream position.
  json::Value countersToJson() const;
  Error countersFromJson(const json::Value &V);

private:
  FaultPlan Plan;
  /// Site -> hits observed. Key-sorted for stable serialization. Only
  /// sites that were actually hit appear.
  std::map<std::string, uint64_t> Counters;
  uint64_t Injected = 0;
};

} // namespace support
} // namespace teapot

#endif // TEAPOT_SUPPORT_FAULTINJECTOR_H
