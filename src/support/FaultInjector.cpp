//===- support/FaultInjector.cpp ------------------------------------------===//

#include "support/FaultInjector.h"

#include <algorithm>

using namespace teapot;
using namespace teapot::support;

const std::vector<std::string> &support::knownFaultSites() {
  static const std::vector<std::string> Sites = {
      "mem.page_alloc", "jit.arena_alloc", "jit.arena_seal",
      "file.read",      "file.write",      "file.flush",
      "worker.execute",
  };
  return Sites;
}

bool FaultSchedule::firesAt(uint64_t Hit) const {
  if (std::binary_search(Hits.begin(), Hits.end(), Hit))
    return true;
  if (Every && Hit >= Offset && (Hit - Offset) % Every == 0)
    return true;
  return false;
}

namespace {

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty() || S.size() > 19)
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

} // namespace

Expected<FaultPlan> FaultPlan::parse(std::string_view Text) {
  FaultPlan P;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Semi = Text.find(';', Pos);
    std::string_view Clause = Text.substr(
        Pos, Semi == std::string_view::npos ? std::string_view::npos
                                            : Semi - Pos);
    Pos = Semi == std::string_view::npos ? Text.size() + 1 : Semi + 1;
    if (Clause.empty())
      continue; // tolerate empty clauses ("a@1;;b@2", trailing ';')

    size_t At = Clause.find('@');
    if (At == std::string_view::npos)
      return makeError("fault plan: clause '%.*s' has no '@' (expected "
                       "site@N[,N...] or site@every:K[:OFF])",
                       static_cast<int>(Clause.size()), Clause.data());
    std::string Site(Clause.substr(0, At));
    std::string_view Sched = Clause.substr(At + 1);
    const std::vector<std::string> &Known = knownFaultSites();
    if (std::find(Known.begin(), Known.end(), Site) == Known.end()) {
      std::string Valid;
      for (const std::string &S : Known)
        Valid += (Valid.empty() ? "" : ", ") + S;
      return makeError("fault plan: unknown site '%s' (known sites: %s)",
                       Site.c_str(), Valid.c_str());
    }
    FaultSchedule &S = P.Sites[Site]; // repeated clauses merge

    if (Sched.compare(0, 6, "every:") == 0) {
      std::string_view Rest = Sched.substr(6);
      size_t Colon = Rest.find(':');
      uint64_t Every = 0, Offset = 0;
      bool HasOffset = Colon != std::string_view::npos;
      if (!parseU64(Rest.substr(0, Colon), Every) || Every == 0 ||
          (HasOffset && !parseU64(Rest.substr(Colon + 1), Offset)))
        return makeError("fault plan: bad periodic schedule in '%.*s' "
                         "(expected site@every:K[:OFF], K >= 1)",
                         static_cast<int>(Clause.size()), Clause.data());
      S.Every = Every;
      S.Offset = HasOffset ? Offset : Every;
      continue;
    }

    size_t HPos = 0;
    while (HPos <= Sched.size()) {
      size_t Comma = Sched.find(',', HPos);
      std::string_view Num = Sched.substr(
          HPos, Comma == std::string_view::npos ? std::string_view::npos
                                                : Comma - HPos);
      HPos = Comma == std::string_view::npos ? Sched.size() + 1 : Comma + 1;
      uint64_t Hit = 0;
      if (!parseU64(Num, Hit) || Hit == 0)
        return makeError("fault plan: bad hit list in '%.*s' (expected "
                         "1-based decimal hit counts)",
                         static_cast<int>(Clause.size()), Clause.data());
      S.Hits.push_back(Hit);
    }
    std::sort(S.Hits.begin(), S.Hits.end());
    S.Hits.erase(std::unique(S.Hits.begin(), S.Hits.end()), S.Hits.end());
  }
  return P;
}

std::string FaultPlan::spelling() const {
  std::string Out;
  for (const auto &[Site, S] : Sites) {
    if (!S.Hits.empty()) {
      Out += (Out.empty() ? "" : ";") + Site + "@";
      for (size_t I = 0; I != S.Hits.size(); ++I)
        Out += (I ? "," : "") + std::to_string(S.Hits[I]);
    }
    if (S.Every) {
      Out += (Out.empty() ? "" : ";") + Site +
             "@every:" + std::to_string(S.Every);
      if (S.Offset != S.Every)
        Out += ":" + std::to_string(S.Offset);
    }
  }
  return Out;
}

bool FaultInjector::shouldFail(std::string_view Site) {
  if (Plan.empty())
    return false; // no counters tick: idle() stays true, snapshots clean
  auto It = Plan.Sites.find(std::string(Site));
  if (It == Plan.Sites.end())
    return false; // un-armed site: counting-free (see the header)
  uint64_t &Hits = Counters[std::string(Site)];
  ++Hits;
  if (!It->second.firesAt(Hits))
    return false;
  ++Injected;
  return true;
}

uint64_t FaultInjector::hitCount(std::string_view Site) const {
  auto It = Counters.find(std::string(Site));
  return It == Counters.end() ? 0 : It->second;
}

json::Value FaultInjector::countersToJson() const {
  json::Value V = json::Value::object();
  json::Value C = json::Value::object();
  for (const auto &[Site, Hits] : Counters)
    C.set(Site, Hits);
  V.set("hits", std::move(C));
  V.set("injected", Injected);
  return V;
}

Error FaultInjector::countersFromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError("fault injector state: expected an object");
  const json::Value *C = V.find("hits");
  if (!C || !C->isObject())
    return makeError("fault injector state: missing hits object");
  std::map<std::string, uint64_t> NewCounters;
  for (const auto &[Site, Hits] : C->members()) {
    if (!Hits.isUInt())
      return makeError("fault injector state: hits.%s is not an unsigned "
                       "integer",
                       Site.c_str());
    NewCounters[Site] = Hits.asUInt();
  }
  const json::Value *Inj = V.find("injected");
  if (!Inj || !Inj->isUInt())
    return makeError("fault injector state: missing injected count");
  Counters = std::move(NewCounters);
  Injected = Inj->asUInt();
  return Error::success();
}
