//===- support/File.cpp ---------------------------------------------------===//

#include "support/File.h"

#include "support/FaultInjector.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <thread>

using namespace teapot;

Expected<std::string> support::readFile(const std::string &Path,
                                        FaultInjector *Faults) {
  if (Faults && Faults->shouldFail("file.read"))
    return makeError("cannot read %s: injected file.read fault", Path.c_str());
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F)
    return makeError("cannot open %s: %s", Path.c_str(), strerror(errno));
  std::string Out;
  char Buf[64 * 1024];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) != 0)
    Out.append(Buf, N);
  if (ferror(F)) {
    int E = errno;
    fclose(F);
    return makeError("error reading %s: %s", Path.c_str(), strerror(E));
  }
  fclose(F);
  return Out;
}

Error support::writeFile(const std::string &Path, std::string_view Contents) {
  FILE *F = fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot open %s for writing: %s", Path.c_str(),
                     strerror(errno));
  if (fwrite(Contents.data(), 1, Contents.size(), F) != Contents.size()) {
    int E = errno;
    fclose(F);
    return makeError("error writing %s: %s", Path.c_str(), strerror(E));
  }
  // fclose flushes stdio's buffer; a full device (ENOSPC) commonly
  // surfaces only here, after every fwrite "succeeded".
  if (fclose(F) != 0)
    return makeError("error writing %s: %s", Path.c_str(), strerror(errno));
  return Error::success();
}

namespace {

/// One attempt at writing the temp file, with the injector consulted at
/// the body-write and flush failure points.
Error writeTempOnce(const std::string &TmpPath, std::string_view Contents,
                    support::FaultInjector *Faults) {
  FILE *F = fopen(TmpPath.c_str(), "wb");
  if (!F)
    return makeError("cannot open %s for writing: %s", TmpPath.c_str(),
                     strerror(errno));
  bool FailWrite = Faults && Faults->shouldFail("file.write");
  if (FailWrite ||
      fwrite(Contents.data(), 1, Contents.size(), F) != Contents.size()) {
    int E = errno;
    fclose(F);
    remove(TmpPath.c_str());
    if (FailWrite)
      return makeError("error writing %s: injected file.write fault",
                       TmpPath.c_str());
    return makeError("error writing %s: %s", TmpPath.c_str(), strerror(E));
  }
  bool FailFlush = Faults && Faults->shouldFail("file.flush");
  if (FailFlush || fclose(F) != 0) {
    int E = errno;
    if (FailFlush)
      fclose(F);
    remove(TmpPath.c_str());
    if (FailFlush)
      return makeError("error writing %s: injected file.flush fault",
                       TmpPath.c_str());
    return makeError("error writing %s: %s", TmpPath.c_str(), strerror(E));
  }
  return Error::success();
}

} // namespace

Expected<unsigned> support::writeFileAtomic(const std::string &Path,
                                            std::string_view Contents,
                                            const AtomicWriteOptions &Opts) {
  // Renaming over /dev/full or /dev/null would "succeed" by replacing
  // the device node with a regular file, silently defeating both the
  // caller's intent and the device's error semantics. Degrade to a
  // plain in-place write for existing non-regular targets.
  struct stat St;
  if (stat(Path.c_str(), &St) == 0 && !S_ISREG(St.st_mode)) {
    if (Error E = writeFile(Path, Contents))
      return E;
    return 0u;
  }

  std::string TmpPath = Path + ".tmp";
  unsigned MaxAttempts = Opts.MaxAttempts ? Opts.MaxAttempts : 1;
  Error Last = Error::success();
  for (unsigned Attempt = 0; Attempt != MaxAttempts; ++Attempt) {
    if (Attempt != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << Attempt));
    Last = writeTempOnce(TmpPath, Contents, Opts.Faults);
    if (Last)
      continue;
    if (rename(TmpPath.c_str(), Path.c_str()) != 0) {
      int E = errno;
      remove(TmpPath.c_str());
      Last = makeError("cannot rename %s to %s: %s", TmpPath.c_str(),
                       Path.c_str(), strerror(E));
      continue;
    }
    return Attempt;
  }
  return makeError("%s (after %u attempts)", Last.message().c_str(),
                   MaxAttempts);
}
