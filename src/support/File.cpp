//===- support/File.cpp ---------------------------------------------------===//

#include "support/File.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace teapot;

Expected<std::string> support::readFile(const std::string &Path) {
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F)
    return makeError("cannot open %s: %s", Path.c_str(), strerror(errno));
  std::string Out;
  char Buf[64 * 1024];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) != 0)
    Out.append(Buf, N);
  if (ferror(F)) {
    int E = errno;
    fclose(F);
    return makeError("error reading %s: %s", Path.c_str(), strerror(E));
  }
  fclose(F);
  return Out;
}

Error support::writeFile(const std::string &Path, std::string_view Contents) {
  FILE *F = fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot open %s for writing: %s", Path.c_str(),
                     strerror(errno));
  if (fwrite(Contents.data(), 1, Contents.size(), F) != Contents.size()) {
    int E = errno;
    fclose(F);
    return makeError("error writing %s: %s", Path.c_str(), strerror(E));
  }
  // fclose flushes stdio's buffer; a full device (ENOSPC) commonly
  // surfaces only here, after every fwrite "succeeded".
  if (fclose(F) != 0)
    return makeError("error writing %s: %s", Path.c_str(), strerror(errno));
  return Error::success();
}
