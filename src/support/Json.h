//===- support/Json.h - Minimal JSON writer/parser ----------------*- C++ -*-===//
///
/// \file
/// A small JSON document model for the structured-result surfaces of the
/// public API (api::ScanResult, bench --json emitters): a Value variant,
/// a writer, and a strict parser.
///
/// Design points that matter to callers:
///
///   - Objects are *insertion-ordered*: keys serialize in the order they
///     were set(), so emitters control field order and two runs producing
///     the same data produce byte-identical text (diff-able artifacts).
///   - Integers are kept exact. A 64-bit site address round-trips as the
///     same integer, never through a double (which would lose precision
///     above 2^53). The parser classifies `-`-prefixed integrals as Int,
///     other integrals as UInt, and anything with `.`/`e` as Double.
///   - Doubles serialize with round-trip precision (shortest of %.15g /
///     %.17g that parses back equal), so toJson → parse → dump is stable.
///
/// Errors flow through the usual Expected<T> machinery; the parser
/// reports the byte offset of the first offending character.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_JSON_H
#define TEAPOT_SUPPORT_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace teapot {
namespace json {

class Value {
public:
  enum class Kind : uint8_t {
    Null,
    Bool,
    Int,    // negative integral
    UInt,   // non-negative integral
    Double, // fractional / exponent form
    String,
    Array,
    Object,
  };

  Value() = default; // null
  Value(std::nullptr_t) {}
  Value(bool B) : K(Kind::Bool), B(B) {}
  /// Non-negative signed values normalize to UInt so an integer's kind
  /// depends only on its value, never on the C++ type it came from (a
  /// parse → dump → parse cycle preserves kinds).
  Value(long long V) {
    if (V < 0) {
      K = Kind::Int;
      I = V;
    } else {
      K = Kind::UInt;
      U = static_cast<uint64_t>(V);
    }
  }
  Value(unsigned long long V) : K(Kind::UInt), U(V) {}
  Value(int V) : Value(static_cast<long long>(V)) {}
  Value(unsigned V) : Value(static_cast<unsigned long long>(V)) {}
  Value(long V) : Value(static_cast<long long>(V)) {}
  Value(unsigned long V) : Value(static_cast<unsigned long long>(V)) {}
  Value(double D) : K(Kind::Double), D(D) {}
  Value(const char *S) : K(Kind::String), S(S) {}
  Value(std::string_view S) : K(Kind::String), S(S) {}
  Value(std::string S) : K(Kind::String), S(std::move(S)) {}

  /// Empty aggregates (an empty object still serializes as `{}`).
  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const {
    return K == Kind::Int || K == Kind::UInt || K == Kind::Double;
  }
  /// True for integral numbers representable as uint64_t.
  bool isUInt() const { return K == Kind::UInt; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const {
    assert(K == Kind::Bool && "asBool on non-bool");
    return B;
  }
  uint64_t asUInt() const {
    assert(K == Kind::UInt && "asUInt on non-uint");
    return U;
  }
  int64_t asInt() const {
    assert((K == Kind::Int || K == Kind::UInt) && "asInt on non-integer");
    return K == Kind::Int ? I : static_cast<int64_t>(U);
  }
  /// Any number as double (integers convert; may round above 2^53).
  double asDouble() const {
    assert(isNumber() && "asDouble on non-number");
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return static_cast<double>(U);
  }
  const std::string &asString() const {
    assert(K == Kind::String && "asString on non-string");
    return S;
  }

  // --- Array ---------------------------------------------------------------
  void push(Value V) {
    assert((K == Kind::Array || K == Kind::Null) && "push on non-array");
    K = Kind::Array;
    Arr.push_back(std::move(V));
  }
  const std::vector<Value> &items() const {
    assert(K == Kind::Array && "items on non-array");
    return Arr;
  }

  // --- Object --------------------------------------------------------------
  /// Sets \p Key (appending in insertion order; overwrites in place if
  /// the key already exists).
  void set(std::string Key, Value V);
  /// Member lookup; null if absent or not an object.
  const Value *find(std::string_view Key) const;
  const std::vector<std::pair<std::string, Value>> &members() const {
    assert(K == Kind::Object && "members on non-object");
    return Obj;
  }

  size_t size() const {
    if (K == Kind::Array)
      return Arr.size();
    if (K == Kind::Object)
      return Obj.size();
    return 0;
  }

  /// Serializes. Compact by default; \p Pretty indents with two spaces
  /// (stable layout either way).
  std::string dump(bool Pretty = false) const;

private:
  void dumpTo(std::string &Out, bool Pretty, unsigned Depth) const;

  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  uint64_t U = 0;
  double D = 0;
  std::string S;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
Expected<Value> parse(std::string_view Text);

/// Escapes \p S as a quoted JSON string literal.
std::string quote(std::string_view S);

} // namespace json
} // namespace teapot

#endif // TEAPOT_SUPPORT_JSON_H
