//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
///
/// \file
/// String helpers shared by the assembler, disassembler printer, and the
/// MiniCC front end.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_STRINGUTILS_H
#define TEAPOT_SUPPORT_STRINGUTILS_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace teapot {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Formats \p V as 0x-prefixed lowercase hex.
std::string toHex(uint64_t V);

/// Encodes \p Bytes as an unprefixed lowercase hex string (two digits
/// per byte) — the byte-vector representation inside JSON snapshots.
std::string hexEncode(const std::vector<uint8_t> &Bytes);

/// Inverse of hexEncode. Odd length or any non-hex digit is a diagnosed
/// error (snapshot corruption must never decode to plausible bytes).
Expected<std::vector<uint8_t>> hexDecode(std::string_view Hex);

/// Parses a decimal, 0x-hex, or negative integer. Returns false on any
/// malformed input (including trailing garbage).
bool parseInt(std::string_view S, int64_t &Out);

/// printf-style std::string formatter.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace support {

/// Strict unsigned-integer parser for tool command lines (decimal or
/// 0x-hex). Unlike bare strtoull — which silently yields 0 for garbage
/// like "banana" — any malformed, negative, empty, or out-of-range input
/// is a diagnosed error naming the offending text.
Expected<uint64_t> parseUInt(std::string_view S);

/// parseUInt with an upper bound: values above \p Max are rejected with
/// a message naming \p What (e.g. "workers").
Expected<uint64_t> parseUInt(std::string_view S, const char *What,
                             uint64_t Max);

} // namespace support
} // namespace teapot

#endif // TEAPOT_SUPPORT_STRINGUTILS_H
