//===- support/RNG.h - Deterministic random numbers -------------*- C++ -*-===//
///
/// \file
/// SplitMix64-based deterministic RNG. Every source of randomness in the
/// repository (fuzzing mutations, workload input generators, injection
/// point selection) flows through this type so experiments reproduce
/// bit-for-bit across runs.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_SUPPORT_RNG_H
#define TEAPOT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace teapot {

/// SplitMix64 generator (Steele, Lea, Flood; public domain reference
/// implementation). Small state, excellent statistical quality for our
/// non-cryptographic needs.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below(0) is meaningless");
    // Multiply-shift rejection-free mapping; bias is negligible for our
    // bounds (all far below 2^32).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + below(Hi - Lo + 1);
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Forks an independent stream (for sub-tasks) without perturbing the
  /// parent sequence more than one step.
  RNG fork() { return RNG(next()); }

  /// The raw stream position. `RNG(state())` reconstructs a generator
  /// that continues the sequence exactly — the campaign snapshot format
  /// persists RNG positions through this.
  uint64_t state() const { return State; }

private:
  uint64_t State;
};

} // namespace teapot

#endif // TEAPOT_SUPPORT_RNG_H
