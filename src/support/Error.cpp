//===- support/Error.cpp --------------------------------------------------===//

#include "support/Error.h"

#include <cstdarg>

using namespace teapot;

Error teapot::makeError(const char *Fmt, ...) {
  char Buf[1024];
  va_list Args;
  va_start(Args, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  return Error::failure(Buf);
}

void teapot::reportFatalError(const std::string &Message) {
  fprintf(stderr, "teapot fatal error: %s\n", Message.c_str());
  abort();
}
