//===- api/ScanDiff.cpp ---------------------------------------------------===//

#include "api/ScanDiff.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace teapot;

namespace {

/// Gadget identity across scans: the transmitting site and the leaking
/// channel. Controllability is the *classification* being compared.
using SiteChan = std::pair<uint64_t, runtime::Channel>;

/// Strongest (most attacker-controlled) report per identity. The enum
/// order User < Massage < Unknown is attacker-strength order, so the
/// minimum controllability wins. Selected explicitly rather than
/// assuming key order: a baseline may come from external tooling or a
/// hand-merged file, and a wrong "strongest" pick here would let a
/// weakened gadget through the regression gate.
std::map<SiteChan, runtime::GadgetReport>
strongestByIdentity(const std::vector<runtime::GadgetReport> &Gadgets) {
  std::map<SiteChan, runtime::GadgetReport> Out;
  for (const runtime::GadgetReport &G : Gadgets) {
    auto [It, Inserted] = Out.emplace(SiteChan{G.Site, G.Chan}, G);
    if (!Inserted && static_cast<uint8_t>(G.Ctrl) <
                         static_cast<uint8_t>(It->second.Ctrl))
      It->second = G;
  }
  return Out;
}

} // namespace

ScanDiff teapot::diffScans(const ScanResult &Before, const ScanResult &After,
                           const ScanDiffOptions &Opts) {
  ScanDiff D;
  D.Workload = After.Workload;
  D.Preset = After.Preset;
  D.EngineBefore = Before.Engine;
  D.EngineAfter = After.Engine;
  D.GadgetsBefore = Before.Gadgets.size();
  D.GadgetsAfter = After.Gadgets.size();
  D.InjectedOnly = Opts.InjectedOnly;

  auto B = strongestByIdentity(Before.Gadgets);
  auto A = strongestByIdentity(After.Gadgets);
  for (const auto &[Key, G] : A)
    if (!B.count(Key))
      D.NewGadgets.push_back(G);
  for (const auto &[Key, G] : B) {
    auto It = A.find(Key);
    if (It == A.end()) {
      D.LostGadgets.push_back(G);
    } else if (It->second.Ctrl != G.Ctrl) {
      GadgetDelta Delta;
      Delta.Before = G;
      Delta.After = It->second;
      Delta.Weakened = static_cast<uint8_t>(It->second.Ctrl) >
                       static_cast<uint8_t>(G.Ctrl);
      D.ChangedGadgets.push_back(Delta);
    }
  }

  // Regression accounting: losing detection, or telling the operator
  // less about exploitability, at the sites that matter.
  std::set<uint64_t> Gate(Before.InjectedSites.begin(),
                          Before.InjectedSites.end());
  auto Counts = [&](uint64_t Site) {
    return !Opts.InjectedOnly || Gate.count(Site) != 0;
  };
  for (const runtime::GadgetReport &G : D.LostGadgets)
    if (Counts(G.Site))
      D.RegressedLost.push_back(G);
  for (const GadgetDelta &C : D.ChangedGadgets)
    if (C.Weakened && Counts(C.Before.Site))
      D.RegressedChanged.push_back(C);

  auto Delta = [](uint64_t BeforeV, uint64_t AfterV) {
    return static_cast<int64_t>(AfterV) - static_cast<int64_t>(BeforeV);
  };
  D.NormalEdgeDelta = Delta(Before.NormalEdges, After.NormalEdges);
  D.SpecEdgeDelta = Delta(Before.SpecEdges, After.SpecEdges);
  D.CorpusSizeDelta = Delta(Before.CorpusSize, After.CorpusSize);
  D.ExecutionsDelta = Delta(Before.Executions, After.Executions);
  D.GadgetCountDelta = Delta(Before.Gadgets.size(), After.Gadgets.size());
  D.ExecsPerSecBefore = Before.execsPerSec();
  D.ExecsPerSecAfter = After.execsPerSec();
  D.InstsPerSecBefore = Before.instsPerSec();
  D.InstsPerSecAfter = After.instsPerSec();
  return D;
}

json::Value ScanDiff::toJson() const {
  json::Value V = json::Value::object();
  V.set("schema", SchemaName);
  V.set("workload", Workload);
  V.set("preset", Preset);
  V.set("engine_before", EngineBefore);
  V.set("engine_after", EngineAfter);
  V.set("gadgets_before", GadgetsBefore);
  V.set("gadgets_after", GadgetsAfter);

  auto GadgetArray = [](const std::vector<runtime::GadgetReport> &Gs) {
    json::Value A = json::Value::array();
    for (const runtime::GadgetReport &G : Gs)
      A.push(runtime::gadgetToJson(G));
    return A;
  };
  auto DeltaArray = [](const std::vector<GadgetDelta> &Ds) {
    json::Value A = json::Value::array();
    for (const GadgetDelta &C : Ds) {
      json::Value E = json::Value::object();
      E.set("before", runtime::gadgetToJson(C.Before));
      E.set("after", runtime::gadgetToJson(C.After));
      E.set("weakened", C.Weakened);
      A.push(std::move(E));
    }
    return A;
  };
  V.set("new", GadgetArray(NewGadgets));
  V.set("lost", GadgetArray(LostGadgets));
  V.set("changed", DeltaArray(ChangedGadgets));

  json::Value Reg = json::Value::object();
  Reg.set("injected_only", InjectedOnly);
  Reg.set("lost", GadgetArray(RegressedLost));
  Reg.set("weakened", DeltaArray(RegressedChanged));
  Reg.set("count", static_cast<uint64_t>(RegressedLost.size() +
                                         RegressedChanged.size()));
  V.set("regressions", std::move(Reg));

  json::Value Dl = json::Value::object();
  Dl.set("normal_edges", static_cast<long long>(NormalEdgeDelta));
  Dl.set("spec_edges", static_cast<long long>(SpecEdgeDelta));
  Dl.set("corpus_size", static_cast<long long>(CorpusSizeDelta));
  Dl.set("executions", static_cast<long long>(ExecutionsDelta));
  Dl.set("gadgets", static_cast<long long>(GadgetCountDelta));
  V.set("deltas", std::move(Dl));

  json::Value Tp = json::Value::object();
  Tp.set("execs_per_sec_before", ExecsPerSecBefore);
  Tp.set("execs_per_sec_after", ExecsPerSecAfter);
  Tp.set("insts_per_sec_before", InstsPerSecBefore);
  Tp.set("insts_per_sec_after", InstsPerSecAfter);
  V.set("throughput", std::move(Tp));
  return V;
}

std::string ScanDiff::describe() const {
  std::string Out = formatString(
      "scan diff: %s (%s), %llu -> %llu gadgets\n", Workload.c_str(),
      Preset.c_str(), static_cast<unsigned long long>(GadgetsBefore),
      static_cast<unsigned long long>(GadgetsAfter));
  if (!EngineBefore.empty() || !EngineAfter.empty())
    Out += formatString("  engine: %s -> %s\n", EngineBefore.c_str(),
                        EngineAfter.c_str());
  Out += formatString("  new: %zu, lost: %zu, changed: %zu\n",
                      NewGadgets.size(), LostGadgets.size(),
                      ChangedGadgets.size());
  for (const runtime::GadgetReport &G : NewGadgets)
    Out += "    [new]     " + G.describe() + "\n";
  for (const runtime::GadgetReport &G : LostGadgets)
    Out += "    [lost]    " + G.describe() + "\n";
  for (const GadgetDelta &C : ChangedGadgets)
    Out += formatString("    [changed] %s at %s: %s -> %s%s\n",
                        runtime::channelName(C.Before.Chan),
                        toHex(C.Before.Site).c_str(),
                        runtime::controllabilityName(C.Before.Ctrl),
                        runtime::controllabilityName(C.After.Ctrl),
                        C.Weakened ? " (weakened)" : "");
  Out += formatString(
      "  coverage: normal %+lld, spec %+lld; corpus %+lld; "
      "executions %+lld\n",
      static_cast<long long>(NormalEdgeDelta),
      static_cast<long long>(SpecEdgeDelta),
      static_cast<long long>(CorpusSizeDelta),
      static_cast<long long>(ExecutionsDelta));
  if (ExecsPerSecBefore > 0 && ExecsPerSecAfter > 0)
    Out += formatString("  throughput: %.0f -> %.0f execs/s (%+.1f%%)\n",
                        ExecsPerSecBefore, ExecsPerSecAfter,
                        (ExecsPerSecAfter / ExecsPerSecBefore - 1.0) * 100);
  size_t NumRegressions = RegressedLost.size() + RegressedChanged.size();
  Out += formatString("  regressions: %zu lost, %zu weakened%s -> %s\n",
                      RegressedLost.size(), RegressedChanged.size(),
                      InjectedOnly ? " (injected sites only)" : "",
                      NumRegressions == 0 ? "OK" : "FAIL");
  return Out;
}
