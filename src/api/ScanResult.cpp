//===- api/ScanResult.cpp -------------------------------------------------===//

#include "api/ScanResult.h"

#include <cstring>
#include <limits>

using namespace teapot;

// --- Writers ----------------------------------------------------------------

json::Value ScanResult::toJson() const {
  json::Value V = json::Value::object();
  V.set("schema", SchemaName);
  V.set("workload", Workload);
  V.set("preset", Preset);
  V.set("engine", Engine);
  V.set("seed", Seed);
  V.set("workers", Workers);
  V.set("iterations", Iterations);

  json::Value Host = json::Value::object();
  Host.set("hardware_concurrency", HostConcurrency);
  Host.set("jit_backend", HostJitBackend);
  V.set("host", std::move(Host));

  json::Value RW = json::Value::object();
  RW.set("branch_sites", BranchSites);
  RW.set("marker_sites", MarkerSites);
  RW.set("normal_guards", NormalGuards);
  RW.set("spec_guards", SpecGuards);
  json::Value PassArr = json::Value::array();
  for (const ScanPassStats &P : Passes) {
    json::Value PV = json::Value::object();
    PV.set("name", P.Name);
    PV.set("seconds", P.Seconds);
    PV.set("insts_added", P.InstsAdded);
    PV.set("blocks_added", P.BlocksAdded);
    PV.set("funcs_added", P.FuncsAdded);
    json::Value CV = json::Value::object();
    for (const auto &[Key, Count] : P.Counters)
      CV.set(Key, Count);
    PV.set("counters", std::move(CV));
    PassArr.push(std::move(PV));
  }
  RW.set("passes", std::move(PassArr));
  V.set("rewrite", std::move(RW));

  json::Value C = json::Value::object();
  C.set("executions", Executions);
  C.set("epochs", Epochs);
  C.set("corpus_adds", CorpusAdds);
  C.set("imports", Imports);
  C.set("guest_insts", GuestInsts);
  C.set("corpus_size", CorpusSize);
  C.set("normal_edges", NormalEdges);
  C.set("spec_edges", SpecEdges);
  C.set("wall_seconds", WallSeconds);
  json::Value WArr = json::Value::array();
  for (const ScanWorkerStats &W : PerWorker) {
    json::Value WV = json::Value::object();
    WV.set("executions", W.Executions);
    WV.set("corpus_adds", W.CorpusAdds);
    WV.set("imports", W.Imports);
    WV.set("guest_insts", W.GuestInsts);
    WV.set("shard_size", W.ShardSize);
    WV.set("normal_edges", W.NormalEdges);
    WV.set("spec_edges", W.SpecEdges);
    WArr.push(std::move(WV));
  }
  C.set("per_worker", std::move(WArr));
  V.set("campaign", std::move(C));

  json::Value Spec = json::Value::object();
  Spec.set("simulations", Simulations);
  Spec.set("nested_simulations", NestedSimulations);
  json::Value RB = json::Value::object();
  for (size_t I = 0;
       I != static_cast<size_t>(isa::RollbackReason::NumReasons); ++I)
    RB.set(isa::rollbackReasonName(static_cast<isa::RollbackReason>(I)),
           Rollbacks[I]);
  Spec.set("rollbacks", std::move(RB));
  V.set("speculation", std::move(Spec));

  json::Value Rob = json::Value::object();
  Rob.set("fault_plan", FaultPlan);
  Rob.set("quarantined", Quarantined);
  Rob.set("degradations", Degradations);
  Rob.set("watchdog_trips", WatchdogTrips);
  Rob.set("faults_injected", FaultsInjected);
  Rob.set("io_retries", IoRetries);
  V.set("robustness", std::move(Rob));

  json::Value RC = json::Value::object();
  RC.set("tlb_guest_hits", TlbGuestHits);
  RC.set("tlb_runtime_hits", TlbRuntimeHits);
  RC.set("slow_path_calls", TlbSlowPathCalls);
  RC.set("intrinsic_fast_path_hits", IntrinsicFastPathHits);
  V.set("runtime_counters", std::move(RC));

  json::Value Inj = json::Value::object();
  json::Value Sites = json::Value::array();
  for (uint64_t Site : InjectedSites)
    Sites.push(Site);
  Inj.set("sites", std::move(Sites));
  Inj.set("input_addr", InjectInputAddr);
  V.set("injection", std::move(Inj));

  json::Value GArr = json::Value::array();
  for (const runtime::GadgetReport &R : Gadgets)
    GArr.push(runtime::gadgetToJson(R));
  V.set("gadgets", std::move(GArr));
  return V;
}

// --- Readers ----------------------------------------------------------------

namespace {
/// Typed member extraction with diagnosed-by-path errors.
struct Reader {
  const json::Value &V;
  const char *Path;

  Error missing(const char *Key) const {
    return makeError("scan result: missing %s.%s", Path, Key);
  }

  Error getU64(const char *Key, uint64_t &Out) const {
    const json::Value *M = V.find(Key);
    if (!M)
      return missing(Key);
    if (!M->isUInt())
      return makeError("scan result: %s.%s is not an unsigned integer",
                       Path, Key);
    Out = M->asUInt();
    return Error::success();
  }

  template <typename T> Error getUInt(const char *Key, T &Out) const {
    uint64_t U = 0;
    if (Error E = getU64(Key, U))
      return E;
    if (U > std::numeric_limits<T>::max())
      return makeError("scan result: %s.%s out of range", Path, Key);
    Out = static_cast<T>(U);
    return Error::success();
  }

  Error getDouble(const char *Key, double &Out) const {
    const json::Value *M = V.find(Key);
    if (!M)
      return missing(Key);
    if (!M->isNumber())
      return makeError("scan result: %s.%s is not a number", Path, Key);
    Out = M->asDouble();
    return Error::success();
  }

  Error getString(const char *Key, std::string &Out) const {
    const json::Value *M = V.find(Key);
    if (!M)
      return missing(Key);
    if (!M->isString())
      return makeError("scan result: %s.%s is not a string", Path, Key);
    Out = M->asString();
    return Error::success();
  }

  Expected<const json::Value *> getObject(const char *Key) const {
    const json::Value *M = V.find(Key);
    if (!M)
      return missing(Key);
    if (!M->isObject())
      return makeError("scan result: %s.%s is not an object", Path, Key);
    return M;
  }

  Expected<const json::Value *> getArray(const char *Key) const {
    const json::Value *M = V.find(Key);
    if (!M)
      return missing(Key);
    if (!M->isArray())
      return makeError("scan result: %s.%s is not an array", Path, Key);
    return M;
  }
};
} // namespace

Expected<ScanResult> ScanResult::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError("scan result: document is not an object");
  Reader Top{V, "$"};
  ScanResult R;

  std::string Schema;
  if (Error E = Top.getString("schema", Schema))
    return E;
  if (Schema != SchemaName)
    return makeError("scan result: unsupported schema '%s' (want %s)",
                     Schema.c_str(), SchemaName);
  if (Error E = Top.getString("workload", R.Workload))
    return E;
  if (Error E = Top.getString("preset", R.Preset))
    return E;
  // "engine" postdates the first v1 artifacts; documents without it
  // were produced when the block engine was the only compiled tier.
  if (V.find("engine"))
    if (Error E = Top.getString("engine", R.Engine))
      return E;
  if (Error E = Top.getU64("seed", R.Seed))
    return E;
  if (Error E = Top.getUInt("workers", R.Workers))
    return E;
  if (Error E = Top.getU64("iterations", R.Iterations))
    return E;

  // "host" postdates the first v1 artifacts; documents without it carry
  // no provenance, which the 0/false defaults spell exactly.
  if (const json::Value *HostV = V.find("host")) {
    if (!HostV->isObject())
      return makeError("scan result: host is not an object");
    Reader Host{*HostV, "host"};
    if (Error E = Host.getUInt("hardware_concurrency", R.HostConcurrency))
      return E;
    const json::Value *JB = HostV->find("jit_backend");
    if (!JB || !JB->isBool())
      return makeError("scan result: host.jit_backend is not a boolean");
    R.HostJitBackend = JB->asBool();
  }

  auto RWObj = Top.getObject("rewrite");
  if (!RWObj)
    return RWObj.takeError();
  Reader RW{**RWObj, "rewrite"};
  if (Error E = RW.getU64("branch_sites", R.BranchSites))
    return E;
  if (Error E = RW.getU64("marker_sites", R.MarkerSites))
    return E;
  if (Error E = RW.getUInt("normal_guards", R.NormalGuards))
    return E;
  if (Error E = RW.getUInt("spec_guards", R.SpecGuards))
    return E;
  auto PassArr = RW.getArray("passes");
  if (!PassArr)
    return PassArr.takeError();
  for (const json::Value &PV : (*PassArr)->items()) {
    if (!PV.isObject())
      return makeError("scan result: rewrite.passes entry is not an object");
    Reader PR{PV, "rewrite.passes[]"};
    ScanPassStats P;
    if (Error E = PR.getString("name", P.Name))
      return E;
    if (Error E = PR.getDouble("seconds", P.Seconds))
      return E;
    if (Error E = PR.getU64("insts_added", P.InstsAdded))
      return E;
    if (Error E = PR.getU64("blocks_added", P.BlocksAdded))
      return E;
    if (Error E = PR.getU64("funcs_added", P.FuncsAdded))
      return E;
    auto CObj = PR.getObject("counters");
    if (!CObj)
      return CObj.takeError();
    for (const auto &[Key, Count] : (*CObj)->members()) {
      if (!Count.isUInt())
        return makeError("scan result: rewrite.passes[].counters.%s is not "
                         "an unsigned integer",
                         Key.c_str());
      P.Counters[Key] = Count.asUInt();
    }
    R.Passes.push_back(std::move(P));
  }

  auto CObj = Top.getObject("campaign");
  if (!CObj)
    return CObj.takeError();
  Reader C{**CObj, "campaign"};
  if (Error E = C.getU64("executions", R.Executions))
    return E;
  if (Error E = C.getU64("epochs", R.Epochs))
    return E;
  if (Error E = C.getU64("corpus_adds", R.CorpusAdds))
    return E;
  if (Error E = C.getU64("imports", R.Imports))
    return E;
  if (Error E = C.getU64("guest_insts", R.GuestInsts))
    return E;
  if (Error E = C.getU64("corpus_size", R.CorpusSize))
    return E;
  if (Error E = C.getU64("normal_edges", R.NormalEdges))
    return E;
  if (Error E = C.getU64("spec_edges", R.SpecEdges))
    return E;
  if (Error E = C.getDouble("wall_seconds", R.WallSeconds))
    return E;
  auto WArr = C.getArray("per_worker");
  if (!WArr)
    return WArr.takeError();
  for (const json::Value &WV : (*WArr)->items()) {
    if (!WV.isObject())
      return makeError(
          "scan result: campaign.per_worker entry is not an object");
    Reader WR{WV, "campaign.per_worker[]"};
    ScanWorkerStats W;
    if (Error E = WR.getU64("executions", W.Executions))
      return E;
    if (Error E = WR.getU64("corpus_adds", W.CorpusAdds))
      return E;
    if (Error E = WR.getU64("imports", W.Imports))
      return E;
    if (Error E = WR.getU64("guest_insts", W.GuestInsts))
      return E;
    if (Error E = WR.getU64("shard_size", W.ShardSize))
      return E;
    if (Error E = WR.getU64("normal_edges", W.NormalEdges))
      return E;
    if (Error E = WR.getU64("spec_edges", W.SpecEdges))
      return E;
    R.PerWorker.push_back(W);
  }

  auto SpecObj = Top.getObject("speculation");
  if (!SpecObj)
    return SpecObj.takeError();
  Reader Spec{**SpecObj, "speculation"};
  if (Error E = Spec.getU64("simulations", R.Simulations))
    return E;
  if (Error E = Spec.getU64("nested_simulations", R.NestedSimulations))
    return E;
  auto RBObj = Spec.getObject("rollbacks");
  if (!RBObj)
    return RBObj.takeError();
  Reader RB{**RBObj, "speculation.rollbacks"};
  for (size_t I = 0;
       I != static_cast<size_t>(isa::RollbackReason::NumReasons); ++I)
    if (Error E = RB.getU64(
            isa::rollbackReasonName(static_cast<isa::RollbackReason>(I)),
            R.Rollbacks[I]))
      return E;

  // "robustness" postdates the first v1 artifacts; documents without it
  // came from builds with no fault injection or containment, so the
  // all-clean defaults are exact.
  if (const json::Value *RobV = V.find("robustness")) {
    if (!RobV->isObject())
      return makeError("scan result: robustness is not an object");
    Reader Rob{*RobV, "robustness"};
    if (Error E = Rob.getString("fault_plan", R.FaultPlan))
      return E;
    if (Error E = Rob.getU64("quarantined", R.Quarantined))
      return E;
    if (Error E = Rob.getU64("degradations", R.Degradations))
      return E;
    if (Error E = Rob.getU64("watchdog_trips", R.WatchdogTrips))
      return E;
    if (Error E = Rob.getU64("faults_injected", R.FaultsInjected))
      return E;
    if (Error E = Rob.getU64("io_retries", R.IoRetries))
      return E;
  }

  // "runtime_counters" postdates robustness: absent in older artifacts,
  // whose runs simply predate the accounting — zeros are exact.
  if (const json::Value *RCV = V.find("runtime_counters")) {
    if (!RCV->isObject())
      return makeError("scan result: runtime_counters is not an object");
    Reader RC{*RCV, "runtime_counters"};
    if (Error E = RC.getU64("tlb_guest_hits", R.TlbGuestHits))
      return E;
    if (Error E = RC.getU64("tlb_runtime_hits", R.TlbRuntimeHits))
      return E;
    if (Error E = RC.getU64("slow_path_calls", R.TlbSlowPathCalls))
      return E;
    if (Error E = RC.getU64("intrinsic_fast_path_hits",
                            R.IntrinsicFastPathHits))
      return E;
  }

  auto InjObj = Top.getObject("injection");
  if (!InjObj)
    return InjObj.takeError();
  Reader Inj{**InjObj, "injection"};
  auto SitesArr = Inj.getArray("sites");
  if (!SitesArr)
    return SitesArr.takeError();
  for (const json::Value &SV : (*SitesArr)->items()) {
    if (!SV.isUInt())
      return makeError(
          "scan result: injection.sites entry is not an unsigned integer");
    R.InjectedSites.push_back(SV.asUInt());
  }
  if (Error E = Inj.getU64("input_addr", R.InjectInputAddr))
    return E;

  auto GArr = Top.getArray("gadgets");
  if (!GArr)
    return GArr.takeError();
  for (const json::Value &GV : (*GArr)->items()) {
    auto G = runtime::gadgetFromJson(GV);
    if (!G)
      return G.takeError();
    R.Gadgets.push_back(*G);
  }
  return R;
}

Expected<ScanResult> ScanResult::fromJsonString(std::string_view Text) {
  auto V = json::parse(Text);
  if (!V)
    return V.takeError();
  return fromJson(*V);
}

bool ScanResult::operator==(const ScanResult &O) const {
  return Workload == O.Workload && Preset == O.Preset &&
         Engine == O.Engine && Seed == O.Seed &&
         Workers == O.Workers && Iterations == O.Iterations &&
         HostConcurrency == O.HostConcurrency &&
         HostJitBackend == O.HostJitBackend &&
         Passes == O.Passes && BranchSites == O.BranchSites &&
         MarkerSites == O.MarkerSites && NormalGuards == O.NormalGuards &&
         SpecGuards == O.SpecGuards && Executions == O.Executions &&
         Epochs == O.Epochs && CorpusAdds == O.CorpusAdds &&
         Imports == O.Imports && GuestInsts == O.GuestInsts &&
         CorpusSize == O.CorpusSize && NormalEdges == O.NormalEdges &&
         SpecEdges == O.SpecEdges && WallSeconds == O.WallSeconds &&
         PerWorker == O.PerWorker &&
         Simulations == O.Simulations &&
         NestedSimulations == O.NestedSimulations &&
         std::memcmp(Rollbacks, O.Rollbacks, sizeof(Rollbacks)) == 0 &&
         FaultPlan == O.FaultPlan && Quarantined == O.Quarantined &&
         Degradations == O.Degradations &&
         WatchdogTrips == O.WatchdogTrips &&
         FaultsInjected == O.FaultsInjected && IoRetries == O.IoRetries &&
         TlbGuestHits == O.TlbGuestHits &&
         TlbRuntimeHits == O.TlbRuntimeHits &&
         TlbSlowPathCalls == O.TlbSlowPathCalls &&
         IntrinsicFastPathHits == O.IntrinsicFastPathHits &&
         InjectedSites == O.InjectedSites &&
         InjectInputAddr == O.InjectInputAddr && Gadgets == O.Gadgets;
}
