//===- api/ScanResult.h - Structured scan results -----------------*- C++ -*-===//
///
/// \file
/// The machine-readable outcome of one teapot::Scanner run: the gadget
/// set (the paper's Table 4 records), per-phase rewriter statistics, and
/// campaign throughput/coverage summaries, with lossless JSON
/// serialization (`toJson`/`fromJson` round-trip exactly).
///
/// The JSON schema is documented in docs/API.md; its top-level `schema`
/// field is versioned ("teapot.scan.v1") so downstream consumers (the CI
/// artifact validators, dashboards) can detect incompatible changes.
///
/// Stability guarantees:
///   - `Gadgets` is ordered by (site, channel, controllability) — the
///     ReportSink/GadgetSink contract — so two runs with the same seed
///     serialize byte-identically.
///   - Object keys serialize in a fixed order (json::Value objects are
///     insertion-ordered).
///   - Enum-valued fields serialize as their stable printed names
///     ("Cache", "User", ...) and parse back through
///     runtime::channelFromName / controllabilityFromName.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_API_SCANRESULT_H
#define TEAPOT_API_SCANRESULT_H

#include "isa/Instruction.h"
#include "runtime/Report.h"
#include "support/Error.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace teapot {

/// One rewrite-pipeline stage's measurements (the serializable mirror of
/// passes::PassStat, named counters included).
struct ScanPassStats {
  std::string Name;
  double Seconds = 0;
  uint64_t InstsAdded = 0;
  uint64_t BlocksAdded = 0;
  uint64_t FuncsAdded = 0;
  /// Pass-specific named counters (trampolines created, tag programs
  /// compiled, ...), key-sorted.
  std::map<std::string, uint64_t> Counters;

  bool operator==(const ScanPassStats &O) const = default;
};

/// One campaign worker's share of the run (the serializable mirror of
/// fuzz::WorkerStats).
struct ScanWorkerStats {
  uint64_t Executions = 0;
  uint64_t CorpusAdds = 0;
  uint64_t Imports = 0;
  uint64_t GuestInsts = 0;
  uint64_t ShardSize = 0;
  uint64_t NormalEdges = 0;
  uint64_t SpecEdges = 0;

  bool operator==(const ScanWorkerStats &O) const = default;
};

/// The structured result of a Scanner run.
struct ScanResult {
  /// Schema version stamped into the JSON (`schema` key).
  static constexpr const char *SchemaName = "teapot.scan.v1";

  // --- Provenance ----------------------------------------------------------
  std::string Workload; // workload name, or "custom" for loadSource/Binary
  std::string Preset;   // ScanConfig preset the run used
  /// Execution tier the campaign machines ran on ("interp", "block",
  /// "jit"). Pre-JIT artifacts lack the key; reads default it to
  /// "block", which is what those runs used.
  std::string Engine = "block";
  uint64_t Seed = 0;
  unsigned Workers = 0;
  uint64_t Iterations = 0; // requested execution budget (0 for runInputs)

  // --- Host provenance -----------------------------------------------------
  // Attributes of the recording machine ("host" object), so fleet-index
  // entries gathered on different hosts stay attributable. Artifacts
  // predating the section lack the key; reads default to 0/false, the
  // "unknown host" record.
  /// std::thread::hardware_concurrency() of the recording host.
  uint32_t HostConcurrency = 0;
  /// The engine capability probe: whether the host's VM offers a native
  /// JIT backend (resolveEngine(Jit) == Jit there).
  bool HostJitBackend = false;

  // --- Rewrite phase (empty/zero for the native preset) --------------------
  std::vector<ScanPassStats> Passes;
  uint64_t BranchSites = 0; // conditional-branch trampolines
  uint64_t MarkerSites = 0; // indirect-transfer markers
  uint32_t NormalGuards = 0;
  uint32_t SpecGuards = 0;

  // --- Campaign / execution ------------------------------------------------
  uint64_t Executions = 0;
  uint64_t Epochs = 0;
  uint64_t CorpusAdds = 0;
  uint64_t Imports = 0;
  uint64_t GuestInsts = 0;
  uint64_t CorpusSize = 0;
  uint64_t NormalEdges = 0; // guards covered at least once
  uint64_t SpecEdges = 0;
  double WallSeconds = 0;
  /// Per-worker breakdown, indexed by worker id (empty for runInputs).
  std::vector<ScanWorkerStats> PerWorker;

  // --- Speculation-simulation stats ----------------------------------------
  // Filled by single-target runs (Scanner::runInputs); campaign workers
  // keep their runtimes private, so campaign results report zeros here.
  uint64_t Simulations = 0;
  uint64_t NestedSimulations = 0;
  uint64_t Rollbacks[static_cast<size_t>(isa::RollbackReason::NumReasons)] =
      {};

  // --- Robustness (docs/ROBUSTNESS.md) -------------------------------------
  // Artifacts predating the robustness layer lack the section; reads
  // default it to all-clean, which is what those runs were.
  /// Canonical fault-plan spelling the run was configured with ("" for
  /// uninjected runs).
  std::string FaultPlan;
  /// Contained crashes (inputs moved to the quarantine corpus).
  uint64_t Quarantined = 0;
  /// Mid-run JIT-to-block-engine degradations.
  uint64_t Degradations = 0;
  /// Executions the runaway-rollback watchdog cut short.
  uint64_t WatchdogTrips = 0;
  /// Faults the configured plan injected, across all sites.
  uint64_t FaultsInjected = 0;
  /// Atomic-write retries spent persisting this scan's sibling
  /// artifacts (filled by tools; always 0 from the library).
  uint64_t IoRetries = 0;

  // --- Hot-path runtime counters -------------------------------------------
  // Where the VM spent its memory and intrinsic-dispatch time: split-TLB
  // hits per bank, page-walk slow paths, and intrinsics retired by the
  // block/JIT inline no-op fast path. Deterministic for a fixed engine;
  // the totals legitimately differ between engines (the interpreter
  // never takes an inline path). Artifacts predating the counters lack
  // the JSON section and read back as zeros.
  uint64_t TlbGuestHits = 0;
  uint64_t TlbRuntimeHits = 0;
  uint64_t TlbSlowPathCalls = 0;
  uint64_t IntrinsicFastPathHits = 0;

  // --- Injection ground truth (Table 3 runs; empty otherwise) --------------
  /// Synthetic site markers of the artificially injected gadgets.
  std::vector<uint64_t> InjectedSites;
  uint64_t InjectInputAddr = 0;

  // --- Gadgets -------------------------------------------------------------
  /// Unique gadget records in (Site, Chan, Ctrl) key order.
  std::vector<runtime::GadgetReport> Gadgets;

  // --- Derived -------------------------------------------------------------
  double execsPerSec() const {
    return WallSeconds > 0 ? static_cast<double>(Executions) / WallSeconds
                           : 0;
  }
  double instsPerSec() const {
    return WallSeconds > 0 ? static_cast<double>(GuestInsts) / WallSeconds
                           : 0;
  }
  uint64_t rollbackTotal() const {
    uint64_t N = 0;
    for (uint64_t R : Rollbacks)
      N += R;
    return N;
  }

  // --- Normalization -------------------------------------------------------
  /// Zeroes every field that legitimately varies between runs of the
  /// same scan — wall-clock times, the engine tag, and the per-engine
  /// hot-path counters — so differential comparisons (tests,
  /// tools/teapot_diffscan) can demand byte-identical JSON for
  /// everything that is supposed to be deterministic.
  void normalizeRunVarying() {
    WallSeconds = 0;
    for (ScanPassStats &PS : Passes)
      PS.Seconds = 0;
    Engine = "any";
    TlbGuestHits = TlbRuntimeHits = TlbSlowPathCalls =
        IntrinsicFastPathHits = 0;
  }

  // --- Serialization -------------------------------------------------------
  json::Value toJson() const;
  static Expected<ScanResult> fromJson(const json::Value &V);

  /// Pretty-printed JSON document (what --json files contain).
  std::string toJsonString() const { return toJson().dump(true) + "\n"; }
  static Expected<ScanResult> fromJsonString(std::string_view Text);

  bool operator==(const ScanResult &O) const;
};

} // namespace teapot

#endif // TEAPOT_API_SCANRESULT_H
