//===- api/Scanner.cpp ----------------------------------------------------===//

#include "api/Scanner.h"

#include "baselines/SpecFuzz.h"
#include "disasm/Disassembler.h"
#include "support/StringUtils.h"
#include "workloads/Programs.h"

#include <chrono>
#include <iterator>
#include <thread>

using namespace teapot;

// --- ScanConfig -------------------------------------------------------------

const std::vector<std::string> &ScanConfig::presetNames() {
  static const std::vector<std::string> Names = {
      "teapot", "teapot-nodift", "specfuzz-baseline", "native"};
  return Names;
}

Expected<ScanConfig> ScanConfig::preset(std::string_view Name) {
  ScanConfig C;
  C.Preset = std::string(Name);
  if (Name == "teapot") {
    // The paper's configuration: Speculation Shadows + Kasper DIFT.
    return C;
  }
  if (Name == "teapot-nodift") {
    // Speculation Shadows with the SpecFuzz detection policy: plain ASan
    // checks instead of the DIFT instrumentation, every speculative
    // violation a gadget.
    C.Rewriter.EnableDift = false;
    C.Runtime.EnableDift = false;
    return C;
  }
  if (Name == "specfuzz-baseline") {
    // Listing 3: guarded single-copy instrumentation, ASan-only policy,
    // SpecFuzz nesting heuristic.
    C.Rewriter.Mode = core::RewriteMode::SpecFuzzBaseline;
    C.Runtime = baselines::specFuzzRuntimeOptions();
    return C;
  }
  if (Name == "native") {
    // Uninstrumented execution, no detector (the normalization baseline).
    C.Kind = TargetKind::Native;
    return C;
  }
  std::string Valid;
  for (const std::string &N : presetNames())
    Valid += (Valid.empty() ? "" : ", ") + N;
  return makeError("unknown preset '%.*s' (valid: %s)",
                   static_cast<int>(Name.size()), Name.data(),
                   Valid.c_str());
}

Error ScanConfig::validate() const {
  if (Campaign.Workers == 0)
    return makeError("scan config: campaign workers must be at least 1");
  if (Campaign.Workers > MaxWorkers)
    return makeError("scan config: %u workers exceeds the maximum %u",
                     Campaign.Workers, MaxWorkers);
  if (Campaign.MaxInputLen == 0)
    return makeError("scan config: max input length must be non-zero");
  if (Campaign.SyncInterval == 0)
    return makeError("scan config: sync interval must be non-zero");
  if (RunBudget == 0)
    return makeError("scan config: per-run instruction budget must be "
                     "non-zero");
  if (RunBudget > MaxRunBudget)
    return makeError("scan config: per-run instruction budget %llu exceeds "
                     "the maximum %llu",
                     static_cast<unsigned long long>(RunBudget),
                     static_cast<unsigned long long>(MaxRunBudget));
  if (InjectGadgets && Kind == TargetKind::Native)
    return makeError("scan config: gadget injection requires an "
                     "instrumented target (the native preset has no "
                     "detector to score against)");
  if (auto P = support::FaultPlan::parse(FaultPlan); !P)
    return makeError("scan config: fault plan: %s", P.message().c_str());
  return Error::success();
}

// --- Scanner ----------------------------------------------------------------

Scanner::Scanner(ScanConfig Config) : Cfg(std::move(Config)) {}

/// Parses "proggen:SEED[:SIZE]" (decimal fields). Returns false if
/// \p Name is not a proggen spelling at all; sets \p Err for a proggen
/// spelling with malformed fields.
static bool parseProgGenName(const std::string &Name,
                             lang::ProgGenOptions &Opts, Error &Err) {
  const std::string Prefix = "proggen:";
  if (Name.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  std::string Rest = Name.substr(Prefix.size());
  size_t Colon = Rest.find(':');
  std::string SeedStr = Rest.substr(0, Colon);
  std::string SizeStr =
      Colon == std::string::npos ? "" : Rest.substr(Colon + 1);
  auto ParseU64 = [](const std::string &S, uint64_t &Out) {
    if (S.empty() || S.size() > 19)
      return false;
    Out = 0;
    for (char C : S) {
      if (C < '0' || C > '9')
        return false;
      Out = Out * 10 + static_cast<uint64_t>(C - '0');
    }
    return true;
  };
  uint64_t Seed = 0, Size = 0;
  if (!ParseU64(SeedStr, Seed) ||
      (!SizeStr.empty() && !ParseU64(SizeStr, Size))) {
    Err = makeError("bad generated-workload spelling '%s' (expected "
                    "proggen:SEED[:SIZE], decimal fields)",
                    Name.c_str());
    return true;
  }
  Opts.Seed = Seed;
  if (!SizeStr.empty())
    Opts.Size = static_cast<unsigned>(Size);
  Err = Error::success();
  return true;
}

Error Scanner::loadWorkload(const std::string &Name) {
  lang::ProgGenOptions GenOpts;
  Error GenErr = Error::success();
  if (parseProgGenName(Name, GenOpts, GenErr)) {
    if (GenErr)
      return GenErr;
    return loadGenerated(GenOpts);
  }
  const workloads::Workload *W = workloads::findWorkload(Name);
  if (!W) {
    std::string Known;
    for (const workloads::Workload &K : workloads::allWorkloads())
      Known += (Known.empty() ? "" : ", ") + std::string(K.Name);
    return makeError("unknown workload '%s' (try: %s)", Name.c_str(),
                     Known.c_str());
  }
  auto Bin = lang::compile(W->Source);
  if (!Bin)
    return makeError("compiling workload '%s': %s", Name.c_str(),
                     Bin.message().c_str());
  adoptBinary(std::move(*Bin), Name);
  WorkloadInjectCount = W->InjectCount;
  WorkloadUnreachable = W->UnreachableFuncs;
  if (Cfg.AutoSeeds)
    for (auto &Seed : W->Seeds())
      SeedCorpus.push_back(std::move(Seed));
  return Error::success();
}

Error Scanner::loadGenerated(const lang::ProgGenOptions &Opts) {
  std::string Src = lang::generateProgram(Opts);
  auto Bin = lang::compile(Src.c_str());
  if (!Bin)
    return makeError("compiling generated workload '%s': %s",
                     lang::progGenName(Opts).c_str(),
                     Bin.message().c_str());
  adoptBinary(std::move(*Bin), lang::progGenName(Opts));
  if (Cfg.AutoSeeds)
    for (auto &Seed : lang::sampleInputs(Opts))
      SeedCorpus.push_back(std::move(Seed));
  return Error::success();
}

Error Scanner::loadSource(std::string_view Source,
                          const lang::CompileOptions &Opts) {
  auto Bin = lang::compile(Source, Opts);
  if (!Bin)
    return makeError("compile error: %s", Bin.message().c_str());
  adoptBinary(std::move(*Bin), "custom");
  return Error::success();
}

Error Scanner::loadBinary(obj::ObjectFile Bin) {
  adoptBinary(std::move(Bin), "custom");
  return Error::success();
}

/// The one place per-binary state changes hands: everything derived
/// from a previous load — rewrite result, injection ground truth,
/// workload metadata, and the seed corpus (one binary, one corpus) —
/// is reset together.
void Scanner::adoptBinary(obj::ObjectFile Bin, std::string Name) {
  Loaded = std::move(Bin);
  Rewritten.reset();
  Injection.reset();
  Camp.reset();          // a snapshot of the old binary's campaign
  PendingResume.reset(); // cannot resume onto a different binary
  WorkloadName = std::move(Name);
  WorkloadInjectCount = 0;
  WorkloadUnreachable.clear();
  SeedCorpus.clear();
  ImportedSeeds.clear();
}

Error Scanner::rewrite() {
  if (!Loaded)
    return makeError("no binary loaded (call loadWorkload/loadSource/"
                     "loadBinary first)");
  if (Cfg.Kind == ScanConfig::TargetKind::Native)
    return Error::success(); // native runs the original binary as-is

  if (Cfg.InjectGadgets) {
    // Table 3 path: lift the *unstripped* binary (gadgets may target
    // named unreachable functions), splice the artificial gadgets into
    // the module, then rewrite the injected module.
    auto Lifted = disasm::disassemble(*Loaded);
    if (!Lifted)
      return makeError("lift error: %s", Lifted.message().c_str());
    workloads::InjectorOptions IO = Cfg.Injector;
    if (IO.Count == 0)
      IO.Count = WorkloadInjectCount;
    if (IO.Count == 0)
      return makeError("gadget injection: no count configured and the "
                       "loaded binary publishes no InjectCount (set "
                       "config().Injector.Count)");
    if (IO.UnreachableFuncs.empty())
      IO.UnreachableFuncs = WorkloadUnreachable;
    auto Inj = workloads::injectGadgets(*Lifted, IO);
    if (!Inj)
      return makeError("gadget injection: %s", Inj.message().c_str());
    auto RW = core::rewriteModule(std::move(*Lifted), Cfg.Rewriter);
    if (!RW)
      return makeError("rewrite error: %s", RW.message().c_str());
    Rewritten = std::move(*RW);
    Injection = std::move(*Inj);
    return Error::success();
  }

  // Teapot scans COTS binaries: rewrite a stripped copy (no symbols,
  // no relocations), whatever the load path provided. Deciding here —
  // not at load time — keeps config() freely mutable between phases.
  obj::ObjectFile Stripped = *Loaded;
  Stripped.strip();
  auto RW = core::rewriteBinary(Stripped, Cfg.Rewriter);
  if (!RW)
    return makeError("rewrite error: %s", RW.message().c_str());
  Rewritten = std::move(*RW);
  Injection.reset();
  return Error::success();
}

Error Scanner::requireTarget() const {
  if (!Loaded)
    return makeError("no binary loaded (call loadWorkload/loadSource/"
                     "loadBinary first)");
  if (Cfg.Kind == ScanConfig::TargetKind::Instrumented && !Rewritten)
    return makeError("binary not instrumented (call rewrite() before "
                     "run())");
  return Error::success();
}

/// Applies the ScanConfig machine tuning to a freshly built target.
static void tuneMachine(vm::Machine &M, const ScanConfig &Cfg) {
  M.Eng = Cfg.Engine;
  M.MaxOutputBytes = Cfg.MaxOutputBytes;
  M.Mem.MaxPages = Cfg.MaxGuestPages;
  M.JitArenaBytes = Cfg.JitArenaBytes;
}

std::unique_ptr<fuzz::FuzzTarget>
Scanner::makeTarget(const support::FaultPlan &Plan) const {
  if (Cfg.Kind == ScanConfig::TargetKind::Native) {
    auto T = std::make_unique<workloads::NativeTarget>(*Loaded,
                                                       Cfg.RunBudget);
    tuneMachine(T->M, Cfg);
    if (Cfg.PokeAddr)
      T->pokeInputTo(*Cfg.PokeAddr);
    if (!Plan.empty())
      T->armFaults(Plan);
    return T;
  }
  runtime::RuntimeOptions RTO = Cfg.Runtime;
  std::optional<uint64_t> Poke = Cfg.PokeAddr;
  if (Injection) {
    // Section 7.2 taint configuration: only the injected input slot is
    // attacker-controlled; real input taint and the Massage policy are
    // off so reports score cleanly against the ground truth.
    RTO.TaintInput = false;
    RTO.MassagePolicy = false;
    RTO.ExtraTaintAddr = Injection->InjInputAddr;
    RTO.ExtraTaintLen = 8;
    Poke = Injection->InjInputAddr;
  }
  auto T = std::make_unique<workloads::InstrumentedTarget>(*Rewritten, RTO,
                                                           Cfg.RunBudget);
  tuneMachine(T->M, Cfg);
  if (Poke)
    T->pokeInputTo(*Poke);
  if (!Plan.empty())
    T->armFaults(Plan);
  return T;
}

std::unique_ptr<fuzz::FuzzTarget> Scanner::makeTarget() const {
  // Cfg.validate() vetted the spelling before any path reaches here.
  return makeTarget(cantFail(support::FaultPlan::parse(Cfg.FaultPlan)));
}

fuzz::TargetFactory Scanner::makeFactory() const {
  return [this] { return makeTarget(); };
}

ScanResult Scanner::baseResult(uint64_t Iterations) const {
  ScanResult R;
  R.Workload = WorkloadName;
  R.Preset = Cfg.Preset;
  // The engine the campaign machines actually ran on (Jit downgrades to
  // Block on hosts without a JIT backend), so artifacts from different
  // tiers are distinguishable in teapot_diff.
  R.Engine = vm::engineName(vm::resolveEngine(Cfg.Engine));
  R.Seed = Cfg.Campaign.Seed;
  R.Workers = Cfg.Campaign.Workers;
  R.Iterations = Iterations;
  if (Rewritten) {
    R.BranchSites = Rewritten->Meta.Trampolines.size();
    R.MarkerSites = Rewritten->Meta.MarkerSites.size();
    R.NormalGuards = Rewritten->Meta.NumNormalGuards;
    R.SpecGuards = Rewritten->Meta.NumSpecGuards;
    for (const passes::PassStat &P : Rewritten->Stats.Passes)
      R.Passes.push_back({P.Name, P.Seconds, P.InstsAdded, P.BlocksAdded,
                          P.FuncsAdded, P.Counters});
  }
  if (Injection) {
    R.InjectedSites = Injection->SiteMarkers;
    R.InjectInputAddr = Injection->InjInputAddr;
  }
  // Canonical spelling (validated by the caller), so artifacts compare
  // equal however the plan was spelled.
  R.FaultPlan = cantFail(support::FaultPlan::parse(Cfg.FaultPlan)).spelling();
  // Host provenance: constants of the recording machine, so fleet-index
  // entries gathered on different hosts stay attributable. Same-machine
  // artifacts stay byte-identical (run-twice CI gates unaffected).
  R.HostConcurrency = std::thread::hardware_concurrency();
  R.HostJitBackend = vm::resolveEngine(vm::Machine::Engine::Jit) ==
                     vm::Machine::Engine::Jit;
  return R;
}

Expected<ScanResult> Scanner::run() {
  if (Error E = Cfg.validate())
    return E;
  if (Error E = requireTarget())
    return E;

  // Build the new campaign off to the side: the previous one (and its
  // saveState()-able state) must survive a failed resume-load intact.
  auto NewCamp = std::make_unique<fuzz::Campaign>(makeFactory(),
                                                  Cfg.Campaign);
  fuzz::Campaign &C = *NewCamp;
  const bool IsResume = PendingResume.has_value();
  if (IsResume) {
    // Restore the scheduled snapshot; the campaign continues from its
    // epoch barrier, so the seed schedule below is irrelevant (seeds
    // already live in the restored shards). The pending snapshot is
    // consumed only on success — after a failed load (option mismatch,
    // corruption) a retried run() must fail again, not silently start
    // a fresh campaign that looks like the resumed one.
    if (Error E = C.loadState(*PendingResume))
      return E;
    PendingResume.reset();
    // Federated corpus entries (importCorpus between runs) cannot ride
    // the seed schedule of a resumed campaign — seeds already live in
    // the restored shards. Queue them through the campaign's import
    // inboxes instead: they execute at the next epoch under the
    // receiving workers' own coverage-novelty filter, exactly like
    // cross-worker publications. Consumed here so each batch injects
    // once, not on every later slice.
    if (!ImportedSeeds.empty()) {
      C.enqueueImports(ImportedSeeds);
      ImportedSeeds.clear();
    }
  } else if (Injection) {
    // The Table 3 seed schedule: the poke reads the input's trailing 8
    // bytes, so make sure both in- and out-of-bounds injected-input
    // values appear in the initial corpus.
    for (const auto &Seed : SeedCorpus) {
      std::vector<uint8_t> OOB = Seed;
      OOB.insert(OOB.end(), {200, 0, 0, 0, 0, 0, 0, 0});
      C.addSeed(std::move(OOB));
      std::vector<uint8_t> InB = Seed;
      InB.insert(InB.end(), {5, 0, 0, 0, 0, 0, 0, 0});
      C.addSeed(std::move(InB));
    }
  } else {
    for (const auto &Seed : SeedCorpus)
      C.addSeed(Seed);
  }
  if (!IsResume) {
    // Imported corpus entries ride along verbatim, after the regular
    // seed schedule (see importCorpus()).
    for (const auto &Seed : ImportedSeeds)
      C.addSeed(Seed);
  }
  if (OnGadget)
    C.gadgets().OnNewGadget = OnGadget;
  if (OnEpoch)
    C.OnEpoch = OnEpoch;
  Camp = std::move(NewCamp); // nothing can fail before run() anymore

  auto Start = std::chrono::steady_clock::now();
  fuzz::CampaignStats S = C.run();
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  ScanResult R = baseResult(Cfg.Campaign.TotalIterations);
  R.Executions = S.Executions;
  R.Epochs = S.Epochs;
  R.CorpusAdds = S.CorpusAdds;
  R.Imports = S.Imports;
  R.GuestInsts = S.GuestInsts;
  R.CorpusSize = C.corpus().size();
  R.NormalEdges = S.NormalEdges;
  R.SpecEdges = S.SpecEdges;
  R.WallSeconds = Secs;
  for (const fuzz::WorkerStats &W : S.PerWorker)
    R.PerWorker.push_back({W.Executions, W.CorpusAdds, W.Imports,
                           W.GuestInsts, W.ShardSize, W.NormalEdges,
                           W.SpecEdges});
  R.Quarantined = S.Quarantined;
  R.Degradations = S.Degradations;
  R.WatchdogTrips = S.WatchdogTrips;
  R.FaultsInjected = S.FaultsInjected;
  R.TlbGuestHits = S.TlbGuestHits;
  R.TlbRuntimeHits = S.TlbRuntimeHits;
  R.TlbSlowPathCalls = S.TlbSlowPathCalls;
  R.IntrinsicFastPathHits = S.IntrinsicFastPathHits;
  R.Gadgets = C.gadgets().unique(); // key-ordered
  LastCorpus = C.corpus();
  return R;
}

const std::vector<fuzz::QuarantineRecord> &Scanner::quarantine() const {
  static const std::vector<fuzz::QuarantineRecord> Empty;
  return Camp ? Camp->quarantine() : Empty;
}

Expected<json::Value> Scanner::quarantineJson() const {
  if (!Camp)
    return makeError("no campaign to snapshot (call run() first)");
  auto Plan = support::FaultPlan::parse(Cfg.FaultPlan);
  if (!Plan)
    return makeError("scan config: fault plan: %s", Plan.message().c_str());
  json::Value V = json::Value::object();
  V.set("schema", QuarantineSchemaName);
  V.set("workload", WorkloadName);
  V.set("preset", Cfg.Preset);
  V.set("engine", vm::engineName(vm::resolveEngine(Cfg.Engine)));
  V.set("seed", Cfg.Campaign.Seed);
  V.set("workers", Cfg.Campaign.Workers);
  V.set("run_budget", Cfg.RunBudget);
  V.set("fault_plan", Plan->spelling());
  json::Value Recs = json::Value::array();
  for (const fuzz::QuarantineRecord &R : Camp->quarantine()) {
    json::Value RV = json::Value::object();
    RV.set("input", hexEncode(R.Input));
    RV.set("worker", R.Worker);
    RV.set("epoch", R.Epoch);
    RV.set("exec_index", R.ExecIndex);
    RV.set("signature", R.Signature);
    RV.set("site", R.Site);
    RV.set("rng_state", R.RngState);
    Recs.push(std::move(RV));
  }
  V.set("records", std::move(Recs));
  return V;
}

Expected<size_t> Scanner::replayQuarantine(const json::Value &Artifact) {
  if (Error E = Cfg.validate())
    return E;
  if (Error E = requireTarget())
    return E;
  if (!Artifact.isObject())
    return makeError("quarantine artifact: document is not an object");
  const json::Value *Schema = Artifact.find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != QuarantineSchemaName)
    return makeError("quarantine artifact: missing or unsupported schema "
                     "tag (want %s)",
                     QuarantineSchemaName);
  const json::Value *Recs = Artifact.find("records");
  if (!Recs || !Recs->isArray())
    return makeError("quarantine artifact: missing records array");

  for (size_t I = 0; I != Recs->size(); ++I) {
    const json::Value &RV = Recs->items()[I];
    if (!RV.isObject())
      return makeError("quarantine artifact: records[%zu] is not an "
                       "object",
                       I);
    const json::Value *In = RV.find("input");
    const json::Value *Sig = RV.find("signature");
    const json::Value *Site = RV.find("site");
    if (!In || !In->isString() || !Sig || !Sig->isString() || !Site ||
        !Site->isString())
      return makeError("quarantine artifact: records[%zu] needs input, "
                       "signature, and site strings",
                       I);
    auto Input = hexDecode(In->asString());
    if (!Input)
      return makeError("quarantine artifact: records[%zu].input: %s", I,
                       Input.message().c_str());

    // Injected crashes re-arm their site as a one-shot plan; genuine
    // crashes (site "") must reproduce from the input alone.
    support::FaultPlan One;
    if (!Site->asString().empty()) {
      auto P = support::FaultPlan::parse(Site->asString() + "@1");
      if (!P)
        return makeError("quarantine artifact: records[%zu].site: %s", I,
                         P.message().c_str());
      One = std::move(*P);
    }
    std::unique_ptr<fuzz::FuzzTarget> T = makeTarget(One);
    std::optional<std::string> Observed;
    try {
      T->execute(*Input);
    } catch (const std::exception &E) {
      Observed = E.what();
    }
    if (!Observed)
      return makeError("quarantine replay: records[%zu] did not crash "
                       "(recorded signature '%s')",
                       I, Sig->asString().c_str());
    if (*Observed != Sig->asString())
      return makeError("quarantine replay: records[%zu] crashed with "
                       "'%s', recorded '%s'",
                       I, Observed->c_str(), Sig->asString().c_str());
  }
  return Recs->size();
}

Expected<json::Value> Scanner::saveState() const {
  if (!Camp)
    return makeError("no campaign to snapshot (call run() first)");
  return Camp->saveState();
}

Error Scanner::resume(json::Value Snapshot) {
  // Light up-front validation; the full options/geometry check happens
  // in run() when the campaign exists to compare against.
  if (!Snapshot.isObject())
    return makeError("corpus snapshot: document is not an object");
  const json::Value *Schema = Snapshot.find("schema");
  if (!Schema || !Schema->isString())
    return makeError("corpus snapshot: missing schema tag");
  if (Schema->asString() != fuzz::Campaign::SnapshotSchemaName)
    return makeError("corpus snapshot: unsupported schema '%s' (want %s)",
                     Schema->asString().c_str(),
                     fuzz::Campaign::SnapshotSchemaName);
  PendingResume = std::move(Snapshot);
  return Error::success();
}

Expected<size_t> Scanner::importCorpus(const json::Value &Snapshot) {
  if (!Snapshot.isObject())
    return makeError("corpus snapshot: document is not an object");
  const json::Value *Schema = Snapshot.find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != fuzz::Campaign::SnapshotSchemaName)
    return makeError("corpus snapshot: missing or unsupported schema tag "
                     "(want %s)",
                     fuzz::Campaign::SnapshotSchemaName);
  // Option-compatibility gate: the snapshot's corpus was shaped under
  // its campaign's input-geometry knobs. Importing entries recorded
  // under a different MaxInputLen silently truncates them (different
  // bytes than the donor campaign validated), and a MaxStackedMutations
  // mismatch means the corpus distribution was tuned for a different
  // mutator — both adopt incompatible seeds without any diagnostic.
  // Seed/workers/budget may legitimately differ (that is the point of
  // cross-campaign import), so only the input-geometry knobs must match.
  const json::Value *Opts = Snapshot.find("options");
  if (!Opts || !Opts->isObject())
    return makeError("corpus snapshot: missing options object (cannot "
                     "check import compatibility)");
  auto GetU64 = [&](const char *Key, uint64_t &Out) -> Error {
    const json::Value *M = Opts->find(Key);
    if (!M || !M->isUInt())
      return makeError("corpus snapshot: missing or non-integer "
                       "options.%s",
                       Key);
    Out = M->asUInt();
    return Error::success();
  };
  uint64_t MaxLen = 0, MaxStacked = 0;
  if (Error E = GetU64("max_input_len", MaxLen))
    return E;
  if (Error E = GetU64("max_stacked_mutations", MaxStacked))
    return E;
  if (MaxLen != Cfg.Campaign.MaxInputLen ||
      MaxStacked != Cfg.Campaign.MaxStackedMutations)
    return makeError(
        "corpus snapshot: incompatible options (snapshot max_input_len "
        "%llu / max_stacked_mutations %llu, campaign %llu / %u) — "
        "re-record the snapshot or align the campaign config",
        static_cast<unsigned long long>(MaxLen),
        static_cast<unsigned long long>(MaxStacked),
        static_cast<unsigned long long>(Cfg.Campaign.MaxInputLen),
        Cfg.Campaign.MaxStackedMutations);
  const json::Value *Corpus = Snapshot.find("corpus");
  if (!Corpus || !Corpus->isArray())
    return makeError("corpus snapshot: missing corpus array");
  // Decode into a local vector first: a corrupt entry mid-array must
  // not half-apply (a retried import would duplicate the prefix).
  std::vector<std::vector<uint8_t>> Decoded;
  Decoded.reserve(Corpus->size());
  for (const json::Value &E : Corpus->items()) {
    if (!E.isString())
      return makeError("corpus snapshot: corpus entry is not a hex string");
    auto Bytes = hexDecode(E.asString());
    if (!Bytes)
      return Bytes.takeError();
    Decoded.push_back(std::move(*Bytes));
  }
  size_t N = Decoded.size();
  ImportedSeeds.insert(ImportedSeeds.end(),
                       std::make_move_iterator(Decoded.begin()),
                       std::make_move_iterator(Decoded.end()));
  return N;
}

Expected<ScanResult> Scanner::runInputs(
    const std::vector<std::vector<uint8_t>> &Inputs) {
  if (Error E = Cfg.validate())
    return E;
  if (Error E = requireTarget())
    return E;

  std::unique_ptr<fuzz::FuzzTarget> T = makeTarget();
  // Route the live-discovery feed from the target's own sink. The sink
  // is key-deduplicated, so the hook fires once per unique gadget.
  auto *IT = dynamic_cast<workloads::InstrumentedTarget *>(T.get());
  if (IT && OnGadget)
    IT->RT.Reports.OnNewGadget = OnGadget;

  // Same containment as a campaign worker: a crashing input is counted
  // and skipped, the sweep continues.
  uint64_t Quarantined = 0;
  auto Start = std::chrono::steady_clock::now();
  for (const auto &Input : Inputs) {
    try {
      T->execute(Input);
    } catch (const std::exception &) {
      ++Quarantined;
    }
  }
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  ScanResult R = baseResult(0);
  R.Workers = 1;
  R.Executions = Inputs.size();
  R.GuestInsts = T->executedInsts();
  R.WallSeconds = Secs;
  R.Quarantined = Quarantined;
  fuzz::FuzzTarget::RobustnessStats RS = T->robustnessStats();
  R.Degradations = RS.Degradations;
  R.WatchdogTrips = RS.WatchdogTrips;
  R.FaultsInjected = RS.FaultsInjected;
  fuzz::FuzzTarget::HotPathStats HS = T->hotPathStats();
  R.TlbGuestHits = HS.TlbGuestHits;
  R.TlbRuntimeHits = HS.TlbRuntimeHits;
  R.TlbSlowPathCalls = HS.TlbSlowPathCalls;
  R.IntrinsicFastPathHits = HS.IntrinsicFastPathHits;
  if (IT) {
    R.NormalEdges = IT->RT.Cov.normalCovered();
    R.SpecEdges = IT->RT.Cov.specCovered();
    R.Simulations = IT->RT.Stats.Simulations;
    R.NestedSimulations = IT->RT.Stats.NestedSimulations;
    for (size_t I = 0;
         I != static_cast<size_t>(isa::RollbackReason::NumReasons); ++I)
      R.Rollbacks[I] = IT->RT.Stats.Rollbacks[I];
  }
  if (const runtime::ReportSink *Sink = T->reports())
    R.Gadgets = Sink->unique(); // key-ordered
  LastCorpus.clear();
  return R;
}
