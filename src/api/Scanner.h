//===- api/Scanner.h - The Teapot facade API ----------------------*- C++ -*-===//
///
/// \file
/// The single library entry point for the paper's end-to-end workflow
/// (Figure 3): lift → Speculation-Shadows rewrite → coverage-guided
/// campaign → gadget classification, behind three calls:
///
///   support::ExitOnError Exit("myscan: ");
///   teapot::Scanner S(Exit(teapot::ScanConfig::preset("teapot")));
///   Exit(S.loadWorkload("jsmn"));   // or loadSource / loadBinary
///   Exit(S.rewrite());
///   teapot::ScanResult R = Exit(S.run());
///   fwrite to file: R.toJsonString()
///
/// A ScanConfig composes every knob the hand-wired paths used to plumb
/// separately — core::RewriterOptions, runtime::RuntimeOptions,
/// fuzz::CampaignOptions, and the vm::Machine tuning (per-run budget,
/// output cap, execution-engine tier) — with named presets:
///
///   teapot            Speculation Shadows + Kasper DIFT (the paper)
///   teapot-nodift     Speculation Shadows, SpecFuzz detection policy
///   specfuzz-baseline single-copy guarded instrumentation (Listing 3)
///   native            no rewrite, no detector (normalization baseline)
///
/// Determinism: a Scanner run is a pure function of (config, loaded
/// binary, seed corpus). With the same seed it produces gadget sets and
/// corpora byte-identical to the hand-wired compile → rewriteBinary →
/// Campaign path it replaces (locked by tests/api_test.cpp).
///
/// All failures propagate as Expected<T>/Error — nothing prints or
/// exits; tools wrap calls in support::ExitOnError.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_API_SCANNER_H
#define TEAPOT_API_SCANNER_H

#include "api/ScanResult.h"
#include "core/TeapotRewriter.h"
#include "fuzz/Campaign.h"
#include "lang/MiniCC.h"
#include "lang/ProgGen.h"
#include "runtime/SpecRuntime.h"
#include "support/Error.h"
#include "vm/Machine.h"
#include "workloads/Harness.h"
#include "workloads/Injector.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace teapot {

/// Everything one scan needs, in one struct. Start from a preset and
/// override fields; Scanner::run() validates before executing.
struct ScanConfig {
  /// Which target the campaign drives.
  enum class TargetKind : uint8_t {
    Instrumented, // rewritten binary + SpecRuntime (the evaluation path)
    Native,       // original binary, no detector (baseline)
  };

  /// The preset name this config started from (recorded in results).
  std::string Preset = "teapot";
  TargetKind Kind = TargetKind::Instrumented;

  /// Static-rewriting phase (ignored for TargetKind::Native).
  core::RewriterOptions Rewriter;
  /// Runtime library attached to instrumented targets.
  runtime::RuntimeOptions Runtime;
  /// Fuzzing-campaign phase (seed, budget, workers, sync interval).
  fuzz::CampaignOptions Campaign;

  // --- vm::Machine tuning --------------------------------------------------
  /// Per-execution guest instruction budget.
  uint64_t RunBudget = workloads::DefaultRunBudget;
  /// Accumulated guest-output cap per execution.
  uint64_t MaxOutputBytes = vm::Machine::DefaultMaxOutputBytes;
  /// Execution tier for the campaign machines. All tiers are bit-exact
  /// against each other (gadget sets and corpora are engine-invariant);
  /// they differ only in throughput. Jit resolves to Block on hosts
  /// without a JIT backend; results record the engine actually used.
  vm::Machine::Engine Engine = vm::Machine::Engine::Jit;

  /// Table 3-style input poke: copy the input's trailing 8 bytes to this
  /// guest address before every run.
  std::optional<uint64_t> PokeAddr;

  // --- Robustness (docs/ROBUSTNESS.md) -------------------------------------
  /// Deterministic fault plan (support::FaultPlan::parse spelling, "" =
  /// no injection) armed on every campaign target's private injector.
  /// Same config + same plan reproduces the same faults — and therefore
  /// the same corpus, gadgets, and quarantine — byte-identically.
  std::string FaultPlan;
  /// Guest-page ceiling per machine. A guest that touches more pages
  /// gets a per-execution OutOfMemory stop instead of growing the host
  /// heap without bound. 0 = unlimited; the default (1 Mi pages = 4 GiB
  /// touched) is far above any legitimate workload.
  uint64_t MaxGuestPages = 1 << 20;
  /// JIT code-arena size in bytes (0 = backend default). Exhaustion
  /// flushes the arena; a thrashing or unrecoverable arena degrades the
  /// run to the block engine (bit-exact, so results are unaffected).
  uint64_t JitArenaBytes = 0;
  // (The runaway-rollback watchdog is a runtime option:
  // Runtime.MaxRollbacksPerRun.)

  // --- Artificial gadget injection (Section 7.2 / Table 3) -----------------
  /// Splice sample Spectre-V1 gadgets into the lifted module at
  /// rewrite() time, giving the scan a known ground truth. When on, the
  /// facade applies the paper's whole experiment methodology: the binary
  /// is kept unstripped (gadgets can target named unreachable
  /// functions), the runtime tags only the injected input slot
  /// (TaintInput/MassagePolicy off, ExtraTaint on it), every run pokes
  /// the input's trailing 8 bytes into that slot, and run() extends each
  /// seed with in- and out-of-bounds poke bytes.
  bool InjectGadgets = false;
  /// Injector knobs. Count == 0 means "the loaded workload's published
  /// InjectCount" (and likewise its UnreachableFuncs when empty).
  workloads::InjectorOptions Injector = {0, 7, {}, 4};

  /// When loadWorkload() is used, automatically add the workload's seed
  /// corpus (in its canonical order).
  bool AutoSeeds = true;

  /// Hard ceilings validate() enforces (misconfiguration guards, not
  /// tuning knobs).
  static constexpr unsigned MaxWorkers = 512;
  static constexpr uint64_t MaxRunBudget = 1ULL << 40;

  /// Named preset lookup; unknown names are diagnosed errors listing the
  /// valid spellings.
  static Expected<ScanConfig> preset(std::string_view Name);
  /// The preset names, in documentation order.
  static const std::vector<std::string> &presetNames();

  /// Rejects impossible configurations (0 workers, 0-length inputs,
  /// oversized budgets, ...).
  Error validate() const;
};

/// The facade. Owns the compiled/loaded binary, the rewrite result, the
/// seed corpus, and the campaign wiring. One Scanner scans one binary;
/// run() may be called repeatedly (e.g. with different worker counts)
/// and each run starts from fresh campaign state.
class Scanner {
public:
  explicit Scanner(ScanConfig Config = {});

  /// Mutable between phases: adjust (say) Campaign.Workers between
  /// run() calls. Changes to Rewriter options after rewrite() only take
  /// effect on the next rewrite().
  ScanConfig &config() { return Cfg; }
  const ScanConfig &config() const { return Cfg; }

  // --- Phase 1: load -------------------------------------------------------
  // Loading resets all per-binary state, including the seed corpus
  // (one binary, one corpus); with Cfg.AutoSeeds, loadWorkload adopts
  // the workload's published seeds.
  /// Compiles a named evaluation workload (see workloads::allWorkloads,
  /// matched case-insensitively), or — with the pseudo-workload spelling
  /// "proggen:SEED[:SIZE]" — a deterministic generated program (see
  /// lang/ProgGen.h), so every workload-driven tool and bench accepts
  /// generated targets for free.
  Error loadWorkload(const std::string &Name);
  /// Compiles a ProgGen program directly from its options; the recorded
  /// workload name is lang::progGenName(Opts) and, with Cfg.AutoSeeds,
  /// the corpus is lang::sampleInputs(Opts).
  Error loadGenerated(const lang::ProgGenOptions &Opts);
  /// Compiles MiniCC source (any COTS-binary stand-in).
  Error loadSource(std::string_view Source,
                   const lang::CompileOptions &Opts = {});
  /// Adopts an already-built binary.
  Error loadBinary(obj::ObjectFile Bin);

  // --- Phase 2: rewrite ----------------------------------------------------
  /// Runs the configured instrumentation pipeline on a stripped copy of
  /// the loaded binary (Teapot needs no symbols; the Table 3 injection
  /// path lifts the unstripped original instead). For the native preset
  /// this records nothing and is a no-op (kept so drivers can use the
  /// same three calls for every preset).
  Error rewrite();

  // --- Seeds ---------------------------------------------------------------
  void addSeed(std::vector<uint8_t> Seed) {
    SeedCorpus.push_back(std::move(Seed));
  }
  void clearSeeds() { SeedCorpus.clear(); }
  const std::vector<std::vector<uint8_t>> &seeds() const {
    return SeedCorpus;
  }

  // --- Phase 3: run --------------------------------------------------------
  /// The coverage-guided campaign per Cfg.Campaign. Deterministic under
  /// (config, binary, seeds); repeated calls reproduce each other.
  /// After resume(), the next run() continues the restored campaign
  /// instead of starting afresh (set Cfg.Campaign.MaxEpochs to stop a
  /// run at an epoch barrier and snapshot mid-campaign).
  Expected<ScanResult> run();

  // --- Persistence (teapot.corpus.v1) --------------------------------------
  /// Serializes the last run()'s campaign — corpus, coverage, gadgets,
  /// RNG positions, per-worker target state — as a teapot.corpus.v1
  /// snapshot. A campaign resumed from it continues byte-identically to
  /// the uninterrupted run. Error before the first run().
  Expected<json::Value> saveState() const;

  /// Schedules \p Snapshot to be restored into the next run()'s
  /// campaign. Validation happens inside run() (the campaign must exist
  /// to check options/geometry); a mismatched snapshot fails that run.
  /// The scan config, loaded binary, and seed corpus must be the same
  /// as when the snapshot was taken — the snapshot records campaign
  /// state, not the binary.
  Error resume(json::Value Snapshot);

  /// Adopts the merged corpus of \p Snapshot as additional inputs for
  /// the next run(). On a fresh campaign the entries become extra seeds
  /// (the cross-run corpus reuse mode, e.g. CI carrying a corpus
  /// between builds); on a resumed campaign they are queued through the
  /// workers' import inboxes instead (the cross-campaign federation
  /// mode, see Campaign::enqueueImports) — executed under the receiving
  /// workers' coverage-novelty filter, never replayed as seeds. The
  /// fresh path keeps the batch as standing extra seeds (repeated run()
  /// calls stay reproducible); the resume path consumes it, so each
  /// federated batch injects exactly once. Imported entries are fed to
  /// the campaign verbatim: the injection seed schedule (in-/out-of-
  /// bounds poke variants) applies only to the regular seed corpus,
  /// because imported inputs already carry the previous campaign's poke
  /// bytes — re-extending them would double the corpus on every import
  /// cycle. The snapshot's input-geometry options (max_input_len,
  /// max_stacked_mutations) must match the live campaign config;
  /// mismatches are diagnosed errors, never silently truncated seeds.
  /// Returns the number of inputs imported.
  Expected<size_t> importCorpus(const json::Value &Snapshot);

  /// Corpus entries adopted by importCorpus(), pending the next run().
  const std::vector<std::vector<uint8_t>> &importedSeeds() const {
    return ImportedSeeds;
  }

  /// Executes exactly \p Inputs, in order, on one fresh target — the
  /// single-input / boundary-value workflows (quickstart,
  /// patch-and-verify). No mutation, no coverage guidance; the result's
  /// campaign section reflects the sweep (Executions = Inputs.size()),
  /// and the speculation section is populated from the target's runtime.
  Expected<ScanResult> runInputs(
      const std::vector<std::vector<uint8_t>> &Inputs);

  // --- Introspection -------------------------------------------------------
  /// The loaded binary (null before a load call).
  const obj::ObjectFile *binary() const {
    return Loaded ? &*Loaded : nullptr;
  }
  /// The rewrite result (null before rewrite(), and always for native).
  const core::RewriteResult *rewriteResult() const {
    return Rewritten ? &*Rewritten : nullptr;
  }
  /// The injection ground truth (null unless Cfg.InjectGadgets and
  /// rewrite() ran).
  const workloads::InjectionResult *injection() const {
    return Injection ? &*Injection : nullptr;
  }
  /// The merged corpus of the last run() (empty before).
  const std::vector<std::vector<uint8_t>> &corpus() const {
    return LastCorpus;
  }

  // --- Robustness ----------------------------------------------------------
  /// Asks a running campaign to stop at the next epoch barrier (safe
  /// from OnEpoch or another thread — the tool's SIGINT path). A no-op
  /// before the first run().
  void requestStop() {
    if (Camp)
      Camp->requestStop();
  }

  /// The last run()'s contained crashes (empty before, and for clean
  /// runs). See fuzz::Campaign::quarantine().
  const std::vector<fuzz::QuarantineRecord> &quarantine() const;

  /// Serializes the last run()'s quarantine as a teapot.quarantine.v1
  /// artifact: a provenance header (workload, preset, engine, seed,
  /// workers, run budget, fault plan) plus one record per contained
  /// crash — enough to replay each crash on a fresh target. Error
  /// before the first run().
  static constexpr const char *QuarantineSchemaName = "teapot.quarantine.v1";
  Expected<json::Value> quarantineJson() const;

  /// Replays every record of a quarantineJson() artifact on a fresh
  /// target each: injected faults are re-armed as a one-shot plan
  /// (`site@1`), the input is executed, and the observed crash
  /// signature must match the recorded one. The scan config and loaded
  /// binary must match the artifact's provenance. Returns the number of
  /// records replayed.
  Expected<size_t> replayQuarantine(const json::Value &Artifact);

  // --- Live feeds ----------------------------------------------------------
  /// Every run-unique gadget, as discovered.
  std::function<void(const runtime::GadgetReport &)> OnGadget;
  /// Campaign epoch barriers (run() only).
  std::function<void(const fuzz::CampaignProgress &)> OnEpoch;

private:
  void adoptBinary(obj::ObjectFile Bin, std::string Name);
  Error requireTarget() const;
  fuzz::TargetFactory makeFactory() const;
  /// Builds a target armed with Cfg.FaultPlan (campaign/runInputs use).
  std::unique_ptr<fuzz::FuzzTarget> makeTarget() const;
  /// Builds a target armed with an explicit plan (quarantine replay).
  std::unique_ptr<fuzz::FuzzTarget>
  makeTarget(const support::FaultPlan &Plan) const;
  ScanResult baseResult(uint64_t Iterations) const;

  ScanConfig Cfg;
  std::string WorkloadName; // "custom" unless loadWorkload
  /// The last run()'s campaign, kept alive so saveState() can snapshot
  /// it (run() replaces it; resume() restores into the next one).
  std::unique_ptr<fuzz::Campaign> Camp;
  std::optional<json::Value> PendingResume;
  std::optional<obj::ObjectFile> Loaded;
  std::optional<core::RewriteResult> Rewritten;
  std::optional<workloads::InjectionResult> Injection;
  /// Injector defaults published by the loaded workload (Table 3).
  unsigned WorkloadInjectCount = 0;
  std::vector<std::string> WorkloadUnreachable;
  std::vector<std::vector<uint8_t>> SeedCorpus;
  std::vector<std::vector<uint8_t>> ImportedSeeds;
  std::vector<std::vector<uint8_t>> LastCorpus;
};

} // namespace teapot

#endif // TEAPOT_API_SCANNER_H
