//===- api/ScanDiff.h - Cross-scan gadget diffing -----------------*- C++ -*-===//
///
/// \file
/// Structural comparison of two ScanResults — the regression currency of
/// the repo: CI diffs every scan.json against a checked-in golden
/// baseline and gates merges on the result, and developers diff scans
/// across branches/configs to see what a change did to detection.
///
/// Gadgets are matched by (site, channel). A gadget only in the current
/// scan is *new*; only in the baseline, *lost*; present in both with a
/// different controllability classification, *changed*. Losing a gadget
/// is always a regression; a change only when the classification
/// weakened (User > Massage > Unknown in attacker-strength order — a
/// downgrade means the detector now tells an operator less about
/// exploitability). New gadgets never regress: more detection is
/// progress, and an intentionally grown baseline is re-recorded.
///
/// ScanDiffOptions::InjectedOnly restricts *regression accounting* to
/// the baseline's injected ground-truth sites (Table 3). That is the CI
/// gate mode: injected gadgets are deterministically re-findable under
/// any corpus seeding, while incidental gadget sets may legitimately
/// drift when a cached corpus reshapes the mutation trajectory. The
/// full new/lost/changed lists are reported either way.
///
/// Tools map hasRegressions() to exit code 2 (0 = clean, 1 = usage/IO
/// errors) — teapot_diff's contract with the scan-regress CI job.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_API_SCANDIFF_H
#define TEAPOT_API_SCANDIFF_H

#include "api/ScanResult.h"

#include <string>
#include <vector>

namespace teapot {

struct ScanDiffOptions {
  /// Count only gadgets at the baseline's injection ground-truth sites
  /// as regressions (the CI gate mode; see file comment).
  bool InjectedOnly = false;
};

/// A gadget present in both scans whose classification changed.
struct GadgetDelta {
  runtime::GadgetReport Before;
  runtime::GadgetReport After;
  /// Controllability downgraded (e.g. User -> Unknown): a regression.
  bool Weakened = false;

  bool operator==(const GadgetDelta &O) const = default;
};

/// The structured outcome of diffScans. JSON schema "teapot.diff.v1".
struct ScanDiff {
  static constexpr const char *SchemaName = "teapot.diff.v1";

  // --- Provenance ----------------------------------------------------------
  std::string Workload; // from the current scan
  std::string Preset;
  /// Execution tiers the two scans ran on. Context for the throughput
  /// deltas: all tiers are bit-exact, so cross-engine diffs may differ
  /// wildly in execs/sec but never legitimately in gadgets.
  std::string EngineBefore;
  std::string EngineAfter;
  uint64_t GadgetsBefore = 0;
  uint64_t GadgetsAfter = 0;
  /// The option the diff ran under (recorded in the report).
  bool InjectedOnly = false;

  // --- Gadget deltas (always fully populated, in key order) ----------------
  std::vector<runtime::GadgetReport> NewGadgets;
  std::vector<runtime::GadgetReport> LostGadgets;
  std::vector<GadgetDelta> ChangedGadgets;

  // --- Regressions (respecting ScanDiffOptions::InjectedOnly) --------------
  std::vector<runtime::GadgetReport> RegressedLost;
  std::vector<GadgetDelta> RegressedChanged;

  // --- Coverage / corpus / throughput deltas (after minus before) ----------
  int64_t NormalEdgeDelta = 0;
  int64_t SpecEdgeDelta = 0;
  int64_t CorpusSizeDelta = 0;
  int64_t ExecutionsDelta = 0;
  int64_t GadgetCountDelta = 0;
  double ExecsPerSecBefore = 0;
  double ExecsPerSecAfter = 0;
  double InstsPerSecBefore = 0;
  double InstsPerSecAfter = 0;

  bool hasRegressions() const {
    return !RegressedLost.empty() || !RegressedChanged.empty();
  }

  /// Serializes the report (schema teapot.diff.v1; key-ordered gadget
  /// records, so two diffs of the same scans are byte-identical).
  json::Value toJson() const;

  /// Human-readable multi-line report (what teapot_diff prints).
  std::string describe() const;
};

/// Compares \p After (the current scan) against \p Before (the
/// baseline).
ScanDiff diffScans(const ScanResult &Before, const ScanResult &After,
                   const ScanDiffOptions &Opts = {});

} // namespace teapot

#endif // TEAPOT_API_SCANDIFF_H
