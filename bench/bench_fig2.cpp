//===- bench/bench_fig2.cpp - Figure 2: switch lowering vs gadgets ----------===//
//
// Figure 2 as a measurable experiment: one dispatcher source compiled
// twice — with GCC-style compare-and-branch switch lowering and with
// Clang-style bounds-checked jump tables — then scanned by Teapot under
// the same fuzzing schedule. Only the branch cascade exposes
// per-case conditional branches to mistraining; the jump-table dispatch
// is V1-safe (the residual branch inside case 1's body is present in
// both builds and is reported under both).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::workloads;

namespace {

const char *Dispatcher = R"(
int g_out;
int pick(char *t, int idx) {
  // The case selection is the only thing keeping idx in bounds: each
  // case body indexes the 64-byte table at idx*16. Mistraining a case
  // comparison executes a body with an out-of-range idx.
  switch (idx) {
    case 0: { g_out = t[idx * 16]; break; }
    case 1: { g_out = t[idx * 16 + 1]; break; }
    case 2: { g_out = t[idx * 16 + 2]; break; }
    case 3: { g_out = t[idx * 16 + 3]; break; }
    default: { g_out = -1; break; }
  }
  return g_out;
}
int main() {
  char req[8];
  read_input(req, 1);
  char *t = malloc(64);
  int acc = pick(t, req[0]);
  return acc & 63;
}
)";

} // namespace

int main() {
  printHeader("Figure 2: switch lowering decides whether Spectre-V1 "
              "victims exist");
  printf("%-12s %10s %12s %14s %10s\n", "lowering", "branches",
         "jump table", "branch sites", "gadgets");

  for (lang::SwitchLowering SL :
       {lang::SwitchLowering::Branches, lang::SwitchLowering::JumpTable}) {
    lang::CompileOptions CO;
    CO.Switches = SL;
    auto Bin = lang::compile(Dispatcher, CO);
    if (!Bin)
      reportFatalError(Bin.message());

    // Structural evidence: count JCC vs JMPI in the dispatcher.
    auto M = disasm::disassemble(*Bin);
    unsigned NumJcc = 0, NumJmpi = 0;
    for (const auto &F : M->Funcs)
      for (const auto &B : F.Blocks)
        for (const auto &In : B.Insts) {
          NumJcc += In.I.Op == isa::Opcode::JCC;
          NumJmpi += In.I.Op == isa::Opcode::JMPI;
        }

    auto RW = teapotRewrite(*Bin);
    runtime::RuntimeOptions RT;
    workloads::InstrumentedTarget T(RW, RT);
    fuzz::FuzzerOptions FO;
    FO.Seed = 3;
    FO.MaxIterations = 300;
    FO.MaxInputLen = 8;
    fuzz::Fuzzer F(T, FO);
    // Seed all ops with both small and large arguments.
    for (uint8_t Idx : {0, 1, 2, 3, 9, 200})
      F.addSeed({Idx});
    F.run();

    printf("%-12s %10u %12u %14zu %10zu\n",
           SL == lang::SwitchLowering::Branches ? "branches" : "jumptable",
           NumJcc, NumJmpi, RW.Meta.Trampolines.size(),
           T.RT.Reports.unique().size());
  }

  printf("\nExpected shape: the branch-cascade build exposes more "
         "conditional branch sites\nand strictly more gadget reports than "
         "the jump-table build (Figure 2 / Section 3.2).\n");
  return 0;
}
