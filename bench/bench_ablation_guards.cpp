//===- bench/bench_ablation_guards.cpp - Speculation Shadows ablation -------===//
//
// The core design-choice ablation: what does eliminating the per-site
// `if (in_simulation)` guards buy? We run the same binaries under the
// same ASan-only policy in three configurations:
//
//   guarded    single-copy instrumentation, guards at every site
//              (the Listing 3 architecture)
//   shadows    Speculation Shadows (Teapot)
//   native     uninstrumented
//
// measured both with simulation disabled (pure normal-mode overhead —
// the guards' own cost) and enabled (end-to-end).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::workloads;

int main() {
  constexpr unsigned Reps = 5;
  constexpr uint64_t Budget = 600'000'000;
  printHeader("Ablation: guard elimination (Speculation Shadows vs "
              "guarded single copy, ASan-only policy)");
  printf("%-10s | %12s %12s | %12s %12s | %12s %12s\n", "program",
         "grd-nosim", "shd-nosim", "grd-sim", "shd-sim", "grd-intr",
         "shd-intr");

  for (const Workload &W : allWorkloads()) {
    obj::ObjectFile Bin = buildWorkload(W);
    auto Input = W.LargeInput(1200);

    NativeTarget Native(Bin, Budget);
    Native.execute(Input);
    double TN = timeTarget(Native, Input, Reps);

    // The two architectures under test, as explicit pass compositions:
    // the guarded single copy (create-trampolines, instrument-baseline,
    // layout-and-meta) vs Speculation Shadows (clone-shadow-functions,
    // create-trampolines, place-markers, instrument-real-copy,
    // instrument-shadow-copy, layout-and-meta) under the same ASan-only
    // policy.
    auto SFRW = rewriteWithPipeline(
        Bin, passes::PipelineBuilder::specFuzzBaseline());
    core::RewriterOptions AsanOnly;
    AsanOnly.EnableDift = false;
    auto TPRW = rewriteWithPipeline(
        Bin, passes::PipelineBuilder::teapot(AsanOnly));

    auto Measure = [&](const core::RewriteResult &RW,
                       runtime::RuntimeOptions RT, bool Sim, double &Time,
                       uint64_t &Intr) {
      RT.SimulateSpeculation = Sim;
      RT.EnableDift = false;
      InstrumentedTarget T(RW, RT, Budget);
      T.execute(Input);
      Intr = T.M.executedIntrinsics();
      Time = timeTarget(T, Input, Reps);
    };

    double GN, SN, GS, SS;
    uint64_t GI, SI, Dummy;
    Measure(SFRW, baselines::specFuzzRuntimeOptions(), false, GN, GI);
    Measure(TPRW, perfRunTeapot(), false, SN, SI);
    Measure(SFRW, baselines::specFuzzRuntimeOptions(), true, GS, Dummy);
    Measure(TPRW, perfRunTeapot(), true, SS, Dummy);

    printf("%-10s | %11.2fx %11.2fx | %11.1fx %11.1fx | %12llu %12llu\n",
           W.Name, GN / TN, SN / TN, GS / TN, SS / TN,
           static_cast<unsigned long long>(GI),
           static_cast<unsigned long long>(SI));
  }
  printf("\n(times normalized to native; -intr columns count "
         "instrumentation calls executed\nin one run with simulation "
         "off — the guards the shadow design removes)\n");
  return 0;
}
