//===- bench/bench_ablation_coverage.cpp - Lazy speculative coverage --------===//
//
// Section 6.3's optimization: speculative coverage visits are buffered
// (guard ids only) and flushed at rollback, instead of updating the
// coverage map (and paying the register-preservation cost) at every
// Shadow-Copy block. Both modes must agree on the coverage they produce;
// the lazy one should be cheaper.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::workloads;

int main() {
  constexpr unsigned Reps = 5;
  printHeader("Ablation: lazy vs eager speculative coverage tracking");
  printf("%-10s %12s %12s %10s %14s\n", "program", "lazy(ms)", "eager(ms)",
         "speedup", "cov agree?");

  for (const Workload &W : allWorkloads()) {
    obj::ObjectFile Bin = buildWorkload(W);
    // Both variants need the coverage guards in the binary (the Teapot
    // pipeline with coverage passes enabled); lazy vs eager flushing is
    // decided by the runtime.
    core::RewriterOptions Cov;
    Cov.EnableCoverage = true;
    auto RW = rewriteWithPipeline(Bin, passes::PipelineBuilder::teapot(Cov));
    auto Input = W.LargeInput(1000);

    runtime::RuntimeOptions Lazy;
    Lazy.LazySpecCoverage = true;
    InstrumentedTarget TL(RW, Lazy);
    TL.execute(Input);
    double TLazy = timeTarget(TL, Input, Reps);

    runtime::RuntimeOptions Eager;
    Eager.LazySpecCoverage = false;
    InstrumentedTarget TE(RW, Eager);
    TE.execute(Input);
    double TEager = timeTarget(TE, Input, Reps);

    bool Agree = TL.RT.Cov.specCovered() == TE.RT.Cov.specCovered();
    printf("%-10s %12.2f %12.2f %9.2fx %14s\n", W.Name, TLazy * 1e3,
           TEager * 1e3, TEager / TLazy, Agree ? "yes" : "NO");
  }
  return 0;
}
