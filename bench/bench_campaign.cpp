//===- bench/bench_campaign.cpp - Campaign scaling curve --------------------===//
//
// Throughput (execs/sec and guest insts/sec) of the parallel fuzzing
// campaign over 1/2/4/8 workers, same total execution budget. Workers
// are embarrassingly parallel between epoch barriers, so on enough
// cores the curve is near-linear up to the core count; the speedup
// column is measured against the 1-worker row (which is byte-identical
// to the classic single-threaded Fuzzer).
//
//   $ ./bench_campaign [workload] [total-execs] [--json FILE]
//   $ ./bench_campaign libhtp 4000
//   $ ./bench_campaign jsmn 2000 --json BENCH_campaign.json
//
// --json appends one machine-readable summary object per worker count,
// feeding the BENCH_vm.json perf-trajectory artifact in CI.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "fuzz/Campaign.h"

#include <string>
#include <thread>

using namespace teapot;
using namespace teapot::bench;

int main(int argc, char **argv) {
  const char *Name = "libhtp";
  uint64_t Total = 4000;
  const char *JsonPath = nullptr;
  int Pos = 0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json") {
      if (I + 1 >= argc) {
        fprintf(stderr, "--json requires a file operand\n");
        return 1;
      }
      JsonPath = argv[++I];
    } else if (Arg.rfind("--", 0) == 0) {
      fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    } else if (Pos == 0) {
      Name = argv[I];
      ++Pos;
    } else {
      Total = strtoull(argv[I], nullptr, 10);
    }
  }

  const workloads::Workload *W = workloads::findWorkload(Name);
  if (!W) {
    fprintf(stderr, "unknown workload '%s'\n", Name);
    return 1;
  }
  obj::ObjectFile Bin = buildWorkload(*W);
  Bin.strip();
  core::RewriteResult RW = teapotRewrite(Bin);

  FILE *Json = nullptr;
  if (JsonPath) {
    Json = fopen(JsonPath, "w");
    if (!Json) {
      fprintf(stderr, "cannot open %s\n", JsonPath);
      return 1;
    }
    fprintf(Json, "{\n  \"workload\": \"%s\",\n  \"total_execs\": %llu,\n"
            "  \"hardware_threads\": %u,\n  \"rows\": [\n",
            Name, static_cast<unsigned long long>(Total),
            std::thread::hardware_concurrency());
  }

  printHeader("Campaign scaling: execs/sec vs workers");
  printf("workload %s, %llu total execs, sync every 256 execs/worker, "
         "%u hardware thread(s)\n\n",
         Name, static_cast<unsigned long long>(Total),
         std::thread::hardware_concurrency());
  printf("%8s %10s %9s %10s %10s %8s %8s %7s %8s\n", "workers", "execs",
         "wall(s)", "execs/s", "Minsts/s", "speedup", "corpus", "edges",
         "gadgets");

  double BaseRate = 0;
  bool FirstRow = true;
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    fuzz::CampaignOptions CO;
    CO.Seed = 1;
    CO.TotalIterations = Total;
    CO.Workers = Workers;
    CO.SyncInterval = 256;
    CO.MaxInputLen = 512;
    fuzz::Campaign C(
        workloads::instrumentedTargetFactory(RW, runtime::RuntimeOptions()),
        CO);
    for (const auto &Seed : W->Seeds())
      C.addSeed(Seed);

    fuzz::CampaignStats S;
    double Secs = timeIt(1, [&] { S = C.run(); });
    double Rate = Secs > 0 ? static_cast<double>(S.Executions) / Secs : 0;
    double InstRate =
        Secs > 0 ? static_cast<double>(S.GuestInsts) / Secs : 0;
    if (Workers == 1)
      BaseRate = Rate;
    printf("%8u %10llu %9.3f %10.0f %10.1f %7.2fx %8zu %7zu %8zu\n",
           Workers, static_cast<unsigned long long>(S.Executions), Secs,
           Rate, InstRate / 1e6, BaseRate > 0 ? Rate / BaseRate : 0.0,
           C.corpus().size(), S.NormalEdges + S.SpecEdges, S.UniqueGadgets);
    if (Json) {
      fprintf(Json,
              "%s    {\"workers\": %u, \"execs\": %llu, \"wall_s\": %.6f, "
              "\"execs_per_sec\": %.1f, \"guest_insts\": %llu, "
              "\"insts_per_sec\": %.1f, \"corpus\": %zu, \"edges\": %zu, "
              "\"gadgets\": %zu}",
              FirstRow ? "" : ",\n", Workers,
              static_cast<unsigned long long>(S.Executions), Secs, Rate,
              static_cast<unsigned long long>(S.GuestInsts), InstRate,
              C.corpus().size(), S.NormalEdges + S.SpecEdges,
              S.UniqueGadgets);
      FirstRow = false;
    }
  }
  if (Json) {
    fprintf(Json, "\n  ]\n}\n");
    fclose(Json);
  }
  printf("\nShapes to expect: speedup tracks min(workers, cores); corpus\n"
         "and gadget counts stay in the same ballpark at every worker\n"
         "count (sharded exploration, not lost exploration).\n");
  return 0;
}
