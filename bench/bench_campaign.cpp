//===- bench/bench_campaign.cpp - Campaign scaling curve --------------------===//
//
// Throughput (execs/sec and guest insts/sec) of the parallel fuzzing
// campaign, driven through the teapot::Scanner facade (load + rewrite
// once, one run() per row):
//
//   1. an engine comparison at one worker — the same campaign executed
//      on each vm::Machine tier (interp, block, jit), speedup measured
//      against the block engine (the pre-JIT default), and
//   2. the worker scaling curve over 1/2/4/8 workers on one engine.
//      Workers are embarrassingly parallel between epoch barriers, so on
//      enough cores the curve is near-linear up to the core count; the
//      speedup column is measured against the 1-worker row.
//
// All tiers are bit-exact, so every row of the engine sweep reports the
// same corpus/edges/gadgets — only the wall clock moves.
//
//   $ ./bench_campaign [workload] [total-execs] [--engine NAME] [--json FILE]
//   $ ./bench_campaign libhtp 4000
//   $ ./bench_campaign jsmn 2000 --engine jit --json BENCH_campaign.json
//
// --engine restricts both sweeps to one tier; by default the engine
// comparison covers all three and the worker sweep runs on jit.
// --json emits one machine-readable object (schema "teapot.bench.v1")
// with per-engine rows ("engines", hot-path counters included) and
// per-worker-count rows ("rows"), feeding the BENCH_vm.json
// perf-trajectory artifact in CI.
//
//===----------------------------------------------------------------------===//

#include "api/Scanner.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "vm/Machine.h"

#include "BenchUtil.h"

#include <string>
#include <thread>

using namespace teapot;
using namespace teapot::bench;

int main(int argc, char **argv) {
  support::ExitOnError Exit("bench_campaign: ");

  const char *Name = "libhtp";
  uint64_t Total = 4000;
  const char *JsonPath = nullptr;
  bool EngineGiven = false;
  vm::Machine::Engine Engine = vm::Machine::Engine::Jit;
  int Pos = 0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json") {
      if (I + 1 >= argc) {
        fprintf(stderr, "--json requires a file operand\n");
        return 1;
      }
      JsonPath = argv[++I];
    } else if (Arg == "--engine") {
      if (I + 1 >= argc) {
        fprintf(stderr, "--engine requires an operand\n");
        return 1;
      }
      if (!vm::parseEngineName(argv[++I], Engine)) {
        fprintf(stderr,
                "--engine expects interp, block, or jit (got '%s')\n",
                argv[I]);
        return 1;
      }
      EngineGiven = true;
    } else if (Arg.rfind("--", 0) == 0) {
      fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    } else if (Pos == 0) {
      Name = argv[I];
      ++Pos;
    } else {
      Total = Exit(
          support::parseUInt(Arg, "total-execs", 1'000'000'000ULL));
    }
  }

  ScanConfig Cfg = Exit(ScanConfig::preset("teapot"));
  Cfg.Campaign.Seed = 1;
  Cfg.Campaign.TotalIterations = Total;
  Cfg.Campaign.SyncInterval = 256;
  Cfg.Campaign.MaxInputLen = 512;
  Cfg.Engine = Engine;

  Scanner S(Cfg);
  Exit(S.loadWorkload(Name));
  Exit(S.rewrite());

  // Open the artifact only once the inputs resolved (a bad workload
  // name must not truncate an existing file), but still before minutes
  // of benching so a bad path fails fast.
  FILE *Json = nullptr;
  if (JsonPath) {
    Json = fopen(JsonPath, "w");
    if (!Json) {
      fprintf(stderr, "cannot open %s\n", JsonPath);
      return 1;
    }
  }

  json::Value Doc = json::Value::object();
  Doc.set("schema", "teapot.bench.v1");
  Doc.set("workload", Name);
  Doc.set("total_execs", Total);
  Doc.set("hardware_threads", std::thread::hardware_concurrency());
  Doc.set("engine", vm::engineName(vm::resolveEngine(Engine)));

  // --- 1. Engine comparison (1 worker) -------------------------------------
  printHeader("Campaign throughput: execution engines (1 worker)");
  printf("workload %s, %llu total execs per row\n\n", Name,
         static_cast<unsigned long long>(Total));
  printf("%8s %10s %9s %10s %10s %9s %8s %7s %8s\n", "engine", "execs",
         "wall(s)", "execs/s", "Minsts/s", "vs block", "corpus", "edges",
         "gadgets");

  const vm::Machine::Engine AllEngines[] = {vm::Machine::Engine::Interpreter,
                                            vm::Machine::Engine::Block,
                                            vm::Machine::Engine::Jit};
  json::Value EngineRows = json::Value::array();
  double BlockRate = 0;
  S.config().Campaign.Workers = 1;
  for (vm::Machine::Engine E : AllEngines) {
    if (EngineGiven && E != Engine)
      continue;
    S.config().Engine = E;
    ScanResult R = Exit(S.run());
    double Rate = R.execsPerSec();
    if (R.Engine == "block" && BlockRate == 0)
      BlockRate = Rate;
    printf("%8s %10llu %9.3f %10.0f %10.1f %8.2fx %8llu %7llu %8zu\n",
           R.Engine.c_str(), static_cast<unsigned long long>(R.Executions),
           R.WallSeconds, Rate, R.instsPerSec() / 1e6,
           BlockRate > 0 ? Rate / BlockRate : 0.0,
           static_cast<unsigned long long>(R.CorpusSize),
           static_cast<unsigned long long>(R.NormalEdges + R.SpecEdges),
           R.Gadgets.size());
    json::Value Row = json::Value::object();
    Row.set("engine", R.Engine); // the resolved tier the row measured
    Row.set("requested", vm::engineName(E));
    Row.set("execs", R.Executions);
    Row.set("wall_s", R.WallSeconds);
    Row.set("execs_per_sec", Rate);
    Row.set("guest_insts", R.GuestInsts);
    Row.set("insts_per_sec", R.instsPerSec());
    // Hot-path counters (per-engine diagnostics: the jit's inline TLB
    // probe and the inline intrinsic retires never reach the counted
    // C++ paths, so the tiers legitimately differ here).
    Row.set("tlb_guest_hits", R.TlbGuestHits);
    Row.set("tlb_runtime_hits", R.TlbRuntimeHits);
    Row.set("slow_path_calls", R.TlbSlowPathCalls);
    Row.set("intrinsic_fast_path_hits", R.IntrinsicFastPathHits);
    EngineRows.push(std::move(Row));
  }
  Doc.set("engines", std::move(EngineRows));

  // --- 2. Worker scaling (selected engine) ---------------------------------
  S.config().Engine = Engine;
  printHeader("Campaign scaling: execs/sec vs workers");
  printf("workload %s, engine %s, %llu total execs, sync every 256 "
         "execs/worker, %u hardware thread(s)\n\n",
         Name, vm::engineName(vm::resolveEngine(Engine)),
         static_cast<unsigned long long>(Total),
         std::thread::hardware_concurrency());
  printf("%8s %10s %9s %10s %10s %8s %8s %7s %8s\n", "workers", "execs",
         "wall(s)", "execs/s", "Minsts/s", "speedup", "corpus", "edges",
         "gadgets");

  json::Value Rows = json::Value::array();
  double BaseRate = 0;
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    S.config().Campaign.Workers = Workers;
    ScanResult R = Exit(S.run());
    double Rate = R.execsPerSec();
    if (Workers == 1)
      BaseRate = Rate;
    printf("%8u %10llu %9.3f %10.0f %10.1f %7.2fx %8llu %7llu %8zu\n",
           Workers, static_cast<unsigned long long>(R.Executions),
           R.WallSeconds, Rate, R.instsPerSec() / 1e6,
           BaseRate > 0 ? Rate / BaseRate : 0.0,
           static_cast<unsigned long long>(R.CorpusSize),
           static_cast<unsigned long long>(R.NormalEdges + R.SpecEdges),
           R.Gadgets.size());
    json::Value Row = json::Value::object();
    Row.set("workers", Workers);
    Row.set("engine", R.Engine);
    Row.set("execs", R.Executions);
    Row.set("wall_s", R.WallSeconds);
    Row.set("execs_per_sec", Rate);
    Row.set("guest_insts", R.GuestInsts);
    Row.set("insts_per_sec", R.instsPerSec());
    Row.set("corpus", R.CorpusSize);
    Row.set("edges", R.NormalEdges + R.SpecEdges);
    Row.set("gadgets", R.Gadgets.size());
    Rows.push(std::move(Row));
  }
  Doc.set("rows", std::move(Rows));

  if (Json) {
    std::string Text = Doc.dump(true) + "\n";
    fwrite(Text.data(), 1, Text.size(), Json);
    fclose(Json);
  }
  printf("\nShapes to expect: the engine rows find identical corpora and\n"
         "gadget sets (bit-exact tiers) in interp < block < jit speed\n"
         "order; worker-scaling speedup tracks min(workers, cores), with\n"
         "corpus and gadget counts in the same ballpark at every worker\n"
         "count (sharded exploration, not lost exploration).\n");
  return 0;
}
