//===- bench/bench_campaign.cpp - Campaign scaling curve --------------------===//
//
// Throughput (execs/sec) of the parallel fuzzing campaign over 1/2/4/8
// workers, same total execution budget. Workers are embarrassingly
// parallel between epoch barriers, so on enough cores the curve is
// near-linear up to the core count; the speedup column is measured
// against the 1-worker row (which is byte-identical to the classic
// single-threaded Fuzzer).
//
//   $ ./bench_campaign [workload] [total-execs]
//   $ ./bench_campaign libhtp 4000
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "fuzz/Campaign.h"

#include <thread>

using namespace teapot;
using namespace teapot::bench;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "libhtp";
  uint64_t Total = argc > 2 ? strtoull(argv[2], nullptr, 10) : 4000;

  const workloads::Workload *W = workloads::findWorkload(Name);
  if (!W) {
    fprintf(stderr, "unknown workload '%s'\n", Name);
    return 1;
  }
  obj::ObjectFile Bin = buildWorkload(*W);
  Bin.strip();
  core::RewriteResult RW = teapotRewrite(Bin);

  printHeader("Campaign scaling: execs/sec vs workers");
  printf("workload %s, %llu total execs, sync every 256 execs/worker, "
         "%u hardware thread(s)\n\n",
         Name, static_cast<unsigned long long>(Total),
         std::thread::hardware_concurrency());
  printf("%8s %10s %9s %10s %8s %8s %7s %8s\n", "workers", "execs",
         "wall(s)", "execs/s", "speedup", "corpus", "edges", "gadgets");

  double BaseRate = 0;
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    fuzz::CampaignOptions CO;
    CO.Seed = 1;
    CO.TotalIterations = Total;
    CO.Workers = Workers;
    CO.SyncInterval = 256;
    CO.MaxInputLen = 512;
    fuzz::Campaign C(
        workloads::instrumentedTargetFactory(RW, runtime::RuntimeOptions()),
        CO);
    for (const auto &Seed : W->Seeds())
      C.addSeed(Seed);

    fuzz::CampaignStats S;
    double Secs = timeIt(1, [&] { S = C.run(); });
    double Rate = Secs > 0 ? static_cast<double>(S.Executions) / Secs : 0;
    if (Workers == 1)
      BaseRate = Rate;
    printf("%8u %10llu %9.3f %10.0f %7.2fx %8zu %7zu %8zu\n", Workers,
           static_cast<unsigned long long>(S.Executions), Secs, Rate,
           BaseRate > 0 ? Rate / BaseRate : 0.0, C.corpus().size(),
           S.NormalEdges + S.SpecEdges, S.UniqueGadgets);
  }
  printf("\nShapes to expect: speedup tracks min(workers, cores); corpus\n"
         "and gadget counts stay in the same ballpark at every worker\n"
         "count (sharded exploration, not lost exploration).\n");
  return 0;
}
