//===- bench/bench_ablation_heuristics.cpp - Nesting heuristics -------------===//
//
// Section 6.1's exploration heuristics compared on the nested-branch-rich
// decompressor: simulations spent, unique gadgets found, and wall time
// under the same fuzzing schedule.
//
//   off       no nested speculation (depth 1)
//   specfuzz  per-branch encounter counts unlock depth gradually
//   spectaint depth-first, at most 5 simulations per branch
//   hybrid    Teapot: full depth for the first 5 runs, SpecFuzz after
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::runtime;
using namespace teapot::workloads;

int main() {
  printHeader("Ablation: nested-speculation heuristics (brotli workload)");
  printf("%-10s %14s %12s %10s %12s\n", "policy", "simulations",
         "nested", "gadgets", "time(s)");

  const Workload &W = *findWorkload("brotli");
  obj::ObjectFile Bin = buildWorkload(W);
  // Nesting heuristics are runtime policies over one Speculation
  // Shadows build (the full Teapot pipeline, DIFT included).
  auto RW = rewriteWithPipeline(Bin, passes::PipelineBuilder::teapot());

  struct Config {
    const char *Name;
    NestingPolicy Policy;
  } Configs[] = {{"off", NestingPolicy::Off},
                 {"specfuzz", NestingPolicy::SpecFuzz},
                 {"spectaint", NestingPolicy::SpecTaint},
                 {"hybrid", NestingPolicy::Hybrid}};

  for (const Config &C : Configs) {
    RuntimeOptions RT;
    RT.Nesting = C.Policy;
    InstrumentedTarget T(RW, RT);
    double Secs = timeIt(1, [&] {
      fuzz::FuzzerOptions FO;
      FO.Seed = 5;
      FO.MaxIterations = 350;
      FO.MaxInputLen = 128;
      fuzz::Fuzzer F(T, FO);
      for (auto Seed : W.Seeds())
        F.addSeed(Seed);
      F.addSeed({1, 2, 'a', 'b', 2, 9, 3, 0});
      F.run();
    });
    printf("%-10s %14llu %12llu %10zu %12.2f\n", C.Name,
           static_cast<unsigned long long>(T.RT.Stats.Simulations),
           static_cast<unsigned long long>(T.RT.Stats.NestedSimulations),
           T.RT.Reports.unique().size(), Secs);
  }
  printf("\nExpected shape: hybrid finds at least as many gadgets as "
         "specfuzz/spectaint;\noff misses nested-only gadgets; spectaint "
         "stops exploring after its try budget\n(Section 7.3's analysis "
         "of the brotli gap).\n");
  return 0;
}
