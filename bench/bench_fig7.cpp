//===- bench/bench_fig7.cpp - Figures 1 & 7: run-time performance ----------===//
//
// Regenerates Figure 7 (and its Figure 1 subset): execution time of
// SpecTaint- / SpecFuzz- / Teapot-processed programs on large crafted
// inputs, normalized to the native run time. Nested speculation and all
// skipping heuristics are disabled for every implementation, as in
// Section 7.1. Averaged over several runs.
//
// Expected shape (paper): SpecTaint an order of magnitude slower than
// SpecFuzz (Fig. 1); Teapot >20x faster than SpecTaint and within
// 0.5x-2.0x of SpecFuzz (Fig. 7).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::workloads;

int main() {
  constexpr unsigned Reps = 5;
  constexpr size_t InputBytes = 1500;
  constexpr uint64_t Budget = 600'000'000;

  printHeader("Figure 7: normalized run time (large crafted inputs, no "
              "nesting, no heuristics)");
  printf("%-10s %12s %14s %14s %14s\n", "program", "native(ms)",
         "SpecTaint", "SpecFuzz", "Teapot");

  double SumTaintOverTeapot = 0, MinSF = 1e9, MaxSF = 0;
  unsigned TaintCount = 0;

  for (const Workload &W : allWorkloads()) {
    obj::ObjectFile Bin = buildWorkload(W);
    std::vector<uint8_t> Input = W.LargeInput(InputBytes);

    NativeTarget Native(Bin, Budget);
    Native.execute(Input); // warm the decode cache
    double TNative = timeTarget(Native, Input, Reps);

    EmulatorTarget Taint(Bin, perfRunSpecTaint(), Budget);
    Taint.execute(Input);
    double TTaint = timeTarget(Taint, Input, Reps);

    auto SFRW = specFuzzRewrite(Bin);
    InstrumentedTarget SF(SFRW, perfRunSpecFuzz(), Budget);
    SF.execute(Input);
    double TSF = timeTarget(SF, Input, Reps);

    auto TPRW = teapotRewrite(Bin);
    InstrumentedTarget TP(TPRW, perfRunTeapot(), Budget);
    TP.execute(Input);
    double TTP = timeTarget(TP, Input, Reps);

    printf("%-10s %12.3f %13.1fx %13.1fx %13.1fx\n", W.Name, TNative * 1e3,
           TTaint / TNative, TSF / TNative, TTP / TNative);

    SumTaintOverTeapot += TTaint / TTP;
    ++TaintCount;
    MinSF = std::min(MinSF, TTP / TSF);
    MaxSF = std::max(MaxSF, TTP / TSF);
  }

  printf("\nSection 7.1 claims, measured on this substrate:\n");
  printf("  Teapot vs SpecTaint: %.1fx faster on average (paper: >20x)\n",
         SumTaintOverTeapot / TaintCount);
  printf("  Teapot vs SpecFuzz:  %.2fx .. %.2fx of SpecFuzz's run time "
         "(paper: 0.5x-2.0x)\n",
         MinSF, MaxSF);
  printf("\nFigure 1 subset (SpecTaint vs SpecFuzz on jsmn/libyaml) is the "
         "first two rows above.\n");
  printf("Note: the paper could not execute SpecTaint on libhtp/brotli/"
         "openssl (emulator crashes);\nour reimplementation runs them, so "
         "all five rows carry SpecTaint numbers.\n");
  return 0;
}
