//===- bench/bench_table3.cpp - Table 3: artificial gadget injection --------===//
//
// Regenerates Table 3: sample Spectre-V1 gadgets are injected into the
// real-world programs at recorded points (ground truth), the binaries
// are fuzzed by each detector, and TP/FP/FN + precision/recall are
// computed against the ground truth. Following Section 7.2: real taint
// sources are disabled, the injected variable is the only "user input"
// (attacker-direct), and the Massage policies are off. openssl is
// excluded (SpecTaint never published its injection points).
//
// Expected shape (paper): Teapot 100% precision, recall 100% except
// libyaml's two unreachable points (80%); SpecFuzz same recall with
// precision collapsing under false positives.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <set>

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::workloads;

namespace {

struct Score {
  unsigned TP = 0, FP = 0, FN = 0;
  double precision() const { return TP + FP ? 100.0 * TP / (TP + FP) : 100; }
  double recall(unsigned GT) const { return GT ? 100.0 * TP / GT : 100; }
};

Score scoreBySites(const std::vector<runtime::GadgetReport> &Reports,
                   const std::set<uint64_t> &Markers, unsigned GT) {
  Score S;
  std::set<uint64_t> Hit;
  for (const auto &R : Reports) {
    if (Markers.count(R.Site))
      Hit.insert(R.Site);
    else
      ++S.FP;
  }
  S.TP = static_cast<unsigned>(Hit.size());
  S.FN = GT - S.TP;
  return S;
}

/// Maps an emulator report PC into a gadget function range.
uint64_t siteForPC(uint64_t PC, const ir::LayoutResult &L,
                   const InjectionResult &Inj) {
  for (size_t K = 0; K != Inj.GadgetFuncIdx.size(); ++K) {
    uint32_t F = Inj.GadgetFuncIdx[K];
    if (PC >= L.FuncStart[F] && PC < L.FuncEnd[F])
      return Inj.SiteMarkers[K];
  }
  return PC;
}

} // namespace

int main() {
  constexpr uint64_t FuzzIters = 300;
  printHeader("Table 3: detection of artificially injected gadgets");
  printf("%-10s %3s | %28s | %28s | %28s\n", "program", "GT",
         "Teapot (TP/FP/FN P% R%)", "SpecFuzz (reproduced)",
         "SpecTaint-style");

  for (const Workload &W : allWorkloads()) {
    if (W.InjectCount == 0)
      continue; // openssl: excluded, as in the paper
    obj::ObjectFile Bin = buildWorkload(W);
    auto Lifted = disasm::disassemble(Bin);
    if (!Lifted)
      reportFatalError(Lifted.message());

    InjectorOptions IO;
    IO.Count = W.InjectCount;
    IO.UnreachableFuncs = W.UnreachableFuncs;
    ir::Module M = std::move(*Lifted);
    auto Inj = injectGadgets(M, IO);
    if (!Inj)
      reportFatalError(Inj.message());
    std::set<uint64_t> Markers(Inj->SiteMarkers.begin(),
                               Inj->SiteMarkers.end());

    // Shared fuzzing schedule for all three detectors.
    auto Campaign = [&](fuzz::FuzzTarget &T) {
      fuzz::FuzzerOptions FO;
      FO.Seed = 42;
      FO.MaxIterations = FuzzIters;
      FO.MaxInputLen = 512;
      fuzz::Fuzzer F(T, FO);
      for (auto Seed : W.Seeds()) {
        // The last 8 bytes feed the injected "user input" variable; make
        // sure both in- and out-of-bounds pokes appear in the corpus.
        std::vector<uint8_t> A = Seed;
        A.insert(A.end(), {200, 0, 0, 0, 0, 0, 0, 0});
        F.addSeed(A);
        std::vector<uint8_t> B = Seed;
        B.insert(B.end(), {5, 0, 0, 0, 0, 0, 0, 0});
        F.addSeed(B);
      }
      F.run();
    };

    // Teapot (Kasper policy, artificial-experiment taint config).
    ir::Module MT = M;
    auto TPRW = core::rewriteModule(std::move(MT), {});
    runtime::RuntimeOptions TRT;
    TRT.TaintInput = false;
    TRT.MassagePolicy = false;
    TRT.ExtraTaintAddr = Inj->InjInputAddr;
    TRT.ExtraTaintLen = 8;
    InstrumentedTarget TP(*TPRW, TRT);
    TP.pokeInputTo(Inj->InjInputAddr);
    Campaign(TP);
    Score ST = scoreBySites(TP.RT.Reports.unique(), Markers, W.InjectCount);

    // SpecFuzz (reproduced): reports every speculative OOB access.
    ir::Module MS = M;
    auto SFRW = baselines::specFuzzRewriteModule(std::move(MS));
    if (!SFRW)
      reportFatalError(SFRW.message());
    InstrumentedTarget SF(*SFRW, baselines::specFuzzRuntimeOptions());
    SF.pokeInputTo(Inj->InjInputAddr);
    Campaign(SF);
    Score SS = scoreBySites(SF.RT.Reports.unique(), Markers, W.InjectCount);

    // SpecTaint-style emulator over the injected (uninstrumented) binary.
    ir::Module ME = M;
    obj::ObjectFile InjBin;
    auto L = ir::layOut(ME, InjBin);
    if (!L)
      reportFatalError(L.message());
    baselines::SpecTaintOptions STO;
    STO.TaintInput = false;
    STO.ExtraTaintAddr = Inj->InjInputAddr;
    STO.ExtraTaintLen = 8;
    EmulatorTarget EM(InjBin, STO);
    EM.pokeInputTo(Inj->InjInputAddr);
    Campaign(EM);
    std::vector<runtime::GadgetReport> Mapped;
    for (auto R : EM.E.Reports.unique()) {
      R.Site = siteForPC(R.Site, *L, *Inj);
      Mapped.push_back(R);
    }
    Score SE = scoreBySites(Mapped, Markers, W.InjectCount);

    auto Cell = [](const Score &S, unsigned GT) {
      static char Buf[4][64];
      static int Slot = 0;
      char *B = Buf[Slot = (Slot + 1) & 3];
      snprintf(B, 64, "%2u/%3u/%2u %5.1f%% %5.1f%%", S.TP, S.FP, S.FN,
               S.precision(), S.recall(GT));
      return B;
    };
    printf("%-10s %3u | %28s | %28s | %28s\n", W.Name, W.InjectCount,
           Cell(ST, W.InjectCount), Cell(SS, W.InjectCount),
           Cell(SE, W.InjectCount));
  }

  printf("\nPaper reference (Table 3):\n");
  printf("  Teapot:   precision 100%% everywhere; recall 100%% except "
         "libyaml 80%% (2 gadgets\n            unreachable from the "
         "fuzzing driver).\n");
  printf("  SpecFuzz: recall like Teapot, precision 2-14%% (hundreds of "
         "false positives).\n");
  printf("  SpecTaint (as reported by its authors): precision 100%%, "
         "recall 70-100%%.\n");
  return 0;
}
