//===- bench/bench_table4.cpp - Table 4: gadgets in vanilla binaries --------===//
//
// Regenerates Table 4: fuzz the unmodified (vanilla) programs and count
// the unique gadgets Teapot reports, categorized by attacker
// controllability x leaking side channel, next to the SpecFuzz totals.
// Numbers across policies are not directly comparable (the paper makes
// the same caveat); the shapes to check are (a) Teapot reports far fewer
// User-MDS than SpecFuzz's raw OOB totals (DIFT kills the false
// positives), (b) the decompressor dominates the gadget counts through
// its nested validation branches, (c) jsmn reports ~0.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::runtime;
using namespace teapot::workloads;

int main() {
  constexpr uint64_t FuzzIters = 500;
  printHeader("Table 4: gadgets found in vanilla binaries "
              "(deterministic stand-in for the 24h campaign)");
  printf("%-10s %9s | %5s %5s %5s %5s %5s %5s | %7s %7s %5s\n", "program",
         "SpecFuzz", "U-MDS", "U-Cch", "U-Prt", "M-MDS", "M-Cch", "M-Prt",
         "TotU-*", "TotM-*", "Tot");

  for (const Workload &W : allWorkloads()) {
    obj::ObjectFile Bin = buildWorkload(W);
    Bin.strip(); // COTS conditions

    auto Campaign = [&](fuzz::FuzzTarget &T) {
      fuzz::FuzzerOptions FO;
      FO.Seed = 7;
      FO.MaxIterations = FuzzIters;
      FO.MaxInputLen = 512;
      fuzz::Fuzzer F(T, FO);
      for (auto Seed : W.Seeds())
        F.addSeed(Seed);
      F.run();
    };

    auto TPRW = teapotRewrite(Bin);
    runtime::RuntimeOptions RT; // full Kasper policy, hybrid nesting
    InstrumentedTarget TP(TPRW, RT);
    Campaign(TP);

    auto SFRW = specFuzzRewrite(Bin);
    InstrumentedTarget SF(SFRW, baselines::specFuzzRuntimeOptions());
    Campaign(SF);

    const ReportSink &R = TP.RT.Reports;
    size_t UM = R.count(Controllability::User, Channel::MDS);
    size_t UC = R.count(Controllability::User, Channel::Cache);
    size_t UP = R.count(Controllability::User, Channel::Port);
    size_t MM = R.count(Controllability::Massage, Channel::MDS);
    size_t MC = R.count(Controllability::Massage, Channel::Cache);
    size_t MP = R.count(Controllability::Massage, Channel::Port);
    printf("%-10s %9zu | %5zu %5zu %5zu %5zu %5zu %5zu | %7zu %7zu %5zu\n",
           W.Name, SF.RT.Reports.unique().size(), UM, UC, UP, MM, MC, MP,
           UM + UC + UP, MM + MC + MP, R.unique().size());
  }

  printf("\nPaper reference (Table 4, 24h x 8 threads on an EPYC 9684X):\n");
  printf("  jsmn 0 total; brotli dominates (2502 total, mostly nested-"
         "branch gadgets);\n  SpecFuzz totals exceed Teapot User-MDS "
         "everywhere (no DIFT -> false positives).\n");
  return 0;
}
