//===- bench/bench_layout.cpp - Tables 1 & 2: shadow memory layout ----------===//
//
// Prints and re-derives the user-accessible memory regions of Table 1
// (ASan only) and Table 2 (ASan + DIFT tag shadow), verifying the
// flip-bit-45 translation on the region bounds.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "runtime/ShadowLayout.h"
#include "support/StringUtils.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::runtime;
using teapot::toHex;

int main() {
  printHeader("Table 1: user-accessible regions with ASan");
  printf("  %-8s %18s %18s\n", "Name", "Start", "End");
  printf("  %-8s %18s %18s\n", "HighMem",
         toHex(obj::Table1HighMemStart).c_str(),
         toHex(obj::HighMemEnd).c_str());
  printf("  %-8s %18s %18s\n", "LowMem", toHex(obj::LowMemStart).c_str(),
         toHex(obj::LowMemEnd).c_str());
  printf("  shadow(addr) = (addr >> %u) + %s\n", AsanShadowScale,
         toHex(AsanShadowOffset).c_str());

  printHeader("Table 2: user-accessible memory and tag shadow regions "
              "with ASan + DIFT");
  printf("  %-8s %18s %18s\n", "Name", "Start", "End");
  printf("  %-8s %18s %18s\n", "HighMem", toHex(obj::HighMemStart).c_str(),
         toHex(obj::HighMemEnd).c_str());
  printf("  %-8s %18s %18s\n", "HighTag", toHex(HighTagStart).c_str(),
         toHex(HighTagEnd).c_str());
  printf("  %-8s %18s %18s\n", "LowTag", toHex(LowTagStart).c_str(),
         toHex(LowTagEnd).c_str());
  printf("  %-8s %18s %18s\n", "LowMem", toHex(obj::LowMemStart).c_str(),
         toHex(obj::LowMemEnd).c_str());
  printf("  tag(addr) = addr XOR %s (flip bit 45)\n",
         toHex(TagFlipBit).c_str());

  bool Ok = tagShadowAddr(obj::HighMemStart) == HighTagStart &&
            tagShadowAddr(obj::HighMemEnd) == HighTagEnd &&
            tagShadowAddr(obj::LowMemStart) == LowTagStart &&
            tagShadowAddr(obj::LowMemEnd) == LowTagEnd;
  printf("\n  translation check on all region bounds: %s\n",
         Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
