//===- bench/BenchUtil.h - Shared benchmark plumbing --------------*- C++ -*-===//
//
// Helpers shared by the per-figure/per-table benchmark binaries: building
// the four detector variants of a workload, deterministic timing, and
// paper-style table printing. Wall-clock numbers are measured, never
// assumed; the *shapes* (who wins, by what factor) are what EXPERIMENTS.md
// compares against the paper.
//
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_BENCH_BENCHUTIL_H
#define TEAPOT_BENCH_BENCHUTIL_H

#include "baselines/SpecFuzz.h"
#include "baselines/SpecTaint.h"
#include "core/TeapotRewriter.h"
#include "disasm/Disassembler.h"
#include "fuzz/Fuzzer.h"
#include "ir/Layout.h"
#include "lang/MiniCC.h"
#include "passes/PipelineBuilder.h"
#include "workloads/Harness.h"
#include "workloads/Injector.h"
#include "workloads/Programs.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace teapot {
namespace bench {

inline obj::ObjectFile buildWorkload(const workloads::Workload &W) {
  auto Bin = lang::compile(W.Source);
  if (!Bin)
    reportFatalError("workload compile failed: " + Bin.message());
  return std::move(*Bin);
}

/// Runs an explicit pass composition over \p Bin — the way the ablation
/// benches declare their rewriter variants.
inline core::RewriteResult rewriteWithPipeline(const obj::ObjectFile &Bin,
                                               passes::PipelineBuilder P) {
  auto RW = passes::runPipeline(Bin, std::move(P));
  if (!RW)
    reportFatalError("rewrite failed: " + RW.message());
  return std::move(*RW);
}

inline core::RewriteResult teapotRewrite(const obj::ObjectFile &Bin,
                                         bool Dift = true) {
  core::RewriterOptions O;
  O.EnableDift = Dift;
  return rewriteWithPipeline(Bin, passes::PipelineBuilder::teapot(O));
}

inline core::RewriteResult specFuzzRewrite(const obj::ObjectFile &Bin) {
  return rewriteWithPipeline(Bin, passes::PipelineBuilder::specFuzzBaseline());
}

/// Wall-clock seconds for \p Reps invocations of \p Fn (averaged).
inline double timeIt(unsigned Reps, const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count() / Reps;
}

inline void printHeader(const char *Title) {
  printf("\n================================================================\n");
  printf("%s\n", Title);
  printf("================================================================\n");
}

/// Figure 1 / Figure 7 experiment configuration: nested speculation and
/// skipping heuristics disabled for every implementation (Section 7.1).
inline runtime::RuntimeOptions perfRunTeapot() {
  runtime::RuntimeOptions O;
  O.Nesting = runtime::NestingPolicy::Off;
  return O;
}

inline runtime::RuntimeOptions perfRunSpecFuzz() {
  runtime::RuntimeOptions O = baselines::specFuzzRuntimeOptions();
  O.Nesting = runtime::NestingPolicy::Off;
  return O;
}

inline baselines::SpecTaintOptions perfRunSpecTaint() {
  baselines::SpecTaintOptions O;
  O.MaxDepth = 1;           // no nested simulation
  O.Tries = 0x7fffffff;     // no skipping heuristic
  return O;
}

/// Runs one input through a target several times and returns the average
/// wall time per run.
template <typename Target>
double timeTarget(Target &T, const std::vector<uint8_t> &Input,
                  unsigned Reps) {
  return timeIt(Reps, [&] { T.execute(Input); });
}

} // namespace bench
} // namespace teapot

#endif
