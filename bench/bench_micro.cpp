//===- bench/bench_micro.cpp - google-benchmark micro-benchmarks ------------===//
//
// Microbenchmarks of the substrate hot paths (instruction codec, VM
// dispatch, sparse-memory reset, DIFT transfer, checkpoint/rollback) —
// the per-operation costs the figure-level numbers decompose into.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "asm/Assembler.h"

#include <benchmark/benchmark.h>

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::isa;
using namespace teapot::workloads;

static void BM_EncodeDecode(benchmark::State &State) {
  Instruction I = Instruction::load(R1, MemRef{R2, R3, 8, -64}, 4);
  std::vector<uint8_t> Bytes;
  for (auto _ : State) {
    Bytes.clear();
    encode(I, Bytes);
    auto D = decode(Bytes.data(), Bytes.size(), 0);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_EncodeDecode);

namespace {

/// The shared dispatch workload: a tight arithmetic loop, so the numbers
/// measure raw engine throughput rather than memory or hook costs.
void benchDispatch(benchmark::State &State, vm::Machine::Engine Eng) {
  auto Bin = assembler::assemble(R"(
.text
main:
    mov r0, 0
    mov r1, 100000
loop:
    add r0, 3
    sub r1, 1
    cmp r1, 0
    j.ne loop
    halt
)");
  vm::Machine M;
  M.Eng = Eng;
  cantFail(M.loadObject(*Bin));
  M.captureBaseline();
  for (auto _ : State) {
    M.resetToBaseline();
    M.run(1'000'000);
  }
  State.SetItemsProcessed(State.iterations() * 400000);
}

} // namespace

static void BM_VmDispatch(benchmark::State &State) {
  // Pinned to the block engine: the pre-JIT compiled tier, and the
  // baseline BM_JitDispatch is compared against.
  benchDispatch(State, vm::Machine::Engine::Block);
}
BENCHMARK(BM_VmDispatch);

static void BM_JitDispatch(benchmark::State &State) {
  // The per-block x86-64 JIT tier (resolves to block on non-x86-64
  // hosts, where both benchmarks then report the same engine).
  benchDispatch(State, vm::Machine::Engine::Jit);
}
BENCHMARK(BM_JitDispatch);

static void BM_MemoryReset(benchmark::State &State) {
  vm::Memory Mem;
  for (uint64_t A = 0; A != 64; ++A)
    Mem.writeU8(A * vm::Memory::PageSize, 1);
  Mem.captureBaseline();
  for (auto _ : State) {
    for (uint64_t A = 0; A != 64; ++A)
      Mem.writeU8(A * vm::Memory::PageSize + 7, 2);
    Mem.resetToBaseline();
  }
}
BENCHMARK(BM_MemoryReset);

static void BM_TagTransfer(benchmark::State &State) {
  vm::Machine M;
  runtime::TagEngine T(M);
  T.RegTags[R1] = runtime::TagUser;
  Instruction I = Instruction::alu(Opcode::ADD, R0, Operand::reg(R1));
  for (auto _ : State) {
    T.transfer(I);
    benchmark::DoNotOptimize(T.RegTags[R0]);
  }
}
BENCHMARK(BM_TagTransfer);

static void BM_InstrumentedExec(benchmark::State &State) {
  const Workload &W = *findWorkload("jsmn");
  obj::ObjectFile Bin = buildWorkload(W);
  auto RW = teapotRewrite(Bin);
  runtime::RuntimeOptions RT;
  InstrumentedTarget T(RW, RT);
  auto Seeds = W.Seeds();
  for (auto _ : State)
    T.execute(Seeds[0]);
}
BENCHMARK(BM_InstrumentedExec);

static void BM_RewriteJsmn(benchmark::State &State) {
  const Workload &W = *findWorkload("jsmn");
  obj::ObjectFile Bin = buildWorkload(W);
  for (auto _ : State) {
    auto RW = core::rewriteBinary(Bin, {});
    benchmark::DoNotOptimize(RW);
  }
}
BENCHMARK(BM_RewriteJsmn);

BENCHMARK_MAIN();
