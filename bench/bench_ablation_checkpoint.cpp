//===- bench/bench_ablation_checkpoint.cpp - Checkpoint width ---------------===//
//
// Section 6.1's checkpoint option: SSE state is always preserved, the
// full AVX state only on request "for performance reasons". Measures the
// cost of the wider checkpoint across the workloads.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace teapot;
using namespace teapot::bench;
using namespace teapot::workloads;

int main() {
  constexpr unsigned Reps = 5;
  printHeader("Ablation: SSE-only vs full-AVX checkpoints");
  printf("%-10s %12s %12s %12s\n", "program", "sse(ms)", "avx(ms)",
         "overhead");

  for (const Workload &W : allWorkloads()) {
    obj::ObjectFile Bin = buildWorkload(W);
    // Checkpoint width is a runtime knob; both variants share the full
    // Speculation Shadows pipeline.
    auto RW = rewriteWithPipeline(Bin, passes::PipelineBuilder::teapot());
    auto Input = W.LargeInput(1000);

    runtime::RuntimeOptions Sse;
    InstrumentedTarget TS(RW, Sse);
    TS.execute(Input);
    double TSse = timeTarget(TS, Input, Reps);

    runtime::RuntimeOptions Avx;
    Avx.AvxCheckpoint = true;
    InstrumentedTarget TA(RW, Avx);
    TA.execute(Input);
    double TAvx = timeTarget(TA, Input, Reps);

    printf("%-10s %12.2f %12.2f %11.1f%%\n", W.Name, TSse * 1e3, TAvx * 1e3,
           (TAvx / TSse - 1) * 100);
  }
  return 0;
}
