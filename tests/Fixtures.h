//===- tests/Fixtures.h - Shared victim-program fixtures ----------*- C++ -*-===//
///
/// \file
/// The Spectre-V1 victim programs shared by rewriter_test.cpp (semantic
/// and detection tests) and passes_test.cpp (byte-identity equivalence
/// corpus). One definition so the two suites cannot silently diverge.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_TESTS_FIXTURES_H
#define TEAPOT_TESTS_FIXTURES_H

#include "fuzz/Fuzzer.h"

#include <algorithm>
#include <vector>

namespace teapot {
namespace testutil {

/// Synthetic fuzz target shared by fuzz_test.cpp (single-threaded
/// Fuzzer) and campaign_test.cpp (byte-identity + determinism): guards
/// fire byte by byte as the magic prefix "TEA!" is matched, so the
/// fuzzer must discover it through coverage. One definition so the
/// "campaign worker == Fuzzer algorithm" tests cannot silently diverge
/// from the target the Fuzzer suite exercises.
class MagicTarget : public fuzz::FuzzTarget {
public:
  MagicTarget() : Normal(16, 0), Spec(1, 0) {}

  void execute(const std::vector<uint8_t> &Input) override {
    std::fill(Normal.begin(), Normal.end(), 0);
    static const uint8_t Magic[4] = {'T', 'E', 'A', '!'};
    Normal[0] = 1;
    for (unsigned I = 0; I != 4; ++I) {
      if (Input.size() <= I || Input[I] != Magic[I])
        break;
      Normal[1 + I] = 1;
      if (I == 3)
        Solved = true;
    }
    if (Input.size() > 8)
      Normal[9] = 1;
  }
  const std::vector<uint8_t> &normalCoverage() const override {
    return Normal;
  }
  const std::vector<uint8_t> &specCoverage() const override { return Spec; }
  const runtime::ReportSink *reports() const override { return nullptr; }

  bool Solved = false;

private:
  std::vector<uint8_t> Normal, Spec;
};

/// A classic Spectre-V1 victim: attacker-controlled index, bounds check,
/// dependent second access (Listing 1 of the paper).
inline const char *V1Victim = R"(
int main() {
  char idx8[8];
  read_input(idx8, 1);
  int idx = idx8[0];
  char *buf = malloc(64);
  int i;
  for (i = 0; i < 64; i = i + 1) { buf[i] = i; }
  int acc = 0;
  if (idx < 64) {
    int v = buf[idx];
    acc = buf[v & 63];
  }
  return acc;
}
)";

/// CMOV-clamped variant: conditional moves are not speculated, so no
/// gadget exists (the Figure 2 / Appendix A.1 discussion).
inline const char *CmovSafeVictim = R"(
.text
main:
    mov r0, buf64
    mov r1, 16
    ext 1              ; read one byte of input
    ld1 r2, [buf64]    ; idx
    mov r0, 64
    ext 4              ; heap buffer
    mov r3, r0
    mov r4, 0
    cmp r2, 64
    cmov.ae r2, r4     ; clamp instead of branching
    ld1 r5, [r3 + r2]
    and r5, 63
    ld1 r0, [r3 + r5]
    halt
.bss
buf64:
    .space 64
)";

/// lfence mitigation: the serializing instruction ends the simulated
/// speculation before the out-of-bounds access.
inline const char *FencedVictim = R"(
int main() {
  char idx8[8];
  read_input(idx8, 1);
  int idx = idx8[0];
  char *buf = malloc(64);
  int acc = 0;
  if (idx < 64) {
    fence();
    int v = buf[idx];
    acc = buf[v & 63];
  }
  return acc;
}
)";

/// Speculation must cross a function return to reach the access — this
/// exercises the marker NOP + MarkerCheck machinery of Listing 4 (and
/// mirrors the Appendix A.2 case study's shape).
inline const char *CrossReturnVictim = R"(
int clamp(int idx) {
  if (idx < 64) { return idx; }
  return 0;
}
int main() {
  char idx8[8];
  read_input(idx8, 1);
  char *buf = malloc(64);
  int v = buf[clamp(idx8[0])];
  int acc = buf[v & 63];
  return acc;
}
)";

/// Massage-policy victim: a speculatively bypassed null check makes a
/// helper return -1, turning a != loop bound into a wild out-of-bounds
/// walk whose (attacker-massaged) values are dereferenced — the
/// Listing 6 pattern.
inline const char *MassageVictim = R"(
int size_of(int *hdr) {
  if (hdr == 0) { return 0 - 1; }
  return *hdr;
}
int main() {
  char dummy[8];
  read_input(dummy, 1);
  char *arr = malloc(2);
  int *hdr = malloc(8);
  *hdr = 2;
  int n = size_of(hdr);
  int i = 0;
  int acc = 0;
  while (i != n) {
    int v = arr[i];
    int w = arr[v & 7];
    if (w > 100) { acc = acc + 1; }
    i = i + 1;
  }
  return acc;
}
)";

/// Requires two nested mispredictions: the bounds check is duplicated,
/// so a single flipped branch still exits before the access.
inline const char *NestedVictim = R"(
int main() {
  char idx8[8];
  read_input(idx8, 1);
  int idx = idx8[0];
  char *buf = malloc(64);
  int acc = 0;
  if (idx < 64) {
    if (idx < 64) {
      int v = buf[idx];
      acc = buf[v & 63];
    }
  }
  return acc;
}
)";

/// Switch via jump table (compile with SwitchLowering::JumpTable):
/// indirect jumps in the Shadow Copy must bounce through markers.
inline const char *SwitchProg = R"(
int main() {
  char b[8];
  read_input(b, 1);
  int v = b[0] & 3;
  int r;
  switch (v) {
    case 0: { r = 10; break; }
    case 1: { r = 11; break; }
    case 2: { r = 12; break; }
    default: { r = 13; break; }
  }
  return r;
}
)";

} // namespace testutil
} // namespace teapot

#endif // TEAPOT_TESTS_FIXTURES_H
