//===- tests/fuzz_test.cpp - Coverage-guided fuzzer tests --------------------===//

#include "Fixtures.h"
#include "fuzz/Fuzzer.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::fuzz;
using teapot::testutil::MagicTarget;

TEST(Bucketize, AflBuckets) {
  EXPECT_EQ(bucketize(0), 0);
  EXPECT_EQ(bucketize(1), 1);
  EXPECT_EQ(bucketize(3), 3);
  EXPECT_EQ(bucketize(4), 4);
  EXPECT_EQ(bucketize(7), 4);
  EXPECT_EQ(bucketize(8), 5);
  EXPECT_EQ(bucketize(100), 7);
  EXPECT_EQ(bucketize(255), 8);
}

// The MagicTarget fixture lives in Fixtures.h, shared with
// campaign_test.cpp so the byte-identity tests there exercise the same
// target this suite does.

TEST(Fuzzer, DiscoversMagicPrefixThroughCoverage) {
  MagicTarget T;
  FuzzerOptions O;
  O.Seed = 11;
  O.MaxIterations = 60000;
  O.MaxInputLen = 16;
  Fuzzer F(T, O);
  F.addSeed({'T', 'x', 'x', 'x'});
  FuzzerStats S = F.run();
  EXPECT_TRUE(T.Solved) << "corpus: " << F.corpus().size();
  EXPECT_GT(S.CorpusAdds, 0u);
  EXPECT_GE(S.NormalEdges, 5u);
}

TEST(Fuzzer, DeterministicUnderSeed) {
  auto Campaign = [](uint64_t Seed) {
    MagicTarget T;
    FuzzerOptions O;
    O.Seed = Seed;
    O.MaxIterations = 2000;
    Fuzzer F(T, O);
    F.addSeed({'T'});
    FuzzerStats S = F.run();
    return std::make_pair(S.CorpusAdds, F.corpus().size());
  };
  EXPECT_EQ(Campaign(5), Campaign(5));
  // Different seeds explore differently (overwhelmingly likely).
  EXPECT_NE(Campaign(5).second + Campaign(6).second, 0u);
}

TEST(Fuzzer, RespectsMaxInputLen) {
  MagicTarget T;
  FuzzerOptions O;
  O.MaxIterations = 3000;
  O.MaxInputLen = 8;
  Fuzzer F(T, O);
  F.addSeed(std::vector<uint8_t>(64, 'a')); // oversized seed is clipped
  F.run();
  for (const auto &C : F.corpus())
    EXPECT_LE(C.size(), 8u);
}

TEST(Fuzzer, EmptySeedStillRuns) {
  MagicTarget T;
  FuzzerOptions O;
  O.MaxIterations = 100;
  Fuzzer F(T, O);
  FuzzerStats S = F.run();
  EXPECT_EQ(S.Executions, 100u);
}

TEST(Fuzzer, SpecCoverageAlsoGuides) {
  /// Target where progress is only visible in the *speculative* map —
  /// the second coverage dimension of Section 6.3.
  class SpecOnly : public FuzzTarget {
  public:
    SpecOnly() : Normal(1, 1), Spec(4, 0) {}
    void execute(const std::vector<uint8_t> &In) override {
      std::fill(Spec.begin(), Spec.end(), 0);
      if (!In.empty() && In[0] == 0x5a) {
        Spec[1] = 1;
        Hit = true;
      }
    }
    const std::vector<uint8_t> &normalCoverage() const override {
      return Normal;
    }
    const std::vector<uint8_t> &specCoverage() const override {
      return Spec;
    }
    const runtime::ReportSink *reports() const override { return nullptr; }
    bool Hit = false;

  private:
    std::vector<uint8_t> Normal, Spec;
  };
  SpecOnly T;
  FuzzerOptions O;
  O.Seed = 3;
  O.MaxIterations = 20000;
  Fuzzer F(T, O);
  F.addSeed({0});
  FuzzerStats S = F.run();
  EXPECT_TRUE(T.Hit);
  EXPECT_GT(S.SpecEdges, 0u);
}
