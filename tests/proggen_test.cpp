//===- tests/proggen_test.cpp - ProgGen determinism + validity -------------===//
//
// Locks the ProgGen contract (lang/ProgGen.h):
//   - same options ⇒ byte-identical MiniCC source AND byte-identical
//     serialized TISA object, run after run;
//   - different seeds ⇒ different programs (the knob is real);
//   - every generated program compiles, halts with exit 0 on every
//     sample input, never faults, and emits the 8-byte digest — across a
//     seed × size sweep and on adversarial inputs (empty, max-length,
//     all-0xFF).
//
//===----------------------------------------------------------------------===//

#include "lang/ProgGen.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;

namespace {

obj::ObjectFile compileGenerated(const lang::ProgGenOptions &Opts) {
  std::string Src = lang::generateProgram(Opts);
  auto ObjOrErr = lang::compile(Src.c_str());
  if (!ObjOrErr) {
    ADD_FAILURE() << lang::progGenName(Opts)
                  << " failed to compile: " << ObjOrErr.message()
                  << "\n--- source ---\n"
                  << Src;
    abort();
  }
  return std::move(*ObjOrErr);
}

TEST(ProgGen, SameSeedByteIdenticalSourceAndObject) {
  for (uint64_t Seed : {1ull, 7ull, 42ull, 0xdeadbeefull}) {
    lang::ProgGenOptions Opts;
    Opts.Seed = Seed;
    Opts.Size = 6;
    std::string S1 = lang::generateProgram(Opts);
    std::string S2 = lang::generateProgram(Opts);
    EXPECT_EQ(S1, S2) << "seed " << Seed;

    obj::ObjectFile O1 = compileGenerated(Opts);
    obj::ObjectFile O2 = compileGenerated(Opts);
    EXPECT_EQ(O1.serialize(), O2.serialize()) << "seed " << Seed;

    EXPECT_EQ(lang::sampleInputs(Opts), lang::sampleInputs(Opts))
        << "seed " << Seed;
  }
}

TEST(ProgGen, DifferentSeedsDiffer) {
  lang::ProgGenOptions A, B;
  A.Seed = 1;
  B.Seed = 2;
  EXPECT_NE(lang::generateProgram(A), lang::generateProgram(B));
}

TEST(ProgGen, SizeKnobScalesAndClamps) {
  lang::ProgGenOptions Small, Big, Neg, Huge;
  Small.Seed = Big.Seed = Neg.Seed = Huge.Seed = 5;
  Small.Size = 1;
  Big.Size = 12;
  EXPECT_LT(lang::generateProgram(Small).size(),
            lang::generateProgram(Big).size());
  // Out-of-range sizes clamp rather than misbehave.
  Neg.Size = 0;
  Huge.Size = 999;
  EXPECT_FALSE(lang::generateProgram(Neg).empty());
  EXPECT_FALSE(lang::generateProgram(Huge).empty());
  EXPECT_EQ(lang::progGenName(Huge), "proggen-s5-z16");
}

TEST(ProgGen, NameIsCanonical) {
  lang::ProgGenOptions Opts;
  Opts.Seed = 123;
  Opts.Size = 3;
  EXPECT_EQ(lang::progGenName(Opts), "proggen-s123-z3");
}

// The no-UB-by-construction sweep: every program in a seed × size grid
// compiles, and every sample input runs to Halt / exit 0 with the 8-byte
// digest written.
TEST(ProgGen, SweepCompilesAndHalts) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    for (unsigned Size : {1u, 4u, 8u}) {
      lang::ProgGenOptions Opts;
      Opts.Seed = Seed;
      Opts.Size = Size;
      obj::ObjectFile Obj = compileGenerated(Opts);

      std::vector<std::vector<uint8_t>> Inputs = lang::sampleInputs(Opts);
      ASSERT_FALSE(Inputs.empty());
      // Adversarial extras beyond the sample corpus.
      Inputs.push_back({});
      Inputs.push_back(std::vector<uint8_t>(256, 0xff));
      std::vector<uint8_t> Long(1024);
      for (unsigned I = 0; I != Long.size(); ++I)
        Long[I] = static_cast<uint8_t>(I * 13 + Seed);
      Inputs.push_back(std::move(Long));

      for (const auto &In : Inputs) {
        RunResult R = runNative(Obj, In);
        ASSERT_EQ(R.Stop.Kind, vm::StopKind::Halted)
            << lang::progGenName(Opts) << " input len " << In.size();
        EXPECT_EQ(R.Stop.ExitStatus, 0u);
        EXPECT_EQ(R.Output.size(), 8u);
      }
    }
  }
}

// Run-twice determinism at the execution level: same program + same
// input ⇒ same digest and same instruction count.
TEST(ProgGen, ExecutionDeterministic) {
  lang::ProgGenOptions Opts;
  Opts.Seed = 99;
  Opts.Size = 6;
  obj::ObjectFile Obj = compileGenerated(Opts);
  std::vector<uint8_t> In = lang::sampleInputs(Opts).front();
  RunResult A = runNative(Obj, In);
  RunResult B = runNative(Obj, In);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Insts, B.Insts);
}

} // namespace
