//===- tests/vm_block_test.cpp - Execution tiers ≡ reference interpreter ----===//
//
// Differential tests for the Machine's execution tiers (block-compiled
// engine and the x86-64 JIT): on every workload and on an instrumented
// target, every engine must produce exactly the state the reference
// step() interpreter produces — StopState, register file, FLAGS, PC,
// executed-instruction counts, and output bytes — including at every
// possible budget cutoff and across fault-hook redirects. Plus
// invalidation coverage: loadObject, guest stores into the code region
// (which must also unlink JIT block chains), and the engine knob's
// back-compat shim.
//
// On hosts without a JIT backend, Engine::Jit resolves to Block, so the
// jit-parametrized differential cases still run (trivially, as a second
// block-engine pass); the JIT-introspection tests skip themselves.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "obj/Layout.h"
#include "vm/Jit.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::vm;
using namespace teapot::workloads;

namespace {

/// The non-reference tiers, each diffed against Engine::Interpreter.
constexpr Machine::Engine CompiledEngines[] = {Machine::Engine::Block,
                                               Machine::Engine::Jit};

struct EngineState {
  StopState Stop;
  CPU C;
  uint64_t Insts = 0;
  uint64_t Intrinsics = 0;
  std::vector<uint8_t> Output;
};

EngineState runEngine(const obj::ObjectFile &Bin, Machine::Engine Eng,
                      const std::vector<uint8_t> &Input, uint64_t Budget) {
  Machine M;
  M.Eng = Eng;
  cantFail(M.loadObject(Bin));
  M.setInput(Input);
  EngineState S;
  S.Stop = M.run(Budget);
  S.C = M.C;
  S.Insts = M.executedInsts();
  S.Intrinsics = M.executedIntrinsics();
  S.Output = M.output();
  return S;
}

void expectSameState(const EngineState &B, const EngineState &R,
                     const std::string &What) {
  EXPECT_EQ(B.Stop.Kind, R.Stop.Kind) << What;
  EXPECT_EQ(B.Stop.Fault, R.Stop.Fault) << What;
  EXPECT_EQ(B.Stop.FaultAddr, R.Stop.FaultAddr) << What;
  EXPECT_EQ(B.Stop.ExitStatus, R.Stop.ExitStatus) << What;
  EXPECT_EQ(B.C.PC, R.C.PC) << What;
  EXPECT_EQ(B.C.Flags, R.C.Flags) << What;
  for (unsigned I = 0; I != isa::NumRegs; ++I)
    EXPECT_EQ(B.C.R[I], R.C.R[I]) << What << " r" << I;
  EXPECT_EQ(B.Insts, R.Insts) << What;
  EXPECT_EQ(B.Intrinsics, R.Intrinsics) << What;
  EXPECT_EQ(B.Output, R.Output) << What;
}

/// (workload, engine) differential matrix.
using DiffParam = std::tuple<const Workload *, Machine::Engine>;

class WorkloadDifferential : public ::testing::TestWithParam<DiffParam> {};

std::vector<const Workload *> allParams() {
  std::vector<const Workload *> Out;
  for (const Workload &W : allWorkloads())
    Out.push_back(&W);
  return Out;
}

} // namespace

// Every evaluation workload, on every seed plus the large crafted
// input: each compiled engine ≡ reference interpreter, bit for bit.
TEST_P(WorkloadDifferential, EngineMatchesReference) {
  const Workload &W = *std::get<0>(GetParam());
  Machine::Engine Eng = std::get<1>(GetParam());
  obj::ObjectFile Bin = compileOrDie(W.Source);
  std::vector<std::vector<uint8_t>> Inputs = W.Seeds();
  Inputs.push_back(W.LargeInput(2500));
  for (const auto &In : Inputs) {
    EngineState E = runEngine(Bin, Eng, In, 20'000'000);
    EngineState R =
        runEngine(Bin, Machine::Engine::Interpreter, In, 20'000'000);
    expectSameState(E, R, std::string(W.Name) + "/" +
                              std::to_string(In.size()) + "B");
    EXPECT_GT(E.Insts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadDifferential,
    ::testing::Combine(::testing::ValuesIn(allParams()),
                       ::testing::ValuesIn(CompiledEngines)),
    [](const auto &Info) {
      return std::string(std::get<0>(Info.param)->Name) + "_" +
             engineName(std::get<1>(Info.param));
    });

// The Teapot-instrumented jsmn fixture: all engines drive the full
// runtime (speculation simulation, rollbacks, DIFT, coverage) to the
// same architectural results — StopState, registers, coverage maps,
// and gadget reports.
TEST(EngineInstrumented, JsmnFixtureMatchesReference) {
  const Workload &W = *findWorkload("jsmn");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip();
  core::RewriteResult RW = rewriteOrDie(Bin);

  runtime::RuntimeOptions RT;
  std::vector<std::vector<uint8_t>> Inputs = W.Seeds();
  Inputs.push_back(W.LargeInput(1200));
  Inputs.push_back({'{', '[', '"', 0xff, 'x'}); // malformed on purpose

  for (Machine::Engine Eng : CompiledEngines) {
    // Fresh pair per engine: runtime state (coverage maps, gadget
    // tables) accumulates across executes, so both sides must see the
    // same history.
    InstrumentedTarget Ref(RW, RT);
    Ref.M.Eng = Machine::Engine::Interpreter;
    InstrumentedTarget T(RW, RT);
    T.M.Eng = Eng;
    for (const auto &In : Inputs) {
      T.execute(In);
      Ref.execute(In);
      const char *N = engineName(Eng);
      EXPECT_EQ(T.LastStop.Kind, Ref.LastStop.Kind) << N;
      EXPECT_EQ(T.LastStop.ExitStatus, Ref.LastStop.ExitStatus) << N;
      EXPECT_EQ(T.M.C.PC, Ref.M.C.PC) << N;
      EXPECT_EQ(T.M.C.Flags, Ref.M.C.Flags) << N;
      for (unsigned I = 0; I != isa::NumRegs; ++I)
        EXPECT_EQ(T.M.C.R[I], Ref.M.C.R[I]) << N << " r" << I;
      EXPECT_EQ(T.M.executedInsts(), Ref.M.executedInsts()) << N;
      EXPECT_EQ(T.M.executedIntrinsics(), Ref.M.executedIntrinsics()) << N;
      EXPECT_EQ(T.M.output(), Ref.M.output()) << N;
      EXPECT_EQ(T.normalCoverage(), Ref.normalCoverage()) << N;
      EXPECT_EQ(T.specCoverage(), Ref.specCoverage()) << N;
      EXPECT_EQ(T.uniqueGadgets(), Ref.uniqueGadgets()) << N;
    }
    // The compiled engine actually engaged (not a trivial pass).
    EXPECT_GT(T.M.blockCache().blockCount(), 0u);
    if (Eng == Machine::Engine::Jit && Jit::available()) {
      ASSERT_NE(T.M.jit(), nullptr);
      EXPECT_GT(T.M.jit()->compiledBlocks(), 0u);
      EXPECT_GT(T.M.jit()->chainPatchCount(), 0u);
    }
    EXPECT_EQ(Ref.M.blockCache().blockCount(), 0u);
  }
}

// The scenario-diversity workloads, through the same full-runtime
// differential: every compiled engine drives the instrumented target
// (speculation simulation, DIFT, coverage, gadget dedup) to exactly the
// reference interpreter's results. This is the instrumented counterpart
// of the WorkloadDifferential sweep above, which covers the new
// workloads natively via allWorkloads().
TEST(EngineInstrumented, NewWorkloadsMatchReference) {
  for (const char *Name : {"base64", "urlparse", "smtp", "varint"}) {
    SCOPED_TRACE(Name);
    const Workload &W = *findWorkload(Name);
    obj::ObjectFile Bin = compileOrDie(W.Source);
    Bin.strip();
    core::RewriteResult RW = rewriteOrDie(Bin);

    runtime::RuntimeOptions RT;
    std::vector<std::vector<uint8_t>> Inputs = W.Seeds();
    Inputs.push_back(W.LargeInput(1200));
    Inputs.push_back({0xff, '%', '=', '.', 0x80, 0x00}); // malformed

    for (Machine::Engine Eng : CompiledEngines) {
      InstrumentedTarget Ref(RW, RT);
      Ref.M.Eng = Machine::Engine::Interpreter;
      InstrumentedTarget T(RW, RT);
      T.M.Eng = Eng;
      for (const auto &In : Inputs) {
        T.execute(In);
        Ref.execute(In);
        const char *N = engineName(Eng);
        EXPECT_EQ(T.LastStop.Kind, Ref.LastStop.Kind) << N;
        EXPECT_EQ(T.LastStop.ExitStatus, Ref.LastStop.ExitStatus) << N;
        EXPECT_EQ(T.M.C.PC, Ref.M.C.PC) << N;
        EXPECT_EQ(T.M.C.Flags, Ref.M.C.Flags) << N;
        for (unsigned I = 0; I != isa::NumRegs; ++I)
          EXPECT_EQ(T.M.C.R[I], Ref.M.C.R[I]) << N << " r" << I;
        EXPECT_EQ(T.M.executedInsts(), Ref.M.executedInsts()) << N;
        EXPECT_EQ(T.M.output(), Ref.M.output()) << N;
        EXPECT_EQ(T.normalCoverage(), Ref.normalCoverage()) << N;
        EXPECT_EQ(T.specCoverage(), Ref.specCoverage()) << N;
        EXPECT_EQ(T.uniqueGadgets(), Ref.uniqueGadgets()) << N;
      }
      EXPECT_GT(T.M.blockCache().blockCount(), 0u);
    }
  }
}

// Budget accounting must be *exact*: for every cutoff k, every engine
// stops at the same instruction with the same state. The program mixes
// straight-line ALU runs, loads/stores, calls, and a loop, so cutoffs
// land on every uop class including mid-block boundaries.
TEST(EngineBudget, ExactAtEveryCutoff) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 0
    mov r1, 3
loop:
    st8 [buf], r1
    ld8 r2, [buf]
    add r0, r2
    call bump
    sub r1, 1
    cmp r1, 0
    j.ne loop
    halt
bump:
    add r0, 1
    ret
.bss
buf:
    .space 8
)");
  // Find the total step count first, then sweep every budget 0..N+2.
  EngineState Full = runEngine(Bin, Machine::Engine::Interpreter, {},
                               1'000'000);
  ASSERT_EQ(Full.Stop.Kind, StopKind::Halted);
  for (uint64_t K = 0; K <= Full.Insts + 2; ++K) {
    EngineState R = runEngine(Bin, Machine::Engine::Interpreter, {}, K);
    for (Machine::Engine Eng : CompiledEngines) {
      EngineState E = runEngine(Bin, Eng, {}, K);
      expectSameState(E, R, std::string(engineName(Eng)) +
                                " budget=" + std::to_string(K));
      if (K <= Full.Insts)
        EXPECT_EQ(E.Insts, K);
    }
  }
}

// A fault-hook redirect consumes one budget unit without executing an
// instruction (the reference loop's accounting); every engine must
// replicate that, and resume correctly at the redirect target.
TEST(EngineFaults, HookRedirectBudgetParity) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r1, 0x300000000000
    ld8 r0, [r1]          ; faults: hook redirects to recover
    halt                  ; skipped
recover:
    mov r0, 55
    halt
)");
  const obj::Symbol *Rec = Bin.findSymbol("recover");
  ASSERT_NE(Rec, nullptr);
  auto RunHooked = [&](Machine::Engine Eng, uint64_t K) {
    Machine M;
    M.Eng = Eng;
    cantFail(M.loadObject(Bin));
    M.FaultHook = [&](Machine &Mach, FaultKind, uint64_t) {
      Mach.C.PC = Rec->Addr;
      return true;
    };
    EngineState S;
    S.Stop = M.run(K);
    S.C = M.C;
    S.Insts = M.executedInsts();
    S.Output = M.output();
    return S;
  };
  for (uint64_t K = 0; K <= 8; ++K) {
    EngineState R = RunHooked(Machine::Engine::Interpreter, K);
    for (Machine::Engine Eng : CompiledEngines)
      expectSameState(RunHooked(Eng, K), R,
                      std::string(engineName(Eng)) +
                          " hook budget=" + std::to_string(K));
  }
}

// An unhandled fault stops every engine with identical fault details.
TEST(EngineFaults, UnhandledFaultParity) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 7
    mov r1, 0x300000000000
    st4 [r1], r0
    halt
)");
  EngineState R = runEngine(Bin, Machine::Engine::Interpreter, {}, 100);
  EXPECT_EQ(R.Stop.Kind, StopKind::Fault);
  EXPECT_EQ(R.Stop.Fault, FaultKind::BadMemory);
  for (Machine::Engine Eng : CompiledEngines)
    expectSameState(runEngine(Bin, Eng, {}, 100), R,
                    std::string(engineName(Eng)) + " unhandled fault");
}

// loadObject must invalidate the decoded-block and JIT caches: after
// loading a second binary with different code at the same addresses,
// stale blocks (or stale compiled host code) from the first binary must
// not execute.
TEST(CacheInvalidation, LoadObjectDropsBlocks) {
  auto BinA = assembleOrDie(R"(
.text
main:
    mov r0, 1
    add r0, 10
    halt
)");
  auto BinB = assembleOrDie(R"(
.text
main:
    mov r0, 2
    mul r0, 30
    halt
)");
  for (Machine::Engine Eng : CompiledEngines) {
    Machine M;
    M.Eng = Eng;
    cantFail(M.loadObject(BinA));
    EXPECT_EQ(M.run(100).ExitStatus, 11u) << engineName(Eng);
    EXPECT_GT(M.blockCache().blockCount(), 0u) << engineName(Eng);

    cantFail(M.loadObject(BinB));
    EXPECT_EQ(M.blockCache().blockCount(), 0u)
        << engineName(Eng) << ": stale blocks survived";
    if (Eng == Machine::Engine::Jit && Jit::available()) {
      ASSERT_NE(M.jit(), nullptr);
      EXPECT_EQ(M.jit()->compiledBlocks(), 0u) << "stale JIT code survived";
    }
    EXPECT_EQ(M.run(100).ExitStatus, 60u)
        << engineName(Eng)
        << ": executed stale code from the previous image";
  }
}

// A guest store into the code region (any fuzzed wild store can reach
// it) must invalidate decoded blocks — including the rest of the block
// the store itself sits in, which decode-ahead compiled from the
// pre-store bytes. Every engine must fault identically at the smashed
// instruction.
TEST(EngineCoherence, GuestStoreIntoCodeRegion) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 1
    st1 [patch], 0xff     ; smash the opcode of the next instruction
patch:
    mov r0, 2             ; decoded ahead of time, never validly executed
    halt
)");
  EngineState R = runEngine(Bin, Machine::Engine::Interpreter, {}, 100);
  for (Machine::Engine Eng : CompiledEngines) {
    EngineState E = runEngine(Bin, Eng, {}, 100);
    expectSameState(E, R, std::string(engineName(Eng)) + " store into code");
    EXPECT_EQ(E.Stop.Kind, StopKind::Fault);
    EXPECT_EQ(E.Stop.Fault, FaultKind::BadFetch);
    EXPECT_EQ(E.C.R[isa::R0], 1u) << "stale pre-store decode executed";
  }
}

// Chained hot loops and the sentinel return path: a RET from the entry
// lands on the halt sentinel, which has no block (outside the code
// region) and must halt identically on every engine.
TEST(EngineParity, SentinelReturnParity) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 3
    mov r1, 100
again:
    add r0, 2
    sub r1, 1
    cmp r1, 0
    j.ne again
    ret
)");
  EngineState R = runEngine(Bin, Machine::Engine::Interpreter, {}, 10'000);
  EXPECT_EQ(R.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(R.Stop.ExitStatus, 203u);
  for (Machine::Engine Eng : CompiledEngines)
    expectSameState(runEngine(Bin, Eng, {}, 10'000), R,
                    std::string(engineName(Eng)) + " sentinel return");
}

// The accumulated-output cap (MaxOutputBytes): output stops growing at
// the cap, identically on every engine, and the guest still runs to
// completion.
TEST(EngineParity, OutputCapKnob) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r3, 8            ; 8 writes of 16 bytes = 128 bytes total
loop:
    mov r0, buf
    mov r1, 16
    ext 3                ; write_out
    sub r3, 1
    cmp r3, 0
    j.ne loop
    mov r0, 0
    halt
.data
buf:
    .quad 0x1111111111111111
    .quad 0x2222222222222222
)");
  for (Machine::Engine Eng :
       {Machine::Engine::Interpreter, Machine::Engine::Block,
        Machine::Engine::Jit}) {
    Machine M;
    M.Eng = Eng;
    M.MaxOutputBytes = 40; // cap mid-write: 2 full writes + 8 bytes
    cantFail(M.loadObject(Bin));
    StopState S = M.run(10'000);
    EXPECT_EQ(S.Kind, StopKind::Halted) << engineName(Eng);
    EXPECT_EQ(S.ExitStatus, 0u) << engineName(Eng);
    EXPECT_EQ(M.output().size(), 40u) << engineName(Eng);
  }
}

// The old two-tier bool knob still works: it maps onto the Engine enum
// without ever selecting the JIT (exactly the pre-Engine behavior).
TEST(EngineKnob, UseBlockEngineShim) {
  Machine M;
  M.UseBlockEngine = false;
  EXPECT_EQ(M.Eng, Machine::Engine::Interpreter);
  EXPECT_FALSE(static_cast<bool>(M.UseBlockEngine));
  M.UseBlockEngine = true;
  EXPECT_EQ(M.Eng, Machine::Engine::Block);
  EXPECT_TRUE(static_cast<bool>(M.UseBlockEngine));
  M.Eng = Machine::Engine::Jit;
  EXPECT_TRUE(static_cast<bool>(M.UseBlockEngine));
}

TEST(EngineKnob, Names) {
  EXPECT_STREQ(engineName(Machine::Engine::Interpreter), "interp");
  EXPECT_STREQ(engineName(Machine::Engine::Block), "block");
  EXPECT_STREQ(engineName(Machine::Engine::Jit), "jit");
  Machine::Engine E = Machine::Engine::Block;
  EXPECT_TRUE(parseEngineName("jit", E));
  EXPECT_EQ(E, Machine::Engine::Jit);
  EXPECT_TRUE(parseEngineName("interp", E));
  EXPECT_EQ(E, Machine::Engine::Interpreter);
  EXPECT_TRUE(parseEngineName("block", E));
  EXPECT_EQ(E, Machine::Engine::Block);
  E = Machine::Engine::Jit;
  EXPECT_FALSE(parseEngineName("blocks", E));
  EXPECT_FALSE(parseEngineName("", E));
  EXPECT_FALSE(parseEngineName("JIT", E));
  EXPECT_EQ(E, Machine::Engine::Jit) << "failed parse must not write";
}

// --- JIT-specific coverage (skipped where no backend exists) -------------

// A hot loop compiles, chains its back edge, and a later guest store
// into the code region drops *all* compiled code — including the chain
// patches — through the watch-epoch flush. The stale-code check is the
// loop result: if the smashed tail executed from a surviving chained
// block, r0 would read 99.
TEST(JitEngine, ChainedBlocksUnlinkedAfterCodeWrite) {
  if (!Jit::available())
    GTEST_SKIP() << "no JIT backend on this host";
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 0
    mov r1, 50
loop:
    add r0, 1
    sub r1, 1
    cmp r1, 0
    j.ne loop             ; hot back edge: chains loop -> loop
    st1 [patch], 0xff     ; smash the opcode of the next instruction
patch:
    mov r0, 99            ; compiled ahead of time, must never execute
    halt
)");
  Machine M;
  M.Eng = Machine::Engine::Jit;
  cantFail(M.loadObject(Bin));
  StopState S = M.run(10'000);
  ASSERT_NE(M.jit(), nullptr);
  // The loop chained while it was hot...
  EXPECT_GT(M.jit()->chainPatchCount(), 0u);
  // ...and the code-region store flushed every compiled block.
  EXPECT_EQ(M.jit()->flushCount(), 1u);
  EXPECT_EQ(M.jit()->compiledBlocks(), 0u)
      << "compiled code survived a code-region write";
  // Architectural result identical to the reference interpreter: the
  // smashed instruction faults, the pre-store loop result stands.
  EngineState R = runEngine(Bin, Machine::Engine::Interpreter, {}, 10'000);
  EXPECT_EQ(S.Kind, R.Stop.Kind);
  EXPECT_EQ(S.Fault, R.Stop.Fault);
  EXPECT_EQ(M.C.R[isa::R0], 50u) << "stale chained code executed";
  EXPECT_EQ(M.C.R[isa::R0], R.C.R[isa::R0]);
}

// The JIT tier engages on a plain run: blocks compile into the arena,
// hot successors chain, and repeated runs reuse the compiled code
// (no additional flushes).
TEST(JitEngine, CompilesAndReusesBlocks) {
  if (!Jit::available())
    GTEST_SKIP() << "no JIT backend on this host";
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 3
    mov r1, 100
again:
    add r0, 2
    sub r1, 1
    cmp r1, 0
    j.ne again
    ret
)");
  Machine M;
  M.Eng = Machine::Engine::Jit;
  cantFail(M.loadObject(Bin));
  EXPECT_EQ(M.run(10'000).ExitStatus, 203u);
  ASSERT_NE(M.jit(), nullptr);
  size_t Compiled = M.jit()->compiledBlocks();
  size_t Bytes = M.jit()->codeBytes();
  EXPECT_GT(Compiled, 0u);
  EXPECT_GT(M.jit()->chainPatchCount(), 0u);
  EXPECT_GT(Bytes, 0u);
  // A second pristine run executes entirely from the code cache.
  M.C = CPU();
  cantFail(M.loadObject(Bin));
  EXPECT_EQ(M.run(10'000).ExitStatus, 203u);
  EXPECT_EQ(M.jit()->flushCount(), 1u) << "only the loadObject flush";
}
